package wirecap

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/trace"
	"repro/internal/vtime"
)

func TestQuickCaptureLoop(t *testing.T) {
	sim := NewSim()
	n := sim.NewNIC(NICConfig{Queues: 2})
	eng, err := sim.NewEngine(n, Options{M: 64, R: 100})
	if err != nil {
		t.Fatal(err)
	}
	var got uint64
	var lastTS time.Duration
	for q := 0; q < 2; q++ {
		eng.Queue(q).Loop(func(p *Packet) {
			got++
			if p.Timestamp < lastTS {
				// Timestamps are per-queue monotone, not global, because
				// queues process independently; only check sanity.
			}
			lastTS = p.Timestamp
			if len(p.Data) == 0 {
				t.Error("empty packet data")
			}
		})
	}
	tr := sim.SendRate(n, RateOptions{Packets: 5000})
	sim.Run()
	if !tr.Done() || tr.Sent() != 5000 {
		t.Fatalf("traffic: done=%v sent=%d", tr.Done(), tr.Sent())
	}
	if got != 5000 {
		t.Fatalf("callback saw %d of 5000", got)
	}
	st := eng.Stats()
	if st.CaptureDrops != 0 || st.Accepted != 5000 {
		t.Fatalf("stats = %+v", st)
	}
	ws := n.WireStats()
	if ws.Offered != 5000 || ws.Received != 5000 || ws.Dropped != 0 {
		t.Fatalf("wire stats = %+v", ws)
	}
}

func TestFilterOnHandle(t *testing.T) {
	sim := NewSim()
	n := sim.NewNIC(NICConfig{Queues: 1})
	eng, err := sim.NewEngine(n, Options{M: 64, R: 100})
	if err != nil {
		t.Fatal(err)
	}
	h := eng.Queue(0)
	if err := h.SetFilter("udp and net 131.225.2"); err != nil {
		t.Fatal(err)
	}
	if err := h.SetFilter("not a filter ((("); err == nil {
		t.Fatal("bad filter accepted")
	}
	matched := 0
	h.Loop(func(p *Packet) { matched++ })
	sim.SendRate(n, RateOptions{Packets: 1000}) // all UDP from 131.225.2/24
	sim.Run()
	if matched != 1000 {
		t.Fatalf("matched %d", matched)
	}
	// A filter that matches nothing.
	if err := h.SetFilter("tcp port 1"); err != nil {
		t.Fatal(err)
	}
	before := matched
	sim.SendRate(n, RateOptions{Packets: 100})
	sim.Run()
	if matched != before {
		t.Fatal("non-matching filter passed packets")
	}
	if eng.Stats().FilterRejected != 100 {
		t.Fatalf("FilterRejected = %d", eng.Stats().FilterRejected)
	}
}

func TestSnapLenTruncatesCallbackData(t *testing.T) {
	sim := NewSim()
	n := sim.NewNIC(NICConfig{Queues: 1})
	eng, _ := sim.NewEngine(n, Options{M: 64, R: 100})
	h := eng.Queue(0)
	h.SetSnapLen(40)
	var seen int
	h.Loop(func(p *Packet) { seen = len(p.Data) })
	sim.SendRate(n, RateOptions{Packets: 10, FrameBytes: 200})
	sim.Run()
	if seen != 40 {
		t.Fatalf("callback data len = %d, want 40", seen)
	}
}

func TestBreakLoop(t *testing.T) {
	sim := NewSim()
	n := sim.NewNIC(NICConfig{Queues: 1})
	eng, _ := sim.NewEngine(n, Options{M: 64, R: 100})
	h := eng.Queue(0)
	count := 0
	h.Loop(func(p *Packet) {
		count++
		if count == 10 {
			h.BreakLoop()
		}
	})
	sim.SendRate(n, RateOptions{Packets: 1000})
	sim.Run()
	if count != 10 {
		t.Fatalf("callback ran %d times after BreakLoop at 10", count)
	}
}

func TestForwardingMiddlebox(t *testing.T) {
	sim := NewSim()
	rx := sim.NewNIC(NICConfig{Queues: 1})
	txNIC := sim.NewNIC(NICConfig{Queues: 1, TxQueues: 1})
	eng, _ := sim.NewEngine(rx, Options{M: 64, R: 100})
	tx := txNIC.Tx(0)
	forwarded := 0
	eng.Queue(0).Loop(func(p *Packet) {
		if err := p.Forward(tx); err == nil {
			forwarded++
		}
	})
	sim.SendRate(rx, RateOptions{Packets: 2000, PacketsPerSec: 1e6})
	sim.Run()
	if forwarded != 2000 {
		t.Fatalf("forwarded %d", forwarded)
	}
	if tx.Sent() != 2000 {
		t.Fatalf("tx sent %d", tx.Sent())
	}
	// Double-forward must fail.
	eng.Queue(0).Loop(func(p *Packet) {
		if err := p.Forward(tx); err != nil {
			t.Errorf("first forward: %v", err)
		}
		if err := p.Forward(tx); err == nil {
			t.Error("second forward succeeded")
		}
	})
	sim.SendRate(rx, RateOptions{Packets: 1})
	sim.Run()
}

func TestAdvancedModeThroughPublicAPI(t *testing.T) {
	run := func(advanced bool) (drops uint64, spread int) {
		sim := NewSim()
		n := sim.NewNIC(NICConfig{Queues: 4})
		eng, err := sim.NewEngine(n, Options{M: 256, R: 100, Advanced: advanced})
		if err != nil {
			t.Fatal(err)
		}
		perQueue := make([]int, 4)
		for q := 0; q < 4; q++ {
			q := q
			h := eng.Queue(q)
			h.SetProcessingCost(25744 * time.Nanosecond)
			h.Loop(func(p *Packet) { perQueue[q]++ })
		}
		sim.SendRate(n, RateOptions{Packets: 150000, PacketsPerSec: 100000, SingleQueue: true})
		sim.Run()
		busy := 0
		for _, c := range perQueue {
			if c > 1000 {
				busy++
			}
		}
		return eng.Stats().CaptureDrops, busy
	}
	basicDrops, basicSpread := run(false)
	advDrops, advSpread := run(true)
	if basicDrops == 0 || basicSpread != 1 {
		t.Fatalf("basic: drops %d spread %d", basicDrops, basicSpread)
	}
	if advDrops > basicDrops/10 || advSpread < 3 {
		t.Fatalf("advanced: drops %d (basic %d) spread %d", advDrops, basicDrops, advSpread)
	}
}

func TestReplayBorderSmoke(t *testing.T) {
	sim := NewSim()
	n := sim.NewNIC(NICConfig{Queues: 6})
	eng, _ := sim.NewEngine(n, Options{M: 64, R: 100})
	var got uint64
	for q := 0; q < 6; q++ {
		eng.Queue(q).Loop(func(p *Packet) { got++ })
	}
	tr := sim.ReplayBorder(n, BorderOptions{Seconds: 1, Scale: 0.05, Seed: 1})
	sim.Run()
	if !tr.Done() || tr.Sent() == 0 {
		t.Fatal("border replay produced nothing")
	}
	if got != tr.Sent() {
		t.Fatalf("callback saw %d of %d", got, tr.Sent())
	}
}

func TestReplayPcapFile(t *testing.T) {
	// Write a small pcap, then replay it through the public API.
	dir := t.TempDir()
	path := filepath.Join(dir, "t.pcap")
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := packet.NewBuilder()
	scratch := make([]byte, packet.MaxFrameLen)
	flow := packet.FlowKey{
		Src: packet.IPv4{131, 225, 2, 9}, Dst: packet.IPv4{10, 0, 0, 1},
		SrcPort: 5, DstPort: 6, Proto: packet.ProtoUDP,
	}
	for i := 0; i < 50; i++ {
		frame := b.Build(scratch, flow, nil)
		w.WritePacket(vtime.Time(i)*vtime.Microsecond, frame)
	}
	w.Flush()
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	sim := NewSim()
	n := sim.NewNIC(NICConfig{Queues: 1})
	eng, _ := sim.NewEngine(n, Options{M: 64, R: 100})
	got := 0
	eng.Queue(0).Loop(func(p *Packet) { got++ })
	tr, err := sim.ReplayPcapFile(n, path)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if !tr.Done() || got != 50 {
		t.Fatalf("replayed %d of 50 (done %v)", got, tr.Done())
	}

	if _, err := sim.ReplayPcapFile(n, filepath.Join(dir, "missing.pcap")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunForAdvancesVirtualTime(t *testing.T) {
	sim := NewSim()
	if sim.Now() != 0 {
		t.Fatal("fresh sim not at zero")
	}
	sim.RunFor(3 * time.Second)
	if sim.Now() != 3*time.Second {
		t.Fatalf("Now = %v", sim.Now())
	}
}

func TestEngineName(t *testing.T) {
	sim := NewSim()
	n := sim.NewNIC(NICConfig{Queues: 1})
	eng, _ := sim.NewEngine(n, Options{M: 128, R: 200, Advanced: true, ThresholdPct: 70})
	if eng.Name() != "WireCAP-A-(128,200,70%)" {
		t.Fatalf("name = %q", eng.Name())
	}
}

func TestBadEngineOptions(t *testing.T) {
	sim := NewSim()
	n := sim.NewNIC(NICConfig{Queues: 1})
	if _, err := sim.NewEngine(n, Options{M: 8, R: 2}); err == nil {
		t.Fatal("pool smaller than ring accepted")
	}
}

func TestDumpToWritesPcap(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dump.pcap")
	d, err := NewDumper(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSim()
	n := sim.NewNIC(NICConfig{Queues: 1})
	eng, _ := sim.NewEngine(n, Options{M: 64, R: 100})
	h := eng.Queue(0)
	if err := h.SetFilter("udp"); err != nil {
		t.Fatal(err)
	}
	h.DumpTo(d)
	h.Loop(func(p *Packet) {})
	sim.SendRate(n, RateOptions{Packets: 123})
	sim.Run()
	if d.Count() != 123 {
		t.Fatalf("dumped %d of 123", d.Count())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if h.DumpErr() != nil {
		t.Fatal(h.DumpErr())
	}
	// The file replays back in.
	sim2 := NewSim()
	n2 := sim2.NewNIC(NICConfig{Queues: 1})
	eng2, _ := sim2.NewEngine(n2, Options{M: 64, R: 100})
	got := 0
	eng2.Queue(0).Loop(func(p *Packet) { got++ })
	if _, err := sim2.ReplayPcapFile(n2, path); err != nil {
		t.Fatal(err)
	}
	sim2.Run()
	if got != 123 {
		t.Fatalf("replayed %d of 123", got)
	}
}

func TestEngineCloseThroughPublicAPI(t *testing.T) {
	sim := NewSim()
	n := sim.NewNIC(NICConfig{Queues: 1})
	eng, _ := sim.NewEngine(n, Options{M: 64, R: 100})
	got := 0
	h := eng.Queue(0)
	h.Loop(func(p *Packet) { got++ })
	sim.SendRate(n, RateOptions{Packets: 100})
	sim.Run()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	sim.SendRate(n, RateOptions{Packets: 100})
	sim.Run()
	if got != 100 {
		t.Fatalf("packets after Close reached the callback: %d", got)
	}
	if h.Accepted() != 100 {
		t.Fatalf("Accepted = %d", h.Accepted())
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
}

func TestHandleMiscAccessors(t *testing.T) {
	sim := NewSim()
	n := sim.NewNIC(NICConfig{Queues: 1, TxQueues: 1})
	eng, _ := sim.NewEngine(n, Options{M: 64, R: 100})
	h := eng.Queue(0)
	h.SetSnapLen(0) // resets to the default
	if h.snaplen != 65535 {
		t.Fatalf("snaplen = %d", h.snaplen)
	}
	if err := h.SetFilter(""); err != nil {
		t.Fatal(err) // empty filter clears
	}
	if h.flt != nil {
		t.Fatal("empty filter left a program installed")
	}
	// Out-of-range TX queue panics.
	defer func() {
		if recover() == nil {
			t.Fatal("Tx(5) did not panic")
		}
	}()
	n.Tx(5)
}

func TestDumperErrors(t *testing.T) {
	if _, err := NewDumper("/nonexistent-dir/x.pcap", 0); err == nil {
		t.Fatal("NewDumper into a missing directory succeeded")
	}
}

func TestReplayBorderDefaults(t *testing.T) {
	sim := NewSim()
	n := sim.NewNIC(NICConfig{Queues: 2})
	eng, _ := sim.NewEngine(n, Options{M: 64, R: 100})
	for q := 0; q < 2; q++ {
		eng.Queue(q).Loop(func(p *Packet) {})
	}
	// Zero-valued options pick the paper defaults (32 s, scale 1): cap it
	// by only running 50 ms of virtual time, then stop.
	tr := sim.ReplayBorder(n, BorderOptions{Scale: 0.01, Seconds: 0.2})
	sim.Run()
	if !tr.Done() || tr.Sent() == 0 {
		t.Fatalf("done %v sent %d", tr.Done(), tr.Sent())
	}
}
