package wirecap

import (
	"fmt"
	"os"

	"repro/internal/trace"
	"repro/internal/vtime"
)

// Traffic tracks what a traffic source offered to a NIC. Counters are
// final once the simulation drains.
type Traffic struct {
	st       *trace.DriveStats
	done     bool
	markDone func()
}

// Sent returns the number of frames offered so far.
func (t *Traffic) Sent() uint64 { return t.st.Sent }

// Done reports whether the source has finished.
func (t *Traffic) Done() bool { return t.done }

// BorderOptions configures the synthetic border-router workload (the
// Figure 3 traffic): heavy-tailed bursty flows with one long-term
// overloaded queue and one bursty queue.
type BorderOptions struct {
	// Seconds is the trace duration. Default 32, as in the paper.
	Seconds float64
	// Scale multiplies packet rates; 1.0 is paper scale (~4.5M packets).
	// Default 1.0.
	Scale float64
	// Seed selects the reproducible random workload.
	Seed uint64
}

// ReplayBorder schedules the border-router workload into n. The traffic
// plays out as the simulation runs.
func (s *Sim) ReplayBorder(n *NIC, opt BorderOptions) *Traffic {
	if opt.Seconds == 0 {
		opt.Seconds = 32
	}
	if opt.Scale == 0 {
		opt.Scale = 1.0
	}
	src := trace.NewBorder(trace.BorderConfig{
		Queues:   n.Queues(),
		Duration: vtime.Time(opt.Seconds * float64(vtime.Second)),
		Scale:    opt.Scale,
		Seed:     opt.Seed,
	})
	return s.drive(n, src)
}

// RateOptions configures a constant-rate generator.
type RateOptions struct {
	// Packets is the number of frames to send.
	Packets uint64
	// FrameBytes is the frame length (without FCS); default 60, i.e. the
	// minimal "64-byte packet".
	FrameBytes int
	// PacketsPerSec paces the generator; 0 means full wire rate.
	PacketsPerSec float64
	// SingleQueue aims all traffic at receive queue 0 (worst-case
	// imbalance); otherwise flows spread evenly across queues.
	SingleQueue bool
	// Seed selects the flow set.
	Seed uint64
}

// SendRate schedules constant-rate traffic into n.
func (s *Sim) SendRate(n *NIC, opt RateOptions) *Traffic {
	frameBytes := opt.FrameBytes
	if frameBytes == 0 {
		frameBytes = 60
	}
	lineRate := n.inner.LineRateBps()
	if opt.PacketsPerSec > 0 {
		lineRate = opt.PacketsPerSec * float64(frameBytes+24) * 8
	}
	cfg := trace.ConstantRateConfig{
		Packets:     opt.Packets,
		FrameLen:    frameBytes,
		LineRateBps: lineRate,
		Queues:      n.Queues(),
		Seed:        opt.Seed,
		Start:       s.sched.Now(),
	}
	if opt.SingleQueue {
		cfg.SingleQueue = true
	}
	return s.drive(n, trace.NewConstantRate(cfg))
}

// ReplayPcapFile replays a pcap capture file into n at its recorded
// timing, offset to start at the current virtual time.
func (s *Sim) ReplayPcapFile(n *NIC, path string) (*Traffic, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	rd, err := trace.NewReader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wirecap: %s: %w", path, err)
	}
	src := trace.NewPcapSource(rd)
	t := s.drive(n, &offsetSource{src: src, offset: s.sched.Now()})
	// The file is closed when the source drains; pcap sources read
	// incrementally, so keep f open until then.
	origDone := t.markDone
	t.markDone = func() {
		f.Close()
		origDone()
	}
	return t, nil
}

// offsetSource shifts a source's timestamps by a constant.
type offsetSource struct {
	src    trace.Source
	offset vtime.Time
}

func (o *offsetSource) Next() ([]byte, vtime.Time, bool) {
	frame, ts, ok := o.src.Next()
	return frame, ts + o.offset, ok
}

func (s *Sim) drive(n *NIC, src trace.Source) *Traffic {
	t := &Traffic{}
	t.markDone = func() { t.done = true }
	t.st = trace.Drive(s.sched, n.inner, src, func() { t.markDone() })
	return t
}
