package wirecap

import (
	"fmt"
	"os"

	"repro/internal/trace"
	"repro/internal/vtime"
)

// Dumper writes captured packets to a pcap file: the pcap_dump analogue.
// Attach it to one or more handles with Handle.DumpTo; close it after the
// simulation drains.
type Dumper struct {
	f *os.File
	w *trace.Writer
}

// NewDumper creates (truncating) a pcap file for captured packets.
// snaplen 0 means 65,535.
func NewDumper(path string, snaplen int) (*Dumper, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w, err := trace.NewWriter(f, uint32(snaplen))
	if err != nil {
		f.Close()
		return nil, err
	}
	return &Dumper{f: f, w: w}, nil
}

// Count returns packets written so far.
func (d *Dumper) Count() uint64 { return d.w.Count() }

// Close flushes and closes the file.
func (d *Dumper) Close() error {
	if err := d.w.Flush(); err != nil {
		d.f.Close()
		return err
	}
	return d.f.Close()
}

// DumpTo mirrors every packet that passes this handle's filter into the
// dumper, in addition to (and before) the Loop callback. Pass nil to stop
// dumping.
func (h *Handle) DumpTo(d *Dumper) { h.dumper = d }

// writeDump is called from the delivery path.
func (h *Handle) writeDump(data []byte, ts vtime.Time) {
	if err := h.dumper.w.WritePacket(ts, data); err != nil {
		// A failing dump file must not corrupt capture; drop the dumper
		// and surface the error through the handle.
		h.dumpErr = fmt.Errorf("wirecap: dump: %w", err)
		h.dumper = nil
	}
}

// DumpErr returns the error that stopped dumping, if any.
func (h *Handle) DumpErr() error { return h.dumpErr }
