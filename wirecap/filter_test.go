package wirecap

import (
	"strings"
	"testing"

	"repro/internal/packet"
)

func udpFrame(t *testing.T, src packet.IPv4, dport uint16) []byte {
	t.Helper()
	b := packet.NewBuilder()
	buf := make([]byte, packet.MaxFrameLen)
	frame := b.Build(buf, packet.FlowKey{
		Src: src, Dst: packet.IPv4{10, 0, 0, 1},
		SrcPort: 40000, DstPort: dport, Proto: packet.ProtoUDP,
	}, nil)
	out := make([]byte, len(frame))
	copy(out, frame)
	return out
}

func TestCompileFilterMatch(t *testing.T) {
	f, err := CompileFilter("udp and net 131.225.2 and dst port 53")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Match(udpFrame(t, packet.IPv4{131, 225, 2, 7}, 53)) {
		t.Fatal("matching frame rejected")
	}
	if f.Match(udpFrame(t, packet.IPv4{131, 225, 3, 7}, 53)) {
		t.Fatal("wrong subnet accepted")
	}
	if f.Match(udpFrame(t, packet.IPv4{131, 225, 2, 7}, 54)) {
		t.Fatal("wrong port accepted")
	}
	if f.String() != "udp and net 131.225.2 and dst port 53" {
		t.Fatalf("String = %q", f.String())
	}
}

func TestCompileFilterError(t *testing.T) {
	if _, err := CompileFilter("((("); err == nil {
		t.Fatal("garbage compiled")
	}
}

func TestMustCompileFilterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompileFilter did not panic")
		}
	}()
	MustCompileFilter("not a thing at all 12.")
}

func TestFilterDisassemble(t *testing.T) {
	f := MustCompileFilter("udp")
	asm := f.Disassemble()
	for _, want := range []string{"ldh  [12]", "jeq  #0x800", "ret"} {
		if !strings.Contains(asm, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, asm)
		}
	}
}
