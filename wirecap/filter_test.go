package wirecap

import (
	"strings"
	"testing"

	"repro/internal/packet"
)

func udpFrame(t *testing.T, src packet.IPv4, dport uint16) []byte {
	t.Helper()
	b := packet.NewBuilder()
	buf := make([]byte, packet.MaxFrameLen)
	frame := b.Build(buf, packet.FlowKey{
		Src: src, Dst: packet.IPv4{10, 0, 0, 1},
		SrcPort: 40000, DstPort: dport, Proto: packet.ProtoUDP,
	}, nil)
	out := make([]byte, len(frame))
	copy(out, frame)
	return out
}

func TestCompileFilterMatch(t *testing.T) {
	f, err := CompileFilter("udp and net 131.225.2 and dst port 53")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Match(udpFrame(t, packet.IPv4{131, 225, 2, 7}, 53)) {
		t.Fatal("matching frame rejected")
	}
	if f.Match(udpFrame(t, packet.IPv4{131, 225, 3, 7}, 53)) {
		t.Fatal("wrong subnet accepted")
	}
	if f.Match(udpFrame(t, packet.IPv4{131, 225, 2, 7}, 54)) {
		t.Fatal("wrong port accepted")
	}
	if f.String() != "udp and net 131.225.2 and dst port 53" {
		t.Fatalf("String = %q", f.String())
	}
}

func TestCompileFilterError(t *testing.T) {
	if _, err := CompileFilter("((("); err == nil {
		t.Fatal("garbage compiled")
	}
}

func TestMustCompileFilterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompileFilter did not panic")
		}
	}()
	MustCompileFilter("not a thing at all 12.")
}

func TestFilterDisassemble(t *testing.T) {
	f := MustCompileFilter("udp")
	asm := f.Disassemble()
	for _, want := range []string{"ldh  [12]", "jeq  #0x800", "ret"} {
		if !strings.Contains(asm, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, asm)
		}
	}
}

func TestMatchBatch(t *testing.T) {
	f := MustCompileFilter("udp dst port 53")
	frames := [][]byte{
		udpFrame(t, packet.IPv4{131, 225, 2, 7}, 53),
		udpFrame(t, packet.IPv4{131, 225, 2, 7}, 80),
		nil,
		udpFrame(t, packet.IPv4{10, 9, 8, 7}, 53),
	}
	accept := make([]uint64, 1)
	n := f.MatchBatch(frames, accept)
	if n != 2 {
		t.Fatalf("MatchBatch accepted %d, want 2", n)
	}
	for i, frame := range frames {
		got := accept[0]>>uint(i)&1 == 1
		if got != f.Match(frame) {
			t.Fatalf("frame %d: batch bit %v, per-packet %v", i, got, f.Match(frame))
		}
	}
	if f.Flat() == nil {
		t.Fatal("Flat() returned nil")
	}
}

// TestEngineBatchFilter runs the engine-level chunk filter through the
// public facade: rejected packets never reach the callback and are
// accounted in Stats.BatchFiltered.
func TestEngineBatchFilter(t *testing.T) {
	sim := NewSim()
	n := sim.NewNIC(NICConfig{Queues: 1})
	eng, err := sim.NewEngine(n, Options{M: 64, R: 50, BatchFilter: "udp"})
	if err != nil {
		t.Fatal(err)
	}
	check := MustCompileFilter("udp")
	seen := uint64(0)
	eng.Queue(0).Loop(func(p *Packet) {
		seen++
		if !check.Match(p.Data) {
			t.Fatal("batch-filtered engine delivered a non-udp frame")
		}
	})
	sim.ReplayBorder(n, BorderOptions{Seconds: 1, Scale: 0.05, Seed: 3})
	sim.Run()
	st := eng.Stats()
	if st.BatchFiltered == 0 {
		t.Fatal("border workload produced no filtered packets")
	}
	if seen == 0 || seen != st.Delivered {
		t.Fatalf("callback saw %d, delivered %d", seen, st.Delivered)
	}
	if st.Received != st.Delivered+st.BatchFiltered+st.CaptureDrops {
		t.Fatalf("accounting: received %d != delivered %d + filtered %d + drops %d",
			st.Received, st.Delivered, st.BatchFiltered, st.CaptureDrops)
	}
	if _, err := sim.NewEngine(n, Options{BatchFilter: "((bad"}); err == nil {
		t.Fatal("bad batch filter accepted")
	}
}
