// Package wirecap is the public, libpcap-flavoured API of the WireCAP
// reproduction: lossless zero-copy packet capture and delivery over
// simulated commodity multi-queue NICs, with ring-buffer pools for
// short-term bursts, buddy-group offloading for long-term load imbalance,
// BPF filtering, and zero-copy forwarding for middlebox applications.
//
// Everything runs inside a deterministic discrete-event simulation (see
// DESIGN.md for why): a Sim owns virtual time, NICs attach to it, an
// Engine captures from a NIC, and per-queue Handles deliver packets to
// callbacks the way pcap_loop does.
//
//	sim := wirecap.NewSim()
//	nic := sim.NewNIC(wirecap.NICConfig{Queues: 4})
//	eng, _ := sim.NewEngine(nic, wirecap.Options{M: 256, R: 100, Advanced: true})
//	h := eng.Queue(0)
//	h.SetFilter("udp and net 131.225.2")
//	h.Loop(func(p *wirecap.Packet) { fmt.Println(p.Timestamp, len(p.Data)) })
//	sim.ReplayBorder(nic, wirecap.BorderOptions{Seconds: 2})
//	sim.Run()
package wirecap

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/bpf"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/engines"
	"repro/internal/nic"
	"repro/internal/vtime"
)

// Sim owns the virtual clock every simulated component advances on.
type Sim struct {
	sched *vtime.Scheduler
}

// NewSim creates a simulation at virtual time zero.
func NewSim() *Sim { return &Sim{sched: vtime.NewScheduler()} }

// Run executes the simulation until no work remains.
func (s *Sim) Run() { s.sched.Run() }

// RunFor advances the simulation by d of virtual time.
func (s *Sim) RunFor(d time.Duration) {
	s.sched.RunUntil(s.sched.Now() + vtime.Duration(d))
}

// Now returns the current virtual time since the simulation began.
func (s *Sim) Now() time.Duration { return time.Duration(s.sched.Now()) }

// NICConfig configures a simulated NIC.
type NICConfig struct {
	// Queues is the number of receive queues; each is served by one
	// capture handle. Default 1.
	Queues int
	// RingSize is the per-queue receive descriptor ring size. Default
	// 1,024 (the paper's experiment setting).
	RingSize int
	// TxQueues enables transmit rings for forwarding. Default 0.
	TxQueues int
	// LineRateGbps is the wire speed. Default 10.
	LineRateGbps float64
	// BusGBps caps the shared host bus in gigabytes per second; 0 means
	// unlimited. Use it for scalability studies (Figure 14).
	BusGBps float64
	// RoundRobin replaces RSS steering with round-robin (which balances
	// load but breaks flow affinity; see the ablation benches).
	RoundRobin bool
}

// NIC is a simulated multi-queue NIC attached to a Sim.
type NIC struct {
	sim   *Sim
	inner *nic.NIC
	bus   *bus.Bus
}

var nextNICID int

// NewNIC attaches a NIC to the simulation. Capture NICs run in
// promiscuous mode, as packet capture requires.
func (s *Sim) NewNIC(cfg NICConfig) *NIC {
	if cfg.Queues <= 0 {
		cfg.Queues = 1
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 1024
	}
	if cfg.LineRateGbps == 0 {
		cfg.LineRateGbps = 10
	}
	var b *bus.Bus
	if cfg.BusGBps > 0 {
		b = bus.New(bus.Config{BytesPerSec: cfg.BusGBps * 1e9, PerTransferOverhead: 16})
	} else {
		b = bus.Unlimited()
	}
	var steering nic.Steering
	if cfg.RoundRobin {
		steering = nic.NewRoundRobin(cfg.Queues)
	}
	id := nextNICID
	nextNICID++
	inner := nic.New(s.sched, nic.Config{
		ID:          id,
		RxQueues:    cfg.Queues,
		RingSize:    cfg.RingSize,
		TxQueues:    cfg.TxQueues,
		Steering:    steering,
		LineRateBps: cfg.LineRateGbps * 1e9,
		Bus:         b,
		Promiscuous: true,
	})
	return &NIC{sim: s, inner: inner, bus: b}
}

// Queues returns the NIC's receive-queue count.
func (n *NIC) Queues() int { return n.inner.RxQueues() }

// WireStats reports what the NIC saw on the wire.
type WireStats struct {
	Offered  uint64 // frames the generator put on the wire
	Received uint64 // frames that reached host memory
	Dropped  uint64 // frames lost before host memory (capture drops)
}

// WireStats snapshots NIC-level accounting.
func (n *NIC) WireStats() WireStats {
	st := n.inner.Stats()
	return WireStats{
		Offered:  st.Delivered,
		Received: st.TotalReceived(),
		Dropped:  st.TotalWireDrops(),
	}
}

// Options configures a WireCAP capture engine, following the paper's
// WireCAP-B-(M, R) / WireCAP-A-(M, R, T) naming.
type Options struct {
	// M is the descriptor-segment size (cells per chunk). Default 256.
	M int
	// R is the ring-buffer-pool size in chunks. Default 100. Buffering
	// capacity is R*M packets per queue.
	R int
	// Advanced enables buddy-group-based offloading.
	Advanced bool
	// ThresholdPct is the offloading threshold T as a percentage of the
	// capture queue capacity. Default 60.
	ThresholdPct int
	// BuddyGroups partitions queues into offload domains, one per
	// application. nil means one group containing every queue.
	BuddyGroups [][]int
	// FlushTimeout bounds packet delivery latency for partially filled
	// chunks. Default 2 ms.
	FlushTimeout time.Duration
	// BatchFilter, when non-empty, installs a BPF expression that the
	// engine applies per chunk on the consumer fast path (the flattened
	// batch backend), before any packet reaches a handle. Rejected
	// packets never surface in callbacks and are counted in
	// Stats.BatchFiltered — they are not capture drops. Per-handle
	// SetFilter still applies on top, per packet.
	BatchFilter string
}

// Engine is a WireCAP capture engine bound to one NIC.
type Engine struct {
	sim     *Sim
	nic     *NIC
	inner   *core.Engine
	mux     *mux
	handles []*Handle
}

// NewEngine opens every receive queue of n for capture.
func (s *Sim) NewEngine(n *NIC, opt Options) (*Engine, error) {
	if opt.M == 0 {
		opt.M = 256
	}
	if opt.R == 0 {
		opt.R = 100
	}
	mode := core.Basic
	if opt.Advanced {
		mode = core.Advanced
	}
	var chunkFilter *bpf.FlatProgram
	if opt.BatchFilter != "" {
		f, err := bpf.CompileFlat(opt.BatchFilter, 65535)
		if err != nil {
			return nil, fmt.Errorf("wirecap: batch filter %q: %w", opt.BatchFilter, err)
		}
		chunkFilter = f
	}
	e := &Engine{sim: s, nic: n}
	e.mux = &mux{engine: e, costs: engines.DefaultCosts()}
	for q := 0; q < n.Queues(); q++ {
		h := &Handle{engine: e, queue: q, snaplen: 65535}
		e.handles = append(e.handles, h)
	}
	inner, err := core.New(s.sched, n.inner, core.Config{
		M:            opt.M,
		R:            opt.R,
		Mode:         mode,
		ThresholdPct: opt.ThresholdPct,
		BuddyGroups:  opt.BuddyGroups,
		FlushTimeout: vtime.Duration(opt.FlushTimeout),
		ChunkFilter:  chunkFilter,
		Costs:        engines.DefaultCosts(),
	}, e.mux)
	if err != nil {
		return nil, err
	}
	e.inner = inner
	return e, nil
}

// Queue returns the capture handle for receive queue q.
func (e *Engine) Queue(q int) *Handle { return e.handles[q] }

// Name returns the engine's paper-style name, e.g. "WireCAP-A-(256,100,60%)".
func (e *Engine) Name() string { return e.inner.Name() }

// Close stops capture on every queue and unmaps the ring buffer pools
// (pcap_close). Packets still held by callbacks or transmit rings stay
// valid until released. Idempotent.
func (e *Engine) Close() error { return e.inner.Close() }

// Stats aggregates capture accounting across all queues.
func (e *Engine) Stats() Stats {
	t := e.inner.Stats().Totals()
	s := Stats{
		Received:      t.Received,
		CaptureDrops:  t.CaptureDrops,
		Delivered:     t.Delivered,
		BatchFiltered: e.inner.ChunkFiltered(),
	}
	for _, h := range e.handles {
		s.Accepted += h.accepted
		s.FilterRejected += h.filtered
	}
	return s
}

// Stats is the pcap_stats analogue, extended with WireCAP detail.
type Stats struct {
	Received       uint64 // packets captured into host memory
	CaptureDrops   uint64 // packets lost at the wire (ps_drop)
	Delivered      uint64 // packets handed to user space
	Accepted       uint64 // packets that passed the handle filters
	FilterRejected uint64 // packets rejected by the handle filters
	BatchFiltered  uint64 // packets rejected per chunk by Options.BatchFilter
}

// Packet is one captured packet as seen by a callback. Data aliases the
// ring-buffer-pool cell (zero-copy): it is valid only during the callback
// unless the packet is forwarded, in which case the cell lives until the
// NIC transmits it.
type Packet struct {
	Data      []byte
	Timestamp time.Duration // hardware arrival time
	Queue     int           // receive queue that captured it

	done      func()
	forwarded bool
	engine    *Engine
}

// TxQueue names a transmit ring for forwarding.
type TxQueue struct {
	ring *nic.TxRing
}

// Tx returns transmit queue q of the NIC, for forwarding.
func (n *NIC) Tx(q int) *TxQueue {
	if q < 0 || q >= n.inner.TxQueues() {
		panic(fmt.Sprintf("wirecap: NIC has no TX queue %d", q))
	}
	return &TxQueue{ring: n.inner.Tx(q)}
}

// Sent returns the number of packets the TX queue has put on the wire.
func (t *TxQueue) Sent() uint64 { return t.ring.Stats().Sent }

// ErrTxFull reports a full transmit ring.
var ErrTxFull = errors.New("wirecap: transmit ring full")

// Forward attaches the packet to a transmit queue with zero copy. The
// underlying buffer is retained until the NIC serializes the frame. A
// packet can be forwarded at most once.
func (p *Packet) Forward(tx *TxQueue) error {
	if p.forwarded {
		return errors.New("wirecap: packet already forwarded")
	}
	if tx.ring.Attach(nic.TxPacket{Data: p.Data, Release: p.done}) {
		p.forwarded = true
		return nil
	}
	return ErrTxFull
}

// Handle is a per-receive-queue capture handle: the pcap_t analogue.
type Handle struct {
	engine  *Engine
	queue   int
	snaplen int
	flt     *bpf.FlatProgram
	cb      func(*Packet)
	cost    vtime.Time
	broken  bool

	accepted uint64
	filtered uint64
	pkt      Packet // reused across callbacks

	dumper  *Dumper
	dumpErr error
}

// SetFilter compiles and installs a BPF filter expression
// (pcap_setfilter). An empty expression removes the filter.
func (h *Handle) SetFilter(expr string) error {
	if expr == "" {
		h.flt = nil
		return nil
	}
	flt, err := bpf.CompileFlat(expr, uint32(h.snaplen))
	if err != nil {
		return err
	}
	h.flt = flt
	return nil
}

// SetSnapLen sets the snapshot length delivered to the callback
// (default 65,535).
func (h *Handle) SetSnapLen(n int) {
	if n <= 0 {
		n = 65535
	}
	h.snaplen = n
}

// SetProcessingCost declares the virtual CPU time the callback consumes
// per packet, so capture dynamics under application load are modeled
// faithfully. Zero (the default) models a negligible-cost consumer.
func (h *Handle) SetProcessingCost(d time.Duration) { h.cost = vtime.Duration(d) }

// Loop registers the packet callback (pcap_loop with cnt = -1). Callbacks
// run as packets are delivered while the simulation runs.
func (h *Handle) Loop(fn func(*Packet)) { h.cb = fn }

// BreakLoop stops delivering packets to the callback (pcap_breakloop);
// subsequent packets are consumed and discarded.
func (h *Handle) BreakLoop() { h.broken = true }

// Accepted returns the number of packets that reached the callback.
func (h *Handle) Accepted() uint64 { return h.accepted }

// mux adapts the per-queue handles onto the engine's Handler interface.
type mux struct {
	engine *Engine
	costs  engines.CostModel
}

func (m *mux) Cost(q int, data []byte) vtime.Time {
	return m.costs.AppBase + m.engine.handles[q].cost
}

func (m *mux) Handle(q int, data []byte, ts vtime.Time, done func()) {
	h := m.engine.handles[q]
	if h.broken || h.cb == nil {
		done()
		return
	}
	if h.flt != nil && !h.flt.Match(data) {
		h.filtered++
		done()
		return
	}
	h.accepted++
	if len(data) > h.snaplen {
		data = data[:h.snaplen]
	}
	if h.dumper != nil {
		h.writeDump(data, ts)
	}
	h.pkt = Packet{Data: data, Timestamp: time.Duration(ts), Queue: q, done: done, engine: m.engine}
	h.cb(&h.pkt)
	if !h.pkt.forwarded {
		done()
	}
}
