package wirecap

import "repro/internal/bpf"

// Filter is a compiled BPF program usable standalone, the
// pcap_offline_filter analogue: IDS-style applications compile a rule set
// once and match captured packets against it in their callbacks. Since v7
// it runs on the flattened backend (branch-threaded bytecode with
// per-block bounds checks, common matchers fused to native predicates)
// and exposes a per-chunk batch entry point.
type Filter struct {
	flt  *bpf.FlatProgram
	expr string
}

// CompileFilter compiles a filter expression ("udp and net 131.225.2",
// "tcp port 80 or tcp port 443", ...) into an executable program.
func CompileFilter(expr string) (*Filter, error) {
	flt, err := bpf.CompileFlat(expr, 65535)
	if err != nil {
		return nil, err
	}
	return &Filter{flt: flt, expr: expr}, nil
}

// MustCompileFilter is CompileFilter for constant expressions; it panics
// on error.
func MustCompileFilter(expr string) *Filter {
	f, err := CompileFilter(expr)
	if err != nil {
		panic(err)
	}
	return f
}

// Match runs the program over a raw Ethernet frame.
func (f *Filter) Match(frame []byte) bool { return f.flt.Match(frame) }

// MatchBatch filters a batch of frames in one call, setting bit i of
// accept when frames[i] passes, and returns the accept count. accept
// must hold at least (len(frames)+63)/64 words; every word it touches
// is overwritten. This is the per-chunk fast path the engine itself
// uses for Options.BatchFilter.
func (f *Filter) MatchBatch(frames [][]byte, accept []uint64) int {
	return f.flt.FilterChunk(frames, accept)
}

// Flat exposes the compiled flattened program for direct engine wiring.
func (f *Filter) Flat() *bpf.FlatProgram { return f.flt }

// String returns the source expression.
func (f *Filter) String() string { return f.expr }

// Disassemble renders the compiled program in tcpdump -d style.
func (f *Filter) Disassemble() string {
	prog, _ := bpf.Compile(f.expr, 65535)
	return bpf.Disassemble(prog)
}
