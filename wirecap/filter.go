package wirecap

import "repro/internal/bpf"

// Filter is a compiled BPF program usable standalone, the
// pcap_offline_filter analogue: IDS-style applications compile a rule set
// once and match captured packets against it in their callbacks.
type Filter struct {
	vm   *bpf.VM
	expr string
}

// CompileFilter compiles a filter expression ("udp and net 131.225.2",
// "tcp port 80 or tcp port 443", ...) into an executable program.
func CompileFilter(expr string) (*Filter, error) {
	prog, err := bpf.Compile(expr, 65535)
	if err != nil {
		return nil, err
	}
	vm, err := bpf.NewVM(prog)
	if err != nil {
		return nil, err
	}
	return &Filter{vm: vm, expr: expr}, nil
}

// MustCompileFilter is CompileFilter for constant expressions; it panics
// on error.
func MustCompileFilter(expr string) *Filter {
	f, err := CompileFilter(expr)
	if err != nil {
		panic(err)
	}
	return f
}

// Match runs the program over a raw Ethernet frame.
func (f *Filter) Match(frame []byte) bool { return f.vm.Match(frame) }

// String returns the source expression.
func (f *Filter) String() string { return f.expr }

// Disassemble renders the compiled program in tcpdump -d style.
func (f *Filter) Disassemble() string {
	prog, _ := bpf.Compile(f.expr, 65535)
	return bpf.Disassemble(prog)
}
