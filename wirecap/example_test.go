package wirecap_test

import (
	"fmt"
	"time"

	"repro/wirecap"
)

// The canonical capture loop: open an engine over a multi-queue NIC,
// filter, and count.
func Example() {
	sim := wirecap.NewSim()
	nic := sim.NewNIC(wirecap.NICConfig{Queues: 2})
	eng, err := sim.NewEngine(nic, wirecap.Options{M: 64, R: 100})
	if err != nil {
		panic(err)
	}
	var captured int
	for q := 0; q < nic.Queues(); q++ {
		h := eng.Queue(q)
		if err := h.SetFilter("udp"); err != nil {
			panic(err)
		}
		h.Loop(func(p *wirecap.Packet) { captured++ })
	}
	sim.SendRate(nic, wirecap.RateOptions{Packets: 1000})
	sim.Run()
	fmt.Println(captured, "packets captured")
	// Output: 1000 packets captured
}

// Advanced mode offloads a hot queue's chunks to idle buddies, so a
// single overloaded core stops meaning packet loss.
func Example_advancedMode() {
	sim := wirecap.NewSim()
	nic := sim.NewNIC(wirecap.NICConfig{Queues: 4})
	eng, err := sim.NewEngine(nic, wirecap.Options{M: 256, R: 100, Advanced: true})
	if err != nil {
		panic(err)
	}
	for q := 0; q < 4; q++ {
		h := eng.Queue(q)
		h.SetProcessingCost(25 * time.Microsecond) // a slow analyzer
		h.Loop(func(p *wirecap.Packet) {})
	}
	// 100 kp/s aimed at one queue: 2.5x one thread's capacity.
	sim.SendRate(nic, wirecap.RateOptions{
		Packets: 50000, PacketsPerSec: 100000, SingleQueue: true,
	})
	sim.Run()
	fmt.Println("capture drops:", eng.Stats().CaptureDrops)
	// Output: capture drops: 0
}

// Standalone filters compile once and match raw frames, for IDS-style
// rule engines.
func ExampleCompileFilter() {
	f, err := wirecap.CompileFilter("tcp[13] & 0x12 == 0x12") // SYN+ACK
	if err != nil {
		panic(err)
	}
	fmt.Println(f.Match(make([]byte, 60))) // an all-zero frame is not TCP
	// Output: false
}

// Forwarding turns the capture engine into a middlebox: packets leave a
// transmit queue by reference, zero-copy.
func ExamplePacket_Forward() {
	sim := wirecap.NewSim()
	in := sim.NewNIC(wirecap.NICConfig{Queues: 1})
	out := sim.NewNIC(wirecap.NICConfig{Queues: 1, TxQueues: 1})
	eng, err := sim.NewEngine(in, wirecap.Options{M: 64, R: 100})
	if err != nil {
		panic(err)
	}
	tx := out.Tx(0)
	eng.Queue(0).Loop(func(p *wirecap.Packet) {
		if err := p.Forward(tx); err != nil {
			panic(err)
		}
	})
	sim.SendRate(in, wirecap.RateOptions{Packets: 500, PacketsPerSec: 1e6})
	sim.Run()
	fmt.Println(tx.Sent(), "packets forwarded")
	// Output: 500 packets forwarded
}
