// Package repro is a full reproduction of "WireCAP: a Novel Packet
// Capture Engine for Commodity NICs in High-speed Networks" (Wu & DeMar,
// ACM IMC 2014) as a Go library over a deterministic simulated substrate.
//
// The public API lives in repro/wirecap; the paper's engine is
// repro/internal/core; the simulated NIC/memory/bus/BPF/traffic substrate
// and the baseline engines live under repro/internal. See README.md for a
// tour, DESIGN.md for the system inventory and substitutions, and
// EXPERIMENTS.md for paper-versus-measured results. The benchmarks in
// bench_test.go regenerate every table and figure of the paper's
// evaluation; cmd/experiments prints them as tables.
package repro
