package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ConcurrencyAnalyzer fences raw concurrency out of simulator code
// (DESIGN.md §11): determinism survives parallel execution only because
// every goroutine and every cross-goroutine message is owned by the
// domain runtime, which confines them behind lookahead barriers and
// canonical mailbox merges. A naked `go` statement or an ad-hoc channel
// anywhere else reintroduces scheduling nondeterminism that no golden
// digest can pin down, so goroutine launches, channel makes, sends,
// receives, and select statements are banned outside
// internal/vtime/domain (and _test.go files, whose goroutines are the
// test harness's business). Legitimate exceptions — a signal handler in
// a cmd, say — carry a //wirelint:allow concurrency directive with a
// reason.
var ConcurrencyAnalyzer = &Analyzer{
	Name: "concurrency",
	Doc:  "forbid goroutines and channel operations outside the domain runtime",
	Run:  runConcurrency,
}

// concurrencyExemptPkg is the one package allowed to spawn goroutines
// and own channels: the parallel executive that makes them deterministic.
const concurrencyExemptPkg = "repro/internal/vtime/domain"

func runConcurrency(pass *Pass) error {
	if pass.PkgPath == concurrencyExemptPkg {
		return nil
	}
	for _, f := range pass.Files {
		filename := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(filename, "_test.go") {
			continue
		}
		// A select's comm clauses are sends/receives by definition; the
		// select finding covers them, so they are not re-reported.
		comm := make(map[ast.Node]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if c, ok := n.(*ast.CommClause); ok && c.Comm != nil {
				comm[c.Comm] = true
				if e, ok := c.Comm.(*ast.ExprStmt); ok {
					comm[e.X] = true
				}
				if a, ok := c.Comm.(*ast.AssignStmt); ok && len(a.Rhs) == 1 {
					comm[a.Rhs[0]] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"go statement outside the domain runtime; spawn work through internal/vtime/domain so execution stays deterministic")
			case *ast.SendStmt:
				if comm[n] {
					return true
				}
				pass.Reportf(n.Pos(),
					"channel send outside the domain runtime; cross-domain messages go through domain mailboxes (Tx.Send)")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && !comm[n] {
					pass.Reportf(n.Pos(),
						"channel receive outside the domain runtime; deliveries arrive through domain ports, not raw channels")
				}
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(),
					"select statement outside the domain runtime; nondeterministic case choice breaks golden digests")
			case *ast.RangeStmt:
				if t := pass.Info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						pass.Reportf(n.Pos(),
							"range over channel outside the domain runtime; deliveries arrive through domain ports, not raw channels")
					}
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "make" && len(n.Args) > 0 {
					if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
						if t := pass.Info.TypeOf(n.Args[0]); t != nil {
							if _, ok := t.Underlying().(*types.Chan); ok {
								pass.Reportf(n.Pos(),
									"make(chan) outside the domain runtime; bounded deterministic mailboxes live in internal/vtime/domain")
							}
						}
					}
				}
			}
			return true
		})
	}
	return nil
}
