package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// WalltimeAnalyzer enforces the simulator's founding rule (DESIGN.md
// §1): every cost is charged in virtual time. Reading the wall clock or
// blocking on it inside simulator code makes runs timing-dependent and
// breaks the golden-digest guarantee, so time.Now and friends are
// banned outside _test.go files; the process-seeded math/rand globals
// are banned everywhere for the same reason (vtime.Rand is the seeded,
// version-stable generator). Genuine wall-clock needs — self-timing a
// CI gate, say — carry a //wirelint:allow walltime directive with a
// reason, which keeps the exception list explicit and reviewable.
var WalltimeAnalyzer = &Analyzer{
	Name: "walltime",
	Doc:  "forbid wall-clock time and process-seeded randomness in simulator code",
	Run:  runWalltime,
}

// bannedTime are the package time entry points that read or wait on the
// wall clock. Pure types and arithmetic (time.Duration, time.Time) stay
// legal: converting a vtime quantity for display is fine, sampling the
// host clock is not.
var bannedTime = map[string]string{
	"Now":       "reads the wall clock",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
	"Sleep":     "blocks on the wall clock",
	"After":     "blocks on the wall clock",
	"AfterFunc": "schedules on the wall clock",
	"Tick":      "ticks on the wall clock",
	"NewTicker": "ticks on the wall clock",
	"NewTimer":  "schedules on the wall clock",
}

// bannedRand are the math/rand (and v2) top-level convenience functions
// that draw from the shared process-seeded source. Constructing an
// explicitly seeded generator (rand.New, rand.NewSource) is not flagged
// — though vtime.Rand is the house generator precisely because its
// stream is stable across Go releases.
var bannedRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint32N": true, "Uint64N": true,
	"UintN": true, "Uint": true, "Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true, "Perm": true,
	"Shuffle": true, "Read": true, "Seed": true,
}

func runWalltime(pass *Pass) error {
	for _, f := range pass.Files {
		filename := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				if why, bad := bannedTime[sel.Sel.Name]; bad {
					pass.Reportf(sel.Pos(),
						"time.%s %s; simulator code charges virtual time via internal/vtime (wall-clock exceptions need //wirelint:allow walltime <reason>)",
						sel.Sel.Name, why)
				}
			case "math/rand", "math/rand/v2":
				if bannedRand[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"rand.%s draws from the process-seeded global source; use a seeded vtime.Rand so runs are reproducible",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}
