package lint

import (
	"path/filepath"
	"testing"
)

func fixture(name string) string { return filepath.Join("testdata", "src", name) }

func TestWalltimeFixture(t *testing.T) {
	RunFixture(t, fixture("walltime"), WalltimeAnalyzer)
}

func TestMaporderFixture(t *testing.T) {
	RunFixture(t, fixture("maporder"), MaporderAnalyzer)
}

func TestHotpathFixture(t *testing.T) {
	RunFixture(t, fixture("hotpath"), HotpathAnalyzer)
}

func TestLockdisciplineFixture(t *testing.T) {
	RunFixture(t, fixture("lockdiscipline"), LockAnalyzer)
}

func TestConcurrencyFixture(t *testing.T) {
	RunFixture(t, fixture("concurrency"), ConcurrencyAnalyzer)
}

func TestHotpathFlowFixture(t *testing.T) {
	RunFixture(t, fixture("hotpathflow"), HotpathFlowAnalyzer)
}

func TestDeterminismFixture(t *testing.T) {
	RunFixture(t, fixture("determinism"), DeterminismAnalyzer)
}

func TestConservationFixture(t *testing.T) {
	RunFixture(t, fixture("conservation"), ConservationAnalyzer)
}

// TestDirectiveFixture runs the full suite so allow directives for any
// rule resolve, and checks the malformed/unused directive findings.
func TestDirectiveFixture(t *testing.T) {
	RunFixture(t, fixture("directive"), Analyzers()...)
}

// TestDirectiveAccounting pins the summary contract the driver prints:
// allowlisted findings are counted per rule and carry their reasons, so
// exceptions stay visible instead of vanishing.
func TestDirectiveAccounting(t *testing.T) {
	m, err := LoadDir(fixture("directive"), "fix")
	if err != nil {
		t.Fatal(err)
	}
	_, sum, err := Run(m, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Allowed != 2 {
		t.Fatalf("Allowed = %d, want 2 (trailing + standalone)", sum.Allowed)
	}
	if sum.AllowedByRule["walltime"] != 2 {
		t.Fatalf("AllowedByRule[walltime] = %d, want 2", sum.AllowedByRule["walltime"])
	}
	if len(sum.AllowedList) != 2 {
		t.Fatalf("AllowedList has %d entries, want 2", len(sum.AllowedList))
	}
	for _, f := range sum.AllowedList {
		if f.Reason == "" {
			t.Errorf("allowlisted finding %s has no reason", f)
		}
		if !f.Allowed {
			t.Errorf("AllowedList entry %s not marked allowed", f)
		}
	}
	// The fixture's live findings are exactly the directive-hygiene
	// ones plus the unsuppressed time.Now.
	if sum.Findings == 0 {
		t.Fatal("expected live findings from the malformed-directive cases")
	}
}
