package fix

import (
	"fmt"
	"sort"
	"strings"
)

// violatingAppend leaks map order into the returned slice.
func violatingAppend(m map[string]int) []string {
	var keys []string
	for k := range m { // want `iterating map m appends to keys in map order`
		keys = append(keys, k)
	}
	return keys
}

// conformingSorted is the canonical collect-then-sort idiom.
func conformingSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// violatingFprintf emits key/value lines in map order.
func violatingFprintf(m map[string]int) string {
	var sb strings.Builder
	for k, v := range m { // want `iterating map m emits output via fmt\.Fprintf in map order`
		fmt.Fprintf(&sb, "%s=%d\n", k, v)
	}
	return sb.String()
}

// violatingWriteString streams keys into a builder in map order.
func violatingWriteString(m map[string]int, sb *strings.Builder) {
	for k := range m { // want `iterating map m writes to sb in map order`
		sb.WriteString(k)
	}
}

// conformingMapWrite: writing into another map is order-insensitive.
func conformingMapWrite(src map[string]int) map[string]string {
	out := make(map[string]string, len(src))
	for k, v := range src {
		out[k] = fmt.Sprint(v)
	}
	return out
}

// conformingLocal: a per-iteration accumulator cannot carry
// cross-iteration order.
func conformingLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// conformingNoVars: without iteration variables, order cannot leak.
func conformingNoVars(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

type report struct {
	Rows []string
}

// conformingSelectorSort: sorting a struct field after the loop also
// counts.
func conformingSelectorSort(m map[string]bool) report {
	var r report
	for k := range m {
		r.Rows = append(r.Rows, k)
	}
	sort.Slice(r.Rows, func(i, j int) bool { return r.Rows[i] < r.Rows[j] })
	return r
}

// violatingHash: digest input in map order is the golden-digest bug.
func violatingHash(m map[string]uint64, h interface{ Write([]byte) (int, error) }) {
	for k := range m { // want `iterating map m writes to h in map order`
		h.Write([]byte(k))
	}
}
