package fix

// Fixture for hotpathflow: transitive hot-path propagation along the
// module call graph. The base hotpath rule is not run here, so only
// call-edge findings appear.

var sink int

// capture is the annotated hot-path entry; its call edges are checked.
//
//wirecap:hotpath
func capture(vals []int) int {
	n := stamp(vals)         // want `call to stamp escapes the hot path: stamp is not marked //wirecap:hotpath and reaches an allocation via capture -> stamp \(a\.go:\d+: append\)`
	n += throughMiddle(vals) // want `call to throughMiddle escapes the hot path: throughMiddle is not marked //wirecap:hotpath and reaches an allocation via capture -> throughMiddle -> middle -> leafAlloc \(a\.go:\d+: append\)`
	n += cleanHelper(n)
	n += annotatedCallee(vals)
	if n < 0 {
		// Cold block: panic-terminated, so this edge is exempt.
		stamp(vals)
		panic("negative")
	}
	return n
}

// stamp allocates directly and is not annotated: calling it from a hot
// function is a finding at the call site.
func stamp(vals []int) int {
	grown := append(vals, 1)
	return len(grown)
}

// throughMiddle -> middle -> leafAlloc: the chain diagnostic names
// every unannotated hop down to the allocating body.
func throughMiddle(vals []int) int { return middle(vals) }

func middle(vals []int) int { return leafAlloc(vals) }

func leafAlloc(vals []int) int {
	grown := append(vals, 2)
	return len(grown)
}

// cleanHelper neither allocates nor calls an allocator: calling it
// from a hot function is fine without annotation.
func cleanHelper(n int) int {
	sink += n
	return sink
}

// annotatedCallee is itself hot-path annotated, so its body is the
// base rule's responsibility and the edge into it is never a finding —
// even though its callee chain would otherwise count as allocating.
//
//wirecap:hotpath
func annotatedCallee(vals []int) int {
	return len(vals)
}

// throughMiddle is reused here outside any hot path; unannotated
// callers get no findings no matter what their callees do.
func coldCaller(vals []int) int {
	return throughMiddle(vals) + stamp(vals)
}
