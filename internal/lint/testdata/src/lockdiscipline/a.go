package fix

import "sync"

type registry struct {
	mu sync.Mutex
	m  map[string]int
}

// get is the canonical lock/defer-unlock shape.
func (r *registry) get(k string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.m[k]
}

// okBothPaths releases inline on every path.
func (r *registry) okBothPaths(k string) int {
	r.mu.Lock()
	if v, ok := r.m[k]; ok {
		r.mu.Unlock()
		return v
	}
	r.mu.Unlock()
	return 0
}

// missingUnlock never releases.
func (r *registry) missingUnlock(k string) {
	r.mu.Lock() // want `r\.mu\.Lock\(\) is not released on every path`
	r.m[k] = 1
}

// returnWhileHeld leaks the lock on the early-return path.
func (r *registry) returnWhileHeld(k string) int {
	r.mu.Lock()
	if v, ok := r.m[k]; ok {
		return v // want `return while r\.mu is held`
	}
	r.mu.Unlock()
	return 0
}

// doubleLock self-deadlocks immediately.
func (r *registry) doubleLock() {
	r.mu.Lock()
	r.mu.Lock() // want `r\.mu is locked again while already held`
	r.mu.Unlock()
}

// deferInLoop releases only at function return — iterations pile up.
func (r *registry) deferInLoop(keys []string) {
	for _, k := range keys {
		r.mu.Lock()
		defer r.mu.Unlock() // want `defer r\.mu\.Unlock in a loop releases at function return`
		r.m[k] = 1
	}
}

// lockInLoopNoUnlock deadlocks on the second iteration.
func (r *registry) lockInLoopNoUnlock(keys []string) {
	for _, k := range keys {
		r.mu.Lock() // want `r\.mu\.Lock\(\) inside the loop is not released by the end of the iteration`
		r.m[k] = 1
	}
}

// Register acquires the registry lock — callers must not hold it.
func (r *registry) Register(k string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[k]++
}

// deadlockViaMethod calls back into a locking method under the lock:
// the registration-under-lock recursion bug.
func (r *registry) deadlockViaMethod(k string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.Register(k) // want `r\.Register re-acquires r\.mu`
}

// bumpLocked violates the Locked-suffix convention.
func (r *registry) bumpLocked(k string) {
	r.Register(k) // want `calls r\.Register, which re-acquires it`
}

// incLocked is the conforming Locked-suffix helper: plain field work.
func (r *registry) incLocked(k string) {
	r.m[k]++
}

type embeddedReg struct {
	sync.Mutex
	n int
}

// inc locks through the embedded mutex and releases inline.
func (e *embeddedReg) inc() {
	e.Lock()
	e.n++
	e.Unlock()
}

var pkgMu sync.Mutex

// okClosure: a literal with its own locking is analyzed on its own.
func okClosure(fn func()) func() {
	return func() {
		pkgMu.Lock()
		defer pkgMu.Unlock()
		fn()
	}
}

// badClosure leaks inside the literal.
func badClosure() func() {
	return func() {
		pkgMu.Lock() // want `pkgMu\.Lock\(\) is not released on every path`
	}
}

type rwReg struct {
	mu sync.RWMutex
	m  map[string]int
}

// read uses the read side correctly.
func (r *rwReg) read(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[k]
}

// leakRead leaks the read lock.
func (r *rwReg) leakRead(k string) int {
	r.mu.RLock()  // want `r\.mu\.RLock\(\) is not released on every path`
	return r.m[k] // want `return while r\.mu is held`
}
