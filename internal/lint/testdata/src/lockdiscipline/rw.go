package fix

import "sync"

// RWMutex read-path discipline: RLock follows the same
// release-on-all-paths rule as Lock, and cross-mode acquisitions on
// one RWMutex self-deadlock.

type cache struct {
	mu sync.RWMutex
	m  map[string]int
}

// readOK is the canonical RLock/defer-RUnlock shape.
func (c *cache) readOK(k string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m[k]
}

// readBothPaths releases the read lock inline on every path.
func (c *cache) readBothPaths(k string) int {
	c.mu.RLock()
	if v, ok := c.m[k]; ok {
		c.mu.RUnlock()
		return v
	}
	c.mu.RUnlock()
	return 0
}

// readMissingUnlock never releases the read side.
func (c *cache) readMissingUnlock(k string) {
	c.mu.RLock() // want `c\.mu\.RLock\(\) is not released on every path`
	_ = c.m[k]
}

// readLeakOnEarlyReturn releases only on the miss path.
func (c *cache) readLeakOnEarlyReturn(k string) int {
	c.mu.RLock()
	if v, ok := c.m[k]; ok {
		return v // want `return while c\.mu is held`
	}
	c.mu.RUnlock()
	return 0
}

// recursiveRead deadlocks if a writer queues between the two RLocks:
// sync.RWMutex blocks new readers once a writer waits.
func (c *cache) recursiveRead() {
	c.mu.RLock()
	c.mu.RLock() // want `c\.mu is locked again while already held`
	c.mu.RUnlock()
	c.mu.RUnlock()
}

// upgrade is the RLock-then-Lock self-upgrade: the Lock waits for
// readers to drain, and this goroutine is one of them.
func (c *cache) upgrade(k string) {
	c.mu.RLock()
	c.mu.Lock() // want `c\.mu\.Lock\(\) upgrades the read lock held since line \d+ — RLock-then-Lock self-deadlocks`
	c.m[k] = 1
	c.mu.Unlock()
	c.mu.RUnlock()
}

// upgradeUnderDefer still deadlocks: the deferred RUnlock runs only
// after the Lock would have returned.
func (c *cache) upgradeUnderDefer(k string) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.mu.Lock() // want `c\.mu\.Lock\(\) upgrades the read lock held since line \d+ — RLock-then-Lock self-deadlocks`
	c.m[k] = 1
	c.mu.Unlock()
}

// readUnderWrite hangs behind our own write hold.
func (c *cache) readUnderWrite(k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mu.RLock() // want `c\.mu\.RLock\(\) while c\.mu\.Lock\(\) is held \(locked at line \d+\) — read-locking a write-held mutex self-deadlocks`
	v := c.m[k]
	c.mu.RUnlock()
	return v
}

// writeSet is a write-locking method: calling it with the read lock
// held is the interprocedural form of the upgrade deadlock.
func (c *cache) writeSet(k string, v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[k] = v
}

func (c *cache) upgradeViaMethod(k string) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if _, ok := c.m[k]; !ok {
		c.writeSet(k, 1) // want `c\.writeSet write-locks c\.mu while this function holds its read lock — RLock-then-Lock self-deadlocks`
	}
}

// getShared is a read-locking method: calling it under the write lock
// hangs behind ourselves.
func (c *cache) getShared(k string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m[k]
}

func (c *cache) readViaMethodUnderWrite(k string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[k] = c.getShared(k) + 1 // want `c\.getShared read-locks c\.mu, whose write lock is already held here — self-deadlock`
}

// handoffOK: independent read sections back to back are fine.
func (c *cache) handoffOK(k string) int {
	c.mu.RLock()
	v := c.m[k]
	c.mu.RUnlock()
	c.mu.Lock()
	c.m[k] = v + 1
	c.mu.Unlock()
	return v
}
