package fix

// Fixture for conservation: every drop-counter mutation must be
// post-dominated by exactly one obs ledger attribution. Matching is by
// method name (fixtures import only the standard library), so a local
// ledger type with the obs.Recorder method names exercises the same
// code path the capture plane does.

type ledger struct{}

func (ledger) DropN(cause string, n uint64)        {}
func (ledger) AbandonQueue(cause string, n uint64) {}
func (ledger) JourneyDrop(cause string)            {}

// Cause constants mirror the obs DropCause naming convention.
const (
	DropBus           = "bus"
	DropQueueHang     = "queue-hang"
	DropHostLostCrash = "host-lost-crash"
)

type stats struct {
	wireDropped    uint64
	captureDropped uint64
	hostLost       uint64
	lostPerHost    map[string]uint64
	CaptureDrops   uint64
	delivered      uint64
}

// attributed is the canonical shape: mutate, then charge the ledger
// once with a cause.
func (s *stats) attributed(led ledger) {
	s.wireDropped++
	led.DropN(DropBus, 1)
}

// unattributed counts a drop the ledger never hears about.
func (s *stats) unattributed() {
	s.wireDropped++ // want `drop counter s\.wireDropped is mutated without an obs ledger attribution; exactly one DropN/PendingDrop/DescDrop/ChunkDrop/AbandonQueue must post-dominate the mutation`
	s.delivered++
}

// doubleCharged books one drop twice: the gate equality would read
// high on the ledger side.
func (s *stats) doubleCharged(led ledger) {
	s.wireDropped++ // want `drop counter s\.wireDropped is attributed to the obs ledger 2 times in its window; exactly one attribution must post-dominate the mutation`
	led.DropN(DropBus, 1)
	led.DropN(DropBus, 1)
}

// causeDisagreement: a journey hook may accompany the ledger call but
// must name the same cause.
func (s *stats) causeDisagreement(led ledger) {
	s.wireDropped++ // want `attributions for drop counter s\.wireDropped disagree on cause: DropBus vs DropQueueHang`
	led.DropN(DropBus, 1)
	led.JourneyDrop(DropQueueHang)
}

// journeyAlongside: same cause on both is fine, and the journey hook
// does not count toward the exactly-one ledger requirement.
func (s *stats) journeyAlongside(led ledger) {
	s.captureDropped++
	led.DropN(DropQueueHang, 1)
	led.JourneyDrop(DropQueueHang)
}

// consecutiveCounters: a total and its per-host breakdown form one
// accounting site sharing one attribution window.
func (s *stats) consecutiveCounters(led ledger, host string) {
	s.hostLost++
	s.lostPerHost[host]++
	led.DropN(DropHostLostCrash, 1)
}

// aggregationCopy sums counters for a report; copies whose RHS reads
// the same-named field are not drop sites.
func (s *stats) aggregationCopy(q *stats) {
	s.CaptureDrops += q.CaptureDrops
}

// chargeDrop pairs its own mutation with a direct ledger call, which
// also makes it a depth-one ledger-writing helper for callers.
func (s *stats) chargeDrop(led ledger) {
	s.wireDropped++
	led.DropN(DropBus, 1)
}

// viaHelper attributes through the helper instead of a direct call.
func (s *stats) viaHelper(led ledger) {
	s.captureDropped++
	s.chargeDrop(led)
}

// orphanAttribution charges the ledger with no preceding counter: a
// drop attributed but counted nowhere breaks the partition from the
// other side.
func (s *stats) orphanAttribution(led ledger) {
	s.delivered++
	led.AbandonQueue(DropQueueHang, 3) // want `obs AbandonQueue attribution has no preceding drop-counter mutation in this scope`
}

// allowedOrphan documents the triage path: an allow directive with a
// reason keeps the exception visible in the inventory.
func (s *stats) allowedOrphan(led ledger) {
	//wirelint:allow conservation fixture demonstrates a reasoned exception
	led.DropN(DropBus, 2)
}
