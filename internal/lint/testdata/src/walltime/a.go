package fix

import (
	"math/rand"
	"time"

	wall "time"
)

// violations: every banned wall-clock entry point and the
// process-seeded rand globals.
func violations() {
	_ = time.Now()                     // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond)       // want `time\.Sleep blocks on the wall clock`
	_ = time.Since(time.Time{})        // want `time\.Since reads the wall clock`
	<-time.After(time.Second)          // want `time\.After blocks on the wall clock`
	_ = time.NewTicker(time.Second)    // want `time\.NewTicker ticks on the wall clock`
	_ = time.NewTimer(time.Second)     // want `time\.NewTimer schedules on the wall clock`
	_ = wall.Now()                     // want `time\.Now reads the wall clock`
	_ = rand.Intn(10)                  // want `rand\.Intn draws from the process-seeded global source`
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle draws from the process-seeded global source`
	_ = rand.Float64()                 // want `rand\.Float64 draws from the process-seeded global source`
}

// conforming: time's pure types and arithmetic, and explicitly seeded
// generators, are fine.
func conforming() {
	var d time.Duration = 5 * time.Millisecond
	_ = d.Nanoseconds()
	var t0 time.Time
	_ = t0.IsZero()
	r := rand.New(rand.NewSource(42))
	_ = r.Intn(10)
}
