package fix

import (
	"testing"
	"time"
)

// Test files may read the wall clock freely: benchmarks and timeouts
// are wall-clock business.
func TestWallClockAllowedInTests(t *testing.T) {
	start := time.Now()
	if time.Since(start) < 0 {
		t.Fatal("clock went backwards")
	}
}
