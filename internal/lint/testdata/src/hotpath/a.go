package fix

import "fmt"

type queue struct {
	buf []byte
	n   int
}

var sink func()

func consume(x interface{}) { _ = x }

// hotViolations exercises every allocation check.
//
//wirecap:hotpath
func hotViolations(q *queue, vals []int) int {
	s := fmt.Sprintf("%d", len(vals)) // want `fmt\.Sprintf allocates and boxes`
	_ = s
	sink = func() { q.n++ }  // want `function literal in hot path allocates a closure`
	q.buf = append(q.buf, 1) // want `append in hot path may grow its backing array`
	m := make(map[int]int)   // want `unsized make\(map\[int\]int\) in hot path allocates`
	m[1] = 1
	b := make([]byte, q.n) // want `make in hot path allocates per call`
	_ = b
	var box interface{} = q.n // want `interface boxing`
	_ = box
	consume(q.n)                // want `argument q\.n is implicitly converted to`
	name := "q" + string(q.buf) // want `string concatenation allocates in hot path` `\[\]byte<->string conversion copies and allocates`
	_ = name
	return q.n
}

// hotConforming is a real hot-path shape: indexing, copying into
// preallocated storage, integer arithmetic — and a panic guard whose
// formatting is cold.
//
//wirecap:hotpath
func hotConforming(q *queue, frame []byte) int {
	n := copy(q.buf, frame)
	q.n += n
	if q.n < 0 {
		panic(fmt.Sprintf("impossible count %d", q.n))
	}
	return n
}

func (q *queue) val() int { return q.n }

// hotMethodValue: binding a method as a value allocates a closure.
//
//wirecap:hotpath
func hotMethodValue(q *queue) func() int {
	return q.val // want `method value q\.val allocates a bound closure`
}

// notAnnotated allocates freely; only annotated functions are checked.
func notAnnotated() string {
	return fmt.Sprintf("%d", 1)
}
