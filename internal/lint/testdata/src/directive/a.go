package fix

import "time"

// allowedTrailing: a trailing directive with a reason suppresses the
// finding on its own line.
func allowedTrailing() time.Time {
	return time.Now() //wirelint:allow walltime fixture exercises trailing form
}

// allowedStandalone: a directive alone on a line governs the next line.
func allowedStandalone() time.Time {
	//wirelint:allow walltime fixture exercises standalone form
	return time.Now()
}

// missingReason: an allow without a reason is itself a finding, and
// suppresses nothing.
func missingReason() time.Time {
	return time.Now() //wirelint:allow walltime // want `is missing a reason` `time\.Now reads the wall clock`
}

// unknownRule: naming a rule that does not exist is a finding.
func unknownRule() {
	_ = 0 //wirelint:allow nosuchrule because reasons // want `unknown rule "nosuchrule"`
}

// unusedAllow: an allow that suppresses nothing must be removed.
func unusedAllow() {
	_ = 1 //wirelint:allow walltime nothing here reads the clock // want `suppresses nothing`
}

// danglingHotpath: a hotpath marker that annotates no function is a
// finding.
func danglingHotpath() {
	//wirecap:hotpath // want `annotates nothing`
	_ = 2
}
