package fix

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Fixture for determinism: taint from nondeterminism sources through
// assignments, returns, and call edges into ordered sinks. The
// walltime-package-boundary source has no stdlib analogue and is
// exercised by the real-module triage instead (cmd/ci-gate).

// mapRangeDirect is the canonical finding: map iteration order printed
// as-is.
func mapRangeDirect(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want `nondeterministic value reaches ordered sink fmt.Println: iteration order of map m at a\.go:\d+; sort or canonicalize before emitting`
	}
}

// mapRangeSorted launders through sort.Strings: collecting keys and
// sorting them canonicalizes the order, so no finding.
func mapRangeSorted(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k)
	}
}

// lenOfMapRange: counts are order-independent even when the collection
// was filled in map order.
func lenOfMapRange(m map[string]int) {
	var got []string
	for k := range m {
		got = append(got, k)
	}
	fmt.Println(len(got))
}

// wallClock taints through an intermediate assignment.
func wallClock(b *strings.Builder) {
	stamp := time.Now().String()
	b.WriteString(stamp) // want `nondeterministic value reaches ordered sink WriteString: wall clock time.Now at a\.go:\d+; sort or canonicalize before emitting`
}

// unseededRand is a source even without assignment chains.
func unseededRand() {
	fmt.Printf("jitter=%d\n", rand.Int()) // want `nondeterministic value reaches ordered sink fmt.Printf: process-seeded rand.Int at a\.go:\d+; sort or canonicalize before emitting`
}

// chanReceive: select/receive ordering is scheduler-dependent outside
// the virtual-time domain package.
func chanReceive(ch chan string) {
	v := <-ch
	fmt.Println(v) // want `nondeterministic value reaches ordered sink fmt.Println: channel receive ordering at a\.go:\d+; sort or canonicalize before emitting`
}

// firstKey returns a map-order-dependent value: the taint is recorded
// in the function summary and surfaces at the caller's sink.
func firstKey(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}

func printFirstKey(m map[string]int) {
	fmt.Println(firstKey(m)) // want `nondeterministic value reaches ordered sink fmt.Println: iteration order of map m at a\.go:\d+ via firstKey; sort or canonicalize before emitting`
}

// emitLabel sinks its parameter: callers passing tainted values get
// the finding at their call site, attributed through the summary.
func emitLabel(label string) {
	fmt.Println(label)
}

func emitMapKeys(m map[string]int) {
	for k := range m {
		emitLabel(k) // want `nondeterministic value reaches ordered sink fmt.Println \(inside emitLabel\): iteration order of map m at a\.go:\d+; sort or canonicalize before emitting`
	}
}

// passThrough forwards its parameter to its return: taint flows
// param -> return -> caller sink across two summary edges.
func passThrough(s string) string { return s }

func printThrough(m map[string]int) {
	for k := range m {
		fmt.Println(passThrough(k)) // want `nondeterministic value reaches ordered sink fmt.Println: iteration order of map m at a\.go:\d+; sort or canonicalize before emitting`
	}
}

// allowed documents a triaged exception: the directive suppresses the
// finding and the allow inventory records the reason.
func allowed(m map[string]int) {
	for k := range m {
		fmt.Println(k) //wirelint:allow determinism fixture demonstrates a reasoned exception
	}
}
