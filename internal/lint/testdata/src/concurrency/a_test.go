package fix

import "testing"

// Test files may use raw concurrency freely: stress harnesses and
// race-detector tests exist precisely to hammer the domain runtime
// from many goroutines.
func TestConcurrencyAllowedInTests(t *testing.T) {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
