package fix

// violations: every raw concurrency primitive the domain runtime is
// supposed to own exclusively.
func violations() {
	ch := make(chan int, 1) // want `make\(chan\) outside the domain runtime`
	go func() {             // want `go statement outside the domain runtime`
		ch <- 1 // want `channel send outside the domain runtime`
	}()
	_ = <-ch // want `channel receive outside the domain runtime`

	done := make(chan struct{}) // want `make\(chan\) outside the domain runtime`
	select {                    // want `select statement outside the domain runtime`
	case <-done: // select cases report once, at the select
	default:
	}

	for range ch { // want `range over channel outside the domain runtime`
	}
}

// conforming: slices and maps make freely, arrow-free control flow is
// untouched, and declaring a channel type (without making or using one)
// is legal — interfaces over the domain package mention them.
func conforming() {
	s := make([]int, 4)
	m := make(map[string]int)
	_ = append(s, len(m))
	var _ chan int
	for i := range s {
		_ = i
	}
}
