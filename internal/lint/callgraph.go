package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural substrate under wirelint's
// module-wide analyzers (hotpathflow, determinism, conservation): a
// static call graph over every declared function in the module.
//
// Nodes are keyed by the types.Func FullName rather than by object
// identity, because the source-importing loader type-checks each
// package twice — once as an analysis unit (with its in-package test
// files) and once as an import unit — and the two checks mint distinct
// *types.Func objects for the same declaration. A call site in package
// A resolves, through A's type info, to the import-unit object of
// package B; keying by FullName folds that object onto B's analysis
// unit, where the body is available.
//
// The graph is intentionally a static over/under-approximation in the
// usual ways: calls through interface methods, function-typed values,
// and reflection have no edge (the analyzers that ride on the graph
// document what that means for them), and function literals are not
// nodes — their bodies belong to the enclosing declaration.

// A CallGraph is the module-wide static call graph.
type CallGraph struct {
	// Nodes maps a function key (types.Func FullName) to its node. Only
	// functions declared in the module (and therefore carrying a body)
	// appear.
	Nodes map[string]*CGNode
}

// A CGNode is one declared function or method.
type CGNode struct {
	Key  string
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Calls are the static call sites in the body, in source order.
	Calls []CGEdge
}

// A CGEdge is one static call site.
type CGEdge struct {
	// CalleeKey identifies the callee by FullName; resolve through
	// CallGraph.Nodes to see whether it is module-internal.
	CalleeKey string
	// Callee is the callee object as seen from the caller's package
	// (possibly an import-unit object).
	Callee *types.Func
	// Pos is the call site.
	Pos token.Pos
	// Call is the call expression itself.
	Call *ast.CallExpr
	// Cold marks call sites inside a block that terminates in panic;
	// hot-path analyzers skip them, matching the base hotpath rule.
	Cold bool
}

// funcKey returns the graph key for fn, folding generic instantiations
// onto their origin declaration.
func funcKey(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	if o := fn.Origin(); o != nil {
		fn = o
	}
	return fn.FullName()
}

// testFile reports whether the file containing pos is a _test.go file.
func testFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// BuildCallGraph walks every analysis unit of the module and records a
// node per declared function with its outgoing static call edges.
// When two analysis units declare the same key (a package and its
// external-test unit never do, but an in-package test re-check could),
// the first unit in module order wins — package order is sorted by the
// loader, so the graph is deterministic.
func BuildCallGraph(m *Module) *CallGraph {
	g := &CallGraph{Nodes: make(map[string]*CGNode)}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				key := funcKey(fn)
				if _, dup := g.Nodes[key]; dup {
					continue
				}
				node := &CGNode{Key: key, Fn: fn, Decl: fd, Pkg: pkg}
				node.Calls = collectCalls(pkg, fd)
				g.Nodes[key] = node
			}
		}
	}
	return g
}

// collectCalls lists the static call sites in fd's body, marking those
// inside panic-terminated blocks cold.
func collectCalls(pkg *Package, fd *ast.FuncDecl) []CGEdge {
	cold := coldRanges(fd.Body)
	inCold := func(pos token.Pos) bool {
		for _, r := range cold {
			if r[0] <= pos && pos < r[1] {
				return true
			}
		}
		return false
	}
	var out []CGEdge
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pkg.Info, call)
		if callee == nil {
			return true
		}
		out = append(out, CGEdge{
			CalleeKey: funcKey(callee),
			Callee:    callee,
			Pos:       call.Pos(),
			Call:      call,
			Cold:      inCold(call.Pos()),
		})
		return true
	})
	return out
}

// calleeFunc resolves the static callee of a call expression: a named
// function, a method on a concrete type, or an interface method (which
// will have no node in the graph). Builtins, conversions, and calls of
// function-typed values yield nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			fn, _ := info.Uses[id].(*types.Func)
			return fn
		}
	case *ast.IndexListExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			fn, _ := info.Uses[id].(*types.Func)
			return fn
		}
	}
	return nil
}

// SortedKeys returns the node keys in deterministic order; module
// analyzers iterate the graph through this so their diagnostics come
// out in a stable order before the runner's final sort.
func (g *CallGraph) SortedKeys() []string {
	keys := make([]string, 0, len(g.Nodes))
	for k := range g.Nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// shortName renders a function for diagnostics without the
// module-path noise: "Engine.quarantine" for methods, "Deliver" for
// plain functions.
func shortName(fn *types.Func) string {
	if fn == nil {
		return "?"
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}
