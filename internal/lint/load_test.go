package lint

import (
	"strings"
	"testing"
)

// TestModuleClean runs the full analyzer suite over the whole module and
// requires zero live findings: every violation is either fixed or carries
// a //wirelint:allow directive with a reason. This is the same contract
// `make lint` enforces in CI.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	m, err := LoadModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	findings, sum, err := Run(m, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) == 0 && sum.Packages == 0 {
		t.Fatal("no packages analyzed — loader found nothing")
	}
	t.Logf("analyzed %d packages, %d allowlisted exceptions", sum.Packages, sum.Allowed)

	// The fleet control plane must pass the determinism fence with no
	// exemptions at all: its placement-independence guarantee (digests
	// byte-identical across -domains) rests on the package having zero
	// goroutines, wall clocks, or unsorted map emissions — by
	// construction, not by //wirelint:allow.
	for _, f := range sum.AllowedList {
		if strings.Contains(f.File, "internal/fleet/") {
			t.Errorf("internal/fleet carries an allow directive (%s at %s:%d): "+
				"the fleet plane must stay exemption-free", f.Rule, f.File, f.Line)
		}
	}

	// The flight recorder's allow count is pinned: the 11 committed
	// exemptions are all in the single-host packet-trace store (obs.go) —
	// 9 from the original fence plus the two the interprocedural pass
	// surfaced (the journal append in Recorder.Action and the sampled
	// flow label in PktArrive). The fleet observability plane —
	// journeys, health sampler, ledger, merge — was built without any; a
	// new allow in internal/obs means a hot-path append crept in where a
	// bounded or off-path structure belongs, and needs a design look,
	// not a directive.
	obsAllows := 0
	for _, f := range sum.AllowedList {
		if strings.Contains(f.File, "internal/obs/") {
			obsAllows++
		}
	}
	if obsAllows != 11 {
		t.Errorf("internal/obs carries %d allow directives, pinned at 11: "+
			"new observability code must pass the fence by construction", obsAllows)
	}
}

// allowBudget pins the exact number of allowlisted exceptions per
// package tree. Every entry is a deliberate, reasoned triage; the
// budget makes adding one a visible, reviewed act (bump the number
// here alongside the directive) and deleting code that carried one
// equally visible. Trees not listed must carry zero.
var allowBudget = map[string]int{
	"internal/core":     14,
	"internal/obs":      11,
	"internal/engines":  10,
	"internal/mem":      9,
	"internal/vtime":    3,
	"cmd/ci-gate":       4,
	"internal/walltime": 2,
}

// TestAllowBudget enforces the per-package allow budget over the whole
// module using the same allow inventory `wirelint -json` emits.
func TestAllowBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	m, err := LoadModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	_, sum, err := Run(m, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]int)
	for _, f := range sum.AllowedList {
		dir := f.File
		if i := strings.LastIndex(dir, "/"); i >= 0 {
			dir = dir[:i]
		}
		got[dir]++
	}
	for dir, want := range allowBudget {
		if got[dir] != want {
			t.Errorf("%s has %d allowlisted exceptions, budget is %d", dir, got[dir], want)
		}
	}
	for dir, n := range got {
		if _, budgeted := allowBudget[dir]; !budgeted {
			t.Errorf("%s has %d allowlisted exceptions but no budget entry; zero is the default", dir, n)
		}
	}
}
