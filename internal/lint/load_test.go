package lint

import (
	"strings"
	"testing"
)

// TestModuleClean runs the full analyzer suite over the whole module and
// requires zero live findings: every violation is either fixed or carries
// a //wirelint:allow directive with a reason. This is the same contract
// `make lint` enforces in CI.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	m, err := LoadModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	findings, sum, err := Run(m, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) == 0 && sum.Packages == 0 {
		t.Fatal("no packages analyzed — loader found nothing")
	}
	t.Logf("analyzed %d packages, %d allowlisted exceptions", sum.Packages, sum.Allowed)

	// The fleet control plane must pass the determinism fence with no
	// exemptions at all: its placement-independence guarantee (digests
	// byte-identical across -domains) rests on the package having zero
	// goroutines, wall clocks, or unsorted map emissions — by
	// construction, not by //wirelint:allow.
	for _, f := range sum.AllowedList {
		if strings.Contains(f.File, "internal/fleet/") {
			t.Errorf("internal/fleet carries an allow directive (%s at %s:%d): "+
				"the fleet plane must stay exemption-free", f.Rule, f.File, f.Line)
		}
	}

	// The flight recorder's allow count is pinned: the 9 committed
	// exemptions are all in the single-host packet-trace store (obs.go).
	// The fleet observability plane — journeys, health sampler, ledger,
	// merge — was built without any; a new allow in internal/obs means a
	// hot-path append crept in where a bounded or off-path structure
	// belongs, and needs a design look, not a directive.
	obsAllows := 0
	for _, f := range sum.AllowedList {
		if strings.Contains(f.File, "internal/obs/") {
			obsAllows++
		}
	}
	if obsAllows != 9 {
		t.Errorf("internal/obs carries %d allow directives, pinned at 9: "+
			"new observability code must pass the fence by construction", obsAllows)
	}
}
