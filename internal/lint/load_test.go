package lint

import "testing"

// TestModuleClean runs the full analyzer suite over the whole module and
// requires zero live findings: every violation is either fixed or carries
// a //wirelint:allow directive with a reason. This is the same contract
// `make lint` enforces in CI.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	m, err := LoadModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	findings, sum, err := Run(m, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) == 0 && sum.Packages == 0 {
		t.Fatal("no packages analyzed — loader found nothing")
	}
	t.Logf("analyzed %d packages, %d allowlisted exceptions", sum.Packages, sum.Allowed)
}
