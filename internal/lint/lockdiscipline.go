package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockAnalyzer enforces the repo's locking discipline, including the
// recursion-guard rule behind the labels_overflowed fix: a method that
// runs with its receiver's lock held must never call back into a method
// that re-acquires it. Concretely it checks, per function:
//
//   - every sync.Mutex/RWMutex Lock/RLock is released on every path —
//     by an Unlock on the path or a defer (deferring inside a loop does
//     not count: it releases at function return, not iteration end);
//   - no path returns while a non-deferred lock is held;
//   - no call re-acquires a mutex the caller already holds, where
//     "re-acquires" includes calling any method of this package that
//     (transitively) locks the same receiver field — the self-deadlock
//     that metric registration or chunk-pool calls under the registry
//     or pool lock would cause;
//   - functions whose name ends in "Locked" (the convention for
//     run-with-lock-held helpers) must not call locking methods of
//     their own receiver at all;
//   - RWMutex read paths follow the same all-paths release rule, and
//     cross-mode acquisitions on one RWMutex — Lock while the read
//     side is held (the RLock-then-Lock upgrade) or RLock while the
//     write side is held — are flagged as self-deadlocks, directly and
//     through calls to locking methods, deferred releases included:
//     sync.RWMutex blocks new readers once a writer queues, so the
//     upgrade hangs against the caller's own read hold.
//
// The path analysis is deliberately conservative: branch-local locking
// is tracked within the branch, and states merge by intersection, so a
// finding means a concrete path, while exotic-but-correct patterns
// (conditional lock handoff between functions) take a //wirelint:allow
// lockdiscipline directive with a reason.
var LockAnalyzer = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "check Lock/Unlock pairing on all paths and re-entrant acquisition",
	Run:  runLock,
}

type heldLock struct {
	pos      token.Pos
	deferred bool
	// acquiredHere marks locks taken within the current loop body, for
	// the not-released-by-iteration-end check.
	acquiredHere bool
}

type lockChecker struct {
	pass *Pass
	// locking maps a method object to the receiver-relative path of the
	// mutex it (transitively) acquires, e.g. ".mu" — or "" when the
	// mutex is embedded in the receiver itself — with a "/r" suffix
	// when the acquisition is the read side (RLock).
	locking map[*types.Func]string
	inLoop  bool
}

func runLock(pass *Pass) error {
	c := &lockChecker{pass: pass, locking: lockingMethods(pass)}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd)
		}
	}
	return nil
}

// mutexOp classifies a call as a sync.Mutex/RWMutex operation. The key
// identifies the mutex by the source expression it is reached through
// ("r.mu", "mu"), with an "/r" suffix for the read side of an RWMutex.
func (c *lockChecker) mutexOp(call *ast.CallExpr) (key string, lock, unlock bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	s := c.pass.Info.Selections[sel]
	if s == nil {
		return "", false, false
	}
	obj := s.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", false, false
	}
	key = types.ExprString(sel.X)
	switch obj.Name() {
	case "Lock":
		return key, true, false
	case "Unlock":
		return key, false, true
	case "RLock":
		return key + "/r", true, false
	case "RUnlock":
		return key + "/r", false, true
	}
	return "", false, false
}

// lockingMethods computes, to a fixpoint, which methods of this package
// acquire a mutex reachable from their receiver, and through which
// field path.
func lockingMethods(pass *Pass) map[*types.Func]string {
	out := make(map[*types.Func]string)
	type mdecl struct {
		fn   *types.Func
		recv types.Object
		body *ast.BlockStmt
	}
	var methods []mdecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			recv := pass.Info.Defs[fd.Recv.List[0].Names[0]]
			if fn == nil || recv == nil {
				continue
			}
			methods = append(methods, mdecl{fn, recv, fd.Body})
		}
	}
	recvRel := func(recv types.Object, x ast.Expr) (string, bool) {
		full := types.ExprString(x)
		if full == recv.Name() {
			return "", true
		}
		if rest, ok := strings.CutPrefix(full, recv.Name()+"."); ok {
			return "." + rest, true
		}
		return "", false
	}
	for changed := true; changed; {
		changed = false
		for _, m := range methods {
			if _, done := out[m.fn]; done {
				continue
			}
			found := ""
			ok := false
			ast.Inspect(m.body, func(n ast.Node) bool {
				if ok {
					return false
				}
				call, isCall := n.(*ast.CallExpr)
				if !isCall {
					return true
				}
				sel, isSel := call.Fun.(*ast.SelectorExpr)
				if !isSel {
					return true
				}
				// Direct mutex acquisition through the receiver.
				if s := pass.Info.Selections[sel]; s != nil {
					obj := s.Obj()
					if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && (obj.Name() == "Lock" || obj.Name() == "RLock") {
						if rel, hit := recvRel(m.recv, sel.X); hit {
							if obj.Name() == "RLock" {
								rel += "/r"
							}
							found, ok = rel, true
							return false
						}
					}
				}
				// A call to another locking method on the receiver.
				if callee, isFn := pass.Info.Uses[sel.Sel].(*types.Func); isFn {
					if rel, isLocking := out[callee]; isLocking {
						if base, hit := recvRel(m.recv, sel.X); hit && base == "" {
							found, ok = rel, true
							return false
						}
					}
				}
				return true
			})
			if ok {
				out[m.fn] = found
				changed = true
			}
		}
	}
	return out
}

func (c *lockChecker) checkFunc(fd *ast.FuncDecl) {
	var recv types.Object
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		recv = c.pass.Info.Defs[fd.Recv.List[0].Names[0]]
	}
	held := make(map[string]*heldLock)
	c.inLoop = false
	c.walkStmts(fd.Body.List, held)
	for key, h := range held {
		if !h.deferred {
			c.pass.Reportf(h.pos, "%s is not released on every path; Unlock before returning or defer the Unlock", lockName(key))
		}
	}
	if recv != nil && strings.HasSuffix(fd.Name.Name, "Locked") {
		c.checkLockedConvention(fd, recv)
	}
}

// checkLockedConvention flags calls from a ...Locked helper to anything
// that (re-)acquires its receiver's locks — the static form of the
// registration-under-lock recursion guard.
func (c *lockChecker) checkLockedConvention(fd *ast.FuncDecl, recv types.Object) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, isIdent := sel.X.(*ast.Ident)
		if !isIdent || c.pass.Info.Uses[base] != recv {
			return true
		}
		if callee, ok := c.pass.Info.Uses[sel.Sel].(*types.Func); ok {
			if _, locking := c.locking[callee]; locking {
				c.pass.Reportf(call.Pos(),
					"%s runs with the lock held (Locked suffix) but calls %s.%s, which re-acquires it; use the *Locked variant or restructure",
					fd.Name.Name, base.Name, sel.Sel.Name)
			}
		}
		if s := c.pass.Info.Selections[sel]; s != nil {
			obj := s.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && (obj.Name() == "Lock" || obj.Name() == "RLock") {
				c.pass.Reportf(call.Pos(),
					"%s runs with the lock held (Locked suffix) but re-acquires %s", fd.Name.Name, types.ExprString(sel.X))
			}
		}
		return true
	})
}

func cloneHeld(held map[string]*heldLock) map[string]*heldLock {
	out := make(map[string]*heldLock, len(held))
	for k, v := range held {
		cp := *v
		out[k] = &cp
	}
	return out
}

// terminates reports whether a statement list cannot fall through.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.IfStmt:
		if s.Else != nil {
			eb, ok := s.Else.(*ast.BlockStmt)
			return terminates(s.Body.List) && ok && terminates(eb.List)
		}
	case *ast.BlockStmt:
		return terminates(s.List)
	}
	return false
}

func (c *lockChecker) walkStmts(stmts []ast.Stmt, held map[string]*heldLock) {
	for _, s := range stmts {
		c.walkStmt(s, held)
	}
}

func (c *lockChecker) walkStmt(s ast.Stmt, held map[string]*heldLock) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		c.scanExpr(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.scanExpr(e, held)
		}
		for _, e := range s.Lhs {
			c.scanExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.scanExpr(v, held)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		c.scanExpr(s.X, held)
	case *ast.SendStmt:
		c.scanExpr(s.Chan, held)
		c.scanExpr(s.Value, held)
	case *ast.DeferStmt:
		c.walkDefer(s, held)
	case *ast.GoStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.checkFuncLit(lit)
		}
		for _, a := range s.Call.Args {
			c.scanExpr(a, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.scanExpr(e, held)
		}
		for key, h := range held {
			if !h.deferred {
				c.pass.Reportf(s.Pos(), "return while %s is held (locked at line %d); Unlock on this path or defer the Unlock",
					strings.TrimSuffix(key, "/r"), c.pass.Fset.Position(h.pos).Line)
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		c.scanExpr(s.Cond, held)
		thenHeld := cloneHeld(held)
		c.walkStmts(s.Body.List, thenHeld)
		elseHeld := cloneHeld(held)
		if s.Else != nil {
			c.walkStmt(s.Else, elseHeld)
		}
		// Merge: if one arm terminates, the fallthrough state is the
		// other arm's; otherwise keep what both arms agree is held.
		switch {
		case terminates(s.Body.List):
			replaceHeld(held, elseHeld)
		case s.Else != nil && terminatesStmt(s.Else):
			replaceHeld(held, thenHeld)
		default:
			intersectHeld(held, thenHeld, elseHeld)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			c.scanExpr(s.Cond, held)
		}
		c.walkLoopBody(s.Body, held)
	case *ast.RangeStmt:
		c.scanExpr(s.X, held)
		c.walkLoopBody(s.Body, held)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			c.scanExpr(s.Tag, held)
		}
		c.walkClauses(s.Body, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		c.walkClauses(s.Body, held)
	case *ast.SelectStmt:
		c.walkClauses(s.Body, held)
	case *ast.BlockStmt:
		c.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		c.walkStmt(s.Stmt, held)
	}
}

func terminatesStmt(s ast.Stmt) bool {
	if b, ok := s.(*ast.BlockStmt); ok {
		return terminates(b.List)
	}
	return terminates([]ast.Stmt{s})
}

func replaceHeld(dst, src map[string]*heldLock) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

func intersectHeld(dst, a, b map[string]*heldLock) {
	for k := range dst {
		delete(dst, k)
	}
	for k, va := range a {
		if vb, ok := b[k]; ok {
			cp := *va
			cp.deferred = va.deferred && vb.deferred
			dst[k] = &cp
		}
	}
}

// walkLoopBody analyzes a loop body in a child state and flags locks
// the iteration acquires but does not release.
func (c *lockChecker) walkLoopBody(body *ast.BlockStmt, held map[string]*heldLock) {
	inner := cloneHeld(held)
	for _, h := range inner {
		h.acquiredHere = false
	}
	saved := c.inLoop
	c.inLoop = true
	c.walkStmts(body.List, inner)
	c.inLoop = saved
	for key, h := range inner {
		if h.acquiredHere && !h.deferred {
			c.pass.Reportf(h.pos, "%s inside the loop is not released by the end of the iteration",
				lockName(key))
		}
	}
}

func (c *lockChecker) walkClauses(body *ast.BlockStmt, held map[string]*heldLock) {
	for _, cl := range body.List {
		inner := cloneHeld(held)
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				c.scanExpr(e, inner)
			}
			c.walkStmts(cl.Body, inner)
		case *ast.CommClause:
			if cl.Comm != nil {
				c.walkStmt(cl.Comm, inner)
			}
			c.walkStmts(cl.Body, inner)
		}
	}
}

func (c *lockChecker) walkDefer(s *ast.DeferStmt, held map[string]*heldLock) {
	if c.inLoop {
		if key, _, unlock := c.mutexOp(s.Call); unlock {
			c.pass.Reportf(s.Pos(), "defer %s in a loop releases at function return, not iteration end", types.ExprString(s.Call.Fun))
			if h, ok := held[key]; ok {
				h.deferred = true
			}
			return
		}
	}
	if key, _, unlock := c.mutexOp(s.Call); unlock {
		if h, ok := held[key]; ok {
			h.deferred = true
		}
		return
	}
	// defer func() { ...; mu.Unlock(); ... }() — scan the literal for
	// releases and treat them as deferred.
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if key, _, unlock := c.mutexOp(call); unlock {
					if h, ok := held[key]; ok {
						h.deferred = true
					}
				}
			}
			return true
		})
	}
}

// scanExpr processes the calls inside an expression in source order:
// mutex operations update the held set, and calls that would re-acquire
// a held mutex are flagged. Function literals are checked as their own
// functions.
func (c *lockChecker) scanExpr(e ast.Expr, held map[string]*heldLock) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.checkFuncLit(n)
			return false
		case *ast.CallExpr:
			key, lock, unlock := c.mutexOp(n)
			switch {
			case lock:
				if h, exists := held[key]; exists && !h.deferred {
					c.pass.Reportf(n.Pos(), "%s is locked again while already held (locked at line %d)",
						strings.TrimSuffix(key, "/r"), c.pass.Fset.Position(h.pos).Line)
				}
				// Cross-mode acquisitions on the same RWMutex self-deadlock
				// regardless of deferred releases: the deferred RUnlock or
				// Unlock runs only after the blocking acquire would have
				// returned. sync.RWMutex blocks new readers once a writer
				// waits, so Lock-after-RLock (the read-to-write upgrade)
				// and RLock-after-Lock both hang the calling goroutine.
				if base, isRead := strings.CutSuffix(key, "/r"); isRead {
					if h, exists := held[base]; exists {
						c.pass.Reportf(n.Pos(), "%s.RLock() while %s.Lock() is held (locked at line %d) — read-locking a write-held mutex self-deadlocks",
							base, base, c.pass.Fset.Position(h.pos).Line)
					}
				} else {
					if h, exists := held[key+"/r"]; exists {
						c.pass.Reportf(n.Pos(), "%s.Lock() upgrades the read lock held since line %d — RLock-then-Lock self-deadlocks once a writer queues; release the RLock first",
							key, c.pass.Fset.Position(h.pos).Line)
					}
				}
				held[key] = &heldLock{pos: n.Pos(), acquiredHere: true}
			case unlock:
				delete(held, key)
			default:
				c.checkReacquire(n, held)
			}
		}
		return true
	})
}

// checkReacquire flags a call to a locking method whose mutex the
// caller already holds.
func (c *lockChecker) checkReacquire(call *ast.CallExpr, held map[string]*heldLock) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	callee, ok := c.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	rel, locking := c.locking[callee]
	if !locking {
		return
	}
	key := types.ExprString(sel.X) + rel
	if _, heldNow := held[key]; heldNow && !strings.HasSuffix(key, "/r") {
		c.pass.Reportf(call.Pos(),
			"%s.%s re-acquires %s, which is already held here — self-deadlock (registration/pool calls must not run under this lock)",
			types.ExprString(sel.X), sel.Sel.Name, key)
		return
	}
	// Cross-mode deadlocks through a callee: a method that write-locks a
	// mutex whose read side the caller holds hangs on the upgrade, and a
	// method that read-locks a write-held mutex hangs behind ourselves.
	if base, isRead := strings.CutSuffix(key, "/r"); isRead {
		if _, heldNow := held[base]; heldNow {
			c.pass.Reportf(call.Pos(),
				"%s.%s read-locks %s, whose write lock is already held here — self-deadlock",
				types.ExprString(sel.X), sel.Sel.Name, base)
		}
	} else {
		if _, heldNow := held[key+"/r"]; heldNow {
			c.pass.Reportf(call.Pos(),
				"%s.%s write-locks %s while this function holds its read lock — RLock-then-Lock self-deadlocks; release the RLock before calling",
				types.ExprString(sel.X), sel.Sel.Name, key)
		}
	}
}

func (c *lockChecker) checkFuncLit(lit *ast.FuncLit) {
	held := make(map[string]*heldLock)
	saved := c.inLoop
	c.inLoop = false
	c.walkStmts(lit.Body.List, held)
	c.inLoop = saved
	for key, h := range held {
		if !h.deferred {
			c.pass.Reportf(h.pos, "%s is not released on every path; Unlock before returning or defer the Unlock", lockName(key))
		}
	}
}

// lockName renders a held-set key back to the acquiring call.
func lockName(key string) string {
	if base, ok := strings.CutSuffix(key, "/r"); ok {
		return base + ".RLock()"
	}
	return key + ".Lock()"
}
