package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// RuleDirective is the meta-rule under which malformed, unknown, or
// unused directives are reported. It is not allowlistable: exceptions
// to the exception mechanism would be invisible.
const RuleDirective = "directive"

// allowPrefix and hotpathMarker are the two comment directives wirelint
// understands. Both use the no-space machine-directive form, like
// //go:build.
const (
	allowPrefix   = "//wirelint:allow"
	hotpathMarker = "//wirecap:hotpath"
)

// An allow suppresses findings of the named rules on target line.
type allow struct {
	file   string
	target int
	rules  []string
	reason string
	pos    token.Pos
	used   bool
}

// directives is the parsed directive state for one package.
type directives struct {
	allows   []*allow
	findings []Diagnostic
}

// parseDirectives scans a package's comments for wirelint directives.
// A directive on a line of its own applies to the following line; a
// trailing directive applies to its own line. Malformed directives
// (missing reason, unknown rule) and //wirecap:hotpath markers that are
// not part of a function's doc comment become findings immediately.
func parseDirectives(pkg *Package, fset *token.FileSet, known map[string]bool) *directives {
	d := &directives{}
	for _, f := range pkg.Files {
		// Doc-comment ranges of declared functions, to validate that
		// hotpath markers actually annotate something.
		var docRanges [][2]token.Pos
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				docRanges = append(docRanges, [2]token.Pos{fd.Doc.Pos(), fd.Doc.End()})
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				switch {
				case text == hotpathMarker || strings.HasPrefix(text, hotpathMarker+" "):
					attached := false
					for _, r := range docRanges {
						if c.Pos() >= r[0] && c.End() <= r[1] {
							attached = true
							break
						}
					}
					if !attached {
						d.findings = append(d.findings, Diagnostic{
							Pos:  c.Pos(),
							Rule: RuleDirective,
							Message: "//wirecap:hotpath is not part of a function's doc comment; " +
								"it annotates nothing",
						})
					}
				case strings.HasPrefix(text, allowPrefix):
					d.parseAllow(pkg, fset, c, known)
				}
			}
		}
	}
	return d
}

func (d *directives) parseAllow(pkg *Package, fset *token.FileSet, c *ast.Comment, known map[string]bool) {
	rest := strings.TrimPrefix(c.Text, allowPrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return // some other token, e.g. //wirelint:allowfoo
	}
	// Anything after a second "//" is commentary, not part of the
	// directive: //wirelint:allow walltime reason // aside.
	rest, _, _ = strings.Cut(rest, "//")
	fields := strings.Fields(rest)
	pos := fset.Position(c.Slash)
	if len(fields) == 0 {
		d.findings = append(d.findings, Diagnostic{
			Pos: c.Pos(), Rule: RuleDirective,
			Message: "//wirelint:allow needs a rule list and a reason",
		})
		return
	}
	rules := strings.Split(fields[0], ",")
	for _, r := range rules {
		if r == RuleDirective {
			d.findings = append(d.findings, Diagnostic{
				Pos: c.Pos(), Rule: RuleDirective,
				Message: "the directive rule itself cannot be allowlisted",
			})
			return
		}
		if !known[r] {
			d.findings = append(d.findings, Diagnostic{
				Pos: c.Pos(), Rule: RuleDirective,
				Message: "//wirelint:allow names unknown rule " + strconvQuote(r),
			})
			return
		}
	}
	reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
	if reason == "" {
		d.findings = append(d.findings, Diagnostic{
			Pos: c.Pos(), Rule: RuleDirective,
			Message: "//wirelint:allow " + fields[0] + " is missing a reason; " +
				"exceptions must say why",
		})
		return
	}
	target := pos.Line
	if standaloneComment(pkg.Src[pos.Filename], pos) {
		target = pos.Line + 1
	}
	d.allows = append(d.allows, &allow{
		file: pos.Filename, target: target, rules: rules, reason: reason, pos: c.Pos(),
	})
}

// standaloneComment reports whether only whitespace precedes the
// comment on its line, in which case the directive governs the next
// line rather than its own.
func standaloneComment(src []byte, pos token.Position) bool {
	if src == nil {
		return false
	}
	start := pos.Offset - (pos.Column - 1)
	if start < 0 || start > pos.Offset || pos.Offset > len(src) {
		return false
	}
	for _, b := range src[start:pos.Offset] {
		if b != ' ' && b != '\t' {
			return false
		}
	}
	return true
}

// match returns the allow covering (file, line, rule), if any, marking
// it used.
func (d *directives) match(file string, line int, rule string) *allow {
	for _, a := range d.allows {
		if a.file != file || a.target != line {
			continue
		}
		for _, r := range a.rules {
			if r == rule {
				a.used = true
				return a
			}
		}
	}
	return nil
}

// unused returns findings for allows that suppressed nothing, but only
// for allows whose every rule was actually run (covered), so partial
// -rules selections do not produce false positives.
func (d *directives) unused(covered map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, a := range d.allows {
		if a.used {
			continue
		}
		all := true
		for _, r := range a.rules {
			if !covered[r] {
				all = false
				break
			}
		}
		if all {
			out = append(out, Diagnostic{
				Pos: a.pos, Rule: RuleDirective,
				Message: "//wirelint:allow " + strings.Join(a.rules, ",") +
					" suppresses nothing; stale exceptions must be removed",
			})
		}
	}
	return out
}

func strconvQuote(s string) string { return "\"" + s + "\"" }
