package lint

import (
	"go/types"
	"path/filepath"
	"strconv"
	"strings"
)

// HotpathFlowAnalyzer closes the gap the per-function hotpath analyzer
// leaves open: a //wirecap:hotpath annotation guards only the annotated
// body, so an annotated function could call an unannotated helper that
// allocates freely and the suite would stay silent. This analyzer
// propagates hotness transitively along the module call graph: for
// every call site in an annotated function whose (module-internal,
// unannotated) callee can reach an allocating construct — in its own
// body or through further unannotated calls — the call site is a
// finding, and the diagnostic spells out the offending chain down to
// the allocation so the fix is obvious: annotate the chain (which puts
// every body under the base hotpath checks) or hoist the allocation.
//
// Calls to annotated callees are not findings — those bodies are
// already checked — and call sites inside panic-terminated (cold)
// blocks are skipped, matching the base rule. Calls through interfaces
// and function values have no static edge and are therefore not
// traversed; the capture path's dispatch is direct calls and pre-bound
// timers, so this under-approximation is the same one the runtime
// AllocsPerRun budgets backstop.
var HotpathFlowAnalyzer = &Analyzer{
	Name:      "hotpathflow",
	Doc:       "propagate //wirecap:hotpath along call edges and flag calls that reach allocations",
	RunModule: runHotpathFlow,
}

// allocEvidence is why a function is considered allocating: the chain
// of unannotated module functions from it down to the function whose
// body holds the construct, plus the construct's own description.
type allocEvidence struct {
	chain []*CGNode
	desc  string
	where string // file:line of the allocating construct
}

type hotFlow struct {
	mp    *ModulePass
	memo  map[string]*allocEvidence
	state map[string]int // 0 unvisited, 1 in progress, 2 done
}

func runHotpathFlow(mp *ModulePass) error {
	hf := &hotFlow{mp: mp, memo: make(map[string]*allocEvidence), state: make(map[string]int)}
	g := mp.Graph
	for _, key := range g.SortedKeys() {
		n := g.Nodes[key]
		if !isHotpath(n.Decl) || testFile(mp.Module.Fset, n.Decl.Pos()) {
			continue
		}
		for _, e := range n.Calls {
			if e.Cold {
				continue
			}
			callee, ok := g.Nodes[e.CalleeKey]
			if !ok || isHotpath(callee.Decl) {
				continue
			}
			ev := hf.reaches(callee)
			if ev == nil {
				continue
			}
			mp.Reportf(e.Pos,
				"call to %s escapes the hot path: %s is not marked //wirecap:hotpath and reaches an allocation via %s (%s: %s); annotate the chain or hoist the allocation",
				shortName(e.Callee), shortName(callee.Fn), renderChain(n, ev.chain), ev.where, ev.desc)
		}
	}
	return nil
}

// reaches reports whether executing n can hit an allocating construct
// without passing through an annotated (and therefore checked)
// function. Cycles are cut by treating in-progress nodes as
// non-allocating — a cycle allocates only if some node on it does,
// which that node's own visit discovers.
func (hf *hotFlow) reaches(n *CGNode) *allocEvidence {
	if hf.state[n.Key] == 1 {
		return nil
	}
	if hf.state[n.Key] == 2 {
		return hf.memo[n.Key]
	}
	hf.state[n.Key] = 1
	ev := hf.localAlloc(n)
	if ev == nil {
		for _, e := range n.Calls {
			if e.Cold {
				continue
			}
			callee, ok := hf.mp.Graph.Nodes[e.CalleeKey]
			if !ok || isHotpath(callee.Decl) {
				continue
			}
			if sub := hf.reaches(callee); sub != nil {
				ev = &allocEvidence{
					chain: append([]*CGNode{n}, sub.chain...),
					desc:  sub.desc,
					where: sub.where,
				}
				break
			}
		}
	}
	hf.state[n.Key] = 2
	hf.memo[n.Key] = ev
	return ev
}

// localAlloc runs the base hotpath body checks in collect mode and
// returns the first allocating construct, if any.
func (hf *hotFlow) localAlloc(n *CGNode) *allocEvidence {
	sig, _ := n.Fn.Type().(*types.Signature)
	allocs := collectAllocs(n.Pkg.Info, n.Decl.Body, sig)
	if len(allocs) == 0 {
		return nil
	}
	pos := hf.mp.Module.Fset.Position(allocs[0].Pos)
	desc := allocs[0].Message
	// The base-rule messages end in hot-path phrasing; keep only the
	// construct description so the chain diagnostic reads naturally.
	if i := strings.Index(desc, " in hot path"); i > 0 {
		desc = desc[:i]
	}
	return &allocEvidence{
		chain: []*CGNode{n},
		desc:  desc,
		where: filepath.Base(pos.Filename) + ":" + strconv.Itoa(pos.Line),
	}
}

func renderChain(root *CGNode, chain []*CGNode) string {
	var b strings.Builder
	b.WriteString(shortName(root.Fn))
	for _, n := range chain {
		b.WriteString(" -> ")
		b.WriteString(shortName(n.Fn))
	}
	return b.String()
}
