// Package lint is wirelint: a suite of static analyzers that
// mechanically enforce the simulator's determinism, hot-path, and
// locking invariants. The compiler cannot see these rules — that every
// cost is charged in virtual time, that exported orderings never depend
// on map iteration, that annotated hot paths stay allocation-free, and
// that every lock acquisition is released on every path — so before
// this package they were guarded only by runtime golden-digest and
// AllocsPerRun tests, which catch violations late and far from the
// offending line.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic, fixture tests driven by `// want`
// comments) but is self-contained on the standard library: packages are
// type-checked from source with go/types, resolving module-internal
// imports recursively and standard-library imports through
// go/importer's source importer. When the x/tools dependency becomes
// vendorable the analyzers can move onto it (and gain `go vet
// -vettool` support, whose unitchecker protocol needs export-data
// importers) without changing their Run functions.
//
// Two comment directives steer the suite:
//
//	//wirelint:allow <rule>[,<rule>...] <reason>
//	//wirecap:hotpath
//
// The first suppresses findings of the named rules on its own line (or,
// when it stands alone on a line, on the line that follows) and must
// carry a reason — a missing reason, an unknown rule name, and a
// directive that suppresses nothing are themselves findings, so the
// exception list can only shrink by being read. The second, placed in a
// function's doc comment, opts that function into the hotpath
// analyzer's allocation checks.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one rule: a name (used in //wirelint:allow
// directives and -rules selections), documentation, and exactly one of
// two run functions. Run is invoked once per loaded package and sees a
// single type-checked unit; RunModule is invoked once per module with
// the whole package set and the shared call graph — the interprocedural
// analyzers (hotpathflow, determinism, conservation) use this form.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass) error
	RunModule func(*ModulePass) error
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	PkgPath  string

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos attributed to the pass's analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     pos,
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// A ModulePass carries one module analyzer's view of the whole loaded
// module: every analysis unit plus the shared call graph (built once
// and reused across module analyzers).
type ModulePass struct {
	Analyzer *Analyzer
	Module   *Module
	Graph    *CallGraph

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos attributed to the pass's
// analyzer. The runner routes it to the package owning pos's file, so
// //wirelint:allow directives apply exactly as they do for per-package
// analyzers.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     pos,
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is a raw finding before directive filtering.
type Diagnostic struct {
	Pos     token.Pos
	Rule    string
	Message string
}

// A Finding is a resolved diagnostic: positioned, and either live or
// suppressed by an //wirelint:allow directive whose reason it carries.
type Finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
	Allowed bool   `json:"allowed,omitempty"`
	Reason  string `json:"reason,omitempty"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.File, f.Line, f.Col, f.Message, f.Rule)
}

// Analyzers returns the full wirelint suite in reporting order: the
// five per-package analyzers followed by the three interprocedural
// ones.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		WalltimeAnalyzer, MaporderAnalyzer, HotpathAnalyzer, LockAnalyzer, ConcurrencyAnalyzer,
		HotpathFlowAnalyzer, DeterminismAnalyzer, ConservationAnalyzer,
	}
}

// KnownRules returns the rule names valid in //wirelint:allow
// directives: every analyzer plus the directive meta-rule itself.
func KnownRules() map[string]bool {
	rules := map[string]bool{RuleDirective: true}
	for _, a := range Analyzers() {
		rules[a.Name] = true
	}
	return rules
}
