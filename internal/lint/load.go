package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one analysis unit: a type-checked set of files from a
// single directory. Test files are analyzed together with the package
// they test; an external _test package in the same directory forms a
// second unit.
type Package struct {
	PkgPath string
	Dir     string
	Files   []*ast.File
	Src     map[string][]byte // filename -> raw source, for directive layout
	Types   *types.Package
	Info    *types.Info
}

// A Module is a loaded module tree ready for analysis.
type Module struct {
	Root string
	Path string
	Fset *token.FileSet
	Pkgs []*Package
}

type loader struct {
	root    string
	modpath string
	fset    *token.FileSet
	std     types.ImporterFrom
	units   map[string]*types.Package // import units: non-test files only
	loading map[string]bool
	src     map[string][]byte
}

// LoadModule parses and type-checks every package under root (the
// directory containing go.mod), resolving module-internal imports from
// source and standard-library imports through the compiler's source
// importer. Directories named testdata and hidden directories are
// skipped, matching the go tool.
func LoadModule(root string) (*Module, error) {
	modpath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &loader{
		root:    root,
		modpath: modpath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		units:   make(map[string]*types.Package),
		loading: make(map[string]bool),
		src:     make(map[string][]byte),
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	m := &Module{Root: root, Path: modpath, Fset: fset}
	for _, dir := range dirs {
		pkgs, err := l.analysisUnits(dir)
		if err != nil {
			return nil, err
		}
		m.Pkgs = append(m.Pkgs, pkgs...)
	}
	return m, nil
}

func modulePath(root string) (string, error) {
	b, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: reading go.mod: %w", err)
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

func (l *loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modpath, nil
	}
	return l.modpath + "/" + filepath.ToSlash(rel), nil
}

func (l *loader) parseDir(dir string) (nonTest, inTest, extTest []*ast.File, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var base string
	var parsed []*ast.File
	var names []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		fn := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(fn)
		if err != nil {
			return nil, nil, nil, err
		}
		l.src[fn] = src
		f, err := parser.ParseFile(l.fset, fn, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		parsed = append(parsed, f)
		names = append(names, e.Name())
		if !strings.HasSuffix(e.Name(), "_test.go") && base == "" {
			base = f.Name.Name
		}
	}
	for i, f := range parsed {
		switch {
		case !strings.HasSuffix(names[i], "_test.go"):
			nonTest = append(nonTest, f)
		case strings.HasSuffix(f.Name.Name, "_test"):
			extTest = append(extTest, f)
		default:
			inTest = append(inTest, f)
		}
	}
	return nonTest, inTest, extTest, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

func (l *loader) check(pkgPath string, files []*ast.File, info *types.Info) (*types.Package, error) {
	conf := types.Config{Importer: (*loaderImporter)(l)}
	pkg, err := conf.Check(pkgPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", pkgPath, err)
	}
	return pkg, nil
}

// analysisUnits builds the unit(s) to analyze for one directory.
func (l *loader) analysisUnits(dir string) ([]*Package, error) {
	nonTest, inTest, extTest, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	pkgPath, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	var out []*Package
	if len(nonTest)+len(inTest) > 0 {
		files := append(append([]*ast.File(nil), nonTest...), inTest...)
		info := newInfo()
		pkg, err := l.check(pkgPath, files, info)
		if err != nil {
			return nil, err
		}
		out = append(out, &Package{PkgPath: pkgPath, Dir: dir, Files: files, Src: l.src, Types: pkg, Info: info})
	}
	if len(extTest) > 0 {
		info := newInfo()
		pkg, err := l.check(pkgPath+"_test", extTest, info)
		if err != nil {
			return nil, err
		}
		out = append(out, &Package{PkgPath: pkgPath + "_test", Dir: dir, Files: extTest, Src: l.src, Types: pkg, Info: info})
	}
	return out, nil
}

// importUnit type-checks the non-test files of a module-internal
// package for use as an import, caching by path and detecting cycles.
func (l *loader) importUnit(pkgPath string) (*types.Package, error) {
	if pkg, ok := l.units[pkgPath]; ok {
		return pkg, nil
	}
	if l.loading[pkgPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", pkgPath)
	}
	l.loading[pkgPath] = true
	defer delete(l.loading, pkgPath)

	rel := strings.TrimPrefix(strings.TrimPrefix(pkgPath, l.modpath), "/")
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	nonTest, _, _, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(nonTest) == 0 {
		return nil, fmt.Errorf("lint: no Go files for import %q in %s", pkgPath, dir)
	}
	pkg, err := l.check(pkgPath, nonTest, newInfo())
	if err != nil {
		return nil, err
	}
	l.units[pkgPath] = pkg
	return pkg, nil
}

// loaderImporter adapts loader to types.ImporterFrom: module-internal
// paths resolve from source within the module, everything else goes to
// the standard library's source importer.
type loaderImporter loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := (*loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modpath || strings.HasPrefix(path, l.modpath+"/") {
		return l.importUnit(path)
	}
	return l.std.ImportFrom(path, dir, 0)
}

// LoadDir type-checks a single directory as one standalone
// single-package module — the fixture loader behind the analyzer
// tests. Fixture imports are limited to the standard library.
func LoadDir(dir, pkgPath string) (*Module, error) {
	fset := token.NewFileSet()
	l := &loader{
		root:    dir,
		modpath: pkgPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		units:   make(map[string]*types.Package),
		loading: make(map[string]bool),
		src:     make(map[string][]byte),
	}
	nonTest, inTest, _, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	files := append(nonTest, inTest...)
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := newInfo()
	pkg, err := l.check(pkgPath, files, info)
	if err != nil {
		return nil, err
	}
	return &Module{Root: dir, Path: pkgPath, Fset: fset, Pkgs: []*Package{
		{PkgPath: pkgPath, Dir: dir, Files: files, Src: l.src, Types: pkg, Info: info},
	}}, nil
}
