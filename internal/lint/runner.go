package lint

import (
	"fmt"
	"path/filepath"
	"sort"
)

// A Summary is the roll-up the driver prints: how much was checked, how
// many findings are live, and — so exceptions stay visible — every
// allowlisted finding with its reason.
type Summary struct {
	Packages      int            `json:"packages"`
	Findings      int            `json:"findings"`
	Allowed       int            `json:"allowed"`
	ByRule        map[string]int `json:"by_rule,omitempty"`
	AllowedByRule map[string]int `json:"allowed_by_rule,omitempty"`
	AllowedList   []Finding      `json:"allowed_list,omitempty"`
}

// Run executes the analyzers over every package of the module, applies
// //wirelint:allow directives, and returns live findings (sorted by
// position) plus the summary. Directive hygiene — missing reasons,
// unknown rules, markers that annotate nothing, allows that suppress
// nothing — is reported under the "directive" rule alongside the
// analyzers' own findings.
func Run(m *Module, azs []*Analyzer) ([]Finding, Summary, error) {
	covered := make(map[string]bool, len(azs))
	for _, a := range azs {
		covered[a.Name] = true
	}
	known := KnownRules()
	sum := Summary{
		Packages:      len(m.Pkgs),
		ByRule:        make(map[string]int),
		AllowedByRule: make(map[string]int),
	}
	// Module analyzers report anywhere in the module; their diagnostics
	// are routed to the package owning the diagnostic's file so that
	// package's //wirelint:allow directives apply.
	fileOwner := make(map[string]*Package)
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			name := m.Fset.Position(f.Pos()).Filename
			if _, taken := fileOwner[name]; !taken {
				fileOwner[name] = pkg
			}
		}
	}
	pkgDiags := make(map[*Package][]Diagnostic)
	var moduleDiags []Diagnostic
	var graph *CallGraph
	for _, a := range azs {
		if a.RunModule == nil {
			continue
		}
		if graph == nil {
			graph = BuildCallGraph(m)
		}
		mp := &ModulePass{Analyzer: a, Module: m, Graph: graph, diags: &moduleDiags}
		if err := a.RunModule(mp); err != nil {
			return nil, sum, fmt.Errorf("lint: %s: %w", a.Name, err)
		}
	}
	for _, d := range moduleDiags {
		pkg := fileOwner[m.Fset.Position(d.Pos).Filename]
		if pkg == nil && len(m.Pkgs) > 0 {
			pkg = m.Pkgs[0]
		}
		pkgDiags[pkg] = append(pkgDiags[pkg], d)
	}

	var live []Finding
	seen := make(map[string]bool)
	for _, pkg := range m.Pkgs {
		diags := pkgDiags[pkg]
		for _, a := range azs {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     m.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				PkgPath:  pkg.PkgPath,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, sum, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
		dirs := parseDirectives(pkg, m.Fset, known)
		for _, d := range diags {
			pos := m.Fset.Position(d.Pos)
			f := Finding{
				File: relPath(m.Root, pos.Filename), Line: pos.Line, Col: pos.Column,
				Rule: d.Rule, Message: d.Message,
			}
			if a := dirs.match(pos.Filename, pos.Line, d.Rule); a != nil {
				f.Allowed = true
				f.Reason = a.reason
				// Dedup like live findings: a package re-analyzed as an
				// in-package test unit must not double its inventory.
				key := f.String()
				if seen[key] {
					continue
				}
				seen[key] = true
				sum.Allowed++
				sum.AllowedByRule[d.Rule]++
				sum.AllowedList = append(sum.AllowedList, f)
				continue
			}
			key := f.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			live = append(live, f)
		}
		diags = append(dirs.findings, dirs.unused(covered)...)
		for _, d := range diags {
			pos := m.Fset.Position(d.Pos)
			f := Finding{
				File: relPath(m.Root, pos.Filename), Line: pos.Line, Col: pos.Column,
				Rule: d.Rule, Message: d.Message,
			}
			key := f.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			live = append(live, f)
		}
	}
	sortFindings(live)
	sortFindings(sum.AllowedList)
	for _, f := range live {
		sum.ByRule[f.Rule]++
	}
	sum.Findings = len(live)
	return live, sum, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

func relPath(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
		return rel
	}
	return file
}
