package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"
)

// DeterminismAnalyzer tracks nondeterministic VALUES where the
// per-package analyzers track nondeterministic CALLS. walltime bans the
// wall clock at the call site and maporder flags map iteration that
// emits directly from the loop — but a value can be born
// nondeterministic in one function, travel through assignments,
// returns, and call edges, and only reach exported bytes three frames
// later, where no per-function rule can see the connection. This
// analyzer runs taint analysis over the module call graph:
//
// Sources: map-range key/value bindings (iteration order), banned
// time.* calls outside internal/walltime (the sanctioned wrapper —
// note an //wirelint:allow walltime directive silences the call-site
// rule but not the taint), math/rand top-level draws from the
// process-seeded source, and channel receives outside
// internal/vtime/domain (arrival order is scheduler-dependent; the
// domain runtime's mailbox merges are the sanctioned path).
//
// Propagation: through assignments (plain reassignment of an ident is
// a strong update and clears taint), append, composite literals,
// field/index access, pure-function calls, and — via per-function
// summaries computed to a fixpoint — returns and parameters of
// module-internal functions. Numeric += accumulation over a tainted
// value stays clean (sums are order-commutative; string concatenation
// is not). Calls into sort/slices that sort a value launder it: sorted
// data no longer carries iteration order.
//
// Sinks: the ordered-output calls that feed golden digests and
// operator-facing reports — strings.Builder/bytes.Buffer/hash writes,
// fmt.Fprint*, and the repo's digest and report writers (Digest,
// WriteReports, WriteJourneys, WriteFleetLedger, WriteHealth,
// WriteChrome, WriteForensics, WriteTimeline, WritePacket, WriteText,
// WriteCSV). The diagnostic names the source, its position, and the
// call chain the taint rode in on.
//
// Known under-approximations (shared with the AllocsPerRun-style
// runtime backstops): taint through struct fields of a receiver,
// control-flow taint (branching on a tainted value), and writes
// through pointers are not tracked.
var DeterminismAnalyzer = &Analyzer{
	Name:      "determinism",
	Doc:       "taint-track nondeterministic values from sources to digest/report sinks",
	RunModule: runDeterminism,
}

// namedSinks are the repo's digest and export entry points: calls whose
// receiver or arguments must be deterministic because their output is
// golden-digested or operator-facing.
var namedSinks = map[string]bool{
	"Digest": true, "WriteReports": true, "WriteJourneys": true,
	"WriteFleetLedger": true, "WriteHealth": true, "WriteChrome": true,
	"WriteForensics": true, "WriteTimeline": true, "WritePacket": true,
	"WriteText": true, "WriteCSV": true,
}

// A taint describes why a value is nondeterministic. The real part
// (src != "") names a nondeterminism source the value derives from; the
// params set records which enclosing-function parameters flow into it
// (pseudo taint, used only to build summaries). A single value can
// carry both — appending a wall-clock-derived string to a
// parameter-derived slice yields a value tainted by each — which is why
// this is a set and not a single origin: dropping the second origin
// loses real findings.
type taint struct {
	src    string
	where  string
	chain  []string // functions the real taint passed through, source-first
	params []int    // sorted parameter indexes flowing into the value
}

func realTaint(src, where string) *taint { return &taint{src: src, where: where} }

func (t *taint) hasReal() bool { return t != nil && t.src != "" }

// mergeTaint unions two taints: the first real part wins, parameter
// sets union. Inputs are never mutated.
func mergeTaint(a, b *taint) *taint {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := &taint{src: a.src, where: a.where, chain: a.chain}
	if out.src == "" {
		out.src, out.where, out.chain = b.src, b.where, b.chain
	}
	out.params = append(out.params, a.params...)
	for _, p := range b.params {
		seen := false
		for _, q := range out.params {
			if q == p {
				seen = true
				break
			}
		}
		if !seen {
			out.params = append(out.params, p)
		}
	}
	sortInts(out.params)
	return out
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func (t *taint) describe() string {
	s := t.src + " at " + t.where
	if len(t.chain) > 0 {
		s += " via " + strings.Join(t.chain, " -> ")
	}
	return s
}

// A dtSummary is one function's interprocedural behavior: whether it
// can return a nondeterministic value, which parameters flow to its
// return, and which parameters it writes to an ordered sink.
type dtSummary struct {
	ret       *taint
	paramRet  map[int]bool
	paramSink map[int]string
}

func (s *dtSummary) equal(o *dtSummary) bool {
	if (s.ret == nil) != (o.ret == nil) || len(s.paramRet) != len(o.paramRet) || len(s.paramSink) != len(o.paramSink) {
		return false
	}
	for k := range s.paramRet {
		if !o.paramRet[k] {
			return false
		}
	}
	for k, v := range s.paramSink {
		if o.paramSink[k] != v {
			return false
		}
	}
	return true
}

type dtCheck struct {
	mp        *ModulePass
	summaries map[string]*dtSummary
	reported  map[string]bool
}

// maxDtRounds bounds the interprocedural fixpoint. Summaries only grow,
// so each round either changes at least one summary or terminates; the
// bound is a backstop for pathological call chains.
const maxDtRounds = 8

func runDeterminism(mp *ModulePass) error {
	c := &dtCheck{
		mp:        mp,
		summaries: make(map[string]*dtSummary),
		reported:  make(map[string]bool),
	}
	keys := mp.Graph.SortedKeys()
	for round := 0; round < maxDtRounds; round++ {
		changed := false
		for _, key := range keys {
			n := mp.Graph.Nodes[key]
			if testFile(mp.Module.Fset, n.Decl.Pos()) {
				continue
			}
			sum := c.analyze(n, false)
			if old, ok := c.summaries[key]; !ok || !old.equal(sum) {
				changed = true
			}
			c.summaries[key] = sum
		}
		if !changed {
			break
		}
	}
	for _, key := range keys {
		n := mp.Graph.Nodes[key]
		if testFile(mp.Module.Fset, n.Decl.Pos()) {
			continue
		}
		c.analyze(n, true)
	}
	return nil
}

// dtScope is the per-function analysis state.
type dtScope struct {
	c       *dtCheck
	node    *CGNode
	info    *types.Info
	tainted map[types.Object]*taint
	sum     *dtSummary
	report  bool
}

// analyze runs the intra-function taint pass over one function,
// seeding parameters with pseudo taints so flows to returns and sinks
// become summary facts. The statement walk runs twice so taint carried
// around a loop back-edge reaches uses earlier in the body.
func (c *dtCheck) analyze(n *CGNode, report bool) *dtSummary {
	sc := &dtScope{
		c:       c,
		node:    n,
		info:    n.Pkg.Info,
		tainted: make(map[types.Object]*taint),
		sum:     &dtSummary{paramRet: make(map[int]bool), paramSink: make(map[int]string)},
		report:  report,
	}
	if ft := n.Decl.Type; ft.Params != nil {
		i := 0
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				if obj := sc.info.Defs[name]; obj != nil {
					sc.tainted[obj] = &taint{params: []int{i}}
				}
				i++
			}
			if len(field.Names) == 0 {
				i++
			}
		}
	}
	for pass := 0; pass < 2; pass++ {
		sc.walkStmts(n.Decl.Body.List)
	}
	return sc.sum
}

func (sc *dtScope) pos(p token.Pos) string {
	ps := sc.c.mp.Module.Fset.Position(p)
	return filepath.Base(ps.Filename) + ":" + strconv.Itoa(ps.Line)
}

func (sc *dtScope) emit(pos token.Pos, sink string, t *taint) {
	if t == nil {
		return
	}
	for _, p := range t.params {
		if _, ok := sc.sum.paramSink[p]; !ok {
			sc.sum.paramSink[p] = sink
		}
	}
	if !t.hasReal() || !sc.report {
		return
	}
	key := sc.pos(pos) + "|" + sink + "|" + t.describe()
	if sc.c.reported[key] {
		return
	}
	sc.c.reported[key] = true
	sc.c.mp.Reportf(pos,
		"nondeterministic value reaches ordered sink %s: %s; sort or canonicalize before emitting",
		sink, t.describe())
}

func (sc *dtScope) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		sc.walkStmt(s)
	}
}

func (sc *dtScope) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		sc.walkAssign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var t *taint
					if i < len(vs.Values) {
						t = sc.eval(vs.Values[i])
					}
					if obj := sc.info.Defs[name]; obj != nil {
						sc.setTaint(obj, t)
					}
				}
			}
		}
	case *ast.RangeStmt:
		xt := sc.eval(s.X)
		var elemT *taint
		if tv, ok := sc.info.Types[s.X]; ok && tv.Type != nil {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				elemT = realTaint("iteration order of map "+types.ExprString(s.X), sc.pos(s.For))
			}
		}
		elemT = mergeTaint(elemT, xt)
		for _, v := range []ast.Expr{s.Key, s.Value} {
			if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
				obj := sc.info.Defs[id]
				if obj == nil {
					obj = sc.info.Uses[id]
				}
				if obj != nil {
					sc.setTaint(obj, elemT)
				}
			}
		}
		sc.walkStmts(s.Body.List)
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			t := sc.eval(res)
			if t == nil {
				continue
			}
			for _, p := range t.params {
				sc.sum.paramRet[p] = true
			}
			if t.hasReal() && sc.sum.ret == nil {
				sc.sum.ret = &taint{src: t.src, where: t.where, chain: t.chain}
			}
		}
	case *ast.ExprStmt:
		sc.eval(s.X)
	case *ast.IfStmt:
		if s.Init != nil {
			sc.walkStmt(s.Init)
		}
		sc.eval(s.Cond)
		sc.walkStmts(s.Body.List)
		if s.Else != nil {
			sc.walkStmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			sc.walkStmt(s.Init)
		}
		if s.Cond != nil {
			sc.eval(s.Cond)
		}
		sc.walkStmts(s.Body.List)
		if s.Post != nil {
			sc.walkStmt(s.Post)
		}
	case *ast.BlockStmt:
		sc.walkStmts(s.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			sc.walkStmt(s.Init)
		}
		if s.Tag != nil {
			sc.eval(s.Tag)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					sc.eval(e)
				}
				sc.walkStmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			sc.walkStmt(s.Init)
		}
		sc.walkStmt(s.Assign)
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				sc.walkStmts(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		sc.walkStmt(s.Stmt)
	case *ast.DeferStmt:
		sc.eval(s.Call)
	case *ast.GoStmt:
		sc.eval(s.Call)
	case *ast.SendStmt:
		sc.eval(s.Value)
	case *ast.IncDecStmt:
		// Counters stay clean: ++ on a tainted-adjacent value is
		// order-commutative.
	}
}

func (sc *dtScope) walkAssign(s *ast.AssignStmt) {
	if s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		rt := sc.eval(s.Rhs[0])
		if rt == nil {
			return
		}
		// Numeric accumulation over nondeterministically ordered values
		// is order-commutative; string building is not.
		if tv, ok := sc.info.Types[s.Lhs[0]]; ok && isStringType(tv.Type) {
			if id, ok := s.Lhs[0].(*ast.Ident); ok {
				if obj := sc.lookup(id); obj != nil {
					sc.setTaint(obj, rt)
				}
			}
		}
		return
	}
	if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		// Other op-assigns (|=, &=, ...) on ordered accumulation are
		// commutative too.
		for _, r := range s.Rhs {
			sc.eval(r)
		}
		return
	}
	var rts []*taint
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		// Multi-value: x, y := f(); the taint applies to every result —
		// except error/bool results, which are control signals whose
		// content does not carry ordered payload.
		t := sc.eval(s.Rhs[0])
		for _, lhs := range s.Lhs {
			lt := t
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := sc.lookup(id); obj != nil && isControlType(obj.Type()) {
					lt = nil
				}
			}
			rts = append(rts, lt)
		}
	} else {
		for _, r := range s.Rhs {
			rts = append(rts, sc.eval(r))
		}
	}
	for i, lhs := range s.Lhs {
		if i >= len(rts) {
			break
		}
		if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
			if obj := sc.lookup(id); obj != nil {
				sc.setTaint(obj, rts[i]) // strong update: nil clears
			}
		}
	}
}

func (sc *dtScope) lookup(id *ast.Ident) types.Object {
	if obj := sc.info.Defs[id]; obj != nil {
		return obj
	}
	return sc.info.Uses[id]
}

// setTaint records or clears a variable's taint, but never downgrades a
// real taint to a parameter pseudo-taint mid-function.
func (sc *dtScope) setTaint(obj types.Object, t *taint) {
	if t == nil {
		delete(sc.tainted, obj)
		return
	}
	sc.tainted[obj] = t
}

// eval computes the taint of an expression, reporting sink hits and
// applying laundering side effects along the way.
func (sc *dtScope) eval(e ast.Expr) *taint {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := sc.lookup(e); obj != nil {
			return sc.tainted[obj]
		}
	case *ast.CallExpr:
		return sc.evalCall(e)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			if sc.node.Pkg.PkgPath != concurrencyExemptPkg {
				return realTaint("channel receive ordering", sc.pos(e.Pos()))
			}
			return nil
		}
		return sc.eval(e.X)
	case *ast.BinaryExpr:
		return mergeTaint(sc.eval(e.X), sc.eval(e.Y))
	case *ast.IndexExpr:
		sc.eval(e.Index)
		return sc.eval(e.X)
	case *ast.IndexListExpr:
		return sc.eval(e.X)
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := sc.info.Uses[id].(*types.PkgName); isPkg {
				return nil
			}
		}
		return sc.eval(e.X)
	case *ast.CompositeLit:
		var t *taint
		for _, elt := range e.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			t = mergeTaint(t, sc.eval(v))
		}
		return t
	case *ast.ParenExpr:
		return sc.eval(e.X)
	case *ast.StarExpr:
		return sc.eval(e.X)
	case *ast.SliceExpr:
		return sc.eval(e.X)
	case *ast.TypeAssertExpr:
		return sc.eval(e.X)
	case *ast.FuncLit:
		sc.walkStmts(e.Body.List)
	}
	return nil
}

// launderCall reports whether a call is a sort/slices/maps canonical
// ordering operation; as a side effect it clears the taint of sorted
// arguments (sort.Strings(keys) sorts in place).
func (sc *dtScope) launderCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := sc.info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	path := pn.Imported().Path()
	if path != "sort" && path != "slices" {
		return false
	}
	if !strings.HasPrefix(sel.Sel.Name, "Sort") && !sortFuncs[sel.Sel.Name] {
		return false
	}
	for _, arg := range call.Args {
		base := arg
		for {
			if ix, ok := base.(*ast.IndexExpr); ok {
				base = ix.X
				continue
			}
			if s, ok := base.(*ast.SelectorExpr); ok {
				base = s.X
				continue
			}
			break
		}
		if bid, ok := base.(*ast.Ident); ok {
			if obj := sc.lookup(bid); obj != nil {
				delete(sc.tainted, obj)
			}
		}
	}
	return true
}

func (sc *dtScope) evalCall(call *ast.CallExpr) *taint {
	if sc.launderCall(call) {
		return nil
	}
	tv, isExpr := sc.info.Types[call.Fun]
	if isExpr && tv.IsType() {
		// Conversion: taint passes through unchanged.
		if len(call.Args) == 1 {
			return sc.eval(call.Args[0])
		}
		return nil
	}
	// Argument taints (and receiver for method calls), evaluated first
	// so nested calls report their own sinks.
	var argTaints []*taint
	var allArgs *taint
	for _, a := range call.Args {
		t := sc.eval(a)
		argTaints = append(argTaints, t)
		allArgs = mergeTaint(allArgs, t)
	}
	var recv *taint
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if sc.info.Selections[sel] != nil {
			recv = sc.eval(sel.X)
		}
	}

	// Sources: banned wall-clock and process-seeded randomness calls.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := sc.info.Uses[id].(*types.PkgName); ok {
				switch pn.Imported().Path() {
				case "time":
					if _, banned := bannedTime[sel.Sel.Name]; banned && !strings.HasSuffix(sc.node.Pkg.PkgPath, "/internal/walltime") {
						return realTaint("wall clock time."+sel.Sel.Name, sc.pos(call.Pos()))
					}
				case "math/rand", "math/rand/v2":
					if bannedRand[sel.Sel.Name] {
						return realTaint("process-seeded rand."+sel.Sel.Name, sc.pos(call.Pos()))
					}
				case "fmt":
					if emitFmt[sel.Sel.Name] {
						sc.emit(call.Pos(), "fmt."+sel.Sel.Name, allArgs)
						return nil
					}
					if sel.Sel.Name == "Errorf" {
						return allArgs
					}
				}
			}
		}
	}

	// Values returned by the sanctioned walltime wrapper are wall-clock
	// readings the moment they leave that package: the walltime analyzer
	// lets the doorway exist, this one tracks what walks out of it.
	if fn := calleeFunc(sc.info, call); fn != nil && fn.Pkg() != nil {
		if p := fn.Pkg().Path(); strings.HasSuffix(p, "/internal/walltime") && sc.node.Pkg.PkgPath != p {
			return realTaint("wall-clock value from walltime."+fn.Name(), sc.pos(call.Pos()))
		}
	}

	// Sinks: ordered-output methods and the repo's digest/report writers.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		name := sel.Sel.Name
		if namedSinks[name] || (emitNames[name] && sc.info.Selections[sel] != nil) {
			if t := mergeTaint(recv, allArgs); t != nil {
				sc.emit(call.Pos(), name, t)
				return nil
			}
		}
	}

	// append: the result carries its arguments' taint. len/cap of a
	// tainted collection are counts — order-independent — and stay
	// clean, like numeric accumulation.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := sc.info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" {
				return allArgs
			}
			return nil
		}
	}

	// Module-internal callee: consult its summary.
	if fn := calleeFunc(sc.info, call); fn != nil {
		if sum, ok := sc.c.summaries[funcKey(fn)]; ok {
			var out *taint
			for i, t := range argTaints {
				if t == nil {
					continue
				}
				if sink, hit := sum.paramSink[i]; hit {
					sc.emit(call.Pos(), sink+" (inside "+shortName(fn)+")", t)
				}
				if sum.paramRet[i] {
					out = mergeTaint(out, t)
				}
			}
			if sum.ret != nil {
				out = mergeTaint(out, &taint{
					src:   sum.ret.src,
					where: sum.ret.where,
					chain: append(append([]string{}, sum.ret.chain...), shortName(fn)),
				})
			}
			// A method on a tainted receiver yields a tainted result;
			// receiver flow inside the callee is not otherwise modeled.
			return mergeTaint(out, recv)
		}
	}

	// Unknown or stdlib call: assume purity — taint flows from
	// arguments (and receiver) to result. Plain error results are
	// control signals, not ordered payload (fmt.Errorf, which embeds
	// its arguments, is handled above).
	if rtv, ok := sc.info.Types[call]; ok && isControlType(rtv.Type) {
		return nil
	}
	return mergeTaint(recv, allArgs)
}

// isControlType reports whether t is the universe error type or a bool:
// values whose content signals success/failure rather than carrying
// ordered payload.
func isControlType(t types.Type) bool {
	if t == nil {
		return false
	}
	if n, ok := t.(*types.Named); ok && n.Obj().Name() == "error" && n.Obj().Pkg() == nil {
		return true
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.Bool {
		return true
	}
	return false
}
