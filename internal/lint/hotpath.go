package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotpathAnalyzer gives line-level attribution to the allocation-free
// property that cmd/ci-gate's AllocsPerRun budgets check only in
// aggregate. Functions on the capture/poll/copy/recycle paths carry a
// //wirecap:hotpath marker in their doc comment; inside them the
// analyzer flags the constructs that allocate or box on the Go heap:
// function literals (closure capture), implicit interface conversions,
// fmt calls, string concatenation and string<->[]byte conversions,
// append, make/new, and map/slice literals. Blocks that end in panic
// are treated as cold — a corruption guard may format its death
// message.
//
// The body checks live in hotScan so the interprocedural hotpathflow
// analyzer can run them in collect mode over unannotated callees.
var HotpathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "flag allocation-causing constructs in //wirecap:hotpath functions",
	Run:  runHotpath,
}

func runHotpath(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			sig, _ := pass.Info.Defs[fd.Name].Type().(*types.Signature)
			s := &hotScan{info: pass.Info, report: pass.Reportf}
			s.checkBody(fd.Body, sig)
		}
	}
	return nil
}

func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotpathMarker || strings.HasPrefix(c.Text, hotpathMarker+" ") {
			return true
		}
	}
	return false
}

// coldRanges collects the position ranges of blocks that terminate in
// panic; findings inside them are suppressed.
func coldRanges(body *ast.BlockStmt) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		b, ok := n.(*ast.BlockStmt)
		if !ok || len(b.List) == 0 {
			return true
		}
		if es, ok := b.List[len(b.List)-1].(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					out = append(out, [2]token.Pos{b.Pos(), b.End()})
				}
			}
		}
		return true
	})
	return out
}

// A hotScan runs the hot-path allocation checks over one function body,
// reporting through a pluggable sink: the base analyzer wires report to
// Pass.Reportf, while hotpathflow collects the findings to decide
// whether an unannotated callee allocates.
type hotScan struct {
	info   *types.Info
	report func(pos token.Pos, format string, args ...any)
}

// collectAllocs runs the hot-body checks in collect mode and returns
// the raw findings.
func collectAllocs(info *types.Info, body *ast.BlockStmt, sig *types.Signature) []Diagnostic {
	var out []Diagnostic
	s := &hotScan{info: info, report: func(pos token.Pos, format string, args ...any) {
		out = append(out, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
	}}
	s.checkBody(body, sig)
	return out
}

func (s *hotScan) checkBody(body *ast.BlockStmt, declSig *types.Signature) {
	cold := coldRanges(body)
	inCold := func(pos token.Pos) bool {
		for _, r := range cold {
			if r[0] <= pos && pos < r[1] {
				return true
			}
		}
		return false
	}

	// Stack of enclosing nodes, to resolve the signature governing a
	// return statement and to tell method values from method calls.
	var stack []ast.Node
	calledFun := make(map[ast.Expr]bool)

	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if inCold(n.Pos()) {
			return true
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			s.report(n.Pos(), "function literal in hot path allocates a closure; hoist it or pre-bind it (vtime.Timer pattern)")
		case *ast.CallExpr:
			calledFun[n.Fun] = true
			s.checkCall(n)
		case *ast.SelectorExpr:
			if !calledFun[n] {
				if sel := s.info.Selections[n]; sel != nil && sel.Kind() == types.MethodVal {
					// A method value not being called is a bound-closure
					// allocation (x.M as a value).
					s.report(n.Pos(), "method value %s allocates a bound closure in hot path", types.ExprString(n))
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(s.info.Types[n].Type) {
				s.report(n.Pos(), "string concatenation allocates in hot path")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(s.info.Types[n.Lhs[0]].Type) {
				s.report(n.Pos(), "string concatenation allocates in hot path")
			}
			s.checkAssign(n)
		case *ast.ReturnStmt:
			sig := declSig
			for i := len(stack) - 2; i >= 0; i-- {
				if lit, ok := stack[i].(*ast.FuncLit); ok {
					sig, _ = s.info.Types[lit].Type.(*types.Signature)
					break
				}
			}
			s.checkReturn(n, sig)
		case *ast.CompositeLit:
			t := s.info.Types[n].Type
			if t == nil {
				break
			}
			switch t.Underlying().(type) {
			case *types.Map:
				s.report(n.Pos(), "map literal allocates in hot path")
			case *types.Slice:
				s.report(n.Pos(), "slice literal allocates in hot path")
			case *types.Struct:
				if len(stack) >= 2 {
					if u, ok := stack[len(stack)-2].(*ast.UnaryExpr); ok && u.Op == token.AND {
						s.report(u.Pos(), "&%s literal escapes and allocates in hot path", types.ExprString(n.Type))
					}
				}
			}
		case *ast.ValueSpec:
			if n.Type == nil {
				break
			}
			t := s.info.Types[n.Type].Type
			for _, v := range n.Values {
				if s.boxes(t, v) {
					s.report(v.Pos(), "%s is implicitly converted to %s in hot path (interface boxing allocates)",
						types.ExprString(v), t.String())
				}
			}
		}
		return true
	})
}

func (s *hotScan) checkCall(call *ast.CallExpr) {
	// fmt.* — always an allocation (and boxing) machine.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := s.info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				s.report(call.Pos(), "fmt.%s allocates and boxes its arguments in hot path", sel.Sel.Name)
				return
			}
		}
	}
	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := s.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				s.report(call.Pos(), "append in hot path may grow its backing array; preallocate or reuse pooled storage")
			case "make":
				if len(call.Args) == 1 {
					s.report(call.Pos(), "unsized make(%s) in hot path allocates; size it and hoist it out of the hot path", types.ExprString(call.Args[0]))
				} else {
					s.report(call.Pos(), "make in hot path allocates per call; hoist or pool the buffer")
				}
			case "new":
				s.report(call.Pos(), "new in hot path allocates; reuse pooled objects")
			}
			return
		}
	}
	tv, ok := s.info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	// Conversions: string<->[]byte copy, and conversions to interface.
	if tv.IsType() {
		if len(call.Args) != 1 {
			return
		}
		to := tv.Type
		from := s.info.Types[call.Args[0]].Type
		switch {
		case s.boxes(to, call.Args[0]):
			s.report(call.Pos(), "conversion to %s in hot path boxes (allocates)", to.String())
		case isStringType(to) && isByteSlice(from), isByteSlice(to) && isStringType(from):
			s.report(call.Pos(), "%s<->%s conversion copies and allocates in hot path", from.String(), to.String())
		}
		return
	}
	// Ordinary call: implicit interface conversions at the call boundary.
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if s.boxes(pt, arg) {
			s.report(arg.Pos(), "argument %s is implicitly converted to %s in hot path (interface boxing allocates)",
				types.ExprString(arg), pt.String())
		}
	}
}

func (s *hotScan) checkAssign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		var lt types.Type
		if as.Tok == token.DEFINE {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := s.info.Defs[id]; obj != nil {
					lt = obj.Type()
				}
			}
			// := infers the concrete type; boxing cannot happen unless
			// the variable was already declared with an interface type.
			if lt == nil {
				continue
			}
		} else if tv, ok := s.info.Types[lhs]; ok {
			lt = tv.Type
		}
		if s.boxes(lt, as.Rhs[i]) {
			s.report(as.Rhs[i].Pos(), "%s is implicitly converted to %s in hot path (interface boxing allocates)",
				types.ExprString(as.Rhs[i]), lt.String())
		}
	}
}

func (s *hotScan) checkReturn(ret *ast.ReturnStmt, sig *types.Signature) {
	if sig == nil || len(ret.Results) != sig.Results().Len() {
		return
	}
	for i, res := range ret.Results {
		rt := sig.Results().At(i).Type()
		if s.boxes(rt, res) {
			s.report(res.Pos(), "return value %s is implicitly converted to %s in hot path (interface boxing allocates)",
				types.ExprString(res), rt.String())
		}
	}
}

// boxes reports whether assigning arg to a destination of type to would
// convert a concrete value to an interface — a heap allocation on every
// execution in the general case.
func (s *hotScan) boxes(to types.Type, arg ast.Expr) bool {
	if to == nil || !types.IsInterface(to) {
		return false
	}
	tv, ok := s.info.Types[arg]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	return !types.IsInterface(tv.Type)
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune)
}
