package lint

import (
	"go/ast"
	"go/types"
)

// MaporderAnalyzer guards the byte-identical-runs invariant against
// Go's randomized map iteration. A `range` over a map is flagged when
// what happens inside the loop is order-sensitive: values flow into a
// slice append that is never sorted afterwards in the same function, or
// straight into an ordered sink (fmt.Fprint*, Write/WriteString/Encode
// methods, hash writes — the paths by which digests, metrics snapshots,
// and JSON/text exports are built). Writes into another map and
// per-iteration local accumulators are order-insensitive and stay
// legal, as does the canonical collect-keys-then-sort idiom.
var MaporderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration whose order can leak into exported bytes",
	Run:  runMaporder,
}

// emitNames are method names treated as ordered sinks. They cover
// strings.Builder, bytes.Buffer, io.Writer, hash.Hash, and the
// encoding/json encoder.
var emitNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Encode": true,
}

// emitFmt are the fmt functions that produce ordered output directly.
// The Sprint family is pure and therefore not a sink by itself.
var emitFmt = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func runMaporder(pass *Pass) error {
	for _, f := range pass.Files {
		// Walk with enough context to find the function body enclosing
		// each range statement, so "is the append sorted later?" can be
		// answered within that scope.
		var funcBodies []*ast.BlockStmt
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case nil:
				return true
			case *ast.FuncDecl:
				if n.Body != nil {
					funcBodies = append(funcBodies, n.Body)
				}
			case *ast.FuncLit:
				funcBodies = append(funcBodies, n.Body)
			case *ast.RangeStmt:
				checkMapRange(pass, n, enclosingBody(funcBodies, n))
			}
			return true
		})
	}
	return nil
}

// enclosingBody returns the innermost collected function body that
// contains n.
func enclosingBody(bodies []*ast.BlockStmt, n ast.Node) *ast.BlockStmt {
	var best *ast.BlockStmt
	for _, b := range bodies {
		if b.Pos() <= n.Pos() && n.End() <= b.End() {
			if best == nil || b.Pos() > best.Pos() {
				best = b
			}
		}
	}
	return best
}

func checkMapRange(pass *Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt) {
	tv, ok := pass.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	// Without key/value variables the body cannot depend on which
	// element is current, so order cannot leak.
	if rs.Key == nil && rs.Value == nil {
		return
	}
	mapName := types.ExprString(rs.X)

	reportedEmit := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if b, ok := pass.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
				target := call.Args[0]
				if localToRange(pass, target, rs) {
					return true
				}
				if !sortedAfter(pass, fnBody, rs, target) {
					pass.Reportf(rs.For,
						"iterating map %s appends to %s in map order; sort %s after the loop or iterate sorted keys",
						mapName, types.ExprString(target), types.ExprString(target))
				}
			}
		case *ast.SelectorExpr:
			if reportedEmit {
				return true
			}
			name := fun.Sel.Name
			if id, ok := fun.X.(*ast.Ident); ok {
				if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok {
					if pn.Imported().Path() == "fmt" && emitFmt[name] {
						pass.Reportf(rs.For,
							"iterating map %s emits output via fmt.%s in map order; iterate sorted keys instead",
							mapName, name)
						reportedEmit = true
					}
					return true
				}
			}
			if emitNames[name] && pass.Info.Selections[fun] != nil && !localToRange(pass, fun.X, rs) {
				pass.Reportf(rs.For,
					"iterating map %s writes to %s in map order; iterate sorted keys instead",
					mapName, types.ExprString(fun.X))
				reportedEmit = true
			}
		}
		return true
	})
}

// localToRange reports whether expr's base identifier is declared
// inside the range body — a per-iteration accumulator whose content
// cannot carry cross-iteration map order.
func localToRange(pass *Pass, expr ast.Expr, rs *ast.RangeStmt) bool {
	base := expr
	for {
		if sel, ok := base.(*ast.SelectorExpr); ok {
			base = sel.X
			continue
		}
		if ix, ok := base.(*ast.IndexExpr); ok {
			base = ix.X
			continue
		}
		break
	}
	id, ok := base.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	return obj != nil && rs.Body.Pos() <= obj.Pos() && obj.Pos() <= rs.Body.End()
}

// sortFuncs are the sort entry points that restore a deterministic
// order; seeing one applied to the append target after the loop makes
// the iteration safe.
var sortFuncs = map[string]bool{
	"Strings": true, "Ints": true, "Float64s": true,
	"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	"SortFunc": true, "SortStableFunc": true,
}

func sortedAfter(pass *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, target ast.Expr) bool {
	if fnBody == nil {
		return false
	}
	want := types.ExprString(target)
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !sortFuncs[sel.Sel.Name] {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.Info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if types.ExprString(arg) == want {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
