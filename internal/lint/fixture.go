package lint

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// RunFixture loads dir as a standalone fixture package, runs the given
// analyzers (plus directive processing) through the same pipeline as
// cmd/wirelint, and compares the live findings against `// want "rx"`
// expectations in the fixture source — the analysistest contract. Each
// quoted regular expression after want must match a finding message on
// that line; findings with no matching want, and wants with no matching
// finding, fail the test.
func RunFixture(t *testing.T, dir string, azs ...*Analyzer) {
	t.Helper()
	m, err := LoadDir(dir, "fix")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	findings, _, err := Run(m, azs)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}
	wants := parseWants(t, m)
	matched := make([]bool, len(findings))
	for _, w := range wants {
		found := false
		for i, f := range findings {
			if matched[i] || f.File != w.file || f.Line != w.line {
				continue
			}
			if w.rx.MatchString(f.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.rx)
		}
	}
	for i, f := range findings {
		if !matched[i] {
			t.Errorf("%s: unexpected finding: %s [%s]", dir, f, f.Rule)
		}
	}
}

type want struct {
	file string
	line int
	rx   *regexp.Regexp
}

func parseWants(t *testing.T, m *Module) []want {
	t.Helper()
	var out []want
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "// want ")
					if idx < 0 {
						continue
					}
					pos := m.Fset.Position(c.Slash)
					rxs, err := parseWantPatterns(c.Text[idx+len("// want "):])
					if err != nil {
						t.Fatalf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
					}
					for _, rx := range rxs {
						out = append(out, want{file: relPath(m.Root, pos.Filename), line: pos.Line, rx: rx})
					}
				}
			}
		}
	}
	return out
}

func parseWantPatterns(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			return nil, fmt.Errorf("expected quoted pattern at %q", s)
		}
		// Find the end of this Go-quoted string.
		var lit string
		var rest string
		if s[0] == '`' {
			end := strings.Index(s[1:], "`")
			if end < 0 {
				return nil, fmt.Errorf("unterminated pattern at %q", s)
			}
			lit, rest = s[:end+2], s[end+2:]
		} else {
			end := 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
			if end >= len(s) {
				return nil, fmt.Errorf("unterminated pattern at %q", s)
			}
			lit, rest = s[:end+1], s[end+1:]
		}
		unq, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("unquoting %s: %w", lit, err)
		}
		rx, err := regexp.Compile(unq)
		if err != nil {
			return nil, fmt.Errorf("compiling %s: %w", lit, err)
		}
		out = append(out, rx)
		s = strings.TrimSpace(rest)
	}
	return out, nil
}
