package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ConservationAnalyzer makes the runtime drop-conservation checks a
// compile-time property. The regression gate re-derives, after every
// run, that the obs ledger's causes exactly partition the drop counters
// (Received == Delivered + ChunkFiltered per engine; crash + headdrop +
// stale == FleetReceived − Aggregated fleet-wide). Those equalities
// hold only because every site that mutates a drop/loss counter also
// charges the ledger — a discipline that was, before this analyzer,
// enforced by convention and caught only when a 200-check gate run
// failed. Statically:
//
//   - every drop-counter mutation (x.FooDrops++, h.hostLost += n, ...)
//     in internal/nic, internal/core, internal/engines, and
//     internal/fleet must be post-dominated, within its enclosing
//     statement list, by exactly one obs ledger attribution — a direct
//     DropN/PendingDrop/DescDrop/ChunkDrop/AbandonQueue call, or a call
//     to a module function whose body makes one;
//   - journey fleet-drop hooks (JourneyDrop, JourneyLost, FleetReject)
//     may accompany the ledger call, and every cause-bearing
//     attribution in the window must name the same Drop* cause;
//   - a ledger attribution with no preceding counter mutation in its
//     scope is itself a finding: a drop charged to the ledger but
//     counted nowhere breaks the partition from the other side.
//
// Consecutive counter mutations (a total and its per-host breakdown)
// form one accounting site sharing one attribution window. Counter
// copies whose right-hand side reads the same-named field (report
// aggregation like t.CaptureDrops += q.CaptureDrops) are not drop
// sites. The analyzer is scoped to the four capture-plane packages (and
// the "fix" fixture package); the obs package itself — the ledger
// implementation — is exempt.
var ConservationAnalyzer = &Analyzer{
	Name:      "conservation",
	Doc:       "require exactly one obs ledger attribution per drop-counter mutation",
	RunModule: runConservation,
}

// ledgerCalls are the obs.Recorder methods that write the drop
// forensics ledger — the calls whose counts the gate's partition checks
// re-derive. Matching is by method name so fixtures (which can only
// import the standard library) exercise the same code path.
var ledgerCalls = map[string]bool{
	"DropN": true, "PendingDrop": true, "DescDrop": true,
	"ChunkDrop": true, "AbandonQueue": true,
}

// journeyCalls are the fleet journey drop hooks: per-packet loss
// records that may accompany a ledger attribution but do not replace
// it.
var journeyCalls = map[string]bool{
	"JourneyDrop": true, "JourneyLost": true, "FleetReject": true,
}

// counterKeywords mark an identifier as a drop/loss counter. The set is
// derived from the capture plane's accounting fields: *Drops totals,
// wireDropped/captureDropped/InFlightDropped, hostLost/HostLost,
// staleRejected/stalePerHost, inFlight, and the NIC's filtered counter.
var counterKeywords = []string{"drop", "lost", "stale", "inflight", "filtered"}

func isDropCounterName(name string) bool {
	lower := strings.ToLower(name)
	for _, kw := range counterKeywords {
		if strings.Contains(lower, kw) {
			return true
		}
	}
	return false
}

// conservationScoped reports whether pkgPath is under the analyzer's
// jurisdiction: the four capture-plane package trees, or the fixture
// loader's conventional "fix" path.
func conservationScoped(modPath, pkgPath string) bool {
	if pkgPath == "fix" {
		return true
	}
	for _, sub := range []string{"/internal/nic", "/internal/core", "/internal/engines", "/internal/fleet"} {
		p := modPath + sub
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// An attrEvent is one attribution call observed while scanning a
// function: a ledger write, a journey hook, or a call into a module
// helper that makes a ledger write.
type attrEvent struct {
	pos    token.Pos
	name   string
	ledger bool   // counts toward the exactly-one ledger requirement
	helper bool   // indirect: a module call whose body writes the ledger
	cause  string // Drop* cause constant, "" when none identifiable
}

// A counterSite is one accounting site: one or more consecutive
// drop-counter mutations sharing an attribution window.
type counterSite struct {
	pos   token.Pos
	names []string
}

type consCheck struct {
	mp *ModulePass
	// helperAttributes memoizes, per call-graph key, whether a module
	// function's own body makes a direct ledger call — the depth-one
	// rule that lets a refactor move the DropN into a named helper
	// without widening the window to every transitive callee.
	helperAttributes map[string]bool
}

func runConservation(mp *ModulePass) error {
	c := &consCheck{mp: mp, helperAttributes: make(map[string]bool)}
	for _, key := range mp.Graph.SortedKeys() {
		n := mp.Graph.Nodes[key]
		if !conservationScoped(mp.Module.Path, n.Pkg.PkgPath) {
			continue
		}
		if testFile(mp.Module.Fset, n.Decl.Pos()) {
			continue
		}
		unclaimed := c.processList(n.Pkg, n.Decl.Body.List)
		for _, a := range unclaimed {
			if !a.ledger || a.helper {
				continue
			}
			c.mp.Reportf(a.pos,
				"obs %s attribution has no preceding drop-counter mutation in this scope; count the drop where it is attributed so the ledger keeps partitioning the counters",
				a.name)
		}
	}
	return nil
}

// processList scans one statement list in source order, grouping
// counter mutations into sites, claiming the attribution events that
// follow each site, and returning the events no site claimed (for the
// enclosing list to claim). Nested lists are processed first, so an
// attribution inside an if-block is claimed by the innermost site that
// precedes it.
func (c *consCheck) processList(pkg *Package, stmts []ast.Stmt) []attrEvent {
	type event struct {
		site *counterSite
		attr *attrEvent
	}
	var events []event
	for _, s := range stmts {
		if site := c.counterStmt(pkg, s); site != nil {
			events = append(events, event{site: site})
			continue
		}
		for _, a := range c.processStmt(pkg, s) {
			a := a
			events = append(events, event{attr: &a})
		}
	}

	var unclaimed []attrEvent
	i := 0
	// Events before the first site belong to no site here.
	for i < len(events) && events[i].site == nil {
		unclaimed = append(unclaimed, *events[i].attr)
		i++
	}
	for i < len(events) {
		// Merge consecutive counter mutations into one site.
		site := events[i].site
		i++
		for i < len(events) && events[i].site != nil {
			site.names = append(site.names, events[i].site.names...)
			i++
		}
		var window []attrEvent
		for i < len(events) && events[i].site == nil {
			window = append(window, *events[i].attr)
			i++
		}
		c.checkSite(site, window)
	}
	return unclaimed
}

// checkSite enforces the exactly-one-ledger and cause-agreement rules
// for one accounting site.
func (c *consCheck) checkSite(site *counterSite, window []attrEvent) {
	direct := 0
	helpers := 0
	causes := []string{}
	for _, a := range window {
		if a.ledger {
			if a.helper {
				helpers++
			} else {
				direct++
			}
		}
		if a.cause != "" {
			causes = append(causes, a.cause)
		}
	}
	name := strings.Join(site.names, ", ")
	switch {
	case direct == 0 && helpers == 0:
		c.mp.Reportf(site.pos,
			"drop counter %s is mutated without an obs ledger attribution; exactly one DropN/PendingDrop/DescDrop/ChunkDrop/AbandonQueue must post-dominate the mutation so causes keep partitioning the drop counters",
			name)
	case direct > 1:
		c.mp.Reportf(site.pos,
			"drop counter %s is attributed to the obs ledger %d times in its window; exactly one attribution must post-dominate the mutation",
			name, direct)
	case direct == 0 && helpers > 1:
		c.mp.Reportf(site.pos,
			"drop counter %s is attributed through %d ledger-writing helpers; exactly one attribution must post-dominate the mutation",
			name, helpers)
	}
	for i := 1; i < len(causes); i++ {
		if causes[i] != causes[0] {
			c.mp.Reportf(site.pos,
				"attributions for drop counter %s disagree on cause: %s vs %s",
				name, causes[0], causes[i])
			break
		}
	}
}

// counterStmt classifies a statement as a drop-counter mutation site.
// Only field accesses (and map/slice indexes on them) count — a local
// scratch variable named lost is bookkeeping, not a counter — and
// same-field aggregation copies are exempt.
func (c *consCheck) counterStmt(pkg *Package, s ast.Stmt) *counterSite {
	switch s := s.(type) {
	case *ast.IncDecStmt:
		if s.Tok != token.INC {
			return nil
		}
		if _, ok := counterFieldName(s.X); ok {
			return &counterSite{pos: s.Pos(), names: []string{types.ExprString(s.X)}}
		}
	case *ast.AssignStmt:
		if s.Tok != token.ADD_ASSIGN || len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return nil
		}
		name, ok := counterFieldName(s.Lhs[0])
		if !ok {
			return nil
		}
		if sameFieldOnRHS(s.Rhs[0], name) {
			return nil // aggregation copy: t.CaptureDrops += q.CaptureDrops
		}
		return &counterSite{pos: s.Pos(), names: []string{types.ExprString(s.Lhs[0])}}
	}
	return nil
}

// counterFieldName extracts the field name of a counter expression:
// h.hostLost, q.stats.DeliveryDrops, a.stalePerHost[m.host].
func counterFieldName(e ast.Expr) (string, bool) {
	if ix, ok := e.(*ast.IndexExpr); ok {
		e = ix.X
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if !isDropCounterName(sel.Sel.Name) {
		return "", false
	}
	return sel.Sel.Name, true
}

// sameFieldOnRHS reports whether the right-hand side reads a field of
// the same name — the report-aggregation shape, where counters are
// summed, not created.
func sameFieldOnRHS(rhs ast.Expr, field string) bool {
	found := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == field {
			found = true
			return false
		}
		return true
	})
	return found
}

// processStmt collects the attribution events of one non-site
// statement, recursing into nested statement lists (so their own sites
// claim their own attributions first) and scanning expressions for
// attribution calls.
func (c *consCheck) processStmt(pkg *Package, s ast.Stmt) []attrEvent {
	var out []attrEvent
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			out = append(out, c.processList(pkg, n.List)...)
			return false
		case *ast.CaseClause:
			for _, e := range n.List {
				out = append(out, c.scanExprAttrs(pkg, e)...)
			}
			out = append(out, c.processList(pkg, n.Body)...)
			return false
		case *ast.CommClause:
			out = append(out, c.processList(pkg, n.Body)...)
			return false
		case *ast.FuncLit:
			out = append(out, c.processList(pkg, n.Body.List)...)
			return false
		case *ast.CallExpr:
			if a, ok := c.attrCall(pkg, n); ok {
				out = append(out, a)
			}
		}
		return true
	})
	return out
}

// scanExprAttrs collects attribution calls inside a bare expression.
func (c *consCheck) scanExprAttrs(pkg *Package, e ast.Expr) []attrEvent {
	var out []attrEvent
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if a, ok := c.attrCall(pkg, call); ok {
				out = append(out, a)
			}
		}
		return true
	})
	return out
}

// attrCall classifies a call as an attribution event: a direct ledger
// write, a journey hook, or a call to a module function whose body
// makes a direct ledger write.
func (c *consCheck) attrCall(pkg *Package, call *ast.CallExpr) (attrEvent, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		if fn := calleeFunc(pkg.Info, call); fn != nil && c.helperLedger(fn) {
			return attrEvent{pos: call.Pos(), name: fn.Name(), ledger: true, helper: true}, true
		}
		return attrEvent{}, false
	}
	name := sel.Sel.Name
	switch {
	case ledgerCalls[name]:
		return attrEvent{pos: call.Pos(), name: name, ledger: true, cause: causeArg(call)}, true
	case journeyCalls[name]:
		return attrEvent{pos: call.Pos(), name: name, cause: causeArg(call)}, true
	}
	if fn := calleeFunc(pkg.Info, call); fn != nil && c.helperLedger(fn) {
		return attrEvent{pos: call.Pos(), name: name, ledger: true, helper: true}, true
	}
	return attrEvent{}, false
}

// helperLedger reports whether fn is a module function whose own body
// makes a direct ledger call (depth one, deliberately: transitive
// reach would sweep half the capture plane into every window).
func (c *consCheck) helperLedger(fn *types.Func) bool {
	key := funcKey(fn)
	if v, ok := c.helperAttributes[key]; ok {
		return v
	}
	node, ok := c.mp.Graph.Nodes[key]
	v := false
	if ok {
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			if v {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if s, ok := call.Fun.(*ast.SelectorExpr); ok && ledgerCalls[s.Sel.Name] {
					v = true
					return false
				}
			}
			return true
		})
	}
	c.helperAttributes[key] = v
	return v
}

// causeArg extracts the Drop* cause constant named in a call's
// arguments, if any.
func causeArg(call *ast.CallExpr) string {
	for _, arg := range call.Args {
		name := types.ExprString(arg)
		if i := strings.LastIndex(name, "."); i >= 0 {
			name = name[i+1:]
		}
		if strings.HasPrefix(name, "Drop") && len(name) > len("Drop") {
			return name
		}
	}
	return ""
}
