package nic

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/vtime"
)

// DescState is the state of a receive descriptor.
type DescState uint8

// Descriptor states. A descriptor receives a packet only in DescReady; a
// filled descriptor is DescUsed until the owning engine reinitializes it.
// DescEmpty descriptors (no buffer attached) cannot receive and arriving
// packets drop — the capture-drop mechanism of §2.1.
const (
	DescEmpty DescState = iota
	DescReady
	DescUsed
)

func (s DescState) String() string {
	switch s {
	case DescEmpty:
		return "empty"
	case DescReady:
		return "ready"
	case DescUsed:
		return "used"
	default:
		return fmt.Sprintf("DescState(%d)", s)
	}
}

// Desc is one receive descriptor: a pointer to a host buffer plus the
// received length and hardware timestamp after DMA fills it. Err is the
// hardware integrity-error bit: set when the DMA write corrupted the
// frame (the simulated bad checksum), cleared on refill/invalidate.
type Desc struct {
	State DescState
	Buf   []byte
	Len   int
	TS    vtime.Time
	Err   bool
}

// RxStats counts per-queue receive activity. Every lost packet lands in
// exactly one drop counter, so Drops() is an exact partition.
type RxStats struct {
	Received   uint64 // packets DMA'd into host memory
	Bytes      uint64 // frame bytes received
	WireDrops  uint64 // packets dropped: no ready descriptor
	BusDrops   uint64 // packets dropped: bus budget exhausted
	HangDrops  uint64 // packets dropped: queue hung (fault injection)
	StallDrops uint64 // packets dropped: descriptor write-back stalled
	CorruptRx  uint64 // packets received with the integrity-error bit set
}

// Drops returns all packets lost before reaching host memory. CorruptRx
// frames did reach memory (damaged) and are not drops at this layer.
func (s RxStats) Drops() uint64 {
	return s.WireDrops + s.BusDrops + s.HangDrops + s.StallDrops
}

// RxRing is one receive queue's descriptor ring. The NIC's DMA engine
// fills descriptors strictly in order; the owning capture engine is
// responsible for returning used descriptors to the ready state (each
// engine does so differently, which is the heart of the paper).
type RxRing struct {
	nicID, id int
	desc      []Desc
	fill      int // index the next arriving packet will use
	stats     RxStats

	// onRx, set by the capture engine, runs after each successful DMA
	// write with the index of the filled descriptor.
	onRx func(i int)

	// busOverhead is extra bus traffic charged per received packet beyond
	// the frame itself: descriptor writebacks, doorbells, and (for
	// WireCAP) chunk-metadata I/O. Engines set it to model their I/O
	// footprint in the Figure 14 scalability experiment.
	busOverhead int

	// trace is the run's flight recorder (nil when tracing is off).
	trace *obs.Recorder
}

func newRxRing(nicID, id, n int) *RxRing {
	if n <= 0 {
		panic(fmt.Sprintf("nic: ring size %d", n))
	}
	return &RxRing{nicID: nicID, id: id, desc: make([]Desc, n)}
}

// ID returns the queue index of this ring.
func (r *RxRing) ID() int { return r.id }

// Size returns the number of descriptors.
func (r *RxRing) Size() int { return len(r.desc) }

// Desc returns descriptor i for engine inspection and refill.
func (r *RxRing) Desc(i int) *Desc { return &r.desc[i] }

// Fill returns the index the next packet will be written to.
func (r *RxRing) Fill() int { return r.fill }

// Stats returns the ring's counters.
func (r *RxRing) Stats() RxStats { return r.stats }

// OnRx registers the engine callback invoked after each DMA write.
func (r *RxRing) OnRx(fn func(i int)) { r.onRx = fn }

// SetBusOverhead sets the engine's extra per-packet bus traffic in bytes.
func (r *RxRing) SetBusOverhead(bytes int) {
	if bytes < 0 {
		bytes = 0
	}
	r.busOverhead = bytes
}

// BusOverhead returns the engine's extra per-packet bus traffic.
func (r *RxRing) BusOverhead() int { return r.busOverhead }

// Refill arms descriptor i with an empty buffer (-> ready).
//
//wirecap:hotpath
func (r *RxRing) Refill(i int, buf []byte) {
	if len(buf) == 0 {
		panic("nic: Refill with empty buffer")
	}
	d := &r.desc[i]
	d.State = DescReady
	d.Buf = buf
	d.Len = 0
	d.Err = false
}

// Invalidate detaches descriptor i's buffer (-> empty).
func (r *RxRing) Invalidate(i int) {
	d := &r.desc[i]
	d.State = DescEmpty
	d.Buf = nil
	d.Len = 0
	d.Err = false
}

// ReadyCount returns the number of descriptors able to receive, i.e. the
// ring's instantaneous buffering headroom.
func (r *RxRing) ReadyCount() int {
	n := 0
	for i := range r.desc {
		if r.desc[i].State == DescReady {
			n++
		}
	}
	return n
}

// dmaWrite delivers one frame into the ring. It returns false (a wire
// drop) when the next descriptor is not ready — descriptors are consumed
// strictly in order, like hardware. corrupt marks the descriptor's
// integrity-error bit (the frame bytes were already damaged in place by
// the fault injector before the copy).
//
//wirecap:hotpath
func (r *RxRing) dmaWrite(frame []byte, ts vtime.Time, corrupt bool) bool {
	d := &r.desc[r.fill]
	if d.State != DescReady {
		r.stats.WireDrops++
		r.trace.PendingDrop(obs.DropDescDepletion, r.nicID, r.id, ts)
		return false
	}
	if len(frame) > len(d.Buf) {
		// Oversized for the buffer: hardware would split across
		// descriptors; the simulator's cells always fit a full frame, so
		// treat this as a configuration bug.
		panic(fmt.Sprintf("nic: frame %d bytes exceeds %d-byte ring buffer", len(frame), len(d.Buf)))
	}
	copy(d.Buf, frame)
	d.Len = len(frame)
	d.TS = ts
	d.State = DescUsed
	d.Err = corrupt
	idx := r.fill
	r.fill = (r.fill + 1) % len(r.desc)
	r.stats.Received++
	r.stats.Bytes += uint64(len(frame))
	if corrupt {
		r.stats.CorruptRx++
	}
	r.trace.PktDMA(r.nicID, r.id, idx, ts)
	if r.onRx != nil {
		r.onRx(idx)
	}
	return true
}

// TxPacket is a packet attached to a transmit ring by reference: Data is
// not copied, and Release (if non-nil) runs once the NIC has serialized
// the packet onto the wire, returning the underlying buffer to its owner.
type TxPacket struct {
	Data    []byte
	Release func()
}

// TxStats counts per-queue transmit activity.
type TxStats struct {
	Sent     uint64
	Bytes    uint64
	RingFull uint64 // attach attempts rejected because the ring was full
}

// TxRing is one transmit queue. Attached packets drain in FIFO order at
// the configured line rate.
type TxRing struct {
	id    int
	sched *vtime.Scheduler
	cap   int
	queue []TxPacket
	stats TxStats

	bytesPerSec float64
	draining    bool
	drainFn     func() // bound once; scheduling it per frame allocates nothing
}

// Ethernet on-wire overhead per frame: preamble (8) + FCS (4) + minimum
// inter-frame gap (12).
const wireOverhead = 24

func newTxRing(id, capacity int, sched *vtime.Scheduler, bytesPerSec float64) *TxRing {
	t := &TxRing{id: id, sched: sched, cap: capacity, bytesPerSec: bytesPerSec}
	t.drainFn = t.drainOne
	return t
}

// ID returns the queue index of this ring.
func (t *TxRing) ID() int { return t.id }

// Stats returns the ring's counters.
func (t *TxRing) Stats() TxStats { return t.stats }

// Queued returns the number of packets awaiting transmission.
func (t *TxRing) Queued() int { return len(t.queue) }

// Attach enqueues a packet for transmission by reference (zero-copy). It
// returns false when the ring is full; the caller keeps ownership then.
func (t *TxRing) Attach(p TxPacket) bool {
	if len(t.queue) >= t.cap {
		t.stats.RingFull++
		return false
	}
	t.queue = append(t.queue, p)
	if !t.draining {
		t.draining = true
		t.sched.After(t.serialization(len(p.Data)), t.drainFn)
	}
	return true
}

func (t *TxRing) serialization(frameLen int) vtime.Time {
	return vtime.Time(float64(frameLen+wireOverhead) / t.bytesPerSec * float64(vtime.Second))
}

//wirecap:hotpath
func (t *TxRing) drainOne() {
	p := t.queue[0]
	copy(t.queue, t.queue[1:])
	t.queue = t.queue[:len(t.queue)-1]
	t.stats.Sent++
	t.stats.Bytes += uint64(len(p.Data))
	if p.Release != nil {
		p.Release()
	}
	if len(t.queue) > 0 {
		t.sched.After(t.serialization(len(t.queue[0].Data)), t.drainFn)
	} else {
		t.draining = false
	}
}
