package nic

import "repro/internal/packet"

// FlowDirector models Intel's Flow Director (paper §6): a perfect-match
// flow table in the NIC that steers each flow to the queue recorded for
// it. "The flow table is established and updated by traffic in both the
// forward and reverse directions" — transmitting from a queue installs an
// entry steering the reverse flow back to it. The paper notes it is
// "typically not used in a packet capture environment because the traffic
// is unidirectional": with nothing transmitted, every lookup misses and
// falls back — which the tests demonstrate.
type FlowDirector struct {
	table    map[packet.FlowKey]int
	order    []packet.FlowKey // FIFO for capacity eviction
	capacity int
	fallback Steering

	hits, misses uint64
}

// FlowDirectorEntries is the 82599's perfect-filter budget.
const FlowDirectorEntries = 8192

// NewFlowDirector builds a director over n queues that falls back to the
// given steering (nil means RSS) on table misses.
func NewFlowDirector(n int, fallback Steering) *FlowDirector {
	if fallback == nil {
		fallback = NewRSS(n)
	}
	return &FlowDirector{
		table:    make(map[packet.FlowKey]int),
		capacity: FlowDirectorEntries,
		fallback: fallback,
	}
}

// Learn records that the given flow was transmitted from queue q: the
// reverse flow will be steered to q. The oldest entry is evicted at
// capacity.
func (f *FlowDirector) Learn(flow packet.FlowKey, q int) {
	key := flow.Reverse()
	if _, ok := f.table[key]; !ok {
		if len(f.order) >= f.capacity {
			oldest := f.order[0]
			f.order = f.order[1:]
			delete(f.table, oldest)
		}
		f.order = append(f.order, key)
	}
	f.table[key] = q
}

// Queue implements Steering.
//
//wirecap:hotpath
func (f *FlowDirector) Queue(d *packet.Decoded) (int, bool) {
	if q, ok := f.table[d.Flow]; ok {
		f.hits++
		return q, true
	}
	f.misses++
	return f.fallback.Queue(d)
}

// ReSteerQueue implements QueueReSteerer. Perfect-match entries naming
// the dead queue are deleted (iterating the insertion-order FIFO, never
// the map, so the rewrite is deterministic); their flows then fall back
// like any miss. If the fallback can also re-steer, it is rewritten too,
// so fallen-back flows cannot land on the dead queue either.
func (f *FlowDirector) ReSteerQueue(dead int, healthy []int) int {
	moved := 0
	kept := f.order[:0]
	for _, key := range f.order {
		if f.table[key] == dead {
			delete(f.table, key)
			moved++
			continue
		}
		kept = append(kept, key)
	}
	f.order = kept
	if rs, ok := f.fallback.(QueueReSteerer); ok {
		moved += rs.ReSteerQueue(dead, healthy)
	}
	return moved
}

// Stats returns table hits and misses.
func (f *FlowDirector) Stats() (hits, misses uint64) { return f.hits, f.misses }

// Len returns the number of installed entries.
func (f *FlowDirector) Len() int { return len(f.table) }
