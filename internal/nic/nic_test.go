package nic

import (
	"encoding/binary"
	"testing"

	"repro/internal/bus"
	"repro/internal/packet"
	"repro/internal/vtime"
)

// rssVector is a test vector from the Microsoft RSS specification
// ("Verifying the RSS Hash Calculation"), IPv4 with TCP ports. The input
// order is src addr, dst addr, src port, dst port.
type rssVector struct {
	srcIP, dstIP     [4]byte
	srcPort, dstPort uint16
	withPorts        uint32 // expected hash over the 12-byte input
	addrsOnly        uint32 // expected hash over the 8-byte input
}

var rssVectors = []rssVector{
	{[4]byte{66, 9, 149, 187}, [4]byte{161, 142, 100, 80}, 2794, 1766, 0x51ccc178, 0x323e8fc2},
	{[4]byte{199, 92, 111, 2}, [4]byte{65, 69, 140, 83}, 14230, 4739, 0xc626b0ea, 0xd718262a},
	{[4]byte{24, 19, 198, 95}, [4]byte{12, 22, 207, 184}, 12898, 38024, 0x5c2b394a, 0xd2d0a5de},
	{[4]byte{38, 27, 205, 30}, [4]byte{209, 142, 163, 6}, 48228, 2217, 0xafc7327f, 0x82989176},
	{[4]byte{153, 39, 163, 191}, [4]byte{202, 188, 127, 2}, 44251, 1303, 0x10e828a2, 0x5d1809c5},
}

func TestToeplitzMicrosoftVectors(t *testing.T) {
	for _, v := range rssVectors {
		var in12 [12]byte
		copy(in12[0:4], v.srcIP[:])
		copy(in12[4:8], v.dstIP[:])
		binary.BigEndian.PutUint16(in12[8:10], v.srcPort)
		binary.BigEndian.PutUint16(in12[10:12], v.dstPort)
		if got := Toeplitz(DefaultRSSKey[:], in12[:]); got != v.withPorts {
			t.Errorf("Toeplitz(ports) = %#08x, want %#08x", got, v.withPorts)
		}
		if got := Toeplitz(DefaultRSSKey[:], in12[:8]); got != v.addrsOnly {
			t.Errorf("Toeplitz(addrs) = %#08x, want %#08x", got, v.addrsOnly)
		}
	}
}

func TestRSSHashUsesPortsOnlyForTCPUDP(t *testing.T) {
	v := rssVectors[0]
	flow := packet.FlowKey{
		Src: packet.IPv4(v.srcIP), Dst: packet.IPv4(v.dstIP),
		SrcPort: v.srcPort, DstPort: v.dstPort, Proto: packet.ProtoTCP,
	}
	if got := RSSHash(DefaultRSSKey[:], flow); got != v.withPorts {
		t.Fatalf("TCP hash = %#08x", got)
	}
	flow.Proto = packet.ProtoUDP
	if got := RSSHash(DefaultRSSKey[:], flow); got != v.withPorts {
		t.Fatalf("UDP hash = %#08x", got)
	}
	flow.Proto = packet.ProtoICMP
	if got := RSSHash(DefaultRSSKey[:], flow); got != v.addrsOnly {
		t.Fatalf("ICMP hash = %#08x", got)
	}
}

func TestRSSFlowAffinity(t *testing.T) {
	// Every packet of one flow must land on one queue; across many flows
	// all queues should be used.
	s := NewRSS(6)
	b := packet.NewBuilder()
	buf := make([]byte, packet.MaxFrameLen)
	r := vtime.NewRand(1)
	queuesSeen := map[int]bool{}
	for f := 0; f < 200; f++ {
		flow := packet.FlowKey{
			Src:     packet.IPv4FromUint32(r.Uint32()),
			Dst:     packet.IPv4FromUint32(r.Uint32()),
			SrcPort: uint16(r.Intn(65535) + 1),
			DstPort: uint16(r.Intn(65535) + 1),
			Proto:   packet.ProtoUDP,
		}
		var first int
		for i := 0; i < 5; i++ {
			frame := b.Build(buf, flow, make([]byte, r.Intn(100)))
			var d packet.Decoded
			if err := packet.Decode(frame, &d); err != nil {
				t.Fatal(err)
			}
			q, ok := s.Queue(&d)
			if !ok {
				t.Fatal("RSS failed to classify an IPv4 frame")
			}
			if i == 0 {
				first = q
				queuesSeen[q] = true
			} else if q != first {
				t.Fatalf("flow %v split across queues %d and %d", flow, first, q)
			}
		}
	}
	if len(queuesSeen) != 6 {
		t.Fatalf("200 flows used only %d of 6 queues", len(queuesSeen))
	}
}

func TestRoundRobinSteering(t *testing.T) {
	s := NewRoundRobin(3)
	var d packet.Decoded
	for i := 0; i < 9; i++ {
		q, ok := s.Queue(&d)
		if !ok || q != i%3 {
			t.Fatalf("rr packet %d -> queue %d", i, q)
		}
	}
}

func buildUDP(tb testing.TB, flow packet.FlowKey, payload int) []byte {
	tb.Helper()
	b := packet.NewBuilder()
	buf := make([]byte, packet.MaxFrameLen)
	frame := b.Build(buf, flow, make([]byte, payload))
	out := make([]byte, len(frame))
	copy(out, frame)
	return out
}

func testFlow() packet.FlowKey {
	return packet.FlowKey{
		Src: packet.IPv4{10, 0, 0, 1}, Dst: packet.IPv4{10, 0, 0, 2},
		SrcPort: 1000, DstPort: 2000, Proto: packet.ProtoUDP,
	}
}

// armRing readies every descriptor of queue q with private buffers.
func armRing(n *NIC, q int) {
	r := n.Rx(q)
	for i := 0; i < r.Size(); i++ {
		r.Refill(i, make([]byte, 2048))
	}
}

func newTestNIC(sched *vtime.Scheduler, queues, ring int) *NIC {
	return New(sched, Config{
		ID: 0, RxQueues: queues, RingSize: ring, Promiscuous: true,
	})
}

func TestDeliverFillsRing(t *testing.T) {
	sched := vtime.NewScheduler()
	n := newTestNIC(sched, 1, 8)
	armRing(n, 0)
	frame := buildUDP(t, testFlow(), 10)
	var got []int
	n.Rx(0).OnRx(func(i int) { got = append(got, i) })
	for i := 0; i < 3; i++ {
		if !n.Deliver(frame, vtime.Time(i)) {
			t.Fatalf("Deliver %d failed", i)
		}
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("onRx indices = %v", got)
	}
	d := n.Rx(0).Desc(1)
	if d.State != DescUsed || d.Len != len(frame) || d.TS != 1 {
		t.Fatalf("desc 1 = %+v", d)
	}
	st := n.Stats()
	if st.Rx[0].Received != 3 || st.Rx[0].Drops() != 0 {
		t.Fatalf("stats = %+v", st.Rx[0])
	}
}

func TestDeliverWireDropWhenNoReadyDescriptor(t *testing.T) {
	sched := vtime.NewScheduler()
	n := newTestNIC(sched, 1, 4)
	armRing(n, 0)
	frame := buildUDP(t, testFlow(), 10)
	for i := 0; i < 4; i++ {
		if !n.Deliver(frame, 0) {
			t.Fatalf("Deliver %d failed", i)
		}
	}
	// Ring full: the used descriptors were never reinitialized.
	for i := 0; i < 3; i++ {
		if n.Deliver(frame, 0) {
			t.Fatal("Deliver succeeded with no ready descriptor")
		}
	}
	st := n.Stats().Rx[0]
	if st.Received != 4 || st.WireDrops != 3 {
		t.Fatalf("stats = %+v", st)
	}
	// Reinitializing one descriptor lets exactly one more packet in.
	n.Rx(0).Refill(0, make([]byte, 2048))
	if !n.Deliver(frame, 0) {
		t.Fatal("Deliver failed after refill")
	}
	if n.Deliver(frame, 0) {
		t.Fatal("Deliver succeeded past the refilled descriptor")
	}
}

func TestDescriptorsUsedInOrder(t *testing.T) {
	// Even if a later descriptor is ready, the ring blocks on the next
	// in-order descriptor, like hardware.
	sched := vtime.NewScheduler()
	n := newTestNIC(sched, 1, 4)
	r := n.Rx(0)
	r.Refill(1, make([]byte, 2048)) // only descriptor 1 is ready
	frame := buildUDP(t, testFlow(), 0)
	if n.Deliver(frame, 0) {
		t.Fatal("DMA skipped descriptor 0")
	}
	if r.Stats().WireDrops != 1 {
		t.Fatal("wire drop not counted")
	}
}

func TestMACFilterAndPromiscuous(t *testing.T) {
	sched := vtime.NewScheduler()
	n := New(sched, Config{ID: 0, RxQueues: 1, RingSize: 4, Promiscuous: false})
	armRing(n, 0)
	frame := buildUDP(t, testFlow(), 0) // dst MAC 02:00:00:00:00:02
	if n.Deliver(frame, 0) {
		t.Fatal("non-promiscuous NIC accepted a frame for another station")
	}
	if n.Stats().Filtered != 1 {
		t.Fatal("filtered not counted")
	}
	// Setting the frame's destination to the NIC's MAC passes the filter.
	copy(frame[0:6], []byte{0x02, 0x00, 0x00, 0x00, 0x00, 0x01})
	if !n.Deliver(frame, 0) {
		t.Fatal("unicast to own MAC rejected")
	}
	// Broadcast passes too.
	copy(frame[0:6], []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	if !n.Deliver(frame, 0) {
		t.Fatal("broadcast rejected")
	}
}

func TestBusDropsCounted(t *testing.T) {
	sched := vtime.NewScheduler()
	b := bus.New(bus.Config{BytesPerSec: 1000, BurstBytes: 70})
	n := New(sched, Config{ID: 0, RxQueues: 1, RingSize: 8, Promiscuous: true, Bus: b})
	armRing(n, 0)
	frame := buildUDP(t, testFlow(), 0) // 60 bytes
	if !n.Deliver(frame, 0) {
		t.Fatal("first frame rejected")
	}
	if n.Deliver(frame, 0) {
		t.Fatal("second frame accepted beyond bus budget")
	}
	st := n.Stats().Rx[0]
	if st.BusDrops != 1 || st.WireDrops != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRingSizeCappedByHardwareBudget(t *testing.T) {
	sched := vtime.NewScheduler()
	n := New(sched, Config{ID: 0, RxQueues: 8, RingSize: 4096, Promiscuous: true})
	if n.RingSize() != MaxRingSize/8 {
		t.Fatalf("ring size = %d, want %d", n.RingSize(), MaxRingSize/8)
	}
}

func TestSteeringDistributesAcrossQueues(t *testing.T) {
	sched := vtime.NewScheduler()
	n := newTestNIC(sched, 4, 128)
	for q := 0; q < 4; q++ {
		armRing(n, q)
	}
	r := vtime.NewRand(9)
	for i := 0; i < 400; i++ {
		flow := packet.FlowKey{
			Src:     packet.IPv4FromUint32(r.Uint32()),
			Dst:     packet.IPv4FromUint32(r.Uint32()),
			SrcPort: uint16(1 + r.Intn(60000)),
			DstPort: uint16(1 + r.Intn(60000)),
			Proto:   packet.ProtoUDP,
		}
		n.Deliver(buildUDP(t, flow, 0), 0)
	}
	st := n.Stats()
	for q := 0; q < 4; q++ {
		if st.Rx[q].Received == 0 {
			t.Fatalf("queue %d received nothing: %+v", q, st.Rx)
		}
	}
	if st.TotalReceived() != 400 {
		t.Fatalf("total received %d", st.TotalReceived())
	}
}

func TestWireInterval(t *testing.T) {
	// A 64-byte Ethernet packet (60 bytes in simulator convention, which
	// excludes the FCS) serializes in 67.2 ns at 10 GbE: 14.88 Mp/s.
	got := WireInterval(LineRate10G, 60)
	if got < 67 || got > 68 {
		t.Fatalf("WireInterval(60) = %v, want ~67ns", got)
	}
	rate := 1 / got.Seconds()
	if rate < 14.8e6 || rate > 15.0e6 {
		t.Fatalf("wire rate = %.0f p/s, want ~14.88M", rate)
	}
}

func TestTxRingDrainsAtLineRate(t *testing.T) {
	sched := vtime.NewScheduler()
	n := New(sched, Config{ID: 0, RxQueues: 1, RingSize: 4, TxQueues: 1, TxRingSize: 16, Promiscuous: true})
	frame := buildUDP(t, testFlow(), 0)
	released := 0
	for i := 0; i < 10; i++ {
		ok := n.Tx(0).Attach(TxPacket{Data: frame, Release: func() { released++ }})
		if !ok {
			t.Fatalf("Attach %d failed", i)
		}
	}
	sched.Run()
	st := n.Tx(0).Stats()
	if st.Sent != 10 || released != 10 {
		t.Fatalf("sent %d released %d", st.Sent, released)
	}
	// 10 packets at 67.2 ns each ~= 672 ns of virtual time.
	if now := sched.Now(); now < 600 || now > 750 {
		t.Fatalf("drain took %v", now)
	}
}

func TestTxRingFull(t *testing.T) {
	sched := vtime.NewScheduler()
	n := New(sched, Config{ID: 0, RxQueues: 1, RingSize: 4, TxQueues: 1, TxRingSize: 2, Promiscuous: true})
	frame := buildUDP(t, testFlow(), 0)
	if !n.Tx(0).Attach(TxPacket{Data: frame}) || !n.Tx(0).Attach(TxPacket{Data: frame}) {
		t.Fatal("attach failed")
	}
	if n.Tx(0).Attach(TxPacket{Data: frame}) {
		t.Fatal("attach succeeded on a full ring")
	}
	if n.Tx(0).Stats().RingFull != 1 {
		t.Fatal("RingFull not counted")
	}
	sched.Run()
	if n.Tx(0).Stats().Sent != 2 {
		t.Fatal("queued packets not sent")
	}
}

func TestReadyCount(t *testing.T) {
	sched := vtime.NewScheduler()
	n := newTestNIC(sched, 1, 8)
	r := n.Rx(0)
	if r.ReadyCount() != 0 {
		t.Fatal("new ring has ready descriptors")
	}
	armRing(n, 0)
	if r.ReadyCount() != 8 {
		t.Fatal("armed ring not fully ready")
	}
	n.Deliver(buildUDP(t, testFlow(), 0), 0)
	if r.ReadyCount() != 7 {
		t.Fatal("DMA write did not consume a descriptor")
	}
	r.Invalidate(5)
	if r.ReadyCount() != 6 {
		t.Fatal("Invalidate did not remove readiness")
	}
}

func BenchmarkDeliver(b *testing.B) {
	sched := vtime.NewScheduler()
	n := newTestNIC(sched, 4, 1024)
	for q := 0; q < 4; q++ {
		armRing(n, q)
		q := q
		// Instant consume: refill every descriptor as soon as it fills.
		n.Rx(q).OnRx(func(i int) { n.Rx(q).Refill(i, n.Rx(q).Desc(i).Buf) })
	}
	frame := buildUDP(b, testFlow(), 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.Deliver(frame, vtime.Time(i))
	}
}
