package nic

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/vtime"
)

func decodeFrame(t *testing.T, flow packet.FlowKey) *packet.Decoded {
	t.Helper()
	b := packet.NewBuilder()
	buf := make([]byte, packet.MaxFrameLen)
	frame := b.Build(buf, flow, nil)
	d := &packet.Decoded{}
	if err := packet.Decode(frame, d); err != nil {
		t.Fatal(err)
	}
	// Copy the frame so d stays valid after buf is reused.
	own := make([]byte, len(frame))
	copy(own, frame)
	if err := packet.Decode(own, d); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFlowDirectorLearnsReverseFlow(t *testing.T) {
	fd := NewFlowDirector(4, nil)
	out := packet.FlowKey{
		Src: packet.IPv4{10, 0, 0, 1}, Dst: packet.IPv4{10, 0, 0, 2},
		SrcPort: 100, DstPort: 200, Proto: packet.ProtoTCP,
	}
	fd.Learn(out, 3) // transmitted from queue 3
	// The response flow (reverse) must land on queue 3.
	resp := decodeFrame(t, out.Reverse())
	q, ok := fd.Queue(resp)
	if !ok || q != 3 {
		t.Fatalf("reverse flow -> queue %d ok %v, want 3", q, ok)
	}
	if hits, _ := fd.Stats(); hits != 1 {
		t.Fatalf("hits = %d", hits)
	}
}

func TestFlowDirectorUnidirectionalTrafficAlwaysMisses(t *testing.T) {
	// The paper's point: in a capture environment nothing is transmitted,
	// so Flow Director degenerates to its fallback.
	fd := NewFlowDirector(6, nil)
	rss := NewRSS(6)
	r := vtime.NewRand(12)
	for i := 0; i < 200; i++ {
		flow := packet.FlowKey{
			Src: packet.IPv4FromUint32(r.Uint32()), Dst: packet.IPv4FromUint32(r.Uint32()),
			SrcPort: uint16(1 + r.Intn(60000)), DstPort: uint16(1 + r.Intn(60000)),
			Proto: packet.ProtoUDP,
		}
		d := decodeFrame(t, flow)
		fq, _ := fd.Queue(d)
		rq, _ := rss.Queue(d)
		if fq != rq {
			t.Fatalf("miss did not fall back to RSS: %d vs %d", fq, rq)
		}
	}
	hits, misses := fd.Stats()
	if hits != 0 || misses != 200 {
		t.Fatalf("hits %d misses %d", hits, misses)
	}
}

func TestFlowDirectorCapacityEviction(t *testing.T) {
	fd := NewFlowDirector(2, nil)
	fd.capacity = 3
	mk := func(i int) packet.FlowKey {
		return packet.FlowKey{
			Src: packet.IPv4{10, 0, 0, byte(i)}, Dst: packet.IPv4{10, 0, 1, 1},
			SrcPort: uint16(i), DstPort: 80, Proto: packet.ProtoTCP,
		}
	}
	for i := 1; i <= 4; i++ {
		fd.Learn(mk(i), i%2)
	}
	if fd.Len() != 3 {
		t.Fatalf("table size %d, want 3", fd.Len())
	}
	// The first entry was evicted: its reverse flow now misses.
	d := decodeFrame(t, mk(1).Reverse())
	fd.Queue(d)
	if hits, _ := fd.Stats(); hits != 0 {
		t.Fatal("evicted entry still hit")
	}
	// A surviving entry hits.
	d4 := decodeFrame(t, mk(4).Reverse())
	if q, _ := fd.Queue(d4); q != 0 {
		t.Fatalf("entry 4 -> queue %d, want 0", q)
	}
}

func TestFlowDirectorRelearnMovesFlow(t *testing.T) {
	fd := NewFlowDirector(4, nil)
	out := packet.FlowKey{
		Src: packet.IPv4{1, 1, 1, 1}, Dst: packet.IPv4{2, 2, 2, 2},
		SrcPort: 10, DstPort: 20, Proto: packet.ProtoUDP,
	}
	fd.Learn(out, 1)
	fd.Learn(out, 2) // flow migrated to queue 2
	if fd.Len() != 1 {
		t.Fatalf("table size %d", fd.Len())
	}
	d := decodeFrame(t, out.Reverse())
	if q, _ := fd.Queue(d); q != 2 {
		t.Fatalf("queue %d, want 2", q)
	}
}
