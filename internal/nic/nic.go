// Package nic simulates a commodity multi-queue NIC of the Intel 82599
// class: receive descriptor rings, RSS traffic steering, DMA into host
// memory across a shared bus, promiscuous mode, and transmit rings. It
// implements exactly the receive state machine the WireCAP paper's §2.1
// describes, so the capture engines built on top of it exhibit the same
// drop behaviours as their real counterparts.
package nic

import (
	"fmt"
	"strconv"

	"repro/internal/bus"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/vtime"
)

// MaxRingSize is the Intel 82599 receive-descriptor budget per port; with
// n queues configured, each ring gets at most MaxRingSize/n descriptors
// (paper §2.1).
const MaxRingSize = 8192

// Config describes one NIC.
type Config struct {
	// ID distinguishes NICs in chunk identities and experiment output.
	ID int
	// RxQueues is the number of receive queues (n in the paper).
	RxQueues int
	// RingSize is the per-queue receive ring size; the experiments use
	// 1,024. Capped at MaxRingSize / RxQueues.
	RingSize int
	// TxQueues and TxRingSize configure the transmit side; zero TxQueues
	// means a capture-only NIC.
	TxQueues   int
	TxRingSize int
	// Steering selects the traffic-steering mechanism; nil means RSS
	// with the default key.
	Steering Steering
	// LineRateBps is the wire speed in bits/s; zero means 10 GbE.
	LineRateBps float64
	// Bus is the shared host I/O budget; nil means unlimited.
	Bus *bus.Bus
	// MAC is the station address; zero means a locally administered
	// address derived from ID.
	MAC packet.MAC
	// Promiscuous captures every frame regardless of destination MAC.
	// Packet capture puts the NIC in promiscuous mode (paper §1).
	Promiscuous bool
	// Metrics is the registry the NIC (and the capture engine built on
	// it) exports observability series into; nil means a private one.
	// All NIC series are function-backed: they sample the existing ring
	// counters only at snapshot time, so the receive hot path is
	// untouched.
	Metrics *metrics.Registry
	// Faults is the run's fault injector; nil means a well-behaved NIC.
	// Carrying it on the NIC lets every engine constructor pick it up
	// without signature changes.
	Faults *faults.Injector
	// Trace is the run's flight recorder; nil disables tracing (every
	// hook on a nil recorder is a zero-allocation no-op). Like Faults,
	// it rides the NIC so engines pick it up without signature changes.
	Trace *obs.Recorder
	// Domain labels the parallel-simulation time domain this NIC (and
	// everything built on it) executes in. Purely informational: it tags
	// merged observability output in fleet runs so records from
	// different hosts stay attributable. Single-domain runs leave it 0.
	Domain int
}

// LineRate10G is 10 Gb/s in bits per second.
const LineRate10G = 10e9

// Stats aggregates NIC-level counters.
type Stats struct {
	Delivered uint64 // frames offered to the NIC by the wire
	Filtered  uint64 // frames ignored by the MAC address filter
	Undecoded uint64 // frames that failed steering classification
	LinkDrops uint64 // frames lost on the wire while the link was down
	Rx        []RxStats
	Tx        []TxStats
}

// TotalWireDrops sums capture drops across queues.
func (s Stats) TotalWireDrops() uint64 {
	var n uint64
	for _, q := range s.Rx {
		n += q.Drops()
	}
	return n
}

// TotalReceived sums received packets across queues.
func (s Stats) TotalReceived() uint64 {
	var n uint64
	for _, q := range s.Rx {
		n += q.Received
	}
	return n
}

// NIC is a simulated multi-queue network interface card.
type NIC struct {
	cfg      Config
	sched    *vtime.Scheduler
	rx       []*RxRing
	tx       []*TxRing
	bus      *bus.Bus
	steering Steering
	metrics  *metrics.Registry
	faults   *faults.Injector
	trace    *obs.Recorder

	delivered uint64
	filtered  uint64
	undecoded uint64
	linkDrops uint64

	dec packet.Decoded // scratch for steering classification
}

// New builds a NIC.
func New(sched *vtime.Scheduler, cfg Config) *NIC {
	if cfg.RxQueues <= 0 {
		panic("nic: RxQueues must be positive")
	}
	if cfg.RingSize <= 0 {
		panic("nic: RingSize must be positive")
	}
	if max := MaxRingSize / cfg.RxQueues; cfg.RingSize > max {
		cfg.RingSize = max
	}
	if cfg.LineRateBps == 0 {
		cfg.LineRateBps = LineRate10G
	}
	if cfg.Bus == nil {
		cfg.Bus = bus.Unlimited()
	}
	if cfg.Steering == nil {
		cfg.Steering = NewRSS(cfg.RxQueues)
	}
	if cfg.MAC == (packet.MAC{}) {
		cfg.MAC = packet.MAC{0x02, 0x00, 0x00, 0x00, 0x00, byte(cfg.ID + 1)}
	}
	n := &NIC{cfg: cfg, sched: sched, bus: cfg.Bus, steering: cfg.Steering, faults: cfg.Faults, trace: cfg.Trace}
	for i := 0; i < cfg.RxQueues; i++ {
		r := newRxRing(cfg.ID, i, cfg.RingSize)
		r.trace = cfg.Trace
		n.rx = append(n.rx, r)
	}
	bytesPerSec := cfg.LineRateBps / 8
	txRing := cfg.TxRingSize
	if txRing <= 0 {
		txRing = 1024
	}
	for i := 0; i < cfg.TxQueues; i++ {
		n.tx = append(n.tx, newTxRing(i, txRing, sched, bytesPerSec))
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	n.metrics = cfg.Metrics
	n.register()
	return n
}

// register exports the NIC's counters as function-backed metric series:
// sampled at snapshot time, free on the per-packet path.
func (n *NIC) register() {
	reg := n.metrics
	nicL := metrics.L("nic", strconv.Itoa(n.cfg.ID))
	reg.CounterFunc("nic_frames_offered_total", func() uint64 { return n.delivered }, nicL)
	reg.CounterFunc("nic_frames_filtered_total", func() uint64 { return n.filtered }, nicL)
	reg.CounterFunc("nic_frames_undecoded_total", func() uint64 { return n.undecoded }, nicL)
	for _, r := range n.rx {
		r := r
		qL := metrics.L("queue", strconv.Itoa(r.id))
		reg.CounterFunc("nic_rx_received_total", func() uint64 { return r.stats.Received }, nicL, qL)
		reg.CounterFunc("nic_rx_bytes_total", func() uint64 { return r.stats.Bytes }, nicL, qL)
		// Descriptor depletion: arrivals that found no ready descriptor.
		reg.CounterFunc("nic_rx_desc_depleted_total", func() uint64 { return r.stats.WireDrops }, nicL, qL)
		reg.CounterFunc("nic_rx_bus_drops_total", func() uint64 { return r.stats.BusDrops }, nicL, qL)
		// Ring occupancy: descriptors currently able to receive.
		reg.GaugeFunc("nic_rx_ring_ready", func() int64 { return int64(r.ReadyCount()) }, nicL, qL)
		if n.faults != nil {
			// Fault-path series only exist on chaos runs, keeping
			// steady-state snapshots (and their digests) lean.
			reg.CounterFunc("nic_rx_hang_drops_total", func() uint64 { return r.stats.HangDrops }, nicL, qL)
			reg.CounterFunc("nic_rx_stall_drops_total", func() uint64 { return r.stats.StallDrops }, nicL, qL)
			reg.CounterFunc("nic_rx_corrupt_total", func() uint64 { return r.stats.CorruptRx }, nicL, qL)
		}
	}
	if n.faults != nil {
		reg.CounterFunc("nic_link_drops_total", func() uint64 { return n.linkDrops }, nicL)
	}
	for _, t := range n.tx {
		t := t
		qL := metrics.L("queue", strconv.Itoa(t.id))
		reg.CounterFunc("nic_tx_sent_total", func() uint64 { return t.stats.Sent }, nicL, qL)
		reg.CounterFunc("nic_tx_bytes_total", func() uint64 { return t.stats.Bytes }, nicL, qL)
		reg.CounterFunc("nic_tx_ring_full_total", func() uint64 { return t.stats.RingFull }, nicL, qL)
		reg.GaugeFunc("nic_tx_queued", func() int64 { return int64(len(t.queue)) }, nicL, qL)
	}
}

// Metrics returns the registry the NIC exports into; capture engines
// built on this NIC register their own series here, so one experiment's
// whole stack lands in one snapshot.
func (n *NIC) Metrics() *metrics.Registry { return n.metrics }

// Faults returns the run's fault injector (nil on a well-behaved NIC).
// Engines read it here so fault wiring needs no constructor changes.
func (n *NIC) Faults() *faults.Injector { return n.faults }

// Steering returns the NIC's traffic-steering mechanism. Recovery code
// uses it to rewrite flow placement when quarantining a dead queue.
func (n *NIC) Steering() Steering { return n.steering }

// Trace returns the run's flight recorder (nil when tracing is off).
// Engines and the capture core read it here, the same way they read
// Faults.
func (n *NIC) Trace() *obs.Recorder { return n.trace }

// ID returns the NIC's identifier.
func (n *NIC) ID() int { return n.cfg.ID }

// Domain returns the parallel-simulation time domain this NIC was placed
// in (0 for single-domain runs).
func (n *NIC) Domain() int { return n.cfg.Domain }

// RxQueues returns the number of receive queues.
func (n *NIC) RxQueues() int { return len(n.rx) }

// Rx returns receive queue q's ring.
func (n *NIC) Rx(q int) *RxRing { return n.rx[q] }

// TxQueues returns the number of transmit queues.
func (n *NIC) TxQueues() int { return len(n.tx) }

// Tx returns transmit queue q's ring.
func (n *NIC) Tx(q int) *TxRing { return n.tx[q] }

// RingSize returns the per-queue receive ring size actually configured.
func (n *NIC) RingSize() int { return n.cfg.RingSize }

// LineRateBps returns the configured wire speed.
func (n *NIC) LineRateBps() float64 { return n.cfg.LineRateBps }

// Deliver offers one frame from the wire at virtual time ts. It applies
// the MAC filter, classifies the frame onto a receive queue, charges the
// bus, and DMA-writes into the queue's ring. The return value reports
// whether the frame reached host memory.
//
//wirecap:hotpath
func (n *NIC) Deliver(frame []byte, ts vtime.Time) bool {
	n.delivered++
	if !n.faults.LinkUp(n.cfg.ID) {
		n.linkDrops++
		n.trace.DropN(obs.DropLink, n.cfg.ID, -1, 1, ts)
		return false
	}
	if !n.cfg.Promiscuous {
		var dst packet.MAC
		if len(frame) < packet.EthernetHeaderLen {
			n.filtered++
			n.trace.DropN(obs.DropFiltered, n.cfg.ID, -1, 1, ts)
			return false
		}
		copy(dst[:], frame[0:6])
		if dst != n.cfg.MAC && dst != (packet.MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}) {
			n.filtered++
			n.trace.DropN(obs.DropFiltered, n.cfg.ID, -1, 1, ts)
			return false
		}
	}
	q := 0
	if err := packet.Decode(frame, &n.dec); err == nil {
		if sq, ok := n.steering.Queue(&n.dec); ok {
			q = sq
		} else {
			n.undecoded++
		}
	} else {
		n.undecoded++
	}
	if q < 0 || q >= len(n.rx) {
		panic(fmt.Sprintf("nic: steering selected queue %d of %d", q, len(n.rx)))
	}
	n.trace.PktArrive(n.cfg.ID, q, n.dec.Flow, len(frame), ts)
	ring := n.rx[q]
	if n.faults.QueueHung(n.cfg.ID, q) {
		ring.stats.HangDrops++
		n.trace.PendingDrop(obs.DropQueueHang, n.cfg.ID, q, ts)
		return false
	}
	if n.faults.DescStalled(n.cfg.ID, q) {
		ring.stats.StallDrops++
		n.trace.PendingDrop(obs.DropDescStall, n.cfg.ID, q, ts)
		return false
	}
	if !n.bus.TryTransfer(ts, len(frame), ring.busOverhead) {
		ring.stats.BusDrops++
		n.trace.PendingDrop(obs.DropBus, n.cfg.ID, q, ts)
		return false
	}
	corrupt := n.faults.CorruptFrame(n.cfg.ID, q, frame)
	return ring.dmaWrite(frame, ts, corrupt)
}

// Stats snapshots all counters.
func (n *NIC) Stats() Stats {
	s := Stats{
		Delivered: n.delivered,
		Filtered:  n.filtered,
		Undecoded: n.undecoded,
		LinkDrops: n.linkDrops,
	}
	for _, r := range n.rx {
		s.Rx = append(s.Rx, r.Stats())
	}
	for _, t := range n.tx {
		s.Tx = append(s.Tx, t.Stats())
	}
	return s
}

// WireInterval returns the minimum inter-frame interval for frames of the
// given length at the NIC's line rate (14.88 Mp/s for 64-byte frames at
// 10 GbE).
func (n *NIC) WireInterval(frameLen int) vtime.Time {
	return WireInterval(n.cfg.LineRateBps, frameLen)
}

// WireInterval returns the serialization interval of a frame (including
// preamble, FCS, and inter-frame gap) at the given line rate.
func WireInterval(lineRateBps float64, frameLen int) vtime.Time {
	// frameLen excludes the 4-byte FCS in this simulator's convention;
	// wireOverhead accounts for preamble+FCS+IFG.
	bits := float64(frameLen+wireOverhead) * 8
	return vtime.Time(bits / lineRateBps * float64(vtime.Second))
}
