package nic

import (
	"encoding/binary"

	"repro/internal/packet"
)

// Receive-side scaling (RSS) as commodity NICs implement it: the Toeplitz
// hash over the IP addresses and transport ports selects an entry in an
// indirection table, which names the receive queue. Because the hash is a
// pure function of the flow tuple, every packet of a flow lands on the
// same queue — which preserves application logic but produces exactly the
// load imbalance the WireCAP paper studies.

// DefaultRSSKey is the 40-byte key from the Microsoft RSS specification,
// the de-facto default programmed by most drivers.
var DefaultRSSKey = [40]byte{
	0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2,
	0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
	0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4,
	0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
	0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
}

// Toeplitz computes the Toeplitz hash of data under key. The key must be
// at least len(data)+4 bytes; DefaultRSSKey covers the 12-byte IPv4
// 4-tuple input.
func Toeplitz(key []byte, data []byte) uint32 {
	if len(key)*8 < len(data)*8+32 {
		panic("nic: Toeplitz key too short for input")
	}
	result := uint32(0)
	window := binary.BigEndian.Uint32(key[:4])
	keyBit := 32
	for _, b := range data {
		for bit := 7; bit >= 0; bit-- {
			if b&(1<<uint(bit)) != 0 {
				result ^= window
			}
			next := (key[keyBit/8] >> uint(7-keyBit%8)) & 1
			window = window<<1 | uint32(next)
			keyBit++
		}
	}
	return result
}

// RSSHash computes the RSS hash for a flow: over the 12-byte
// {src, dst, sport, dport} input for TCP and UDP, and over the 8-byte
// {src, dst} input otherwise, matching hardware behaviour.
func RSSHash(key []byte, flow packet.FlowKey) uint32 {
	var buf [12]byte
	copy(buf[0:4], flow.Src[:])
	copy(buf[4:8], flow.Dst[:])
	if flow.Proto == packet.ProtoTCP || flow.Proto == packet.ProtoUDP {
		binary.BigEndian.PutUint16(buf[8:10], flow.SrcPort)
		binary.BigEndian.PutUint16(buf[10:12], flow.DstPort)
		return Toeplitz(key, buf[:12])
	}
	return Toeplitz(key, buf[:8])
}

// toeplitzTable is the byte-at-a-time form of the Toeplitz hash: entry
// [i][v] is the XOR of the key windows selected by the set bits of input
// byte v at byte position i, so hashing is 12 table lookups instead of 96
// shift-and-xor steps. The output is bit-identical to Toeplitz.
type toeplitzTable [12][256]uint32

// windowAt returns key bits [g, g+32) as a uint32, reading past the end
// of key as zeros.
func windowAt(key []byte, g int) uint32 {
	var buf [8]byte
	copy(buf[:], key[g/8:])
	v := binary.BigEndian.Uint64(buf[:])
	return uint32(v >> (32 - uint(g%8)))
}

func newToeplitzTable(key []byte) *toeplitzTable {
	t := new(toeplitzTable)
	for i := 0; i < 12; i++ {
		for k := 0; k < 8; k++ {
			w := windowAt(key, i*8+k)
			mask := 1 << uint(7-k)
			for v := 0; v < 256; v++ {
				if v&mask != 0 {
					t[i][v] ^= w
				}
			}
		}
	}
	return t
}

// FlowHasher is the exported face of the table-driven Toeplitz hash:
// construct once per key, then hash flows at 12 table lookups each. The
// fleet steering layer (internal/fleet) uses it with its own key so
// host placement decorrelates from the per-NIC queue placement.
type FlowHasher struct {
	tt *toeplitzTable
}

// NewFlowHasher precomputes the byte-at-a-time tables for key.
func NewFlowHasher(key [40]byte) *FlowHasher {
	return &FlowHasher{tt: newToeplitzTable(key[:])}
}

// Hash returns the Toeplitz hash of the flow, bit-identical to RSSHash
// under the same key.
//
//wirecap:hotpath
func (fh *FlowHasher) Hash(flow packet.FlowKey) uint32 { return fh.tt.hashFlow(flow) }

// hashFlow mirrors RSSHash over the precomputed table.
//
//wirecap:hotpath
func (t *toeplitzTable) hashFlow(flow packet.FlowKey) uint32 {
	h := t[0][flow.Src[0]] ^ t[1][flow.Src[1]] ^ t[2][flow.Src[2]] ^ t[3][flow.Src[3]] ^
		t[4][flow.Dst[0]] ^ t[5][flow.Dst[1]] ^ t[6][flow.Dst[2]] ^ t[7][flow.Dst[3]]
	if flow.Proto == packet.ProtoTCP || flow.Proto == packet.ProtoUDP {
		h ^= t[8][byte(flow.SrcPort>>8)] ^ t[9][byte(flow.SrcPort)] ^
			t[10][byte(flow.DstPort>>8)] ^ t[11][byte(flow.DstPort)]
	}
	return h
}

// Steering selects a receive queue for an incoming frame.
type Steering interface {
	// Queue returns the receive-queue index for the frame. ok is false
	// when the frame could not be classified (it then goes to queue 0,
	// as hardware defaults do).
	Queue(d *packet.Decoded) (q int, ok bool)
}

// QueueReSteerer is implemented by steering mechanisms whose placement
// can be rewritten when a queue dies. ReSteerQueue removes dead from the
// placement, spreading its load across the healthy queues, and returns
// how many entries it rewrote. Because steering is a pure function of
// the flow tuple plus this state, a rewrite moves each affected flow to
// exactly one new queue — per-flow ordering survives the move.
type QueueReSteerer interface {
	ReSteerQueue(dead int, healthy []int) int
}

// Indirection is a hash-indexed placement table: entry hash%len names
// the target — a receive queue for NIC RSS, a capture host for fleet
// steering (internal/fleet). Because lookup is a pure function of the
// flow hash plus this table, every packet of a flow lands on the same
// target, and a deterministic table rewrite moves each affected flow to
// exactly one new target.
type Indirection struct {
	table []int
}

// NewIndirection returns an equal-weight table of the given size across
// n targets (entry i names target i%n), the layout drivers program by
// default.
func NewIndirection(entries, n int) *Indirection {
	t := &Indirection{table: make([]int, entries)}
	for i := range t.table {
		t.table[i] = i % n
	}
	return t
}

// Len returns the table size.
func (t *Indirection) Len() int { return len(t.table) }

// Lookup returns the target for hash h.
//
//wirecap:hotpath
func (t *Indirection) Lookup(h uint32) int { return t.table[h%uint32(len(t.table))] }

// Entry returns table entry i.
func (t *Indirection) Entry(i int) int { return t.table[i] }

// Set replaces the table with a copy of entries.
func (t *Indirection) Set(entries []int) {
	t.table = make([]int, len(entries))
	copy(t.table, entries)
}

// Clone returns an independent copy — fleet hosts each hold a private
// replica updated by broadcast re-steer operations, and applying the
// same operation sequence to identical clones keeps them identical.
func (t *Indirection) Clone() *Indirection {
	c := &Indirection{table: make([]int, len(t.table))}
	copy(c.table, t.table)
	return c
}

// ReSteer rewrites every entry naming the dead target to one of the
// healthy targets, round-robin in table order so the displaced load
// spreads evenly and deterministically. It returns how many entries it
// rewrote.
func (t *Indirection) ReSteer(dead int, healthy []int) int {
	if len(healthy) == 0 {
		return 0
	}
	moved := 0
	for i, q := range t.table {
		if q == dead {
			t.table[i] = healthy[moved%len(healthy)]
			moved++
		}
	}
	return moved
}

// Restore rewrites the entries owned by target in the canonical
// equal-weight layout (entry i names target i%n) back to that target —
// the readmission inverse of ReSteer. It returns how many entries moved.
func (t *Indirection) Restore(target, n int) int {
	moved := 0
	for i := range t.table {
		if i%n == target && t.table[i] != target {
			t.table[i] = target
			moved++
		}
	}
	return moved
}

// RSSSteering is hardware RSS: Toeplitz hash + indirection table.
type RSSSteering struct {
	key [40]byte
	tt  *toeplitzTable // per-byte expansion of key, the per-packet path
	ind *Indirection   // indirection table: hash LSBs -> queue
}

// IndirectionEntries is the indirection-table size of the Intel 82599
// (128 entries).
const IndirectionEntries = 128

// NewRSS returns RSS steering across n queues with the default key and an
// equal-weight indirection table, as drivers program by default.
func NewRSS(n int) *RSSSteering {
	s := &RSSSteering{key: DefaultRSSKey, ind: NewIndirection(IndirectionEntries, n)}
	s.tt = newToeplitzTable(s.key[:])
	return s
}

// SetKey replaces the hash key.
func (s *RSSSteering) SetKey(key [40]byte) {
	s.key = key
	s.tt = newToeplitzTable(s.key[:])
}

// SetTable replaces the indirection table. Entries must name valid queues;
// the caller owns that contract.
func (s *RSSSteering) SetTable(table []int) {
	s.ind.Set(table)
}

// ReSteerQueue implements QueueReSteerer: every indirection-table entry
// naming the dead queue is rewritten to one of the healthy queues,
// round-robin in table order so the displaced load spreads evenly and
// deterministically.
func (s *RSSSteering) ReSteerQueue(dead int, healthy []int) int {
	return s.ind.ReSteer(dead, healthy)
}

// Queue implements Steering.
//
//wirecap:hotpath
func (s *RSSSteering) Queue(d *packet.Decoded) (int, bool) {
	if d.IPVersion != 4 && d.IPVersion != 6 {
		return 0, false
	}
	return s.ind.Lookup(s.tt.hashFlow(d.Flow)), true
}

// RoundRobinSteering distributes packets evenly regardless of flow — the
// paper's §2.3 "first approach", which balances load but breaks
// application logic because one flow's packets spray across queues.
type RoundRobinSteering struct {
	n, next int
}

// NewRoundRobin returns round-robin steering across n queues.
func NewRoundRobin(n int) *RoundRobinSteering { return &RoundRobinSteering{n: n} }

// Queue implements Steering.
func (s *RoundRobinSteering) Queue(*packet.Decoded) (int, bool) {
	q := s.next
	s.next = (s.next + 1) % s.n
	return q, true
}
