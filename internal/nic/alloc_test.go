package nic

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/vtime"
)

// TestDeliverZeroAllocs is the regression guard for the per-packet receive
// path: steering classification, DMA write, and immediate engine refill
// (the Type-II pattern) must not allocate in steady state.
func TestDeliverZeroAllocs(t *testing.T) {
	sched := vtime.NewScheduler()
	n := New(sched, Config{RxQueues: 1, RingSize: 64, Promiscuous: true})
	ring := n.Rx(0)
	for i := 0; i < ring.Size(); i++ {
		ring.Refill(i, make([]byte, 2048))
	}
	ring.OnRx(func(i int) { ring.Refill(i, ring.Desc(i).Buf) })

	b := packet.NewBuilder()
	buf := make([]byte, packet.MaxFrameLen)
	frame := b.Build(buf, packet.FlowKey{
		Src: packet.IPv4FromUint32(0x83E10201), Dst: packet.IPv4FromUint32(0xc0a80001),
		SrcPort: 1000, DstPort: 2000, Proto: packet.ProtoUDP,
	}, make([]byte, 18))

	if !n.Deliver(frame, 0) {
		t.Fatal("warm-up Deliver failed")
	}
	if a := testing.AllocsPerRun(1000, func() {
		if !n.Deliver(frame, 0) {
			t.Fatal("Deliver failed")
		}
	}); a > 0 {
		t.Errorf("Deliver allocates %.2f/op, want 0", a)
	}
}
