package nic

import (
	"strings"
	"testing"

	"repro/internal/packet"
	"repro/internal/vtime"
)

func TestNICAccessors(t *testing.T) {
	sched := vtime.NewScheduler()
	n := New(sched, Config{ID: 7, RxQueues: 3, RingSize: 16, TxQueues: 2, Promiscuous: true})
	if n.ID() != 7 || n.RxQueues() != 3 || n.TxQueues() != 2 {
		t.Fatalf("accessors: id %d rx %d tx %d", n.ID(), n.RxQueues(), n.TxQueues())
	}
	if n.LineRateBps() != LineRate10G {
		t.Fatalf("line rate %v", n.LineRateBps())
	}
	r := n.Rx(1)
	if r.ID() != 1 || r.Fill() != 0 {
		t.Fatalf("ring id %d fill %d", r.ID(), r.Fill())
	}
	r.SetBusOverhead(12)
	if r.BusOverhead() != 12 {
		t.Fatal("bus overhead not stored")
	}
	r.SetBusOverhead(-4)
	if r.BusOverhead() != 0 {
		t.Fatal("negative overhead not clamped")
	}
	tx := n.Tx(1)
	if tx.ID() != 1 || tx.Queued() != 0 {
		t.Fatalf("tx id %d queued %d", tx.ID(), tx.Queued())
	}
	if got := n.WireInterval(60); got != WireInterval(LineRate10G, 60) {
		t.Fatalf("WireInterval mismatch: %v", got)
	}
}

func TestStatsTotalsHelpers(t *testing.T) {
	s := Stats{Rx: []RxStats{
		{Received: 5, WireDrops: 2, BusDrops: 1},
		{Received: 3, WireDrops: 4},
	}}
	if s.TotalWireDrops() != 7 {
		t.Fatalf("TotalWireDrops = %d", s.TotalWireDrops())
	}
	if s.TotalReceived() != 8 {
		t.Fatalf("TotalReceived = %d", s.TotalReceived())
	}
}

func TestDescStateStrings(t *testing.T) {
	// An ordered table, not a map: failures report in a stable order.
	for _, tc := range []struct {
		st   DescState
		want string
	}{
		{DescEmpty, "empty"},
		{DescReady, "ready"},
		{DescUsed, "used"},
		{DescState(9), "DescState(9)"},
	} {
		if got := tc.st.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", tc.st, got, tc.want)
		}
	}
}

func TestRSSCustomKeyAndTable(t *testing.T) {
	s := NewRSS(4)
	// A custom indirection table that sends everything to queue 2.
	table := make([]int, IndirectionEntries)
	for i := range table {
		table[i] = 2
	}
	s.SetTable(table)
	b := packet.NewBuilder()
	buf := make([]byte, packet.MaxFrameLen)
	frame := b.Build(buf, packet.FlowKey{
		Src: packet.IPv4{9, 9, 9, 9}, Dst: packet.IPv4{8, 8, 8, 8},
		SrcPort: 77, DstPort: 88, Proto: packet.ProtoUDP,
	}, nil)
	var d packet.Decoded
	if err := packet.Decode(frame, &d); err != nil {
		t.Fatal(err)
	}
	if q, ok := s.Queue(&d); !ok || q != 2 {
		t.Fatalf("custom table -> queue %d ok %v", q, ok)
	}
	// Changing the key changes (almost surely) which entry is picked; the
	// all-2 table still yields 2.
	hashBefore := RSSHash(DefaultRSSKey[:], d.Flow)
	var key [40]byte
	for i := range key {
		key[i] = byte(i * 7)
	}
	s.SetKey(key)
	if q, _ := s.Queue(&d); q != 2 {
		t.Fatal("custom key broke the indirection table")
	}
	if RSSHash(key[:], d.Flow) == hashBefore {
		t.Fatal("changing the key did not change the hash")
	}
}

func TestRSSRejectsNonIP(t *testing.T) {
	s := NewRSS(4)
	var d packet.Decoded
	frame := make([]byte, 60)
	frame[12], frame[13] = 0x08, 0x06 // ARP
	_ = packet.Decode(frame, &d)
	if _, ok := s.Queue(&d); ok {
		t.Fatal("RSS classified a non-IP frame")
	}
}

func TestNewRingPanicsOnBadSize(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "ring size") {
			t.Fatalf("recover = %v", r)
		}
	}()
	newRxRing(0, 0, 0)
}
