package nic

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/vtime"
)

// TestToeplitzTableMatchesReference verifies the per-byte table produces
// bit-identical hashes to the bit-serial Toeplitz reference, for TCP/UDP
// (12-byte input) and other protocols (8-byte input), across keys.
func TestToeplitzTableMatchesReference(t *testing.T) {
	keys := [][40]byte{DefaultRSSKey}
	var alt [40]byte
	r := vtime.NewRand(99)
	for i := range alt {
		alt[i] = byte(r.Intn(256))
	}
	keys = append(keys, alt)
	for _, key := range keys {
		tt := newToeplitzTable(key[:])
		for i := 0; i < 5000; i++ {
			proto := packet.ProtoUDP
			switch i % 3 {
			case 1:
				proto = packet.ProtoTCP
			case 2:
				proto = 47 // GRE: hashes addresses only
			}
			f := packet.FlowKey{
				Src:     packet.IPv4FromUint32(uint32(r.Uint32())),
				Dst:     packet.IPv4FromUint32(uint32(r.Uint32())),
				SrcPort: uint16(r.Intn(1 << 16)),
				DstPort: uint16(r.Intn(1 << 16)),
				Proto:   proto,
			}
			if got, want := tt.hashFlow(f), RSSHash(key[:], f); got != want {
				t.Fatalf("hashFlow(%+v) = %#x, reference %#x", f, got, want)
			}
		}
	}
}
