package nic

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/vtime"
)

// TestRingRandomConsumeConservation drives a ring with random interleaved
// deliveries and consume/refill patterns (the union of every engine's
// behaviour) and checks the structural invariants after every step:
// received + wire drops == offered, and descriptor states partition the
// ring.
func TestRingRandomConsumeConservation(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		r := vtime.NewRand(seed)
		sched := vtime.NewScheduler()
		n := New(sched, Config{ID: 0, RxQueues: 1, RingSize: 64, Promiscuous: true})
		ring := n.Rx(0)
		for i := 0; i < ring.Size(); i++ {
			ring.Refill(i, make([]byte, 2048))
		}
		frame := buildUDP(t, testFlow(), int(seed)*7%100)
		var offered uint64
		tail := 0
		held := []int{} // consumed but not yet refilled
		for step := 0; step < 5000; step++ {
			switch r.Intn(3) {
			case 0, 1: // a packet arrives
				offered++
				n.Deliver(frame, vtime.Time(step))
			case 2: // the engine consumes in order, maybe deferring refill
				d := ring.Desc(tail)
				if d.State != DescUsed {
					continue
				}
				if r.Intn(2) == 0 {
					ring.Refill(tail, d.Buf)
				} else {
					held = append(held, tail)
					ring.Invalidate(tail)
				}
				tail = (tail + 1) % ring.Size()
				// Sometimes release a held descriptor.
				if len(held) > 0 && r.Intn(3) == 0 {
					idx := held[0]
					held = held[1:]
					ring.Refill(idx, make([]byte, 2048))
				}
			}
			st := ring.Stats()
			if st.Received+st.WireDrops+st.BusDrops != offered {
				t.Fatalf("seed %d step %d: conservation violated", seed, step)
			}
			// State partition: every descriptor is in exactly one state.
			counts := map[DescState]int{}
			for i := 0; i < ring.Size(); i++ {
				counts[ring.Desc(i).State]++
			}
			if counts[DescEmpty]+counts[DescReady]+counts[DescUsed] != ring.Size() {
				t.Fatalf("seed %d: descriptor states do not partition the ring", seed)
			}
		}
	}
}

// TestSteeringDeterministicPerFlow fuzzes RSS with random flows: the same
// decoded packet always steers to the same queue, and the queue is always
// in range.
func TestSteeringDeterministicPerFlow(t *testing.T) {
	r := vtime.NewRand(4)
	for _, queues := range []int{1, 2, 3, 5, 6, 8, 16} {
		s := NewRSS(queues)
		b := packet.NewBuilder()
		buf := make([]byte, packet.MaxFrameLen)
		for i := 0; i < 200; i++ {
			proto := packet.ProtoUDP
			if r.Intn(2) == 0 {
				proto = packet.ProtoTCP
			}
			flow := packet.FlowKey{
				Src:     packet.IPv4FromUint32(r.Uint32()),
				Dst:     packet.IPv4FromUint32(r.Uint32()),
				SrcPort: uint16(r.Intn(65536)),
				DstPort: uint16(r.Intn(65536)),
				Proto:   proto,
			}
			frame := b.Build(buf, flow, nil)
			var d packet.Decoded
			if err := packet.Decode(frame, &d); err != nil {
				t.Fatal(err)
			}
			q1, ok1 := s.Queue(&d)
			q2, ok2 := s.Queue(&d)
			if !ok1 || !ok2 || q1 != q2 {
				t.Fatalf("steering not deterministic: %d vs %d", q1, q2)
			}
			if q1 < 0 || q1 >= queues {
				t.Fatalf("queue %d out of range [0,%d)", q1, queues)
			}
		}
	}
}
