package core
