package core

import (
	"testing"

	"repro/internal/bpf"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// filterRun drives the border workload through a one-queue engine with
// an optional chunk filter and returns the engine plus handler.
func filterRun(t *testing.T, expr string) (*Engine, *testHandler, uint64) {
	t.Helper()
	sched := vtime.NewScheduler()
	n := oneQueueNIC(sched)
	h := newTestHandler(10 * vtime.Nanosecond)
	cfg := Config{M: 128, R: 100}
	if expr != "" {
		cfg.ChunkFilter = bpf.MustCompileFlat(expr, 65535)
	}
	e := newEngine(t, sched, n, cfg, h)
	src := trace.NewBorder(trace.BorderConfig{Queues: 1, Duration: 2 * vtime.Second, Scale: 0.05, Seed: 5})
	st := trace.Drive(sched, n, src, nil)
	sched.Run()
	checkPools(t, e)
	return e, h, st.Sent
}

// TestChunkFilterDelivery: with a batch filter installed, only
// accepted packets reach the handler, filtered packets are accounted
// in ChunkFiltered (not in any drop class), and the unfiltered run's
// delivery count decomposes exactly into delivered + filtered.
func TestChunkFilterDelivery(t *testing.T) {
	eAll, hAll, sentAll := filterRun(t, "")
	eUDP, hUDP, sentUDP := filterRun(t, "udp")
	if sentAll != sentUDP {
		t.Fatalf("workloads diverged: %d vs %d packets", sentAll, sentUDP)
	}
	allStats := eAll.Stats().Totals()
	udpStats := eUDP.Stats().Totals()
	if allStats.TotalDrops() != 0 || udpStats.TotalDrops() != 0 {
		t.Fatalf("unexpected drops: %d / %d", allStats.TotalDrops(), udpStats.TotalDrops())
	}
	if eAll.ChunkFiltered() != 0 {
		t.Fatalf("nil filter filtered %d packets", eAll.ChunkFiltered())
	}
	if hAll.processed != allStats.Delivered {
		t.Fatalf("unfiltered handler saw %d, delivered %d", hAll.processed, allStats.Delivered)
	}
	filtered := eUDP.ChunkFiltered()
	if filtered == 0 {
		t.Fatal("udp filter rejected nothing on a mixed tcp/udp workload")
	}
	if hUDP.processed == 0 {
		t.Fatal("udp filter delivered nothing")
	}
	// Conservation: received decomposes into delivered + filtered.
	if udpStats.Received != udpStats.Delivered+filtered {
		t.Fatalf("received %d != delivered %d + filtered %d",
			udpStats.Received, udpStats.Delivered, filtered)
	}
	// The filtered split reassembles the unfiltered run exactly.
	if allStats.Delivered != udpStats.Delivered+filtered {
		t.Fatalf("unfiltered delivered %d != filtered delivered %d + filtered %d",
			allStats.Delivered, udpStats.Delivered, filtered)
	}
	if hUDP.processed != udpStats.Delivered {
		t.Fatalf("handler saw %d, engine delivered %d", hUDP.processed, udpStats.Delivered)
	}
}

// TestChunkFilterOnlyMatchesDelivered: every frame the handler sees
// satisfies the filter (checked against the interpreter backend).
func TestChunkFilterOnlyMatchesDelivered(t *testing.T) {
	sched := vtime.NewScheduler()
	n := oneQueueNIC(sched)
	vm, err := bpf.NewVM(bpf.MustCompile("tcp port 443 or udp", 65535))
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	h := newTestHandler(0)
	e := newEngine(t, sched, n, Config{
		M: 64, R: 100,
		ChunkFilter: bpf.MustCompileFlat("tcp port 443 or udp", 65535),
	}, &verifyHandler{inner: h, check: func(data []byte) {
		checked++
		if !vm.Match(data) {
			t.Fatalf("delivered frame fails the filter (len %d)", len(data))
		}
	}})
	src := trace.NewBorder(trace.BorderConfig{Queues: 1, Duration: vtime.Second, Scale: 0.05, Seed: 9})
	trace.Drive(sched, n, src, nil)
	sched.Run()
	if checked == 0 || e.ChunkFiltered() == 0 {
		t.Fatalf("degenerate run: checked %d, filtered %d", checked, e.ChunkFiltered())
	}
}

type verifyHandler struct {
	inner *testHandler
	check func([]byte)
}

func (v *verifyHandler) Cost(q int, data []byte) vtime.Time { return v.inner.Cost(q, data) }

func (v *verifyHandler) Handle(q int, data []byte, ts vtime.Time, done func()) {
	v.check(data)
	v.inner.Handle(q, data, ts, done)
}
