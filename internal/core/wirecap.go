// Package core implements WireCAP, the paper's packet capture engine: the
// ring-buffer-pool mechanism for lossless zero-copy capture under
// short-term bursts (§3.2.1), the buddy-group-based offloading mechanism
// for long-term load imbalance (§3.2.2), capture threads with work-queue
// pairs, the partial-chunk timeout flush, and zero-copy forwarding through
// transmit rings.
package core

import (
	"errors"
	"fmt"
	"strconv"

	"repro/internal/bpf"
	"repro/internal/engines"
	"repro/internal/faults"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/vtime"
)

// chunkTID folds a chunk's identity into the flight recorder's chunk key.
func chunkTID(c *mem.Chunk) uint64 {
	id := c.ID()
	return obs.ChunkID(id.Ring, id.Chunk)
}

// Mode selects WireCAP's operating mode.
type Mode int

// Operating modes (paper §3.2.2a).
const (
	// Basic handles each receive queue independently: the ring buffer
	// pool absorbs short-term bursts, but long-term overload eventually
	// exhausts it.
	Basic Mode = iota
	// Advanced adds buddy-group-based offloading: a busy queue's capture
	// thread places chunks on an idle buddy's capture queue.
	Advanced
)

func (m Mode) String() string {
	if m == Advanced {
		return "advanced"
	}
	return "basic"
}

// OffloadPolicy selects the offload target within a buddy group; the
// paper uses the least-loaded queue, the alternatives exist for the
// ablation study.
type OffloadPolicy int

// Offload target policies.
const (
	// OffloadShortest picks the buddy with the shortest capture queue.
	OffloadShortest OffloadPolicy = iota
	// OffloadRoundRobin rotates through the buddies.
	OffloadRoundRobin
	// OffloadRandom picks a buddy uniformly at random.
	OffloadRandom
)

// Config parameterizes the engine. The paper's naming convention
// WireCAP-B-(M, R) and WireCAP-A-(M, R, T) maps onto M, R, Mode, and
// ThresholdPct.
type Config struct {
	// M is the descriptor segment size: cells per packet buffer chunk.
	M int
	// R is the ring buffer pool size in chunks; buffering capacity per
	// queue is R*M packets. R must exceed RingSize/M so the ring can be
	// fully armed with chunks to spare (§3.2.1).
	R int
	// Mode is Basic or Advanced.
	Mode Mode
	// ThresholdPct is T: offloading starts when a capture queue holds
	// more than ThresholdPct% of R chunks. Only meaningful in Advanced
	// mode. Default 60.
	ThresholdPct int
	// Policy picks the offload target. Default OffloadShortest.
	Policy OffloadPolicy
	// BuddyGroups partitions queue indices into buddy groups; offloading
	// never crosses groups (one group per application, §3.2.1). nil means
	// all queues form one group.
	BuddyGroups [][]int
	// FlushTimeout bounds how long a partially filled chunk may hold
	// packets before they are copied out and delivered (the capture
	// operation's timeout, §3.2.1). Zero disables flushing.
	FlushTimeout vtime.Time
	// SharedCaptureCore runs all capture threads on one core instead of
	// one core each ("the system can dedicate one or several cores to run
	// all capture threads").
	SharedCaptureCore bool
	// ThreadsPerQueue runs several application threads against each
	// queue's work-queue pair — the paper's §5e alternative paradigm
	// ("multiple threads of a packet-processing application can access a
	// single NIC receive queue"). Default 1. The synchronization overhead
	// the paper notes is charged per fetch.
	ThreadsPerQueue int
	// Costs is the operation cost model.
	Costs engines.CostModel
	// Seed drives the random offload policy.
	Seed uint64
	// Faults is the run's fault injector; nil falls back to the NIC's
	// (set via nic.Config.Faults). With an injector present the engine
	// also activates its recovery machinery unless DisableRecovery.
	Faults *faults.Injector
	// WatchdogInterval is the recovery watchdog's tick period. Default
	// DefaultWatchdogInterval.
	WatchdogInterval vtime.Time
	// DisableRecovery takes the faults but not the cure: injection
	// points stay active while the watchdog, retries, quarantine, and
	// integrity validation are off — the ablation configuration that
	// shows what the recovery machinery buys.
	DisableRecovery bool
	// Domain is the time-domain affinity label of this engine in a
	// multi-domain (PDES) simulation: the index of the domain whose
	// scheduler the engine was built against. Purely informational —
	// fleet runs use it to tag merged observability output — and 0 in
	// every single-domain run.
	Domain int
	// OnAction, when non-nil, observes every recovery action the engine
	// takes (quarantine, re_steer, failover, reclaim_backlog,
	// alloc_retry) at the virtual time it happens. Fleet runs bind this
	// to a cross-domain mailbox so a host's recovery becomes visible on
	// the fleet aggregation plane; the hook must be deterministic. It
	// fires in addition to (never instead of) flight-recorder Action
	// records.
	OnAction func(kind string, queue int, at vtime.Time)
	// ChunkFilter, when non-nil, is the batch filter the consumer path
	// applies once per handed chunk (bpf.FlatProgram.FilterChunk) as the
	// chunk is picked up for draining: rejected packets are never
	// delivered and count in ChunkFiltered, not in any drop class —
	// filtering is policy, not loss. nil (the default) delivers
	// everything, leaving every pre-existing baseline digest unchanged.
	// The program is shared by all of the engine's queues, which is safe
	// within one time domain (a domain runs on one goroutine); engines
	// in different domains need their own programs.
	ChunkFilter *bpf.FlatProgram
}

// DefaultFlushTimeout keeps delivery latency bounded at a fraction of the
// 10 ms profiling bin.
const DefaultFlushTimeout = 2 * vtime.Millisecond

// QueueStats extends the common engine stats with WireCAP-specific
// counters.
type QueueStats struct {
	engines.QueueStats
	ChunksCaptured  uint64 // full-chunk zero-copy captures
	ChunksOffloaded uint64 // chunks placed on a buddy's capture queue
	ChunksFlushed   uint64 // partial chunks delivered by timeout copy
	FlushedPackets  uint64 // packets delivered through flush copies
	PoolExhausted   uint64 // arm attempts that found no free chunk
	ChunkFiltered   uint64 // packets rejected by the batch chunk filter

	// Recovery counters; all zero on well-behaved runs.
	Quarantines      uint64 // times this queue was declared dead
	HandlerFailovers uint64 // backlog hand-offs to a live buddy
	ChunksReclaimed  uint64 // chunks force-reclaimed by recovery
	AllocFaults      uint64 // transient injected allocation failures
	AllocRetries     uint64 // backoff retries scheduled for those
	ReSteeredEntries uint64 // steering entries rewritten at quarantine
}

// Engine is the WireCAP capture engine bound to one NIC.
type Engine struct {
	sched *vtime.Scheduler
	n     *nic.NIC
	cfg   Config
	rnd   *vtime.Rand

	queues  []*wqueue
	rrState int // round-robin offload pointer
	closed  bool

	// Fault injection and recovery. recovery is true when an injector is
	// present and recovery was not disabled; wd is the engine-wide
	// watchdog timer, stopped whenever every queue is idle and re-armed
	// by fault activations and fresh work (see armWatchdog).
	inj      *faults.Injector
	recovery bool
	wd       *vtime.Timer

	// Flight recorder (rides the NIC like the fault injector); traceName
	// caches Name() so hook sites pass a prebuilt constant string.
	trace     *obs.Recorder
	traceName string
	nicID     int

	sharedCapture *vtime.Server

	// handedFree recycles handedChunk headers (and their release
	// closures die with them), so steady-state capture allocates only
	// one small header per chunk hand-off at most.
	handedFree []*handedChunk
}

// cellRef locates the pool cell a descriptor is armed with.
type cellRef struct {
	chunk *mem.Chunk
	cell  int
}

// handedChunk is a captured chunk as seen by the user-space library:
// metadata plus the (mapped) chunk reference.
type handedChunk struct {
	meta  mem.Meta
	chunk *mem.Chunk
	next  int // packets dispatched so far, relative to Base
	// outstanding counts dispatched packets whose done callback has not
	// run yet (e.g. sitting in a TX ring); the chunk recycles only when
	// the whole chunk is dispatched and outstanding returns to zero.
	outstanding int
	dispatched  bool
	owner       *wqueue    // queue whose pool owns the chunk
	recycleAt   vtime.Time // when the recycle ioctl was enqueued
	// releaseFn is the per-packet done callback, built once by the
	// consuming queue when it starts draining the chunk and shared by
	// every packet in it (each packet's done runs exactly once).
	releaseFn func()
}

type wqueue struct {
	e     *Engine
	queue int
	ring  *nic.RxRing
	pool  *mem.Pool

	// Kernel-side arming state.
	armChunk *mem.Chunk
	armCell  int
	cells    []cellRef // per-descriptor cell assignment
	starved  []int     // descriptor indices waiting for cells, in use order

	// Frontier flush timer, reused for the queue's lifetime.
	// flushRetries counts consecutive timeouts that found no free chunk
	// to copy into; past maxFlushRetries the pending window is reclaimed
	// instead of retried (with a pool no larger than the ring, a free
	// chunk may never appear and unbounded retry would livelock).
	flushTimer   *vtime.Timer
	flushTarget  *mem.Chunk
	flushRetries int

	// Capture thread. capPending holds chunks whose capture ioctl has
	// been charged but not completed (FIFO, popped by captureFn);
	// capPendingAt carries each entry's enqueue time for the latency
	// histogram; captureFn/recycleFn are bound once so chunk ops
	// allocate nothing.
	capSv        *vtime.Server
	capPending   []*mem.Chunk
	capPendingAt []vtime.Time
	captureFn    func()
	recycleFn    func()

	// User-space work-queue pair.
	captureQ []*handedChunk
	recycleQ []*handedChunk
	cur      *handedChunk

	// Batch chunk filter (Config.ChunkFilter). fltFrames and fltAccept
	// are preallocated scratch reused for every chunk; curAccept is the
	// bitmap covering q.cur (one chunk drains at a time, so one buffer
	// serves the queue's lifetime).
	flt       *bpf.FlatProgram
	fltFrames [][]byte
	curAccept []uint64

	threads []*engines.Thread
	buddies []*wqueue

	stats QueueStats

	// Recovery state. dead marks a quarantined queue; rerouted marks a
	// queue whose consumer wedged and whose chunks now flow to rerouteTo
	// (sticky for the run — resuming self-delivery while the buddy still
	// holds older chunks would reorder flows). retryTimer drives the
	// bounded backoff for transient allocation faults; the wd* fields
	// are the watchdog's last-tick snapshots.
	dead         bool
	rerouted     bool
	rerouteTo    *wqueue
	retryTimer   *vtime.Timer
	retryAttempt int
	wdReceived   uint64
	wdFaultDrops uint64
	wdDelivered  uint64
	stallTicks   int
	wedgeTicks   int

	// Latency histograms: enqueue-to-completion of the chunk-granular
	// operations, in virtual nanoseconds. Record is allocation-free.
	capLat   *metrics.Histogram
	recLat   *metrics.Histogram
	flushLat *metrics.Histogram
}

// New builds a WireCAP engine on every receive queue of n, delivering to
// h. It maps each queue's pool (Open) and fully arms each ring.
func New(sched *vtime.Scheduler, n *nic.NIC, cfg Config, h engines.Handler) (*Engine, error) {
	if cfg.M <= 0 || cfg.R <= 0 {
		return nil, fmt.Errorf("core: invalid geometry M=%d R=%d", cfg.M, cfg.R)
	}
	if cfg.R*cfg.M < n.RingSize() {
		return nil, fmt.Errorf("core: pool capacity R*M=%d cannot arm a %d-descriptor ring",
			cfg.R*cfg.M, n.RingSize())
	}
	if cfg.ThresholdPct == 0 {
		cfg.ThresholdPct = 60
	}
	if cfg.ThresholdPct < 1 || cfg.ThresholdPct > 100 {
		return nil, fmt.Errorf("core: threshold %d%% out of range", cfg.ThresholdPct)
	}
	if cfg.FlushTimeout == 0 {
		cfg.FlushTimeout = DefaultFlushTimeout
	}
	if cfg.ThreadsPerQueue <= 0 {
		cfg.ThreadsPerQueue = 1
	}
	if cfg.Faults == nil {
		cfg.Faults = n.Faults()
	}
	if cfg.WatchdogInterval <= 0 {
		cfg.WatchdogInterval = DefaultWatchdogInterval
	}
	e := &Engine{sched: sched, n: n, cfg: cfg, rnd: vtime.NewRand(cfg.Seed + 3)}
	e.inj = cfg.Faults
	e.recovery = e.inj != nil && !cfg.DisableRecovery
	e.trace = n.Trace()
	e.traceName = e.Name()
	e.nicID = n.ID()
	if cfg.SharedCaptureCore {
		e.sharedCapture = vtime.NewServer(sched, nil)
	}
	for qi := 0; qi < n.RxQueues(); qi++ {
		q := &wqueue{e: e, queue: qi, ring: n.Rx(qi)}
		q.pool = mem.NewPool(n.ID(), qi, cfg.M, cfg.R)
		if err := q.pool.Map(); err != nil {
			return nil, err
		}
		q.pool.SetTrace(e.trace, sched.Now)
		if cfg.SharedCaptureCore {
			q.capSv = e.sharedCapture
		} else {
			q.capSv = vtime.NewServer(sched, nil)
		}
		q.flushTimer = sched.NewTimer(q.flushTimeout)
		q.captureFn = q.captureDone
		q.recycleFn = q.recycleDone
		if cfg.ChunkFilter != nil {
			q.flt = cfg.ChunkFilter
			q.fltFrames = make([][]byte, cfg.M)
			q.curAccept = make([]uint64, (cfg.M+63)/64)
		}
		for i := 0; i < cfg.ThreadsPerQueue; i++ {
			th := engines.NewThread(sched, nil, qi, h, q.fetch)
			th.SetFaults(e.inj, n.ID())
			th.SetTrace(e.trace, e.traceName, n.ID())
			q.threads = append(q.threads, th)
		}
		if e.inj != nil {
			// Transient allocation faults apply with or without recovery;
			// only the retry/backoff response below is recovery-gated.
			qi := qi
			q.pool.SetAllocFault(func() bool { return e.inj.AllocFails(n.ID(), qi) })
		}
		if e.recovery {
			q.retryTimer = sched.NewTimer(q.allocRetryTick)
		}
		e.queues = append(e.queues, q)
	}
	if e.recovery {
		e.wd = sched.Every(cfg.WatchdogInterval, e.watchdogTick)
		e.inj.OnActivate(e.armWatchdog)
	}
	e.register(n)
	// Buddy groups.
	groups := cfg.BuddyGroups
	if groups == nil {
		all := make([]int, n.RxQueues())
		for i := range all {
			all[i] = i
		}
		groups = [][]int{all}
	}
	seen := make(map[int]bool)
	for _, g := range groups {
		for _, qi := range g {
			if qi < 0 || qi >= len(e.queues) {
				return nil, fmt.Errorf("core: buddy group names queue %d of %d", qi, len(e.queues))
			}
			if seen[qi] {
				return nil, fmt.Errorf("core: queue %d in two buddy groups", qi)
			}
			seen[qi] = true
		}
		for _, qi := range g {
			for _, b := range g {
				e.queues[qi].buddies = append(e.queues[qi].buddies, e.queues[b])
			}
		}
	}
	// Arm every ring and register DMA callbacks; charge the engine's
	// extra per-packet bus footprint (chunk metadata I/O).
	for _, q := range e.queues {
		for i := 0; i < q.ring.Size(); i++ {
			if !q.arm(i) {
				return nil, fmt.Errorf("core: queue %d: pool exhausted arming descriptor %d", q.queue, i)
			}
		}
		q.ring.SetBusOverhead(wirecapBusOverhead)
		q := q
		q.ring.OnRx(func(i int) { q.onRx(i) })
	}
	e.applyPagePenalty()
	return e, nil
}

// wirecapBusOverhead is the extra bus traffic per packet for WireCAP's
// ring-buffer-pool bookkeeping (chunk metadata, extra descriptor I/O),
// versus the baseline already included in the bus's per-transfer overhead.
// It is what makes WireCAP lose to DNA at queues/NIC=1 in Figure 14 when
// the bus saturates.
const wirecapBusOverhead = 10

// pagePenaltyPerGB models TLB pressure from very large pool footprints:
// bytes of extra memory traffic per packet for each GB of pool memory
// beyond 1 GB (paper §4: "a big-memory application typically pays a high
// cost for page-based virtual memory").
const pagePenaltyPerGB = 24

func (e *Engine) applyPagePenalty() {
	total := 0
	for _, q := range e.queues {
		total += q.pool.MemoryBytes()
	}
	const gb = 1 << 30
	if total <= gb {
		return
	}
	penalty := (total - gb) * pagePenaltyPerGB / gb
	for _, q := range e.queues {
		q.ring.SetBusOverhead(wirecapBusOverhead + penalty)
	}
}

// register exports the engine's observability series on the NIC's
// registry: chunk-operation counters sampled from the existing stats
// (free on the hot path), pool/queue occupancy gauges, and the
// capture/recycle/flush latency histograms the work-queue pairs record
// into directly.
func (e *Engine) register(n *nic.NIC) {
	reg := n.Metrics()
	engL := metrics.L("engine", e.Name())
	nicL := metrics.L("nic", strconv.Itoa(n.ID()))
	for _, q := range e.queues {
		q := q
		ls := []metrics.Label{engL, nicL, metrics.L("queue", strconv.Itoa(q.queue))}
		reg.CounterFunc("wirecap_chunks_captured_total", func() uint64 { return q.stats.ChunksCaptured }, ls...)
		reg.CounterFunc("wirecap_chunks_offloaded_total", func() uint64 { return q.stats.ChunksOffloaded }, ls...)
		reg.CounterFunc("wirecap_chunks_flushed_total", func() uint64 { return q.stats.ChunksFlushed }, ls...)
		reg.CounterFunc("wirecap_flushed_packets_total", func() uint64 { return q.stats.FlushedPackets }, ls...)
		reg.CounterFunc("wirecap_pool_exhausted_total", func() uint64 { return q.stats.PoolExhausted }, ls...)
		reg.CounterFunc("wirecap_delivered_total", func() uint64 { return q.stats.Delivered }, ls...)
		reg.GaugeFunc("wirecap_pool_free_chunks", func() int64 { return int64(q.pool.FreeCount()) }, ls...)
		reg.GaugeFunc("wirecap_capture_queue_len", func() int64 { return int64(len(q.captureQ)) }, ls...)
		reg.GaugeFunc("wirecap_recycle_queue_len", func() int64 { return int64(len(q.recycleQ)) }, ls...)
		q.capLat = reg.Histogram("wirecap_capture_latency_ns", ls...)
		q.recLat = reg.Histogram("wirecap_recycle_latency_ns", ls...)
		q.flushLat = reg.Histogram("wirecap_flush_latency_ns", ls...)
		if q.flt != nil {
			// Filter series exist only when a chunk filter is installed,
			// so unfiltered snapshots (and digests) are unchanged.
			reg.CounterFunc("wirecap_chunk_filtered_total", func() uint64 { return q.stats.ChunkFiltered }, ls...)
		}
		if e.inj != nil {
			// Fault/recovery series exist only on chaos runs so
			// steady-state snapshots (and digests) are unchanged.
			reg.CounterFunc("wirecap_corrupt_drops_total", func() uint64 { return q.stats.CorruptDrops }, ls...)
			reg.CounterFunc("wirecap_reclaim_drops_total", func() uint64 { return q.stats.ReclaimDrops }, ls...)
			reg.CounterFunc("wirecap_quarantines_total", func() uint64 { return q.stats.Quarantines }, ls...)
			reg.CounterFunc("wirecap_handler_failovers_total", func() uint64 { return q.stats.HandlerFailovers }, ls...)
			reg.CounterFunc("wirecap_chunks_reclaimed_total", func() uint64 { return q.stats.ChunksReclaimed }, ls...)
			reg.CounterFunc("wirecap_alloc_faults_total", func() uint64 { return q.stats.AllocFaults }, ls...)
			reg.CounterFunc("wirecap_alloc_retries_total", func() uint64 { return q.stats.AllocRetries }, ls...)
			reg.CounterFunc("wirecap_resteered_entries_total", func() uint64 { return q.stats.ReSteeredEntries }, ls...)
		}
	}
}

// Name implements engines.Engine; it follows the paper's naming scheme.
func (e *Engine) Name() string {
	if e.cfg.Mode == Advanced {
		return fmt.Sprintf("WireCAP-A-(%d,%d,%d%%)", e.cfg.M, e.cfg.R, e.cfg.ThresholdPct)
	}
	return fmt.Sprintf("WireCAP-B-(%d,%d)", e.cfg.M, e.cfg.R)
}

// arm readies descriptor i with the next pool cell. It returns false, and
// leaves the descriptor empty, when no cell is available (pool exhausted).
//
//wirecap:hotpath
func (q *wqueue) arm(i int) bool {
	if q.armChunk == nil || q.armCell == q.armChunk.Cells() {
		c, err := q.pool.AllocFree()
		if err != nil {
			q.noteAllocFailure(err)
			q.ring.Invalidate(i)
			q.starved = append(q.starved, i) //wirelint:allow hotpath starved list is bounded by ring size; backing array is reused
			return false
		}
		q.armChunk = c
		q.armCell = 0
	}
	cell := q.armCell
	q.armCell++
	q.ring.Refill(i, q.armChunk.Cell(cell))
	q.cellOf(i).chunk = q.armChunk
	q.cellOf(i).cell = cell
	return true
}

// cellRefs is allocated lazily per queue.
//
//wirecap:hotpath
func (q *wqueue) cellOf(i int) *cellRef {
	if q.cells == nil {
		q.cells = make([]cellRef, q.ring.Size()) //wirelint:allow hotpath one-time lazy allocation per queue
	}
	return &q.cells[i]
}

// onRx runs after DMA fills descriptor i.
//
//wirecap:hotpath
func (q *wqueue) onRx(i int) {
	ref := *q.cellOf(i)
	d := q.ring.Desc(i)
	if d.Err && q.e.recovery {
		// Frame-integrity validation: the descriptor's error bit says the
		// DMA write damaged the frame (bad checksum). The cell was already
		// consumed by the DMA write, so it is tombstoned — the chunk's
		// strict in-order fill invariant holds, but the delivery and flush
		// paths skip the cell. Without recovery the bit is ignored and the
		// damaged frame is delivered, exactly like the baseline engines.
		q.stats.CorruptDrops++
		ref.chunk.MarkBad(ref.cell, d.TS)
		q.e.trace.DescDrop(obs.DropCorrupt, q.e.nicID, q.queue, i, q.e.sched.Now())
	} else {
		ref.chunk.SetPacket(ref.cell, d.Len, d.TS)
		q.e.trace.DescToCell(q.e.nicID, q.queue, i, chunkTID(ref.chunk), ref.cell, q.e.sched.Now())
	}
	if ref.chunk.Full() {
		if q.flushTarget == ref.chunk {
			q.flushTimer.Stop()
			q.flushTarget = nil
		}
		q.scheduleCapture(ref.chunk)
	} else if q.e.cfg.FlushTimeout > 0 && ref.chunk.PendingCount() == 1 {
		// First pending packet in the frontier chunk: bound its delay. A
		// fresh pending window gets a fresh retry budget.
		q.flushRetries = 0
		q.armFlush(ref.chunk)
	}
	// Re-arm the descriptor immediately: the packet's bytes live in the
	// pool cell, not the descriptor.
	if len(q.starved) > 0 {
		// Keep strict use-order arming: this descriptor queues behind the
		// ones already starving.
		q.starved = append(q.starved, i) //wirelint:allow hotpath starved list is bounded by ring size; backing array is reused
		q.ring.Invalidate(i)
		q.rearmStarved()
		return
	}
	q.arm(i)
}

func (q *wqueue) rearmStarved() {
	for len(q.starved) > 0 {
		i := q.starved[0]
		// arm re-appends to starved on failure; avoid duplicating.
		if q.armChunk == nil || q.armCell == q.armChunk.Cells() {
			c, err := q.pool.AllocFree()
			if err != nil {
				q.noteAllocFailure(err)
				return
			}
			q.armChunk = c
			q.armCell = 0
		}
		q.starved = q.starved[1:]
		cell := q.armCell
		q.armCell++
		q.ring.Refill(i, q.armChunk.Cell(cell))
		q.cellOf(i).chunk = q.armChunk
		q.cellOf(i).cell = cell
	}
	// Fully re-armed: the next transient-fault episode gets a fresh
	// backoff ladder.
	q.retryAttempt = 0
}

// noteAllocFailure classifies an AllocFree error: genuine pool
// exhaustion is the paper's §3.2.1 capture-drop path, while an injected
// transient failure additionally schedules a bounded retry with
// exponential backoff (the chunk is there; the allocator just failed).
func (q *wqueue) noteAllocFailure(err error) {
	if errors.Is(err, mem.ErrTransientAlloc) {
		q.stats.AllocFaults++
		q.scheduleAllocRetry()
		return
	}
	q.stats.PoolExhausted++
}

// armFlush schedules the partial-chunk timeout for the frontier chunk by
// re-arming the queue's persistent timer.
func (q *wqueue) armFlush(c *mem.Chunk) {
	q.flushTarget = c
	q.flushTimer.Schedule(q.e.cfg.FlushTimeout)
}

// flushTimeout is the flush timer's bound callback.
func (q *wqueue) flushTimeout() {
	c := q.flushTarget
	q.flushTarget = nil
	q.flush(c)
}

// scheduleCapture runs the chunk-granular capture ioctl on the capture
// thread: the full chunk moves to a user-space capture queue by metadata
// only. The chunk joins capPending; captureDone pops in FIFO order, which
// matches the server's FIFO completion order.
//
//wirecap:hotpath
func (q *wqueue) scheduleCapture(c *mem.Chunk) {
	q.capPending = append(q.capPending, c)                   //wirelint:allow hotpath pending list reaches steady-state capacity after warm-up
	q.capPendingAt = append(q.capPendingAt, q.e.sched.Now()) //wirelint:allow hotpath pending list reaches steady-state capacity after warm-up
	q.e.trace.StageCost(q.e.traceName, q.queue, "capture_ioctl", q.e.cfg.Costs.ChunkOp)
	q.capSv.ChargeAndCall(q.e.cfg.Costs.ChunkOp, q.captureFn)
}

// captureDone commits the capture ioctl charged by scheduleCapture.
//
//wirecap:hotpath
func (q *wqueue) captureDone() {
	c := q.capPending[0]
	copy(q.capPending, q.capPending[1:])
	q.capPending = q.capPending[:len(q.capPending)-1]
	at := q.capPendingAt[0]
	copy(q.capPendingAt, q.capPendingAt[1:])
	q.capPendingAt = q.capPendingAt[:len(q.capPendingAt)-1]
	q.capLat.Record(int64(q.e.sched.Now() - at))
	if q.dead {
		// The queue was quarantined while this chunk waited for its
		// capture ioctl (the quarantine sweep skipped it for exactly this
		// moment). Its packets die here as reclaim drops.
		q.stats.ReclaimDrops += uint64(c.GoodPending())
		q.stats.ChunksReclaimed++
		q.e.trace.ChunkDrop(obs.DropReclaim, q.e.nicID, q.queue, chunkTID(c), uint64(c.GoodPending()), q.e.sched.Now())
		if err := q.pool.Reclaim(c); err != nil {
			panic(fmt.Sprintf("core: reclaim of quarantined chunk failed: %v", err))
		}
		return
	}
	meta, err := q.pool.Capture(c)
	if err != nil {
		panic(fmt.Sprintf("core: capture of full chunk failed: %v", err))
	}
	q.stats.ChunksCaptured++
	q.e.trace.ChunkStage(q.e.nicID, chunkTID(c), obs.StageChunkHandoff, q.e.sched.Now())
	h := q.e.newHanded(meta, c, q)
	target := q.chooseTarget()
	if target != q {
		q.stats.ChunksOffloaded++
	}
	target.captureQ = append(target.captureQ, h) //wirelint:allow hotpath capture queue reaches steady-state capacity after warm-up
	target.kick()
}

// newHanded takes a handedChunk header from the free list, or allocates.
//
//wirecap:hotpath
func (e *Engine) newHanded(meta mem.Meta, c *mem.Chunk, owner *wqueue) *handedChunk {
	if n := len(e.handedFree); n > 0 {
		h := e.handedFree[n-1]
		e.handedFree = e.handedFree[:n-1]
		h.meta, h.chunk, h.owner = meta, c, owner
		return h
	}
	return &handedChunk{meta: meta, chunk: c, owner: owner} //wirelint:allow hotpath pool miss only; headers recycle through handedFree
}

// freeHanded zeroes a recycled header (dropping its release closure) and
// returns it to the free list.
//
//wirecap:hotpath
func (e *Engine) freeHanded(h *handedChunk) {
	*h = handedChunk{}
	e.handedFree = append(e.handedFree, h) //wirelint:allow hotpath header free list reaches steady-state capacity
}

// kick wakes every application thread serving this queue's work-queue
// pair, and makes sure the watchdog is ticking while there is work it
// might have to rescue (new chunks can land on a crashed queue while
// the watchdog sleeps).
//
//wirecap:hotpath
func (q *wqueue) kick() {
	q.e.armWatchdog()
	for _, th := range q.threads {
		th.Kick()
	}
}

// chooseTarget implements the advanced-mode offloading decision (§3.2.2a
// steps 1.b-1.d), extended by recovery: a rerouted queue sends every
// chunk to its sticky failover target, and offloading never picks a
// quarantined or rerouted buddy.
func (q *wqueue) chooseTarget() *wqueue {
	if q.rerouted && q.rerouteTo != nil && !q.rerouteTo.dead {
		return q.rerouteTo
	}
	if q.e.cfg.Mode != Advanced || len(q.buddies) <= 1 {
		return q
	}
	threshold := q.e.cfg.ThresholdPct * q.pool.R() / 100
	if len(q.captureQ) <= threshold {
		return q
	}
	switch q.e.cfg.Policy {
	case OffloadRoundRobin:
		q.e.rrState++
		if b := q.buddies[q.e.rrState%len(q.buddies)]; !b.dead && !b.rerouted {
			return b
		}
		return q
	case OffloadRandom:
		if b := q.buddies[q.e.rnd.Intn(len(q.buddies))]; !b.dead && !b.rerouted {
			return b
		}
		return q
	default:
		best := q
		for _, b := range q.buddies {
			if b.dead || b.rerouted {
				continue
			}
			if len(b.captureQ) < len(best.captureQ) {
				best = b
			}
		}
		return best
	}
}

// flush delivers a partially filled frontier chunk by copying its pending
// packets into a free chunk (§3.2.1 capture operation step 3).
//
//wirecap:hotpath
func (q *wqueue) flush(c *mem.Chunk) {
	if c.State() != mem.StateAttached || c.PendingCount() == 0 || c.Full() {
		return
	}
	if c.GoodPending() == 0 {
		// Only corrupt tombstones pending: nothing to deliver. Drop them
		// from the pending window without spending a chunk or a copy.
		c.SetBase(c.Count())
		return
	}
	f, err := q.pool.AllocFree()
	if err != nil {
		if q.e.recovery && q.flushRetries >= maxFlushRetries {
			// The pool has had no free chunk for maxFlushRetries consecutive
			// timeouts. When pool capacity barely covers the ring every chunk
			// can stay attached forever, so retrying would never terminate —
			// emergency-reclaim the pending window instead, explicitly
			// accounted, and let the chunk keep receiving. Without recovery
			// the retry keeps the pre-fault behavior: on a healthy run the
			// pool refills as the consumer drains and a later retry succeeds.
			q.flushRetries = 0
			q.stats.ReclaimDrops += uint64(c.GoodPending())
			q.e.trace.ChunkDrop(obs.DropReclaim, q.e.nicID, q.queue, chunkTID(c), uint64(c.GoodPending()), q.e.sched.Now())
			c.SetBase(c.Count())
			return
		}
		// No free chunk to copy into; retry after another timeout so the
		// packets are not held indefinitely.
		q.flushRetries++
		q.armFlush(c)
		return
	}
	q.flushRetries = 0
	var cost vtime.Time = q.e.cfg.Costs.ChunkOp
	for i := c.Base(); i < c.Count(); i++ {
		if c.Bad(i) {
			continue
		}
		data, _ := c.Packet(i)
		cost += q.e.cfg.Costs.CopyCost(len(data))
	}
	flushStart := q.e.sched.Now()
	q.e.trace.StageCost(q.e.traceName, q.queue, "flush_copy", cost)
	q.capSv.ChargeAndCall(cost, func() { //wirelint:allow hotpath timeout-flush slow path, runs per flush interval not per packet
		// Validate again at execution time: the chunk may have filled and
		// been captured while the copy op waited.
		if c.State() != mem.StateAttached || c.GoodPending() == 0 {
			// Nothing to do; return f unused. Any pending tombstones can be
			// dropped from the window while we are here.
			if c.State() == mem.StateAttached && c.PendingCount() > 0 {
				c.SetBase(c.Count())
			}
			fm, err := q.pool.Capture(f)
			if err == nil {
				_ = q.pool.Recycle(fm)
			}
			return
		}
		k := 0
		for i := c.Base(); i < c.Count(); i++ {
			if c.Bad(i) {
				continue
			}
			data, ts := c.Packet(i)
			copy(f.Cell(k), data)
			f.SetPacket(k, len(data), ts)
			q.e.trace.CellMove(q.e.nicID, chunkTID(c), i, chunkTID(f), k, q.e.sched.Now())
			k++
		}
		c.SetBase(c.Count())
		meta, err := q.pool.Capture(f)
		if err != nil {
			panic(fmt.Sprintf("core: flush capture failed: %v", err))
		}
		q.stats.ChunksFlushed++
		q.stats.FlushedPackets += uint64(k)
		q.flushLat.Record(int64(q.e.sched.Now() - flushStart))
		q.e.trace.ChunkStage(q.e.nicID, chunkTID(f), obs.StageChunkHandoff, q.e.sched.Now())
		h := q.e.newHanded(meta, f, q)
		target := q.chooseTarget()
		if target != q {
			q.stats.ChunksOffloaded++
		}
		target.captureQ = append(target.captureQ, h) //wirelint:allow hotpath capture queue reaches steady-state capacity after warm-up
		target.kick()
	})
}

// fetch is the user-space library path the application thread pulls
// packets through: chunks come off the capture queue, packets are handed
// out zero-copy, and exhausted chunks go to the recycle queue.
//
//wirecap:hotpath
func (q *wqueue) fetch() ([]byte, vtime.Time, func(), bool) {
	for {
		if q.cur == nil {
			if len(q.captureQ) == 0 {
				return nil, 0, nil, false
			}
			q.cur = q.captureQ[0]
			copy(q.captureQ, q.captureQ[1:])
			q.captureQ = q.captureQ[:len(q.captureQ)-1]
			if q.flt != nil {
				// A chunk is picked up exactly once (cur clears only after
				// a full drain), so the whole chunk is filtered in one
				// batch call here.
				q.batchFilter(q.cur)
			}
			if h := q.cur; h.releaseFn == nil {
				// One closure serves every packet of the chunk; it dies
				// with the header when the chunk recycles.
				h.releaseFn = func() { //wirelint:allow hotpath one closure per chunk, amortized over its M packets
					h.outstanding--
					if h.dispatched && h.outstanding == 0 {
						q.enqueueRecycle(h)
					}
				}
			}
		}
		h := q.cur
		if h.next >= h.meta.PktCount {
			h.dispatched = true
			if h.outstanding == 0 {
				q.enqueueRecycle(h)
			}
			q.cur = nil
			continue
		}
		idx := h.chunk.Base() + h.next
		h.next++
		if h.chunk.Bad(idx) {
			// Corrupt-frame tombstone: already accounted as a corrupt drop
			// at receive time.
			continue
		}
		if q.flt != nil {
			rel := idx - h.chunk.Base()
			if q.curAccept[rel>>6]>>(uint(rel)&63)&1 == 0 {
				q.stats.ChunkFiltered++ //wirelint:allow conservation filtered cells are not drops; the gate checks Received == Delivered + ChunkFiltered and filtered cells never enter the delivery books
				continue
			}
		}
		h.outstanding++
		q.stats.Delivered++
		data, ts := h.chunk.Packet(idx)
		q.e.trace.CellDeliver(q.e.nicID, chunkTID(h.chunk), idx, q.e.nicID, q.queue, q.e.sched.Now())
		return data, ts, h.releaseFn, true
	}
}

// batchFilter runs the configured chunk filter over every cell of a
// just-picked-up chunk in one FilterChunk call, writing the accept
// bitmap fetch consults while draining. Tombstoned (Bad) cells pass a
// nil frame — their bitmap bits are meaningless because the drain loop
// skips tombstones before consulting the bitmap.
//
//wirecap:hotpath
func (q *wqueue) batchFilter(h *handedChunk) {
	n := h.meta.PktCount
	base := h.chunk.Base()
	frames := q.fltFrames[:n]
	for i := 0; i < n; i++ {
		if h.chunk.Bad(base + i) {
			frames[i] = nil
			continue
		}
		data, _ := h.chunk.Packet(base + i)
		frames[i] = data
	}
	q.flt.FilterChunk(frames, q.curAccept)
}

// enqueueRecycle places a fully consumed chunk on this queue's recycle
// queue and kicks the capture thread to run the recycle ioctl.
//
//wirecap:hotpath
func (q *wqueue) enqueueRecycle(h *handedChunk) {
	h.recycleAt = q.e.sched.Now()
	q.recycleQ = append(q.recycleQ, h) //wirelint:allow hotpath recycle queue reaches steady-state capacity after warm-up
	q.e.trace.StageCost(q.e.traceName, q.queue, "recycle_ioctl", q.e.cfg.Costs.ChunkOp)
	q.capSv.ChargeAndCall(q.e.cfg.Costs.ChunkOp, q.recycleFn)
}

// recycleDone commits the recycle ioctl charged by enqueueRecycle.
//
//wirecap:hotpath
func (q *wqueue) recycleDone() {
	hh := q.recycleQ[0]
	copy(q.recycleQ, q.recycleQ[1:])
	q.recycleQ = q.recycleQ[:len(q.recycleQ)-1]
	owner := hh.owner
	q.recLat.Record(int64(q.e.sched.Now() - hh.recycleAt))
	q.e.trace.ChunkRecycle(q.e.nicID, chunkTID(hh.chunk), q.e.sched.Now())
	if err := owner.pool.Recycle(hh.meta); err != nil {
		panic(fmt.Sprintf("core: recycle failed: %v", err))
	}
	q.e.freeHanded(hh)
	owner.rearmStarved()
}

// ChunkFiltered returns the total number of packets the batch chunk
// filter rejected across all queues (0 without a ChunkFilter). These
// packets were received but deliberately never delivered; conservation
// checks account them separately from the drop classes.
func (e *Engine) ChunkFiltered() uint64 {
	var n uint64
	for _, q := range e.queues {
		n += q.stats.ChunkFiltered
	}
	return n
}

// Stats implements engines.Engine.
func (e *Engine) Stats() engines.Stats {
	s := engines.Stats{Engine: e.Name()}
	for _, q := range e.queues {
		qs := q.stats.QueueStats
		rs := q.ring.Stats()
		qs.Received = rs.Received
		qs.CaptureDrops = rs.Drops()
		s.PerQueue = append(s.PerQueue, qs)
	}
	return s
}

// QueueStats returns the extended per-queue counters.
func (e *Engine) QueueStats(q int) QueueStats {
	qs := e.queues[q].stats
	rs := e.queues[q].ring.Stats()
	qs.Received = rs.Received
	qs.CaptureDrops = rs.Drops()
	return qs
}

// Pool exposes queue q's ring buffer pool (tests and the public library
// use it).
func (e *Engine) Pool(q int) *mem.Pool { return e.queues[q].pool }

// AppBusy returns the cumulative CPU time of queue q's application
// threads.
func (e *Engine) AppBusy(q int) vtime.Time {
	var total vtime.Time
	for _, th := range e.queues[q].threads {
		total += th.Busy()
	}
	return total
}

// CaptureBusy returns the cumulative CPU time of queue q's capture
// thread.
func (e *Engine) CaptureBusy(q int) vtime.Time { return e.queues[q].capSv.Charged() }

// CaptureQueueLen returns the user-space capture queue length of queue q.
func (e *Engine) CaptureQueueLen(q int) int { return len(e.queues[q].captureQ) }

// Mode returns the configured operating mode.
func (e *Engine) Mode() Mode { return e.cfg.Mode }

// Close implements the paper's Close operation (§3.2.1): it stops
// capture on every queue — cancelling pending flush timers, detaching
// every descriptor so the NIC stops receiving into the pools — and
// unmaps the ring buffer pools from the process. Packets already handed
// to the application remain valid until recycled. Close is idempotent.
func (e *Engine) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	if e.wd != nil {
		e.wd.Stop()
	}
	var firstErr error
	for _, q := range e.queues {
		q.flushTimer.Stop()
		q.flushTarget = nil
		if q.retryTimer != nil {
			q.retryTimer.Stop()
		}
		q.ring.OnRx(nil)
		for i := 0; i < q.ring.Size(); i++ {
			q.ring.Invalidate(i)
		}
		if err := q.pool.Unmap(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Closed reports whether Close has run.
func (e *Engine) Closed() bool { return e.closed }
