package core

import (
	"testing"

	"repro/internal/nic"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Tests for the paper's §5e alternative paradigms: several application
// threads sharing one receive queue's work-queue pair.

func TestThreadsPerQueueAbsorbOverload(t *testing.T) {
	run := func(threads int) (float64, uint64) {
		sched := vtime.NewScheduler()
		n := oneQueueNIC(sched)
		h := newTestHandler(heavyCost)
		e := newEngine(t, sched, n, Config{M: 256, R: 100, ThreadsPerQueue: threads}, h)
		// 100 kp/s sustained against 38.8 kp/s per thread: one thread
		// drowns, three keep up.
		src := trace.NewConstantRate(trace.ConstantRateConfig{
			Packets: 200_000, LineRateBps: 100_000 * 84 * 8,
		})
		st := trace.Drive(sched, n, src, nil)
		sched.Run()
		checkPools(t, e)
		return e.Stats().DropRate(st.Sent), h.processed
	}
	oneRate, _ := run(1)
	threeRate, processed := run(3)
	if oneRate < 0.3 {
		t.Fatalf("single thread drop rate %.2f, want heavy", oneRate)
	}
	if threeRate > 0.01 {
		t.Fatalf("three threads drop rate %.2f, want ~0", threeRate)
	}
	if processed != 200_000 {
		t.Fatalf("three threads processed %d of 200000", processed)
	}
}

func TestThreadsPerQueueNoDoubleDelivery(t *testing.T) {
	// Several threads pulling from one work queue must deliver each
	// packet exactly once.
	sched := vtime.NewScheduler()
	n := oneQueueNIC(sched)
	h := newTestHandler(vtime.Microsecond)
	e := newEngine(t, sched, n, Config{M: 64, R: 100, ThreadsPerQueue: 4, FlushTimeout: vtime.Millisecond}, h)
	// 2 Mp/s against 4 x 1 Mp/s threads: comfortably within capacity.
	src := trace.NewConstantRate(trace.ConstantRateConfig{
		Packets: 10_000, LineRateBps: 2_000_000 * 84 * 8,
	})
	trace.Drive(sched, n, src, nil)
	sched.Run()
	if h.processed != 10_000 {
		t.Fatalf("processed %d, want exactly 10000", h.processed)
	}
	if got := e.Stats().Totals().Received; got != h.processed {
		t.Fatalf("received %d != processed %d", got, h.processed)
	}
	checkPools(t, e)
}

func TestThreadsPerQueueWithOffloading(t *testing.T) {
	// The two mechanisms compose: multi-thread queues inside an advanced-
	// mode buddy group.
	sched := vtime.NewScheduler()
	n := nic.New(sched, nic.Config{ID: 0, RxQueues: 2, RingSize: 1024, Promiscuous: true})
	h := newTestHandler(heavyCost)
	e := newEngine(t, sched, n, Config{M: 256, R: 100, Mode: Advanced, ThreadsPerQueue: 2}, h)
	src := trace.NewConstantRate(trace.ConstantRateConfig{
		Packets: 200_000, Queues: 2, SingleQueue: true, LineRateBps: 140_000 * 84 * 8,
	})
	st := trace.Drive(sched, n, src, nil)
	sched.Run()
	if rate := e.Stats().DropRate(st.Sent); rate > 0.01 {
		t.Fatalf("drop rate %.3f with 4 effective threads for 140 kp/s", rate)
	}
	checkPools(t, e)
}

func TestCloseStopsCapture(t *testing.T) {
	sched := vtime.NewScheduler()
	n := oneQueueNIC(sched)
	h := newTestHandler(vtime.Microsecond)
	e := newEngine(t, sched, n, Config{M: 64, R: 100, FlushTimeout: vtime.Millisecond}, h)
	src := trace.NewConstantRate(trace.ConstantRateConfig{Packets: 500})
	trace.Drive(sched, n, src, nil)
	sched.Run()
	if h.processed != 500 {
		t.Fatalf("processed %d before close", h.processed)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if !e.Closed() {
		t.Fatal("Closed() false after Close")
	}
	// Traffic after close never reaches host memory: pure wire drops.
	src2 := trace.NewConstantRate(trace.ConstantRateConfig{Packets: 300, Start: sched.Now()})
	trace.Drive(sched, n, src2, nil)
	sched.Run()
	if h.processed != 500 {
		t.Fatalf("processed %d after close", h.processed)
	}
	if got := n.Stats().TotalWireDrops(); got != 300 {
		t.Fatalf("wire drops after close = %d, want 300", got)
	}
	// Idempotent.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestClosePendingFlushTimerCancelled(t *testing.T) {
	sched := vtime.NewScheduler()
	n := oneQueueNIC(sched)
	h := newTestHandler(vtime.Microsecond)
	e := newEngine(t, sched, n, Config{M: 256, R: 100, FlushTimeout: 50 * vtime.Millisecond}, h)
	src := trace.NewConstantRate(trace.ConstantRateConfig{Packets: 5})
	trace.Drive(sched, n, src, nil)
	// Run just past delivery of the packets into the ring, then close
	// before the flush timer fires.
	sched.RunUntil(vtime.Millisecond)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if h.processed != 0 {
		t.Fatalf("flush fired after close: processed %d", h.processed)
	}
	if sched.Pending() != 0 {
		t.Fatalf("%d events still pending", sched.Pending())
	}
}
