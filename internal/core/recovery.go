package core

// Graceful degradation under injected faults. The recovery machinery is
// one engine-wide watchdog (PR 1's vtime.Every) that ticks only while
// there is something to watch, plus three responses:
//
//   - Quarantine: a receive queue whose ring makes no progress while
//     fault-attributed drops mount is declared dead. Its undelivered
//     backlog is discarded *in the same event* as the steering rewrite
//     that moves its flows to healthy queues — so for any flow, every
//     packet delivered before the rewrite precedes every packet
//     delivered after it, and per-flow ordering survives (with a gap,
//     never a swap).
//   - Failover: a queue whose consumer is wedged (backlog, no delivery
//     progress, no thread mid-packet) hands its backlog — and, sticky
//     for the rest of the run, all future chunks — to the least-loaded
//     live buddy. Stickiness is what preserves per-flow order: resuming
//     self-delivery while the buddy still holds older chunks would
//     reorder.
//   - Emergency reclamation: with no live buddy, a wedged queue's
//     backlog is force-recycled once the pool is exhausted or the ring
//     has gone idle, counted as explicit reclaim drops. Capture keeps
//     running and the run always drains — never a deadlock, and the
//     watchdog stops when the work does, never a livelock.
//
// Everything here runs off the deterministic virtual clock and touches
// only deterministic state, so a chaos run digests identically under
// the same seed.

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/vtime"
)

// DefaultWatchdogInterval is the recovery watchdog's tick period.
const DefaultWatchdogInterval = vtime.Millisecond

const (
	// quarantineAfterTicks is how many consecutive watchdog ticks a ring
	// must show fault drops without progress before quarantine. Short
	// descriptor stalls ride out; hangs past ~3 ms are put down.
	quarantineAfterTicks = 3
	// failoverAfterTicks is how many consecutive ticks a consumer must
	// show backlog without delivery progress (and no packet in flight)
	// before its backlog fails over.
	failoverAfterTicks = 2
	// allocRetryBase is the first retry delay after a transient
	// allocation fault; it doubles per attempt.
	allocRetryBase = 20 * vtime.Microsecond
	// maxAllocRetries bounds the backoff ladder. Past it the queue stops
	// polling the allocator; the watchdog's starvation healing (or the
	// next recycle) re-arms once chunks actually flow again.
	maxAllocRetries = 8
	// maxFlushRetries bounds consecutive flush timeouts that find no free
	// chunk to copy into before the pending window is reclaimed. Without
	// the bound a pool whose capacity barely covers the ring (every chunk
	// permanently attached) would retry the flush forever.
	maxFlushRetries = 8
)

// action records one recovery action in the flight recorder and, when
// the engine has a cross-domain action hook (fleet runs), publishes it
// there too — the "cross-domain recovery path" that lets an aggregation
// plane in another time domain watch a host heal itself.
func (e *Engine) action(kind string, queue int, arg int64) {
	now := e.sched.Now()
	e.trace.Action(kind, e.nicID, queue, arg, now)
	if e.cfg.OnAction != nil {
		e.cfg.OnAction(kind, queue, now)
	}
}

// armWatchdog (re)starts the watchdog if recovery is on and it is not
// already ticking. Called from fault activations (via OnActivate) and
// from every queue kick, the two deterministic moments new trouble can
// start while the watchdog sleeps.
func (e *Engine) armWatchdog() {
	if e.wd != nil && !e.wd.Armed() {
		e.wd.Schedule(e.cfg.WatchdogInterval)
	}
}

// watchdogTick examines every queue and stops the timer when nothing is
// in flight and no further fault event is scheduled — the event queue
// must drain for the run to end.
func (e *Engine) watchdogTick() {
	busy := false
	for _, q := range e.queues {
		if e.watch(q) {
			busy = true
		}
	}
	if !busy && e.inj.Quiet() {
		e.wd.Stop()
	}
}

// watch runs one queue's health checks and reports whether the queue
// still needs watching.
func (e *Engine) watch(q *wqueue) bool {
	if q.dead {
		return false
	}
	rs := q.ring.Stats()
	ringActive := rs.Received != q.wdReceived
	faultDrops := rs.HangDrops + rs.StallDrops
	backlog := len(q.captureQ) > 0 || q.cur != nil
	delivered := q.stats.Delivered

	// Ring health: no progress while fault-attributed drops mount means
	// the queue hardware is gone. Deliberately keyed on hang/stall drops
	// only — a ring starving for descriptors under consumer overload
	// shows WireDrops, and quarantining it would amputate a healthy
	// queue.
	if !ringActive && faultDrops > q.wdFaultDrops {
		q.stallTicks++
	} else {
		q.stallTicks = 0
	}
	if q.stallTicks >= quarantineAfterTicks {
		e.quarantine(q)
		return false
	}

	// Starvation healing: descriptors waiting for cells while the free
	// list has chunks happens when a transient-fault backoff ladder was
	// exhausted mid-window; re-arm now that allocation works again.
	if len(q.starved) > 0 && q.pool.FreeCount() > 0 {
		q.rearmStarved()
	}

	// Consumer health: deliverable backlog, no delivery progress, and no
	// thread mid-packet (a slow handler is always mid-packet at tick
	// time, so slowness never misdiagnoses as a wedge).
	if backlog && delivered == q.wdDelivered && !q.anyWorking() {
		q.wedgeTicks++
	} else {
		q.wedgeTicks = 0
	}
	if q.wedgeTicks >= failoverAfterTicks {
		q.wedgeTicks = 0
		if b := q.liveBuddy(); b != nil {
			e.failover(q, b)
		} else if q.pool.FreeCount() == 0 || !ringActive {
			// No rescue target. Reclaim when the pool is exhausted (keep
			// capturing rather than deadlock) or when traffic has ended
			// (drain the run). While the pool has headroom and packets
			// still flow, keep buffering — the consumer may come back.
			e.reclaimBacklog(q)
		}
	}

	q.wdReceived = rs.Received
	q.wdFaultDrops = faultDrops
	q.wdDelivered = delivered
	// Starved descriptors alone do not count as business: healing them
	// needs a free chunk, which only a recycle or reclaim can produce —
	// both of which re-arm directly. If nothing else is in flight and the
	// pool is empty, ticking forever would be the livelock, not the cure.
	return ringActive || backlog || len(q.capPending) > 0 ||
		len(q.recycleQ) > 0
}

// quarantine declares queue q dead: discard its undelivered backlog,
// reclaim its attached chunks, detach its descriptors, and rewrite the
// NIC's steering so q's flows land on healthy queues — all inside this
// one event, which is what makes the re-steer order-safe. A packet
// already charged to a handler completes (it was counted delivered at
// fetch); its re-steered successors cannot complete earlier, because
// their path through a fresh chunk, a capture ioctl, and a handler
// charge begins only after this event.
func (e *Engine) quarantine(q *wqueue) {
	q.dead = true
	q.stats.Quarantines++
	e.action("quarantine", q.queue, 0)
	q.flushTimer.Stop()
	q.flushTarget = nil
	if q.retryTimer != nil {
		q.retryTimer.Stop()
	}

	// Undelivered backlog: captured chunks nobody will drain. Their
	// packets were received, so they must die accounted — as delivery
	// drops, the "captured but never reached the application" class.
	for _, h := range q.captureQ {
		good := goodRemaining(h)
		q.stats.DeliveryDrops += good
		e.trace.ChunkDrop(obs.DropQuarantineBacklog, e.nicID, q.queue, chunkTID(h.chunk), good, e.sched.Now())
		e.trace.ChunkRecycle(e.nicID, chunkTID(h.chunk), e.sched.Now())
		if err := h.owner.pool.Recycle(h.meta); err != nil {
			panic(fmt.Sprintf("core: quarantine recycle failed: %v", err))
		}
		owner := h.owner
		e.freeHanded(h)
		owner.rearmStarved()
	}
	q.captureQ = q.captureQ[:0]
	if h := q.cur; h != nil {
		q.cur = nil
		good := goodRemaining(h)
		q.stats.DeliveryDrops += good
		e.trace.ChunkDrop(obs.DropQuarantineBacklog, e.nicID, q.queue, chunkTID(h.chunk), good, e.sched.Now())
		if h.outstanding == 0 {
			e.trace.ChunkRecycle(e.nicID, chunkTID(h.chunk), e.sched.Now())
			if err := h.owner.pool.Recycle(h.meta); err != nil {
				panic(fmt.Sprintf("core: quarantine recycle failed: %v", err))
			}
			owner := h.owner
			e.freeHanded(h)
			owner.rearmStarved()
		} else {
			// A delivered packet is still out (in flight on a handler or
			// parked in a TX ring). Mark the chunk fully dispatched; the
			// last release routes it through the normal recycle path.
			h.dispatched = true
		}
	}

	// Attached chunks: partially filled receive-side buffers, including
	// the arming frontier. Chunks already queued for their capture ioctl
	// are skipped — captureDone sees q.dead and reclaims them when the
	// charge completes (the server event cannot be recalled).
	pending := make(map[*mem.Chunk]bool, len(q.capPending))
	for _, c := range q.capPending {
		pending[c] = true
	}
	q.pool.ForEachAttached(func(c *mem.Chunk) {
		if pending[c] {
			return
		}
		q.stats.ReclaimDrops += uint64(c.GoodPending())
		q.stats.ChunksReclaimed++
		e.trace.ChunkDrop(obs.DropReclaim, e.nicID, q.queue, chunkTID(c), uint64(c.GoodPending()), e.sched.Now())
		if err := q.pool.Reclaim(c); err != nil {
			panic(fmt.Sprintf("core: quarantine reclaim failed: %v", err))
		}
	})
	q.armChunk = nil
	q.armCell = 0
	q.starved = q.starved[:0]
	for i := 0; i < q.ring.Size(); i++ {
		q.ring.Invalidate(i)
	}
	// Packets DMA'd into descriptors the invalidation just orphaned are
	// not counted by any metrics series; their traces end here without a
	// ledger entry for the same reason.
	//wirelint:allow conservation orphaned in-flight descriptors appear in no metrics series by design; this attribution closes their traces with no counter to pair with
	e.trace.AbandonQueue(obs.DropQuarantineBacklog, e.nicID, q.queue, e.sched.Now())

	// Re-steer the dead queue's flows. The steering rewrite happens in
	// this same event as the backlog discard above: no packet of a
	// re-steered flow can now be delivered out of order.
	healthy := make([]int, 0, len(e.queues))
	for _, o := range e.queues {
		if !o.dead {
			healthy = append(healthy, o.queue)
		}
	}
	if rs, ok := e.n.Steering().(nic.QueueReSteerer); ok && len(healthy) > 0 {
		moved := rs.ReSteerQueue(q.queue, healthy)
		q.stats.ReSteeredEntries += uint64(moved)
		e.action("re_steer", q.queue, int64(moved))
	}
}

// liveBuddy returns the least-loaded buddy able to take over a wedged
// queue's backlog: not itself, not quarantined, not already rerouted,
// and its own consumer not crashed. Ties break to the lowest group
// position, deterministically.
func (q *wqueue) liveBuddy() *wqueue {
	var best *wqueue
	for _, b := range q.buddies {
		if b == q || b.dead || b.rerouted {
			continue
		}
		if q.e.inj.HandlerCrashed(q.e.n.ID(), b.queue) {
			continue
		}
		if best == nil || len(b.captureQ) < len(best.captureQ) {
			best = b
		}
	}
	return best
}

// goodRemaining counts the undelivered deliverable packets of a handed
// chunk: the PktCount window past the cursor, minus corrupt-frame
// tombstones (those were accounted as corrupt drops at receive time).
func goodRemaining(h *handedChunk) uint64 {
	n := uint64(0)
	for i := h.next; i < h.meta.PktCount; i++ {
		if !h.chunk.Bad(h.chunk.Base() + i) {
			n++
		}
	}
	return n
}

// anyWorking reports whether any of the queue's threads is mid-packet.
func (q *wqueue) anyWorking() bool {
	for _, th := range q.threads {
		if th.Working() {
			return true
		}
	}
	return false
}

// failover hands a wedged queue's backlog — current chunk first, then
// the capture queue, preserving arrival order — to buddy b, and routes
// all of q's future chunks there (sticky; see the package comment on
// why un-sticking would reorder flows). The partially drained current
// chunk carries its own cursor and release closure, so b resumes it
// exactly where q stopped: no packet is delivered twice.
func (e *Engine) failover(q, b *wqueue) {
	q.rerouted = true
	q.rerouteTo = b
	q.stats.HandlerFailovers++
	e.action("failover", q.queue, int64(b.queue))
	moved := false
	if q.cur != nil {
		b.captureQ = append(b.captureQ, q.cur)
		q.cur = nil
		moved = true
	}
	if len(q.captureQ) > 0 {
		b.captureQ = append(b.captureQ, q.captureQ...)
		q.captureQ = q.captureQ[:0]
		moved = true
	}
	if moved {
		b.kick()
	}
}

// reclaimBacklog force-recycles a wedged queue's undrainable backlog,
// accounting every discarded packet as a reclaim drop. The current
// chunk is skipped while deliveries are still outstanding on it (a TX
// ring may be reading its cells); the next tick collects it once the
// last release runs.
func (e *Engine) reclaimBacklog(q *wqueue) {
	e.action("reclaim_backlog", q.queue, int64(len(q.captureQ)))
	for _, h := range q.captureQ {
		good := goodRemaining(h)
		q.stats.ReclaimDrops += good
		q.stats.ChunksReclaimed++
		e.trace.ChunkDrop(obs.DropReclaim, e.nicID, q.queue, chunkTID(h.chunk), good, e.sched.Now())
		e.trace.ChunkRecycle(e.nicID, chunkTID(h.chunk), e.sched.Now())
		if err := h.owner.pool.Recycle(h.meta); err != nil {
			panic(fmt.Sprintf("core: emergency reclaim failed: %v", err))
		}
		owner := h.owner
		e.freeHanded(h)
		owner.rearmStarved()
	}
	q.captureQ = q.captureQ[:0]
	if h := q.cur; h != nil && h.outstanding == 0 && !q.anyWorking() {
		q.cur = nil
		good := goodRemaining(h)
		q.stats.ReclaimDrops += good
		q.stats.ChunksReclaimed++
		e.trace.ChunkDrop(obs.DropReclaim, e.nicID, q.queue, chunkTID(h.chunk), good, e.sched.Now())
		e.trace.ChunkRecycle(e.nicID, chunkTID(h.chunk), e.sched.Now())
		if err := h.owner.pool.Recycle(h.meta); err != nil {
			panic(fmt.Sprintf("core: emergency reclaim failed: %v", err))
		}
		owner := h.owner
		e.freeHanded(h)
		owner.rearmStarved()
	}
}

// scheduleAllocRetry arms the bounded-backoff retry after a transient
// allocation fault: 20 us doubling per attempt, at most maxAllocRetries
// attempts per episode (rearmStarved resets the ladder on success).
func (q *wqueue) scheduleAllocRetry() {
	if q.retryTimer == nil || q.retryTimer.Armed() || q.retryAttempt >= maxAllocRetries {
		return
	}
	d := allocRetryBase << q.retryAttempt
	q.retryAttempt++
	q.stats.AllocRetries++
	q.e.action("alloc_retry", q.queue, int64(q.retryAttempt))
	q.retryTimer.Schedule(d)
}

// allocRetryTick is the retry timer's bound callback: try to re-arm the
// starving descriptors. On another transient failure rearmStarved
// schedules the next rung of the ladder.
func (q *wqueue) allocRetryTick() {
	if q.dead {
		return
	}
	q.rearmStarved()
}
