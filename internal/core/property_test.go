package core

import (
	"testing"

	"repro/internal/engines"
	"repro/internal/nic"
	"repro/internal/packet"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// jitterHandler randomly defers a fraction of done callbacks (simulating
// forwarding latency) and releases them later, with variable per-packet
// cost — a fault-injection consumer.
type jitterHandler struct {
	r         *vtime.Rand
	sched     *vtime.Scheduler
	processed uint64
	pending   int
}

func (h *jitterHandler) Cost(int, []byte) vtime.Time {
	return vtime.Time(100 + h.r.Intn(30000)) // 0.1-30 us
}

func (h *jitterHandler) Handle(q int, data []byte, ts vtime.Time, done func()) {
	h.processed++
	if h.r.Intn(4) == 0 {
		// Hold the buffer for a while, like a slow TX drain.
		h.pending++
		h.sched.After(vtime.Time(h.r.Intn(int(2*vtime.Millisecond))), func() {
			h.pending--
			done()
		})
		return
	}
	done()
}

// burstSource emits random ON/OFF bursts at wire rate.
type burstSource struct {
	r       *vtime.Rand
	b       *packet.Builder
	flows   []packet.FlowKey
	scratch []byte
	now     vtime.Time
	left    int
	total   int
	sent    int
}

func newBurstSource(seed uint64, total int, queues int) *burstSource {
	r := vtime.NewRand(seed)
	s := &burstSource{
		r: r, b: packet.NewBuilder(), total: total,
		scratch: make([]byte, packet.MaxFrameLen),
	}
	for q := 0; q < queues; q++ {
		for i := 0; i < 4; i++ {
			s.flows = append(s.flows, trace.FlowForQueue(r, queues, q, packet.ProtoUDP, trace.FermilabSubnet2, 8))
		}
	}
	return s
}

func (s *burstSource) Next() ([]byte, vtime.Time, bool) {
	if s.sent >= s.total {
		return nil, 0, false
	}
	if s.left == 0 {
		// New burst after an OFF gap.
		s.left = 1 + s.r.Intn(3000)
		s.now += vtime.Time(s.r.Intn(int(5 * vtime.Millisecond)))
	}
	s.left--
	s.sent++
	s.now += 68 * vtime.Nanosecond // ~wire rate within a burst
	flow := s.flows[s.r.Intn(len(s.flows))]
	frame := s.b.Build(s.scratch, flow, s.scratch[:s.r.Intn(200)])
	return frame, s.now, true
}

// TestRandomBurstConservation drives randomized bursty traffic through
// WireCAP with a fault-injecting consumer across many seeds and checks
// the conservation and pool invariants after every run:
//
//	sent == received + capture drops, received == processed,
//	all chunks recycled, no references leaked.
func TestRandomBurstConservation(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		for _, mode := range []Mode{Basic, Advanced} {
			sched := vtime.NewScheduler()
			queues := 2 + int(seed%3)
			n := nic.New(sched, nic.Config{ID: 0, RxQueues: queues, RingSize: 512, Promiscuous: true})
			h := &jitterHandler{r: vtime.NewRand(seed * 7), sched: sched}
			e, err := New(sched, n, Config{
				M: 32 + 32*int(seed%3), R: 40, Mode: mode,
				FlushTimeout: vtime.Millisecond,
				Costs:        engines.DefaultCosts(),
				Seed:         seed,
			}, h)
			if err != nil {
				t.Fatal(err)
			}
			src := newBurstSource(seed, 30_000, queues)
			st := trace.Drive(sched, n, src, nil)
			sched.Run()

			tot := e.Stats().Totals()
			if tot.Received+tot.CaptureDrops != st.Sent {
				t.Fatalf("seed %d %v: received %d + drops %d != sent %d",
					seed, mode, tot.Received, tot.CaptureDrops, st.Sent)
			}
			if h.processed != tot.Received {
				t.Fatalf("seed %d %v: processed %d != received %d",
					seed, mode, h.processed, tot.Received)
			}
			if h.pending != 0 {
				t.Fatalf("seed %d %v: %d deferred releases never ran", seed, mode, h.pending)
			}
			for q := 0; q < queues; q++ {
				if err := e.Pool(q).CheckInvariants(); err != nil {
					t.Fatalf("seed %d %v queue %d: %v", seed, mode, q, err)
				}
				ps := e.Pool(q).Stats()
				if ps.RecycleRejected != 0 {
					t.Fatalf("seed %d %v: kernel rejected %d recycles", seed, mode, ps.RecycleRejected)
				}
			}
		}
	}
}
