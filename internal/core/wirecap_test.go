package core

import (
	"strings"
	"testing"

	"repro/internal/engines"
	"repro/internal/mem"
	"repro/internal/nic"
	"repro/internal/trace"
	"repro/internal/vtime"
)

type testHandler struct {
	cost      vtime.Time
	processed uint64
	perQueue  map[int]uint64
	deferDone bool
	deferred  []func()
}

func newTestHandler(cost vtime.Time) *testHandler {
	return &testHandler{cost: cost, perQueue: map[int]uint64{}}
}

func (h *testHandler) Cost(int, []byte) vtime.Time { return h.cost }

func (h *testHandler) Handle(q int, data []byte, ts vtime.Time, done func()) {
	h.processed++
	h.perQueue[q]++
	if h.deferDone {
		h.deferred = append(h.deferred, done)
		return
	}
	done()
}

// heavyCost is the x=300 pkt_handler cost (38,844 p/s).
const heavyCost = 25744 * vtime.Nanosecond

func newEngine(t *testing.T, sched *vtime.Scheduler, n *nic.NIC, cfg Config, h engines.Handler) *Engine {
	t.Helper()
	if cfg.Costs == (engines.CostModel{}) {
		cfg.Costs = engines.DefaultCosts()
	}
	e, err := New(sched, n, cfg, h)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func oneQueueNIC(sched *vtime.Scheduler) *nic.NIC {
	return nic.New(sched, nic.Config{ID: 0, RxQueues: 1, RingSize: 1024, Promiscuous: true})
}

func checkPools(t *testing.T, e *Engine) {
	t.Helper()
	for q := range e.queues {
		if err := e.Pool(q).CheckInvariants(); err != nil {
			t.Fatalf("queue %d: %v", q, err)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	sched := vtime.NewScheduler()
	n := oneQueueNIC(sched)
	h := newTestHandler(0)
	cases := []Config{
		{M: 0, R: 100},
		{M: 256, R: 0},
		{M: 64, R: 10},                      // R*M=640 < ring 1024
		{M: 256, R: 100, ThresholdPct: 101}, //
		{M: 256, R: 100, BuddyGroups: [][]int{{0, 7}}},   // bad queue
		{M: 256, R: 100, BuddyGroups: [][]int{{0}, {0}}}, // duplicate
	}
	for i, cfg := range cases {
		cfg.Costs = engines.DefaultCosts()
		if _, err := New(sched, n, cfg, h); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestName(t *testing.T) {
	sched := vtime.NewScheduler()
	h := newTestHandler(0)
	b := newEngine(t, sched, oneQueueNIC(sched), Config{M: 256, R: 100}, h)
	if b.Name() != "WireCAP-B-(256,100)" {
		t.Fatalf("name = %q", b.Name())
	}
	sched2 := vtime.NewScheduler()
	a := newEngine(t, sched2, oneQueueNIC(sched2), Config{M: 256, R: 100, Mode: Advanced}, h)
	if a.Name() != "WireCAP-A-(256,100,60%)" {
		t.Fatalf("name = %q", a.Name())
	}
}

func TestBasicWireRateNoLoss(t *testing.T) {
	// Figure 8: x=0, wire rate, any (M, R): zero drops, full delivery.
	for _, geo := range []struct{ m, r int }{{64, 100}, {128, 100}, {256, 100}} {
		sched := vtime.NewScheduler()
		n := oneQueueNIC(sched)
		h := newTestHandler(10 * vtime.Nanosecond)
		e := newEngine(t, sched, n, Config{M: geo.m, R: geo.r}, h)
		src := trace.NewConstantRate(trace.ConstantRateConfig{Packets: 30000})
		st := trace.Drive(sched, n, src, nil)
		sched.Run()
		stats := e.Stats().Totals()
		if stats.TotalDrops() != 0 {
			t.Fatalf("(%d,%d): %d drops", geo.m, geo.r, stats.TotalDrops())
		}
		if h.processed != st.Sent {
			t.Fatalf("(%d,%d): processed %d of %d", geo.m, geo.r, h.processed, st.Sent)
		}
		checkPools(t, e)
	}
}

func TestBasicBurstAbsorption(t *testing.T) {
	// Figure 9: under x=300 load, a wire-rate burst survives iff it fits
	// the pool: P <= ~R*M * Pin/(Pin-Pp).
	run := func(m, r int, p uint64) (drops uint64, processed uint64) {
		sched := vtime.NewScheduler()
		n := oneQueueNIC(sched)
		h := newTestHandler(heavyCost)
		e := newEngine(t, sched, n, Config{M: m, R: r}, h)
		src := trace.NewConstantRate(trace.ConstantRateConfig{Packets: p})
		trace.Drive(sched, n, src, nil)
		sched.Run()
		checkPools(t, e)
		return e.Stats().Totals().TotalDrops(), h.processed
	}
	// (256,100) buffers 25,600 packets: a 20k burst fits, 100k does not.
	if drops, processed := run(256, 100, 20000); drops != 0 || processed != 20000 {
		t.Fatalf("20k burst into (256,100): drops %d processed %d", drops, processed)
	}
	if drops, _ := run(256, 100, 100000); drops == 0 {
		t.Fatal("100k burst into (256,100): no drops")
	}
	// (256,500) buffers 128,000: the 100k burst fits (paper: no drops at
	// P=100,000 for WireCAP-B-(256,500)).
	if drops, processed := run(256, 500, 100000); drops != 0 || processed != 100000 {
		t.Fatalf("100k burst into (256,500): drops %d processed %d", drops, processed)
	}
}

func TestRMInvariance(t *testing.T) {
	// Figure 10: only the product R*M matters.
	var rates []float64
	for _, geo := range []struct{ m, r int }{{64, 400}, {128, 200}, {256, 100}} {
		sched := vtime.NewScheduler()
		n := oneQueueNIC(sched)
		h := newTestHandler(heavyCost)
		e := newEngine(t, sched, n, Config{M: geo.m, R: geo.r}, h)
		src := trace.NewConstantRate(trace.ConstantRateConfig{Packets: 60000})
		st := trace.Drive(sched, n, src, nil)
		sched.Run()
		rates = append(rates, e.Stats().DropRate(st.Sent))
	}
	for i := 1; i < len(rates); i++ {
		if diff := rates[i] - rates[0]; diff > 0.03 || diff < -0.03 {
			t.Fatalf("drop rates diverge across equal R*M: %v", rates)
		}
	}
}

func TestFlushDeliversPartialChunk(t *testing.T) {
	// A handful of packets, far fewer than M, must still reach the
	// application via the timeout flush, as copies.
	sched := vtime.NewScheduler()
	n := oneQueueNIC(sched)
	h := newTestHandler(vtime.Microsecond)
	e := newEngine(t, sched, n, Config{M: 256, R: 100, FlushTimeout: vtime.Millisecond}, h)
	src := trace.NewConstantRate(trace.ConstantRateConfig{Packets: 7})
	trace.Drive(sched, n, src, nil)
	sched.Run()
	if h.processed != 7 {
		t.Fatalf("processed %d of 7", h.processed)
	}
	qs := e.QueueStats(0)
	if qs.ChunksFlushed == 0 || qs.FlushedPackets != 7 {
		t.Fatalf("flush stats = %+v", qs)
	}
	if qs.ChunksCaptured != qs.ChunksFlushed {
		// Flush captures count as chunk captures too? They are counted
		// separately: no full-chunk capture should have happened.
		if qs.ChunksCaptured != 0 {
			t.Fatalf("unexpected full-chunk captures: %+v", qs)
		}
	}
	checkPools(t, e)
}

func TestFlushDisabled(t *testing.T) {
	// With FlushTimeout < 0 the paper's blocking capture holds partial
	// chunks forever; nothing is delivered for a tiny trickle.
	sched := vtime.NewScheduler()
	n := oneQueueNIC(sched)
	h := newTestHandler(vtime.Microsecond)
	e := newEngine(t, sched, n, Config{M: 256, R: 100, FlushTimeout: -1}, h)
	src := trace.NewConstantRate(trace.ConstantRateConfig{Packets: 7})
	trace.Drive(sched, n, src, nil)
	sched.Run()
	if h.processed != 0 {
		t.Fatalf("processed %d with flushing disabled", h.processed)
	}
	_ = e
}

func TestNoDoubleDeliveryAfterFlush(t *testing.T) {
	// Packets delivered by a flush copy must not be delivered again when
	// their chunk later fills: total processed == total sent exactly.
	sched := vtime.NewScheduler()
	n := oneQueueNIC(sched)
	h := newTestHandler(vtime.Microsecond)
	e := newEngine(t, sched, n, Config{M: 64, R: 100, FlushTimeout: vtime.Millisecond}, h)
	// Send 40 packets (partial chunk), pause 5 ms (flush), then 1000 more
	// so the chunk fills and wraps several times.
	src1 := trace.NewConstantRate(trace.ConstantRateConfig{Packets: 40})
	trace.Drive(sched, n, src1, nil)
	sched.RunUntil(5 * vtime.Millisecond)
	src2 := trace.NewConstantRate(trace.ConstantRateConfig{Packets: 1000, Start: sched.Now()})
	trace.Drive(sched, n, src2, nil)
	sched.Run()
	if h.processed != 1040 {
		t.Fatalf("processed %d, want exactly 1040", h.processed)
	}
	checkPools(t, e)
}

func TestAdvancedModeOffloadsLongTermImbalance(t *testing.T) {
	// One overloaded queue, three idle buddies: basic mode drops heavily,
	// advanced mode processes nearly everything (Figure 11's mechanism).
	run := func(mode Mode) (float64, *Engine, *testHandler) {
		sched := vtime.NewScheduler()
		n := nic.New(sched, nic.Config{ID: 0, RxQueues: 4, RingSize: 1024, Promiscuous: true})
		h := newTestHandler(heavyCost)
		e := newEngine(t, sched, n, Config{M: 256, R: 100, Mode: mode}, h)
		// 150k packets at 100 kp/s, all steered to queue 0: long-term
		// overload of one 38.8 kp/s thread while three buddies idle.
		src := trace.NewConstantRate(trace.ConstantRateConfig{
			Packets:     150000,
			Queues:      4,
			SingleQueue: true,
			LineRateBps: 100000 * 84 * 8,
		})
		st := trace.Drive(sched, n, src, nil)
		sched.Run()
		checkPools(t, e)
		return e.Stats().DropRate(st.Sent), e, h
	}
	basicRate, _, _ := run(Basic)
	advRate, e, h := run(Advanced)
	if basicRate < 0.3 {
		t.Fatalf("basic mode drop rate %.2f unexpectedly low", basicRate)
	}
	if advRate > 0.02 {
		t.Fatalf("advanced mode drop rate %.2f, want near zero", advRate)
	}
	// The work must actually have spread across queues.
	busy := 0
	for q := 0; q < 4; q++ {
		if h.perQueue[q] > 1000 {
			busy++
		}
	}
	if busy < 3 {
		t.Fatalf("offloading reached only %d queues: %v", busy, h.perQueue)
	}
	if e.QueueStats(0).ChunksOffloaded == 0 {
		t.Fatal("no chunks recorded as offloaded")
	}
}

func TestBuddyGroupIsolation(t *testing.T) {
	// Queues {0,1} and {2,3} form separate groups; overload on queue 0
	// must never place work on queues 2 or 3.
	sched := vtime.NewScheduler()
	n := nic.New(sched, nic.Config{ID: 0, RxQueues: 4, RingSize: 1024, Promiscuous: true})
	h := newTestHandler(heavyCost)
	e := newEngine(t, sched, n, Config{
		M: 256, R: 100, Mode: Advanced,
		BuddyGroups: [][]int{{0, 1}, {2, 3}},
	}, h)
	src := trace.NewConstantRate(trace.ConstantRateConfig{
		Packets: 100000, Queues: 4, SingleQueue: true, LineRateBps: 100000 * 84 * 8,
	})
	trace.Drive(sched, n, src, nil)
	sched.Run()
	if h.perQueue[2] != 0 || h.perQueue[3] != 0 {
		t.Fatalf("offload crossed buddy groups: %v", h.perQueue)
	}
	if h.perQueue[1] == 0 {
		t.Fatalf("no offload within the group: %v", h.perQueue)
	}
	checkPools(t, e)
}

func TestThresholdLowerOffloadsSooner(t *testing.T) {
	// Figure 12: a lower T gives better (or equal) drop rates.
	run := func(threshold int) float64 {
		sched := vtime.NewScheduler()
		n := nic.New(sched, nic.Config{ID: 0, RxQueues: 4, RingSize: 1024, Promiscuous: true})
		h := newTestHandler(heavyCost)
		e := newEngine(t, sched, n, Config{M: 64, R: 100, Mode: Advanced, ThresholdPct: threshold}, h)
		src := trace.NewConstantRate(trace.ConstantRateConfig{
			Packets: 60000, Queues: 4, SingleQueue: true, LineRateBps: 300000 * 84 * 8,
		})
		st := trace.Drive(sched, n, src, nil)
		sched.Run()
		return e.Stats().DropRate(st.Sent)
	}
	lo, hi := run(30), run(95)
	if lo > hi+0.01 {
		t.Fatalf("T=30%% drop rate %.3f worse than T=95%% %.3f", lo, hi)
	}
}

func TestForwardingRefcountDelaysRecycle(t *testing.T) {
	// With every done deferred, chunks must stay captured (not recycled)
	// until the deferred releases run.
	sched := vtime.NewScheduler()
	n := oneQueueNIC(sched)
	h := newTestHandler(100 * vtime.Nanosecond)
	h.deferDone = true
	e := newEngine(t, sched, n, Config{M: 64, R: 30, FlushTimeout: vtime.Millisecond}, h)
	src := trace.NewConstantRate(trace.ConstantRateConfig{Packets: 640})
	trace.Drive(sched, n, src, nil)
	sched.Run()
	if h.processed != 640 {
		t.Fatalf("processed %d", h.processed)
	}
	st := e.Pool(0).Stats()
	if st.Recycled != 0 {
		t.Fatalf("chunks recycled while packets held: %+v", st)
	}
	for _, done := range h.deferred {
		done()
	}
	sched.Run()
	if got := e.Pool(0).Stats().Recycled; got == 0 {
		t.Fatal("no chunks recycled after release")
	}
	checkPools(t, e)
}

func TestPoolExhaustionDropsAndRecovers(t *testing.T) {
	sched := vtime.NewScheduler()
	n := oneQueueNIC(sched)
	h := newTestHandler(heavyCost)
	e := newEngine(t, sched, n, Config{M: 64, R: 20}, h) // 1,280-packet pool
	src := trace.NewConstantRate(trace.ConstantRateConfig{Packets: 20000})
	st := trace.Drive(sched, n, src, nil)
	sched.Run()
	stats := e.Stats().Totals()
	if stats.CaptureDrops == 0 {
		t.Fatal("no capture drops with a tiny pool under a 20k burst")
	}
	if e.QueueStats(0).PoolExhausted == 0 {
		t.Fatal("PoolExhausted not counted")
	}
	if stats.Received+stats.CaptureDrops != st.Sent {
		t.Fatal("conservation violated")
	}
	// Every received packet is eventually processed: WireCAP never
	// delivery-drops.
	if h.processed != stats.Received {
		t.Fatalf("processed %d != received %d", h.processed, stats.Received)
	}
	checkPools(t, e)
}

func TestOffloadPolicies(t *testing.T) {
	for _, policy := range []OffloadPolicy{OffloadShortest, OffloadRoundRobin, OffloadRandom} {
		sched := vtime.NewScheduler()
		n := nic.New(sched, nic.Config{ID: 0, RxQueues: 4, RingSize: 1024, Promiscuous: true})
		h := newTestHandler(heavyCost)
		e := newEngine(t, sched, n, Config{M: 256, R: 100, Mode: Advanced, Policy: policy, Seed: 1}, h)
		src := trace.NewConstantRate(trace.ConstantRateConfig{
			Packets: 100000, Queues: 4, SingleQueue: true, LineRateBps: 120000 * 84 * 8,
		})
		st := trace.Drive(sched, n, src, nil)
		sched.Run()
		if rate := e.Stats().DropRate(st.Sent); rate > 0.05 {
			t.Errorf("policy %d: drop rate %.3f", policy, rate)
		}
		checkPools(t, e)
	}
}

func TestSharedCaptureCore(t *testing.T) {
	sched := vtime.NewScheduler()
	n := nic.New(sched, nic.Config{ID: 0, RxQueues: 2, RingSize: 512, Promiscuous: true})
	h := newTestHandler(10 * vtime.Nanosecond)
	e := newEngine(t, sched, n, Config{M: 64, R: 50, SharedCaptureCore: true}, h)
	src := trace.NewConstantRate(trace.ConstantRateConfig{Packets: 10000, Queues: 2})
	st := trace.Drive(sched, n, src, nil)
	sched.Run()
	if h.processed != st.Sent {
		t.Fatalf("processed %d of %d", h.processed, st.Sent)
	}
	if drops := e.Stats().Totals().TotalDrops(); drops != 0 {
		t.Fatalf("drops = %d", drops)
	}
}

func TestStatsStringsAndModes(t *testing.T) {
	if Basic.String() != "basic" || Advanced.String() != "advanced" {
		t.Fatal("mode strings")
	}
	if !strings.HasPrefix(mem.StateFree.String(), "free") {
		t.Fatal("state string")
	}
}
