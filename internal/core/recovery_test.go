package core

import (
	"encoding/binary"
	"testing"

	"repro/internal/engines"
	"repro/internal/faults"
	"repro/internal/nic"
	"repro/internal/packet"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// seqSource emits steady near-wire-rate traffic with flows pinned to
// their RSS queues and a (flow, seq) pair embedded in every payload, so
// the consumer side can verify exactly-once delivery and per-flow order
// after failovers shuffled who delivers what.
type seqSource struct {
	b       *packet.Builder
	r       *vtime.Rand
	flows   []packet.FlowKey
	next    []uint32
	scratch []byte
	payload [8]byte
	now     vtime.Time
	total   int
	sent    int
}

func newSeqSource(seed uint64, total, queues, flowsPerQueue int) *seqSource {
	r := vtime.NewRand(seed)
	s := &seqSource{
		b: packet.NewBuilder(), r: r, total: total,
		scratch: make([]byte, packet.MaxFrameLen),
	}
	for q := 0; q < queues; q++ {
		for i := 0; i < flowsPerQueue; i++ {
			s.flows = append(s.flows,
				trace.FlowForQueue(r, queues, q, packet.ProtoUDP, trace.FermilabSubnet2, 8))
		}
	}
	s.next = make([]uint32, len(s.flows))
	return s
}

func (s *seqSource) Next() ([]byte, vtime.Time, bool) {
	if s.sent >= s.total {
		return nil, 0, false
	}
	s.sent++
	s.now += 120 * vtime.Nanosecond
	fi := s.r.Intn(len(s.flows))
	binary.BigEndian.PutUint32(s.payload[:4], uint32(fi))
	binary.BigEndian.PutUint32(s.payload[4:], s.next[fi])
	s.next[fi]++
	return s.b.Build(s.scratch, s.flows[fi], s.payload[:]), s.now, true
}

// orderCheckHandler decodes every delivered frame and checks the two
// failover invariants recovery.go promises: no (flow, seq) delivered
// twice, and per-flow sequence numbers strictly increasing in delivery
// order (gaps are fine — quarantine discards are accounted drops, not
// reorderings). It also records which consumer queues served each flow,
// so tests can prove a failover actually moved flows across consumers.
type orderCheckHandler struct {
	t          *testing.T
	seen       map[uint64]bool
	last       map[uint32]uint32
	flowQueues map[uint32]map[int]bool
	processed  uint64
	violations int
}

func newOrderCheckHandler(t *testing.T) *orderCheckHandler {
	return &orderCheckHandler{
		t:          t,
		seen:       make(map[uint64]bool),
		last:       make(map[uint32]uint32),
		flowQueues: make(map[uint32]map[int]bool),
	}
}

func (h *orderCheckHandler) Cost(int, []byte) vtime.Time { return 500 * vtime.Nanosecond }

func (h *orderCheckHandler) Handle(q int, data []byte, ts vtime.Time, done func()) {
	h.processed++
	defer done()
	var d packet.Decoded
	if err := packet.Decode(data, &d); err != nil {
		h.fail("undecodable frame delivered: %v", err)
		return
	}
	p := d.Payload()
	if len(p) < 8 {
		h.fail("short payload delivered: %d bytes", len(p))
		return
	}
	flow := binary.BigEndian.Uint32(p[:4])
	seq := binary.BigEndian.Uint32(p[4:8])
	key := uint64(flow)<<32 | uint64(seq)
	if h.seen[key] {
		h.fail("duplicate delivery: flow %d seq %d", flow, seq)
	}
	h.seen[key] = true
	if last, ok := h.last[flow]; ok && seq <= last {
		h.fail("per-flow order violated: flow %d seq %d after %d", flow, seq, last)
	}
	h.last[flow] = seq
	qs := h.flowQueues[flow]
	if qs == nil {
		qs = make(map[int]bool)
		h.flowQueues[flow] = qs
	}
	qs[q] = true
}

// fail reports at most a handful of violations so a broken run doesn't
// drown the log in one line per packet.
func (h *orderCheckHandler) fail(format string, args ...any) {
	h.violations++
	if h.violations <= 5 {
		h.t.Errorf(format, args...)
	}
}

// migratedFlows counts flows that were served by more than one consumer
// queue — the observable footprint of a failover hand-off.
func (h *orderCheckHandler) migratedFlows() int {
	n := 0
	for _, qs := range h.flowQueues {
		if len(qs) > 1 {
			n++
		}
	}
	return n
}

// runCrashRun drives one WireCAP engine under the given handler-crash
// schedule and returns the engine and handler for assertions. The
// conservation ledger is checked here for every run:
//
//	received == delivered + delivery drops + reclaim drops
//	delivered == handler-processed
func runCrashRun(t *testing.T, seed uint64, queues, pkts int, sch faults.Schedule) (*Engine, *orderCheckHandler) {
	t.Helper()
	sched := vtime.NewScheduler()
	inj := faults.NewInjector(sched, seed)
	if err := inj.Install(sch); err != nil {
		t.Fatal(err)
	}
	n := nic.New(sched, nic.Config{
		ID: 0, RxQueues: queues, RingSize: 512, Promiscuous: true, Faults: inj,
	})
	h := newOrderCheckHandler(t)
	e, err := New(sched, n, Config{
		// Basic mode: chunk offloading (Advanced) spreads one queue's
		// chunks across buddies by design, which interleaves flows even
		// on a healthy run — the strict per-flow order property under
		// test belongs to the dedicated-consumer path plus recovery.
		M: 64, R: 40, Mode: Basic,
		FlushTimeout: vtime.Millisecond,
		Costs:        engines.DefaultCosts(),
		Seed:         seed,
		Faults:       inj,
	}, h)
	if err != nil {
		t.Fatal(err)
	}
	src := newSeqSource(seed, pkts, queues, 4)
	st := trace.Drive(sched, n, src, nil)
	sched.Run()

	tot := e.Stats().Totals()
	if tot.Received+tot.CaptureDrops != st.Sent {
		t.Fatalf("received %d + capture drops %d != sent %d", tot.Received, tot.CaptureDrops, st.Sent)
	}
	if tot.Received != tot.Delivered+tot.DeliveryDrops+tot.ReclaimDrops {
		t.Fatalf("books unbalanced: received %d != delivered %d + delivery drops %d + reclaim drops %d",
			tot.Received, tot.Delivered, tot.DeliveryDrops, tot.ReclaimDrops)
	}
	if h.processed != tot.Delivered {
		t.Fatalf("handler processed %d != delivered %d", h.processed, tot.Delivered)
	}
	return e, h
}

// TestSimultaneousConsumerCrashFailover kills two of four consumers at
// the same instant and checks that recovery hands both backlogs to live
// buddies with exactly-once, order-preserving delivery.
func TestSimultaneousConsumerCrashFailover(t *testing.T) {
	const queues = 4
	sch := faults.Schedule{
		{Kind: faults.HandlerCrash, NIC: 0, Queue: 0, At: 2 * vtime.Millisecond},
		{Kind: faults.HandlerCrash, NIC: 0, Queue: 2, At: 2 * vtime.Millisecond},
	}
	e, h := runCrashRun(t, 11, queues, 40_000, sch)

	for _, q := range []int{0, 2} {
		if qs := e.QueueStats(q); qs.HandlerFailovers == 0 {
			t.Errorf("queue %d: no failover despite live buddies", q)
		}
	}
	// A consumer crash is not ring death: the failover path, not the
	// quarantine path, must absorb it — on every queue.
	for q := 0; q < queues; q++ {
		qs := e.QueueStats(q)
		if qs.Quarantines != 0 {
			t.Errorf("queue %d: consumer crash misdiagnosed as ring death", q)
		}
		if q == 1 || q == 3 {
			if qs.HandlerFailovers != 0 {
				t.Errorf("queue %d: healthy consumer failed over", q)
			}
		}
	}
	if h.migratedFlows() == 0 {
		t.Error("no flow was served by more than one consumer — failover untested")
	}
	if h.violations != 0 {
		t.Fatalf("%d delivery invariant violations", h.violations)
	}
}

// TestMultiCrashDeliveryProperty fuzzes the crash pattern across seeds:
// each run kills a random subset of consumers (sometimes every one) at
// random instants. Whatever recovery decides — failover, re-steer, or
// full backlog reclaim when no buddy survives — delivery must stay
// exactly-once and per-flow ordered, and the loss books exact.
func TestMultiCrashDeliveryProperty(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		r := vtime.NewRand(seed*131 + 7)
		queues := 3 + int(seed%3)
		kills := 1 + r.Intn(queues) // may be all of them
		var sch faults.Schedule
		for i := 0; i < kills; i++ {
			sch = append(sch, faults.Event{
				Kind:  faults.HandlerCrash,
				NIC:   0,
				Queue: i,
				At:    vtime.Millisecond + vtime.Time(r.Intn(int(4*vtime.Millisecond))),
			})
		}
		e, h := runCrashRun(t, seed, queues, 25_000, sch)

		var failovers, reclaims uint64
		for q := 0; q < queues; q++ {
			qs := e.QueueStats(q)
			failovers += qs.HandlerFailovers
			reclaims += qs.ReclaimDrops
		}
		if kills < queues && failovers == 0 {
			t.Errorf("seed %d: %d/%d consumers crashed but nothing failed over", seed, kills, queues)
		}
		if kills == queues && failovers == 0 && reclaims == 0 {
			t.Errorf("seed %d: all consumers crashed yet no failover or reclaim ran", seed)
		}
		if h.violations != 0 {
			t.Fatalf("seed %d: %d delivery invariant violations", seed, h.violations)
		}
	}
}
