package engines

import (
	"repro/internal/faults"
	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/vtime"
)

// PSIOE models the PacketShader I/O engine (paper §6): the application's
// own user-space thread copies batches of packets from the receive ring
// into a consecutive user-level buffer, releasing the descriptors, and
// then processes the batch. The copy competes for the same core as
// processing — cooperatively rather than by preemption — and the user
// buffer is small, so PSIOE "provides only a limited buffering capability
// ... not suitable for a heavy-load application".
type PSIOE struct {
	sched  *vtime.Scheduler
	n      *nic.NIC
	costs  CostModel
	h      Handler
	queues []*psioeQueue
}

// PSIOEBatch is the copy batch size (PacketShader fetches packets in
// chunks of 64).
const PSIOEBatch = 64

// PSIOEBufferSlots is the user-buffer capacity in packets.
const PSIOEBufferSlots = 4096

type psioeQueue struct {
	e      *PSIOE
	queue  int
	ring   *nic.RxRing
	sv     *vtime.Server
	ubuf   []pfringSlot
	head   int
	used   int // slots holding packets not yet dispatched
	held   int // slots dispatched to the handler, not yet released
	tail   int // next ring descriptor to copy from
	active bool
	parked bool // sitting out a handler-stall window
	stats  QueueStats
	instr  instr

	inj      *faults.Injector
	injNIC   int
	resumeFn func()

	trace *obs.Recorder
	nicID int

	// Bound functions and scratch reused across packets/batches so the
	// steady-state path allocates nothing: batch holds the descriptor
	// indices of the in-flight copy batch, pend* the packet in flight on
	// the processing side.
	batch    []int
	copyFn   func()
	procFn   func()
	relFn    func()
	pendData []byte
	pendTS   vtime.Time
}

// NewPSIOE builds a PSIOE-like engine on every queue of n.
func NewPSIOE(sched *vtime.Scheduler, n *nic.NIC, costs CostModel, h Handler) *PSIOE {
	e := &PSIOE{sched: sched, n: n, costs: costs, h: h}
	for qi := 0; qi < n.RxQueues(); qi++ {
		q := &psioeQueue{
			e: e, queue: qi, ring: n.Rx(qi), sv: vtime.NewServer(sched, nil),
			instr: newInstr(n, "PSIOE", qi),
			inj:   n.Faults(), injNIC: n.ID(),
			trace: n.Trace(), nicID: n.ID(),
		}
		q.resumeFn = q.resume
		armPrivate(q.ring)
		q.ubuf = make([]pfringSlot, PSIOEBufferSlots)
		for i := range q.ubuf {
			q.ubuf[i].data = make([]byte, 2048)
		}
		q.batch = make([]int, 0, PSIOEBatch)
		q.copyFn = q.copyBatchDone
		q.procFn = q.processDone
		q.relFn = func() { q.held-- }
		q.ring.OnRx(func(int) { q.kick() })
		e.queues = append(e.queues, q)
	}
	return e
}

// Name implements Engine.
func (e *PSIOE) Name() string { return "PSIOE" }

//wirecap:hotpath
func (q *psioeQueue) kick() {
	if q.active || q.parked {
		return
	}
	q.active = true
	q.step()
}

// resume runs at the end of a handler-stall window.
//
//wirecap:hotpath
func (q *psioeQueue) resume() {
	q.parked = false
	q.active = true
	q.step()
}

// step is the worker loop: process from the user buffer if it has data,
// otherwise copy a batch in from the ring, otherwise block. The whole
// loop runs on the application's thread, so a crashed or stalled handler
// stops the copy side too — PSIOE's cooperative design is exactly why it
// degrades badly under consumer faults.
//
//wirecap:hotpath
func (q *psioeQueue) step() {
	if q.inj.HandlerCrashed(q.injNIC, q.queue) {
		q.active = false
		return
	}
	if until, ok := q.inj.HandlerStalled(q.injNIC, q.queue); ok {
		q.active = false
		q.parked = true
		q.e.sched.At(until, q.resumeFn)
		return
	}
	if q.used > 0 {
		si := q.head
		slot := &q.ubuf[si]
		q.head = (q.head + 1) % len(q.ubuf)
		q.used--
		q.held++
		q.stats.Delivered++
		q.instr.pollsOK.Inc()
		q.trace.FifoDeliver(q.nicID, q.queue, si, q.e.sched.Now())
		q.pendData, q.pendTS = slot.data[:slot.n], slot.ts
		cost := q.e.h.Cost(q.queue, q.pendData)
		if f := q.inj.HandlerSlowdown(q.injNIC, q.queue); f > 1 {
			cost = vtime.Time(float64(cost) * f)
		}
		q.trace.StageCost("PSIOE", q.queue, "process", cost)
		q.sv.ChargeAndCall(cost, q.procFn)
		return
	}
	// Copy a batch from the ring into the user buffer.
	q.batch = q.batch[:0]
	var copyCost vtime.Time
	for len(q.batch) < PSIOEBatch && q.used+q.held+len(q.batch) < len(q.ubuf) {
		d := q.ring.Desc(q.tail)
		if d.State != nic.DescUsed {
			break
		}
		q.batch = append(q.batch, q.tail) //wirelint:allow hotpath batch slice is reused via batch[:0]; bounded by PSIOEBatch
		q.tail = (q.tail + 1) % q.ring.Size()
		copyCost += q.e.costs.CopyCost(d.Len)
	}
	if len(q.batch) == 0 {
		q.instr.pollsEmpty.Inc()
		q.active = false
		return
	}
	// One kernel crossing releases the whole batch's descriptors.
	q.instr.syscalls.Inc()
	q.trace.StageCost("PSIOE", q.queue, "user_copy", copyCost)
	q.sv.ChargeAndCall(copyCost, q.copyFn)
}

// processDone runs handler side effects for the packet charged in step.
//
//wirecap:hotpath
func (q *psioeQueue) processDone() {
	data, ts := q.pendData, q.pendTS
	q.pendData = nil
	q.e.h.Handle(q.queue, data, ts, q.relFn)
	q.trace.Processed(q.nicID, q.queue, q.e.sched.Now())
	q.step()
}

// copyBatchDone commits the batch copy charged in step.
//
//wirecap:hotpath
func (q *psioeQueue) copyBatchDone() {
	for _, idx := range q.batch {
		d := q.ring.Desc(idx)
		si := (q.head + q.used) % len(q.ubuf)
		slot := &q.ubuf[si]
		copy(slot.data, d.Buf[:d.Len])
		slot.n = d.Len
		slot.ts = d.TS
		q.used++
		q.instr.copies.Inc()
		q.instr.copiedBytes.Add(uint64(d.Len))
		q.trace.DescToFifo(q.nicID, q.queue, idx, si, q.e.sched.Now())
		q.ring.Refill(idx, d.Buf)
	}
	q.step()
}

// Stats implements Engine.
func (e *PSIOE) Stats() Stats {
	s := Stats{Engine: e.Name()}
	for _, q := range e.queues {
		qs := q.stats
		rs := q.ring.Stats()
		qs.Received = rs.Received
		qs.CaptureDrops = rs.Drops()
		s.PerQueue = append(s.PerQueue, qs)
	}
	return s
}
