package engines

import (
	"testing"

	"repro/internal/nic"
	"repro/internal/trace"
	"repro/internal/vtime"
)

func TestDPDKWireRateNoLoad(t *testing.T) {
	e, h, st := runConstant(t, 30000, 10*vtime.Nanosecond,
		func(s *vtime.Scheduler, n *nic.NIC, h Handler) Engine {
			return NewDPDK(s, n, DefaultCosts(), h, DPDKConfig{})
		})
	if h.processed != st.Sent {
		t.Fatalf("processed %d of %d", h.processed, st.Sent)
	}
	if drops := e.Stats().Totals().TotalDrops(); drops != 0 {
		t.Fatalf("drops = %d", drops)
	}
}

func TestDPDKMempoolBuffersBeyondRing(t *testing.T) {
	// A 20k burst at wire rate against a slow consumer: the ring is
	// 1,024 but the mempool is 25,600, so DPDK absorbs the burst like
	// WireCAP-B-(256,100) does — and unlike DNA.
	cost := 25744 * vtime.Nanosecond
	e, h, st := runConstant(t, 20000, cost,
		func(s *vtime.Scheduler, n *nic.NIC, h Handler) Engine {
			return NewDPDK(s, n, DefaultCosts(), h, DPDKConfig{})
		})
	if drops := e.Stats().Totals().TotalDrops(); drops != 0 {
		t.Fatalf("drops = %d, want 0 (mempool should absorb burst)", drops)
	}
	if h.processed != st.Sent {
		t.Fatalf("processed %d of %d", h.processed, st.Sent)
	}
	// A small mempool behaves like a Type-II ring.
	e2, _, st2 := runConstant(t, 20000, cost,
		func(s *vtime.Scheduler, n *nic.NIC, h Handler) Engine {
			return NewDPDK(s, n, DefaultCosts(), h, DPDKConfig{MempoolSize: 2048})
		})
	if drops := e2.Stats().Totals().TotalDrops(); drops == 0 {
		t.Fatalf("small mempool absorbed a %d burst", st2.Sent)
	}
}

func TestDPDKAppOffloadSpreadsLoad(t *testing.T) {
	run := func(offload bool) (float64, uint64, *testHandler) {
		sched := vtime.NewScheduler()
		n := nic.New(sched, nic.Config{ID: 0, RxQueues: 4, RingSize: 1024, Promiscuous: true})
		h := &testHandler{cost: 25744 * vtime.Nanosecond}
		e := NewDPDK(sched, n, DefaultCosts(), h, DPDKConfig{AppOffload: offload})
		src := trace.NewConstantRate(trace.ConstantRateConfig{
			Packets: 150_000, Queues: 4, SingleQueue: true,
			LineRateBps: 100_000 * 84 * 8,
		})
		st := trace.Drive(sched, n, src, nil)
		sched.Run()
		var steered uint64
		for q := 0; q < 4; q++ {
			steered += e.Steered(q)
		}
		return e.Stats().DropRate(st.Sent), steered, h
	}
	noOff, steered0, _ := run(false)
	withOff, steered1, h := run(true)
	if steered0 != 0 {
		t.Fatalf("steering without AppOffload: %d", steered0)
	}
	if noOff < 0.3 {
		t.Fatalf("no-offload drop rate %.2f, want heavy", noOff)
	}
	if withOff > 0.02 {
		t.Fatalf("app-offload drop rate %.2f, want ~0", withOff)
	}
	if steered1 == 0 {
		t.Fatal("app offload steered nothing")
	}
	if h.processed != 150_000 {
		t.Fatalf("processed %d", h.processed)
	}
}

func TestDPDKExactlyOnceWithOffload(t *testing.T) {
	// Conservation under steering: every received packet processed once,
	// every mbuf returned to its owner's mempool.
	sched := vtime.NewScheduler()
	n := nic.New(sched, nic.Config{ID: 0, RxQueues: 3, RingSize: 512, Promiscuous: true})
	h := &testHandler{cost: 5 * vtime.Microsecond}
	e := NewDPDK(sched, n, DefaultCosts(), h, DPDKConfig{AppOffload: true, MempoolSize: 4096, ThresholdPct: 10})
	src := trace.NewConstantRate(trace.ConstantRateConfig{
		Packets: 50_000, Queues: 3, SingleQueue: true,
		LineRateBps: 500_000 * 84 * 8,
	})
	st := trace.Drive(sched, n, src, nil)
	sched.Run()
	tot := e.Stats().Totals()
	if tot.Received+tot.CaptureDrops != st.Sent {
		t.Fatal("conservation violated")
	}
	if h.processed != tot.Received {
		t.Fatalf("processed %d != received %d", h.processed, tot.Received)
	}
	// All mbufs home: every queue's free descriptors + spare mbufs add
	// back up (no starved descriptors left).
	for q := 0; q < 3; q++ {
		if len(e.queues[q].starved) != 0 {
			t.Fatalf("queue %d has %d starved descriptors after drain", q, len(e.queues[q].starved))
		}
	}
}

func TestDPDKNames(t *testing.T) {
	sched := vtime.NewScheduler()
	n := nic.New(sched, nic.Config{ID: 0, RxQueues: 1, RingSize: 64, Promiscuous: true})
	h := &testHandler{}
	if got := NewDPDK(sched, n, DefaultCosts(), h, DPDKConfig{}).Name(); got != "DPDK" {
		t.Fatalf("name %q", got)
	}
	sched2 := vtime.NewScheduler()
	n2 := nic.New(sched2, nic.Config{ID: 0, RxQueues: 1, RingSize: 64, Promiscuous: true})
	if got := NewDPDK(sched2, n2, DefaultCosts(), h, DPDKConfig{AppOffload: true}).Name(); got != "DPDK+app-offload" {
		t.Fatalf("name %q", got)
	}
}
