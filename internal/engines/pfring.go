package engines

import (
	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/vtime"
)

// PFRing is the Type-I engine (paper §2.1): Linux NAPI polling in kernel
// context copies each received packet from its ring buffer into an
// intermediate per-queue buffer (the pf_ring), immediately refilling the
// descriptor, and the application consumes from the memory-mapped pf_ring.
//
// Two pathologies follow, both reproduced here:
//
//   - One copy per packet bounds the capture rate below 64-byte wire rate
//     (capture drops even with an infinitely fast application).
//   - NAPI runs on the application's core, so at high packet rates the
//     kernel steals CPU from the application even for packets that are
//     later discarded at a full pf_ring — receive livelock. The modeled
//     application core is slowed by the kernel's measured utilization.
type PFRing struct {
	name  string
	sched *vtime.Scheduler
	n     *nic.NIC
	costs CostModel
	// kernelExtra is added to every per-packet kernel copy: zero for
	// PF_RING, the protocol-stack cost for the PF_PACKET variant.
	kernelExtra vtime.Time
	queues      []*pfringQueue
}

// pfringSlot is one entry of the intermediate buffer: the copy target.
type pfringSlot struct {
	data []byte
	n    int
	ts   vtime.Time
}

type pfringQueue struct {
	e    *PFRing
	ring *nic.RxRing

	core     *vtime.Core // shared by the app thread and kernel polling
	kernelSv *vtime.Server
	thread   *Thread

	// pf_ring: a fixed-capacity FIFO of copied packets.
	fifo     []pfringSlot
	head     int // next slot the application reads
	used     int // slots holding packets not yet fetched
	held     int // slots fetched by the application, not yet released
	capacity int

	ktail   int // next descriptor the kernel will copy
	kactive bool
	// kpend is the descriptor being copied; kcopyFn is the bound copy
	// completion, so the per-packet kernel path allocates no closure. The
	// kernel server runs one copy at a time, so a single field suffices.
	kpend   int
	kcopyFn func()

	// kernel utilization tracking for the livelock model.
	kernelWork vtime.Time // work charged since the last utilization tick
	tick       *vtime.Timer

	relFn func() // bound once; handed out by fetch for every packet

	trace   *obs.Recorder
	nicID   int
	queueID int

	stats QueueStats
	instr instr
	// perPktSyscall charges a kernel crossing per delivered packet: the
	// PF_PACKET recvfrom path, versus PF_RING's mmap'd ring.
	perPktSyscall bool
}

// PFRingBufferSlots is the default pf_ring capacity; the paper sets it to
// 10,240.
const PFRingBufferSlots = 10240

// NewPFRing builds a PF_RING-like engine on every queue of n.
func NewPFRing(sched *vtime.Scheduler, n *nic.NIC, costs CostModel, h Handler, slots int) *PFRing {
	if slots <= 0 {
		slots = PFRingBufferSlots
	}
	return newTypeI("PF_RING", sched, n, costs, h, slots, 0)
}

// RawSocketBufferSlots approximates the default PF_PACKET socket buffer in
// 2 KB slots.
const RawSocketBufferSlots = 4096

// NewRawSocket builds a PF_PACKET-like engine: the Type-I structure plus
// the full protocol-stack cost on every packet. It exists as the
// "standard OS services" baseline the paper dismisses as far too slow for
// high-speed capture (§2.1, citing [9]).
func NewRawSocket(sched *vtime.Scheduler, n *nic.NIC, costs CostModel, h Handler) *PFRing {
	return newTypeI("PF_PACKET", sched, n, costs, h, RawSocketBufferSlots, costs.KernelStackPerPkt)
}

func newTypeI(name string, sched *vtime.Scheduler, n *nic.NIC, costs CostModel, h Handler, slots int, kernelExtra vtime.Time) *PFRing {
	e := &PFRing{name: name, sched: sched, n: n, costs: costs, kernelExtra: kernelExtra}
	for qi := 0; qi < n.RxQueues(); qi++ {
		q := &pfringQueue{
			e: e, ring: n.Rx(qi), capacity: slots, core: vtime.NewCore(),
			instr: newInstr(n, name, qi), perPktSyscall: kernelExtra > 0,
			trace: n.Trace(), nicID: n.ID(), queueID: qi,
		}
		armPrivate(q.ring)
		q.fifo = make([]pfringSlot, slots)
		for i := range q.fifo {
			q.fifo[i].data = make([]byte, 2048)
		}
		q.kernelSv = vtime.NewServer(sched, nil)
		q.kcopyFn = q.kernelCopyDone
		q.tick = sched.NewTimer(q.utilizationTick)
		q.relFn = func() { q.held-- }
		q.thread = NewThread(sched, q.core, qi, h, q.fetch)
		q.thread.SetFaults(n.Faults(), n.ID())
		q.thread.SetTrace(n.Trace(), name, n.ID())
		q.ring.OnRx(func(int) { q.kickKernel() })
		e.queues = append(e.queues, q)
	}
	return e
}

// Name implements Engine.
func (e *PFRing) Name() string { return e.name }

// utilizationTick measures kernel CPU consumption over 1 ms windows and
// slows the application core accordingly: the fluid livelock model.
const utilizationWindow = vtime.Millisecond

func (q *pfringQueue) utilizationTick() {
	share := float64(q.kernelWork) / float64(utilizationWindow)
	q.kernelWork = 0
	q.core.SetKernelShare(share)
	if share == 0 && !q.kactive {
		// Idle: stop ticking so the event queue can drain; the next
		// kickKernel re-arms the tick.
		return
	}
	q.tick.Schedule(utilizationWindow)
}

// kickKernel starts the NAPI copy loop if it is idle.
//
//wirecap:hotpath
func (q *pfringQueue) kickKernel() {
	if !q.tick.Armed() {
		q.tick.Schedule(utilizationWindow)
	}
	if q.kactive {
		return
	}
	q.kactive = true
	q.kernelStep()
}

//wirecap:hotpath
func (q *pfringQueue) kernelStep() {
	d := q.ring.Desc(q.ktail)
	if d.State != nic.DescUsed {
		q.kactive = false
		return
	}
	q.kpend = q.ktail
	q.ktail = (q.ktail + 1) % q.ring.Size()
	cost := q.e.costs.CopyCost(d.Len) + q.e.kernelExtra
	q.kernelWork += cost
	q.trace.StageCost(q.e.name, q.queueID, "kernel_copy", cost)
	q.kernelSv.ChargeAndCall(cost, q.kcopyFn)
}

// kernelCopyDone commits the copy charged by kernelStep and continues the
// polling loop.
//
//wirecap:hotpath
func (q *pfringQueue) kernelCopyDone() {
	idx := q.kpend
	dd := q.ring.Desc(idx)
	q.instr.copies.Inc()
	q.instr.copiedBytes.Add(uint64(dd.Len))
	if q.used+q.held < q.capacity {
		si := (q.head + q.used) % q.capacity
		slot := &q.fifo[si]
		copy(slot.data, dd.Buf[:dd.Len])
		slot.n = dd.Len
		slot.ts = dd.TS
		q.used++
		q.trace.DescToFifo(q.nicID, q.queueID, idx, si, q.e.sched.Now())
		q.thread.Kick()
	} else {
		// pf_ring overflow: the copy work was spent, the packet is
		// lost anyway — the livelock signature.
		q.stats.DeliveryDrops++
		q.trace.DescDrop(obs.DropDeliveryOverflow, q.nicID, q.queueID, idx, q.e.sched.Now())
	}
	q.ring.Refill(idx, dd.Buf)
	q.kernelStep()
}

// fetch pops the next packet from the pf_ring FIFO. The slot stays owned
// by the application (held) until the release callback runs, so the
// kernel cannot overwrite a packet that is still being processed.
//
//wirecap:hotpath
func (q *pfringQueue) fetch() ([]byte, vtime.Time, func(), bool) {
	if q.used == 0 {
		q.instr.pollsEmpty.Inc()
		q.instr.syscalls.Inc() // poll() before blocking
		return nil, 0, nil, false
	}
	si := q.head
	slot := &q.fifo[si]
	q.head = (q.head + 1) % q.capacity
	q.used--
	q.held++
	q.stats.Delivered++
	q.trace.FifoDeliver(q.nicID, q.queueID, si, q.e.sched.Now())
	q.instr.pollsOK.Inc()
	if q.perPktSyscall {
		q.instr.syscalls.Inc() // recvfrom per packet
	}
	return slot.data[:slot.n], slot.ts, q.relFn, true
}

// Stats implements Engine.
func (e *PFRing) Stats() Stats {
	s := Stats{Engine: e.Name()}
	for _, q := range e.queues {
		qs := q.stats
		rs := q.ring.Stats()
		qs.Received = rs.Received
		qs.CaptureDrops = rs.Drops()
		s.PerQueue = append(s.PerQueue, qs)
	}
	return s
}
