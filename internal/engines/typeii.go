package engines

import (
	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/vtime"
)

// TypeII is the DNA/NETMAP family (paper §2.1): the receive ring's buffers
// are memory-mapped to the application and double as the capture buffer.
// Zero copies — but a descriptor returns to the ready state only after its
// packet is consumed, so total buffering is the ring size and bursts
// beyond it drop at the wire.
//
// The two variants differ in when consumed descriptors are returned:
//
//   - DNA releases each descriptor as soon as its packet is processed.
//   - NETMAP releases in batches at the next sync (poll/NIOCRXSYNC)
//     boundary, i.e. when the thread has drained everything available.
//     Under bursts this holds descriptors longer, which is why NETMAP
//     shows higher capture drops than DNA on the bursty queue in the
//     paper's Table 1.
type TypeII struct {
	name         string
	sched        *vtime.Scheduler
	n            *nic.NIC
	costs        CostModel
	batchRelease bool

	queues []*typeIIQueue
}

type typeIIQueue struct {
	e       *TypeII
	ring    *nic.RxRing
	thread  *Thread
	tail    int   // next descriptor index to consume
	inHand  int   // descriptors fetched but not yet released
	pending []int // NETMAP: consumed descriptors awaiting batch release
	// releases holds one release closure per descriptor, built once at
	// construction so the per-packet fetch path allocates nothing.
	releases []func()
	trace    *obs.Recorder
	nicID    int
	queueID  int
	stats    QueueStats
	instr    instr
}

// NewDNA builds a DNA-like engine on every queue of n, delivering to h.
func NewDNA(sched *vtime.Scheduler, n *nic.NIC, costs CostModel, h Handler) *TypeII {
	return newTypeII("DNA", sched, n, costs, h, false)
}

// NewNETMAP builds a NETMAP-like engine.
func NewNETMAP(sched *vtime.Scheduler, n *nic.NIC, costs CostModel, h Handler) *TypeII {
	return newTypeII("NETMAP", sched, n, costs, h, true)
}

func newTypeII(name string, sched *vtime.Scheduler, n *nic.NIC, costs CostModel, h Handler, batch bool) *TypeII {
	e := &TypeII{name: name, sched: sched, n: n, costs: costs, batchRelease: batch}
	for qi := 0; qi < n.RxQueues(); qi++ {
		q := &typeIIQueue{
			e: e, ring: n.Rx(qi), instr: newInstr(n, name, qi),
			trace: n.Trace(), nicID: n.ID(), queueID: qi,
		}
		armPrivate(q.ring)
		q.pending = make([]int, 0, q.ring.Size())
		q.releases = make([]func(), q.ring.Size())
		for i := range q.releases {
			idx := i
			q.releases[i] = func() { q.release(idx) }
		}
		q.thread = NewThread(sched, nil, qi, h, q.fetch)
		q.thread.SetFaults(n.Faults(), n.ID())
		q.thread.SetTrace(n.Trace(), name, n.ID())
		q.ring.OnRx(func(int) { q.thread.Kick() })
		e.queues = append(e.queues, q)
	}
	return e
}

// Name implements Engine.
func (e *TypeII) Name() string { return e.name }

// fetch hands the application the packet in the next in-order used
// descriptor, zero-copy. The release closure reinitializes the descriptor
// (DNA) or parks it for the next sync batch (NETMAP).
//
//wirecap:hotpath
func (q *typeIIQueue) fetch() ([]byte, vtime.Time, func(), bool) {
	d := q.ring.Desc(q.tail)
	if d.State != nic.DescUsed || q.inHand >= q.ring.Size() {
		// Nothing consumable: sync boundary. NETMAP returns all consumed
		// descriptors to the NIC here. Either way the thread re-enters the
		// kernel (poll/NIOCRXSYNC) before blocking.
		q.instr.pollsEmpty.Inc()
		q.instr.syscalls.Inc()
		q.releaseBatch()
		return nil, 0, nil, false
	}
	idx := q.tail
	q.tail = (q.tail + 1) % q.ring.Size()
	q.inHand++
	q.stats.Delivered++
	q.instr.pollsOK.Inc()
	// Zero-copy delivery straight from the descriptor: the Type-II
	// signature — a traced packet shows no copy stage at all.
	q.trace.DescDeliver(q.nicID, q.queueID, idx, q.e.sched.Now())
	return d.Buf[:d.Len], d.TS, q.releases[idx], true
}

// release returns descriptor idx to the NIC (DNA) or parks it for the
// next sync batch (NETMAP).
//
//wirecap:hotpath
func (q *typeIIQueue) release(idx int) {
	if q.e.batchRelease {
		q.pending = append(q.pending, idx) //wirelint:allow hotpath pending list is bounded by ring size; reused per sync batch
		return
	}
	q.inHand--
	q.ring.Refill(idx, q.ring.Desc(idx).Buf)
}

//wirecap:hotpath
func (q *typeIIQueue) releaseBatch() {
	for _, idx := range q.pending {
		q.inHand--
		q.ring.Refill(idx, q.ring.Desc(idx).Buf)
	}
	q.pending = q.pending[:0]
}

// Stats implements Engine.
func (e *TypeII) Stats() Stats {
	s := Stats{Engine: e.name}
	for _, q := range e.queues {
		qs := q.stats
		rs := q.ring.Stats()
		qs.Received = rs.Received
		qs.CaptureDrops = rs.Drops()
		s.PerQueue = append(s.PerQueue, qs)
	}
	return s
}
