// Package engines implements the baseline packet capture engines the
// WireCAP paper compares against, on top of the simulated NIC substrate:
//
//   - Type-I (PF_RING-like): one kernel copy per packet into an
//     intermediate pf_ring buffer, NAPI polling on the application's core
//     (receive livelock), descriptor refilled right after the copy.
//   - Type-II (DNA- and NETMAP-like): ring buffers double as the capture
//     buffer; a descriptor is released only after the application consumes
//     its packet, so buffering is limited to the ring size.
//   - PSIOE-like: Type-I structure, but the copy runs in user space on the
//     application's thread.
//   - PF_PACKET-like: the general-purpose protocol stack path, one copy
//     plus heavy per-packet kernel cost.
//
// The WireCAP engine itself lives in internal/core; it shares this
// package's Handler, CostModel, and stats types so experiments drive every
// engine identically.
package engines

import (
	"strconv"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/vtime"
)

// CostModel holds the virtual-time costs of the primitive operations every
// engine is built from. Defaults are calibrated so the paper's headline
// numbers come out: a pkt_handler applying a BPF filter 300 times per
// packet on a 2.4 GHz core processes 38,844 p/s (25.74 us/packet), and a
// x=0 handler keeps up with the 14.88 Mp/s wire rate.
type CostModel struct {
	// AppBase is the per-packet application overhead excluding filter
	// work (loop, counters, pcap callback dispatch).
	AppBase vtime.Time
	// BPFApplyNs is the cost in nanoseconds of one BPF filter
	// application; pkt_handler charges X of these per packet. It is
	// fractional so the calibration point (x=300 -> 38,844 p/s) can be
	// hit exactly.
	BPFApplyNs float64
	// CopyFixed + CopyPerByte model memcpy of a packet between buffers.
	CopyFixed   vtime.Time
	CopyPerByte float64 // nanoseconds per byte
	// KernelStackPerPkt is the protocol-stack cost of the PF_PACKET path.
	KernelStackPerPkt vtime.Time
	// ChunkOp is the kernel cost of one WireCAP chunk-granular ioctl
	// (capture or recycle of a whole chunk).
	ChunkOp vtime.Time
	// TxAttach is the metadata cost of attaching one packet to a TX ring.
	TxAttach vtime.Time
}

// DefaultCosts returns the calibrated cost model (see DESIGN.md §3).
func DefaultCosts() CostModel {
	return CostModel{
		AppBase: 50 * vtime.Nanosecond,
		// 50 ns + 300 * 85.647 ns = 25.744 us/packet = 38,844 p/s,
		// the paper's measured pkt_handler rate at x=300 on 2.4 GHz.
		BPFApplyNs:        85.647,
		CopyFixed:         60 * vtime.Nanosecond,
		CopyPerByte:       0.5,
		KernelStackPerPkt: 2500 * vtime.Nanosecond,
		ChunkOp:           2 * vtime.Microsecond,
		TxAttach:          20 * vtime.Nanosecond,
	}
}

// CopyCost returns the modeled cost of copying n bytes.
func (m CostModel) CopyCost(n int) vtime.Time {
	return m.CopyFixed + vtime.Time(float64(n)*m.CopyPerByte)
}

// HandlerCost returns the per-packet application cost for a handler that
// applies the BPF filter x times.
func (m CostModel) HandlerCost(x int) vtime.Time {
	return m.AppBase + vtime.Time(float64(x)*m.BPFApplyNs)
}

// Handler consumes delivered packets on one queue: the modeled
// application thread body. Implementations live in internal/app.
type Handler interface {
	// Cost returns the virtual processing time the packet will consume
	// when handled by the given queue's thread.
	Cost(queue int, data []byte) vtime.Time
	// Handle performs the processing side effects (filtering, counting,
	// forwarding) at processing-completion time. done returns the packet
	// buffer to the engine and MUST be called exactly once, immediately
	// or later (e.g. after the packet drains from a transmit ring).
	Handle(queue int, data []byte, ts vtime.Time, done func())
}

// QueueStats reports one queue's fate accounting. CaptureDrops come from
// the NIC ring (no ready descriptor / bus exhausted / injected NIC
// faults); DeliveryDrops are packets captured off the wire but lost
// before the application saw them (intermediate buffer overflow, or a
// backlog discarded when recovery quarantines a dead queue);
// CorruptDrops are frames rejected by integrity validation; and
// ReclaimDrops are packets discarded by emergency chunk reclamation
// under pool exhaustion. The four drop classes are disjoint: every lost
// packet is counted in exactly one.
type QueueStats struct {
	Received      uint64 // packets that reached host memory
	CaptureDrops  uint64
	DeliveryDrops uint64
	CorruptDrops  uint64 `json:",omitempty"`
	ReclaimDrops  uint64 `json:",omitempty"`
	Delivered     uint64 // packets handed to the application
}

// Total drops regardless of kind, the paper's comparison metric.
func (s QueueStats) TotalDrops() uint64 {
	return s.CaptureDrops + s.DeliveryDrops + s.CorruptDrops + s.ReclaimDrops
}

// Stats is an engine-wide snapshot.
type Stats struct {
	Engine   string
	PerQueue []QueueStats
}

// Totals sums the per-queue stats.
func (s Stats) Totals() QueueStats {
	var t QueueStats
	for _, q := range s.PerQueue {
		t.Received += q.Received
		t.CaptureDrops += q.CaptureDrops
		t.DeliveryDrops += q.DeliveryDrops
		t.CorruptDrops += q.CorruptDrops
		t.ReclaimDrops += q.ReclaimDrops
		t.Delivered += q.Delivered
	}
	return t
}

// DropRate returns total drops / total offered, the paper's metric. sent
// is the number of packets the generator offered to the wire.
func (s Stats) DropRate(sent uint64) float64 {
	if sent == 0 {
		return 0
	}
	return float64(s.Totals().TotalDrops()) / float64(sent)
}

// Engine is a packet capture engine bound to one NIC, delivering each
// queue's packets to a Handler.
type Engine interface {
	// Name identifies the engine in experiment output.
	Name() string
	// Stats snapshots drop/delivery accounting.
	Stats() Stats
}

// Thread models one packet-processing thread pinned to a core: it pulls
// packets from an engine-specific source, charges processing time on its
// server, and runs handler side effects at completion. The WireCAP engine
// in internal/core reuses it, which is why it is exported.
type Thread struct {
	sched   *vtime.Scheduler
	sv      *vtime.Server
	queue   int
	handler Handler
	// fetch returns the next packet, or ok == false when the thread
	// should block until kicked. release returns the packet's buffer to
	// the engine and may be nil.
	fetch  func() (data []byte, ts vtime.Time, release func(), ok bool)
	active bool

	// Fault-injection state: inj answers "is this thread crashed, stalled,
	// or slowed right now" (nil-safe, so well-behaved runs carry no
	// checks beyond one nil test). parked is true while the thread sits
	// out a stall window; resumeFn is the bound wake-up event.
	inj      *faults.Injector
	injNIC   int
	parked   bool
	resumeFn func()

	// Flight-recorder state: trace is nil-safe, traceEng names the
	// engine in the stage profile, traceNIC scopes Processed stamps.
	trace    *obs.Recorder
	traceEng string
	traceNIC int

	// In-flight packet state, parked here between the charge and its
	// completion event so the per-packet path allocates no closure. A
	// thread processes one packet at a time (it is a single core), so one
	// set of fields suffices.
	pendData    []byte
	pendTS      vtime.Time
	pendRelease func()
	completeFn  func()
}

// noRelease is the shared no-op release for fetches that hand out nil.
func noRelease() {}

// NewThread builds a processing thread. fetch supplies the next packet or
// reports that the thread should block until Kick.
func NewThread(sched *vtime.Scheduler, core *vtime.Core, queue int, h Handler,
	fetch func() ([]byte, vtime.Time, func(), bool)) *Thread {
	a := &Thread{
		sched:   sched,
		sv:      vtime.NewServer(sched, core),
		queue:   queue,
		handler: h,
		fetch:   fetch,
	}
	a.completeFn = a.complete
	a.resumeFn = a.resume
	return a
}

// SetFaults binds the thread to the run's fault injector (nil is fine)
// so consumer-side faults — slow, stalled, crashed handlers — apply.
// The queue the thread was built with addresses the fault.
func (a *Thread) SetFaults(inj *faults.Injector, nicID int) {
	a.inj = inj
	a.injNIC = nicID
}

// SetTrace binds the thread to the run's flight recorder (nil is fine):
// per-packet processing cost lands in the stage profile under the
// engine's name, and handler completions stamp the delivered packets'
// traces.
func (a *Thread) SetTrace(rec *obs.Recorder, engine string, nicID int) {
	a.trace = rec
	a.traceEng = engine
	a.traceNIC = nicID
}

// Kick wakes the thread if it is blocked; engines call it whenever new
// data may be available. A thread parked in a stall window stays parked
// (its wake-up event is already scheduled).
//
//wirecap:hotpath
func (a *Thread) Kick() {
	if a.active || a.parked {
		return
	}
	a.active = true
	a.step()
}

// Busy returns the thread's cumulative CPU time.
func (a *Thread) Busy() vtime.Time { return a.sv.Charged() }

// Working reports whether the thread is mid-charge on a packet right
// now. Recovery uses it to distinguish "slow but progressing" from
// "wedged": a crashed or parked thread is not working.
func (a *Thread) Working() bool { return a.active }

//wirecap:hotpath
func (a *Thread) step() {
	if a.inj != nil {
		if a.inj.HandlerCrashed(a.injNIC, a.queue) {
			// The thread is dead: never fetch again. The in-flight packet
			// (if any) already completed; everything behind it backs up.
			a.active = false
			return
		}
		if until, ok := a.inj.HandlerStalled(a.injNIC, a.queue); ok {
			a.active = false
			a.parked = true
			a.sched.At(until, a.resumeFn)
			return
		}
	}
	data, ts, release, ok := a.fetch()
	if !ok {
		a.active = false
		return
	}
	cost := a.handler.Cost(a.queue, data)
	if a.inj != nil {
		if f := a.inj.HandlerSlowdown(a.injNIC, a.queue); f > 1 {
			cost = vtime.Time(float64(cost) * f)
		}
	}
	if release == nil {
		release = noRelease
	}
	a.trace.StageCost(a.traceEng, a.queue, "process", cost)
	a.pendData, a.pendTS, a.pendRelease = data, ts, release
	a.sv.ChargeAndCall(cost, a.completeFn)
}

// resume runs at the end of a stall window and picks the backlog back up.
//
//wirecap:hotpath
func (a *Thread) resume() {
	a.parked = false
	a.active = true
	a.step()
}

// complete runs at processing-completion time: handler side effects, then
// the next fetch.
//
//wirecap:hotpath
func (a *Thread) complete() {
	data, ts, done := a.pendData, a.pendTS, a.pendRelease
	a.pendData, a.pendRelease = nil, nil
	a.handler.Handle(a.queue, data, ts, done)
	a.trace.Processed(a.traceNIC, a.queue, a.sched.Now())
	a.step()
}

// instr bundles the per-queue hot-path instruments every engine exports:
// packet copies (the paper's per-packet cost driver), syscall-shaped
// kernel crossings, and poll outcomes. Each field is a registered
// metrics.Counter, so updating one is a plain integer add — the receive
// path stays allocation-free.
type instr struct {
	copies      *metrics.Counter // packets copied between buffers
	copiedBytes *metrics.Counter // bytes moved by those copies
	syscalls    *metrics.Counter // charged kernel crossings (poll/ioctl/recv)
	pollsOK     *metrics.Counter // fetch attempts that produced a packet
	pollsEmpty  *metrics.Counter // fetch attempts that found nothing
}

// newInstr registers queue q's engine series on the NIC's registry. The
// engine label keeps different engines (and the same engine on different
// NICs) apart in one experiment-wide snapshot.
func newInstr(n *nic.NIC, engine string, queue int) instr {
	reg := n.Metrics()
	base := []metrics.Label{
		metrics.L("engine", engine),
		metrics.L("nic", strconv.Itoa(n.ID())),
		metrics.L("queue", strconv.Itoa(queue)),
	}
	withOutcome := func(outcome string) []metrics.Label {
		ls := make([]metrics.Label, len(base), len(base)+1)
		copy(ls, base)
		return append(ls, metrics.L("outcome", outcome))
	}
	return instr{
		copies:      reg.Counter("engine_copies_total", base...),
		copiedBytes: reg.Counter("engine_copied_bytes_total", base...),
		syscalls:    reg.Counter("engine_syscalls_total", base...),
		pollsOK:     reg.Counter("engine_polls_total", withOutcome("ok")...),
		pollsEmpty:  reg.Counter("engine_polls_total", withOutcome("empty")...),
	}
}

// armPrivate fills every descriptor of a ring with engine-private buffers
// sized for a full frame.
func armPrivate(r *nic.RxRing) [][]byte {
	bufs := make([][]byte, r.Size())
	for i := range bufs {
		bufs[i] = make([]byte, 2048)
		r.Refill(i, bufs[i])
	}
	return bufs
}
