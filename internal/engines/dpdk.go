package engines

import (
	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/vtime"
)

// DPDK models an Intel-DPDK-style packet I/O framework (paper §6): packet
// buffer pools (mempools) allocated in user space, descriptors re-armed
// from the mempool so buffering capacity is the mempool size rather than
// the ring size, run-to-completion polling by the application thread
// itself, and zero-copy mbuf hand-off.
//
// DPDK "does not provide an offloading mechanism as WireCAP. To avoid
// packet drops, a DPDK-based application must implement an offloading
// mechanism in the application layer." The AppOffload option models
// exactly that: the application thread re-steers packet references to the
// least-loaded peer's software ring (rte_ring style), paying per-packet
// steering and synchronization costs — versus WireCAP's chunk-granular
// engine-level offload, which amortizes those costs over M packets. The
// future-work comparison the paper calls for lives in
// bench.ExtensionDPDK.
type DPDK struct {
	sched  *vtime.Scheduler
	n      *nic.NIC
	costs  CostModel
	h      Handler
	queues []*dpdkQueue

	appOffload   bool
	thresholdPct int
}

// DPDKConfig tunes the engine.
type DPDKConfig struct {
	// MempoolSize is the per-queue mbuf count (buffering capacity).
	// Default 25,600, matching WireCAP-B-(256,100).
	MempoolSize int
	// AppOffload enables application-layer software steering to peer
	// threads' software rings.
	AppOffload bool
	// ThresholdPct is the software-steering trigger, as a percentage of
	// MempoolSize of outstanding work. Default 60.
	ThresholdPct int
	// SteerCost is charged to the donor thread per re-steered packet
	// (hashing + rte_ring multi-producer enqueue). Default 150 ns.
	SteerCost vtime.Time
	// SyncCost is charged to the receiver per dequeued packet. Default
	// 100 ns.
	SyncCost vtime.Time
	// PollCost is the rx_burst cost per polled packet. Default 15 ns.
	PollCost vtime.Time
}

type dpdkMbuf struct {
	data  []byte
	n     int
	ts    vtime.Time
	owner *dpdkQueue // mempool the buffer returns to when freed
	tid   int32      // flight-recorder token; 0 when the packet is untraced
}

type dpdkQueue struct {
	e     *DPDK
	queue int
	ring  *nic.RxRing
	sv    *vtime.Server

	// mempool accounting: free mbufs available for re-arming.
	free    int
	mbufs   [][]byte // spare buffers for re-arming
	starved []int    // descriptors awaiting mbufs

	// rxq holds mbufs pulled off the hardware ring by rx_burst, awaiting
	// processing or steering; swq is the software ring peers steer
	// packets into.
	rxq []dpdkMbuf
	swq []dpdkMbuf

	tail     int
	consumed uint64 // packets polled off the hardware ring so far
	steered  uint64 // packets re-steered to peers (app offloading)
	active   bool
	stats    QueueStats
	instr    instr

	steerCost, syncCost, pollCost vtime.Time
	threshold                     int

	trace     *obs.Recorder
	traceName string
	nicID     int
}

// NewDPDK builds the engine on every queue of n.
func NewDPDK(sched *vtime.Scheduler, n *nic.NIC, costs CostModel, h Handler, cfg DPDKConfig) *DPDK {
	if cfg.MempoolSize <= 0 {
		cfg.MempoolSize = 25600
	}
	if cfg.ThresholdPct <= 0 {
		cfg.ThresholdPct = 60
	}
	if cfg.SteerCost == 0 {
		cfg.SteerCost = 150 * vtime.Nanosecond
	}
	if cfg.SyncCost == 0 {
		cfg.SyncCost = 100 * vtime.Nanosecond
	}
	if cfg.PollCost == 0 {
		cfg.PollCost = 15 * vtime.Nanosecond
	}
	e := &DPDK{
		sched: sched, n: n, costs: costs, h: h,
		appOffload: cfg.AppOffload, thresholdPct: cfg.ThresholdPct,
	}
	for qi := 0; qi < n.RxQueues(); qi++ {
		q := &dpdkQueue{
			e: e, queue: qi, ring: n.Rx(qi),
			sv:        vtime.NewServer(sched, nil),
			steerCost: cfg.SteerCost, syncCost: cfg.SyncCost, pollCost: cfg.PollCost,
			threshold: cfg.ThresholdPct * cfg.MempoolSize / 100,
			instr:     newInstr(n, e.Name(), qi),
			trace:     n.Trace(), traceName: e.Name(), nicID: n.ID(),
		}
		armPrivate(q.ring)
		// The ring's descriptors hold ring-size mbufs; the rest of the
		// mempool is spare.
		q.free = cfg.MempoolSize - q.ring.Size()
		if q.free < 0 {
			q.free = 0
		}
		q.ring.OnRx(func(int) { q.kick() })
		e.queues = append(e.queues, q)
	}
	return e
}

// Name implements Engine.
func (e *DPDK) Name() string {
	if e.appOffload {
		return "DPDK+app-offload"
	}
	return "DPDK"
}

//wirecap:hotpath
func (q *dpdkQueue) kick() {
	if q.active {
		return
	}
	q.active = true
	q.step()
}

// backlog is the thread's outstanding work: pulled-but-unprocessed mbufs,
// its software ring, and anything still sitting in the hardware ring.
func (q *dpdkQueue) backlog() int {
	ringBacklog := int(q.ring.Stats().Received - q.consumed)
	return ringBacklog + len(q.rxq) + len(q.swq)
}

// pullBurst is rx_burst: it moves every used descriptor into the local
// rxq (bounded by mbuf supply), re-arming descriptors from the mempool as
// it goes, and charges the per-packet poll cost. This is what decouples
// the hardware ring from the processing rate — DPDK's buffering capacity
// is the mempool, not the ring.
//
//wirecap:hotpath
func (q *dpdkQueue) pullBurst() {
	pulled := 0
	for {
		d := q.ring.Desc(q.tail)
		if d.State != nic.DescUsed {
			break
		}
		idx := q.tail
		q.tail = (q.tail + 1) % q.ring.Size()
		q.consumed++
		// The descriptor is re-armed immediately, so a traced packet's
		// identity rides the mbuf as a token until it is processed.
		tid := q.trace.DescClaim(q.nicID, q.queue, idx, q.e.sched.Now())
		q.rxq = append(q.rxq, dpdkMbuf{data: d.Buf, n: d.Len, ts: d.TS, owner: q, tid: tid}) //wirelint:allow hotpath burst queue reaches steady-state capacity; bounded by mempool size
		q.rearm(idx)
		pulled++
	}
	if pulled > 0 {
		q.instr.pollsOK.Inc()
		q.trace.StageCost(q.traceName, q.queue, "poll", vtime.Time(pulled)*q.pollCost)
		q.sv.Charge(vtime.Time(pulled) * q.pollCost)
	} else {
		q.instr.pollsEmpty.Inc()
	}
}

// step is the worker loop: pull a burst, steer if overloaded, then
// process one packet (peers' steered work first, rte_ring style).
//
//wirecap:hotpath
func (q *dpdkQueue) step() {
	q.pullBurst()
	// Application-layer offloading: above the backlog threshold, steer a
	// packet to the least-loaded peer's software ring, paying the
	// per-packet steering cost instead of the processing cost.
	if q.e.appOffload && len(q.rxq) > 0 && q.backlog() > q.threshold {
		target := q
		for _, p := range q.e.queues {
			if p.backlog() < target.backlog() {
				target = p
			}
		}
		if target != q {
			m := q.rxq[0]
			copy(q.rxq, q.rxq[1:])
			q.rxq = q.rxq[:len(q.rxq)-1]
			q.steered++
			q.trace.StageCost(q.traceName, q.queue, "steer", q.steerCost)
			q.sv.ChargeAndCall(q.steerCost, func() { //wirelint:allow hotpath app-offload steering path; closure must capture the steered mbuf
				target.swq = append(target.swq, m) //wirelint:allow hotpath software ring reaches steady-state capacity after warm-up
				target.kick()
				q.step()
			})
			return
		}
	}
	var m dpdkMbuf
	var sync vtime.Time
	switch {
	case len(q.swq) > 0:
		m = q.swq[0]
		copy(q.swq, q.swq[1:])
		q.swq = q.swq[:len(q.swq)-1]
		sync = q.syncCost
	case len(q.rxq) > 0:
		m = q.rxq[0]
		copy(q.rxq, q.rxq[1:])
		q.rxq = q.rxq[:len(q.rxq)-1]
	default:
		q.active = false
		return
	}
	q.stats.Delivered++
	q.trace.IDDeliver(m.tid, q.e.sched.Now())
	cost := sync + q.e.h.Cost(q.queue, m.data[:m.n])
	q.trace.StageCost(q.traceName, q.queue, "process", cost)
	q.sv.ChargeAndCall(cost, func() { //wirelint:allow hotpath models DPDK per-packet processing; simulator charges cost in vtime
		q.e.h.Handle(q.queue, m.data[:m.n], m.ts, func() { m.owner.freeMbuf(m.data) }) //wirelint:allow hotpath release must capture the mbuf for zero-copy handoff to TX
		q.trace.IDProcessed(m.tid, q.e.sched.Now())
		q.step()
	})
}

// rearm gives descriptor idx a fresh mbuf from the mempool.
//
//wirecap:hotpath
func (q *dpdkQueue) rearm(idx int) {
	if n := len(q.mbufs); n > 0 {
		buf := q.mbufs[n-1]
		q.mbufs = q.mbufs[:n-1]
		q.ring.Refill(idx, buf)
		return
	}
	if q.free > 0 {
		q.free--
		q.ring.Refill(idx, make([]byte, 2048)) //wirelint:allow hotpath mempool is populated lazily up to its fixed budget
		return
	}
	q.ring.Invalidate(idx)
	q.starved = append(q.starved, idx) //wirelint:allow hotpath starved list is bounded by ring size; backing array is reused
}

// freeMbuf returns a consumed buffer to the mempool, re-arming a starved
// descriptor if one is waiting.
//
//wirecap:hotpath
func (q *dpdkQueue) freeMbuf(buf []byte) {
	if len(q.starved) > 0 {
		idx := q.starved[0]
		q.starved = q.starved[1:]
		q.ring.Refill(idx, buf[:cap(buf)])
		return
	}
	q.mbufs = append(q.mbufs, buf[:cap(buf)]) //wirelint:allow hotpath mempool free list is bounded by the mempool budget
}

// QueueBusy returns the cumulative CPU time queue q's thread has
// consumed (processing + steering + sync).
func (e *DPDK) QueueBusy(q int) vtime.Time { return e.queues[q].sv.Charged() }

// Steered returns how many packets queue q's thread re-steered to peers.
func (e *DPDK) Steered(q int) uint64 { return e.queues[q].steered }

// Stats implements Engine.
func (e *DPDK) Stats() Stats {
	s := Stats{Engine: e.Name()}
	for _, q := range e.queues {
		qs := q.stats
		rs := q.ring.Stats()
		qs.Received = rs.Received
		qs.CaptureDrops = rs.Drops()
		s.PerQueue = append(s.PerQueue, qs)
	}
	return s
}
