package engines

import (
	"testing"

	"repro/internal/nic"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// testHandler is a fixed-cost packet consumer with optional deferred
// completion (to exercise forwarding-style buffer retention).
type testHandler struct {
	cost      vtime.Time
	processed uint64
	bytes     uint64
	deferred  []func() // done callbacks held when deferDone is set
	deferDone bool
}

func (h *testHandler) Cost(int, []byte) vtime.Time { return h.cost }

func (h *testHandler) Handle(q int, data []byte, ts vtime.Time, done func()) {
	h.processed++
	h.bytes += uint64(len(data))
	if h.deferDone {
		h.deferred = append(h.deferred, done)
		return
	}
	done()
}

// runConstant drives P 60-byte packets at wire rate into a 1-queue NIC
// captured by the engine mk builds, and returns the engine and handler.
func runConstant(t *testing.T, p uint64, cost vtime.Time,
	mk func(*vtime.Scheduler, *nic.NIC, Handler) Engine) (Engine, *testHandler, *trace.DriveStats) {
	t.Helper()
	sched := vtime.NewScheduler()
	n := nic.New(sched, nic.Config{ID: 0, RxQueues: 1, RingSize: 1024, Promiscuous: true})
	h := &testHandler{cost: cost}
	e := mk(sched, n, h)
	src := trace.NewConstantRate(trace.ConstantRateConfig{Packets: p})
	st := trace.Drive(sched, n, src, nil)
	sched.Run()
	return e, h, st
}

func TestDNACapturesWireRateNoLoad(t *testing.T) {
	// x=0 equivalent: processing far faster than the wire.
	e, h, st := runConstant(t, 20000, 10*vtime.Nanosecond,
		func(s *vtime.Scheduler, n *nic.NIC, h Handler) Engine { return NewDNA(s, n, DefaultCosts(), h) })
	if st.Sent != 20000 || h.processed != 20000 {
		t.Fatalf("sent %d processed %d", st.Sent, h.processed)
	}
	if drops := e.Stats().Totals().TotalDrops(); drops != 0 {
		t.Fatalf("drops = %d", drops)
	}
}

func TestNETMAPCapturesWireRateNoLoad(t *testing.T) {
	e, h, _ := runConstant(t, 20000, 10*vtime.Nanosecond,
		func(s *vtime.Scheduler, n *nic.NIC, h Handler) Engine { return NewNETMAP(s, n, DefaultCosts(), h) })
	if h.processed != 20000 {
		t.Fatalf("processed %d", h.processed)
	}
	if drops := e.Stats().Totals().TotalDrops(); drops != 0 {
		t.Fatalf("drops = %d", drops)
	}
}

func TestTypeIILimitedBuffering(t *testing.T) {
	// Heavy load: the consumer is far slower than the wire, so only about
	// ring-size packets survive a burst. P = 5000 against a 1,024 ring.
	cost := 25744 * vtime.Nanosecond // x=300 handler
	e, h, st := runConstant(t, 5000, cost,
		func(s *vtime.Scheduler, n *nic.NIC, h Handler) Engine { return NewDNA(s, n, DefaultCosts(), h) })
	stats := e.Stats().Totals()
	if stats.CaptureDrops == 0 {
		t.Fatal("no capture drops despite overload burst")
	}
	if stats.DeliveryDrops != 0 {
		t.Fatal("Type-II engine reported delivery drops")
	}
	// Everything that reached host memory must be processed, eventually.
	if h.processed != stats.Received {
		t.Fatalf("processed %d != received %d", h.processed, stats.Received)
	}
	if got := stats.Received + stats.CaptureDrops; got != st.Sent {
		t.Fatalf("conservation: received %d + drops %d != sent %d",
			stats.Received, stats.CaptureDrops, st.Sent)
	}
	// DNA's surviving share of a burst is roughly ring + rate-share.
	if stats.Received < 1024 {
		t.Fatalf("received %d < ring size", stats.Received)
	}
}

func TestNETMAPWorseThanDNAUnderBursts(t *testing.T) {
	// The batch-release behaviour must cost NETMAP more drops than DNA on
	// the same bursty overload (paper Table 1, queue 3).
	cost := 25744 * vtime.Nanosecond
	run := func(mk func(*vtime.Scheduler, *nic.NIC, Handler) Engine) uint64 {
		e, _, _ := runConstant(t, 20000, cost, mk)
		return e.Stats().Totals().CaptureDrops
	}
	dna := run(func(s *vtime.Scheduler, n *nic.NIC, h Handler) Engine { return NewDNA(s, n, DefaultCosts(), h) })
	nm := run(func(s *vtime.Scheduler, n *nic.NIC, h Handler) Engine { return NewNETMAP(s, n, DefaultCosts(), h) })
	if nm < dna {
		t.Fatalf("NETMAP drops %d < DNA drops %d", nm, dna)
	}
}

func TestPFRingCopyLimitsCaptureRate(t *testing.T) {
	// Even with a fast consumer, the per-packet kernel copy (~90 ns for
	// 60 B) cannot keep up with the 67.2 ns wire interval: capture drops.
	e, _, st := runConstant(t, 50000, 10*vtime.Nanosecond,
		func(s *vtime.Scheduler, n *nic.NIC, h Handler) Engine {
			return NewPFRing(s, n, DefaultCosts(), h, 10240)
		})
	stats := e.Stats().Totals()
	rate := float64(stats.CaptureDrops) / float64(st.Sent)
	if rate < 0.10 || rate > 0.50 {
		t.Fatalf("PF_RING capture drop rate = %.2f, want 0.10..0.50", rate)
	}
}

func TestPFRingDeliveryDropsUnderHeavyLoad(t *testing.T) {
	// Slow consumer at sub-copy-rate arrivals: the kernel captures
	// everything, the pf_ring overflows: delivery drops, no capture
	// drops. Offer 100k packets at 200 kp/s against a 38.8 kp/s consumer.
	sched := vtime.NewScheduler()
	n := nic.New(sched, nic.Config{ID: 0, RxQueues: 1, RingSize: 1024, Promiscuous: true})
	h := &testHandler{cost: 25744 * vtime.Nanosecond}
	e := NewPFRing(sched, n, DefaultCosts(), h, 10240)
	src := trace.NewConstantRate(trace.ConstantRateConfig{
		Packets:     100000,
		LineRateBps: 200000 * 84 * 8, // 200 kp/s of 64-byte frames
	})
	st := trace.Drive(sched, n, src, nil)
	sched.Run()
	stats := e.Stats().Totals()
	if stats.DeliveryDrops == 0 {
		t.Fatalf("no delivery drops: %+v", stats)
	}
	if stats.CaptureDrops > st.Sent/100 {
		t.Fatalf("unexpected capture drops %d", stats.CaptureDrops)
	}
	if stats.Received+stats.CaptureDrops != st.Sent {
		t.Fatal("conservation violated")
	}
	if h.processed+stats.DeliveryDrops != stats.Received {
		t.Fatalf("processed %d + delivery drops %d != received %d",
			h.processed, stats.DeliveryDrops, stats.Received)
	}
}

func TestPFRingLivelockSlowsApplication(t *testing.T) {
	// With kernel polling on the app core, the app's effective rate under
	// copy pressure must fall below its nominal rate.
	sched := vtime.NewScheduler()
	n := nic.New(sched, nic.Config{ID: 0, RxQueues: 1, RingSize: 1024, Promiscuous: true})
	h := &testHandler{cost: 25744 * vtime.Nanosecond}
	NewPFRing(sched, n, DefaultCosts(), h, 10240)
	// Wire-rate input for 0.1 s: kernel copies consume > 100% of a core.
	src := trace.NewConstantRate(trace.ConstantRateConfig{Packets: 1488000 / 10})
	trace.Drive(sched, n, src, nil)
	sched.RunUntil(100 * vtime.Millisecond)
	nominal := uint64(100 * vtime.Millisecond / (25744 * vtime.Nanosecond))
	if h.processed >= nominal*95/100 {
		t.Fatalf("no livelock: processed %d of nominal %d in window", h.processed, nominal)
	}
	sched.Run() // drain to completion for cleanliness
}

func TestRawSocketFarSlowerThanPFRing(t *testing.T) {
	cost := vtime.Nanosecond // infinitely fast app isolates engine cost
	run := func(mk func(*vtime.Scheduler, *nic.NIC, Handler) Engine) float64 {
		e, _, st := runConstant(t, 30000, cost, mk)
		return e.Stats().DropRate(st.Sent)
	}
	pf := run(func(s *vtime.Scheduler, n *nic.NIC, h Handler) Engine {
		return NewPFRing(s, n, DefaultCosts(), h, 10240)
	})
	raw := run(func(s *vtime.Scheduler, n *nic.NIC, h Handler) Engine {
		return NewRawSocket(s, n, DefaultCosts(), h)
	})
	if raw <= pf {
		t.Fatalf("PF_PACKET drop rate %.2f <= PF_RING %.2f", raw, pf)
	}
	if raw < 0.9 {
		t.Fatalf("PF_PACKET drop rate %.2f unexpectedly low at wire rate", raw)
	}
}

func TestPSIOECapturesLightLoad(t *testing.T) {
	e, h, st := runConstant(t, 20000, 10*vtime.Nanosecond,
		func(s *vtime.Scheduler, n *nic.NIC, h Handler) Engine { return NewPSIOE(s, n, DefaultCosts(), h) })
	stats := e.Stats().Totals()
	// The user-space copy costs ~90 ns/packet at wire rate: PSIOE cannot
	// quite keep up with 64-byte wire speed either.
	if h.processed == 0 {
		t.Fatal("nothing processed")
	}
	if stats.Received+stats.CaptureDrops != st.Sent {
		t.Fatal("conservation violated")
	}
}

func TestPSIOELimitedBufferingUnderHeavyLoad(t *testing.T) {
	cost := 25744 * vtime.Nanosecond
	e, h, st := runConstant(t, 20000, cost,
		func(s *vtime.Scheduler, n *nic.NIC, h Handler) Engine { return NewPSIOE(s, n, DefaultCosts(), h) })
	stats := e.Stats().Totals()
	if stats.CaptureDrops == 0 {
		t.Fatal("no capture drops despite heavy load burst")
	}
	// PSIOE buffers ring + user buffer: the burst survivors are bounded.
	maxSurvivors := uint64(1024 + PSIOEBufferSlots + 4096)
	if h.processed > maxSurvivors {
		t.Fatalf("processed %d exceeds buffering bound %d", h.processed, maxSurvivors)
	}
	if stats.Received+stats.CaptureDrops != st.Sent {
		t.Fatal("conservation violated")
	}
}

func TestDeferredDoneHoldsTypeIIDescriptors(t *testing.T) {
	// When the handler defers done (forwarding), DNA must not reuse the
	// descriptor until done is called: with every done deferred, at most
	// ring-size packets are ever delivered.
	sched := vtime.NewScheduler()
	n := nic.New(sched, nic.Config{ID: 0, RxQueues: 1, RingSize: 64, Promiscuous: true})
	h := &testHandler{cost: 10 * vtime.Nanosecond, deferDone: true}
	e := NewDNA(sched, n, DefaultCosts(), h)
	src := trace.NewConstantRate(trace.ConstantRateConfig{Packets: 1000})
	trace.Drive(sched, n, src, nil)
	sched.Run()
	if h.processed > 64 {
		t.Fatalf("delivered %d > ring size with all buffers held", h.processed)
	}
	// Releasing the buffers lets capture resume on new traffic.
	for _, done := range h.deferred {
		done()
	}
	h.deferred = nil
	src2 := trace.NewConstantRate(trace.ConstantRateConfig{Packets: 32, Start: sched.Now()})
	trace.Drive(sched, n, src2, nil)
	sched.Run()
	if h.processed < 64+32 {
		t.Fatalf("capture did not resume after release: %d", h.processed)
	}
	_ = e
}

func TestHandlerCostCalibration(t *testing.T) {
	m := DefaultCosts()
	c := m.HandlerCost(300)
	rate := 1 / c.Seconds()
	if rate < 38500 || rate > 39200 {
		t.Fatalf("x=300 rate = %.0f p/s, want ~38,844", rate)
	}
	if m.HandlerCost(0) > 67*vtime.Nanosecond {
		t.Fatalf("x=0 cost %v cannot keep wire rate", m.HandlerCost(0))
	}
}

func TestStatsTotalsAndDropRate(t *testing.T) {
	s := Stats{PerQueue: []QueueStats{
		{Received: 10, CaptureDrops: 2, DeliveryDrops: 1, Delivered: 9},
		{Received: 5, CaptureDrops: 3, DeliveryDrops: 0, Delivered: 5},
	}}
	tot := s.Totals()
	if tot.Received != 15 || tot.TotalDrops() != 6 || tot.Delivered != 14 {
		t.Fatalf("totals = %+v", tot)
	}
	if got := s.DropRate(20); got != 0.3 {
		t.Fatalf("DropRate = %v", got)
	}
	if got := s.DropRate(0); got != 0 {
		t.Fatalf("DropRate(0) = %v", got)
	}
}
