// Package fleet scales the single-host capture stack to a resilient
// capture fleet: H hosts tap the same wire, a flow-consistent steering
// layer (Toeplitz hash + host-level indirection table, the same
// machinery commodity NICs use for queues) assigns every flow to
// exactly one host, and a loss-accounted aggregation plane merges the
// per-host capture streams into one globally ordered feed.
//
// The package is the promotion of the PR 6 bench fleet harness into a
// real subsystem, built around three invariants:
//
//   - Conservation. Every packet a host records into an aggregation
//     batch is accounted for exactly once at drain:
//     FleetReceived == Aggregated + HostLost + InFlightDropped.
//     Mailbox delivery is reliable, so the only loss points are host
//     crashes (open batch + unsent link queue, state loss), the bounded
//     link retry/backoff giving up, and the aggregator rejecting
//     packets staler than the emitted frontier — each counted where it
//     happens. Run returns an error if the books do not balance.
//
//   - Placement independence. Hosts are logical domains of the
//     conservative parallel executive (internal/vtime/domain); the
//     aggregator lives in domain 0. Reports — including the
//     order-sensitive feed ledger — are byte-identical for every
//     Domains/Workers setting.
//
//   - Order-preserving failover. Steering rewrites are broadcast as a
//     deterministic op log applied by every replica at the same virtual
//     time, so a failover moves each flow to exactly one new host and
//     the merged feed keeps per-flow order (gaps where packets were
//     lost, never inversions).
//
// Degradation is graceful and measured: per-host health scoring at the
// aggregator drives quarantine and re-steer; restarted hosts are
// readmitted after a hello handshake; an overloaded or partitioned
// aggregation link sheds analytics messages before capture batches.
package fleet

import (
	"encoding/json"
	"fmt"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/vtime"
)

// Config sizes a fleet run. Zero values take the documented defaults.
type Config struct {
	// Hosts is the number of capture hosts (default 4).
	Hosts int
	// Packets is the total offered frame count fleet-wide (default
	// 20_000), Flows the distinct flow population (default 256), and
	// PacketsPerSec the offered rate (default 1e6).
	Packets       uint64
	Flows         int
	PacketsPerSec float64
	// Seed drives the traffic stream and nothing else.
	Seed uint64

	// CaptureCost is the per-packet host processing budget (default
	// 400ns); HostBrownout multiplies it. BacklogCap bounds how far a
	// host may fall behind before it sheds at capture (default 50µs).
	CaptureCost vtime.Time
	BacklogCap  vtime.Time

	// BatchPackets closes an aggregation batch by count (default 32);
	// FlushInterval closes a non-empty batch by age (default 200µs).
	BatchPackets  int
	FlushInterval vtime.Time

	// LinkLatency is the host->aggregator mailbox latency, CtrlLatency
	// the aggregator->host control latency (defaults 20µs each; both are
	// conservative-lookahead sources for the parallel executive).
	LinkLatency vtime.Time
	CtrlLatency vtime.Time
	// LinkBytesPerSec / LinkBurst / MsgOverhead parameterize each host's
	// aggregation-link token bucket (internal/bus): defaults 400 MB/s,
	// 64 KB burst, 64 B per-message overhead. Zero LinkBytesPerSec means
	// an unlimited link.
	LinkBytesPerSec float64
	LinkBurst       int
	MsgOverhead     int

	// BackoffBase is the first retry delay after a failed send; attempt
	// n waits min(BackoffBase << (n-1), BackoffMax). The schedule is
	// jitter-free: deterministic replay is worth more to this simulator
	// than decorrelating retries. MaxAttempts bounds the retries per
	// batch before it is dropped as InFlightDropped. Defaults: 50µs,
	// 3.2ms, 8.
	BackoffBase vtime.Time
	BackoffMax  vtime.Time
	MaxAttempts int
	// SoftCap is the pending-queue depth beyond which the host enters
	// degraded mode and sheds analytics (default 4); HardCap is the
	// depth at which the oldest capture batch is dropped (default 16).
	SoftCap int
	HardCap int

	// AnalyticsEvery emits one analytics summary per that many captured
	// packets (default 256; 0 disables).
	AnalyticsEvery uint64

	// SuspectAfter is how long a host may stay silent — while other
	// hosts are heard from — before each further arrival scores a
	// health strike against it (default 1ms). QuarantineScore strikes
	// quarantine it (default 3). HelloReadmit post-restart hellos,
	// HelloInterval apart, readmit it (defaults 3, 500µs).
	SuspectAfter    vtime.Time
	QuarantineScore int
	HelloInterval   vtime.Time
	HelloReadmit    int

	// Faults is the fleet-wide chaos schedule: Event.NIC names the host
	// (host h's NIC has ID h). Each host installs its own slice of the
	// schedule on its own injector, seeded SplitSeed(FaultSeed, host).
	Faults    faults.Schedule
	FaultSeed uint64

	// Domains is the execution domain count (default 1), Workers the
	// in-window parallelism bound — pure placement, never observable.
	Domains int
	Workers int

	// CollectFeed keeps the merged feed in memory on the Result for
	// property tests. Off for gate runs (the ledger digest stands in).
	CollectFeed bool
	// Traced attaches flight recorders (pure observers) to every host
	// and the aggregator; Result.Actions then carries the control-plane
	// action log.
	Traced bool
	// HealthInterval is the health time-series sampling interval
	// (default 250µs) and the forensics-ledger bucket width;
	// HealthMaxIntervals bounds the per-lane delta ring (default 4096).
	// Both only matter when Traced.
	HealthInterval     vtime.Time
	HealthMaxIntervals int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Hosts <= 0 {
		c.Hosts = 4
	}
	if c.Packets == 0 {
		c.Packets = 20_000
	}
	if c.Flows <= 0 {
		c.Flows = 256
	}
	if c.PacketsPerSec == 0 {
		c.PacketsPerSec = 1e6
	}
	if c.CaptureCost == 0 {
		c.CaptureCost = 400 * vtime.Nanosecond
	}
	if c.BacklogCap == 0 {
		c.BacklogCap = 50 * vtime.Microsecond
	}
	if c.BatchPackets <= 0 {
		c.BatchPackets = 32
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = 200 * vtime.Microsecond
	}
	if c.LinkLatency == 0 {
		c.LinkLatency = 20 * vtime.Microsecond
	}
	if c.CtrlLatency == 0 {
		c.CtrlLatency = 20 * vtime.Microsecond
	}
	if c.LinkBytesPerSec == 0 {
		c.LinkBytesPerSec = 400e6
	}
	if c.LinkBurst == 0 {
		c.LinkBurst = 64 * 1024
	}
	if c.MsgOverhead == 0 {
		c.MsgOverhead = 64
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 50 * vtime.Microsecond
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = 3200 * vtime.Microsecond
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 8
	}
	if c.SoftCap == 0 {
		c.SoftCap = 4
	}
	if c.HardCap == 0 {
		c.HardCap = 16
	}
	if c.AnalyticsEvery == 0 {
		c.AnalyticsEvery = 256
	}
	if c.SuspectAfter == 0 {
		c.SuspectAfter = vtime.Millisecond
	}
	if c.QuarantineScore == 0 {
		c.QuarantineScore = 3
	}
	if c.HelloInterval == 0 {
		c.HelloInterval = 500 * vtime.Microsecond
	}
	if c.HelloReadmit == 0 {
		c.HelloReadmit = 3
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = 250 * vtime.Microsecond
	}
	if c.HealthMaxIntervals == 0 {
		c.HealthMaxIntervals = 4096
	}
	return c
}

// Packet is one captured record in the aggregation plane.
type Packet struct {
	Host    int            `json:"host"`
	Flow    packet.FlowKey `json:"-"`
	FlowSeq uint64         `json:"flow_seq"`
	Seq     uint64         `json:"seq"` // per-host capture sequence
	TS      vtime.Time     `json:"ts"`
	Len     int            `json:"len"`
}

// msgKind discriminates aggregation-link messages.
type msgKind uint8

const (
	msgBatch msgKind = iota
	msgAnalytics
	msgHello
)

// aggMsg is one host->aggregator mailbox message.
type aggMsg struct {
	kind        msgKind
	host        int
	incarnation int
	pkts        []Packet   // msgBatch
	watermark   vtime.Time // msgBatch: max capture TS in the batch
	processed   uint64     // msgAnalytics: host lifetime capture count
}

// HostReport is one host's contribution to the fleet books.
type HostReport struct {
	Host            int    `json:"host"`
	Offered         uint64 `json:"offered"`
	WireDropped     uint64 `json:"wire_dropped"`
	CaptureDropped  uint64 `json:"capture_dropped"`
	Received        uint64 `json:"received"`
	HostLost        uint64 `json:"host_lost"`
	InFlightDropped uint64 `json:"inflight_dropped"`
	// Aggregated and StaleRejected are the aggregator-side view of this
	// host's stream; Received == Aggregated + HostLost + InFlightDropped
	// + StaleRejected holds per host, not just fleet-wide.
	Aggregated     uint64 `json:"aggregated"`
	StaleRejected  uint64 `json:"stale_rejected"`
	Batches        uint64 `json:"batches"`
	Retries        uint64 `json:"retries"`
	AnalyticsSent  uint64 `json:"analytics_sent"`
	AnalyticsShed  uint64 `json:"analytics_shed"`
	Incarnations   int    `json:"incarnations"`
	DegradedEnters uint64 `json:"degraded_enters"`
}

// Report is the deterministic record of a fleet run. Identical configs
// produce byte-identical reports for every Domains/Workers setting.
type Report struct {
	Scenario string `json:"scenario"`
	Hosts    int    `json:"hosts"`

	// The conservation books. FleetSent is the offered frame count;
	// WireDropped fell at the wire of a dead host; CaptureDropped was
	// shed by an overloaded host before batching. FleetReceived counts
	// packets recorded into aggregation batches, and decomposes exactly
	// into Aggregated + HostLost + InFlightDropped.
	FleetSent       uint64 `json:"fleet_sent"`
	WireDropped     uint64 `json:"wire_dropped"`
	CaptureDropped  uint64 `json:"capture_dropped"`
	FleetReceived   uint64 `json:"fleet_received"`
	Aggregated      uint64 `json:"aggregated"`
	HostLost        uint64 `json:"host_lost"`
	InFlightDropped uint64 `json:"inflight_dropped"`
	// StaleRejected is the aggregator-side share of InFlightDropped
	// (already included in it): packets that arrived older than the
	// emitted frontier — typically a false-positive quarantine's backlog
	// landing after its flows were re-steered — and were rejected rather
	// than merged out of order.
	StaleRejected uint64 `json:"stale_rejected"`

	// Delivery is Aggregated / FleetSent — the fleet-level delivery
	// ratio the chaos scenarios gate (≥95% under the two-host-kill
	// storm).
	Delivery float64 `json:"delivery"`

	// LateMerges counts feed emissions that violated global order; the
	// watermark merge makes it structurally zero and the baselines pin
	// that.
	LateMerges uint64 `json:"late_merges"`

	// Control-plane activity.
	Quarantines  uint64 `json:"quarantines"`
	Readmissions uint64 `json:"readmissions"`
	ReSteers     uint64 `json:"resteers"`
	SteerMoves   uint64 `json:"steer_moves"`

	// Analytics plane (shed before capture under degradation).
	AnalyticsAggregated uint64 `json:"analytics_aggregated"`
	AnalyticsShed       uint64 `json:"analytics_shed"`

	Batches uint64     `json:"batches"`
	EndNs   vtime.Time `json:"end_ns"`

	// Ledger is the order-sensitive FNV-1a checksum of the merged feed:
	// it witnesses not just how many packets aggregated but their exact
	// global order.
	Ledger string `json:"ledger"`

	PerHost []HostReport     `json:"per_host"`
	Metrics metrics.Snapshot `json:"metrics"`
}

// Conserved reports whether the aggregation books balance exactly.
func (r Report) Conserved() bool {
	return r.FleetReceived == r.Aggregated+r.HostLost+r.InFlightDropped
}

// Digest is the report's stable fingerprint: FNV-1a over the compact
// JSON encoding, as bench.RunReport.Digest.
func (r Report) Digest() string {
	b, err := json.Marshal(r)
	if err != nil {
		panic(fmt.Sprintf("fleet: marshaling Report: %v", err))
	}
	h := newFNV()
	h.write(b)
	return h.sum()
}

// fnv is an incremental FNV-1a state (the ledger and digest hash).
type fnv struct{ h uint64 }

func newFNV() *fnv { return &fnv{h: 0xcbf29ce484222325} }

func (f *fnv) write(p []byte) {
	h := f.h
	for _, b := range p {
		h ^= uint64(b)
		h *= 0x100000001b3
	}
	f.h = h
}

func (f *fnv) writeString(s string) {
	h := f.h
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	f.h = h
}

func (f *fnv) sum() string { return fmt.Sprintf("%016x", f.h) }
