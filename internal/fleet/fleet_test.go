package fleet

import (
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/packet"
	"repro/internal/vtime"
)

// testConfig is a small, fast fleet sized so every test finishes in
// well under a second while still exercising batching, flushing, and
// the merge frontier.
func testConfig() Config {
	return Config{
		Hosts:       4,
		Packets:     12_000,
		Flows:       128,
		Seed:        7,
		CollectFeed: true,
	}
}

// crashSchedule is the canonical two-host-kill chaos storm used across
// the tests: one permanent kill, one crash-with-restart, and a link
// flap on a survivor.
func crashSchedule() faults.Schedule {
	return faults.Schedule{
		{Kind: faults.HostCrash, NIC: 1, At: 3 * vtime.Millisecond},
		{Kind: faults.HostCrash, NIC: 3, At: 5 * vtime.Millisecond, Dur: 3 * vtime.Millisecond},
		{Kind: faults.AggLinkDown, NIC: 2, At: 4 * vtime.Millisecond, Dur: 400 * vtime.Microsecond},
	}
}

func TestSteadyStateDeliversEverything(t *testing.T) {
	res, err := Run("steady", testConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	r := res.Report
	if r.FleetSent != 12_000 {
		t.Fatalf("FleetSent = %d, want 12000", r.FleetSent)
	}
	if r.WireDropped != 0 || r.CaptureDropped != 0 || r.HostLost != 0 || r.InFlightDropped != 0 {
		t.Fatalf("steady state dropped packets: %+v", r)
	}
	if r.Aggregated != r.FleetSent {
		t.Fatalf("Aggregated = %d, want %d", r.Aggregated, r.FleetSent)
	}
	if r.Delivery != 1 {
		t.Fatalf("Delivery = %v, want 1", r.Delivery)
	}
	if r.LateMerges != 0 {
		t.Fatalf("LateMerges = %d, want 0", r.LateMerges)
	}
	if r.Quarantines != 0 || r.ReSteers != 0 {
		t.Fatalf("steady state ran the control plane: %+v", r)
	}
	// Every host should have captured something: the steering table
	// spreads 128 flows over 4 hosts.
	for _, h := range r.PerHost {
		if h.Received == 0 {
			t.Errorf("host %d captured nothing", h.Host)
		}
	}
}

func TestFeedGloballyOrdered(t *testing.T) {
	cfg := testConfig()
	cfg.Faults = crashSchedule()
	res, err := Run("ordered", cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Feed) == 0 {
		t.Fatal("CollectFeed produced no feed")
	}
	var last vtime.Time
	for i, p := range res.Feed {
		if p.TS < last {
			t.Fatalf("feed[%d]: TS %d < previous %d", i, p.TS, last)
		}
		last = p.TS
	}
	if res.Report.LateMerges != 0 {
		t.Fatalf("LateMerges = %d, want 0", res.Report.LateMerges)
	}
}

// TestPerFlowOrderAcrossFailover is the order-preserving-failover
// property: after a crash re-steers a dead host's flows, the merged
// feed may have per-flow gaps (lost packets) but never inversions or
// duplicates — each flow's generator sequence numbers appear strictly
// increasing.
func TestPerFlowOrderAcrossFailover(t *testing.T) {
	cfg := testConfig()
	cfg.Faults = crashSchedule()
	res, err := Run("flow_order", cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Report.Quarantines == 0 {
		t.Fatal("schedule produced no quarantine; the property is vacuous")
	}
	lastSeq := make(map[packet.FlowKey]uint64)
	owners := make(map[packet.FlowKey]map[int]bool)
	for i, p := range res.Feed {
		if prev := lastSeq[p.Flow]; p.FlowSeq <= prev {
			t.Fatalf("feed[%d]: flow %v seq %d after %d (inversion or duplicate)",
				i, p.Flow, p.FlowSeq, prev)
		}
		lastSeq[p.Flow] = p.FlowSeq
		if owners[p.Flow] == nil {
			owners[p.Flow] = map[int]bool{}
		}
		owners[p.Flow][p.Host] = true
	}
	// The failover must actually have moved flows between hosts, or the
	// property was never stressed.
	moved := 0
	for _, hs := range owners {
		if len(hs) > 1 {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no flow was captured by more than one host; failover never engaged")
	}
}

func TestPlacementEquivalence(t *testing.T) {
	cfg := testConfig()
	cfg.CollectFeed = false
	cfg.Faults = crashSchedule()
	base, err := Run("placement", cfg)
	if err != nil {
		t.Fatalf("Run(domains=1): %v", err)
	}
	want := base.Report.Digest()
	for _, d := range []int{2, 4} {
		c := cfg
		c.Domains = d
		c.Workers = d
		res, err := Run("placement", c)
		if err != nil {
			t.Fatalf("Run(domains=%d): %v", d, err)
		}
		if got := res.Report.Digest(); got != want {
			t.Errorf("domains=%d digest %s != domains=1 digest %s\nbase: %+v\ngot:  %+v",
				d, got, want, base.Report, res.Report)
		}
	}
}

func TestCrashQuarantineAndReadmission(t *testing.T) {
	cfg := testConfig()
	cfg.Packets = 20_000 // ~20ms: room for crash, detection, restart, readmission
	cfg.Faults = faults.Schedule{
		{Kind: faults.HostCrash, NIC: 2, At: 3 * vtime.Millisecond, Dur: 4 * vtime.Millisecond},
	}
	cfg.Traced = true
	res, err := Run("readmit", cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	r := res.Report
	if r.Quarantines == 0 {
		t.Fatal("crash was never quarantined")
	}
	if r.Readmissions == 0 {
		t.Fatal("restarted host was never readmitted")
	}
	if r.PerHost[2].Incarnations != 1 {
		t.Fatalf("host 2 incarnations = %d, want 1", r.PerHost[2].Incarnations)
	}
	if r.LateMerges != 0 {
		t.Fatalf("LateMerges = %d, want 0 (readmission watermark floor failed)", r.LateMerges)
	}
	// After readmission the host must capture again: its wire books keep
	// growing past the restart.
	if got := r.PerHost[2].Received; got == 0 {
		t.Fatal("host 2 never captured after readmission")
	}
	// The trace carries the control-plane action log.
	kinds := map[string]int{}
	for _, a := range res.Record.Actions {
		kinds[a.Kind]++
	}
	for _, k := range []string{"fleet_host_crash", "fleet_host_restart", "fleet_quarantine", "fleet_resteer", "fleet_readmit", "fleet_restore"} {
		if kinds[k] == 0 {
			t.Errorf("trace has no %q action; got %v", k, kinds)
		}
	}
}

func TestPartitionShedsAnalyticsBeforeCapture(t *testing.T) {
	cfg := testConfig()
	cfg.Faults = faults.Schedule{
		{Kind: faults.AggLinkDown, NIC: 1, At: 2 * vtime.Millisecond, Dur: 2 * vtime.Millisecond},
	}
	res, err := Run("shed", cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	r := res.Report
	h := r.PerHost[1]
	if h.Retries == 0 {
		t.Fatal("partitioned host never retried")
	}
	if r.AnalyticsShed == 0 {
		t.Fatal("degraded host shed no analytics")
	}
	if h.DegradedEnters == 0 {
		t.Fatal("host never entered degraded mode")
	}
	// Graceful degradation: analytics dies first. If the partition cost
	// capture batches, it must have shed strictly more analytics traffic
	// relative to its plane's volume than capture lost; in this short
	// partition with generous retry budget, capture survives entirely.
	if h.InFlightDropped != 0 || h.HostLost != 0 {
		t.Fatalf("short partition lost capture data: %+v", h)
	}
}

func TestBrownoutShedsAtCapture(t *testing.T) {
	cfg := testConfig()
	cfg.Faults = faults.Schedule{
		{Kind: faults.HostBrownout, NIC: 0, At: 2 * vtime.Millisecond,
			Dur: 4 * vtime.Millisecond, Severity: 24},
	}
	res, err := Run("brownout", cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	h := res.Report.PerHost[0]
	if h.CaptureDropped == 0 {
		t.Fatalf("brownout host shed nothing at capture: %+v", h)
	}
	if res.Report.HostLost != 0 {
		t.Fatalf("brownout must not lose aggregation state: %+v", res.Report)
	}
}

// TestConservationUnderRandomChaos fuzzes the books: any schedule of
// host-level faults must leave FleetReceived exactly decomposed, unique
// ownership intact (Run errors otherwise), and the feed ordered.
func TestConservationUnderRandomChaos(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := testConfig()
			cfg.Packets = 8_000
			cfg.FaultSeed = seed
			cfg.Faults = faults.RandomSchedule(seed, faults.RandomConfig{
				NICs: cfg.Hosts, Events: 6,
				Horizon: 8 * vtime.Millisecond,
				MaxDur:  2 * vtime.Millisecond,
				Kinds: []faults.Kind{
					faults.HostCrash, faults.AggLinkDown, faults.HostBrownout,
				},
			})
			res, err := Run("random_chaos", cfg)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			lastSeq := make(map[packet.FlowKey]uint64)
			for i, p := range res.Feed {
				if prev := lastSeq[p.Flow]; p.FlowSeq <= prev {
					t.Fatalf("feed[%d]: flow seq %d after %d", i, p.FlowSeq, prev)
				}
				lastSeq[p.Flow] = p.FlowSeq
			}
		})
	}
}

func TestSteeringReSteerRestoreRoundTrip(t *testing.T) {
	s := NewSteering(4)
	before := make([]int, 0, 4)
	for h := 0; h < 4; h++ {
		before = append(before, s.Owned(h))
	}
	moved := s.Apply(SteerOp{Kind: OpReSteer, Host: 2, Healthy: []int{0, 1, 3}})
	if moved != before[2] {
		t.Fatalf("ReSteer moved %d entries, want %d", moved, before[2])
	}
	if s.Owned(2) != 0 {
		t.Fatalf("host 2 still owns %d entries after re-steer", s.Owned(2))
	}
	s.Apply(SteerOp{Kind: OpRestore, Host: 2})
	for h := 0; h < 4; h++ {
		if s.Owned(h) != before[h] {
			t.Fatalf("host %d owns %d after restore, want %d", h, s.Owned(h), before[h])
		}
	}
}

func TestGeneratorsAreReplicas(t *testing.T) {
	// Two hosts' generators with the same seed must emit bit-identical
	// streams — the foundation of the shared-wire model.
	collect := func() []frame {
		var out []frame
		sched := vtime.NewScheduler()
		flows := newFlowPool(42, 16)
		newGenerator(sched, 42, flows, 500, vtime.Microsecond, func(fr frame) {
			out = append(out, fr)
		})
		sched.Run()
		return out
	}
	a, b := collect(), collect()
	if len(a) != 500 || len(b) != 500 {
		t.Fatalf("generators emitted %d and %d frames, want 500", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("frame %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}
