package fleet

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/vtime"
	"repro/internal/vtime/domain"
)

// host is one capture box: it filters the shared offered stream through
// its private steering replica, batches what it owns, and ships batches
// to the aggregator over a rate-limited, fault-prone link with bounded
// deterministic retry/backoff. All state is per-incarnation where the
// model says a crash loses it.
type host struct {
	id     int
	cfg    *Config
	sched  *vtime.Scheduler
	inj    *faults.Injector
	steer  *Steering // private replica, updated only by control ops
	tx     *domain.Tx
	agg    *domain.Port // the aggregator's inbound port
	rec    *obs.Recorder
	health *obs.HealthSampler // nil unless traced; every method nil-safe

	// Capture state (lost on crash).
	busyUntil   vtime.Time
	batch       []Packet
	flushArmed  bool
	incarnation int
	capSeq      uint64 // per-host capture sequence, survives restarts
	sinceAnl    uint64

	// Link state.
	lbus       *bus.Bus
	pending    []outMsg
	attempt    int
	retryArmed bool
	degraded   bool

	// Books.
	offered        uint64
	wireDropped    uint64
	captureDropped uint64
	received       uint64
	hostLost       uint64
	inFlight       uint64 // InFlightDropped
	batches        uint64
	retries        uint64
	anlSent        uint64
	anlShed        uint64
	degradedEnters uint64
}

// outMsg is one queued (not yet transferred) aggregation-link message.
type outMsg struct {
	kind  msgKind
	pkts  []Packet
	bytes int
	proc  uint64
}

// helloBytes is the control datagram size charged to the link.
const helloBytes = 32

// analyticsBytes is the analytics summary size charged to the link.
const analyticsBytes = 256

func newHost(id int, cfg *Config, sched *vtime.Scheduler, steer *Steering, rec *obs.Recorder) *host {
	h := &host{
		id: id, cfg: cfg, sched: sched, steer: steer, rec: rec,
		lbus: bus.New(bus.Config{
			BytesPerSec:         cfg.LinkBytesPerSec,
			BurstBytes:          cfg.LinkBurst,
			PerTransferOverhead: cfg.MsgOverhead,
		}),
	}
	return h
}

// down reports whether the host is inside a crash window.
func (h *host) down() bool { return h.inj.HostDown(h.id) }

// offer is the shared stream's delivery point: every host sees every
// frame; only the steering owner captures it. Because all replicas are
// identical at every virtual instant, exactly one host counts each
// frame as offered.
func (h *host) offer(fr frame) {
	if h.steer.Host(fr.flow) != h.id {
		return
	}
	now := h.sched.Now()
	h.health.Observe(now)
	h.rec.JourneySteer(h.id, fr.flow, fr.flowSeq, now)
	h.offered++
	if h.down() || !h.inj.LinkUp(h.id) {
		h.wireDropped++
		h.rec.JourneyDrop(obs.DropLink, now)
		h.rec.DropN(obs.DropLink, h.id, -1, 1, now)
		return
	}
	// The capture budget: a host that cannot keep up (brownout, or just
	// re-steered load) falls behind until the backlog cap, then sheds at
	// capture — before the aggregation books open for the packet.
	if h.busyUntil < now {
		h.busyUntil = now
	}
	if h.busyUntil-now > h.cfg.BacklogCap {
		h.captureDropped++
		h.rec.JourneyDrop(obs.DropHostBrownoutShed, now)
		h.rec.DropN(obs.DropHostBrownoutShed, h.id, -1, 1, now)
		return
	}
	h.busyUntil += vtime.Time(float64(h.cfg.CaptureCost) * h.inj.HostSlowdown(h.id))
	h.capSeq++
	h.received++
	h.rec.JourneyCapture(h.capSeq, now)
	h.batch = append(h.batch, Packet{
		Host: h.id, Flow: fr.flow, FlowSeq: fr.flowSeq,
		Seq: h.capSeq, TS: now, Len: fr.len,
	})
	if len(h.batch) >= h.cfg.BatchPackets {
		h.flush()
	} else if !h.flushArmed {
		h.flushArmed = true
		h.sched.After(h.cfg.FlushInterval, h.flushTimer)
	}
	if h.cfg.AnalyticsEvery > 0 {
		if h.sinceAnl++; h.sinceAnl >= h.cfg.AnalyticsEvery {
			h.sinceAnl = 0
			h.emitAnalytics()
		}
	}
}

// flushTimer closes a batch by age. The timer is only armed while a
// batch is open, so an idle host schedules nothing — the event queue
// always drains.
func (h *host) flushTimer() {
	h.flushArmed = false
	h.health.Observe(h.sched.Now())
	if len(h.batch) > 0 && !h.down() {
		h.flush()
	}
}

// flush moves the open batch onto the link queue.
func (h *host) flush() {
	if len(h.batch) == 0 {
		return
	}
	now := h.sched.Now()
	bytes := 0
	for i := range h.batch {
		bytes += h.batch[i].Len
		h.rec.JourneyEnqueue(h.batch[i].Seq, now)
	}
	h.batches++
	h.enqueue(outMsg{kind: msgBatch, pkts: h.batch, bytes: bytes})
	h.batch = nil
}

// emitAnalytics sheds the summary outright when the link is degraded —
// analytics goes before capture, by policy.
func (h *host) emitAnalytics() {
	if h.degraded || len(h.pending) > 0 {
		h.anlShed++
		return
	}
	h.anlSent++
	h.enqueue(outMsg{kind: msgAnalytics, bytes: analyticsBytes, proc: h.received})
}

// enqueue admits a message to the bounded pending queue and pumps. Past
// the hard cap the queue sheds: queued analytics first, then the oldest
// capture batch (counted InFlightDropped — the bounded buffer is the
// second of the two loss points the conservation equation allows).
func (h *host) enqueue(m outMsg) {
	if len(h.pending) >= h.cfg.HardCap {
		shed := -1
		for i := range h.pending {
			if h.pending[i].kind == msgAnalytics {
				shed = i
				break
			}
		}
		if shed >= 0 {
			h.anlShed++
			h.pending = append(h.pending[:shed:shed], h.pending[shed+1:]...)
			if shed == 0 {
				h.attempt = 0
			}
		} else {
			h.dropBatch(h.pending[0].pkts, h.sched.Now())
			h.pending = h.pending[1:]
			h.attempt = 0
		}
	}
	h.pending = append(h.pending, m)
	h.setDegraded(h.retryArmed || len(h.pending) > h.cfg.SoftCap)
	h.pump()
}

// setDegraded tracks entry counts for the report.
func (h *host) setDegraded(v bool) {
	if v && !h.degraded {
		h.degradedEnters++
		h.rec.Action("fleet_degraded", h.id, -1, int64(len(h.pending)), h.sched.Now())
	}
	h.degraded = v
}

// pump drains the pending queue head-first. A failed transfer — link
// partition or exhausted token bucket — backs off deterministically:
// attempt n waits min(BackoffBase << (n-1), BackoffMax); after
// MaxAttempts the head is dropped and the next message proceeds.
func (h *host) pump() {
	if h.retryArmed {
		return
	}
	h.health.Observe(h.sched.Now())
	for len(h.pending) > 0 {
		if h.down() {
			return // crash transition clears the queue
		}
		m := &h.pending[0]
		now := h.sched.Now()
		if !h.inj.AggLinkUp(h.id) || !h.lbus.TryTransfer(now, m.bytes, 0) {
			h.attempt++
			if h.attempt > h.cfg.MaxAttempts {
				h.dropHead()
				h.attempt = 0
				continue
			}
			h.retries++
			d := h.cfg.BackoffBase << uint(h.attempt-1)
			if d > h.cfg.BackoffMax {
				d = h.cfg.BackoffMax
			}
			h.retryArmed = true
			h.setDegraded(true)
			h.sched.After(d, func() {
				h.retryArmed = false
				h.pump()
			})
			return
		}
		switch m.kind {
		case msgBatch:
			for i := range m.pkts {
				h.rec.JourneyLink(m.pkts[i].Seq, now)
			}
			h.tx.Send(h.agg, aggMsg{
				kind: msgBatch, host: h.id, incarnation: h.incarnation,
				pkts: m.pkts, watermark: m.pkts[len(m.pkts)-1].TS,
			})
		case msgAnalytics:
			h.tx.Send(h.agg, aggMsg{
				kind: msgAnalytics, host: h.id, incarnation: h.incarnation,
				processed: m.proc,
			})
		}
		h.pending = h.pending[1:]
		h.attempt = 0
	}
	h.setDegraded(false)
}

// dropHead gives up on the queue head after retry exhaustion.
func (h *host) dropHead() {
	m := h.pending[0]
	if m.kind == msgBatch {
		now := h.sched.Now()
		h.dropBatch(m.pkts, now)
		h.rec.Action("fleet_inflight_drop", h.id, -1, int64(len(m.pkts)), now)
	} else {
		h.anlShed++
	}
	h.pending = h.pending[1:]
}

// dropBatch charges one queued capture batch to InFlightDropped: books,
// drop ledger, and the sampled journeys it carried.
func (h *host) dropBatch(pkts []Packet, now vtime.Time) {
	h.inFlight += uint64(len(pkts))
	h.rec.DropN(obs.DropInFlightHeadDrop, h.id, -1, uint64(len(pkts)), now)
	for i := range pkts {
		h.rec.JourneyLost(pkts[i].Seq, obs.DropInFlightHeadDrop, now)
	}
}

// onFault is the injector OnTransition hook: crash opening loses all
// host-buffered aggregation state; crash closing is the restart, which
// begins the hello handshake toward readmission.
func (h *host) onFault(ev faults.Event, open bool) {
	if ev.Kind != faults.HostCrash {
		return
	}
	if open {
		h.crash()
	} else {
		h.restart()
	}
}

// crash loses the open batch and the unsent link queue — the HostLost
// side of the conservation equation. Messages already transferred onto
// the mailbox fabric are on the wire and will still arrive.
func (h *host) crash() {
	now := h.sched.Now()
	h.health.Observe(now)
	lost := uint64(len(h.batch))
	for i := range h.batch {
		h.rec.JourneyLost(h.batch[i].Seq, obs.DropHostLostCrash, now)
	}
	h.batch = nil
	for _, m := range h.pending {
		if m.kind == msgBatch {
			lost += uint64(len(m.pkts))
			for i := range m.pkts {
				h.rec.JourneyLost(m.pkts[i].Seq, obs.DropHostLostCrash, now)
			}
		} else {
			h.anlShed++
		}
	}
	h.hostLost += lost
	if lost > 0 {
		h.rec.DropN(obs.DropHostLostCrash, h.id, -1, lost, now)
	}
	h.pending = nil
	h.attempt = 0
	h.busyUntil = 0
	h.sinceAnl = 0
	h.setDegraded(false)
	h.rec.Action("fleet_host_crash", h.id, -1, int64(h.incarnation), now)
}

// restart is the post-crash boot: a fresh incarnation announces itself
// with HelloReadmit spaced hellos so the aggregator can readmit it. The
// hello count is bounded, so a restarting host cannot keep the event
// queue alive.
func (h *host) restart() {
	h.incarnation++
	h.health.Observe(h.sched.Now())
	h.rec.Action("fleet_host_restart", h.id, -1, int64(h.incarnation), h.sched.Now())
	h.sendHello(h.cfg.HelloReadmit)
}

// sendHello ships one control datagram (charged to the link bus like
// any message; lost silently under partition) and schedules the next.
func (h *host) sendHello(left int) {
	if h.down() {
		return // crashed again mid-handshake; the next restart restarts it
	}
	now := h.sched.Now()
	if h.inj.AggLinkUp(h.id) && h.lbus.TryTransfer(now, helloBytes, 0) {
		h.tx.Send(h.agg, aggMsg{kind: msgHello, host: h.id, incarnation: h.incarnation})
	}
	if left > 1 {
		h.sched.After(h.cfg.HelloInterval, func() { h.sendHello(left - 1) })
	}
}

// control applies one broadcast steering op to the host's replica.
// Replicas apply every op — even while crashed: the op log is durable
// collector-pushed configuration, replayed by the boot agent, so all
// replicas stay identical at every virtual instant (the property that
// makes ownership unique and failover order-preserving).
func (h *host) control(at vtime.Time, payload any) {
	op := payload.(SteerOp)
	h.steer.Apply(op)
}

// registerHealth exposes the host's books on its private health
// registry (one per host, traced runs only). The names intentionally
// mirror the wirecap_fleet_* registry names minus the prefix: the
// dashboard reads them as per-interval deltas, not lifetime totals.
func (h *host) registerHealth(reg *metrics.Registry) {
	reg.CounterFunc("received", func() uint64 { return h.received })
	reg.CounterFunc("wire_dropped", func() uint64 { return h.wireDropped })
	reg.CounterFunc("capture_dropped", func() uint64 { return h.captureDropped })
	reg.CounterFunc("host_lost", func() uint64 { return h.hostLost })
	reg.CounterFunc("inflight_dropped", func() uint64 { return h.inFlight })
	reg.CounterFunc("retries", func() uint64 { return h.retries })
	reg.CounterFunc("batches", func() uint64 { return h.batches })
	reg.CounterFunc("analytics_shed", func() uint64 { return h.anlShed })
	reg.CounterFunc("degraded_enters", func() uint64 { return h.degradedEnters })
	reg.GaugeFunc("pending_depth", func() int64 { return int64(len(h.pending)) })
	reg.GaugeFunc("degraded", func() int64 {
		if h.degraded {
			return 1
		}
		return 0
	})
}

// healthLane is the host's lane name in the fleet health series.
func (h *host) healthLane() string { return fmt.Sprintf("host%d", h.id) }

// report assembles the host's books.
func (h *host) report() HostReport {
	return HostReport{
		Host:            h.id,
		Offered:         h.offered,
		WireDropped:     h.wireDropped,
		CaptureDropped:  h.captureDropped,
		Received:        h.received,
		HostLost:        h.hostLost,
		InFlightDropped: h.inFlight,
		Batches:         h.batches,
		Retries:         h.retries,
		AnalyticsSent:   h.anlSent,
		AnalyticsShed:   h.anlShed,
		Incarnations:    h.incarnation,
		DegradedEnters:  h.degradedEnters,
	}
}
