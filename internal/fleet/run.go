package fleet

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/vtime"
	"repro/internal/vtime/domain"
)

// Result is one fleet run's output: the deterministic Report, plus the
// in-memory merged feed (Config.CollectFeed) and the merged flight
// record (Config.Traced) for tests and trace export.
type Result struct {
	Report Report
	Feed   []Packet
	Record obs.Record
}

// Run executes one fleet scenario to event-queue exhaustion and
// verifies its books. It returns an error for an invalid config or
// fault schedule — and, crucially, if the run violated either fleet
// invariant: unique flow ownership (every offered frame charged to
// exactly one host) or loss conservation
// (FleetReceived == Aggregated + HostLost + InFlightDropped).
func Run(name string, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Faults.Validate(); err != nil {
		return Result{}, fmt.Errorf("fleet: %s: %w", name, err)
	}

	sim := domain.New(domain.Config{Domains: cfg.Domains, Workers: cfg.Workers})

	// Construction happens in a fixed, placement-independent order:
	// aggregation port, then per host (control port, link tx), then the
	// control tx — the same sequence for every domain count, as the
	// conservative executive requires.
	newRec := func() *obs.Recorder {
		if !cfg.Traced {
			return nil // every Recorder method is nil-safe
		}
		return obs.New(obs.Config{FlowHash: func(f packet.FlowKey) uint32 {
			return nic.RSSHash(SteeringKey[:], f)
		}})
	}

	steer := NewSteering(cfg.Hosts)
	aggRec := newRec()
	agg := newAggregator(&cfg, sim.Domain(0).Scheduler(), steer, aggRec)
	if cfg.Traced {
		// Each actor samples a private registry so the health series is a
		// pure function of that actor's own event history (placement-
		// independent); the fleet lane is summed from them after the run.
		reg := metrics.NewRegistry()
		agg.registerHealth(reg)
		agg.health = obs.NewHealthSampler("agg", reg, cfg.HealthInterval, cfg.HealthMaxIntervals)
	}
	aggPort := sim.NewPort(sim.Domain(0), cfg.LinkLatency, agg.receive)

	flows := newFlowPool(cfg.Seed, cfg.Flows)
	interval := vtime.PerSecond(cfg.PacketsPerSec)

	hosts := make([]*host, cfg.Hosts)
	hostRecs := make([]*obs.Recorder, cfg.Hosts)
	ctl := make([]*domain.Port, cfg.Hosts)
	for h := 0; h < cfg.Hosts; h++ {
		d := sim.Domain(h % sim.Domains())
		sched := d.Scheduler()
		rec := newRec()
		hostRecs[h] = rec

		hs := newHost(h, &cfg, sched, steer.Clone(), rec)
		if cfg.Traced {
			hreg := metrics.NewRegistry()
			hs.registerHealth(hreg)
			hs.health = obs.NewHealthSampler(hs.healthLane(), hreg, cfg.HealthInterval, cfg.HealthMaxIntervals)
		}
		ctl[h] = sim.NewPort(d, cfg.CtrlLatency, hs.control)
		hs.tx = sim.NewTx(d)
		hs.agg = aggPort

		inj := faults.NewInjector(sched, vtime.SplitSeed(cfg.FaultSeed, uint64(h)))
		inj.OnTransition(hs.onFault)
		inj.SetTrace(rec)
		var sub faults.Schedule
		for _, ev := range cfg.Faults {
			if ev.NIC == h {
				sub = append(sub, ev)
			}
		}
		if err := inj.Install(sub); err != nil {
			return Result{}, fmt.Errorf("fleet: %s: host %d: %w", name, h, err)
		}
		hs.inj = inj
		hosts[h] = hs

		newGenerator(sched, cfg.Seed, flows, cfg.Packets, interval, hs.offer)
	}
	agg.tx = sim.NewTx(sim.Domain(0))
	agg.ctl = ctl

	sim.Run()
	end := sim.Now()
	agg.finish(end)

	reg := metrics.NewRegistry()
	registerFleet(reg, agg, hosts)

	rep := Report{
		Scenario:            name,
		Hosts:               cfg.Hosts,
		Aggregated:          agg.aggregated,
		LateMerges:          agg.lateMerges,
		StaleRejected:       agg.staleRejected,
		InFlightDropped:     agg.staleRejected,
		Quarantines:         agg.quarantines,
		Readmissions:        agg.readmissions,
		ReSteers:            agg.resteers,
		SteerMoves:          agg.steerMoves,
		AnalyticsAggregated: agg.anlAgg,
		EndNs:               end,
		Ledger:              agg.ledger.sum(),
	}
	for _, hs := range hosts {
		hr := hs.report()
		hr.Aggregated = agg.aggPerHost[hs.id]
		hr.StaleRejected = agg.stalePerHost[hs.id]
		rep.PerHost = append(rep.PerHost, hr)
		rep.FleetSent += hr.Offered
		rep.WireDropped += hr.WireDropped
		rep.CaptureDropped += hr.CaptureDropped
		rep.FleetReceived += hr.Received
		rep.HostLost += hr.HostLost
		rep.InFlightDropped += hr.InFlightDropped
		rep.AnalyticsShed += hr.AnalyticsShed
		rep.Batches += hr.Batches
	}
	if rep.FleetSent > 0 {
		rep.Delivery = float64(rep.Aggregated) / float64(rep.FleetSent)
	}
	rep.Metrics = reg.Snapshot(end)

	if rep.FleetSent != cfg.Packets {
		return Result{}, fmt.Errorf(
			"fleet: %s: ownership violated: %d frames offered, %d charged (steering replicas diverged)",
			name, cfg.Packets, rep.FleetSent)
	}
	if !rep.Conserved() {
		return Result{}, fmt.Errorf(
			"fleet: %s: conservation violated: received %d != aggregated %d + host-lost %d + inflight-dropped %d",
			name, rep.FleetReceived, rep.Aggregated, rep.HostLost, rep.InFlightDropped)
	}
	for _, hr := range rep.PerHost {
		if hr.Received != hr.Aggregated+hr.HostLost+hr.InFlightDropped+hr.StaleRejected {
			return Result{}, fmt.Errorf(
				"fleet: %s: host %d books unbalanced: received %d != aggregated %d + host-lost %d + inflight-dropped %d + stale %d",
				name, hr.Host, hr.Received, hr.Aggregated, hr.HostLost, hr.InFlightDropped, hr.StaleRejected)
		}
	}

	res := Result{Report: rep, Feed: agg.feed}
	if cfg.Traced {
		// Tags are logical lanes — aggregator 0, host h as h+1 — NOT the
		// execution domains the actors happened to run in, so the merged
		// record (and everything rendered from it: journey dumps, Chrome
		// exports, the forensics ledger) is byte-identical across
		// Domains/Workers settings and ci-gate can compare them.
		recs := make([]obs.Record, 0, cfg.Hosts+1)
		ar := aggRec.Record(name, end)
		ar.Tag(0)
		recs = append(recs, ar)
		for h, rec := range hostRecs {
			r := rec.Record(name, end)
			r.Tag(h + 1)
			recs = append(recs, r)
		}
		rec := obs.MergeRecords(name, end, recs)
		rec.StitchJourneys()

		agg.health.Finish(end)
		lanes := []obs.HealthSeries{agg.health.Series()}
		for _, hs := range hosts {
			hs.health.Finish(end)
			lanes = append(lanes, hs.health.Series())
		}
		lanes = append(lanes, obs.MergeHealth("fleet", lanes))
		rec.Health = lanes
		res.Record = rec

		// The forensics ledger must be an exact partition: per host, each
		// fleet cause re-derives that host's book entry, and the three
		// aggregation-plane loss causes sum to FleetReceived − Aggregated.
		led := rec.FleetLedger(cfg.HealthInterval)
		for _, hr := range rep.PerHost {
			checks := []struct {
				cause obs.DropCause
				want  uint64
				book  string
			}{
				{obs.DropHostLostCrash, hr.HostLost, "host_lost"},
				{obs.DropInFlightHeadDrop, hr.InFlightDropped, "inflight_dropped"},
				{obs.DropStalenessReject, hr.StaleRejected, "stale_rejected"},
				{obs.DropHostBrownoutShed, hr.CaptureDropped, "capture_dropped"},
				{obs.DropLink, hr.WireDropped, "wire_dropped"},
			}
			for _, c := range checks {
				if got := obs.SumCause(led, c.cause, hr.Host); got != c.want {
					return Result{}, fmt.Errorf(
						"fleet: %s: forensics ledger not a partition: host %d cause %s sums to %d, books say %s=%d",
						name, hr.Host, c.cause, got, c.book, c.want)
				}
			}
		}
		lost := obs.SumCause(led, obs.DropHostLostCrash, -1) +
			obs.SumCause(led, obs.DropInFlightHeadDrop, -1) +
			obs.SumCause(led, obs.DropStalenessReject, -1)
		if lost != rep.FleetReceived-rep.Aggregated {
			return Result{}, fmt.Errorf(
				"fleet: %s: forensics ledger not a partition: fleet causes sum to %d, FleetReceived-Aggregated=%d",
				name, lost, rep.FleetReceived-rep.Aggregated)
		}
	}
	return res, nil
}

// registerFleet exposes the fleet books through the metrics registry:
// fleet-level counters unlabeled, per-host counters labeled {host=N},
// and each host's aggregation-link bus as wirecap_bus_* {link=hostN}.
func registerFleet(reg *metrics.Registry, agg *aggregator, hosts []*host) {
	reg.CounterFunc("wirecap_fleet_aggregated_total", func() uint64 { return agg.aggregated })
	reg.CounterFunc("wirecap_fleet_late_merges_total", func() uint64 { return agg.lateMerges })
	reg.CounterFunc("wirecap_fleet_stale_rejected_total", func() uint64 { return agg.staleRejected })
	reg.CounterFunc("wirecap_fleet_quarantines_total", func() uint64 { return agg.quarantines })
	reg.CounterFunc("wirecap_fleet_readmissions_total", func() uint64 { return agg.readmissions })
	reg.CounterFunc("wirecap_fleet_resteers_total", func() uint64 { return agg.resteers })
	reg.CounterFunc("wirecap_fleet_steer_moves_total", func() uint64 { return agg.steerMoves })
	reg.CounterFunc("wirecap_fleet_analytics_aggregated_total", func() uint64 { return agg.anlAgg })
	for _, hs := range hosts {
		hs := hs
		l := metrics.L("host", fmt.Sprintf("%d", hs.id))
		reg.CounterFunc("wirecap_fleet_received_total", func() uint64 { return hs.received }, l)
		reg.CounterFunc("wirecap_fleet_wire_dropped_total", func() uint64 { return hs.wireDropped }, l)
		reg.CounterFunc("wirecap_fleet_capture_dropped_total", func() uint64 { return hs.captureDropped }, l)
		reg.CounterFunc("wirecap_fleet_host_lost_total", func() uint64 { return hs.hostLost }, l)
		reg.CounterFunc("wirecap_fleet_inflight_dropped_total", func() uint64 { return hs.inFlight }, l)
		reg.CounterFunc("wirecap_fleet_retries_total", func() uint64 { return hs.retries }, l)
		reg.CounterFunc("wirecap_fleet_analytics_shed_total", func() uint64 { return hs.anlShed }, l)
		hs.lbus.Register(reg, metrics.L("link", fmt.Sprintf("host%d", hs.id)))
	}
}
