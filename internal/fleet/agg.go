package fleet

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/vtime"
	"repro/internal/vtime/domain"
)

// aggregator is the fleet's merge point and control plane. It owns the
// authoritative steering table, scores host health from arrival
// silence, broadcasts quarantine/readmission steering ops, and merges
// the per-host capture streams into one globally ordered feed behind a
// watermark: a packet is emitted only once every active host has proven
// (by its newest batch) that it will never send anything older.
type aggregator struct {
	cfg    *Config
	sched  *vtime.Scheduler
	tx     *domain.Tx     // control-plane sender (domain 0)
	ctl    []*domain.Port // per-host control ports
	steer  *Steering      // authoritative table
	rec    *obs.Recorder
	health *obs.HealthSampler // nil unless traced; every method nil-safe

	// Per-host merge and health state.
	buf         [][]Packet // sorted by TS within each host (FIFO link)
	watermark   []vtime.Time
	lastSeen    []vtime.Time
	strikes     []int
	quarantined []bool
	helloInc    []int
	helloCnt    []int

	// Feed state.
	lastTS vtime.Time
	ledger *fnv
	feed   []Packet

	// Books.
	aggregated    uint64
	aggPerHost    []uint64
	lateMerges    uint64
	staleRejected uint64
	stalePerHost  []uint64
	quarantines   uint64
	readmissions  uint64
	resteers      uint64
	steerMoves    uint64
	anlAgg        uint64
}

func newAggregator(cfg *Config, sched *vtime.Scheduler, steer *Steering, rec *obs.Recorder) *aggregator {
	h := cfg.Hosts
	return &aggregator{
		cfg: cfg, sched: sched, steer: steer, rec: rec,
		buf:          make([][]Packet, h),
		watermark:    make([]vtime.Time, h),
		lastSeen:     make([]vtime.Time, h),
		strikes:      make([]int, h),
		quarantined:  make([]bool, h),
		helloInc:     make([]int, h),
		helloCnt:     make([]int, h),
		aggPerHost:   make([]uint64, h),
		stalePerHost: make([]uint64, h),
		ledger:       newFNV(),
	}
}

// receive is the aggregation port handler.
func (a *aggregator) receive(at vtime.Time, payload any) {
	a.health.Observe(at)
	m := payload.(aggMsg)
	switch m.kind {
	case msgBatch:
		a.lastSeen[m.host] = at
		a.strikes[m.host] = 0
		if m.watermark > a.watermark[m.host] {
			a.watermark[m.host] = m.watermark
		}
		// Staleness gate: a packet older than the emitted frontier can no
		// longer be merged without inverting the feed — it was in flight
		// (or stuck behind a partition) while its flow moved on, so it is
		// rejected here and accounted as an in-flight drop. This is what
		// keeps per-flow order strict even when a quarantine was a false
		// positive and the host's backlog eventually lands.
		for _, p := range m.pkts {
			if p.TS < a.lastTS {
				a.staleRejected++
				a.stalePerHost[m.host]++
				a.rec.FleetReject(p.Host, p.Seq, at)
				a.rec.DropN(obs.DropStalenessReject, p.Host, -1, 1, at)
				continue
			}
			a.buf[m.host] = append(a.buf[m.host], p)
		}
		if a.quarantined[m.host] {
			// A batch from a quarantined host proves the quarantine was a
			// false positive (partition heal, not death): readmit it on the
			// spot. Its backlog watermark holds the merge back until the
			// backlog drains, which is the conservative, order-safe choice.
			a.readmit(m.host, at)
		}
		a.checkHealth(m.host, at)
		a.drain(a.minWatermark(), at)
	case msgAnalytics:
		a.lastSeen[m.host] = at
		a.strikes[m.host] = 0
		a.anlAgg++
		a.checkHealth(m.host, at)
	case msgHello:
		a.lastSeen[m.host] = at
		a.strikes[m.host] = 0
		if m.incarnation != a.helloInc[m.host] {
			a.helloInc[m.host] = m.incarnation
			a.helloCnt[m.host] = 0
		}
		a.helloCnt[m.host]++
		if a.helloCnt[m.host] >= a.cfg.HelloReadmit && a.quarantined[m.host] {
			// A restarted host lost all capture state, so nothing older
			// than its restart is in flight. The restore op reaches the
			// replicas at at+CtrlLatency; the host captures nothing before
			// then, so that is a safe watermark floor.
			a.watermark[m.host] = at + a.cfg.CtrlLatency
			a.readmit(m.host, at)
		}
		a.checkHealth(m.host, at)
	}
}

// checkHealth scores every other host for silence: a host unheard from
// for SuspectAfter — while traffic from its peers keeps arriving —
// takes one strike per arrival, and QuarantineScore strikes quarantine
// it. Strikes (not a single timeout) make detection latency explicit
// and keep the check purely arrival-driven: no watchdog timer to hold
// the event queue open.
func (a *aggregator) checkHealth(from int, now vtime.Time) {
	for h := 0; h < a.cfg.Hosts; h++ {
		if h == from || a.quarantined[h] {
			continue
		}
		if now-a.lastSeen[h] <= a.cfg.SuspectAfter {
			continue
		}
		a.strikes[h]++
		if a.strikes[h] >= a.cfg.QuarantineScore {
			a.quarantine(h, now)
		}
	}
}

// quarantine removes the host from the active set and re-steers its
// flows across the healthy hosts. The merge stops waiting on its
// watermark immediately; its already-buffered packets still drain in
// global order.
func (a *aggregator) quarantine(h int, now vtime.Time) {
	a.quarantined[h] = true
	a.strikes[h] = 0
	a.quarantines++
	a.rec.Action("fleet_quarantine", h, -1, int64(now), now)
	healthy := make([]int, 0, a.cfg.Hosts)
	for i := 0; i < a.cfg.Hosts; i++ {
		if !a.quarantined[i] {
			healthy = append(healthy, i)
		}
	}
	if len(healthy) == 0 {
		return // nowhere to steer; leave the table alone
	}
	a.broadcast(SteerOp{Kind: OpReSteer, Host: h, Healthy: healthy}, now)
	// The quarantined host no longer gates the merge — whatever cleared
	// the watermark floor can go out now.
	a.drain(a.minWatermark(), now)
}

// readmit returns a host to the active set and restores its canonical
// steering entries. The caller has already set a safe watermark.
func (a *aggregator) readmit(h int, now vtime.Time) {
	a.quarantined[h] = false
	a.strikes[h] = 0
	a.helloCnt[h] = 0
	a.readmissions++
	a.rec.Action("fleet_readmit", h, -1, int64(now), now)
	a.broadcast(SteerOp{Kind: OpRestore, Host: h}, now)
}

// broadcast applies a steering op to the authoritative table and ships
// it to every replica. All control ports share CtrlLatency, so every
// replica applies the op at the same virtual instant and the replicas
// stay mutually identical — the property ownership uniqueness rests on.
func (a *aggregator) broadcast(op SteerOp, now vtime.Time) {
	moved := a.steer.Apply(op)
	a.steerMoves += uint64(moved)
	if op.Kind == OpReSteer {
		a.resteers++
	}
	a.rec.Action("fleet_"+op.Kind.String(), op.Host, -1, int64(moved), now)
	for h := 0; h < a.cfg.Hosts; h++ {
		a.tx.Send(a.ctl[h], op)
	}
}

// minWatermark is the merge frontier: the oldest newest-known capture
// time across active hosts. Quarantined hosts do not gate it (that is
// the point of quarantine), but their buffers still participate in the
// merge below it.
func (a *aggregator) minWatermark() vtime.Time {
	const inf = vtime.Time(1) << 62
	w := inf
	active := false
	for h := 0; h < a.cfg.Hosts; h++ {
		if a.quarantined[h] {
			continue
		}
		active = true
		if a.watermark[h] < w {
			w = a.watermark[h]
		}
	}
	if !active {
		return inf // whole fleet quarantined: nothing can be in flight
	}
	return w
}

// drain emits every buffered packet with TS ≤ w, smallest
// (TS, host, seq) first — a k-way merge over the per-host FIFO buffers.
// at is the virtual time the merge runs (the triggering delivery, or
// the global run end during finish) — explicit, never read from the
// aggregator domain's clock, so traced exports stay placement-independent.
func (a *aggregator) drain(w, at vtime.Time) {
	for {
		best := -1
		for h := 0; h < a.cfg.Hosts; h++ {
			if len(a.buf[h]) == 0 || a.buf[h][0].TS > w {
				continue
			}
			if best < 0 {
				best = h
				continue
			}
			ph, pb := a.buf[h][0], a.buf[best][0]
			if ph.TS < pb.TS || (ph.TS == pb.TS && h < best) {
				best = h
			}
		}
		if best < 0 {
			return
		}
		a.emit(a.buf[best][0], at)
		a.buf[best] = a.buf[best][1:]
	}
}

// emit appends one packet to the global feed and the ledger.
func (a *aggregator) emit(p Packet, at vtime.Time) {
	if p.TS < a.lastTS {
		a.lateMerges++
	} else {
		a.lastTS = p.TS
	}
	a.aggregated++
	a.aggPerHost[p.Host]++
	a.rec.FleetEmit(p.Host, p.Seq, at)
	a.ledger.writeString(fmt.Sprintf("%d|%d|%d|%d|%d;", p.TS, p.Host, p.Seq, p.FlowSeq, p.Len))
	if a.cfg.CollectFeed {
		a.feed = append(a.feed, p)
	}
}

// finish runs after the executive drains: everything still buffered is
// final — no more messages can arrive — so the frontier is infinite and
// the remaining packets merge out in canonical order, stamped at the
// global run end.
func (a *aggregator) finish(end vtime.Time) {
	a.health.Observe(end)
	a.drain(vtime.Time(1)<<62, end)
}

// registerHealth exposes the aggregator's books on its private health
// registry (traced runs only).
func (a *aggregator) registerHealth(reg *metrics.Registry) {
	reg.CounterFunc("aggregated", func() uint64 { return a.aggregated })
	reg.CounterFunc("stale_rejected", func() uint64 { return a.staleRejected })
	reg.CounterFunc("late_merges", func() uint64 { return a.lateMerges })
	reg.CounterFunc("quarantines", func() uint64 { return a.quarantines })
	reg.CounterFunc("readmissions", func() uint64 { return a.readmissions })
	reg.CounterFunc("resteers", func() uint64 { return a.resteers })
	reg.CounterFunc("steer_moves", func() uint64 { return a.steerMoves })
	reg.CounterFunc("analytics_aggregated", func() uint64 { return a.anlAgg })
	reg.GaugeFunc("agg_buffered", func() int64 {
		var n int
		for h := range a.buf {
			n += len(a.buf[h])
		}
		return int64(n)
	})
}
