package fleet

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/vtime"
)

// stormConfig mirrors the bench fleet_chaos_host_kill storm: one
// permanent kill (so its flows re-steer and stay moved), one
// crash-with-restart, and an aggregation-link flap on a survivor, at
// full offered rate. The timings match the bench scenario so sampled
// flows demonstrably cross the re-steer.
func stormConfig() Config {
	cfg := testConfig()
	cfg.Hosts = 6
	cfg.Packets = 30_000
	cfg.CollectFeed = false
	cfg.Faults = faults.Schedule{
		{Kind: faults.HostCrash, NIC: 1, At: 5 * vtime.Millisecond},
		{Kind: faults.HostCrash, NIC: 4, At: 12 * vtime.Millisecond, Dur: 8 * vtime.Millisecond},
		{Kind: faults.AggLinkDown, NIC: 2, At: 8 * vtime.Millisecond, Dur: 600 * vtime.Microsecond},
	}
	return cfg
}

// TestTracedObservabilityIsPureObserver runs the storm untraced and
// traced and requires the same report digest: journeys, health lanes,
// and the forensics ledger must never perturb the simulation.
func TestTracedObservabilityIsPureObserver(t *testing.T) {
	cfg := stormConfig()
	plain, err := Run("storm", cfg)
	if err != nil {
		t.Fatalf("untraced Run: %v", err)
	}
	cfg.Traced = true
	traced, err := Run("storm", cfg)
	if err != nil {
		t.Fatalf("traced Run: %v", err)
	}
	if d1, d2 := plain.Report.Digest(), traced.Report.Digest(); d1 != d2 {
		t.Fatalf("tracing changed the run: untraced digest %s, traced %s", d1, d2)
	}
	if len(traced.Record.Journeys) == 0 {
		t.Fatal("traced run recorded no journeys")
	}
	if len(traced.Record.Health) != cfg.Hosts+2 { // hosts + agg + summed fleet lane
		t.Fatalf("health lanes = %d, want %d", len(traced.Record.Health), cfg.Hosts+2)
	}
}

// TestTracedExportsPlacementIndependent renders every observability
// artifact — journey dump, Chrome trace, health series — from the same
// storm at 1 and 4 time domains and requires byte identity. The lanes
// are logical (host id, not execution domain), so placement must not
// show anywhere.
func TestTracedExportsPlacementIndependent(t *testing.T) {
	cfg := stormConfig()
	cfg.Traced = true
	r1, err := Run("storm", cfg)
	if err != nil {
		t.Fatalf("Run domains=1: %v", err)
	}
	cfg.Domains = 4
	cfg.Workers = 4
	r4, err := Run("storm", cfg)
	if err != nil {
		t.Fatalf("Run domains=4: %v", err)
	}
	if d1, d4 := r1.Report.Digest(), r4.Report.Digest(); d1 != d4 {
		t.Fatalf("digest differs across domains: %s vs %s", d1, d4)
	}
	render := func(name string, f func(*bytes.Buffer, Result) error) {
		var b1, b4 bytes.Buffer
		if err := f(&b1, r1); err != nil {
			t.Fatalf("%s domains=1: %v", name, err)
		}
		if err := f(&b4, r4); err != nil {
			t.Fatalf("%s domains=4: %v", name, err)
		}
		if b1.String() != b4.String() {
			t.Errorf("%s differs across domains", name)
		}
	}
	render("journey dump", func(b *bytes.Buffer, r Result) error { return r.Record.WriteJourneys(b) })
	render("chrome export", func(b *bytes.Buffer, r Result) error { return r.Record.WriteChrome(b) })
	render("health series", func(b *bytes.Buffer, r Result) error { return obs.WriteHealth(b, r.Record.Health) })
	render("fleet ledger", func(b *bytes.Buffer, r Result) error { return r.Record.WriteFleetLedger(b, 0) })
}

// TestForensicsLedgerPartitionsTheBooks re-derives the conservation
// equation from the merged record alone — independently of the check
// fleet.Run performs internally — so a regression in either side is
// caught by the other.
func TestForensicsLedgerPartitionsTheBooks(t *testing.T) {
	cfg := stormConfig()
	cfg.Traced = true
	res, err := Run("storm", cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	rep := res.Report
	led := res.Record.FleetLedger(0)
	if len(led) == 0 {
		t.Fatal("storm produced an empty forensics ledger")
	}
	for _, hr := range rep.PerHost {
		if got := obs.SumCause(led, obs.DropHostLostCrash, hr.Host); got != hr.HostLost {
			t.Errorf("host %d: ledger host_lost_crash = %d, books %d", hr.Host, got, hr.HostLost)
		}
		if got := obs.SumCause(led, obs.DropInFlightHeadDrop, hr.Host); got != hr.InFlightDropped {
			t.Errorf("host %d: ledger in_flight_link_headdrop = %d, books %d", hr.Host, got, hr.InFlightDropped)
		}
		if got := obs.SumCause(led, obs.DropStalenessReject, hr.Host); got != hr.StaleRejected {
			t.Errorf("host %d: ledger staleness_reject = %d, books %d", hr.Host, got, hr.StaleRejected)
		}
		if got := obs.SumCause(led, obs.DropHostBrownoutShed, hr.Host); got != hr.CaptureDropped {
			t.Errorf("host %d: ledger host_lost_brownout_shed = %d, books %d", hr.Host, got, hr.CaptureDropped)
		}
		if got := obs.SumCause(led, obs.DropLink, hr.Host); got != hr.WireDropped {
			t.Errorf("host %d: ledger link_down = %d, books %d", hr.Host, got, hr.WireDropped)
		}
	}
	lost := obs.SumCause(led, obs.DropHostLostCrash, -1) +
		obs.SumCause(led, obs.DropInFlightHeadDrop, -1) +
		obs.SumCause(led, obs.DropStalenessReject, -1)
	if want := rep.FleetReceived - rep.Aggregated; lost != want {
		t.Fatalf("fleet causes sum to %d, FleetReceived-Aggregated = %d", lost, want)
	}
}

// TestJourneysCrossReSteer requires the storm's journey dump to stitch
// at least one flow across a re-steer: the same flow captured on two
// different hosts, before and after the control plane moved it.
func TestJourneysCrossReSteer(t *testing.T) {
	cfg := stormConfig()
	cfg.Traced = true
	res, err := Run("storm", cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Report.ReSteers == 0 {
		t.Fatal("storm triggered no re-steers; the cross-host case is untested")
	}
	moved := 0
	for _, fh := range res.Record.FlowJourneys() {
		if len(fh.Hosts) > 1 {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no journey flow crossed a re-steer")
	}
	var dump bytes.Buffer
	if err := res.Record.WriteJourneys(&dump); err != nil {
		t.Fatalf("WriteJourneys: %v", err)
	}
	if !strings.Contains(dump.String(), "-- flows crossing a re-steer --") {
		t.Fatal("journey dump lacks the re-steer section")
	}
	// Every stitched journey must stamp stages in nondecreasing time and
	// end either merged or with a recorded fleet cause.
	for _, j := range res.Record.Journeys {
		last := j.Stamps[0].At
		for _, s := range j.Stamps {
			if s.At < last {
				t.Fatalf("journey host %d seq %d: stamps out of order", j.Host, j.Seq)
			}
			last = s.At
		}
	}
}

// TestHealthSeriesCoverTheRun checks the sampled time-series: every
// interval delta is in range, the summed fleet lane equals the per-host
// lanes, and received counters total the books.
func TestHealthSeriesCoverTheRun(t *testing.T) {
	cfg := stormConfig()
	cfg.Traced = true
	res, err := Run("storm", cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	perLane := map[string]int64{}
	for _, lane := range res.Record.Health {
		if lane.IntervalNs != cfg.withDefaults().HealthInterval {
			t.Errorf("lane %s interval %d, want %d", lane.Lane, lane.IntervalNs, cfg.withDefaults().HealthInterval)
		}
		for _, d := range lane.Deltas {
			if d.EndNs > res.Report.EndNs+lane.IntervalNs {
				t.Errorf("lane %s: delta ends at %d, past run end %d", lane.Lane, d.EndNs, res.Report.EndNs)
			}
			perLane[lane.Lane] += d.Value("received")
		}
	}
	var hostsSum int64
	for lane, v := range perLane {
		if strings.HasPrefix(lane, "host") {
			hostsSum += v
		}
	}
	if hostsSum != int64(res.Report.FleetReceived) {
		t.Errorf("host lanes sum received=%d, books say %d", hostsSum, res.Report.FleetReceived)
	}
	if perLane["fleet"] != hostsSum {
		t.Errorf("fleet lane received=%d, host lanes sum %d", perLane["fleet"], hostsSum)
	}
}
