package fleet

import (
	"repro/internal/packet"
	"repro/internal/vtime"
)

// frame is one offered wire frame: the flow tuple, the flow-local
// sequence number the generator stamped (the ground truth the per-flow
// order property is checked against), and the frame length.
type frame struct {
	flow    packet.FlowKey
	flowSeq uint64
	len     int
}

// generator replays the fleet's shared traffic: a constant-rate stream
// over a fixed flow population with seeded per-packet flow choice and
// sizes. Every host runs its own instance with the SAME seed — the
// instances emit bit-identical streams, and each host captures exactly
// the frames its steering replica assigns to it. That models one tapped
// wire fanned out to every capture box without any cross-domain traffic
// on the offered path, so the offered stream itself can never depend on
// placement.
type generator struct {
	sched    *vtime.Scheduler
	r        *vtime.Rand
	flows    []packet.FlowKey
	seq      []uint64
	interval vtime.Time
	left     uint64
	sink     func(frame)
}

// newFlowPool derives the deterministic flow population.
func newFlowPool(seed uint64, flows int) []packet.FlowKey {
	r := vtime.NewRand(vtime.SplitSeed(seed, 0xf10))
	pool := make([]packet.FlowKey, flows)
	for i := range pool {
		proto := packet.ProtoUDP
		if r.Intn(2) == 0 {
			proto = packet.ProtoTCP
		}
		pool[i] = packet.FlowKey{
			Src:     packet.IPv4{10, byte(r.Intn(4)), byte(r.Intn(256)), byte(r.Intn(256))},
			Dst:     packet.IPv4{192, 168, byte(r.Intn(16)), byte(r.Intn(256))},
			SrcPort: uint16(1024 + r.Intn(60000)),
			DstPort: uint16(1 + r.Intn(1024)),
			Proto:   proto,
		}
	}
	return pool
}

// newGenerator builds one host's replica of the shared stream and
// schedules its first arrival.
func newGenerator(sched *vtime.Scheduler, seed uint64, flows []packet.FlowKey,
	packets uint64, interval vtime.Time, sink func(frame)) *generator {
	g := &generator{
		sched:    sched,
		r:        vtime.NewRand(vtime.SplitSeed(seed, 0x9e1)),
		flows:    flows,
		seq:      make([]uint64, len(flows)),
		interval: interval,
		left:     packets,
		sink:     sink,
	}
	if g.left > 0 {
		sched.After(interval, g.step)
	}
	return g
}

// step emits one frame and schedules the next.
func (g *generator) step() {
	idx := g.r.Intn(len(g.flows))
	g.seq[idx]++
	fr := frame{
		flow:    g.flows[idx],
		flowSeq: g.seq[idx],
		len:     60 + g.r.Intn(1200),
	}
	g.left--
	g.sink(fr)
	if g.left > 0 {
		g.sched.After(g.interval, g.step)
	}
}
