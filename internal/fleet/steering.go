package fleet

import (
	"fmt"

	"repro/internal/nic"
	"repro/internal/packet"
)

// SteeringKey is the fleet-level Toeplitz key. It is deliberately NOT
// nic.DefaultRSSKey: host placement must decorrelate from per-NIC queue
// placement, or every flow that hashes to a hot queue would also hash
// to the same hot host and the fleet would inherit — and square — the
// single-host imbalance the paper studies.
var SteeringKey = [40]byte{
	0xb7, 0x1c, 0x6e, 0x32, 0x9a, 0xfd, 0x48, 0xd5,
	0x0e, 0xc3, 0x71, 0x86, 0x2f, 0x5b, 0xe4, 0x19,
	0xa8, 0x37, 0xdc, 0x65, 0x02, 0xf1, 0x8e, 0x4b,
	0xc9, 0x50, 0x3d, 0xb2, 0x67, 0x1a, 0xf5, 0x88,
	0x2e, 0xd3, 0x44, 0x9f, 0x0b, 0x76, 0xe1, 0x5c,
}

// OpKind discriminates steering-table rewrite operations.
type OpKind uint8

// Steering operations.
const (
	// OpReSteer moves every table entry owned by a dead or quarantined
	// host onto the listed healthy hosts, round-robin in table order.
	OpReSteer OpKind = iota
	// OpRestore is the readmission inverse: the canonical equal-weight
	// entries of the named host return to it.
	OpRestore
)

func (k OpKind) String() string {
	if k == OpReSteer {
		return "resteer"
	}
	return "restore"
}

// SteerOp is one deterministic steering-table rewrite, broadcast by the
// aggregator's control plane and applied by every host replica. The op
// log is the fleet's only mutable steering state: applying the same op
// sequence to identical replicas keeps them identical, which is what
// makes a table rewrite move each flow to exactly one new host — and
// therefore preserve per-flow order across a failover.
type SteerOp struct {
	Kind OpKind
	Host int
	// Healthy lists the re-steer targets in ascending host order
	// (ignored for OpRestore).
	Healthy []int
}

func (op SteerOp) String() string {
	return fmt.Sprintf("%s host %d -> %v", op.Kind, op.Host, op.Healthy)
}

// Steering maps flows to capture hosts: the Toeplitz hash under
// SteeringKey indexes a host-level indirection table, exactly the
// mechanism commodity NICs use one level down for queues
// (internal/nic). The aggregator owns the authoritative instance; every
// host holds a Clone updated only through Apply.
type Steering struct {
	hosts  int
	hasher *nic.FlowHasher
	ind    *nic.Indirection
}

// NewSteering returns the equal-weight host table (entry i names host
// i%hosts over nic.IndirectionEntries entries).
func NewSteering(hosts int) *Steering {
	if hosts <= 0 {
		panic("fleet: NewSteering with no hosts")
	}
	return &Steering{
		hosts:  hosts,
		hasher: nic.NewFlowHasher(SteeringKey),
		ind:    nic.NewIndirection(nic.IndirectionEntries, hosts),
	}
}

// Hosts returns the fleet size the table was built for.
func (s *Steering) Hosts() int { return s.hosts }

// Host returns the capture host that owns the flow.
//
//wirecap:hotpath
func (s *Steering) Host(f packet.FlowKey) int {
	return s.ind.Lookup(s.hasher.Hash(f))
}

// Clone returns an independent replica sharing the (immutable) hash
// tables but owning its indirection state.
func (s *Steering) Clone() *Steering {
	return &Steering{hosts: s.hosts, hasher: s.hasher, ind: s.ind.Clone()}
}

// Apply executes one rewrite and returns how many entries moved.
func (s *Steering) Apply(op SteerOp) int {
	switch op.Kind {
	case OpReSteer:
		return s.ind.ReSteer(op.Host, op.Healthy)
	case OpRestore:
		return s.ind.Restore(op.Host, s.hosts)
	default:
		panic(fmt.Sprintf("fleet: unknown steering op %d", op.Kind))
	}
}

// Owned returns how many table entries currently name the host.
func (s *Steering) Owned(host int) int {
	n := 0
	for i := 0; i < s.ind.Len(); i++ {
		if s.ind.Entry(i) == host {
			n++
		}
	}
	return n
}
