package vtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Fatalf("Now = %v, want 30", s.Now())
	}
}

func TestSchedulerFIFOWithinTimestamp(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(42, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-timestamp events reordered at %d: %v", i, got[:i+1])
		}
	}
}

func TestSchedulerAfterAndNesting(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	s.After(5, func() {
		fired = append(fired, s.Now())
		s.After(10, func() { fired = append(fired, s.Now()) })
	})
	s.Run()
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 15 {
		t.Fatalf("fired = %v, want [5 15]", fired)
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(100, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(50, func() {})
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	ran := false
	id := s.At(10, func() { ran = true })
	if !s.Cancel(id) {
		t.Fatal("first Cancel returned false")
	}
	if s.Cancel(id) {
		t.Fatal("second Cancel returned true")
	}
	s.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestSchedulerCancelMiddleOfHeap(t *testing.T) {
	s := NewScheduler()
	var got []int
	var ids []EventID
	for i := 0; i < 10; i++ {
		i := i
		ids = append(ids, s.At(Time(i), func() { got = append(got, i) }))
	}
	s.Cancel(ids[3])
	s.Cancel(ids[7])
	s.Run()
	if len(got) != 8 {
		t.Fatalf("got %d events, want 8: %v", len(got), got)
	}
	for _, v := range got {
		if v == 3 || v == 7 {
			t.Fatalf("cancelled event %d ran", v)
		}
	}
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler()
	var got []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		s.At(at, func() { got = append(got, at) })
	}
	s.RunUntil(25)
	if len(got) != 2 {
		t.Fatalf("RunUntil(25) ran %d events, want 2", len(got))
	}
	if s.Now() != 25 {
		t.Fatalf("Now = %v, want 25", s.Now())
	}
	s.RunUntil(100)
	if len(got) != 4 {
		t.Fatalf("after RunUntil(100) ran %d events, want 4", len(got))
	}
	if s.Now() != 100 {
		t.Fatalf("Now = %v, want 100", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := NewScheduler()
	n := 0
	for i := 0; i < 10; i++ {
		s.At(Time(i), func() {
			n++
			if n == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if n != 3 {
		t.Fatalf("ran %d events before Stop, want 3", n)
	}
	if s.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", s.Pending())
	}
}

func TestPerSecond(t *testing.T) {
	if got := PerSecond(1); got != Second {
		t.Fatalf("PerSecond(1) = %v, want 1s", got)
	}
	if got := PerSecond(14.88e6); got < 67*Nanosecond || got > 68*Nanosecond {
		t.Fatalf("PerSecond(14.88e6) = %v, want ~67ns", got)
	}
	if got := PerSecond(0); got <= 0 {
		t.Fatalf("PerSecond(0) = %v, want huge positive", got)
	}
}

func TestDurationConversion(t *testing.T) {
	if Duration(time.Millisecond) != Millisecond {
		t.Fatal("Duration(1ms) mismatch")
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Fatal("Seconds mismatch")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(12345), NewRand(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seeded streams diverged at %d", i)
		}
	}
	c := NewRand(12346)
	same := 0
	a = NewRand(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/1000 identical values", same)
	}
}

func TestRandIntnBounds(t *testing.T) {
	r := NewRand(7)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(99)
	sum := 0.0
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	mean := sum / 100000
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(3)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / n
	if mean < 0.98 || mean > 1.02 {
		t.Fatalf("ExpFloat64 mean = %v, want ~1", mean)
	}
}

func TestRandParetoMinimum(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(1.2, 3.0); v < 3.0 {
			t.Fatalf("Pareto(1.2, 3) = %v below xm", v)
		}
	}
}

func TestRandIntnUnbiasedProperty(t *testing.T) {
	// Property: Intn(n) is always in range for arbitrary seeds and n.
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := NewRand(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestServerSerializesWork(t *testing.T) {
	s := NewScheduler()
	sv := NewServer(s, nil)
	if done := sv.Charge(100); done != 100 {
		t.Fatalf("first charge done at %v, want 100", done)
	}
	if done := sv.Charge(50); done != 150 {
		t.Fatalf("second charge done at %v, want 150", done)
	}
	s.RunUntil(200)
	if sv.Busy() {
		t.Fatal("server still busy after all work completed")
	}
	if done := sv.Charge(10); done != 210 {
		t.Fatalf("idle server charge done at %v, want 210", done)
	}
}

func TestServerChargeAndCall(t *testing.T) {
	s := NewScheduler()
	sv := NewServer(s, nil)
	var at Time
	sv.ChargeAndCall(75, func() { at = s.Now() })
	s.Run()
	if at != 75 {
		t.Fatalf("callback at %v, want 75", at)
	}
}

func TestCoreKernelShareSlowsServer(t *testing.T) {
	s := NewScheduler()
	core := NewCore()
	sv := NewServer(s, core)
	core.SetKernelShare(0.5)
	if done := sv.Charge(100); done != 200 {
		t.Fatalf("50%% kernel share: done at %v, want 200", done)
	}
	core.SetKernelShare(0)
	if done := sv.Charge(100); done != 300 {
		t.Fatalf("after share reset: done at %v, want 300", done)
	}
}

func TestCoreShareClamp(t *testing.T) {
	c := NewCore()
	c.SetKernelShare(2.0)
	if c.KernelShare() > 0.95 {
		t.Fatalf("share %v not clamped", c.KernelShare())
	}
	c.SetKernelShare(-1)
	if c.KernelShare() != 0 {
		t.Fatalf("negative share not clamped to 0")
	}
}

func TestNegativeChargeTreatedAsZero(t *testing.T) {
	s := NewScheduler()
	sv := NewServer(s, nil)
	if done := sv.Charge(-5); done != 0 {
		t.Fatalf("negative charge done at %v, want 0", done)
	}
}
