// Package vtime provides a deterministic discrete-event simulation engine:
// a virtual clock, an event scheduler, seeded random numbers, and small
// rate/bandwidth helpers used by the NIC, bus, and engine models.
//
// All simulation components in this repository advance time exclusively
// through a Scheduler, so every experiment is bit-for-bit reproducible and
// a 32-second, 5-million-packet trace replays in well under a second of
// wall-clock time.
//
// The scheduler is engineered for the simulator's hot path: events live in
// a value-typed 4-ary heap over a generation-counted slot pool, so the
// steady state of schedule/cancel/step performs zero heap allocations and
// no interface boxing. Cancellation is lazy (a cancelled slot's stale heap
// entry is discarded when it surfaces), which keeps Cancel O(1).
package vtime

import (
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It is deliberately not time.Time: virtual time has no epoch,
// no monotonic-clock subtleties, and no wall-clock meaning.
type Time int64

// Common durations re-exported for readability at call sites.
const (
	Nanosecond  = Time(1)
	Microsecond = 1000 * Nanosecond
	Millisecond = 1000 * Microsecond
	Second      = 1000 * Millisecond
)

// Duration converts a standard library duration to virtual nanoseconds.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// PerSecond returns the interval between events occurring at the given
// rate (events per second). A non-positive rate returns the maximum
// representable interval, effectively "never".
func PerSecond(rate float64) Time {
	if rate <= 0 {
		return Time(math.MaxInt64)
	}
	return Time(float64(Second) / rate)
}

// entry is one heap element: the ordering key (at, seq) plus the slot the
// callback lives in and the slot generation the entry was created for. seq
// breaks ties so that events scheduled earlier at the same timestamp run
// first (FIFO within a timestamp), which keeps the simulation
// deterministic. A generation mismatch marks the entry stale (cancelled);
// stale entries are discarded when they reach the heap root.
type entry struct {
	at   Time
	seq  uint64
	slot int32
	gen  uint32
}

// slot holds one event callback. Slots are pooled: firing or cancelling an
// event bumps the generation and links the slot onto the free list, so the
// steady state schedules into recycled slots without allocating.
type slot struct {
	fn   func()
	gen  uint32
	next int32 // free-list link, 1-based; 0 terminates
}

// EventID identifies a scheduled event so it can be cancelled. The zero
// EventID is never live.
type EventID struct {
	slot int32 // 1-based; 0 means invalid
	gen  uint32
}

// Scheduler is a discrete-event simulation executive. The zero value is
// ready to use; it starts at virtual time 0.
//
// Scheduler is not safe for concurrent use: the simulation is
// single-threaded by design (determinism), with concurrency in the modeled
// system expressed as interleaved events rather than goroutines.
type Scheduler struct {
	now     Time
	heap    []entry
	slots   []slot
	free    int32 // free-list head, 1-based; 0 means empty
	seq     uint64
	live    int
	stale   int // cancelled events whose heap entries remain
	stopped bool
	// horizon, when nonzero, is an externally imposed bound the clock may
	// not cross via AdvanceIfIdle: the domain runtime sets it to the
	// earlier of the current lookahead window's end and the next pending
	// cross-domain delivery, so hot-path batching can never skip over a
	// mailbox message or a barrier. Zero means unbounded (the default,
	// single-scheduler behavior).
	horizon Time
}

// NewScheduler returns a scheduler starting at virtual time zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
//
//wirecap:hotpath
func (s *Scheduler) Now() Time { return s.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) panics: it always indicates a modeling bug, and silently
// clamping it would hide causality violations.
//
//wirecap:hotpath
func (s *Scheduler) At(t Time, fn func()) EventID {
	if t < s.now {
		panic(fmt.Sprintf("vtime: scheduling event at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("vtime: nil event function")
	}
	var si int32
	if s.free != 0 {
		si = s.free - 1
		s.free = s.slots[si].next
	} else {
		s.slots = append(s.slots, slot{gen: 1}) //wirelint:allow hotpath slot pool grows amortized; steady state pops the free list
		si = int32(len(s.slots) - 1)
	}
	sl := &s.slots[si]
	sl.fn = fn
	s.push(entry{at: t, seq: s.seq, slot: si, gen: sl.gen})
	s.seq++
	s.live++
	return EventID{slot: si + 1, gen: sl.gen}
}

// After schedules fn to run d nanoseconds from now.
//
//wirecap:hotpath
func (s *Scheduler) After(d Time, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// freeSlot retires slot si: the generation bump invalidates any
// outstanding EventID and heap entry, and the slot joins the free list.
//
//wirecap:hotpath
func (s *Scheduler) freeSlot(si int32) {
	sl := &s.slots[si]
	sl.fn = nil
	sl.gen++
	if sl.gen == 0 { // skip 0 on wraparound: gen 0 marks dead EventIDs
		sl.gen = 1
	}
	sl.next = s.free
	s.free = si + 1
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op and returns false. The event's heap
// entry is left in place and discarded lazily when it surfaces.
//
//wirecap:hotpath
func (s *Scheduler) Cancel(id EventID) bool {
	if id.slot <= 0 || int(id.slot) > len(s.slots) {
		return false
	}
	if s.slots[id.slot-1].gen != id.gen {
		return false
	}
	s.freeSlot(id.slot - 1)
	s.live--
	s.stale++
	// Keep lazy deletion from letting a cancel-heavy, rarely-stepping
	// workload grow the heap without bound: once stale entries dominate,
	// sweep them out and rebuild in one O(n) pass.
	if s.stale > 64 && s.stale > len(s.heap)/2 {
		s.compact()
	}
	return true
}

// compact removes every stale entry and restores the heap property with a
// bottom-up (Floyd) rebuild.
//
//wirecap:hotpath
func (s *Scheduler) compact() {
	kept := s.heap[:0]
	for _, e := range s.heap {
		if s.slots[e.slot].gen == e.gen {
			kept = append(kept, e) //wirelint:allow hotpath compaction reuses the backing array via kept[:0]
		}
	}
	s.heap = kept
	s.stale = 0
	if n := len(s.heap); n > 1 {
		for i := (n - 2) / 4; i >= 0; i-- {
			s.siftDown(i, s.heap[i])
		}
	}
}

// Pending reports the number of events waiting to run.
func (s *Scheduler) Pending() int { return s.live }

// NextAt returns the timestamp of the earliest pending event, or false
// when the queue is empty. It does not run anything or move the clock;
// the domain runtime uses it to compute conservative lookahead windows.
func (s *Scheduler) NextAt() (Time, bool) {
	e, ok := s.peek()
	return e.at, ok
}

// AdvanceTo moves the clock to t without running anything. It panics if
// t is in the past or if an event is pending before t — skipping work
// would be a causality violation, exactly like scheduling into the past.
// The domain runtime uses it to stamp the clock at a cross-domain
// delivery time before invoking the delivery handler.
func (s *Scheduler) AdvanceTo(t Time) {
	if t < s.now {
		panic(fmt.Sprintf("vtime: AdvanceTo %v before now %v", t, s.now))
	}
	if e, ok := s.peek(); ok && e.at < t {
		panic(fmt.Sprintf("vtime: AdvanceTo %v would skip event at %v", t, e.at))
	}
	s.now = t
}

// SetHorizon bounds AdvanceIfIdle: with a nonzero horizon the clock will
// not batch-advance to any t >= horizon, forcing callers back onto real
// scheduled events that the domain runtime's window loop can see. Pass 0
// to clear. Only the domain runtime should need this; within a single
// free-running scheduler the horizon stays 0 and batching is unbounded.
func (s *Scheduler) SetHorizon(t Time) { s.horizon = t }

// Stop makes the currently executing Run/RunUntil return after the current
// event completes. Pending events remain queued.
func (s *Scheduler) Stop() { s.stopped = true }

// peek returns the earliest live heap entry, discarding stale (cancelled)
// entries on the way.
func (s *Scheduler) peek() (entry, bool) {
	for len(s.heap) > 0 {
		e := s.heap[0]
		if s.slots[e.slot].gen != e.gen {
			s.popRoot()
			s.stale--
			continue
		}
		return e, true
	}
	return entry{}, false
}

// Step runs the single earliest pending event, advancing the clock to its
// timestamp. It returns false if no events are pending.
//
//wirecap:hotpath
func (s *Scheduler) Step() bool {
	e, ok := s.peek()
	if !ok {
		return false
	}
	fn := s.slots[e.slot].fn
	s.popRoot()
	// Retire the slot before running fn: a self-rescheduling event reuses
	// its own slot, keeping the pool at its steady-state size.
	s.freeSlot(e.slot)
	s.live--
	s.now = e.at
	fn()
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
// Events scheduled after t remain pending.
func (s *Scheduler) RunUntil(t Time) {
	s.stopped = false
	for !s.stopped {
		e, ok := s.peek()
		if !ok || e.at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// AdvanceIfIdle moves the clock forward to t when doing so skips nothing:
// it returns true — with the clock set to t — only if no pending event is
// due at or before t and Stop has not been requested. Otherwise it returns
// false and leaves the clock untouched; the caller must fall back to
// scheduling a normal event.
//
// It exists for hot-path batching: an event that knows its successor's
// timestamp (a paced packet generator, say) can process the successor
// inline instead of round-tripping through the heap, without ever
// reordering against other events. When an event IS pending at exactly t,
// falling back to At(t, fn) preserves the unbatched tie-break order too,
// because the fallback event is scheduled at the same point in the
// execution where the unbatched code would have scheduled it.
func (s *Scheduler) AdvanceIfIdle(t Time) bool {
	if t < s.now {
		return false
	}
	if s.stopped {
		return false
	}
	if s.horizon != 0 && t >= s.horizon {
		return false
	}
	if e, ok := s.peek(); ok && e.at <= t {
		return false
	}
	s.now = t
	return true
}

// 4-ary min-heap over (at, seq). A wider node halves the tree depth versus
// a binary heap, trading a few extra comparisons per level for fewer cache
// misses — a net win at the 1e5+ pending events the border workloads hold.

func lessEntry(a, b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts an entry, sifting up from the new leaf.
//
//wirecap:hotpath
func (s *Scheduler) push(e entry) {
	s.heap = append(s.heap, e) //wirelint:allow hotpath slot pool grows amortized; steady state pops the free list
	i := len(s.heap) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !lessEntry(e, s.heap[p]) {
			break
		}
		s.heap[i] = s.heap[p]
		i = p
	}
	s.heap[i] = e
}

// popRoot removes the heap minimum.
func (s *Scheduler) popRoot() {
	n := len(s.heap) - 1
	e := s.heap[n]
	s.heap = s.heap[:n]
	if n > 0 {
		s.siftDown(0, e)
	}
}

// siftDown places e at index i, sinking it until both it and the heap
// below are in order.
func (s *Scheduler) siftDown(i int, e entry) {
	n := len(s.heap)
	for {
		c := i*4 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if lessEntry(s.heap[j], s.heap[m]) {
				m = j
			}
		}
		if !lessEntry(s.heap[m], e) {
			break
		}
		s.heap[i] = s.heap[m]
		i = m
	}
	s.heap[i] = e
}

// Timer is a reusable scheduled event: one callback bound once, re-armed
// as often as needed with no per-arming allocation. Periodic and
// self-rescheduling activities (packet pacing, NAPI polling ticks, TX
// drains) hold one Timer for their lifetime instead of allocating a
// closure per occurrence.
//
// A Timer is single-shot per arming: it disarms just before the callback
// runs, and the callback may re-arm it (including for the same virtual
// instant's successor).
type Timer struct {
	s     *Scheduler
	fn    func()
	runFn func() // bound once; what actually enters the event queue
	id    EventID
	armed bool
}

// NewTimer binds fn to a reusable timer on this scheduler. The timer
// starts disarmed.
func (s *Scheduler) NewTimer(fn func()) *Timer {
	if fn == nil {
		panic("vtime: nil timer function")
	}
	t := &Timer{s: s, fn: fn}
	t.runFn = func() {
		t.armed = false
		t.fn()
	}
	return t
}

// ScheduleAt arms the timer for absolute time at, replacing any previous
// arming.
func (t *Timer) ScheduleAt(at Time) {
	if t.armed {
		t.s.Cancel(t.id)
	}
	t.id = t.s.At(at, t.runFn)
	t.armed = true
}

// Schedule arms the timer d nanoseconds from now, replacing any previous
// arming.
func (t *Timer) Schedule(d Time) {
	if d < 0 {
		d = 0
	}
	t.ScheduleAt(t.s.Now() + d)
}

// Stop disarms the timer. It reports whether the timer was armed.
func (t *Timer) Stop() bool {
	if !t.armed {
		return false
	}
	t.armed = false
	return t.s.Cancel(t.id)
}

// Armed reports whether the timer has a pending firing.
func (t *Timer) Armed() bool { return t.armed }

// Every returns an armed timer that runs fn every interval, first firing
// at now+interval. The timer re-arms before fn runs, so fn may call Stop
// to end the series or ScheduleAt/Schedule to change the cadence.
func (s *Scheduler) Every(interval Time, fn func()) *Timer {
	if interval <= 0 {
		panic(fmt.Sprintf("vtime: Every interval %v", interval))
	}
	if fn == nil {
		panic("vtime: nil event function")
	}
	var t *Timer
	t = s.NewTimer(func() {
		t.Schedule(interval)
		fn()
	})
	t.Schedule(interval)
	return t
}
