// Package vtime provides a deterministic discrete-event simulation engine:
// a virtual clock, an event scheduler, seeded random numbers, and small
// rate/bandwidth helpers used by the NIC, bus, and engine models.
//
// All simulation components in this repository advance time exclusively
// through a Scheduler, so every experiment is bit-for-bit reproducible and
// a 32-second, 5-million-packet trace replays in well under a second of
// wall-clock time.
package vtime

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It is deliberately not time.Time: virtual time has no epoch,
// no monotonic-clock subtleties, and no wall-clock meaning.
type Time int64

// Common durations re-exported for readability at call sites.
const (
	Nanosecond  = Time(1)
	Microsecond = 1000 * Nanosecond
	Millisecond = 1000 * Microsecond
	Second      = 1000 * Millisecond
)

// Duration converts a standard library duration to virtual nanoseconds.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// PerSecond returns the interval between events occurring at the given
// rate (events per second). A non-positive rate returns the maximum
// representable interval, effectively "never".
func PerSecond(rate float64) Time {
	if rate <= 0 {
		return Time(math.MaxInt64)
	}
	return Time(float64(Second) / rate)
}

// event is a scheduled callback. seq breaks ties so that events scheduled
// earlier at the same timestamp run first (FIFO within a timestamp), which
// keeps the simulation deterministic.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	idx  int
	dead bool
}

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*q = old[:n-1]
	return ev
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID struct{ ev *event }

// Scheduler is a discrete-event simulation executive. The zero value is
// ready to use; it starts at virtual time 0.
//
// Scheduler is not safe for concurrent use: the simulation is
// single-threaded by design (determinism), with concurrency in the modeled
// system expressed as interleaved events rather than goroutines.
type Scheduler struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stopped bool
}

// NewScheduler returns a scheduler starting at virtual time zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) panics: it always indicates a modeling bug, and silently
// clamping it would hide causality violations.
func (s *Scheduler) At(t Time, fn func()) EventID {
	if t < s.now {
		panic(fmt.Sprintf("vtime: scheduling event at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("vtime: nil event function")
	}
	ev := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return EventID{ev}
}

// After schedules fn to run d nanoseconds from now.
func (s *Scheduler) After(d Time, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op and returns false.
func (s *Scheduler) Cancel(id EventID) bool {
	ev := id.ev
	if ev == nil || ev.dead || ev.idx < 0 {
		return false
	}
	ev.dead = true
	heap.Remove(&s.queue, ev.idx)
	return true
}

// Pending reports the number of events waiting to run.
func (s *Scheduler) Pending() int { return len(s.queue) }

// Stop makes the currently executing Run/RunUntil return after the current
// event completes. Pending events remain queued.
func (s *Scheduler) Stop() { s.stopped = true }

// Step runs the single earliest pending event, advancing the clock to its
// timestamp. It returns false if no events are pending.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		ev := heap.Pop(&s.queue).(*event)
		if ev.dead {
			continue
		}
		s.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
// Events scheduled after t remain pending.
func (s *Scheduler) RunUntil(t Time) {
	s.stopped = false
	for !s.stopped {
		if len(s.queue) == 0 {
			break
		}
		// Peek: heap root is the earliest event.
		next := s.queue[0]
		if next.dead {
			heap.Pop(&s.queue)
			continue
		}
		if next.at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}
