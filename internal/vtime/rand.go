package vtime

import "math"

// Rand is a small, fast, deterministic pseudo-random generator
// (splitmix64 for seeding, xoshiro256** for the stream). Experiments seed
// one Rand per workload so runs are reproducible regardless of Go version
// or math/rand internals.
type Rand struct {
	s [4]uint64
}

// NewRand returns a generator seeded from the given value. Any seed,
// including zero, yields a full-quality stream.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	// splitmix64 to expand the seed into four non-degenerate state words.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// SplitSeed derives an independent child seed from a root seed and a
// stream index, so a multi-domain simulation can give every domain (or
// host, or injector) its own full-quality deterministic stream that
// depends only on the root seed and the stream's stable identity — never
// on which goroutine or time domain ends up running it. The derivation
// is a splitmix64 mix of the root with a golden-ratio-spaced stream
// offset, the same construction NewRand uses internally.
func SplitSeed(seed, stream uint64) uint64 {
	x := seed + (stream+1)*0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns the next 32 random bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("vtime: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method, unbiased.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed value with mean 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Pareto returns a bounded-Pareto-like heavy-tailed value with the given
// shape alpha and minimum xm. Used for flow sizes in the border-router
// traffic model.
func (r *Rand) Pareto(alpha, xm float64) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return xm / math.Pow(u, 1/alpha)
		}
	}
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *Rand) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		u2 := r.Float64()
		if u1 > 0 {
			return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
		}
	}
}
