package vtime

import "testing"

func TestTimerRearmAndStop(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	tm := s.NewTimer(func() { fired = append(fired, s.Now()) })
	if tm.Armed() {
		t.Fatal("new timer armed")
	}
	if tm.Stop() {
		t.Fatal("Stop on disarmed timer returned true")
	}
	tm.Schedule(10)
	if !tm.Armed() {
		t.Fatal("timer not armed after Schedule")
	}
	s.Run()
	if len(fired) != 1 || fired[0] != 10 {
		t.Fatalf("fired = %v, want [10]", fired)
	}
	if tm.Armed() {
		t.Fatal("timer armed after firing")
	}
	// Re-arm the same timer: one Timer serves many firings.
	tm.ScheduleAt(25)
	s.Run()
	if len(fired) != 2 || fired[1] != 25 {
		t.Fatalf("fired = %v, want [10 25]", fired)
	}
	// Stop prevents a pending firing.
	tm.Schedule(5)
	if !tm.Stop() {
		t.Fatal("Stop on armed timer returned false")
	}
	s.Run()
	if len(fired) != 2 {
		t.Fatalf("stopped timer fired: %v", fired)
	}
}

func TestTimerScheduleReplacesPrevious(t *testing.T) {
	s := NewScheduler()
	n := 0
	tm := s.NewTimer(func() { n++ })
	tm.Schedule(10)
	tm.Schedule(20) // replaces, does not add
	s.Run()
	if n != 1 {
		t.Fatalf("timer fired %d times, want 1", n)
	}
	if s.Now() != 20 {
		t.Fatalf("now = %v, want 20ns", s.Now())
	}
}

func TestTimerSelfReschedule(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	var tm *Timer
	tm = s.NewTimer(func() {
		fired = append(fired, s.Now())
		if len(fired) < 3 {
			tm.Schedule(7)
		}
	})
	tm.Schedule(7)
	s.Run()
	want := []Time{7, 14, 21}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestEvery(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	var tm *Timer
	tm = s.Every(100, func() {
		fired = append(fired, s.Now())
		if len(fired) == 4 {
			tm.Stop()
		}
	})
	s.Run()
	want := []Time{100, 200, 300, 400}
	if len(fired) != len(want) {
		t.Fatalf("fired %d times, want %d", len(fired), len(want))
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestEveryPanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	NewScheduler().Every(0, func() {})
}

func TestAdvanceIfIdle(t *testing.T) {
	s := NewScheduler()
	if !s.AdvanceIfIdle(50) {
		t.Fatal("empty scheduler refused to advance")
	}
	if s.Now() != 50 {
		t.Fatalf("now = %v, want 50ns", s.Now())
	}
	if s.AdvanceIfIdle(40) {
		t.Fatal("advanced backwards")
	}
	s.At(100, func() {})
	if s.AdvanceIfIdle(100) {
		t.Fatal("advanced over an event due at exactly t")
	}
	if s.AdvanceIfIdle(150) {
		t.Fatal("advanced over a pending event")
	}
	if s.Now() != 50 {
		t.Fatalf("failed advance moved the clock to %v", s.Now())
	}
	if !s.AdvanceIfIdle(99) {
		t.Fatal("refused to advance short of the pending event")
	}
	s.Step() // run the event at 100
	// A cancelled event no longer blocks advancing.
	id := s.At(120, func() {})
	s.Cancel(id)
	if !s.AdvanceIfIdle(130) {
		t.Fatal("cancelled event blocked advancing")
	}
	s.Stop()
	if s.AdvanceIfIdle(200) {
		t.Fatal("advanced after Stop")
	}
}

// TestCompaction drives the cancel-heavy path that triggers the stale
// sweep and checks the heap actually shrinks while survivors stay correct.
func TestCompaction(t *testing.T) {
	s := NewScheduler()
	const n = 10_000
	ids := make([]EventID, 0, n)
	var fired []Time
	for i := 0; i < n; i++ {
		at := Time(i + 1)
		if i%100 == 0 {
			s.At(at, func() { fired = append(fired, s.Now()) })
			continue
		}
		ids = append(ids, s.At(at, func() { t.Errorf("cancelled event at %v fired", at) }))
	}
	for _, id := range ids {
		if !s.Cancel(id) {
			t.Fatal("cancel failed")
		}
	}
	if len(s.heap) >= n/2 {
		t.Fatalf("heap holds %d entries after mass cancel, want far fewer", len(s.heap))
	}
	if got, want := s.Pending(), n/100; got != want {
		t.Fatalf("Pending = %d, want %d", got, want)
	}
	s.Run()
	if len(fired) != n/100 {
		t.Fatalf("%d survivors fired, want %d", len(fired), n/100)
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] <= fired[i-1] {
			t.Fatalf("survivors fired out of order: %v", fired)
		}
	}
}

func nopEvent() {}

// TestScheduleStepZeroAllocs is the regression guard for the scheduler's
// hot path: once the slot pool and heap have reached steady-state size,
// schedule+step must not allocate.
func TestScheduleStepZeroAllocs(t *testing.T) {
	s := NewScheduler()
	// Warm the pool and heap.
	for i := 0; i < 1024; i++ {
		s.At(s.Now()+Time(i+1), nopEvent)
	}
	for s.Pending() > 0 {
		s.Step()
	}
	if n := testing.AllocsPerRun(1000, func() {
		s.At(s.Now()+1, nopEvent)
		s.Step()
	}); n > 0 {
		t.Errorf("schedule+step allocates %.2f/op, want 0", n)
	}
}

func TestScheduleCancelZeroAllocs(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 1024; i++ {
		s.At(s.Now()+Time(i+1), nopEvent)
	}
	for s.Pending() > 0 {
		s.Step()
	}
	if n := testing.AllocsPerRun(1000, func() {
		id := s.At(s.Now()+1, nopEvent)
		s.Cancel(id)
	}); n > 0 {
		t.Errorf("schedule+cancel allocates %.2f/op, want 0", n)
	}
}

func TestTimerRearmZeroAllocs(t *testing.T) {
	s := NewScheduler()
	tm := s.NewTimer(nopEvent)
	tm.Schedule(1)
	s.Run()
	if n := testing.AllocsPerRun(1000, func() {
		tm.Schedule(1)
		s.Step()
	}); n > 0 {
		t.Errorf("timer re-arm allocates %.2f/op, want 0", n)
	}
}
