package vtime

// Server models a single-threaded processing element (a CPU core running
// one thread) as a non-preemptive work-conserving server: work items are
// charged a service duration, and the server is busy until the sum of
// accepted service times has elapsed.
//
// Engines use Server to model application threads, capture threads, and
// kernel polling contexts, including the PF_RING receive-livelock case
// where two servers contend for the same core via a Core.
type Server struct {
	sched *Scheduler
	// busyUntil is the virtual time at which all accepted work completes.
	busyUntil Time
	// charged accumulates all accepted work, for CPU-utilization
	// accounting.
	charged Time
	// core, if non-nil, is the physical core this server runs on; its
	// share scales every charged duration.
	core *Core
}

// NewServer returns a server bound to the scheduler, optionally sharing a
// Core with other servers (pass nil for a dedicated core).
func NewServer(s *Scheduler, core *Core) *Server {
	return &Server{sched: s, core: core}
}

// Busy reports whether the server has unfinished work at the current time.
func (sv *Server) Busy() bool { return sv.busyUntil > sv.sched.Now() }

// BusyUntil returns the completion time of all accepted work.
func (sv *Server) BusyUntil() Time { return sv.busyUntil }

// Charge accepts a work item requiring d of service and returns the virtual
// time at which it completes. Work is serialized: if the server is busy the
// item starts when the previous items finish.
func (sv *Server) Charge(d Time) Time {
	if d < 0 {
		d = 0
	}
	if sv.core != nil {
		d = sv.core.scale(d)
	}
	start := sv.busyUntil
	if now := sv.sched.Now(); start < now {
		start = now
	}
	sv.busyUntil = start + d
	sv.charged += d
	return sv.busyUntil
}

// Charged returns the total work ever accepted, i.e. the server's
// cumulative CPU time.
func (sv *Server) Charged() Time { return sv.charged }

// ChargeAndCall charges d of service and schedules fn at the completion
// time.
func (sv *Server) ChargeAndCall(d Time, fn func()) {
	done := sv.Charge(d)
	sv.sched.At(done, fn)
}

// Core models a physical CPU core shared by several servers. When more
// than one server is attached, every server's service times are stretched
// by the reciprocal of its share. This is a fluid-flow approximation of
// time-slicing: it does not reorder work, but it reproduces the throughput
// collapse the paper attributes to receive livelock when kernel polling
// and the application share a core.
type Core struct {
	// kernelShare is the fraction of the core consumed by kernel-context
	// work (NAPI polling). The application server on this core runs at
	// (1 - kernelShare) speed. Updated dynamically by the PF_RING model.
	kernelShare float64
}

// NewCore returns a core with no kernel contention.
func NewCore() *Core { return &Core{} }

// SetKernelShare sets the fraction of CPU consumed by kernel polling,
// clamped to [0, 0.95]; the application always makes some progress, as
// NAPI's budget mechanism guarantees on a real system.
func (c *Core) SetKernelShare(f float64) {
	if f < 0 {
		f = 0
	}
	if f > 0.95 {
		f = 0.95
	}
	c.kernelShare = f
}

// KernelShare returns the current kernel share.
func (c *Core) KernelShare() float64 { return c.kernelShare }

func (c *Core) scale(d Time) Time {
	if c.kernelShare <= 0 {
		return d
	}
	return Time(float64(d) / (1 - c.kernelShare))
}
