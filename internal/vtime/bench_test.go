package vtime

import "testing"

// fill preloads the scheduler with n pending events spread over a wide
// time range, so the heap operations below run at a realistic depth.
func fill(s *Scheduler, n int) {
	nop := func() {}
	r := NewRand(1)
	for i := 0; i < n; i++ {
		s.At(Time(1+r.Intn(1<<30)), nop)
	}
}

// BenchmarkSchedule measures At into a 1e6-event heap (push only; events
// are drained once outside the timer every 1e6 iterations).
func BenchmarkSchedule(b *testing.B) {
	s := NewScheduler()
	fill(s, 1_000_000)
	nop := func() {}
	r := NewRand(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.At(s.Now()+Time(1+r.Intn(1<<30)), nop)
		if s.Pending() >= 2_000_000 {
			b.StopTimer()
			for s.Pending() > 1_000_000 {
				s.Step()
			}
			b.StartTimer()
		}
	}
}

// BenchmarkScheduleStep measures the self-rescheduling hot path every
// simulation actor runs: pop the earliest event, which schedules its
// successor — with 1e6 cold events pending underneath.
func BenchmarkScheduleStep(b *testing.B) {
	s := NewScheduler()
	fill(s, 1_000_000)
	var tick func()
	tick = func() { s.At(s.Now()+1, tick) }
	s.At(0, tick)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// BenchmarkCancel measures schedule+cancel round trips at 1e6 pending.
func BenchmarkCancel(b *testing.B) {
	s := NewScheduler()
	fill(s, 1_000_000)
	nop := func() {}
	r := NewRand(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := s.At(s.Now()+Time(1+r.Intn(1<<30)), nop)
		if !s.Cancel(id) {
			b.Fatal("cancel failed")
		}
	}
}
