package vtime

import (
	"sort"
	"testing"
)

// TestSchedulerAgainstReferenceModel drives the event heap with random
// schedule/cancel sequences and checks execution order against a simple
// reference (a sorted list), across many seeds.
func TestSchedulerAgainstReferenceModel(t *testing.T) {
	type refEvent struct {
		at  Time
		seq int
		id  EventID
	}
	for seed := uint64(0); seed < 20; seed++ {
		r := NewRand(seed)
		s := NewScheduler()
		var ref []refEvent
		var got []int
		seq := 0
		// Schedule a batch of events at random times, cancel a random
		// subset, interleaved.
		for i := 0; i < 300; i++ {
			switch r.Intn(4) {
			case 0, 1, 2:
				at := Time(r.Intn(10_000))
				mySeq := seq
				seq++
				id := s.At(at, func() { got = append(got, mySeq) })
				ref = append(ref, refEvent{at: at, seq: mySeq, id: id})
			case 3:
				if len(ref) == 0 {
					continue
				}
				i := r.Intn(len(ref))
				if s.Cancel(ref[i].id) {
					ref[i] = ref[len(ref)-1]
					ref = ref[:len(ref)-1]
				}
			}
		}
		s.Run()
		// Reference order: by (at, seq).
		sort.Slice(ref, func(i, j int) bool {
			if ref[i].at != ref[j].at {
				return ref[i].at < ref[j].at
			}
			return ref[i].seq < ref[j].seq
		})
		if len(got) != len(ref) {
			t.Fatalf("seed %d: ran %d events, want %d", seed, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i].seq {
				t.Fatalf("seed %d: event %d = seq %d, want %d", seed, i, got[i], ref[i].seq)
			}
		}
	}
}

// TestSchedulerNestedSchedulingModel mixes events that schedule further
// events, checking the clock never goes backward and every event runs.
func TestSchedulerNestedSchedulingModel(t *testing.T) {
	r := NewRand(123)
	s := NewScheduler()
	ran := 0
	var lastTime Time = -1
	var spawn func(depth int)
	spawn = func(depth int) {
		s.After(Time(r.Intn(1000)), func() {
			if s.Now() < lastTime {
				t.Fatalf("clock went backward: %v after %v", s.Now(), lastTime)
			}
			lastTime = s.Now()
			ran++
			if depth > 0 {
				for i := 0; i < r.Intn(3); i++ {
					spawn(depth - 1)
				}
			}
		})
	}
	for i := 0; i < 50; i++ {
		spawn(4)
	}
	s.Run()
	if ran < 50 {
		t.Fatalf("ran %d events", ran)
	}
	if s.Pending() != 0 {
		t.Fatalf("%d events pending after Run", s.Pending())
	}
}
