package domain

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/vtime"
)

// buildPingPong wires k "node" entities that bounce counters at each
// other through mailboxes, each node generating its own paced events
// too, and returns the transcript the collector observed. Placement is
// by node index modulo domain count, so the construction order — and
// therefore every port/tx id — is identical for any domain count.
func runPingPong(t *testing.T, nodes, domains, workers int, seed uint64, rounds int) string {
	t.Helper()
	sim := New(Config{Domains: domains, Workers: workers})
	transcript := ""
	collectorDom := sim.Domain(0)
	collect := sim.NewPort(collectorDom, 5*vtime.Microsecond, func(at vtime.Time, p any) {
		transcript += fmt.Sprintf("%v %v\n", at, p)
	})
	type node struct {
		tx   *Tx
		port *Port
		r    *vtime.Rand
		seen int
	}
	ns := make([]*node, nodes)
	// Two construction passes so every node can address its successor's
	// port; pass order is node order, independent of placement.
	for i := range ns {
		ns[i] = &node{r: vtime.NewRand(vtime.SplitSeed(seed, uint64(i)))}
	}
	for i, n := range ns {
		d := sim.Domain(i % domains)
		n.tx = sim.NewTx(d)
		i := i
		n.port = sim.NewPort(d, 10*vtime.Microsecond, func(at vtime.Time, p any) {
			hop := p.(int)
			ns[i].seen++
			n.tx.Send(collect, fmt.Sprintf("node%d got hop %d", i, hop))
			if hop < rounds {
				n.tx.Send(ns[(i+1)%nodes].port, hop+1)
			}
		})
	}
	// Each node also runs a private paced activity on its own scheduler
	// with a per-node RNG, and kicks off one ping.
	for i, n := range ns {
		d := sim.Domain(i % domains)
		sched := d.Scheduler()
		i, n := i, n
		var tick func()
		left := rounds
		tick = func() {
			n.tx.Send(collect, fmt.Sprintf("node%d tick", i))
			if left--; left > 0 {
				sched.After(vtime.Time(1+n.r.Intn(50))*vtime.Microsecond, tick)
			}
		}
		sched.After(vtime.Time(1+n.r.Intn(20))*vtime.Microsecond, tick)
		sched.At(0, func() { n.tx.Send(ns[(i+1)%nodes].port, 1) })
	}
	sim.Run()
	total := 0
	for _, n := range ns {
		total += n.seen
	}
	if total != nodes*rounds {
		t.Fatalf("hops seen %d, want %d", total, nodes*rounds)
	}
	return fmt.Sprintf("end=%v\n%s", sim.Now(), transcript)
}

// TestPlacementEquivalence is the heart of the PDES determinism
// argument: the same construction must produce byte-identical
// transcripts for every domain count and worker count, sequential or
// parallel.
func TestPlacementEquivalence(t *testing.T) {
	prev := runtime.GOMAXPROCS(4) // allow real concurrency under -race
	defer runtime.GOMAXPROCS(prev)
	want := runPingPong(t, 6, 1, 1, 42, 8)
	for _, domains := range []int{2, 3, 6} {
		for _, workers := range []int{1, 4} {
			got := runPingPong(t, 6, domains, workers, 42, 8)
			if got != want {
				t.Errorf("domains=%d workers=%d transcript diverged from sequential:\n got: %q\nwant: %q",
					domains, workers, got, want)
			}
		}
	}
}

// TestPlacementEquivalenceFuzz fuzzes seeds and topology sizes over the
// same invariant.
func TestPlacementEquivalenceFuzz(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	r := vtime.NewRand(7)
	for trial := 0; trial < 12; trial++ {
		nodes := 2 + r.Intn(5)
		seed := r.Uint64()
		rounds := 3 + r.Intn(6)
		want := runPingPong(t, nodes, 1, 1, seed, rounds)
		domains := 2 + r.Intn(nodes)
		got := runPingPong(t, nodes, domains, 4, seed, rounds)
		if got != want {
			t.Fatalf("trial %d (nodes=%d domains=%d seed=%d rounds=%d): transcript diverged",
				trial, nodes, domains, seed, rounds)
		}
	}
}

// TestDeliveryOrderCanonical pins the merge tiebreak: deliveries at the
// same virtual instant arrive ordered by (port, tx, seq) and before any
// internal event at that instant, regardless of which domain sent them
// or in which order the senders ran.
func TestDeliveryOrderCanonical(t *testing.T) {
	run := func(domains int) string {
		sim := New(Config{Domains: domains, Workers: 1})
		out := ""
		target := sim.Domain(0)
		pa := sim.NewPort(target, vtime.Microsecond, func(at vtime.Time, p any) {
			out += fmt.Sprintf("A:%v:%v ", at, p)
		})
		pb := sim.NewPort(target, vtime.Microsecond, func(at vtime.Time, p any) {
			out += fmt.Sprintf("B:%v:%v ", at, p)
		})
		// Internal event at the exact delivery instant must run after
		// both deliveries.
		target.Scheduler().At(vtime.Microsecond, func() { out += "internal " })
		// Senders constructed in reverse placement order; ids still fix
		// the merge.
		n := 3
		txs := make([]*Tx, n)
		for i := 0; i < n; i++ {
			txs[i] = sim.NewTx(sim.Domain(i % domains))
		}
		for i := n - 1; i >= 0; i-- {
			i := i
			sim.Domain(i%domains).Scheduler().At(0, func() {
				txs[i].Send(pb, i)
				txs[i].Send(pa, i)
			})
		}
		sim.Run()
		return out
	}
	want := "A:0.000001s:0 A:0.000001s:1 A:0.000001s:2 B:0.000001s:0 B:0.000001s:1 B:0.000001s:2 internal "
	for _, domains := range []int{1, 2, 3} {
		if got := run(domains); got != want {
			t.Errorf("domains=%d: merge order %q, want %q", domains, got, want)
		}
	}
}

// TestHorizonStopsBatching proves the AdvanceIfIdle guard: a batching
// event must not skip past a pending mailbox delivery, so a generator
// that batches aggressively still interleaves correctly with deliveries.
func TestHorizonStopsBatching(t *testing.T) {
	sim := New(Config{Domains: 2, Workers: 1})
	gen := sim.Domain(0)
	var log string
	sim.NewPort(gen, vtime.Microsecond, func(at vtime.Time, p any) {
		log += fmt.Sprintf("deliver@%v ", at)
	})
	port0 := sim.ports[0]
	tx := sim.NewTx(sim.Domain(1))
	sim.Domain(1).Scheduler().At(0, func() { tx.Send(port0, "x") })
	// The generator tries to batch from t=0 far past the delivery at
	// 1 µs; the horizon must force it back onto scheduled events.
	sched := gen.Scheduler()
	var step func()
	n := 0
	step = func() {
		log += fmt.Sprintf("gen@%v ", sched.Now())
		n++
		if n >= 3 {
			return
		}
		next := sched.Now() + 700*vtime.Nanosecond
		if !sched.AdvanceIfIdle(next) {
			sched.At(next, step)
			return
		}
		step()
	}
	sched.At(0, step)
	sim.Run()
	want := "gen@0.000000s gen@0.000001s deliver@0.000001s gen@0.000001s "
	if log != want {
		t.Errorf("interleaving %q, want %q", log, want)
	}
}

// TestSingleDomainMatchesPlainScheduler: with one domain and no ports,
// Run is exactly the ordinary scheduler loop.
func TestSingleDomainMatchesPlainScheduler(t *testing.T) {
	plainSched := vtime.NewScheduler()
	plain := scheduleCounters(plainSched)
	plainSched.Run()

	sim := New(Config{Domains: 1})
	viaDomain := scheduleCounters(sim.Domain(0).Scheduler())
	sim.Run()

	if *plain != *viaDomain {
		t.Errorf("plain %q != single-domain %q", *plain, *viaDomain)
	}
	if plainSched.Now() != sim.Now() {
		t.Errorf("end times diverged: %v vs %v", plainSched.Now(), sim.Now())
	}
}

// scheduleCounters schedules a deterministic self-rescheduling workload
// on s and returns a pointer to its (growing) trace.
func scheduleCounters(s *vtime.Scheduler) *string {
	out := new(string)
	r := vtime.NewRand(3)
	for i := 0; i < 4; i++ {
		i := i
		left := 5
		var tick func()
		tick = func() {
			*out += fmt.Sprintf("%d@%v ", i, s.Now())
			if left--; left > 0 {
				s.After(vtime.Time(1+r.Intn(30)), tick)
			}
		}
		s.After(vtime.Time(1+r.Intn(10)), tick)
	}
	return out
}

// TestPortLatencyFloor: a zero-latency port would break conservative
// lookahead and must be rejected loudly.
func TestPortLatencyFloor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPort with zero latency did not panic")
		}
	}()
	sim := New(Config{Domains: 2})
	sim.NewPort(sim.Domain(0), 0, func(vtime.Time, any) {})
}

// TestWorkerPanicPropagates: a panic inside a parallel window must
// surface on the calling goroutine, not crash the process from a
// worker.
func TestWorkerPanicPropagates(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	defer func() {
		if recover() == nil {
			t.Fatal("panic in a domain event did not propagate out of Run")
		}
	}()
	sim := New(Config{Domains: 4, Workers: 4})
	// Ports force windowed execution with all domains active.
	for i := 0; i < 4; i++ {
		sim.NewPort(sim.Domain(i), vtime.Microsecond, func(vtime.Time, any) {})
	}
	for i := 0; i < 4; i++ {
		i := i
		sim.Domain(i).Scheduler().At(vtime.Time(i), func() {
			if i == 3 {
				panic("boom")
			}
		})
	}
	sim.Run()
}
