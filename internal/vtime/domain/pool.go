package domain

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// The process-wide worker budget. Every parallel construct in the
// repository — Sim windows, bench's cross-run fan-out — borrows extra
// workers from this one budget instead of spawning its own goroutines,
// so nested parallelism (parallel runs of parallel simulations)
// degrades to sequential execution instead of oversubscribing cores:
// the total number of borrowed workers can never exceed GOMAXPROCS-1,
// and every borrower also works with its own calling goroutine.
//
// The budget is read from GOMAXPROCS at each acquisition, so tests can
// widen it (runtime.GOMAXPROCS) to exercise real concurrency under the
// race detector even on small machines.
var borrowed atomic.Int64

// tryBorrow takes one worker from the budget, failing (never blocking)
// when the budget is exhausted. Blocking here could deadlock nested
// fan-outs; failing just means the caller runs more of the work itself.
func tryBorrow() bool {
	for {
		cur := borrowed.Load()
		if cur >= int64(runtime.GOMAXPROCS(0)-1) {
			return false
		}
		if borrowed.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// ForEach runs n independent jobs, at most max concurrently (0 means up
// to GOMAXPROCS), drawing extra workers from the process-wide budget.
// The calling goroutine always participates, so ForEach makes progress
// even with an empty budget. It returns the first error; after a
// failure, running workers stop at their next job boundary. A panicking
// job stops the fan-out and the panic is re-raised on the caller's
// goroutine once all workers have parked — a worker goroutine never
// takes the process down without the caller's stack attached.
//
// Job indices are claimed dynamically, so which worker runs which job is
// scheduling-dependent; jobs must be independent, and anything
// deterministic must be keyed by job index, not execution order.
func ForEach(n, max int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if max <= 0 {
		max = runtime.GOMAXPROCS(0)
	}
	if max > n {
		max = n
	}
	extra := 0
	for extra < max-1 && tryBorrow() {
		extra++
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		mu       sync.Mutex
		firstErr error
		panicked any
	)
	work := func() {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if panicked == nil {
					panicked = r
				}
				mu.Unlock()
				stop.Store(true)
			}
		}()
		for !stop.Load() {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if err := job(i); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				stop.Store(true)
				return
			}
		}
	}
	if extra == 0 {
		work()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < extra; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				work()
			}()
		}
		work()
		wg.Wait()
		borrowed.Add(int64(-extra))
	}
	if panicked != nil {
		panic(fmt.Sprintf("domain: worker panicked: %v", panicked))
	}
	return firstErr
}
