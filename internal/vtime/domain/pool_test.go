package domain

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachRunsAllJobs(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	var hit [100]atomic.Int32
	if err := ForEach(len(hit), 0, func(i int) error {
		hit[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range hit {
		if n := hit[i].Load(); n != 1 {
			t.Fatalf("job %d ran %d times", i, n)
		}
	}
}

func TestForEachFirstError(t *testing.T) {
	want := errors.New("job 3 failed")
	err := ForEach(10, 2, func(i int) error {
		if i == 3 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
}

func TestForEachSequentialFallback(t *testing.T) {
	// With GOMAXPROCS=1 the budget is empty: ForEach must still finish
	// all jobs on the calling goroutine.
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	n := 0
	if err := ForEach(25, 8, func(i int) error {
		if i != n {
			t.Fatalf("sequential fallback ran job %d before %d", i, n)
		}
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 25 {
		t.Fatalf("ran %d jobs, want 25", n)
	}
}

// TestForEachNestedBudget: the total number of borrowed workers across
// nested fan-outs stays within the process budget — inner ForEach calls
// find the budget drained and degrade gracefully instead of multiplying
// goroutines.
func TestForEachNestedBudget(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	var peak, cur atomic.Int64
	err := ForEach(8, 0, func(i int) error {
		return ForEach(8, 0, func(j int) error {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			for k := 0; k < 1000; k++ { // widen the overlap window
				_ = k
			}
			cur.Add(-1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Borrowed workers <= GOMAXPROCS-1 = 3, plus up to 8 outer callers
	// participating themselves: concurrency can never exceed outer
	// participants + borrowed budget.
	if p := peak.Load(); p > 4+3 {
		t.Fatalf("peak concurrency %d exceeds budget bound", p)
	}
	if got := borrowed.Load(); got != 0 {
		t.Fatalf("borrowed tokens leaked: %d", got)
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	defer func() {
		if recover() == nil {
			t.Fatal("worker panic did not propagate")
		}
		if got := borrowed.Load(); got != 0 {
			t.Fatalf("borrowed tokens leaked after panic: %d", got)
		}
	}()
	_ = ForEach(16, 4, func(i int) error {
		if i == 7 {
			panic("boom")
		}
		return nil
	})
}
