// Package domain is the parallel discrete-event runtime: it partitions
// a simulation into time domains — independent vtime.Scheduler instances
// that may advance concurrently on separate goroutines — and keeps the
// whole composition exactly as deterministic as a single scheduler.
//
// The design is classic conservative PDES (parallel discrete-event
// simulation) with synchronous lookahead windows:
//
//   - Each Domain owns one scheduler and every simulation component
//     assigned to it. Within a domain, execution is the ordinary
//     sequential event loop, bit-identical to a standalone scheduler.
//   - Domains interact only through mailbox messages sent via a Tx
//     (a stable sending endpoint) to a Port (a stable receiving
//     endpoint). A port declares a minimum delivery latency >= 1 ns; a
//     message sent at virtual time t is delivered at exactly t+latency.
//   - The executive repeatedly computes the global lower bound LB (the
//     earliest pending event or undelivered message anywhere) and lets
//     every domain run all work with timestamps in [LB, LB+lookahead)
//     in parallel, where lookahead is the minimum port latency. Any
//     message sent inside the window arrives at or after the window's
//     end, so domains cannot affect each other mid-window; sends are
//     buffered and routed at the barrier.
//   - Deliveries are merged in a canonical order that depends only on
//     stable identities, never on placement or goroutine scheduling:
//     (deliver-at, port id, tx id, per-tx sequence), with all deliveries
//     at a timestamp running before any internal event at that
//     timestamp. Port and tx ids are assigned in creation order, which
//     the simulation's construction fixes.
//
// The combination makes the output of a Sim a pure function of its
// construction: the same components produce byte-identical results for
// any domain count, any worker count, and any host machine — a Sim with
// one domain and a Sim with eight running on eight cores digest
// identically. That is the property the bench equivalence tests and
// cmd/ci-gate's domains checks pin.
//
// Hot-path batching (vtime.Scheduler.AdvanceIfIdle) stays safe because
// the window loop sets the scheduler's horizon to the earlier of the
// window end and the next pending delivery, so a batching event can
// never skip past a barrier or a mailbox message.
package domain

import (
	"fmt"
	"math"

	"repro/internal/vtime"
)

// Config sizes a Sim.
type Config struct {
	// Domains is the number of time domains. Default 1 — the sequential
	// configuration, whose execution is exactly a lone vtime.Scheduler.
	Domains int
	// Workers bounds how many domains run concurrently within a window.
	// 0 draws up to GOMAXPROCS from the process-wide worker budget
	// (shared with ForEach); 1 forces sequential execution, which must
	// and does produce the same output as any parallel setting.
	Workers int
}

// Sim is the parallel discrete-event executive.
type Sim struct {
	domains   []*Domain
	ports     []*Port
	txs       int // txs ever created, for stable id assignment
	lookahead vtime.Time
	workers   int
	running   bool
}

// Domain is one time domain: a scheduler plus the inbox of cross-domain
// messages addressed to its ports and the outbox of messages its
// components sent in the current window.
type Domain struct {
	id    int
	sim   *Sim
	sched *vtime.Scheduler
	inbox msgHeap
	out   []message
}

// Port is a stable inbound mailbox endpoint on a domain. Messages from
// any domain are delivered to its handler exactly latency after the
// send, merged canonically with all other traffic to the same domain.
type Port struct {
	id      int
	dom     *Domain
	latency vtime.Time
	handler func(at vtime.Time, payload any)
}

// Tx is a stable sending endpoint owned by one domain. Its id and
// per-message sequence numbers provide the placement-independent
// tiebreak for deliveries that share a timestamp.
type Tx struct {
	id  int
	dom *Domain
	seq uint64
}

// message is one in-flight cross-domain event.
type message struct {
	at      vtime.Time
	port    int32
	tx      int32
	seq     uint64
	payload any
}

// New builds a Sim with cfg.Domains empty time domains.
func New(cfg Config) *Sim {
	n := cfg.Domains
	if n <= 0 {
		n = 1
	}
	s := &Sim{lookahead: vtime.Time(math.MaxInt64), workers: cfg.Workers}
	for i := 0; i < n; i++ {
		s.domains = append(s.domains, &Domain{id: i, sim: s, sched: vtime.NewScheduler()})
	}
	return s
}

// Domains returns the number of time domains.
func (s *Sim) Domains() int { return len(s.domains) }

// Domain returns time domain i. Components are assigned to a domain by
// being built against its Scheduler; the assignment is structural and
// must be the same for every domain count a workload supports (a
// canonical rule such as host-index modulo domain count).
func (s *Sim) Domain(i int) *Domain { return s.domains[i] }

// ID returns the domain's index.
func (d *Domain) ID() int { return d.id }

// Scheduler returns the domain's event scheduler. All components of the
// domain schedule exclusively here.
func (d *Domain) Scheduler() *vtime.Scheduler { return d.sched }

// NewPort creates an inbound mailbox endpoint on domain d. latency is
// the fixed delivery delay and must be at least 1 ns: it is the
// cross-domain link's propagation time and the source of the
// conservative lookahead that lets domains run concurrently. handler
// runs inside d at exactly send-time+latency. Ports must be created
// before Run, in an order that does not depend on domain count.
func (s *Sim) NewPort(d *Domain, latency vtime.Time, handler func(at vtime.Time, payload any)) *Port {
	if s.running {
		panic("domain: NewPort during Run")
	}
	if latency < vtime.Nanosecond {
		panic(fmt.Sprintf("domain: port latency %v below 1ns lookahead floor", latency))
	}
	if handler == nil {
		panic("domain: nil port handler")
	}
	p := &Port{id: len(s.ports), dom: d, latency: latency, handler: handler}
	s.ports = append(s.ports, p)
	if latency < s.lookahead {
		s.lookahead = latency
	}
	return p
}

// NewTx creates a sending endpoint owned by domain d. Like ports, txs
// must be created before Run in a placement-independent order.
func (s *Sim) NewTx(d *Domain) *Tx {
	if s.running {
		panic("domain: NewTx during Run")
	}
	t := &Tx{id: s.txs, dom: d}
	s.txs++
	return t
}

// Send posts payload to port p, to be delivered at now+p.latency. It
// must be called from within the owning domain's execution (an event or
// delivery handler running in tx.dom), which is what makes the send
// time — and therefore the delivery time — deterministic. Sends are
// buffered and routed at the next barrier; co-located sender and
// receiver go through the identical path, so placement cannot reorder
// anything.
func (tx *Tx) Send(p *Port, payload any) {
	tx.dom.out = append(tx.dom.out, message{
		at:   tx.dom.sched.Now() + p.latency,
		port: int32(p.id), tx: int32(tx.id), seq: tx.seq,
		payload: payload,
	})
	tx.seq++
}

// next returns the earliest pending work in the domain — internal event
// or undelivered message — or ok=false when idle.
func (d *Domain) next() (vtime.Time, bool) {
	t, ok := d.sched.NextAt()
	if mt, mok := d.inbox.min(); mok && (!ok || mt < t) {
		return mt, true
	}
	return t, ok
}

// runWindow executes all of the domain's work with timestamps strictly
// below limit: mailbox deliveries and internal events interleaved in
// timestamp order, deliveries first at ties (in canonical message
// order). Outgoing sends are buffered in d.out for the barrier.
func (d *Domain) runWindow(limit vtime.Time) {
	for {
		// Keep AdvanceIfIdle honest: batching may not cross the window
		// end or the next pending delivery.
		horizon := limit
		mt, mok := d.inbox.min()
		if mok && mt < horizon {
			horizon = mt
		}
		if horizon == vtime.Time(math.MaxInt64) {
			d.sched.SetHorizon(0)
		} else {
			d.sched.SetHorizon(horizon)
		}
		et, eok := d.sched.NextAt()
		switch {
		case mok && mt < limit && (!eok || mt <= et):
			m := d.inbox.pop()
			d.sched.AdvanceTo(m.at)
			d.sim.ports[m.port].handler(m.at, m.payload)
		case eok && et < limit:
			d.sched.Step()
		default:
			d.sched.SetHorizon(0)
			return
		}
	}
}

// Run executes the simulation to completion: windows of [LB,
// LB+lookahead) are run across all domains (in parallel when Workers
// and the machine allow) with a barrier and canonical message routing
// between windows. With a single domain and no ports this degenerates
// to exactly vtime.Scheduler.Run.
func (s *Sim) Run() {
	if s.running {
		panic("domain: Run re-entered")
	}
	s.running = true
	defer func() { s.running = false }()
	active := make([]int, 0, len(s.domains))
	for {
		// Route the previous window's sends (and any setup-time sends) in
		// canonical order. Heap insertion order is irrelevant to delivery
		// order, but iterating domains by index keeps routing itself
		// deterministic and single-threaded.
		for _, d := range s.domains {
			for _, m := range d.out {
				s.ports[m.port].dom.inbox.push(m)
			}
			d.out = d.out[:0]
		}
		// Global lower bound over every domain's pending work.
		lb := vtime.Time(math.MaxInt64)
		idle := true
		for _, d := range s.domains {
			if t, ok := d.next(); ok {
				idle = false
				if t < lb {
					lb = t
				}
			}
		}
		if idle {
			return
		}
		limit := vtime.Time(math.MaxInt64)
		if s.lookahead < limit-lb {
			limit = lb + s.lookahead
		}
		active = active[:0]
		for i, d := range s.domains {
			if t, ok := d.next(); ok && t < limit {
				active = append(active, i)
			}
		}
		if len(active) == 1 || s.workers == 1 {
			for _, i := range active {
				s.domains[i].runWindow(limit)
			}
			continue
		}
		// The error return is always nil here (runWindow panics on
		// modeling bugs rather than returning errors); ForEach still
		// propagates panics to this goroutine.
		_ = ForEach(len(active), s.workers, func(j int) error {
			s.domains[active[j]].runWindow(limit)
			return nil
		})
	}
}

// Now returns the furthest-advanced domain clock — the global virtual
// time at which the simulation drained. It is placement-independent:
// the maximum event timestamp does not depend on how components were
// spread over domains.
func (s *Sim) Now() vtime.Time {
	var t vtime.Time
	for _, d := range s.domains {
		if n := d.sched.Now(); n > t {
			t = n
		}
	}
	return t
}

// msgHeap is a binary min-heap of messages in canonical delivery order:
// (deliver-at, port, tx, seq). Every key component is stable across
// placements, so two Sims with different domain counts pop identical
// sequences.
type msgHeap struct{ h []message }

func msgLess(a, b message) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.port != b.port {
		return a.port < b.port
	}
	if a.tx != b.tx {
		return a.tx < b.tx
	}
	return a.seq < b.seq
}

func (m *msgHeap) min() (vtime.Time, bool) {
	if len(m.h) == 0 {
		return 0, false
	}
	return m.h[0].at, true
}

func (m *msgHeap) push(x message) {
	m.h = append(m.h, x)
	i := len(m.h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !msgLess(x, m.h[p]) {
			break
		}
		m.h[i] = m.h[p]
		i = p
	}
	m.h[i] = x
}

func (m *msgHeap) pop() message {
	root := m.h[0]
	n := len(m.h) - 1
	x := m.h[n]
	m.h[n] = message{} // release payload reference
	m.h = m.h[:n]
	if n > 0 {
		i := 0
		for {
			c := i*2 + 1
			if c >= n {
				break
			}
			if c+1 < n && msgLess(m.h[c+1], m.h[c]) {
				c++
			}
			if !msgLess(m.h[c], x) {
				break
			}
			m.h[i] = m.h[c]
			i = c
		}
		m.h[i] = x
	}
	return root
}
