package bpf

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements the filter-expression language: a tcpdump-like
// surface syntax parsed into an expression tree that compile.go turns into
// BPF instructions.
//
// Grammar (case-insensitive keywords):
//
//	expr      = term { ("or" | "||") term }
//	term      = factor { ("and" | "&&") factor }
//	factor    = ("not" | "!") factor | "(" expr ")" | primitive
//	primitive = [dir] "host" ADDR
//	          | [dir] "net" NET [ "/" NUM | "mask" ADDR ]
//	          | [dir] "port" NUM
//	          | "ip" | "ip6" | "arp" | "tcp" | "udp" | "icmp"
//	          | "less" NUM | "greater" NUM
//	          | ADDR            (shorthand for "host ADDR")
//	          | PARTIAL-ADDR    (shorthand for "net PARTIAL-ADDR")
//	dir       = "src" | "dst"
//
// The paper's filter "131.225.2 and udp" parses as
// net 131.225.2.0/24 AND udp.

// Dir qualifies an address/port primitive's direction.
type Dir int

// Direction qualifiers.
const (
	DirEither Dir = iota
	DirSrc
	DirDst
)

func (d Dir) String() string {
	switch d {
	case DirSrc:
		return "src"
	case DirDst:
		return "dst"
	default:
		return "src or dst"
	}
}

// Expr is a node of the parsed filter expression.
type Expr interface {
	String() string
}

// AndExpr matches when both operands match.
type AndExpr struct{ L, R Expr }

// OrExpr matches when either operand matches.
type OrExpr struct{ L, R Expr }

// NotExpr inverts its operand.
type NotExpr struct{ E Expr }

// ProtoExpr matches a protocol keyword (ip, ip6, arp, tcp, udp, icmp).
type ProtoExpr struct{ Name string }

// HostExpr matches an IPv4 host address.
type HostExpr struct {
	Dir  Dir
	Addr uint32
}

// NetExpr matches an IPv4 prefix.
type NetExpr struct {
	Dir    Dir
	Prefix uint32 // already masked
	Mask   uint32
}

// PortExpr matches a TCP/UDP port.
type PortExpr struct {
	Dir  Dir
	Port uint16
}

// LenExpr compares the frame length: "less" matches len <= N,
// "greater" matches len >= N (tcpdump semantics).
type LenExpr struct {
	Greater bool
	N       uint32
}

func (e *AndExpr) String() string   { return "(" + e.L.String() + " and " + e.R.String() + ")" }
func (e *OrExpr) String() string    { return "(" + e.L.String() + " or " + e.R.String() + ")" }
func (e *NotExpr) String() string   { return "(not " + e.E.String() + ")" }
func (e *ProtoExpr) String() string { return e.Name }

// dirPrefix renders a direction qualifier in re-parseable form: the
// default (either) direction prints as nothing.
func dirPrefix(d Dir) string {
	switch d {
	case DirSrc:
		return "src "
	case DirDst:
		return "dst "
	default:
		return ""
	}
}

func (e *HostExpr) String() string {
	return fmt.Sprintf("%shost %s", dirPrefix(e.Dir), ipString(e.Addr))
}
func (e *NetExpr) String() string {
	return fmt.Sprintf("%snet %s mask %s", dirPrefix(e.Dir), ipString(e.Prefix), ipString(e.Mask))
}
func (e *PortExpr) String() string { return fmt.Sprintf("%sport %d", dirPrefix(e.Dir), e.Port) }
func (e *LenExpr) String() string {
	if e.Greater {
		return fmt.Sprintf("greater %d", e.N)
	}
	return fmt.Sprintf("less %d", e.N)
}

func ipString(v uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// parser is a recursive-descent parser over whitespace/paren tokens.
type parser struct {
	toks []string
	pos  int
}

// Parse parses a filter expression. An empty expression is valid and
// matches every packet (it parses to nil).
func Parse(src string) (Expr, error) {
	toks := tokenize(src)
	if len(toks) == 0 {
		return nil, nil
	}
	p := &parser{toks: toks}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("bpf: trailing tokens at %q", strings.Join(p.toks[p.pos:], " "))
	}
	return e, nil
}

// tokenize lexes the expression: words (which may contain dots and, for
// CIDR prefixes, slashes), parentheses, brackets, and the arithmetic /
// comparison operators, including the two-character forms &&, ||, !=, >=,
// <=, ==. Division therefore needs surrounding whitespace ("len / 2"), so
// that "10.0.0.0/8" stays one token.
func tokenize(src string) []string {
	var toks []string
	i := 0
	for i < len(src) {
		ch := src[i]
		switch {
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
			i++
		case ch == '(' || ch == ')' || ch == '[' || ch == ']' ||
			ch == '+' || ch == '-' || ch == '*' || ch == ':':
			toks = append(toks, string(ch))
			i++
		case ch == '&' || ch == '|':
			if i+1 < len(src) && src[i+1] == ch {
				toks = append(toks, string(ch)+string(ch))
				i += 2
			} else {
				toks = append(toks, string(ch))
				i++
			}
		case ch == '!' || ch == '<' || ch == '>' || ch == '=':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, string(ch)+"=")
				i += 2
			} else {
				toks = append(toks, string(ch))
				i++
			}
		default:
			j := i
			for j < len(src) && !strings.ContainsRune(" \t\n\r()[]+-*:&|!<>=", rune(src[j])) {
				j++
			}
			toks = append(toks, strings.ToLower(src[i:j]))
			i = j
		}
	}
	return toks
}

func (p *parser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *parser) next() string {
	t := p.peek()
	if t != "" {
		p.pos++
	}
	return t
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek() == "or" || p.peek() == "||" {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &OrExpr{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.peek() == "and" || p.peek() == "&&" {
		p.next()
		r, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		l = &AndExpr{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseFactor() (Expr, error) {
	if p.startsArith() {
		return p.parseRelExpr()
	}
	switch tok := p.peek(); tok {
	case "":
		return nil, fmt.Errorf("bpf: unexpected end of expression")
	case "not", "!":
		p.next()
		e, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	case "(":
		// "(" is ambiguous: it can open a boolean group ("(tcp or udp)")
		// or an arithmetic group ("(ip[0] & 0xf) * 4 == 20"). Try the
		// boolean parse first and backtrack to a relational expression if
		// it fails.
		save := p.pos
		p.next()
		e, err := p.parseOr()
		if err == nil && p.peek() == ")" {
			p.next()
			return e, nil
		}
		p.pos = save
		return p.parseRelExpr()
	default:
		return p.parsePrimitive()
	}
}

func (p *parser) parsePrimitive() (Expr, error) {
	dir := DirEither
	switch p.peek() {
	case "src":
		dir = DirSrc
		p.next()
	case "dst":
		dir = DirDst
		p.next()
	}

	tok := p.next()
	switch tok {
	case "host":
		addr, bits, err := parseAddr(p.next())
		if err != nil {
			return nil, err
		}
		if bits != 32 {
			return nil, fmt.Errorf("bpf: host requires a full IPv4 address")
		}
		return &HostExpr{Dir: dir, Addr: addr}, nil
	case "net":
		return p.parseNet(dir, p.next())
	case "port":
		n, err := strconv.ParseUint(p.next(), 10, 16)
		if err != nil {
			return nil, fmt.Errorf("bpf: bad port: %w", err)
		}
		return &PortExpr{Dir: dir, Port: uint16(n)}, nil
	case "ip", "ip6", "arp", "tcp", "udp", "icmp":
		if dir != DirEither {
			return nil, fmt.Errorf("bpf: %s does not take a direction qualifier", tok)
		}
		proto := &ProtoExpr{Name: tok}
		// tcpdump-style protocol qualification: "tcp port 80",
		// "udp src port 53", "ip host 1.2.3.4" are conjunctions of the
		// protocol and the qualified primitive.
		switch p.peek() {
		case "port", "host", "net", "src", "dst":
			prim, err := p.parsePrimitive()
			if err != nil {
				return nil, err
			}
			return &AndExpr{L: proto, R: prim}, nil
		}
		return proto, nil
	case "less", "greater":
		if dir != DirEither {
			return nil, fmt.Errorf("bpf: %s does not take a direction qualifier", tok)
		}
		n, err := strconv.ParseUint(p.next(), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bpf: bad length: %w", err)
		}
		return &LenExpr{Greater: tok == "greater", N: uint32(n)}, nil
	default:
		// Bare address: full address => host, partial => net.
		addr, bits, err := parseAddr(tok)
		if err != nil {
			return nil, fmt.Errorf("bpf: unknown primitive %q", tok)
		}
		if bits == 32 {
			return &HostExpr{Dir: dir, Addr: addr}, nil
		}
		mask := maskBits(bits)
		return &NetExpr{Dir: dir, Prefix: addr & mask, Mask: mask}, nil
	}
}

func (p *parser) parseNet(dir Dir, tok string) (Expr, error) {
	if tok == "" {
		return nil, fmt.Errorf("bpf: net requires an address")
	}
	var maskLen = -1
	if i := strings.IndexByte(tok, '/'); i >= 0 {
		n, err := strconv.Atoi(tok[i+1:])
		if err != nil || n < 0 || n > 32 {
			return nil, fmt.Errorf("bpf: bad prefix length %q", tok[i+1:])
		}
		maskLen = n
		tok = tok[:i]
	}
	addr, bits, err := parseAddr(tok)
	if err != nil {
		return nil, err
	}
	mask := maskBits(bits)
	if maskLen >= 0 {
		mask = maskBits(maskLen)
	}
	if p.peek() == "mask" {
		p.next()
		m, mbits, err := parseAddr(p.next())
		if err != nil || mbits != 32 {
			return nil, fmt.Errorf("bpf: bad netmask")
		}
		mask = m
	}
	return &NetExpr{Dir: dir, Prefix: addr & mask, Mask: mask}, nil
}

// parseAddr parses a full or partial dotted-quad address, returning the
// address left-aligned in 32 bits and the number of significant bits
// (8 per supplied octet).
func parseAddr(s string) (addr uint32, bits int, err error) {
	if s == "" {
		return 0, 0, fmt.Errorf("bpf: missing address")
	}
	parts := strings.Split(s, ".")
	if len(parts) > 4 {
		return 0, 0, fmt.Errorf("bpf: bad address %q", s)
	}
	for i, part := range parts {
		v, err := strconv.ParseUint(part, 10, 8)
		if err != nil {
			return 0, 0, fmt.Errorf("bpf: bad address %q", s)
		}
		addr |= uint32(v) << (24 - 8*i)
	}
	return addr, len(parts) * 8, nil
}

func maskBits(n int) uint32 {
	if n <= 0 {
		return 0
	}
	if n >= 32 {
		return 0xffffffff
	}
	return ^uint32(0) << (32 - n)
}
