package bpf

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/vtime"
)

func TestArithPrimitives(t *testing.T) {
	udp := buildTestUDP(t) // TTL 64, UDP, 131.225.2.10:4321 -> 192.168.1.20:53
	tcpSyn := buildFrame(t, packet.FlowKey{
		Src: packet.IPv4{1, 2, 3, 4}, Dst: packet.IPv4{5, 6, 7, 8},
		SrcPort: 8080, DstPort: 443, Proto: packet.ProtoTCP,
	}, 10)
	tcpSyn[47] = 0x12 // SYN|ACK

	cases := []struct {
		filter string
		pkt    []byte
		want   bool
	}{
		{"ip[8] == 64", udp, true},  // TTL
		{"ip[8] = 64", udp, true},   // single-equals alias
		{"ip[8] > 64", udp, false},  //
		{"ip[8] >= 64", udp, true},  //
		{"ip[8] < 255", udp, true},  //
		{"ip[8] != 64", udp, false}, //
		{"ip[9] == 17", udp, true},  // protocol byte
		{"udp[2:2] == 53", udp, true},
		{"udp[0:2] == 4321", udp, true},
		{"tcp[13] & 0x12 == 0x12", tcpSyn, true}, // SYN+ACK set
		{"tcp[13] & 0x12 == 0x12", udp, false},   // guard: not TCP
		{"tcp[13] & 2 != 0", tcpSyn, true},
		{"ether[12:2] == 0x800", udp, true},
		{"len > 50", udp, true},
		{"len == 60", udp, true},
		{"len - 14 == 46", udp, true},
		{"len + 4 == 64", udp, true},
		{"2 * 30 == len", udp, true},
		{"ip[2:2] <= len", udp, true}, // IP total length fits the frame
		{"ip[0] & 0xf == 5", udp, true},
		{"(ip[0] & 0xf) * 4 == 20", udp, true},
		{"ip[12:4] == 0x83e1020a", udp, true}, // src address as a word
		{"udp and ip[8] > 32", udp, true},     // composes with booleans
		{"tcp or ip[8] > 100", udp, false},
		{"not (ip[8] == 64)", udp, false},
	}
	for _, c := range cases {
		t.Run(c.filter, func(t *testing.T) {
			prog, err := Compile(c.filter, 65535)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			vm := mustVM(t, prog)
			if got := vm.Match(c.pkt); got != c.want {
				t.Fatalf("match = %v, want %v\n%s", got, c.want, Disassemble(prog))
			}
			e, err := Parse(c.filter)
			if err != nil {
				t.Fatal(err)
			}
			if got := Eval(e, c.pkt); got != c.want {
				t.Fatalf("Eval = %v, want %v", got, c.want)
			}
			// And the JIT agrees.
			fn, err := JITCompile(prog)
			if err != nil {
				t.Fatal(err)
			}
			if got := fn.Match(c.pkt); got != c.want {
				t.Fatalf("JIT = %v, want %v", got, c.want)
			}
		})
	}
}

func TestArithParseErrors(t *testing.T) {
	for _, src := range []string{
		"ip[8] >",
		"ip[8 == 64",
		"ip[] == 1",
		"ip[8:3] == 1",
		"tcp[x] == 1",
		"len ==",
		"len @ 3",
		"ip[8] == 64 extra",
		"(len == 4",
	} {
		if _, err := Compile(src, 65535); err == nil {
			t.Errorf("Compile(%q) succeeded", src)
		}
	}
}

func TestArithDivisionNeedsSpaces(t *testing.T) {
	// Documented lexer tradeoff: '/' binds into words for CIDR prefixes.
	if _, err := Compile("len / 2 == 30", 65535); err != nil {
		t.Fatalf("spaced division: %v", err)
	}
	if _, err := Compile("len/2 == 30", 65535); err == nil {
		t.Fatal("unspaced division parsed")
	}
	// And CIDR still works.
	if _, err := Compile("net 10.0.0.0/8", 65535); err != nil {
		t.Fatal("CIDR broken by lexer")
	}
}

func TestArithRuntimeDivByZeroRejects(t *testing.T) {
	// "60 / (ip[8] - 64)" divides by zero for TTL-64 packets: the packet
	// is rejected, not crashed, in both the VM and the evaluator.
	udp := buildTestUDP(t)
	prog := MustCompile("60 / (ip[8] - 64) > 0", 65535)
	if mustVM(t, prog).Match(udp) {
		t.Fatal("division by zero matched")
	}
	e, _ := Parse("60 / (ip[8] - 64) > 0")
	if Eval(e, udp) {
		t.Fatal("Eval division by zero matched")
	}
	// A constant zero divisor also rejects at run time (the divisor goes
	// through the X register, like tcpdump's generated code).
	prog0 := MustCompile("len / 0 == 1", 65535)
	if mustVM(t, prog0).Match(udp) {
		t.Fatal("len / 0 matched")
	}
}

// randomArith builds a random arithmetic expression tree.
func randomArith(r *vtime.Rand, depth int) Arith {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(4) {
		case 0:
			return &NumArith{V: uint32(r.Intn(300))}
		case 1:
			return &LenArith{}
		default:
			protos := []string{"ether", "ip", "tcp", "udp"}
			sizes := []int{1, 2, 4}
			return &AccessArith{
				Proto: protos[r.Intn(len(protos))],
				Off:   uint32(r.Intn(40)),
				Size:  sizes[r.Intn(3)],
			}
		}
	}
	ops := []byte{'+', '-', '*', '&', '|', '/'}
	return &BinArith{
		Op: ops[r.Intn(len(ops))],
		L:  randomArith(r, depth-1),
		R:  randomArith(r, depth-1),
	}
}

// TestArithDifferential cross-checks compiled arithmetic filters against
// the reference evaluator and the JIT on random expressions and packets.
func TestArithDifferential(t *testing.T) {
	r := vtime.NewRand(777)
	b := packet.NewBuilder()
	buf := make([]byte, packet.MaxFrameLen)
	ops := []RelOp{RelEq, RelNe, RelGt, RelLt, RelGe, RelLe}
	for i := 0; i < 1500; i++ {
		e := &RelExpr{
			Op: ops[r.Intn(len(ops))],
			L:  randomArith(r, 2),
			R:  randomArith(r, 2),
		}
		prog, err := CompileExpr(e, 65535)
		if err != nil {
			t.Fatalf("CompileExpr(%s): %v", e, err)
		}
		vm, err := NewVM(prog)
		if err != nil {
			t.Fatal(err)
		}
		fn, err := JITCompile(prog)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 6; j++ {
			frame := b.Build(buf, randFlow(r), make([]byte, r.Intn(120)))
			want := Eval(e, frame)
			if got := vm.Match(frame); got != want {
				t.Fatalf("VM %v != Eval %v on %q\n%s", got, want, e, Disassemble(prog))
			}
			if got := fn.Match(frame); got != want {
				t.Fatalf("JIT %v != Eval %v on %q", got, want, e)
			}
		}
	}
}

// TestArithParsePrintRoundTrip checks String() output reparses with
// identical semantics.
func TestArithParsePrintRoundTrip(t *testing.T) {
	r := vtime.NewRand(31)
	b := packet.NewBuilder()
	buf := make([]byte, packet.MaxFrameLen)
	ops := []RelOp{RelEq, RelNe, RelGt, RelLt, RelGe, RelLe}
	for i := 0; i < 300; i++ {
		e := &RelExpr{Op: ops[r.Intn(len(ops))], L: randomArith(r, 2), R: randomArith(r, 2)}
		back, err := Parse(e.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", e.String(), err)
		}
		for j := 0; j < 4; j++ {
			frame := b.Build(buf, randFlow(r), make([]byte, r.Intn(100)))
			if Eval(e, frame) != Eval(back, frame) {
				t.Fatalf("print/parse changed semantics of %q", e.String())
			}
		}
	}
}
