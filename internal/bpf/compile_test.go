package bpf

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/vtime"
)

// buildTestUDP returns a UDP frame from 131.225.2.10:4321 to
// 192.168.1.20:53.
func buildTestUDP(tb testing.TB) []byte {
	tb.Helper()
	b := packet.NewBuilder()
	buf := make([]byte, packet.MaxFrameLen)
	return b.Build(buf, packet.FlowKey{
		Src:     packet.IPv4{131, 225, 2, 10},
		Dst:     packet.IPv4{192, 168, 1, 20},
		SrcPort: 4321,
		DstPort: 53,
		Proto:   packet.ProtoUDP,
	}, []byte("query"))
}

func buildFrame(tb testing.TB, flow packet.FlowKey, payload int) []byte {
	tb.Helper()
	b := packet.NewBuilder()
	buf := make([]byte, packet.MaxFrameLen)
	return b.Build(buf, flow, make([]byte, payload))
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"and udp",
		"udp and",
		"(udp",
		"udp)",
		"host",
		"host 1.2.3",      // partial address is not a host
		"port notanumber", //
		"port 99999",
		"net 1.2.3.4/40",
		"src tcp", // direction on a protocol
		"frobnicate 3",
		"not",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestParseEmptyMatchesAll(t *testing.T) {
	e, err := Parse("   ")
	if err != nil || e != nil {
		t.Fatalf("Parse(blank) = %v, %v", e, err)
	}
	prog, err := CompileExpr(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	vm := mustVM(t, prog)
	if !vm.Match(buildTestUDP(t)) {
		t.Fatal("empty filter rejected a packet")
	}
}

func TestParsePaperFilter(t *testing.T) {
	// The exact filter from the paper's pkt_handler: "131.225.2 and UDP".
	e, err := Parse("131.225.2 and UDP")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	and, ok := e.(*AndExpr)
	if !ok {
		t.Fatalf("parsed to %T", e)
	}
	net, ok := and.L.(*NetExpr)
	if !ok {
		t.Fatalf("left = %T", and.L)
	}
	if net.Prefix != 0x83e10200 || net.Mask != 0xffffff00 {
		t.Fatalf("net = %#x mask %#x", net.Prefix, net.Mask)
	}
	proto, ok := and.R.(*ProtoExpr)
	if !ok || proto.Name != "udp" {
		t.Fatalf("right = %v", and.R)
	}
}

func TestCompileMatchesPaperTraffic(t *testing.T) {
	prog := MustCompile("131.225.2 and udp", 65535)
	vm := mustVM(t, prog)
	if !vm.Match(buildTestUDP(t)) {
		t.Fatalf("paper filter rejected matching packet:\n%s", Disassemble(prog))
	}
	// Same flow over TCP must not match.
	tcp := buildFrame(t, packet.FlowKey{
		Src: packet.IPv4{131, 225, 2, 10}, Dst: packet.IPv4{10, 0, 0, 1},
		SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP,
	}, 0)
	if vm.Match(tcp) {
		t.Fatal("paper filter accepted TCP")
	}
	// UDP from elsewhere must not match.
	other := buildFrame(t, packet.FlowKey{
		Src: packet.IPv4{131, 226, 2, 10}, Dst: packet.IPv4{10, 0, 0, 1},
		SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP,
	}, 0)
	if vm.Match(other) {
		t.Fatal("paper filter accepted 131.226/16 traffic")
	}
	// UDP *to* 131.225.2/24 must match (src-or-dst semantics).
	toNet := buildFrame(t, packet.FlowKey{
		Src: packet.IPv4{10, 0, 0, 1}, Dst: packet.IPv4{131, 225, 2, 99},
		SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP,
	}, 0)
	if !vm.Match(toNet) {
		t.Fatal("paper filter rejected traffic to the net")
	}
}

func TestCompilePrimitives(t *testing.T) {
	udp := buildTestUDP(t) // 131.225.2.10:4321 -> 192.168.1.20:53 UDP
	tcp := buildFrame(t, packet.FlowKey{
		Src: packet.IPv4{1, 2, 3, 4}, Dst: packet.IPv4{5, 6, 7, 8},
		SrcPort: 8080, DstPort: 443, Proto: packet.ProtoTCP,
	}, 10)
	cases := []struct {
		filter string
		pkt    []byte
		want   bool
	}{
		{"ip", udp, true},
		{"ip6", udp, false},
		{"arp", udp, false},
		{"udp", udp, true},
		{"tcp", udp, false},
		{"tcp", tcp, true},
		{"icmp", udp, false},
		{"host 131.225.2.10", udp, true},
		{"host 131.225.2.11", udp, false},
		{"src host 131.225.2.10", udp, true},
		{"dst host 131.225.2.10", udp, false},
		{"dst host 192.168.1.20", udp, true},
		{"net 131.225", udp, true},
		{"net 131.224", udp, false},
		{"net 131.225.2.0/24", udp, true},
		{"net 131.225.2.0 mask 255.255.255.0", udp, true},
		{"src net 192.168.1", udp, false},
		{"dst net 192.168.1", udp, true},
		{"port 53", udp, true},
		{"port 54", udp, false},
		{"src port 4321", udp, true},
		{"dst port 4321", udp, false},
		{"src port 53", udp, false},
		{"dst port 53", udp, true},
		{"port 443", tcp, true},
		{"less 100", udp, true},
		{"greater 100", udp, false},
		{"less 10", udp, false},
		{"not udp", udp, false},
		{"not tcp", udp, true},
		{"udp or tcp", udp, true},
		{"udp and tcp", udp, false},
		{"(udp or tcp) and host 1.2.3.4", tcp, true},
		{"udp and not port 53", udp, false},
		{"udp && port 53 || arp", udp, true},
		{"! udp", tcp, true},
	}
	for _, c := range cases {
		t.Run(c.filter, func(t *testing.T) {
			prog, err := Compile(c.filter, 65535)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			vm := mustVM(t, prog)
			if got := vm.Match(c.pkt); got != c.want {
				t.Fatalf("match = %v, want %v\n%s", got, c.want, Disassemble(prog))
			}
			// The reference evaluator must agree.
			e, err := Parse(c.filter)
			if err != nil {
				t.Fatal(err)
			}
			if got := Eval(e, c.pkt); got != c.want {
				t.Fatalf("Eval = %v, want %v", got, c.want)
			}
		})
	}
}

func TestCompileFragmentRejectedByPortFilter(t *testing.T) {
	frame := buildTestUDP(t)
	// Set a nonzero fragment offset: ports are not present in this frame.
	frame[20] = 0x00
	frame[21] = 0x10
	prog := MustCompile("port 53", 65535)
	if mustVM(t, prog).Match(frame) {
		t.Fatal("port filter matched a fragment")
	}
	e, _ := Parse("port 53")
	if Eval(e, frame) {
		t.Fatal("Eval matched a fragment")
	}
}

func TestCompileIHLRespected(t *testing.T) {
	// Build a frame with IP options (IHL=6): the port filter must find
	// the ports through the x register, not at a fixed offset.
	base := buildTestUDP(t)
	frame := make([]byte, len(base)+4)
	copy(frame, base[:34])            // eth + basic IP header + ... stop at IP end
	copy(frame[14+24:], base[14+20:]) // shift L4 by 4 bytes
	frame[14] = 0x46                  // IHL = 6
	prog := MustCompile("dst port 53", 65535)
	if !mustVM(t, prog).Match(frame) {
		t.Fatalf("port filter missed ports behind IP options:\n%s", Disassemble(prog))
	}
}

func TestCompileSnaplenReturned(t *testing.T) {
	prog := MustCompile("udp", 96)
	vm := mustVM(t, prog)
	if got := vm.Run(buildTestUDP(t)); got != 96 {
		t.Fatalf("Run = %d, want 96", got)
	}
	prog = MustCompile("", 0)
	vm = mustVM(t, prog)
	if got := vm.Run(buildTestUDP(t)); got != DefaultSnapLen {
		t.Fatalf("default snaplen = %d", got)
	}
}

// randomExpr builds a random filter expression tree of bounded depth.
func randomExpr(r *vtime.Rand, depth int) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(6) {
		case 0:
			return &ProtoExpr{Name: []string{"ip", "tcp", "udp", "icmp", "arp", "ip6"}[r.Intn(6)]}
		case 1:
			return &HostExpr{Dir: Dir(r.Intn(3)), Addr: randAddr(r)}
		case 2:
			bits := 8 * (1 + r.Intn(3))
			mask := maskBits(bits)
			return &NetExpr{Dir: Dir(r.Intn(3)), Prefix: randAddr(r) & mask, Mask: mask}
		case 3:
			return &PortExpr{Dir: Dir(r.Intn(3)), Port: uint16(1 + r.Intn(1000))}
		case 4:
			return &LenExpr{Greater: r.Intn(2) == 0, N: uint32(r.Intn(200))}
		default:
			return &ProtoExpr{Name: "udp"}
		}
	}
	switch r.Intn(3) {
	case 0:
		return &AndExpr{L: randomExpr(r, depth-1), R: randomExpr(r, depth-1)}
	case 1:
		return &OrExpr{L: randomExpr(r, depth-1), R: randomExpr(r, depth-1)}
	default:
		return &NotExpr{E: randomExpr(r, depth-1)}
	}
}

// randAddr draws addresses from a tiny space so filters actually match
// sometimes.
func randAddr(r *vtime.Rand) uint32 {
	octets := []uint32{10, 131, 192}
	return octets[r.Intn(3)]<<24 | uint32(r.Intn(3))<<16 | uint32(r.Intn(3))<<8 | uint32(r.Intn(4))
}

func randFlow(r *vtime.Rand) packet.FlowKey {
	proto := packet.ProtoUDP
	if r.Intn(2) == 0 {
		proto = packet.ProtoTCP
	}
	return packet.FlowKey{
		Src:     packet.IPv4FromUint32(randAddr(r)),
		Dst:     packet.IPv4FromUint32(randAddr(r)),
		SrcPort: uint16(1 + r.Intn(1000)),
		DstPort: uint16(1 + r.Intn(1000)),
		Proto:   proto,
	}
}

// TestCompileDifferential cross-checks the compiled BPF programs against
// the independent reference evaluator over thousands of random
// (expression, packet) pairs.
func TestCompileDifferential(t *testing.T) {
	r := vtime.NewRand(2014)
	b := packet.NewBuilder()
	buf := make([]byte, packet.MaxFrameLen)
	for i := 0; i < 2000; i++ {
		e := randomExpr(r, 3)
		prog, err := CompileExpr(e, 65535)
		if err != nil {
			t.Fatalf("CompileExpr(%s): %v", e, err)
		}
		vm, err := NewVM(prog)
		if err != nil {
			t.Fatalf("NewVM(%s): %v", e, err)
		}
		for j := 0; j < 10; j++ {
			frame := b.Build(buf, randFlow(r), make([]byte, r.Intn(300)))
			want := Eval(e, frame)
			if got := vm.Match(frame); got != want {
				t.Fatalf("divergence on %q:\nVM = %v, Eval = %v\n%s", e, got, want, Disassemble(prog))
			}
		}
	}
}

// TestCompileParsePrintRoundTrip checks that parsing the String() form of
// an expression yields an equivalent filter.
func TestCompileParsePrintRoundTrip(t *testing.T) {
	r := vtime.NewRand(77)
	b := packet.NewBuilder()
	buf := make([]byte, packet.MaxFrameLen)
	for i := 0; i < 300; i++ {
		e := randomExpr(r, 3)
		back, err := Parse(e.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", e.String(), err)
		}
		for j := 0; j < 5; j++ {
			frame := b.Build(buf, randFlow(r), make([]byte, r.Intn(100)))
			if Eval(e, frame) != Eval(back, frame) {
				t.Fatalf("print/parse changed semantics of %q", e.String())
			}
		}
	}
}
