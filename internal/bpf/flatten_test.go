package bpf

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// matcherCorpus is the set of filter expressions the fast path is
// specialized for: the shapes capture applications actually deploy.
// cmd/vtime-bench commits the interpreter-vs-flattened speedup over
// this corpus to BENCH_vtime.json.
var matcherCorpus = []string{
	"ip",
	"udp",
	"tcp",
	"udp and net 131.225.2",
	"tcp port 80 or tcp port 443",
	"src net 10.0.0.0/8 and dst port 53",
	"host 131.225.2.4",
	"udp dst port 53",
	"greater 128",
	"tcp and (port 80 or port 443) and net 131.225.0.0/16",
	"tcp port 80 or tcp port 443 or tcp port 8080 or udp port 53",
	"udp and dst net 224.0.0.0/4",
	"src net 131.225.0.0/16 and tcp",
	"ip and udp",
	"ip and dst port 53",
	"src host 131.225.2.4 and dst host 131.225.2.5",
	"port 4789",
	"icmp and port 80",
}

// wiregenCorpus returns a deterministic sample of frames from the
// border-router workload generator (the "wiregen corpus": what
// cmd/wiregen emits), copied out of the generator's reused scratch.
func wiregenCorpus(tb testing.TB, n int) [][]byte {
	tb.Helper()
	src := trace.NewBorder(trace.BorderConfig{Queues: 4, Duration: 2 * vtime.Second, Seed: 42})
	frames := make([][]byte, 0, n)
	for len(frames) < n {
		data, _, ok := src.Next()
		if !ok {
			break
		}
		cp := make([]byte, len(data))
		copy(cp, data)
		frames = append(frames, cp)
	}
	if len(frames) == 0 {
		tb.Fatal("wiregen corpus is empty")
	}
	return frames
}

// backendsFor compiles expr for all backends: interpreter, closure JIT,
// flattened bytecode, and the expression-level flattened path (which
// may fuse).
func backendsFor(tb testing.TB, expr string, snaplen uint32) (*VM, *JITProgram, *FlatProgram, *FlatProgram) {
	tb.Helper()
	prog, err := Compile(expr, snaplen)
	if err != nil {
		tb.Fatalf("Compile(%q): %v", expr, err)
	}
	vm, err := NewVM(prog)
	if err != nil {
		tb.Fatal(err)
	}
	jit, err := JITCompile(prog)
	if err != nil {
		tb.Fatal(err)
	}
	flat, err := Flatten(prog)
	if err != nil {
		tb.Fatalf("Flatten(%q): %v", expr, err)
	}
	fast, err := CompileFlat(expr, snaplen)
	if err != nil {
		tb.Fatalf("CompileFlat(%q): %v", expr, err)
	}
	return vm, jit, flat, fast
}

// TestFlattenDifferentialExprs cross-checks all backends over random
// expressions and packets, against each other and the Eval oracle.
func TestFlattenDifferentialExprs(t *testing.T) {
	r := vtime.NewRand(9091)
	b := packet.NewBuilder()
	buf := make([]byte, packet.MaxFrameLen)
	for i := 0; i < 1500; i++ {
		e := randomExpr(r, 3)
		prog, err := CompileExpr(e, 65535)
		if err != nil {
			t.Fatalf("CompileExpr(%s): %v", e, err)
		}
		jit, err := JITCompile(prog)
		if err != nil {
			t.Fatal(err)
		}
		flat, err := Flatten(prog)
		if err != nil {
			t.Fatalf("Flatten(%s): %v", e, err)
		}
		fast, err := FlattenExpr(e, 65535)
		if err != nil {
			t.Fatalf("FlattenExpr(%s): %v", e, err)
		}
		for j := 0; j < 8; j++ {
			vm, err := NewVM(prog) // fresh VM: zeroed scratch, like the other backends
			if err != nil {
				t.Fatal(err)
			}
			frame := b.Build(buf, randFlow(r), make([]byte, r.Intn(300)))
			want := vm.Run(frame)
			if got := jit.Run(frame); got != want {
				t.Fatalf("JIT diverges on %q: %d != %d", e, got, want)
			}
			if got := flat.Run(frame); got != want {
				t.Fatalf("flattened diverges on %q: %d != %d\n%s", e, got, want, Disassemble(prog))
			}
			if got := fast.Run(frame); got != want {
				t.Fatalf("FlattenExpr (fused=%v) diverges on %q: %d != %d", fast.Fused(), e, got, want)
			}
			if got := Eval(e, frame); got != (want != 0) {
				t.Fatalf("Eval oracle diverges on %q", e)
			}
		}
	}
}

// TestFlattenMatcherCorpus runs every corpus filter over the wiregen
// corpus plus adversarial frames: a truncated final frame, zero-length
// packets, and sub-header runts.
func TestFlattenMatcherCorpus(t *testing.T) {
	frames := wiregenCorpus(t, 512)
	last := frames[len(frames)-1]
	frames = append(frames,
		last[:10], // truncated final frame: mid-ethernet-header
		[]byte{},  // zero-length packet
		nil,       // tombstoned cell
		last[:14], // exactly the L2 header
		last[:23], // one byte short of the IPv4 protocol field
		make([]byte, 1),
	)
	for _, expr := range matcherCorpus {
		vm, jit, flat, fast := backendsFor(t, expr, 65535)
		for i, frame := range frames {
			want := vm.Run(frame)
			if got := jit.Run(frame); got != want {
				t.Fatalf("%q frame %d: JIT %d != VM %d", expr, i, got, want)
			}
			if got := flat.Run(frame); got != want {
				t.Fatalf("%q frame %d: flattened %d != VM %d", expr, i, got, want)
			}
			if got := fast.Run(frame); got != want {
				t.Fatalf("%q frame %d: fused(%v) %d != VM %d", expr, i, fast.Fused(), got, want)
			}
		}
	}
}

// TestFuseCoverage pins which corpus shapes fuse: every corpus entry
// must take the straight-line path, and unsupported shapes must not.
func TestFuseCoverage(t *testing.T) {
	for _, expr := range matcherCorpus {
		f := MustCompileFlat(expr, 65535)
		if !f.Fused() {
			t.Errorf("%q did not fuse", expr)
		}
	}
	for _, expr := range []string{
		"not udp",
		"ip[8] < 5",
		"tcp[13] & 2 != 0",
		"len - 14 >= 1000",
	} {
		f := MustCompileFlat(expr, 65535)
		if f.Fused() {
			t.Errorf("%q unexpectedly fused", expr)
		}
	}
}

// TestFlattenRawPrograms exercises opcodes the expression compiler
// rarely emits — scratch memory, JA, IND loads, ALU with X, TAX/TXA —
// against the interpreter on raw programs.
func TestFlattenRawPrograms(t *testing.T) {
	progs := []Program{
		{ // scratch store/load round trip
			{Op: OpLdB, K: 0},
			{Op: OpSt, K: 3},
			{Op: OpLdImm, K: 7},
			{Op: OpLdMem, K: 3},
			{Op: OpRetA},
		},
		{ // JA over a reject, IND load off MSH
			{Op: OpLdxMsh, K: 14},
			{Op: OpJa, K: 1},
			{Op: OpRetK, K: 0},
			{Op: OpLdIndH, K: 14},
			{Op: OpRetA},
		},
		{ // ALU with X, TAX/TXA
			{Op: OpLdB, K: 1},
			{Op: OpTax},
			{Op: OpLdB, K: 2},
			{Op: OpAddX},
			{Op: OpJgtK, K: 200, Jt: 0, Jf: 1},
			{Op: OpRetK, K: 1},
			{Op: OpTxa},
			{Op: OpRetA},
		},
		{ // division by X, conditionally zero
			{Op: OpLdB, K: 0},
			{Op: OpTax},
			{Op: OpLdImm, K: 1000},
			{Op: OpDivX},
			{Op: OpRetA},
		},
		{ // load near the end: bounds hoisting on a multi-load block
			{Op: OpLdW, K: 40},
			{Op: OpLdH, K: 60},
			{Op: OpLdB, K: 70},
			{Op: OpRetA},
		},
		{ // extent overflow: k+4 wraps uint32, must always reject
			{Op: OpLdW, K: 0xfffffffd},
			{Op: OpRetK, K: 5},
		},
	}
	r := vtime.NewRand(31337)
	for pi, p := range progs {
		if err := Validate(p); err != nil {
			t.Fatalf("prog %d invalid: %v", pi, err)
		}
		flat, err := Flatten(p)
		if err != nil {
			t.Fatalf("prog %d: %v", pi, err)
		}
		for trial := 0; trial < 200; trial++ {
			pkt := make([]byte, r.Intn(100))
			for i := range pkt {
				pkt[i] = byte(r.Intn(256))
			}
			vm, err := NewVM(p)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := flat.Run(pkt), vm.Run(pkt); got != want {
				t.Fatalf("prog %d diverges on %d-byte pkt: flat %d, vm %d", pi, len(pkt), got, want)
			}
		}
	}
}

// TestFilterChunkMatchesPerPacket is the golden batch test: over the
// wiregen corpus, the batch path must produce exactly the bitmap the
// per-packet path produces, with tail bits cleared and the count
// matching the popcount.
func TestFilterChunkMatchesPerPacket(t *testing.T) {
	frames := wiregenCorpus(t, 300)
	// Edge shapes inside the batch, including a truncated final frame.
	frames[17] = frames[17][:10]
	frames[33] = []byte{}
	frames[49] = nil
	frames[len(frames)-1] = frames[len(frames)-1][:26]
	for _, expr := range append([]string{"udp[1000:2] != 0", "less 64"}, matcherCorpus...) {
		f := MustCompileFlat(expr, 65535)
		words := (len(frames) + 63) / 64
		accept := make([]uint64, words)
		// Poison the bitmap: every word, including the tail, must be
		// fully overwritten.
		for i := range accept {
			accept[i] = ^uint64(0)
		}
		n := f.FilterChunk(frames, accept)
		count := 0
		for i, frame := range frames {
			want := f.Run(frame) != 0
			got := accept[i>>6]>>(uint(i)&63)&1 == 1
			if got != want {
				t.Fatalf("%q: bit %d = %v, per-packet = %v", expr, i, got, want)
			}
			if want {
				count++
			}
		}
		if n != count {
			t.Fatalf("%q: FilterChunk returned %d, popcount is %d", expr, n, count)
		}
		tail := accept[words-1] >> (uint(len(frames)-(words-1)*64) & 63)
		if len(frames)%64 != 0 && tail != 0 {
			t.Fatalf("%q: tail bits not cleared: %#x", expr, accept[words-1])
		}
	}
}

// TestFilterChunkSizing pins the bitmap-sizing contract.
func TestFilterChunkSizing(t *testing.T) {
	f := MustCompileFlat("ip", 65535)
	frames := make([][]byte, 65)
	if n := f.FilterChunk(nil, nil); n != 0 {
		t.Fatalf("empty batch accepted %d", n)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("undersized bitmap did not panic")
		}
	}()
	f.FilterChunk(frames, make([]uint64, 1))
}
