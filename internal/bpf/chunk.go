package bpf

// FilterChunk is the batch entry point for the flattened backend: one
// call evaluates every frame of a handed chunk and writes an accept
// bitmap, so the consumer path pays one bounds-checked virtual call per
// chunk instead of one interface dispatch per packet.

// FilterChunk evaluates the filter over every frame and sets bit i of
// accept when frames[i] is accepted (filter returns non-zero). A nil
// frame (a tombstoned cell) is evaluated as an empty packet, exactly
// like Run(nil) — callers that must never deliver tombstones skip them
// independently of the bitmap. All bitmap words spanning the batch are
// fully overwritten, including tail bits past len(frames), which are
// cleared. Returns the number of accepted frames.
//
// accept must hold at least (len(frames)+63)/64 words; shorter bitmaps
// panic (a sizing bug, not a data-dependent condition).
//
//wirecap:hotpath
func (f *FlatProgram) FilterChunk(frames [][]byte, accept []uint64) int {
	words := (len(frames) + 63) / 64
	if len(accept) < words {
		panic("bpf: FilterChunk accept bitmap too small")
	}
	// Hoist the backend dispatch out of the per-frame loop: a fused
	// filter's specialized predicate is called directly, one indirect
	// call per frame instead of Run's dispatch.
	fast := f.fast
	n := 0
	for w := 0; w < words; w++ {
		var bits uint64
		base := w * 64
		end := len(frames) - base
		if end > 64 {
			end = 64
		}
		for i := 0; i < end; i++ {
			var v uint32
			if fast != nil {
				v = fast(frames[base+i])
			} else {
				v = f.Run(frames[base+i])
			}
			if v != 0 {
				bits |= 1 << uint(i)
				n++
			}
		}
		accept[w] = bits
	}
	return n
}
