package bpf

import "testing"

// FuzzFilterCompile guards the lexer, parser, code generator, and
// validator against panics on arbitrary filter expressions, and checks
// that whatever compiles also validates, JIT-compiles, and runs.
func FuzzFilterCompile(f *testing.F) {
	for _, seed := range []string{
		"udp and net 131.225.2",
		"tcp port 80 or tcp port 443",
		"(ip[0] & 0xf) * 4 == 20",
		"not (host 1.2.3.4 or less 64)",
		"len - 14 >= 1000 && udp[4:2] != 0",
		"ip6 or arp",
		"src net 10.0.0.0/8 and dst port 53",
		"! ( tcp [ 13 ] & 2 != 0 )",
		"))((", "udp and", "host", "1.2.3.4.5", "len /",
		"\x00\xff[", "ip[65535:4] == 4294967295",
	} {
		f.Add(seed)
	}
	pkt := make([]byte, 60)
	pkt[12] = 0x08
	f.Fuzz(func(t *testing.T, expr string) {
		prog, err := Compile(expr, 65535)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		if err := Validate(prog); err != nil {
			t.Fatalf("compiled filter fails validation: %v (%q)", err, expr)
		}
		vm, err := NewVM(prog)
		if err != nil {
			t.Fatal(err)
		}
		jit, err := JITCompile(prog)
		if err != nil {
			t.Fatalf("valid program fails JIT: %v", err)
		}
		if vm.Run(pkt) != jit.Run(pkt) {
			t.Fatalf("VM and JIT diverge on %q", expr)
		}
	})
}

// FuzzBackendsAgree is the three-backend agreement target CI fuzzes
// (`make fuzz`): whatever expression compiles must produce the same
// return value from the interpreter, the closure JIT, the flattened
// bytecode, and the fused fast path, on any packet. The VM is rebuilt
// per run so all backends start from zeroed scratch memory.
func FuzzBackendsAgree(f *testing.F) {
	seedPkt := make([]byte, 60)
	seedPkt[12] = 0x08
	for _, expr := range matcherCorpus {
		f.Add(expr, seedPkt)
		f.Add(expr, []byte{})
		f.Add(expr, seedPkt[:13])
	}
	f.Add("not (host 1.2.3.4 or less 64)", seedPkt)
	f.Add("(ip[0] & 0xf) * 4 == 20", seedPkt)
	f.Add("tcp[13] & 2 != 0", seedPkt[:23])
	f.Fuzz(func(t *testing.T, expr string, pkt []byte) {
		prog, err := Compile(expr, 65535)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		vm, err := NewVM(prog)
		if err != nil {
			t.Fatalf("compiled filter fails validation: %v (%q)", err, expr)
		}
		jit, err := JITCompile(prog)
		if err != nil {
			t.Fatalf("valid program fails JIT: %v", err)
		}
		flat, err := Flatten(prog)
		if err != nil {
			t.Fatalf("valid program fails Flatten: %v", err)
		}
		e, err := Parse(expr)
		if err != nil {
			t.Fatalf("compiled filter fails re-parse: %v", err)
		}
		fast, err := FlattenExpr(e, 65535)
		if err != nil {
			t.Fatalf("valid expression fails FlattenExpr: %v", err)
		}
		want := vm.Run(pkt)
		if got := jit.Run(pkt); got != want {
			t.Fatalf("JIT diverges on %q: %d != %d", expr, got, want)
		}
		if got := flat.Run(pkt); got != want {
			t.Fatalf("flattened diverges on %q: %d != %d", expr, got, want)
		}
		if got := fast.Run(pkt); got != want {
			t.Fatalf("fused (%v) diverges on %q: %d != %d", fast.Fused(), expr, got, want)
		}
	})
}

// FuzzFlattenRawPrograms guards the flattener against panics and
// divergence on arbitrary validated programs: whatever NewVM accepts,
// Flatten must accept and run identically.
func FuzzFlattenRawPrograms(f *testing.F) {
	prog := MustCompile("udp and net 131.225.2 and ip[8] > 2", 65535)
	raw := make([]byte, 0, len(prog)*8)
	for _, ins := range prog {
		raw = append(raw, byte(ins.Op>>8), byte(ins.Op), ins.Jt, ins.Jf,
			byte(ins.K>>24), byte(ins.K>>16), byte(ins.K>>8), byte(ins.K))
	}
	f.Add(raw, []byte{0x00, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, progBytes, pkt []byte) {
		var p Program
		for i := 0; i+8 <= len(progBytes); i += 8 {
			p = append(p, Instruction{
				Op: uint16(progBytes[i])<<8 | uint16(progBytes[i+1]),
				Jt: progBytes[i+2], Jf: progBytes[i+3],
				K: uint32(progBytes[i+4])<<24 | uint32(progBytes[i+5])<<16 |
					uint32(progBytes[i+6])<<8 | uint32(progBytes[i+7]),
			})
		}
		vm, err := NewVM(p)
		if err != nil {
			return // invalid programs are rejected, never run
		}
		flat, err := Flatten(p)
		if err != nil {
			t.Fatalf("NewVM accepted but Flatten rejected: %v", err)
		}
		if got, want := flat.Run(pkt), vm.Run(pkt); got != want {
			t.Fatalf("flattened diverges: %d != %d", got, want)
		}
	})
}

// FuzzVMRun guards the interpreter against panics on arbitrary (but
// validated) programs and packets.
func FuzzVMRun(f *testing.F) {
	prog := MustCompile("udp and net 131.225.2 and ip[8] > 2", 65535)
	raw := make([]byte, 0, len(prog)*8)
	for _, ins := range prog {
		raw = append(raw, byte(ins.Op>>8), byte(ins.Op), ins.Jt, ins.Jf,
			byte(ins.K>>24), byte(ins.K>>16), byte(ins.K>>8), byte(ins.K))
	}
	f.Add(raw, []byte{0x00, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, progBytes, pkt []byte) {
		var p Program
		for i := 0; i+8 <= len(progBytes); i += 8 {
			p = append(p, Instruction{
				Op: uint16(progBytes[i])<<8 | uint16(progBytes[i+1]),
				Jt: progBytes[i+2], Jf: progBytes[i+3],
				K: uint32(progBytes[i+4])<<24 | uint32(progBytes[i+5])<<16 |
					uint32(progBytes[i+6])<<8 | uint32(progBytes[i+7]),
			})
		}
		vm, err := NewVM(p)
		if err != nil {
			return // invalid programs are rejected, never run
		}
		vm.Run(pkt) // must not panic or loop
	})
}
