package bpf

import (
	"fmt"
)

// Frame offsets assumed by the code generator (Ethernet II link layer).
const (
	offEtherType = 12
	offIPv4Proto = 23
	offIPv4Src   = 26
	offIPv4Dst   = 30
	offIPv4Frag  = 20
	offIPv4Hdr   = 14
	offIPv6Next  = 20
	offIPv6L4    = 54 // transport header when no extension headers are present
)

// DefaultSnapLen is the accept value compiled filters return: the whole
// packet, like tcpdump's default.
const DefaultSnapLen = 0x40000

// Compile parses and compiles a filter expression into a validated BPF
// program returning snaplen on match and 0 otherwise. The empty expression
// compiles to an accept-all program.
func Compile(expr string, snaplen uint32) (Program, error) {
	e, err := Parse(expr)
	if err != nil {
		return nil, err
	}
	return CompileExpr(e, snaplen)
}

// MustCompile is Compile that panics on error, for use with constant
// filter strings.
func MustCompile(expr string, snaplen uint32) Program {
	p, err := Compile(expr, snaplen)
	if err != nil {
		panic(err)
	}
	return p
}

// CompileExpr compiles an already-parsed expression. A nil expression
// accepts every packet.
func CompileExpr(e Expr, snaplen uint32) (Program, error) {
	if snaplen == 0 {
		snaplen = DefaultSnapLen
	}
	if e == nil {
		return Program{{Op: OpRetK, K: snaplen}}, nil
	}
	c := &codegen{labels: map[int]int{}}
	lTrue, lFalse := c.newLabel(), c.newLabel()
	c.expr(e, lTrue, lFalse)
	c.place(lTrue)
	c.load(OpRetK, snaplen)
	c.place(lFalse)
	c.load(OpRetK, 0)
	prog, err := c.resolve()
	if err != nil {
		return nil, err
	}
	if err := Validate(prog); err != nil {
		return nil, fmt.Errorf("bpf: internal error: generated invalid program: %w", err)
	}
	return prog, nil
}

const noLabel = -1

// inst is an instruction whose jump targets may still be symbolic labels.
type inst struct {
	ins    Instruction
	jt, jf int // label ids for conditional jumps, noLabel if literal
	ja     int // label id for unconditional jumps, noLabel if none
}

type codegen struct {
	code      []inst
	labels    map[int]int // label id -> pc
	nextLabel int
}

func (c *codegen) newLabel() int {
	l := c.nextLabel
	c.nextLabel++
	return l
}

func (c *codegen) place(l int) { c.labels[l] = len(c.code) }

// load emits a plain (non-jump) instruction.
func (c *codegen) load(op uint16, k uint32) {
	c.code = append(c.code, inst{ins: Instruction{Op: op, K: k}, jt: noLabel, jf: noLabel, ja: noLabel})
}

// jump emits a conditional jump to label targets.
func (c *codegen) jump(op uint16, k uint32, jt, jf int) {
	c.code = append(c.code, inst{ins: Instruction{Op: op, K: k}, jt: jt, jf: jf, ja: noLabel})
}

// expr generates code that transfers control to lTrue if e matches and
// lFalse otherwise.
func (c *codegen) expr(e Expr, lTrue, lFalse int) {
	switch v := e.(type) {
	case *AndExpr:
		mid := c.newLabel()
		c.expr(v.L, mid, lFalse)
		c.place(mid)
		c.expr(v.R, lTrue, lFalse)
	case *OrExpr:
		mid := c.newLabel()
		c.expr(v.L, lTrue, mid)
		c.place(mid)
		c.expr(v.R, lTrue, lFalse)
	case *NotExpr:
		c.expr(v.E, lFalse, lTrue)
	case *ProtoExpr:
		c.proto(v, lTrue, lFalse)
	case *HostExpr:
		c.hostOrNet(v.Dir, v.Addr, 0xffffffff, lTrue, lFalse)
	case *NetExpr:
		c.hostOrNet(v.Dir, v.Prefix, v.Mask, lTrue, lFalse)
	case *PortExpr:
		c.port(v, lTrue, lFalse)
	case *LenExpr:
		c.load(OpLdLen, 0)
		if v.Greater {
			c.jump(OpJgeK, v.N, lTrue, lFalse)
		} else {
			c.jump(OpJgtK, v.N, lFalse, lTrue)
		}
	case *RelExpr:
		c.relExpr(v, lTrue, lFalse)
	default:
		panic(fmt.Sprintf("bpf: unknown expression node %T", e))
	}
}

func (c *codegen) proto(v *ProtoExpr, lTrue, lFalse int) {
	c.load(OpLdH, offEtherType)
	switch v.Name {
	case "ip":
		c.jump(OpJeqK, 0x0800, lTrue, lFalse)
	case "ip6":
		c.jump(OpJeqK, 0x86dd, lTrue, lFalse)
	case "arp":
		c.jump(OpJeqK, 0x0806, lTrue, lFalse)
	case "tcp", "udp", "icmp":
		var proto uint32
		switch v.Name {
		case "tcp":
			proto = 6
		case "udp":
			proto = 17
		case "icmp":
			proto = 1
		}
		v4, notV4 := c.newLabel(), c.newLabel()
		c.jump(OpJeqK, 0x0800, v4, notV4)
		c.place(v4)
		c.load(OpLdB, offIPv4Proto)
		c.jump(OpJeqK, proto, lTrue, lFalse)
		c.place(notV4)
		// A still holds the EtherType here: control reaches notV4 only
		// through the failed jeq above, skipping the v4 block's load.
		isV6 := c.newLabel()
		c.jump(OpJeqK, 0x86dd, isV6, lFalse)
		c.place(isV6)
		c.load(OpLdB, offIPv6Next)
		c.jump(OpJeqK, proto, lTrue, lFalse)
	default:
		panic(fmt.Sprintf("bpf: unknown protocol %q", v.Name))
	}
}

func (c *codegen) port(v *PortExpr, lTrue, lFalse int) {
	v4, v6 := c.newLabel(), c.newLabel()
	c.load(OpLdH, offEtherType)
	c.jump(OpJeqK, 0x0800, v4, v6)

	// IPv4 branch.
	c.place(v4)
	c.load(OpLdB, offIPv4Proto)
	protoOK, tryUDP := c.newLabel(), c.newLabel()
	c.jump(OpJeqK, 6, protoOK, tryUDP)
	c.place(tryUDP)
	c.jump(OpJeqK, 17, protoOK, lFalse)
	c.place(protoOK)
	// Reject fragments with a nonzero offset: ports live in the first one.
	c.load(OpLdH, offIPv4Frag)
	noFrag := c.newLabel()
	c.jump(OpJsetK, 0x1fff, lFalse, noFrag)
	c.place(noFrag)
	c.load(OpLdxMsh, offIPv4Hdr)
	c.portCompare(OpLdIndH, offIPv4Hdr, v.Dir, uint32(v.Port), lTrue, lFalse)

	// IPv6 branch (no extension-header chasing, like tcpdump's fast path).
	c.place(v6)
	c.load(OpLdH, offEtherType)
	isV6 := c.newLabel()
	c.jump(OpJeqK, 0x86dd, isV6, lFalse)
	c.place(isV6)
	c.load(OpLdB, offIPv6Next)
	protoOK6, tryUDP6 := c.newLabel(), c.newLabel()
	c.jump(OpJeqK, 6, protoOK6, tryUDP6)
	c.place(tryUDP6)
	c.jump(OpJeqK, 17, protoOK6, lFalse)
	c.place(protoOK6)
	c.load(OpLdxImm, offIPv6L4-offIPv4Hdr) // X such that [x+14] hits offset 54
	c.portCompare(OpLdIndH, offIPv4Hdr, v.Dir, uint32(v.Port), lTrue, lFalse)
}

// portCompare emits the src/dst/either port comparisons using indirect
// halfword loads at [x + base] (src port) and [x + base + 2] (dst port).
func (c *codegen) portCompare(ldOp uint16, base uint32, dir Dir, port uint32, lTrue, lFalse int) {
	switch dir {
	case DirSrc:
		c.load(ldOp, base)
		c.jump(OpJeqK, port, lTrue, lFalse)
	case DirDst:
		c.load(ldOp, base+2)
		c.jump(OpJeqK, port, lTrue, lFalse)
	default:
		tryDst := c.newLabel()
		c.load(ldOp, base)
		c.jump(OpJeqK, port, lTrue, tryDst)
		c.place(tryDst)
		c.load(ldOp, base+2)
		c.jump(OpJeqK, port, lTrue, lFalse)
	}
}

// hostOrNet emits IPv4 address comparisons. mask is 0xffffffff for host.
func (c *codegen) hostOrNet(dir Dir, prefix, mask uint32, lTrue, lFalse int) {
	isV4 := c.newLabel()
	c.load(OpLdH, offEtherType)
	c.jump(OpJeqK, 0x0800, isV4, lFalse)
	c.place(isV4)
	cmp := func(off uint32, jt, jf int) {
		c.load(OpLdW, off)
		if mask != 0xffffffff {
			c.load(OpAndK, mask)
		}
		c.jump(OpJeqK, prefix, jt, jf)
	}
	switch dir {
	case DirSrc:
		cmp(offIPv4Src, lTrue, lFalse)
	case DirDst:
		cmp(offIPv4Dst, lTrue, lFalse)
	default:
		tryDst := c.newLabel()
		cmp(offIPv4Src, lTrue, tryDst)
		c.place(tryDst)
		cmp(offIPv4Dst, lTrue, lFalse)
	}
}

// resolve converts label references into relative jump offsets, inserting
// nothing: filters large enough to overflow the 8-bit offsets are rejected.
func (c *codegen) resolve() (Program, error) {
	prog := make(Program, len(c.code))
	for pc, ci := range c.code {
		ins := ci.ins
		if ci.ja != noLabel {
			target, ok := c.labels[ci.ja]
			if !ok {
				return nil, fmt.Errorf("bpf: unplaced label %d", ci.ja)
			}
			rel := target - pc - 1
			if rel < 0 {
				return nil, fmt.Errorf("bpf: backward jump generated")
			}
			ins.K = uint32(rel)
		}
		if ci.jt != noLabel || ci.jf != noLabel {
			relOf := func(l int) (int, error) {
				target, ok := c.labels[l]
				if !ok {
					return 0, fmt.Errorf("bpf: unplaced label %d", l)
				}
				rel := target - pc - 1
				if rel < 0 {
					return 0, fmt.Errorf("bpf: backward jump generated")
				}
				if rel > 255 {
					return 0, fmt.Errorf("bpf: filter too complex (jump offset %d > 255)", rel)
				}
				return rel, nil
			}
			jt, err := relOf(ci.jt)
			if err != nil {
				return nil, err
			}
			jf, err := relOf(ci.jf)
			if err != nil {
				return nil, err
			}
			ins.Jt, ins.Jf = uint8(jt), uint8(jf)
		}
		prog[pc] = ins
	}
	return prog, nil
}
