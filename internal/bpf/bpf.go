// Package bpf implements the classic Berkeley Packet Filter machine
// (McCanne & Jacobson, USENIX 1993): the instruction set, an interpreter,
// a validator, an assembler/disassembler, and a compiler from a
// tcpdump-like filter-expression language ("udp and net 131.225.2").
//
// The paper's experiment application pkt_handler applies a BPF filter to
// every captured packet x times; this package is that filter, implemented
// for real rather than stubbed.
package bpf

import (
	"errors"
	"fmt"
)

// Instruction class (low 3 bits of the opcode).
const (
	classLD   = 0x00
	classLDX  = 0x01
	classST   = 0x02
	classSTX  = 0x03
	classALU  = 0x04
	classJMP  = 0x05
	classRET  = 0x06
	classMISC = 0x07
)

// Load size (bits 3-4).
const (
	sizeW = 0x00 // 32-bit word
	sizeH = 0x08 // 16-bit halfword
	sizeB = 0x10 // byte
)

// Load mode (bits 5-7).
const (
	modeIMM = 0x00
	modeABS = 0x20
	modeIND = 0x40
	modeMEM = 0x60
	modeLEN = 0x80
	modeMSH = 0xa0 // 4*([k]&0xf), the IP-header-length idiom
)

// ALU/JMP operand source (bit 3).
const (
	srcK = 0x00
	srcX = 0x08
)

// ALU operation (bits 4-7).
const (
	aluADD = 0x00
	aluSUB = 0x10
	aluMUL = 0x20
	aluDIV = 0x30
	aluOR  = 0x40
	aluAND = 0x50
	aluLSH = 0x60
	aluRSH = 0x70
	aluNEG = 0x80
	aluMOD = 0x90
	aluXOR = 0xa0
)

// Jump condition (bits 4-7).
const (
	jmpJA   = 0x00
	jmpJEQ  = 0x10
	jmpJGT  = 0x20
	jmpJGE  = 0x30
	jmpJSET = 0x40
)

// Return value source.
const (
	retK = 0x00
	retA = 0x10
)

// Misc ops.
const (
	miscTAX = 0x00
	miscTXA = 0x80
)

// Assembled opcodes, exported for programmatic filter construction.
const (
	OpLdW    = classLD | sizeW | modeABS  // A = pkt[k:k+4]
	OpLdH    = classLD | sizeH | modeABS  // A = pkt[k:k+2]
	OpLdB    = classLD | sizeB | modeABS  // A = pkt[k]
	OpLdIndW = classLD | sizeW | modeIND  // A = pkt[X+k : X+k+4]
	OpLdIndH = classLD | sizeH | modeIND  // A = pkt[X+k : X+k+2]
	OpLdIndB = classLD | sizeB | modeIND  // A = pkt[X+k]
	OpLdImm  = classLD | sizeW | modeIMM  // A = k
	OpLdLen  = classLD | sizeW | modeLEN  // A = len(pkt)
	OpLdMem  = classLD | sizeW | modeMEM  // A = M[k]
	OpLdxImm = classLDX | sizeW | modeIMM // X = k
	OpLdxLen = classLDX | sizeW | modeLEN // X = len(pkt)
	OpLdxMem = classLDX | sizeW | modeMEM // X = M[k]
	OpLdxMsh = classLDX | sizeB | modeMSH // X = 4*(pkt[k]&0xf)
	OpSt     = classST                    // M[k] = A
	OpStx    = classSTX                   // M[k] = X

	OpAddK = classALU | aluADD | srcK
	OpAddX = classALU | aluADD | srcX
	OpSubK = classALU | aluSUB | srcK
	OpSubX = classALU | aluSUB | srcX
	OpMulK = classALU | aluMUL | srcK
	OpMulX = classALU | aluMUL | srcX
	OpDivK = classALU | aluDIV | srcK
	OpDivX = classALU | aluDIV | srcX
	OpModK = classALU | aluMOD | srcK
	OpModX = classALU | aluMOD | srcX
	OpAndK = classALU | aluAND | srcK
	OpAndX = classALU | aluAND | srcX
	OpOrK  = classALU | aluOR | srcK
	OpOrX  = classALU | aluOR | srcX
	OpXorK = classALU | aluXOR | srcK
	OpXorX = classALU | aluXOR | srcX
	OpLshK = classALU | aluLSH | srcK
	OpLshX = classALU | aluLSH | srcX
	OpRshK = classALU | aluRSH | srcK
	OpRshX = classALU | aluRSH | srcX
	OpNeg  = classALU | aluNEG

	OpJa    = classJMP | jmpJA
	OpJeqK  = classJMP | jmpJEQ | srcK
	OpJeqX  = classJMP | jmpJEQ | srcX
	OpJgtK  = classJMP | jmpJGT | srcK
	OpJgtX  = classJMP | jmpJGT | srcX
	OpJgeK  = classJMP | jmpJGE | srcK
	OpJgeX  = classJMP | jmpJGE | srcX
	OpJsetK = classJMP | jmpJSET | srcK
	OpJsetX = classJMP | jmpJSET | srcX

	OpRetK = classRET | retK
	OpRetA = classRET | retA

	OpTax = classMISC | miscTAX
	OpTxa = classMISC | miscTXA
)

// Instruction is one classic-BPF instruction.
type Instruction struct {
	Op     uint16
	Jt, Jf uint8
	K      uint32
}

// Program is a validated-or-not sequence of instructions.
type Program []Instruction

// ScratchSlots is the number of scratch memory words (M[0..15]).
const ScratchSlots = 16

// MaxInstructions mirrors the kernel's BPF_MAXINSNS limit.
const MaxInstructions = 4096

// Validation and runtime errors.
var (
	ErrEmptyProgram   = errors.New("bpf: empty program")
	ErrTooLong        = fmt.Errorf("bpf: program exceeds %d instructions", MaxInstructions)
	ErrNoReturn       = errors.New("bpf: program does not end with a return")
	ErrJumpOutOfRange = errors.New("bpf: jump out of range")
	ErrBadInstruction = errors.New("bpf: unknown opcode")
	ErrBadScratch     = errors.New("bpf: scratch index out of range")
	ErrDivByZeroK     = errors.New("bpf: constant division by zero")
)

// Validate checks the program the way the kernel's bpf_check does: it must
// be non-empty, end in RET, contain only known opcodes, keep every jump
// inside the program (and strictly forward, so termination is guaranteed),
// keep scratch indices in range, and never divide by a zero constant.
func Validate(p Program) error {
	if len(p) == 0 {
		return ErrEmptyProgram
	}
	if len(p) > MaxInstructions {
		return ErrTooLong
	}
	last := p[len(p)-1]
	if last.Op != OpRetK && last.Op != OpRetA {
		return ErrNoReturn
	}
	for pc, ins := range p {
		switch ins.Op {
		case OpLdW, OpLdH, OpLdB, OpLdIndW, OpLdIndH, OpLdIndB,
			OpLdImm, OpLdLen, OpLdxImm, OpLdxLen, OpLdxMsh,
			OpAddK, OpAddX, OpSubK, OpSubX, OpMulK, OpMulX,
			OpAndK, OpAndX, OpOrK, OpOrX, OpXorK, OpXorX,
			OpLshK, OpLshX, OpRshK, OpRshX, OpNeg,
			OpRetK, OpRetA, OpTax, OpTxa:
			// No extra constraints.
		case OpLdMem, OpLdxMem, OpSt, OpStx:
			if ins.K >= ScratchSlots {
				return fmt.Errorf("%w: M[%d] at pc %d", ErrBadScratch, ins.K, pc)
			}
		case OpDivK, OpModK:
			if ins.K == 0 {
				return fmt.Errorf("%w at pc %d", ErrDivByZeroK, pc)
			}
		case OpDivX, OpModX:
			// Runtime-checked: division by a zero X returns 0 (drop).
		case OpJa:
			if int(ins.K) >= len(p)-pc-1 {
				return fmt.Errorf("%w: ja +%d at pc %d", ErrJumpOutOfRange, ins.K, pc)
			}
		case OpJeqK, OpJeqX, OpJgtK, OpJgtX, OpJgeK, OpJgeX, OpJsetK, OpJsetX:
			if int(ins.Jt) >= len(p)-pc-1 || int(ins.Jf) >= len(p)-pc-1 {
				return fmt.Errorf("%w: jt %d / jf %d at pc %d", ErrJumpOutOfRange, ins.Jt, ins.Jf, pc)
			}
		default:
			return fmt.Errorf("%w: %#04x at pc %d", ErrBadInstruction, ins.Op, pc)
		}
	}
	return nil
}

// VM executes validated programs. It is stateless between Run calls except
// for its scratch array, which Run fully controls, so a single VM may be
// reused across packets but not across goroutines.
type VM struct {
	prog Program
	mem  [ScratchSlots]uint32
}

// NewVM validates the program and returns a VM for it.
func NewVM(p Program) (*VM, error) {
	if err := Validate(p); err != nil {
		return nil, err
	}
	vm := &VM{prog: make(Program, len(p))}
	copy(vm.prog, p)
	return vm, nil
}

// Run executes the filter over pkt and returns the filter's return value:
// the snapshot length to accept (0 means reject). Out-of-bounds packet
// loads return 0, as the kernel interpreter does.
func (vm *VM) Run(pkt []byte) uint32 {
	var a, x uint32
	p := vm.prog
	plen := uint32(len(pkt))
	for pc := 0; pc < len(p); pc++ {
		ins := p[pc]
		k := ins.K
		switch ins.Op {
		case OpLdW:
			if k+4 > plen || k+4 < k {
				return 0
			}
			a = uint32(pkt[k])<<24 | uint32(pkt[k+1])<<16 | uint32(pkt[k+2])<<8 | uint32(pkt[k+3])
		case OpLdH:
			if k+2 > plen || k+2 < k {
				return 0
			}
			a = uint32(pkt[k])<<8 | uint32(pkt[k+1])
		case OpLdB:
			if k >= plen {
				return 0
			}
			a = uint32(pkt[k])
		case OpLdIndW:
			off := x + k
			if off < x || off+4 > plen || off+4 < off {
				return 0
			}
			a = uint32(pkt[off])<<24 | uint32(pkt[off+1])<<16 | uint32(pkt[off+2])<<8 | uint32(pkt[off+3])
		case OpLdIndH:
			off := x + k
			if off < x || off+2 > plen || off+2 < off {
				return 0
			}
			a = uint32(pkt[off])<<8 | uint32(pkt[off+1])
		case OpLdIndB:
			off := x + k
			if off < x || off >= plen {
				return 0
			}
			a = uint32(pkt[off])
		case OpLdImm:
			a = k
		case OpLdLen:
			a = plen
		case OpLdMem:
			a = vm.mem[k]
		case OpLdxImm:
			x = k
		case OpLdxLen:
			x = plen
		case OpLdxMem:
			x = vm.mem[k]
		case OpLdxMsh:
			if k >= plen {
				return 0
			}
			x = 4 * (uint32(pkt[k]) & 0xf)
		case OpSt:
			vm.mem[k] = a
		case OpStx:
			vm.mem[k] = x
		case OpAddK:
			a += k
		case OpAddX:
			a += x
		case OpSubK:
			a -= k
		case OpSubX:
			a -= x
		case OpMulK:
			a *= k
		case OpMulX:
			a *= x
		case OpDivK:
			a /= k
		case OpDivX:
			if x == 0 {
				return 0
			}
			a /= x
		case OpModK:
			a %= k
		case OpModX:
			if x == 0 {
				return 0
			}
			a %= x
		case OpAndK:
			a &= k
		case OpAndX:
			a &= x
		case OpOrK:
			a |= k
		case OpOrX:
			a |= x
		case OpXorK:
			a ^= k
		case OpXorX:
			a ^= x
		case OpLshK:
			a <<= k & 31
		case OpLshX:
			a <<= x & 31
		case OpRshK:
			a >>= k & 31
		case OpRshX:
			a >>= x & 31
		case OpNeg:
			a = -a
		case OpJa:
			pc += int(k)
		case OpJeqK:
			pc += jump(a == k, ins)
		case OpJeqX:
			pc += jump(a == x, ins)
		case OpJgtK:
			pc += jump(a > k, ins)
		case OpJgtX:
			pc += jump(a > x, ins)
		case OpJgeK:
			pc += jump(a >= k, ins)
		case OpJgeX:
			pc += jump(a >= x, ins)
		case OpJsetK:
			pc += jump(a&k != 0, ins)
		case OpJsetX:
			pc += jump(a&x != 0, ins)
		case OpRetK:
			return k
		case OpRetA:
			return a
		case OpTax:
			x = a
		case OpTxa:
			a = x
		}
	}
	// Unreachable for validated programs (they end in RET).
	return 0
}

func jump(cond bool, ins Instruction) int {
	if cond {
		return int(ins.Jt)
	}
	return int(ins.Jf)
}

// Match reports whether the filter accepts the packet (returns non-zero).
func (vm *VM) Match(pkt []byte) bool { return vm.Run(pkt) != 0 }

// Len returns the number of instructions in the program.
func (vm *VM) Len() int { return len(vm.prog) }
