package bpf

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/vtime"
)

func TestJITMatchesInterpreterOnFilters(t *testing.T) {
	// Differential: compiled filters agree with the interpreter across
	// random expressions and packets.
	r := vtime.NewRand(99)
	b := packet.NewBuilder()
	buf := make([]byte, packet.MaxFrameLen)
	for i := 0; i < 500; i++ {
		e := randomExpr(r, 3)
		prog, err := CompileExpr(e, 65535)
		if err != nil {
			t.Fatal(err)
		}
		vm, err := NewVM(prog)
		if err != nil {
			t.Fatal(err)
		}
		fn, err := JITCompile(prog)
		if err != nil {
			t.Fatalf("JITCompile(%s): %v", e, err)
		}
		for j := 0; j < 8; j++ {
			frame := b.Build(buf, randFlow(r), make([]byte, r.Intn(300)))
			if got, want := fn.Run(frame), vm.Run(frame); got != want {
				t.Fatalf("JIT %d != VM %d on %q\n%s", got, want, e, Disassemble(prog))
			}
		}
	}
}

func TestJITMatchesInterpreterOnRawPrograms(t *testing.T) {
	// Exercise scratch memory, ALU-with-X, and edge instructions the
	// filter compiler never emits.
	progs := []Program{
		{
			{Op: OpLdLen}, {Op: OpSt, K: 3}, {Op: OpLdImm, K: 7},
			{Op: OpLdxMem, K: 3}, {Op: OpAddX}, {Op: OpRetA},
		},
		{
			{Op: OpLdImm, K: 100}, {Op: OpLdxImm, K: 7},
			{Op: OpDivX}, {Op: OpMulX}, {Op: OpNeg}, {Op: OpRetA},
		},
		{
			{Op: OpLdImm, K: 0xF0F0}, {Op: OpLdxImm, K: 0x0FF0},
			{Op: OpXorX}, {Op: OpTax}, {Op: OpTxa}, {Op: OpRetA},
		},
		{
			{Op: OpLdxImm, K: 0}, {Op: OpLdImm, K: 5}, {Op: OpModX}, {Op: OpRetK, K: 9},
		},
		{
			{Op: OpLdB, K: 0}, {Op: OpLshX}, {Op: OpRshK, K: 33}, {Op: OpRetA},
		},
		{
			{Op: OpJa, K: 2}, {Op: OpRetK, K: 1}, {Op: OpRetK, K: 2}, {Op: OpRetK, K: 3},
		},
	}
	pkts := [][]byte{nil, {1}, {1, 2, 3, 4, 5, 6, 7, 8}, make([]byte, 100)}
	for i, p := range progs {
		vm, err := NewVM(p)
		if err != nil {
			t.Fatalf("prog %d: %v", i, err)
		}
		fn, err := JITCompile(p)
		if err != nil {
			t.Fatalf("prog %d: %v", i, err)
		}
		for j, pkt := range pkts {
			if got, want := fn.Run(pkt), vm.Run(pkt); got != want {
				t.Fatalf("prog %d pkt %d: JIT %d != VM %d", i, j, got, want)
			}
		}
	}
}

func TestJITRejectsInvalid(t *testing.T) {
	if _, err := JITCompile(Program{}); err == nil {
		t.Fatal("empty program compiled")
	}
	if _, err := JITCompile(Program{{Op: 0xffff}, {Op: OpRetK}}); err == nil {
		t.Fatal("bad opcode compiled")
	}
}

func BenchmarkJITAcceptUDP(b *testing.B) {
	prog := MustCompile("udp and net 131.225.2", 65535)
	fn, err := JITCompile(prog)
	if err != nil {
		b.Fatal(err)
	}
	pkt := buildTestUDP(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !fn.Match(pkt) {
			b.Fatal("filter rejected matching packet")
		}
	}
}
