package bpf

import "fmt"

// This file implements a closure compiler for classic BPF: the program is
// translated once into a chain of Go closures, eliminating the
// per-instruction opcode dispatch of the interpreter. It plays the role
// the in-kernel BPF JIT plays for real capture engines. Compiled programs
// are verified against the interpreter by differential tests.

// jitState is the mutable machine state threaded through the closures.
type jitState struct {
	pkt  []byte
	a, x uint32
	mem  [ScratchSlots]uint32
	// ret holds the result once a return instruction runs.
	ret uint32
}

// step executes one instruction and returns the next pc, or -1 to stop.
type step func(*jitState) int

// JITProgram is a closure-compiled filter. Like VM, it carries reusable
// state and therefore must not be shared across goroutines.
type JITProgram struct {
	steps []step
	st    jitState
}

// JITCompile validates and compiles the program.
func JITCompile(p Program) (*JITProgram, error) {
	if err := Validate(p); err != nil {
		return nil, err
	}
	steps := make([]step, len(p))
	for pc, ins := range p {
		s, err := compileOne(pc, ins)
		if err != nil {
			return nil, err
		}
		steps[pc] = s
	}
	return &JITProgram{steps: steps}, nil
}

// Run executes the compiled filter over pkt and returns the accept length
// (0 = reject), with semantics identical to VM.Run.
func (j *JITProgram) Run(pkt []byte) uint32 {
	j.st = jitState{pkt: pkt}
	pc := 0
	for pc >= 0 {
		pc = j.steps[pc](&j.st)
	}
	return j.st.ret
}

// Match reports whether the filter accepts the packet.
func (j *JITProgram) Match(pkt []byte) bool { return j.Run(pkt) != 0 }

// compileOne translates a single instruction into a closure. Loads
// capture their constants; jumps capture absolute targets, so no offset
// arithmetic remains at run time.
func compileOne(pc int, ins Instruction) (step, error) {
	k := ins.K
	next := pc + 1
	jt := pc + 1 + int(ins.Jt)
	jf := pc + 1 + int(ins.Jf)
	ja := pc + 1 + int(ins.K)

	switch ins.Op {
	case OpLdW:
		return func(s *jitState) int {
			if int(k)+4 > len(s.pkt) {
				s.ret = 0
				return -1
			}
			b := s.pkt[k:]
			s.a = uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
			return next
		}, nil
	case OpLdH:
		return func(s *jitState) int {
			if int(k)+2 > len(s.pkt) {
				s.ret = 0
				return -1
			}
			s.a = uint32(s.pkt[k])<<8 | uint32(s.pkt[k+1])
			return next
		}, nil
	case OpLdB:
		return func(s *jitState) int {
			if int(k) >= len(s.pkt) {
				s.ret = 0
				return -1
			}
			s.a = uint32(s.pkt[k])
			return next
		}, nil
	case OpLdIndW:
		return func(s *jitState) int {
			off := uint64(s.x) + uint64(k)
			if off+4 > uint64(len(s.pkt)) {
				s.ret = 0
				return -1
			}
			b := s.pkt[off:]
			s.a = uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
			return next
		}, nil
	case OpLdIndH:
		return func(s *jitState) int {
			off := uint64(s.x) + uint64(k)
			if off+2 > uint64(len(s.pkt)) {
				s.ret = 0
				return -1
			}
			s.a = uint32(s.pkt[off])<<8 | uint32(s.pkt[off+1])
			return next
		}, nil
	case OpLdIndB:
		return func(s *jitState) int {
			off := uint64(s.x) + uint64(k)
			if off >= uint64(len(s.pkt)) {
				s.ret = 0
				return -1
			}
			s.a = uint32(s.pkt[off])
			return next
		}, nil
	case OpLdImm:
		return func(s *jitState) int { s.a = k; return next }, nil
	case OpLdLen:
		return func(s *jitState) int { s.a = uint32(len(s.pkt)); return next }, nil
	case OpLdMem:
		return func(s *jitState) int { s.a = s.mem[k]; return next }, nil
	case OpLdxImm:
		return func(s *jitState) int { s.x = k; return next }, nil
	case OpLdxLen:
		return func(s *jitState) int { s.x = uint32(len(s.pkt)); return next }, nil
	case OpLdxMem:
		return func(s *jitState) int { s.x = s.mem[k]; return next }, nil
	case OpLdxMsh:
		return func(s *jitState) int {
			if int(k) >= len(s.pkt) {
				s.ret = 0
				return -1
			}
			s.x = 4 * (uint32(s.pkt[k]) & 0xf)
			return next
		}, nil
	case OpSt:
		return func(s *jitState) int { s.mem[k] = s.a; return next }, nil
	case OpStx:
		return func(s *jitState) int { s.mem[k] = s.x; return next }, nil
	case OpAddK:
		return func(s *jitState) int { s.a += k; return next }, nil
	case OpAddX:
		return func(s *jitState) int { s.a += s.x; return next }, nil
	case OpSubK:
		return func(s *jitState) int { s.a -= k; return next }, nil
	case OpSubX:
		return func(s *jitState) int { s.a -= s.x; return next }, nil
	case OpMulK:
		return func(s *jitState) int { s.a *= k; return next }, nil
	case OpMulX:
		return func(s *jitState) int { s.a *= s.x; return next }, nil
	case OpDivK:
		return func(s *jitState) int { s.a /= k; return next }, nil
	case OpDivX:
		return func(s *jitState) int {
			if s.x == 0 {
				s.ret = 0
				return -1
			}
			s.a /= s.x
			return next
		}, nil
	case OpModK:
		return func(s *jitState) int { s.a %= k; return next }, nil
	case OpModX:
		return func(s *jitState) int {
			if s.x == 0 {
				s.ret = 0
				return -1
			}
			s.a %= s.x
			return next
		}, nil
	case OpAndK:
		return func(s *jitState) int { s.a &= k; return next }, nil
	case OpAndX:
		return func(s *jitState) int { s.a &= s.x; return next }, nil
	case OpOrK:
		return func(s *jitState) int { s.a |= k; return next }, nil
	case OpOrX:
		return func(s *jitState) int { s.a |= s.x; return next }, nil
	case OpXorK:
		return func(s *jitState) int { s.a ^= k; return next }, nil
	case OpXorX:
		return func(s *jitState) int { s.a ^= s.x; return next }, nil
	case OpLshK:
		sh := k & 31
		return func(s *jitState) int { s.a <<= sh; return next }, nil
	case OpLshX:
		return func(s *jitState) int { s.a <<= s.x & 31; return next }, nil
	case OpRshK:
		sh := k & 31
		return func(s *jitState) int { s.a >>= sh; return next }, nil
	case OpRshX:
		return func(s *jitState) int { s.a >>= s.x & 31; return next }, nil
	case OpNeg:
		return func(s *jitState) int { s.a = -s.a; return next }, nil
	case OpJa:
		return func(*jitState) int { return ja }, nil
	case OpJeqK:
		return func(s *jitState) int {
			if s.a == k {
				return jt
			}
			return jf
		}, nil
	case OpJeqX:
		return func(s *jitState) int {
			if s.a == s.x {
				return jt
			}
			return jf
		}, nil
	case OpJgtK:
		return func(s *jitState) int {
			if s.a > k {
				return jt
			}
			return jf
		}, nil
	case OpJgtX:
		return func(s *jitState) int {
			if s.a > s.x {
				return jt
			}
			return jf
		}, nil
	case OpJgeK:
		return func(s *jitState) int {
			if s.a >= k {
				return jt
			}
			return jf
		}, nil
	case OpJgeX:
		return func(s *jitState) int {
			if s.a >= s.x {
				return jt
			}
			return jf
		}, nil
	case OpJsetK:
		return func(s *jitState) int {
			if s.a&k != 0 {
				return jt
			}
			return jf
		}, nil
	case OpJsetX:
		return func(s *jitState) int {
			if s.a&s.x != 0 {
				return jt
			}
			return jf
		}, nil
	case OpRetK:
		return func(s *jitState) int { s.ret = k; return -1 }, nil
	case OpRetA:
		return func(s *jitState) int { s.ret = s.a; return -1 }, nil
	case OpTax:
		return func(s *jitState) int { s.x = s.a; return next }, nil
	case OpTxa:
		return func(s *jitState) int { s.a = s.x; return next }, nil
	default:
		return nil, fmt.Errorf("bpf: jit: unknown opcode %#04x at pc %d", ins.Op, pc)
	}
}
