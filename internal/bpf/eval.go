package bpf

import "encoding/binary"

// Eval evaluates a parsed expression directly against a raw Ethernet
// frame, with semantics defined independently of the code generator. It
// is the reference oracle the differential tests compare the compiled BPF
// programs against, and a convenient slow path for callers that want
// filter semantics without compiling. A nil expression matches everything.
func Eval(e Expr, frame []byte) bool {
	if e == nil {
		return true
	}
	switch v := e.(type) {
	case *AndExpr:
		return Eval(v.L, frame) && Eval(v.R, frame)
	case *OrExpr:
		return Eval(v.L, frame) || Eval(v.R, frame)
	case *NotExpr:
		return !Eval(v.E, frame)
	case *ProtoExpr:
		return evalProto(v, frame)
	case *HostExpr:
		return evalAddr(v.Dir, v.Addr, 0xffffffff, frame)
	case *NetExpr:
		return evalAddr(v.Dir, v.Prefix, v.Mask, frame)
	case *PortExpr:
		return evalPort(v, frame)
	case *LenExpr:
		if v.Greater {
			return uint32(len(frame)) >= v.N
		}
		return uint32(len(frame)) <= v.N
	case *RelExpr:
		return evalRel(v, frame)
	default:
		return false
	}
}

func etherType(frame []byte) (uint16, bool) {
	if len(frame) < 14 {
		return 0, false
	}
	return binary.BigEndian.Uint16(frame[12:14]), true
}

func evalProto(v *ProtoExpr, frame []byte) bool {
	et, ok := etherType(frame)
	if !ok {
		return false
	}
	switch v.Name {
	case "ip":
		return et == 0x0800
	case "ip6":
		return et == 0x86dd
	case "arp":
		return et == 0x0806
	}
	var want byte
	switch v.Name {
	case "tcp":
		want = 6
	case "udp":
		want = 17
	case "icmp":
		want = 1
	}
	switch et {
	case 0x0800:
		return len(frame) > offIPv4Proto && frame[offIPv4Proto] == want
	case 0x86dd:
		return len(frame) > offIPv6Next && frame[offIPv6Next] == want
	}
	return false
}

func evalAddr(dir Dir, prefix, mask uint32, frame []byte) bool {
	et, ok := etherType(frame)
	if !ok || et != 0x0800 {
		return false
	}
	srcOK := len(frame) >= offIPv4Src+4
	dstOK := len(frame) >= offIPv4Dst+4
	var src, dst uint32
	if srcOK {
		src = binary.BigEndian.Uint32(frame[offIPv4Src : offIPv4Src+4])
	}
	if dstOK {
		dst = binary.BigEndian.Uint32(frame[offIPv4Dst : offIPv4Dst+4])
	}
	switch dir {
	case DirSrc:
		return srcOK && src&mask == prefix
	case DirDst:
		return dstOK && dst&mask == prefix
	default:
		return (srcOK && src&mask == prefix) || (dstOK && dst&mask == prefix)
	}
}

func evalPort(v *PortExpr, frame []byte) bool {
	et, ok := etherType(frame)
	if !ok {
		return false
	}
	var l4 int
	switch et {
	case 0x0800:
		if len(frame) <= offIPv4Proto {
			return false
		}
		proto := frame[offIPv4Proto]
		if proto != 6 && proto != 17 {
			return false
		}
		if len(frame) < offIPv4Frag+2 {
			return false
		}
		if binary.BigEndian.Uint16(frame[offIPv4Frag:offIPv4Frag+2])&0x1fff != 0 {
			return false
		}
		ihl := int(frame[offIPv4Hdr]&0xf) * 4
		l4 = offIPv4Hdr + ihl
	case 0x86dd:
		if len(frame) <= offIPv6Next {
			return false
		}
		proto := frame[offIPv6Next]
		if proto != 6 && proto != 17 {
			return false
		}
		l4 = offIPv6L4
	default:
		return false
	}
	srcOK := len(frame) >= l4+2
	dstOK := len(frame) >= l4+4
	var src, dst uint16
	if srcOK {
		src = binary.BigEndian.Uint16(frame[l4 : l4+2])
	}
	if dstOK {
		dst = binary.BigEndian.Uint16(frame[l4+2 : l4+4])
	}
	switch v.Dir {
	case DirSrc:
		return srcOK && src == v.Port
	case DirDst:
		return dstOK && dst == v.Port
	default:
		return (srcOK && src == v.Port) || (dstOK && dst == v.Port)
	}
}

// Eval support for arithmetic relational expressions. Semantics mirror
// the compiled programs exactly: a failed protocol guard, an out-of-bounds
// load, or a zero divisor rejects the packet.

func evalRel(v *RelExpr, frame []byte) bool {
	l, ok := evalArith(v.L, frame)
	if !ok {
		return false
	}
	r, ok := evalArith(v.R, frame)
	if !ok {
		return false
	}
	switch v.Op {
	case RelEq:
		return l == r
	case RelNe:
		return l != r
	case RelGt:
		return l > r
	case RelLt:
		return l < r
	case RelGe:
		return l >= r
	case RelLe:
		return l <= r
	default:
		return false
	}
}

func evalArith(a Arith, frame []byte) (uint32, bool) {
	switch v := a.(type) {
	case *NumArith:
		return v.V, true
	case *LenArith:
		return uint32(len(frame)), true
	case *AccessArith:
		return evalAccess(v, frame)
	case *BinArith:
		l, ok := evalArith(v.L, frame)
		if !ok {
			return 0, false
		}
		r, ok := evalArith(v.R, frame)
		if !ok {
			return 0, false
		}
		switch v.Op {
		case '+':
			return l + r, true
		case '-':
			return l - r, true
		case '*':
			return l * r, true
		case '/':
			if r == 0 {
				return 0, false
			}
			return l / r, true
		case '&':
			return l & r, true
		case '|':
			return l | r, true
		}
		return 0, false
	default:
		return 0, false
	}
}

func evalAccess(v *AccessArith, frame []byte) (uint32, bool) {
	base := 0
	switch v.Proto {
	case "ether":
		base = 0
	case "ip":
		et, ok := etherType(frame)
		if !ok || et != 0x0800 {
			return 0, false
		}
		base = offIPv4Hdr
	case "tcp", "udp", "icmp":
		et, ok := etherType(frame)
		if !ok || et != 0x0800 {
			return 0, false
		}
		var want byte
		switch v.Proto {
		case "tcp":
			want = 6
		case "udp":
			want = 17
		case "icmp":
			want = 1
		}
		if len(frame) <= offIPv4Proto || frame[offIPv4Proto] != want {
			return 0, false
		}
		if len(frame) < offIPv4Frag+2 {
			return 0, false
		}
		if binary.BigEndian.Uint16(frame[offIPv4Frag:offIPv4Frag+2])&0x1fff != 0 {
			return 0, false
		}
		if len(frame) <= offIPv4Hdr {
			return 0, false
		}
		base = offIPv4Hdr + int(frame[offIPv4Hdr]&0xf)*4
	default:
		return 0, false
	}
	off := base + int(v.Off)
	if off+v.Size > len(frame) || off < 0 {
		return 0, false
	}
	switch v.Size {
	case 1:
		return uint32(frame[off]), true
	case 2:
		return uint32(binary.BigEndian.Uint16(frame[off : off+2])), true
	default:
		return binary.BigEndian.Uint32(frame[off : off+4]), true
	}
}
