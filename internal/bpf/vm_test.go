package bpf

import (
	"strings"
	"testing"
)

func mustVM(t *testing.T, p Program) *VM {
	t.Helper()
	vm, err := NewVM(p)
	if err != nil {
		t.Fatalf("NewVM: %v\n%s", err, Disassemble(p))
	}
	return vm
}

func TestVMRetConstant(t *testing.T) {
	vm := mustVM(t, Program{{Op: OpRetK, K: 96}})
	if got := vm.Run([]byte{1, 2, 3}); got != 96 {
		t.Fatalf("Run = %d, want 96", got)
	}
}

func TestVMLoads(t *testing.T) {
	pkt := []byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08}
	cases := []struct {
		name string
		prog Program
		want uint32
	}{
		{"ldb", Program{{Op: OpLdB, K: 2}, {Op: OpRetA}}, 0x03},
		{"ldh", Program{{Op: OpLdH, K: 2}, {Op: OpRetA}}, 0x0304},
		{"ldw", Program{{Op: OpLdW, K: 2}, {Op: OpRetA}}, 0x03040506},
		{"ldimm", Program{{Op: OpLdImm, K: 0xdead}, {Op: OpRetA}}, 0xdead},
		{"ldlen", Program{{Op: OpLdLen}, {Op: OpRetA}}, 8},
		{"ind", Program{{Op: OpLdxImm, K: 3}, {Op: OpLdIndB, K: 2}, {Op: OpRetA}}, 0x06},
		{"indh", Program{{Op: OpLdxImm, K: 1}, {Op: OpLdIndH, K: 1}, {Op: OpRetA}}, 0x0304},
		{"indw", Program{{Op: OpLdxImm, K: 4}, {Op: OpLdIndW, K: 0}, {Op: OpRetA}}, 0x05060708},
		{"msh", Program{{Op: OpLdxMsh, K: 0}, {Op: OpTxa}, {Op: OpRetA}}, 4}, // 4*(0x01&0xf)
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := mustVM(t, c.prog).Run(pkt); got != c.want {
				t.Fatalf("got %#x, want %#x", got, c.want)
			}
		})
	}
}

func TestVMOutOfBoundsLoadRejects(t *testing.T) {
	pkt := []byte{1, 2, 3, 4}
	progs := []Program{
		{{Op: OpLdW, K: 1}, {Op: OpRetK, K: 1}},
		{{Op: OpLdH, K: 3}, {Op: OpRetK, K: 1}},
		{{Op: OpLdB, K: 4}, {Op: OpRetK, K: 1}},
		{{Op: OpLdxMsh, K: 9}, {Op: OpRetK, K: 1}},
		{{Op: OpLdxImm, K: 0xffffffff}, {Op: OpLdIndB, K: 1}, {Op: OpRetK, K: 1}},
		// Wraparound: X+k overflows uint32.
		{{Op: OpLdxImm, K: 0xfffffffe}, {Op: OpLdIndW, K: 4}, {Op: OpRetK, K: 1}},
	}
	for i, p := range progs {
		if got := mustVM(t, p).Run(pkt); got != 0 {
			t.Errorf("prog %d: out-of-bounds load returned %d, want 0", i, got)
		}
	}
}

func TestVMALU(t *testing.T) {
	run := func(op uint16, a, k uint32) uint32 {
		p := Program{{Op: OpLdImm, K: a}, {Op: op, K: k}, {Op: OpRetA}}
		return mustVM(t, p).Run(nil)
	}
	if got := run(OpAddK, 3, 4); got != 7 {
		t.Errorf("add: %d", got)
	}
	if got := run(OpSubK, 3, 4); got != 0xffffffff {
		t.Errorf("sub wrap: %#x", got)
	}
	if got := run(OpMulK, 3, 5); got != 15 {
		t.Errorf("mul: %d", got)
	}
	if got := run(OpDivK, 17, 5); got != 3 {
		t.Errorf("div: %d", got)
	}
	if got := run(OpModK, 17, 5); got != 2 {
		t.Errorf("mod: %d", got)
	}
	if got := run(OpAndK, 0xff0f, 0x0fff); got != 0x0f0f {
		t.Errorf("and: %#x", got)
	}
	if got := run(OpOrK, 0xf0, 0x0f); got != 0xff {
		t.Errorf("or: %#x", got)
	}
	if got := run(OpXorK, 0xff, 0x0f); got != 0xf0 {
		t.Errorf("xor: %#x", got)
	}
	if got := run(OpLshK, 1, 4); got != 16 {
		t.Errorf("lsh: %d", got)
	}
	if got := run(OpRshK, 16, 4); got != 1 {
		t.Errorf("rsh: %d", got)
	}
	neg := Program{{Op: OpLdImm, K: 5}, {Op: OpNeg}, {Op: OpRetA}}
	if got := mustVM(t, neg).Run(nil); got != 0xfffffffb {
		t.Errorf("neg: %#x", got)
	}
}

func TestVMALUWithX(t *testing.T) {
	p := Program{
		{Op: OpLdxImm, K: 6},
		{Op: OpLdImm, K: 20},
		{Op: OpDivX},
		{Op: OpRetA},
	}
	if got := mustVM(t, p).Run(nil); got != 3 {
		t.Fatalf("div x: %d", got)
	}
	zero := Program{
		{Op: OpLdxImm, K: 0},
		{Op: OpLdImm, K: 20},
		{Op: OpDivX},
		{Op: OpRetK, K: 9},
	}
	if got := mustVM(t, zero).Run(nil); got != 0 {
		t.Fatalf("div by zero X returned %d, want 0", got)
	}
}

func TestVMScratchMemory(t *testing.T) {
	p := Program{
		{Op: OpLdImm, K: 111},
		{Op: OpSt, K: 5},
		{Op: OpLdImm, K: 0},
		{Op: OpLdxMem, K: 5},
		{Op: OpTxa},
		{Op: OpRetA},
	}
	if got := mustVM(t, p).Run(nil); got != 111 {
		t.Fatalf("scratch round-trip = %d", got)
	}
	p2 := Program{
		{Op: OpLdxImm, K: 77},
		{Op: OpStx, K: 0},
		{Op: OpLdMem, K: 0},
		{Op: OpRetA},
	}
	if got := mustVM(t, p2).Run(nil); got != 77 {
		t.Fatalf("stx/ldmem = %d", got)
	}
}

func TestVMJumps(t *testing.T) {
	// if A == 10 ret 1 else if A > 20 ret 2 else ret 3
	mk := func(a uint32) uint32 {
		p := Program{
			{Op: OpLdImm, K: a},
			{Op: OpJeqK, Jt: 0, Jf: 1, K: 10},
			{Op: OpRetK, K: 1},
			{Op: OpJgtK, Jt: 0, Jf: 1, K: 20},
			{Op: OpRetK, K: 2},
			{Op: OpRetK, K: 3},
		}
		return mustVM(t, p).Run(nil)
	}
	if mk(10) != 1 || mk(25) != 2 || mk(15) != 3 {
		t.Fatalf("jump results: %d %d %d", mk(10), mk(25), mk(15))
	}
}

func TestVMJset(t *testing.T) {
	p := Program{
		{Op: OpLdImm, K: 0b1010},
		{Op: OpJsetK, Jt: 0, Jf: 1, K: 0b0010},
		{Op: OpRetK, K: 1},
		{Op: OpRetK, K: 0},
	}
	if got := mustVM(t, p).Run(nil); got != 1 {
		t.Fatalf("jset taken: %d", got)
	}
}

func TestVMJa(t *testing.T) {
	p := Program{
		{Op: OpJa, K: 1},
		{Op: OpRetK, K: 7}, // skipped
		{Op: OpRetK, K: 42},
	}
	if got := mustVM(t, p).Run(nil); got != 42 {
		t.Fatalf("ja: %d", got)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		prog Program
	}{
		{"empty", Program{}},
		{"no-ret", Program{{Op: OpLdImm, K: 1}}},
		{"bad-op", Program{{Op: 0xffff}, {Op: OpRetK}}},
		{"jump-oob", Program{{Op: OpJeqK, Jt: 5, Jf: 0, K: 1}, {Op: OpRetK}}},
		{"ja-oob", Program{{Op: OpJa, K: 9}, {Op: OpRetK}}},
		{"scratch-oob", Program{{Op: OpSt, K: 16}, {Op: OpRetK}}},
		{"div-zero-k", Program{{Op: OpDivK, K: 0}, {Op: OpRetK}}},
		{"mod-zero-k", Program{{Op: OpModK, K: 0}, {Op: OpRetK}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := Validate(c.prog); err == nil {
				t.Fatal("Validate accepted a bad program")
			}
			if _, err := NewVM(c.prog); err == nil {
				t.Fatal("NewVM accepted a bad program")
			}
		})
	}
}

func TestValidateTooLong(t *testing.T) {
	p := make(Program, MaxInstructions+1)
	for i := range p {
		p[i] = Instruction{Op: OpLdImm}
	}
	p[len(p)-1] = Instruction{Op: OpRetK}
	if err := Validate(p); err == nil {
		t.Fatal("over-long program accepted")
	}
}

func TestAssembleDisassembleRoundTrip(t *testing.T) {
	prog := MustCompile("udp and net 131.225.2 and dst port 53", 65535)
	text := Disassemble(prog)
	back, err := Assemble(text)
	if err != nil {
		t.Fatalf("Assemble(Disassemble(p)): %v\ntext:\n%s", err, text)
	}
	if len(back) != len(prog) {
		t.Fatalf("round-trip length %d != %d", len(back), len(prog))
	}
	for i := range prog {
		if prog[i] != back[i] {
			t.Fatalf("round-trip mismatch at %d: %+v != %+v\n%s", i, prog[i], back[i], text)
		}
	}
}

func TestAssembleHandwritten(t *testing.T) {
	src := `
		; accept UDP over IPv4, 96-byte snaplen
		ldh  [12]
		jeq  #0x800  jt 2  jf 5
		ldb  [23]
		jeq  #0x11  jt 4  jf 5
		ret  #96
		ret  #0
	`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if len(prog) != 6 {
		t.Fatalf("got %d instructions", len(prog))
	}
	if prog[1].Op != OpJeqK || prog[1].Jt != 0 || prog[1].Jf != 3 {
		t.Fatalf("jeq encoded as %+v", prog[1])
	}
}

func TestAssembleErrors(t *testing.T) {
	for _, src := range []string{
		"bogus #1",
		"jeq #1 jt 0 jf 0", // backward/self jump targets
		"ld [x]",
		"ret", // missing operand
	} {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded", src)
		}
	}
}

func TestDisassembleStable(t *testing.T) {
	prog := Program{
		{Op: OpLdH, K: 12},
		{Op: OpJeqK, Jt: 0, Jf: 1, K: 0x800},
		{Op: OpRetK, K: 65535},
		{Op: OpRetK, K: 0},
	}
	text := Disassemble(prog)
	for _, want := range []string{"(000) ldh  [12]", "jeq  #0x800  jt 2  jf 3", "ret  #65535", "ret  #0"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func BenchmarkVMAcceptUDP(b *testing.B) {
	prog := MustCompile("udp and net 131.225.2", 65535)
	vm, _ := NewVM(prog)
	pkt := buildTestUDP(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !vm.Match(pkt) {
			b.Fatal("filter rejected matching packet")
		}
	}
}

// TestAssembleDisassembleAllOpcodes round-trips one instance of every
// instruction form through the textual format.
func TestAssembleDisassembleAllOpcodes(t *testing.T) {
	prog := Program{
		{Op: OpLdW, K: 4},
		{Op: OpLdH, K: 6},
		{Op: OpLdB, K: 8},
		{Op: OpLdIndW, K: 2},
		{Op: OpLdIndH, K: 2},
		{Op: OpLdIndB, K: 2},
		{Op: OpLdImm, K: 0x1234},
		{Op: OpLdLen},
		{Op: OpLdMem, K: 3},
		{Op: OpLdxImm, K: 7},
		{Op: OpLdxLen},
		{Op: OpLdxMem, K: 4},
		{Op: OpLdxMsh, K: 14},
		{Op: OpSt, K: 5},
		{Op: OpStx, K: 6},
		{Op: OpAddK, K: 1},
		{Op: OpAddX},
		{Op: OpSubK, K: 1},
		{Op: OpSubX},
		{Op: OpMulK, K: 2},
		{Op: OpMulX},
		{Op: OpDivK, K: 2},
		{Op: OpDivX},
		{Op: OpModK, K: 3},
		{Op: OpModX},
		{Op: OpAndK, K: 0xff},
		{Op: OpAndX},
		{Op: OpOrK, K: 0x10},
		{Op: OpOrX},
		{Op: OpXorK, K: 0x3},
		{Op: OpXorX},
		{Op: OpLshK, K: 2},
		{Op: OpLshX},
		{Op: OpRshK, K: 2},
		{Op: OpRshX},
		{Op: OpNeg},
		{Op: OpJa, K: 0},
		{Op: OpJeqK, Jt: 0, Jf: 1, K: 9},
		{Op: OpJeqX, Jt: 0, Jf: 0},
		{Op: OpJgtK, Jt: 0, Jf: 1, K: 9},
		{Op: OpJgtX, Jt: 0, Jf: 0},
		{Op: OpJgeK, Jt: 0, Jf: 1, K: 9},
		{Op: OpJgeX, Jt: 0, Jf: 0},
		{Op: OpJsetK, Jt: 0, Jf: 1, K: 9},
		{Op: OpJsetX, Jt: 0, Jf: 0},
		{Op: OpTax},
		{Op: OpTxa},
		{Op: OpRetA},
		{Op: OpRetK, K: 0},
	}
	if err := Validate(prog); err != nil {
		t.Fatal(err)
	}
	text := Disassemble(prog)
	back, err := Assemble(text)
	if err != nil {
		t.Fatalf("Assemble: %v\n%s", err, text)
	}
	if len(back) != len(prog) {
		t.Fatalf("length %d != %d", len(back), len(prog))
	}
	for i := range prog {
		if prog[i] != back[i] {
			t.Fatalf("instruction %d: %+v != %+v\nline: %s",
				i, prog[i], back[i], disasmOne(i, prog[i]))
		}
	}
	// Unknown opcodes render as raw words rather than panicking.
	if got := disasmOne(0, Instruction{Op: 0xffff, K: 5}); !strings.Contains(got, ".word") {
		t.Fatalf("unknown opcode rendered %q", got)
	}
}

func TestVMLen(t *testing.T) {
	vm := mustVM(t, Program{{Op: OpRetK, K: 1}})
	if vm.Len() != 1 {
		t.Fatalf("Len = %d", vm.Len())
	}
}
