package bpf

// Predicate fusion: the common tcpdump shapes — conjunctions and
// disjunctions of ip/tcp/udp/host/net/port/len primitives — compile to
// a straight-line Go matcher instead of bytecode. The expression tree
// is normalized to disjunctive normal form (bounded, so pathological
// trees fall back to bytecode) and each term evaluates a flat list of
// conditions with the exact semantics of the Eval oracle (eval.go),
// which the differential tests pin against the compiled programs.
// NotExpr and arithmetic relations never fuse: their rejection paths
// interleave with protocol guards in ways a condition list cannot
// express, and they are rare in capture filters.

const (
	// Fusion bounds: a DNF expansion beyond this many terms or
	// conditions per term falls back to flattened bytecode.
	maxFuseTerms = 16
	maxFuseConds = 16
)

type fkind uint8

const (
	fEther   fkind = iota // ethertype == a ("ip", "ip6", "arp")
	fIPProto              // IPv4 or IPv6 next-protocol == a ("tcp", "udp", "icmp")
	fAddr                 // IPv4 src/dst & mask b == prefix a, per dir
	fPort                 // TCP/UDP src/dst port == a, per dir
	fLenGE                // len(pkt) >= a
	fLenLE                // len(pkt) <= a
)

type fcond struct {
	kind fkind
	dir  Dir
	a, b uint32
}

// fusedMatcher evaluates a DNF of fused conditions: accept if any term's
// conditions all hold. terms is never empty. The need* flags record,
// at fuse time, which packet fields any condition reads, so run decodes
// each header region at most once per packet — and not at all for
// matchers that never look at it.
type fusedMatcher struct {
	snaplen uint32
	terms   [][]fcond

	needProto bool
	needAddr  bool
	needPort  bool

	// fast, when non-nil, is a shape-specialized predicate built at fuse
	// time (see specialize): it decodes exactly the fields its conditions
	// test and replaces the generic term evaluator entirely.
	fast func([]byte) uint32
}

// fuseExpr tries to specialize e; ok is false when the shape (or the
// size of its DNF expansion) requires the bytecode path. A nil
// expression fuses to a single empty term (match everything).
func fuseExpr(e Expr, snaplen uint32) (*fusedMatcher, bool) {
	if e == nil {
		m := &fusedMatcher{snaplen: snaplen, terms: [][]fcond{{}}}
		m.specialize()
		return m, true
	}
	terms, ok := fuseTerms(e)
	if !ok || len(terms) == 0 || len(terms) > maxFuseTerms {
		return nil, false
	}
	m := &fusedMatcher{snaplen: snaplen, terms: terms}
	for _, t := range terms {
		if len(t) > maxFuseConds {
			return nil, false
		}
		for _, c := range t {
			switch c.kind {
			case fIPProto:
				m.needProto = true
			case fAddr:
				m.needAddr = true
			case fPort:
				m.needPort = true
			}
		}
	}
	m.specialize()
	return m, true
}

func fuseTerms(e Expr) ([][]fcond, bool) {
	switch v := e.(type) {
	case *OrExpr:
		l, ok := fuseTerms(v.L)
		if !ok {
			return nil, false
		}
		r, ok := fuseTerms(v.R)
		if !ok {
			return nil, false
		}
		if len(l)+len(r) > maxFuseTerms {
			return nil, false
		}
		return append(l, r...), true
	case *AndExpr:
		l, ok := fuseTerms(v.L)
		if !ok {
			return nil, false
		}
		r, ok := fuseTerms(v.R)
		if !ok {
			return nil, false
		}
		// Distribute: (l1|l2|...) and (r1|r2|...) = OR of every li+rj.
		// Go's && short-circuits left to right, and so does the term
		// evaluator, so concatenation preserves Eval's observable
		// semantics (conditions are pure).
		if len(l)*len(r) > maxFuseTerms {
			return nil, false
		}
		out := make([][]fcond, 0, len(l)*len(r))
		for _, lt := range l {
			for _, rt := range r {
				t := make([]fcond, 0, len(lt)+len(rt))
				t = append(t, lt...)
				t = append(t, rt...)
				out = append(out, t)
			}
		}
		return out, true
	case *ProtoExpr:
		switch v.Name {
		case "ip":
			return [][]fcond{{{kind: fEther, a: 0x0800}}}, true
		case "ip6":
			return [][]fcond{{{kind: fEther, a: 0x86dd}}}, true
		case "arp":
			return [][]fcond{{{kind: fEther, a: 0x0806}}}, true
		case "tcp":
			return [][]fcond{{{kind: fIPProto, a: 6}}}, true
		case "udp":
			return [][]fcond{{{kind: fIPProto, a: 17}}}, true
		case "icmp":
			return [][]fcond{{{kind: fIPProto, a: 1}}}, true
		}
		return nil, false
	case *HostExpr:
		return [][]fcond{{{kind: fAddr, dir: v.Dir, a: v.Addr, b: 0xffffffff}}}, true
	case *NetExpr:
		return [][]fcond{{{kind: fAddr, dir: v.Dir, a: v.Prefix, b: v.Mask}}}, true
	case *PortExpr:
		return [][]fcond{{{kind: fPort, dir: v.Dir, a: uint32(v.Port)}}}, true
	case *LenExpr:
		if v.Greater {
			return [][]fcond{{{kind: fLenGE, a: v.N}}}, true
		}
		return [][]fcond{{{kind: fLenLE, a: v.N}}}, true
	default:
		return nil, false
	}
}

// fview is one packet decoded for the fused conditions: every header
// field any condition can read, each extracted at most once per run.
// The *OK flags carry the same short-frame semantics as the eval.go
// helpers the conditions mirror.
type fview struct {
	plen uint32
	et   uint32
	etOK bool

	proto   uint32
	protoOK bool

	isIP4        bool
	src, dst     uint32
	srcOK, dstOK bool

	sport, dport     uint32
	sportOK, dportOK bool
}

// run evaluates the matcher, returning snaplen on accept and 0 on
// reject — the same convention as the compiled programs. The packet is
// decoded once into a stack view (only the regions some condition
// needs), then every condition is a bare comparison; the differential
// and fuzz tests pin agreement with the VM on the full corpus.
//
//wirecap:hotpath
func (m *fusedMatcher) run(pkt []byte) uint32 {
	if m.fast != nil {
		return m.fast(pkt)
	}
	var v fview
	v.plen = uint32(len(pkt))
	v.etOK = len(pkt) >= 14
	if v.etOK {
		v.et = uint32(pkt[12])<<8 | uint32(pkt[13])
		switch v.et {
		case 0x0800:
			v.isIP4 = true
			if m.needProto || m.needPort {
				if len(pkt) > offIPv4Proto {
					v.proto = uint32(pkt[offIPv4Proto])
					v.protoOK = true
				}
			}
			if m.needAddr {
				if len(pkt) >= offIPv4Src+4 {
					v.srcOK = true
					v.src = uint32(pkt[offIPv4Src])<<24 | uint32(pkt[offIPv4Src+1])<<16 |
						uint32(pkt[offIPv4Src+2])<<8 | uint32(pkt[offIPv4Src+3])
				}
				if len(pkt) >= offIPv4Dst+4 {
					v.dstOK = true
					v.dst = uint32(pkt[offIPv4Dst])<<24 | uint32(pkt[offIPv4Dst+1])<<16 |
						uint32(pkt[offIPv4Dst+2])<<8 | uint32(pkt[offIPv4Dst+3])
				}
			}
			// Ports exist on TCP/UDP first fragments only: the L4 header
			// is absent from later fragments (mirrors evalPort).
			if m.needPort && v.protoOK && (v.proto == 6 || v.proto == 17) &&
				len(pkt) >= offIPv4Frag+2 &&
				(uint32(pkt[offIPv4Frag])<<8|uint32(pkt[offIPv4Frag+1]))&0x1fff == 0 {
				l4 := offIPv4Hdr + int(pkt[offIPv4Hdr]&0xf)*4
				if len(pkt) >= l4+2 {
					v.sportOK = true
					v.sport = uint32(pkt[l4])<<8 | uint32(pkt[l4+1])
				}
				if len(pkt) >= l4+4 {
					v.dportOK = true
					v.dport = uint32(pkt[l4+2])<<8 | uint32(pkt[l4+3])
				}
			}
		case 0x86dd:
			if m.needProto || m.needPort {
				if len(pkt) > offIPv6Next {
					v.proto = uint32(pkt[offIPv6Next])
					v.protoOK = true
				}
			}
			if m.needPort && v.protoOK && (v.proto == 6 || v.proto == 17) {
				if len(pkt) >= offIPv6L4+2 {
					v.sportOK = true
					v.sport = uint32(pkt[offIPv6L4])<<8 | uint32(pkt[offIPv6L4+1])
				}
				if len(pkt) >= offIPv6L4+4 {
					v.dportOK = true
					v.dport = uint32(pkt[offIPv6L4+2])<<8 | uint32(pkt[offIPv6L4+3])
				}
			}
		}
	}
	for _, term := range m.terms {
		ok := true
		for i := range term {
			c := &term[i]
			switch c.kind {
			case fEther:
				ok = v.etOK && v.et == c.a
			case fIPProto:
				ok = v.protoOK && v.proto == c.a
			case fAddr:
				// IPv4 only, like evalAddr behind the ethertype guard.
				switch c.dir {
				case DirSrc:
					ok = v.isIP4 && v.srcOK && v.src&c.b == c.a
				case DirDst:
					ok = v.isIP4 && v.dstOK && v.dst&c.b == c.a
				default:
					ok = v.isIP4 && ((v.srcOK && v.src&c.b == c.a) || (v.dstOK && v.dst&c.b == c.a))
				}
			case fPort:
				switch c.dir {
				case DirSrc:
					ok = v.sportOK && v.sport == c.a
				case DirDst:
					ok = v.dportOK && v.dport == c.a
				default:
					ok = (v.sportOK && v.sport == c.a) || (v.dportOK && v.dport == c.a)
				}
			case fLenGE:
				ok = v.plen >= c.a
			case fLenLE:
				ok = v.plen <= c.a
			}
			if !ok {
				break
			}
		}
		if ok {
			return m.snaplen
		}
	}
	return 0
}

// ---- fuse-time shape specialization ----
//
// The shapes real capture filters overwhelmingly take — a lone
// protocol or ethertype test, proto+port, proto+net, net+port, and
// port-list disjunctions like "tcp port 80 or tcp port 443" — compile
// one step further into dedicated predicates that read exactly the
// header bytes their conditions test and nothing else. Each predicate
// is a closure built once here, at fuse time; the generic term
// evaluator above remains the fallback for every other shape, and the
// differential and fuzz tests exercise both paths against the VM.

// specialize installs m.fast when the term list matches a known shape.
func (m *fusedMatcher) specialize() {
	snap := m.snaplen
	if len(m.terms) == 1 {
		switch t := m.terms[0]; len(t) {
		case 0:
			m.fast = func([]byte) uint32 { return snap }
		case 1:
			m.fast = fastCond1(t[0], snap)
		case 2:
			m.fast = fastCond2(t[0], t[1], snap)
		}
	}
	if m.fast == nil {
		m.fast = fastPortList(m.terms, snap)
	}
}

// be32 reads a big-endian 32-bit field; the caller has length-checked.
func be32(pkt []byte, off int) uint32 {
	return uint32(pkt[off])<<24 | uint32(pkt[off+1])<<16 |
		uint32(pkt[off+2])<<8 | uint32(pkt[off+3])
}

// isIP4 reports an IPv4 ethertype with the standard 14-byte header.
func isIP4(pkt []byte) bool {
	return len(pkt) >= 14 && pkt[12] == 0x08 && pkt[13] == 0x00
}

// addrMatch tests one fAddr condition. The caller guarantees the IPv4
// ethertype; short headers fail the per-field length checks, exactly
// like the srcOK/dstOK flags on the generic path.
func addrMatch(pkt []byte, dir Dir, prefix, mask uint32) bool {
	switch dir {
	case DirSrc:
		return len(pkt) >= offIPv4Src+4 && be32(pkt, offIPv4Src)&mask == prefix
	case DirDst:
		return len(pkt) >= offIPv4Dst+4 && be32(pkt, offIPv4Dst)&mask == prefix
	default:
		return (len(pkt) >= offIPv4Src+4 && be32(pkt, offIPv4Src)&mask == prefix) ||
			(len(pkt) >= offIPv4Dst+4 && be32(pkt, offIPv4Dst)&mask == prefix)
	}
}

// l4Header locates the TCP/UDP header, returning the IP next-protocol
// and the L4 byte offset, or a negative offset when the packet has no
// port-bearing header (non-IP, non-TCP/UDP, or a later IPv4 fragment —
// mirroring evalPort and the generic decode).
func l4Header(pkt []byte) (byte, int) {
	if len(pkt) >= 14 {
		switch {
		case pkt[12] == 0x08 && pkt[13] == 0x00:
			if len(pkt) > offIPv4Proto {
				p := pkt[offIPv4Proto]
				if (p == 6 || p == 17) &&
					len(pkt) >= offIPv4Frag+2 &&
					(uint32(pkt[offIPv4Frag])<<8|uint32(pkt[offIPv4Frag+1]))&0x1fff == 0 {
					return p, offIPv4Hdr + int(pkt[offIPv4Hdr]&0xf)*4
				}
			}
		case pkt[12] == 0x86 && pkt[13] == 0xdd:
			if len(pkt) > offIPv6Next {
				p := pkt[offIPv6Next]
				if p == 6 || p == 17 {
					return p, offIPv6L4
				}
			}
		}
	}
	return 0, -1
}

// portAt tests one fPort condition against the L4 header at l4. A
// truncated header fails the side it cannot read, like sportOK/dportOK.
func portAt(pkt []byte, l4 int, dir Dir, port uint32) bool {
	switch dir {
	case DirSrc:
		return len(pkt) >= l4+2 && uint32(pkt[l4])<<8|uint32(pkt[l4+1]) == port
	case DirDst:
		return len(pkt) >= l4+4 && uint32(pkt[l4+2])<<8|uint32(pkt[l4+3]) == port
	default:
		return (len(pkt) >= l4+2 && uint32(pkt[l4])<<8|uint32(pkt[l4+1]) == port) ||
			(len(pkt) >= l4+4 && uint32(pkt[l4+2])<<8|uint32(pkt[l4+3]) == port)
	}
}

// fastCond1 specializes a single-condition matcher ("udp", "ip",
// "host A", "port 53", "greater 128"). Returns nil when the condition
// has no dedicated form.
func fastCond1(c fcond, snap uint32) func([]byte) uint32 {
	switch c.kind {
	case fEther:
		a := c.a
		return func(pkt []byte) uint32 {
			if len(pkt) >= 14 && uint32(pkt[12])<<8|uint32(pkt[13]) == a {
				return snap
			}
			return 0
		}
	case fIPProto:
		if c.a > 0xff {
			return nil
		}
		a := byte(c.a)
		return func(pkt []byte) uint32 {
			if len(pkt) < 14 {
				return 0
			}
			switch {
			case pkt[12] == 0x08 && pkt[13] == 0x00:
				if len(pkt) > offIPv4Proto && pkt[offIPv4Proto] == a {
					return snap
				}
			case pkt[12] == 0x86 && pkt[13] == 0xdd:
				if len(pkt) > offIPv6Next && pkt[offIPv6Next] == a {
					return snap
				}
			}
			return 0
		}
	case fAddr:
		dir, prefix, mask := c.dir, c.a, c.b
		return func(pkt []byte) uint32 {
			if isIP4(pkt) && addrMatch(pkt, dir, prefix, mask) {
				return snap
			}
			return 0
		}
	case fPort:
		// A bare port condition is the two-protocol port list.
		return fastPortList([][]fcond{{c}}, snap)
	case fLenGE:
		a := c.a
		return func(pkt []byte) uint32 {
			if uint32(len(pkt)) >= a {
				return snap
			}
			return 0
		}
	case fLenLE:
		a := c.a
		return func(pkt []byte) uint32 {
			if uint32(len(pkt)) <= a {
				return snap
			}
			return 0
		}
	}
	return nil
}

// fastCond2 specializes a two-condition conjunction. Conditions are
// pure, so reordering the pair preserves the result; sorting by kind
// means each shape is matched once. Returns nil on shapes without a
// dedicated form ({proto,port} pairs fall through to the port-list
// specialization).
func fastCond2(c1, c2 fcond, snap uint32) func([]byte) uint32 {
	if c2.kind < c1.kind {
		c1, c2 = c2, c1
	}
	switch {
	case c1.kind == fEther && c2.kind == fAddr:
		// "ip and host A": the addr condition already requires IPv4, so a
		// non-IPv4 ethertype makes the pair unsatisfiable.
		et, dir, prefix, mask := c1.a, c2.dir, c2.a, c2.b
		return func(pkt []byte) uint32 {
			if isIP4(pkt) && et == 0x0800 && addrMatch(pkt, dir, prefix, mask) {
				return snap
			}
			return 0
		}
	case c1.kind == fEther && c2.kind == fPort:
		// "ip and port 53": l4Header only resolves on IP packets, and its
		// family branch matches the ethertype test by construction.
		et, dir, port := c1.a, c2.dir, c2.a
		return func(pkt []byte) uint32 {
			if len(pkt) < 14 || uint32(pkt[12])<<8|uint32(pkt[13]) != et {
				return 0
			}
			if _, l4 := l4Header(pkt); l4 >= 0 && portAt(pkt, l4, dir, port) {
				return snap
			}
			return 0
		}
	case c1.kind == fIPProto && c2.kind == fAddr && c1.a <= 0xff:
		// "udp and net N": the addr condition pins IPv4, so only the IPv4
		// proto branch can satisfy the pair.
		proto, dir, prefix, mask := byte(c1.a), c2.dir, c2.a, c2.b
		return func(pkt []byte) uint32 {
			if isIP4(pkt) && len(pkt) > offIPv4Proto && pkt[offIPv4Proto] == proto &&
				addrMatch(pkt, dir, prefix, mask) {
				return snap
			}
			return 0
		}
	case c1.kind == fAddr && c2.kind == fPort:
		// "src net N and dst port P", address first: a masked compare on
		// the IPv4 header rejects almost everything before the L4 walk.
		asrc := c1.dir == DirSrc || c1.dir == DirEither
		adst := c1.dir == DirDst || c1.dir == DirEither
		prefix, mask := c1.a, c1.b
		psrc := c2.dir == DirSrc || c2.dir == DirEither
		pdst := c2.dir == DirDst || c2.dir == DirEither
		port := c2.a
		return func(pkt []byte) uint32 {
			if len(pkt) < 14 || pkt[12] != 0x08 || pkt[13] != 0x00 {
				return 0
			}
			if !(asrc && len(pkt) >= offIPv4Src+4 && be32(pkt, offIPv4Src)&mask == prefix) &&
				!(adst && len(pkt) >= offIPv4Dst+4 && be32(pkt, offIPv4Dst)&mask == prefix) {
				return 0
			}
			if len(pkt) <= offIPv4Proto {
				return 0
			}
			if p := pkt[offIPv4Proto]; p != 6 && p != 17 {
				return 0
			}
			// In bounds: the protocol read above implies len(pkt) >= 24.
			if (uint32(pkt[offIPv4Frag])<<8|uint32(pkt[offIPv4Frag+1]))&0x1fff != 0 {
				return 0
			}
			l4 := offIPv4Hdr + int(pkt[offIPv4Hdr]&0xf)*4
			if psrc && len(pkt) >= l4+2 && uint32(pkt[l4])<<8|uint32(pkt[l4+1]) == port {
				return snap
			}
			if pdst && len(pkt) >= l4+4 && uint32(pkt[l4+2])<<8|uint32(pkt[l4+3]) == port {
				return snap
			}
			return 0
		}
	case c1.kind == fAddr && c2.kind == fAddr:
		// "src host A and dst host B", "net N1 and net N2".
		d1, p1, m1, d2, p2, m2 := c1.dir, c1.a, c1.b, c2.dir, c2.a, c2.b
		return func(pkt []byte) uint32 {
			if isIP4(pkt) && addrMatch(pkt, d1, p1, m1) && addrMatch(pkt, d2, p2, m2) {
				return snap
			}
			return 0
		}
	}
	return nil
}

// portListEntry is one term of a port-list matcher with every direction
// and protocol dispatch resolved to flags at fuse time.
type portListEntry struct {
	anyProto   bool // no protocol condition: any TCP/UDP packet qualifies
	proto      byte
	psrc, pdst bool
	port       uint32

	hasAddr    bool
	asrc, adst bool
	prefix     uint32
	amask      uint32
}

// fastPortList specializes the disjunction family whose every term is
// one port condition plus an optional protocol and an optional address
// — "tcp port 80 or tcp port 443", "udp dst port 53", "src net N and
// dst port 53", and the DNF of "tcp and (port 80 or port 443) and net
// N". One header decode serves the whole list, extracting only the port
// sides some entry compares; single-term matchers get a loop-free
// scalar body. Returns nil for any other term shape.
func fastPortList(terms [][]fcond, snap uint32) func([]byte) uint32 {
	list := make([]portListEntry, 0, len(terms))
	needSrc, needDst := false, false
	for _, t := range terms {
		var e portListEntry
		var nProto, nPort, nAddr int
		proto := uint32(0)
		for _, c := range t {
			switch c.kind {
			case fIPProto:
				nProto++
				proto = c.a
			case fPort:
				nPort++
				e.psrc = c.dir == DirSrc || c.dir == DirEither
				e.pdst = c.dir == DirDst || c.dir == DirEither
				e.port = c.a
			case fAddr:
				nAddr++
				e.hasAddr = true
				e.asrc = c.dir == DirSrc || c.dir == DirEither
				e.adst = c.dir == DirDst || c.dir == DirEither
				e.prefix = c.a
				e.amask = c.b
			default:
				return nil
			}
		}
		if nPort != 1 || nProto > 1 || nAddr > 1 || proto > 0xff {
			return nil
		}
		if nProto == 1 {
			// A protocol condition outside TCP/UDP ("icmp and port 80")
			// contradicts the port condition: the term never matches.
			if proto != 6 && proto != 17 {
				continue
			}
			e.proto = byte(proto)
		} else {
			e.anyProto = true
		}
		needSrc = needSrc || e.psrc
		needDst = needDst || e.pdst
		list = append(list, e)
	}
	if len(list) == 0 {
		return func([]byte) uint32 { return 0 }
	}
	if len(list) == 1 {
		// Loop-free scalar body for the dominant single-term shapes
		// ("udp dst port 53", "src net N and dst port P"). The header
		// walk mirrors the generic decode exactly; it is spelled out
		// because a helper would exceed the inliner's budget, and the
		// IPv4 fragment test is deferred until a candidate port hit,
		// where it only rejects (ports read from a later fragment's
		// payload bytes never survive it). The fragment-field load is in
		// bounds: reading the protocol byte implies len(pkt) >= 24.
		e := list[0]
		return func(pkt []byte) uint32 {
			if len(pkt) < 14 {
				return 0
			}
			var proto byte
			var l4 int
			ip4 := false
			if pkt[12] == 0x08 && pkt[13] == 0x00 {
				if len(pkt) <= offIPv4Proto {
					return 0
				}
				proto = pkt[offIPv4Proto]
				if proto != 6 && proto != 17 {
					return 0
				}
				l4 = offIPv4Hdr + int(pkt[offIPv4Hdr]&0xf)*4
				ip4 = true
			} else if pkt[12] == 0x86 && pkt[13] == 0xdd {
				if len(pkt) <= offIPv6Next {
					return 0
				}
				proto = pkt[offIPv6Next]
				if proto != 6 && proto != 17 {
					return 0
				}
				l4 = offIPv6L4
			} else {
				return 0
			}
			if !e.anyProto && proto != e.proto {
				return 0
			}
			if !((e.psrc && len(pkt) >= l4+2 && uint32(pkt[l4])<<8|uint32(pkt[l4+1]) == e.port) ||
				(e.pdst && len(pkt) >= l4+4 && uint32(pkt[l4+2])<<8|uint32(pkt[l4+3]) == e.port)) {
				return 0
			}
			if ip4 && (uint32(pkt[offIPv4Frag])<<8|uint32(pkt[offIPv4Frag+1]))&0x1fff != 0 {
				return 0
			}
			if !e.hasAddr {
				return snap
			}
			if !ip4 {
				return 0
			}
			if e.asrc && len(pkt) >= offIPv4Src+4 && be32(pkt, offIPv4Src)&e.amask == e.prefix {
				return snap
			}
			if e.adst && len(pkt) >= offIPv4Dst+4 && be32(pkt, offIPv4Dst)&e.amask == e.prefix {
				return snap
			}
			return 0
		}
	}
	// Multi-entry loop, same hand-inlined decode; ports are extracted
	// once, only the sides some entry compares.
	return func(pkt []byte) uint32 {
		if len(pkt) < 14 {
			return 0
		}
		var proto byte
		var l4 int
		ip4 := false
		if pkt[12] == 0x08 && pkt[13] == 0x00 {
			if len(pkt) <= offIPv4Proto {
				return 0
			}
			proto = pkt[offIPv4Proto]
			if proto != 6 && proto != 17 {
				return 0
			}
			l4 = offIPv4Hdr + int(pkt[offIPv4Hdr]&0xf)*4
			ip4 = true
		} else if pkt[12] == 0x86 && pkt[13] == 0xdd {
			if len(pkt) <= offIPv6Next {
				return 0
			}
			proto = pkt[offIPv6Next]
			if proto != 6 && proto != 17 {
				return 0
			}
			l4 = offIPv6L4
		} else {
			return 0
		}
		var sport, dport uint32
		sOK := needSrc && len(pkt) >= l4+2
		if sOK {
			sport = uint32(pkt[l4])<<8 | uint32(pkt[l4+1])
		}
		dOK := needDst && len(pkt) >= l4+4
		if dOK {
			dport = uint32(pkt[l4+2])<<8 | uint32(pkt[l4+3])
		}
		for i := range list {
			e := &list[i]
			if !e.anyProto && proto != e.proto {
				continue
			}
			if !((e.psrc && sOK && sport == e.port) || (e.pdst && dOK && dport == e.port)) {
				continue
			}
			// Ports exist on first fragments only: a later fragment makes
			// every port condition false, so no term can match.
			if ip4 && (uint32(pkt[offIPv4Frag])<<8|uint32(pkt[offIPv4Frag+1]))&0x1fff != 0 {
				return 0
			}
			if !e.hasAddr {
				return snap
			}
			if !ip4 {
				continue
			}
			if e.asrc && len(pkt) >= offIPv4Src+4 && be32(pkt, offIPv4Src)&e.amask == e.prefix {
				return snap
			}
			if e.adst && len(pkt) >= offIPv4Dst+4 && be32(pkt, offIPv4Dst)&e.amask == e.prefix {
				return snap
			}
		}
		return 0
	}
}
