package bpf

import (
	"fmt"
	"strconv"
)

// This file adds tcpdump's arithmetic expression primitives to the filter
// language:
//
//	relexpr = arith relop arith
//	relop   = "==" | "=" | "!=" | ">" | "<" | ">=" | "<="
//	arith   = mul { ("+" | "-") mul }
//	mul     = atom { ("*" | "/" | "&" | "|") atom }
//	atom    = NUM | "len" | proto "[" NUM [ ":" size ] "]"
//	proto   = "ether" | "ip" | "tcp" | "udp" | "icmp"
//
// so filters like "ip[8] > 64" (TTL), "tcp[13] & 0x12 == 0x12" (SYN+ACK),
// or "len - 14 >= 1000" compile to BPF. Accessor offsets are constant
// expressions, which covers the practical uses; ip[] offsets are relative
// to the IP header, tcp[]/udp[]/icmp[] offsets are relative to the
// transport header (found through the IHL, exactly like the port
// primitives).

// RelOp is a comparison operator.
type RelOp int

// Comparison operators.
const (
	RelEq RelOp = iota
	RelNe
	RelGt
	RelLt
	RelGe
	RelLe
)

func (op RelOp) String() string {
	switch op {
	case RelEq:
		return "=="
	case RelNe:
		return "!="
	case RelGt:
		return ">"
	case RelLt:
		return "<"
	case RelGe:
		return ">="
	case RelLe:
		return "<="
	default:
		return "?"
	}
}

// Arith is an arithmetic sub-expression evaluating to a uint32.
type Arith interface {
	String() string
}

// NumArith is an integer literal.
type NumArith struct{ V uint32 }

// LenArith is the packet length.
type LenArith struct{}

// AccessArith loads Size bytes at constant offset Off within the named
// protocol header ("ether", "ip", "tcp", "udp", "icmp").
type AccessArith struct {
	Proto string
	Off   uint32
	Size  int // 1, 2, or 4
}

// BinArith combines two sub-expressions with +, -, *, /, &, or |.
type BinArith struct {
	Op   byte
	L, R Arith
}

func (a *NumArith) String() string { return strconv.FormatUint(uint64(a.V), 10) }
func (a *LenArith) String() string { return "len" }
func (a *AccessArith) String() string {
	if a.Size == 1 {
		return fmt.Sprintf("%s[%d]", a.Proto, a.Off)
	}
	return fmt.Sprintf("%s[%d:%d]", a.Proto, a.Off, a.Size)
}
func (a *BinArith) String() string {
	return fmt.Sprintf("(%s %c %s)", a.L, a.Op, a.R)
}

// RelExpr is a boolean comparison of two arithmetic expressions.
type RelExpr struct {
	Op   RelOp
	L, R Arith
}

func (e *RelExpr) String() string {
	return fmt.Sprintf("%s %s %s", e.L, e.Op, e.R)
}

// relops maps tokens to operators.
var relops = map[string]RelOp{
	"==": RelEq, "=": RelEq, "!=": RelNe,
	">": RelGt, "<": RelLt, ">=": RelGe, "<=": RelLe,
}

// startsArith reports whether the parser is looking at an arithmetic
// relational expression rather than an address/port primitive.
func (p *parser) startsArith() bool {
	tok := p.peek()
	switch tok {
	case "len":
		return true
	case "ether", "ip", "tcp", "udp", "icmp":
		return p.peekAt(1) == "["
	}
	if _, err := strconv.ParseUint(tok, 0, 32); err == nil {
		// A bare number is a relational left operand only when followed
		// by a relop or arithmetic operator; otherwise it stays an
		// address shorthand.
		next := p.peekAt(1)
		if _, ok := relops[next]; ok {
			return true
		}
		switch next {
		case "+", "-", "*", "/", "&", "|":
			return true
		}
	}
	return false
}

func (p *parser) peekAt(n int) string {
	if p.pos+n < len(p.toks) {
		return p.toks[p.pos+n]
	}
	return ""
}

// parseRelExpr parses "arith relop arith".
func (p *parser) parseRelExpr() (Expr, error) {
	l, err := p.parseArith()
	if err != nil {
		return nil, err
	}
	opTok := p.next()
	op, ok := relops[opTok]
	if !ok {
		return nil, fmt.Errorf("bpf: expected comparison operator, got %q", opTok)
	}
	r, err := p.parseArith()
	if err != nil {
		return nil, err
	}
	return &RelExpr{Op: op, L: l, R: r}, nil
}

func (p *parser) parseArith() (Arith, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.peek() == "+" || p.peek() == "-" {
		op := p.next()[0]
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinArith{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMul() (Arith, error) {
	l, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case "*", "/", "&", "|":
			op := p.next()[0]
			r, err := p.parseAtom()
			if err != nil {
				return nil, err
			}
			l = &BinArith{Op: op, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseAtom() (Arith, error) {
	tok := p.next()
	switch tok {
	case "len":
		return &LenArith{}, nil
	case "ether", "ip", "tcp", "udp", "icmp":
		if p.next() != "[" {
			return nil, fmt.Errorf("bpf: expected [ after %s", tok)
		}
		offTok := p.next()
		off, err := strconv.ParseUint(offTok, 0, 16)
		if err != nil {
			return nil, fmt.Errorf("bpf: accessor offset must be a constant, got %q", offTok)
		}
		size := 1
		if p.peek() == ":" {
			p.next()
			szTok := p.next()
			sz, err := strconv.Atoi(szTok)
			if err != nil || (sz != 1 && sz != 2 && sz != 4) {
				return nil, fmt.Errorf("bpf: accessor size must be 1, 2, or 4, got %q", szTok)
			}
			size = sz
		}
		if p.next() != "]" {
			return nil, fmt.Errorf("bpf: missing ] in %s accessor", tok)
		}
		return &AccessArith{Proto: tok, Off: uint32(off), Size: size}, nil
	case "(":
		a, err := p.parseArith()
		if err != nil {
			return nil, err
		}
		if p.next() != ")" {
			return nil, fmt.Errorf("bpf: missing ) in arithmetic expression")
		}
		return a, nil
	default:
		v, err := strconv.ParseUint(tok, 0, 32)
		if err != nil {
			return nil, fmt.Errorf("bpf: expected number, accessor, or len, got %q", tok)
		}
		return &NumArith{V: uint32(v)}, nil
	}
}

// --- code generation ---

// relScratch is the scratch slot holding the right operand during a
// comparison; arithScratchBase upward holds intermediate results of
// nested binary operators.
const (
	relScratch       = ScratchSlots - 1
	arithScratchBase = 8
)

// relExpr compiles a comparison: evaluate R, park it in scratch, evaluate
// L into A, load X, compare.
func (c *codegen) relExpr(v *RelExpr, lTrue, lFalse int) {
	// Protocol guards: every accessor constrains the packet shape; a
	// packet failing a guard fails the whole comparison (like tcpdump).
	// Guards fall through on success, so emitting them in sequence
	// composes.
	c.arithGuards(v.L, lFalse)
	c.arithGuards(v.R, lFalse)
	c.arith(v.R, arithScratchBase)
	c.load(OpSt, relScratch)
	c.arith(v.L, arithScratchBase)
	c.load(OpLdxMem, relScratch)
	switch v.Op {
	case RelEq:
		c.jump(OpJeqX, 0, lTrue, lFalse)
	case RelNe:
		c.jump(OpJeqX, 0, lFalse, lTrue)
	case RelGt:
		c.jump(OpJgtX, 0, lTrue, lFalse)
	case RelLe:
		c.jump(OpJgtX, 0, lFalse, lTrue)
	case RelGe:
		c.jump(OpJgeX, 0, lTrue, lFalse)
	case RelLt:
		c.jump(OpJgeX, 0, lFalse, lTrue)
	}
}

// arithGuards emits the protocol checks required by every accessor in a;
// they fall through on success and jump to lFalse on mismatch.
func (c *codegen) arithGuards(a Arith, lFalse int) {
	switch v := a.(type) {
	case *BinArith:
		c.arithGuards(v.L, lFalse)
		c.arithGuards(v.R, lFalse)
	case *AccessArith:
		switch v.Proto {
		case "ether":
			// No constraint.
		case "ip":
			ok := c.newLabel()
			c.load(OpLdH, offEtherType)
			c.jump(OpJeqK, 0x0800, ok, lFalse)
			c.place(ok)
		case "tcp", "udp", "icmp":
			var proto uint32
			switch v.Proto {
			case "tcp":
				proto = 6
			case "udp":
				proto = 17
			case "icmp":
				proto = 1
			}
			ok1, ok2, ok3 := c.newLabel(), c.newLabel(), c.newLabel()
			c.load(OpLdH, offEtherType)
			c.jump(OpJeqK, 0x0800, ok1, lFalse)
			c.place(ok1)
			c.load(OpLdB, offIPv4Proto)
			c.jump(OpJeqK, proto, ok2, lFalse)
			c.place(ok2)
			c.load(OpLdH, offIPv4Frag)
			c.jump(OpJsetK, 0x1fff, lFalse, ok3)
			c.place(ok3)
		}
	}
}

// arith evaluates a into the A register, using scratch slots from `slot`
// upward for intermediates.
func (c *codegen) arith(a Arith, slot int) {
	if slot >= relScratch {
		panic("bpf: arithmetic expression too deep")
	}
	switch v := a.(type) {
	case *NumArith:
		c.load(OpLdImm, v.V)
	case *LenArith:
		c.load(OpLdLen, 0)
	case *AccessArith:
		c.access(v)
	case *BinArith:
		c.arith(v.L, slot)
		c.load(OpSt, uint32(slot))
		c.arith(v.R, slot+1)
		c.load(OpTax, 0)
		c.load(OpLdMem, uint32(slot))
		switch v.Op {
		case '+':
			c.load(OpAddX, 0)
		case '-':
			c.load(OpSubX, 0)
		case '*':
			c.load(OpMulX, 0)
		case '/':
			c.load(OpDivX, 0)
		case '&':
			c.load(OpAndX, 0)
		case '|':
			c.load(OpOrX, 0)
		default:
			panic(fmt.Sprintf("bpf: unknown arithmetic operator %c", v.Op))
		}
	default:
		panic(fmt.Sprintf("bpf: unknown arithmetic node %T", a))
	}
}

// access emits the load for a header accessor. Guards were emitted by
// arithGuards, so the protocol shape is already established (loads can
// still fall off a short packet, which rejects — tcpdump semantics).
func (c *codegen) access(v *AccessArith) {
	var absOp, indOp uint16
	switch v.Size {
	case 1:
		absOp, indOp = OpLdB, OpLdIndB
	case 2:
		absOp, indOp = OpLdH, OpLdIndH
	default:
		absOp, indOp = OpLdW, OpLdIndW
	}
	switch v.Proto {
	case "ether":
		c.load(absOp, v.Off)
	case "ip":
		c.load(absOp, uint32(offIPv4Hdr)+v.Off)
	default: // tcp, udp, icmp: offset from the transport header via IHL
		c.load(OpLdxMsh, offIPv4Hdr)
		c.load(indOp, uint32(offIPv4Hdr)+v.Off)
	}
}
