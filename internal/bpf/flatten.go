package bpf

// Flattened-bytecode backend: the third filter backend next to the VM
// interpreter (bpf.go) and the closure JIT (jit.go). Flatten rewrites a
// validated classic-BPF program into a branch-threaded form —
// every jump carries its absolute target, so the dispatch loop never
// does pc-relative arithmetic — and hoists packet bounds checks to
// basic-block entries. Within a straight-line block every instruction
// executes unconditionally, and an out-of-bounds absolute load makes
// the whole filter return 0 (reject), so checking the maximum absolute
// extent once at block entry is observably identical to checking each
// load: either way the packet is rejected before any accept-return in
// the block can run. Indexed (IND) loads depend on the runtime X
// register and keep their per-instruction checks.
//
// The flattened program is the batch backend behind FilterChunk
// (chunk.go) and the preferred compilation target for expression
// filters: FlattenExpr first tries to fuse the expression into a
// straight-line Go predicate (fuse.go) and only falls back to the
// flattened bytecode interpreter for shapes the fuser does not cover.

import "fmt"

// Internal flat opcodes. The low range reuses the classic opcode values
// (dispatch stays recognizable in debuggers); values >= flatPseudo are
// pseudo-ops introduced by the flattener.
const (
	flatPseudo uint16 = 0x100

	// fCheckLen rejects the packet (returns 0) unless len(pkt) >= K.
	// Emitted at block entry covering every ABS/MSH load in the block.
	fCheckLen = flatPseudo + iota
	// fFail always returns 0: emitted for blocks containing an ABS load
	// whose extent overflows uint32 — such a load rejects every packet.
	fFail
	// Unchecked ABS/MSH loads, safe under a dominating fCheckLen.
	fLdWu
	fLdHu
	fLdBu
	fLdxMshU
)

// flatOp is one branch-threaded instruction: jt/jf are absolute
// indexes into the flat program (jt doubles as the JA target).
type flatOp struct {
	code   uint16
	jt, jf int32
	k      uint32
}

// FlatProgram is a compiled filter on the flattened backend. It is
// reusable across packets but, like the VM, not across goroutines
// (FilterChunk reuses internal state).
type FlatProgram struct {
	fused *fusedMatcher // non-nil: specialized straight-line predicate
	// fast is fused's shape-specialized predicate, hoisted here at
	// compile time so Run reaches it in one load instead of two.
	fast    func([]byte) uint32
	ops     []flatOp // otherwise: flattened bytecode
	origLen int
}

// Flatten rewrites a validated program into flattened form.
func Flatten(p Program) (*FlatProgram, error) {
	if err := Validate(p); err != nil {
		return nil, err
	}

	// Block leaders: entry plus every jump target. Validated jumps are
	// strictly forward and in range, so every leader index is valid.
	leader := make([]bool, len(p))
	leader[0] = true
	for pc, ins := range p {
		switch ins.Op {
		case OpJa:
			leader[pc+1+int(ins.K)] = true
		case OpJeqK, OpJeqX, OpJgtK, OpJgtX, OpJgeK, OpJgeX, OpJsetK, OpJsetX:
			leader[pc+1+int(ins.Jt)] = true
			leader[pc+1+int(ins.Jf)] = true
		}
	}

	// Per-instruction hoisted extent: for each pc, the maximum absolute
	// load extent of the block containing it (0 if none), and whether
	// any extent overflowed uint32 (the block can then never accept).
	type blockInfo struct {
		extent   uint64
		overflow bool
	}
	info := make([]blockInfo, len(p))
	for start := 0; start < len(p); {
		end := start + 1
		for end < len(p) && !leader[end] {
			end++
		}
		var bi blockInfo
		for pc := start; pc < end; pc++ {
			var ext uint64
			switch p[pc].Op {
			case OpLdW:
				ext = uint64(p[pc].K) + 4
			case OpLdH:
				ext = uint64(p[pc].K) + 2
			case OpLdB, OpLdxMsh:
				ext = uint64(p[pc].K) + 1
			}
			if ext > bi.extent {
				bi.extent = ext
			}
		}
		if bi.extent > 0xffffffff {
			bi.overflow = true
		}
		for pc := start; pc < end; pc++ {
			info[pc] = bi
		}
		start = end
	}

	// First pass: lay out flat indexes. A leader with a hoisted check
	// (or an always-fail block) gets one extra slot before its first
	// instruction; jumps into the block must land on that slot.
	flatIdx := make([]int32, len(p))
	entryIdx := make([]int32, len(p)) // jump-target index (block entry)
	n := int32(0)
	for pc := range p {
		entryIdx[pc] = n
		if leader[pc] && (info[pc].overflow || info[pc].extent > 0) {
			n++ // fCheckLen or fFail slot
		}
		flatIdx[pc] = n
		n++
	}

	// Second pass: emit.
	ops := make([]flatOp, n)
	for pc, ins := range p {
		if leader[pc] && (info[pc].overflow || info[pc].extent > 0) {
			if info[pc].overflow {
				ops[entryIdx[pc]] = flatOp{code: fFail}
			} else {
				ops[entryIdx[pc]] = flatOp{code: fCheckLen, k: uint32(info[pc].extent)}
			}
		}
		op := flatOp{code: ins.Op, k: ins.K}
		switch ins.Op {
		case OpLdW:
			op.code = fLdWu
		case OpLdH:
			op.code = fLdHu
		case OpLdB:
			op.code = fLdBu
		case OpLdxMsh:
			op.code = fLdxMshU
		case OpJa:
			op.jt = entryIdx[pc+1+int(ins.K)]
		case OpJeqK, OpJeqX, OpJgtK, OpJgtX, OpJgeK, OpJgeX, OpJsetK, OpJsetX:
			op.jt = entryIdx[pc+1+int(ins.Jt)]
			op.jf = entryIdx[pc+1+int(ins.Jf)]
		}
		ops[flatIdx[pc]] = op
	}
	return &FlatProgram{ops: ops, origLen: len(p)}, nil
}

// FlattenExpr compiles a parsed expression for the flattened backend,
// fusing it into a straight-line Go predicate when the shape allows and
// falling back to flattened bytecode otherwise. A nil expression
// matches everything (returns snaplen).
func FlattenExpr(e Expr, snaplen uint32) (*FlatProgram, error) {
	if snaplen == 0 {
		snaplen = DefaultSnapLen
	}
	if m, ok := fuseExpr(e, snaplen); ok {
		return &FlatProgram{fused: m, fast: m.fast}, nil
	}
	p, err := CompileExpr(e, snaplen)
	if err != nil {
		return nil, err
	}
	return Flatten(p)
}

// CompileFlat parses a filter expression and compiles it for the
// flattened backend (fused predicate or flattened bytecode).
func CompileFlat(expr string, snaplen uint32) (*FlatProgram, error) {
	e, err := Parse(expr)
	if err != nil {
		return nil, err
	}
	return FlattenExpr(e, snaplen)
}

// MustCompileFlat is CompileFlat, panicking on error.
func MustCompileFlat(expr string, snaplen uint32) *FlatProgram {
	f, err := CompileFlat(expr, snaplen)
	if err != nil {
		panic(fmt.Sprintf("bpf: compiling %q: %v", expr, err))
	}
	return f
}

// Fused reports whether the filter runs as a specialized straight-line
// predicate rather than flattened bytecode.
func (f *FlatProgram) Fused() bool { return f.fused != nil }

// Len returns the original instruction count (0 for fused filters).
func (f *FlatProgram) Len() int { return f.origLen }

// Run executes the filter over pkt and returns the snapshot length to
// accept (0 rejects), with the same observable semantics as VM.Run on a
// fresh VM: scratch memory starts zeroed every run and out-of-bounds
// loads reject the packet.
//
//wirecap:hotpath
func (f *FlatProgram) Run(pkt []byte) uint32 {
	if f.fast != nil {
		return f.fast(pkt)
	}
	if m := f.fused; m != nil {
		return m.run(pkt)
	}
	var a, x uint32
	var mem [ScratchSlots]uint32
	ops := f.ops
	plen := uint32(len(pkt))
	for pc := int32(0); ; {
		op := ops[pc]
		k := op.k
		pc++
		switch op.code {
		case fCheckLen:
			if plen < k {
				return 0
			}
		case fFail:
			return 0
		case fLdWu:
			a = uint32(pkt[k])<<24 | uint32(pkt[k+1])<<16 | uint32(pkt[k+2])<<8 | uint32(pkt[k+3])
		case fLdHu:
			a = uint32(pkt[k])<<8 | uint32(pkt[k+1])
		case fLdBu:
			a = uint32(pkt[k])
		case fLdxMshU:
			x = 4 * (uint32(pkt[k]) & 0xf)
		case OpLdIndW:
			off := x + k
			if off < x || off+4 > plen || off+4 < off {
				return 0
			}
			a = uint32(pkt[off])<<24 | uint32(pkt[off+1])<<16 | uint32(pkt[off+2])<<8 | uint32(pkt[off+3])
		case OpLdIndH:
			off := x + k
			if off < x || off+2 > plen || off+2 < off {
				return 0
			}
			a = uint32(pkt[off])<<8 | uint32(pkt[off+1])
		case OpLdIndB:
			off := x + k
			if off < x || off >= plen {
				return 0
			}
			a = uint32(pkt[off])
		case OpLdImm:
			a = k
		case OpLdLen:
			a = plen
		case OpLdMem:
			a = mem[k]
		case OpLdxImm:
			x = k
		case OpLdxLen:
			x = plen
		case OpLdxMem:
			x = mem[k]
		case OpSt:
			mem[k] = a
		case OpStx:
			mem[k] = x
		case OpAddK:
			a += k
		case OpAddX:
			a += x
		case OpSubK:
			a -= k
		case OpSubX:
			a -= x
		case OpMulK:
			a *= k
		case OpMulX:
			a *= x
		case OpDivK:
			a /= k
		case OpDivX:
			if x == 0 {
				return 0
			}
			a /= x
		case OpModK:
			a %= k
		case OpModX:
			if x == 0 {
				return 0
			}
			a %= x
		case OpAndK:
			a &= k
		case OpAndX:
			a &= x
		case OpOrK:
			a |= k
		case OpOrX:
			a |= x
		case OpXorK:
			a ^= k
		case OpXorX:
			a ^= x
		case OpLshK:
			a <<= k & 31
		case OpLshX:
			a <<= x & 31
		case OpRshK:
			a >>= k & 31
		case OpRshX:
			a >>= x & 31
		case OpNeg:
			a = -a
		case OpJa:
			pc = op.jt
		case OpJeqK:
			if a == k {
				pc = op.jt
			} else {
				pc = op.jf
			}
		case OpJeqX:
			if a == x {
				pc = op.jt
			} else {
				pc = op.jf
			}
		case OpJgtK:
			if a > k {
				pc = op.jt
			} else {
				pc = op.jf
			}
		case OpJgtX:
			if a > x {
				pc = op.jt
			} else {
				pc = op.jf
			}
		case OpJgeK:
			if a >= k {
				pc = op.jt
			} else {
				pc = op.jf
			}
		case OpJgeX:
			if a >= x {
				pc = op.jt
			} else {
				pc = op.jf
			}
		case OpJsetK:
			if a&k != 0 {
				pc = op.jt
			} else {
				pc = op.jf
			}
		case OpJsetX:
			if a&x != 0 {
				pc = op.jt
			} else {
				pc = op.jf
			}
		case OpRetK:
			return k
		case OpRetA:
			return a
		case OpTax:
			x = a
		case OpTxa:
			a = x
		}
	}
}

// Match reports whether the filter accepts the packet.
//
//wirecap:hotpath
func (f *FlatProgram) Match(pkt []byte) bool { return f.Run(pkt) != 0 }
