package bpf

import (
	"fmt"
	"strconv"
	"strings"
)

// Disassemble renders the program in the classic "bpf_image" style used by
// tcpdump -d, one instruction per line:
//
//	(000) ldh  [12]
//	(001) jeq  #0x800  jt 2  jf 5
//	...
func Disassemble(p Program) string {
	var sb strings.Builder
	for pc, ins := range p {
		fmt.Fprintf(&sb, "(%03d) %s\n", pc, disasmOne(pc, ins))
	}
	return sb.String()
}

func disasmOne(pc int, ins Instruction) string {
	k := ins.K
	jt := pc + 1 + int(ins.Jt)
	jf := pc + 1 + int(ins.Jf)
	switch ins.Op {
	case OpLdW:
		return fmt.Sprintf("ld   [%d]", k)
	case OpLdH:
		return fmt.Sprintf("ldh  [%d]", k)
	case OpLdB:
		return fmt.Sprintf("ldb  [%d]", k)
	case OpLdIndW:
		return fmt.Sprintf("ld   [x + %d]", k)
	case OpLdIndH:
		return fmt.Sprintf("ldh  [x + %d]", k)
	case OpLdIndB:
		return fmt.Sprintf("ldb  [x + %d]", k)
	case OpLdImm:
		return fmt.Sprintf("ld   #%#x", k)
	case OpLdLen:
		return "ld   len"
	case OpLdMem:
		return fmt.Sprintf("ld   M[%d]", k)
	case OpLdxImm:
		return fmt.Sprintf("ldx  #%#x", k)
	case OpLdxLen:
		return "ldx  len"
	case OpLdxMem:
		return fmt.Sprintf("ldx  M[%d]", k)
	case OpLdxMsh:
		return fmt.Sprintf("ldxb 4*([%d]&0xf)", k)
	case OpSt:
		return fmt.Sprintf("st   M[%d]", k)
	case OpStx:
		return fmt.Sprintf("stx  M[%d]", k)
	case OpAddK:
		return fmt.Sprintf("add  #%d", k)
	case OpAddX:
		return "add  x"
	case OpSubK:
		return fmt.Sprintf("sub  #%d", k)
	case OpSubX:
		return "sub  x"
	case OpMulK:
		return fmt.Sprintf("mul  #%d", k)
	case OpMulX:
		return "mul  x"
	case OpDivK:
		return fmt.Sprintf("div  #%d", k)
	case OpDivX:
		return "div  x"
	case OpModK:
		return fmt.Sprintf("mod  #%d", k)
	case OpModX:
		return "mod  x"
	case OpAndK:
		return fmt.Sprintf("and  #%#x", k)
	case OpAndX:
		return "and  x"
	case OpOrK:
		return fmt.Sprintf("or   #%#x", k)
	case OpOrX:
		return "or   x"
	case OpXorK:
		return fmt.Sprintf("xor  #%#x", k)
	case OpXorX:
		return "xor  x"
	case OpLshK:
		return fmt.Sprintf("lsh  #%d", k)
	case OpLshX:
		return "lsh  x"
	case OpRshK:
		return fmt.Sprintf("rsh  #%d", k)
	case OpRshX:
		return "rsh  x"
	case OpNeg:
		return "neg"
	case OpJa:
		return fmt.Sprintf("ja   %d", pc+1+int(k))
	case OpJeqK:
		return fmt.Sprintf("jeq  #%#x  jt %d  jf %d", k, jt, jf)
	case OpJeqX:
		return fmt.Sprintf("jeq  x  jt %d  jf %d", jt, jf)
	case OpJgtK:
		return fmt.Sprintf("jgt  #%#x  jt %d  jf %d", k, jt, jf)
	case OpJgtX:
		return fmt.Sprintf("jgt  x  jt %d  jf %d", jt, jf)
	case OpJgeK:
		return fmt.Sprintf("jge  #%#x  jt %d  jf %d", k, jt, jf)
	case OpJgeX:
		return fmt.Sprintf("jge  x  jt %d  jf %d", jt, jf)
	case OpJsetK:
		return fmt.Sprintf("jset #%#x  jt %d  jf %d", k, jt, jf)
	case OpJsetX:
		return fmt.Sprintf("jset x  jt %d  jf %d", jt, jf)
	case OpRetK:
		return fmt.Sprintf("ret  #%d", k)
	case OpRetA:
		return "ret  a"
	case OpTax:
		return "tax"
	case OpTxa:
		return "txa"
	default:
		return fmt.Sprintf(".word %#04x, %d, %d, %#x", ins.Op, ins.Jt, ins.Jf, k)
	}
}

// Assemble parses the Disassemble output format (the "(NNN) mnemonic ..."
// lines; the "(NNN)" prefix is optional) back into a program. It exists so
// filters can be stored in files and so tests can assert an exact
// round-trip.
func Assemble(src string) (Program, error) {
	var prog Program
	lines := strings.Split(src, "\n")
	pc := 0
	for lineNo, raw := range lines {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, ";") || strings.HasPrefix(line, "#") && !strings.HasPrefix(line, "#0") {
			continue
		}
		if strings.HasPrefix(line, "(") {
			if i := strings.Index(line, ")"); i >= 0 {
				line = strings.TrimSpace(line[i+1:])
			}
		}
		ins, err := asmOne(pc, line)
		if err != nil {
			return nil, fmt.Errorf("bpf: line %d: %w", lineNo+1, err)
		}
		prog = append(prog, ins)
		pc++
	}
	if err := Validate(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

func asmOne(pc int, line string) (Instruction, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return Instruction{}, fmt.Errorf("empty instruction")
	}
	mnem, args := fields[0], fields[1:]
	argStr := strings.Join(args, " ")

	parseNum := func(s string) (uint32, error) {
		s = strings.TrimPrefix(s, "#")
		v, err := strconv.ParseUint(s, 0, 32)
		return uint32(v), err
	}
	parseAbs := func(s string) (uint32, error) {
		s = strings.TrimPrefix(s, "[")
		s = strings.TrimSuffix(s, "]")
		return parseNum(s)
	}
	parseMem := func(s string) (uint32, error) {
		s = strings.TrimPrefix(s, "M[")
		s = strings.TrimSuffix(s, "]")
		return parseNum(s)
	}
	// parseJump handles "#K jt N jf N" and "x jt N jf N".
	parseJump := func(opK, opX uint16) (Instruction, error) {
		if len(args) != 5 || args[1] != "jt" || args[3] != "jf" {
			return Instruction{}, fmt.Errorf("bad jump %q", argStr)
		}
		jt, err := strconv.Atoi(args[2])
		if err != nil {
			return Instruction{}, err
		}
		jf, err := strconv.Atoi(args[4])
		if err != nil {
			return Instruction{}, err
		}
		relJt, relJf := jt-pc-1, jf-pc-1
		if relJt < 0 || relJt > 255 || relJf < 0 || relJf > 255 {
			return Instruction{}, fmt.Errorf("jump target out of range: jt %d jf %d at pc %d", jt, jf, pc)
		}
		ins := Instruction{Jt: uint8(relJt), Jf: uint8(relJf)}
		if args[0] == "x" {
			ins.Op = opX
			return ins, nil
		}
		k, err := parseNum(args[0])
		if err != nil {
			return Instruction{}, err
		}
		ins.Op = opK
		ins.K = k
		return ins, nil
	}
	// parseALU handles "#K" and "x".
	parseALU := func(opK, opX uint16) (Instruction, error) {
		if len(args) != 1 {
			return Instruction{}, fmt.Errorf("bad alu operand %q", argStr)
		}
		if args[0] == "x" {
			return Instruction{Op: opX}, nil
		}
		k, err := parseNum(args[0])
		if err != nil {
			return Instruction{}, err
		}
		return Instruction{Op: opK, K: k}, nil
	}

	switch mnem {
	case "ld", "ldh", "ldb":
		var wOp, hOp, bOp, wInd, hInd, bInd uint16 = OpLdW, OpLdH, OpLdB, OpLdIndW, OpLdIndH, OpLdIndB
		var abs, ind uint16
		switch mnem {
		case "ld":
			abs, ind = wOp, wInd
		case "ldh":
			abs, ind = hOp, hInd
		case "ldb":
			abs, ind = bOp, bInd
		}
		switch {
		case mnem == "ld" && argStr == "len":
			return Instruction{Op: OpLdLen}, nil
		case mnem == "ld" && strings.HasPrefix(argStr, "M["):
			k, err := parseMem(argStr)
			return Instruction{Op: OpLdMem, K: k}, err
		case mnem == "ld" && strings.HasPrefix(argStr, "#"):
			k, err := parseNum(argStr)
			return Instruction{Op: OpLdImm, K: k}, err
		case strings.HasPrefix(argStr, "[x + "):
			k, err := parseNum(strings.TrimSuffix(strings.TrimPrefix(argStr, "[x + "), "]"))
			return Instruction{Op: ind, K: k}, err
		case strings.HasPrefix(argStr, "["):
			k, err := parseAbs(argStr)
			return Instruction{Op: abs, K: k}, err
		}
		return Instruction{}, fmt.Errorf("bad %s operand %q", mnem, argStr)
	case "ldx":
		switch {
		case argStr == "len":
			return Instruction{Op: OpLdxLen}, nil
		case strings.HasPrefix(argStr, "M["):
			k, err := parseMem(argStr)
			return Instruction{Op: OpLdxMem, K: k}, err
		case strings.HasPrefix(argStr, "#"):
			k, err := parseNum(argStr)
			return Instruction{Op: OpLdxImm, K: k}, err
		}
		return Instruction{}, fmt.Errorf("bad ldx operand %q", argStr)
	case "ldxb":
		// ldxb 4*([K]&0xf)
		s := strings.TrimSuffix(strings.TrimPrefix(argStr, "4*(["), "]&0xf)")
		k, err := parseNum(s)
		return Instruction{Op: OpLdxMsh, K: k}, err
	case "st":
		k, err := parseMem(argStr)
		return Instruction{Op: OpSt, K: k}, err
	case "stx":
		k, err := parseMem(argStr)
		return Instruction{Op: OpStx, K: k}, err
	case "add":
		return parseALU(OpAddK, OpAddX)
	case "sub":
		return parseALU(OpSubK, OpSubX)
	case "mul":
		return parseALU(OpMulK, OpMulX)
	case "div":
		return parseALU(OpDivK, OpDivX)
	case "mod":
		return parseALU(OpModK, OpModX)
	case "and":
		return parseALU(OpAndK, OpAndX)
	case "or":
		return parseALU(OpOrK, OpOrX)
	case "xor":
		return parseALU(OpXorK, OpXorX)
	case "lsh":
		return parseALU(OpLshK, OpLshX)
	case "rsh":
		return parseALU(OpRshK, OpRshX)
	case "neg":
		return Instruction{Op: OpNeg}, nil
	case "ja":
		target, err := strconv.Atoi(argStr)
		if err != nil {
			return Instruction{}, err
		}
		rel := target - pc - 1
		if rel < 0 {
			return Instruction{}, fmt.Errorf("backward ja to %d at pc %d", target, pc)
		}
		return Instruction{Op: OpJa, K: uint32(rel)}, nil
	case "jeq":
		return parseJump(OpJeqK, OpJeqX)
	case "jgt":
		return parseJump(OpJgtK, OpJgtX)
	case "jge":
		return parseJump(OpJgeK, OpJgeX)
	case "jset":
		return parseJump(OpJsetK, OpJsetX)
	case "ret":
		if argStr == "a" {
			return Instruction{Op: OpRetA}, nil
		}
		k, err := parseNum(argStr)
		return Instruction{Op: OpRetK, K: k}, err
	case "tax":
		return Instruction{Op: OpTax}, nil
	case "txa":
		return Instruction{Op: OpTxa}, nil
	default:
		return Instruction{}, fmt.Errorf("unknown mnemonic %q", mnem)
	}
}
