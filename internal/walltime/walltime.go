// Package walltime is the one sanctioned doorway to the wall clock.
//
// Simulator code charges virtual time through internal/vtime, and the
// wirelint walltime analyzer rejects direct time.Now / time.Since calls
// everywhere outside tests. A few tools legitimately need real elapsed
// time — the CI gate's perf floor measures simulated packets per *wall*
// second — and they take it from here, so the allowlisted exceptions
// live in exactly one file instead of scattering //wirelint:allow
// directives across callers.
package walltime

import "time"

// A Stopwatch measures real elapsed time. The zero value is unstarted;
// use Start.
type Stopwatch struct {
	start time.Time
}

// Start returns a running stopwatch.
func Start() Stopwatch {
	return Stopwatch{start: time.Now()} //wirelint:allow walltime sanctioned wall-clock doorway; perf floors measure real elapsed seconds
}

// Seconds reports the wall-clock seconds since Start, clamped to a
// small positive value so callers can divide by it.
func (s Stopwatch) Seconds() float64 {
	elapsed := time.Since(s.start).Seconds() //wirelint:allow walltime sanctioned wall-clock doorway; perf floors measure real elapsed seconds
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	return elapsed
}
