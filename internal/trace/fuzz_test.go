package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzPcapReader guards the pcap reader against panics and runaway
// allocation on corrupt capture files.
func FuzzPcapReader(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	w.WritePacket(123, make([]byte, 60))
	w.WritePacket(456, make([]byte, 1514))
	w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xd4, 0xc3, 0xb2, 0xa1})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			_, _, err := r.ReadPacket()
			if err != nil {
				if err != io.EOF {
					return // corrupt tail: error is correct
				}
				break
			}
		}
	})
}

// FuzzPcapngReader does the same for the pcapng block parser.
func FuzzPcapngReader(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewNgWriter(&buf, 0)
	w.WritePacket(123, make([]byte, 61))
	w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte{0x0A, 0x0D, 0x0D, 0x0A})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewNgReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			_, _, err := r.ReadPacket()
			if err != nil {
				break
			}
		}
	})
}
