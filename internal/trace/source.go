package trace

import (
	"io"

	"repro/internal/nic"
	"repro/internal/packet"
	"repro/internal/vtime"
)

// Source is a time-ordered stream of frames. The returned frame buffer is
// only valid until the next call: the NIC's DMA copies it into a ring
// buffer immediately, just as the wire hands bits to hardware.
type Source interface {
	// Next returns the next frame and its arrival time, or ok == false at
	// the end of the stream. Timestamps must be non-decreasing.
	Next() (frame []byte, ts vtime.Time, ok bool)
}

// PcapSource adapts a pcap Reader into a Source.
type PcapSource struct {
	r   *Reader
	err error
}

// NewPcapSource wraps a pcap reader.
func NewPcapSource(r *Reader) *PcapSource { return &PcapSource{r: r} }

// Next implements Source.
func (s *PcapSource) Next() ([]byte, vtime.Time, bool) {
	frame, ts, err := s.r.ReadPacket()
	if err != nil {
		if err != io.EOF {
			s.err = err
		}
		return nil, 0, false
	}
	return frame, ts, true
}

// Err returns the error that ended the stream, if it was not a clean EOF.
func (s *PcapSource) Err() error { return s.err }

// DriveStats reports what a Drive call offered to the NIC.
type DriveStats struct {
	Sent  uint64 // frames offered from the wire
	Bytes uint64
	Last  vtime.Time // timestamp of the final frame
}

// Drive schedules every packet of src for delivery into n at its recorded
// timestamp — the traffic generator "replaying captured data at the speed
// exactly as recorded". It must be called before sched.Run; the returned
// stats are complete only after the scheduler drains. onDone, if non-nil,
// runs after the last packet has been delivered.
//
// Consecutive deliveries are batched into one scheduler event whenever no
// other event is due in between (Scheduler.AdvanceIfIdle), which collapses
// the per-packet heap round trip for paced generators while keeping event
// order — and therefore every drop and timestamp — bit-identical to the
// one-event-per-packet schedule.
func Drive(sched *vtime.Scheduler, n *nic.NIC, src Source, onDone func()) *DriveStats {
	st := &DriveStats{}
	frame, ts, ok := src.Next()
	if !ok {
		if onDone != nil {
			onDone()
		}
		return st
	}
	// Each event delivers the pending frame, then pulls the next one.
	// Frames are copied into a private (pooled) buffer because Source
	// reuses its buffer and delivery happens later in virtual time.
	bufp := packet.GetFrameBuf()
	pending := append((*bufp)[:0], frame...)
	var deliver func()
	deliver = func() {
		for {
			st.Sent++
			st.Bytes += uint64(len(pending))
			st.Last = sched.Now()
			n.Deliver(pending, sched.Now())
			next, nts, ok := src.Next()
			if !ok {
				*bufp = pending // append may have grown past the pooled cap
				packet.PutFrameBuf(bufp)
				if onDone != nil {
					onDone()
				}
				return
			}
			if nts < sched.Now() {
				nts = sched.Now() // clamp non-monotonic input
			}
			pending = append(pending[:0], next...)
			// Deliver the successor inside this event unless some other
			// event (a processing completion, a TX drain) is due first; then
			// fall back to a real event, which also preserves same-timestamp
			// FIFO order against whatever is pending.
			if !sched.AdvanceIfIdle(nts) {
				sched.At(nts, deliver)
				return
			}
		}
	}
	sched.At(ts, deliver)
	return st
}

// FlowForQueue searches for a flow 5-tuple whose RSS hash steers it to
// receive queue q of a NIC with n queues using the default key and
// indirection table. The source address is srcNet with its low hostBits
// randomized; the destination is drawn from 192.168/16. Workload
// generators use it to construct traffic with controlled per-queue load,
// the way the paper's captured trace happened to exercise specific queues.
func FlowForQueue(r *vtime.Rand, n, q int, proto uint8, srcNet uint32, hostBits int) packet.FlowKey {
	hostMask := uint32(1)<<uint(hostBits) - 1
	for {
		f := packet.FlowKey{
			Src:     packet.IPv4FromUint32(srcNet&^hostMask | uint32(r.Uint32())&hostMask),
			Dst:     packet.IPv4FromUint32(0xc0a80000 | uint32(r.Intn(1<<16))), // 192.168/16
			SrcPort: uint16(1024 + r.Intn(60000)),
			DstPort: uint16(1 + r.Intn(60000)),
			Proto:   proto,
		}
		h := nic.RSSHash(nic.DefaultRSSKey[:], f)
		if int(h%nic.IndirectionEntries)%n == q {
			return f
		}
	}
}
