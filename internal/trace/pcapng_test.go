package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"repro/internal/packet"
	"repro/internal/vtime"
)

func TestPcapngRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewNgWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := packet.NewBuilder()
	scratch := make([]byte, packet.MaxFrameLen)
	var frames [][]byte
	var stamps []vtime.Time
	r := vtime.NewRand(9)
	for i := 0; i < 200; i++ {
		flow := packet.FlowKey{
			Src: packet.IPv4FromUint32(r.Uint32()), Dst: packet.IPv4FromUint32(r.Uint32()),
			SrcPort: uint16(i + 1), DstPort: 80, Proto: packet.ProtoTCP,
		}
		frame := b.Build(scratch, flow, make([]byte, r.Intn(500)))
		ts := vtime.Time(i)*7777777 + 3
		if err := w.WritePacket(ts, frame); err != nil {
			t.Fatal(err)
		}
		frames = append(frames, append([]byte(nil), frame...))
		stamps = append(stamps, ts)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 200 {
		t.Fatalf("Count = %d", w.Count())
	}

	rd, err := NewNgReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		frame, ts, err := rd.ReadPacket()
		if err == io.EOF {
			if i != 200 {
				t.Fatalf("EOF after %d packets", i)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ts != stamps[i] {
			t.Fatalf("packet %d ts %v, want %v", i, ts, stamps[i])
		}
		if !bytes.Equal(frame, frames[i]) {
			t.Fatalf("packet %d data mismatch", i)
		}
	}
}

func TestPcapngRejectsPcap(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0) // classic pcap
	w.WritePacket(0, make([]byte, 60))
	w.Flush()
	if _, err := NewNgReader(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("classic pcap accepted as pcapng")
	}
	if _, err := NewNgReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestPcapngSkipsUnknownBlocks(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewNgWriter(&buf, 0)
	w.WritePacket(42, make([]byte, 60))
	w.Flush()
	// Append an unknown block (custom type 0x0BAD), then another packet
	// section written by a fresh writer (SHB + IDB + EPB).
	unknown := make([]byte, 16)
	binary.LittleEndian.PutUint32(unknown[0:4], 0x0BAD)
	binary.LittleEndian.PutUint32(unknown[4:8], 16)
	binary.LittleEndian.PutUint32(unknown[12:16], 16)
	buf.Write(unknown)
	w2, _ := NewNgWriter(&buf, 0)
	w2.WritePacket(43, make([]byte, 61))
	w2.Flush()

	rd, err := NewNgReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	_, ts1, err := rd.ReadPacket()
	if err != nil || ts1 != 42 {
		t.Fatalf("first packet: ts %v err %v", ts1, err)
	}
	frame2, ts2, err := rd.ReadPacket()
	if err != nil || ts2 != 43 || len(frame2) != 61 {
		t.Fatalf("second packet after unknown block + new section: len %d ts %v err %v",
			len(frame2), ts2, err)
	}
	if _, _, err := rd.ReadPacket(); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestPcapngTruncatedBlock(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewNgWriter(&buf, 0)
	w.WritePacket(0, make([]byte, 60))
	w.Flush()
	rd, err := NewNgReader(bytes.NewReader(buf.Bytes()[:buf.Len()-6]))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rd.ReadPacket(); err == nil {
		t.Fatal("truncated EPB read succeeded")
	}
}

func TestPcapngMicrosecondDefaultResolution(t *testing.T) {
	// Hand-build a section whose IDB has no if_tsresol option: timestamps
	// are in microseconds.
	var buf bytes.Buffer
	shb := make([]byte, 28)
	binary.LittleEndian.PutUint32(shb[0:4], blockSHB)
	binary.LittleEndian.PutUint32(shb[4:8], 28)
	binary.LittleEndian.PutUint32(shb[8:12], ngByteOrderMagic)
	binary.LittleEndian.PutUint16(shb[12:14], 1)
	binary.LittleEndian.PutUint64(shb[16:24], ^uint64(0))
	binary.LittleEndian.PutUint32(shb[24:28], 28)
	buf.Write(shb)
	idb := make([]byte, 20)
	binary.LittleEndian.PutUint32(idb[0:4], blockIDB)
	binary.LittleEndian.PutUint32(idb[4:8], 20)
	binary.LittleEndian.PutUint16(idb[8:10], LinkTypeEthernet)
	binary.LittleEndian.PutUint32(idb[16:20], 20)
	buf.Write(idb)
	epb := make([]byte, 32+60)
	binary.LittleEndian.PutUint32(epb[0:4], blockEPB)
	binary.LittleEndian.PutUint32(epb[4:8], uint32(len(epb)))
	binary.LittleEndian.PutUint32(epb[12:16], 0)
	binary.LittleEndian.PutUint32(epb[16:20], 5) // 5 us
	binary.LittleEndian.PutUint32(epb[20:24], 60)
	binary.LittleEndian.PutUint32(epb[24:28], 60)
	binary.LittleEndian.PutUint32(epb[len(epb)-4:], uint32(len(epb)))
	buf.Write(epb)

	rd, err := NewNgReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	_, ts, err := rd.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if ts != 5*vtime.Microsecond {
		t.Fatalf("ts = %v, want 5us", ts)
	}
}

func TestNgSourceAdapter(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewNgWriter(&buf, 0)
	w.WritePacket(1, make([]byte, 60))
	w.WritePacket(2, make([]byte, 60))
	w.Flush()
	rd, err := NewNgReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	src := NewNgSource(rd)
	n := 0
	for {
		_, _, ok := src.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 2 || src.Err() != nil {
		t.Fatalf("n=%d err=%v", n, src.Err())
	}
}
