// Package trace provides the traffic side of the reproduction: a pure-Go
// pcap file reader/writer, synthetic workload generators (the wire-rate
// generator and a border-router model reproducing the paper's Figure 3
// load imbalance), and a driver that replays a packet source into a
// simulated NIC "at the speed exactly as recorded" (§2.2).
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/vtime"
)

// pcap file magic numbers.
const (
	magicMicros = 0xa1b2c3d4
	magicNanos  = 0xa1b23c4d
)

// LinkTypeEthernet is the only link type the simulator produces.
const LinkTypeEthernet = 1

// Errors returned by the pcap reader.
var (
	ErrBadMagic    = errors.New("trace: not a pcap file")
	ErrBadLinkType = errors.New("trace: unsupported link type")
	ErrTruncated   = errors.New("trace: truncated pcap file")
	// ErrImplausibleLength marks a record header whose capture length
	// exceeds any sane frame — the signature of a corrupt or hostile
	// file, caught before it turns into a giant allocation.
	ErrImplausibleLength = errors.New("trace: implausible packet length")
)

// Writer writes a pcap capture file (nanosecond variant, since virtual
// time is nanosecond-granular).
type Writer struct {
	w       *bufio.Writer
	snaplen uint32
	hdr     [16]byte
	count   uint64
}

// NewWriter writes a pcap global header and returns a Writer. snaplen 0
// means 65535.
func NewWriter(w io.Writer, snaplen uint32) (*Writer, error) {
	if snaplen == 0 {
		snaplen = 65535
	}
	bw := bufio.NewWriter(w)
	var gh [24]byte
	binary.LittleEndian.PutUint32(gh[0:4], magicNanos)
	binary.LittleEndian.PutUint16(gh[4:6], 2) // major
	binary.LittleEndian.PutUint16(gh[6:8], 4) // minor
	binary.LittleEndian.PutUint32(gh[16:20], snaplen)
	binary.LittleEndian.PutUint32(gh[20:24], LinkTypeEthernet)
	if _, err := bw.Write(gh[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw, snaplen: snaplen}, nil
}

// WritePacket appends one frame captured at virtual time ts. Frames longer
// than the snap length are truncated, with the original length recorded.
func (w *Writer) WritePacket(ts vtime.Time, frame []byte) error {
	capLen := len(frame)
	if uint32(capLen) > w.snaplen {
		capLen = int(w.snaplen)
	}
	sec := uint32(ts / vtime.Second)
	nsec := uint32(ts % vtime.Second)
	binary.LittleEndian.PutUint32(w.hdr[0:4], sec)
	binary.LittleEndian.PutUint32(w.hdr[4:8], nsec)
	binary.LittleEndian.PutUint32(w.hdr[8:12], uint32(capLen))
	binary.LittleEndian.PutUint32(w.hdr[12:16], uint32(len(frame)))
	if _, err := w.w.Write(w.hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(frame[:capLen]); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns the number of packets written.
func (w *Writer) Count() uint64 { return w.count }

// Flush flushes buffered output; call it before closing the underlying
// file.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader reads a pcap capture file, accepting both timestamp resolutions
// and both byte orders.
type Reader struct {
	r     *bufio.Reader
	order binary.ByteOrder
	nanos bool
	buf   []byte
	hdr   [16]byte
}

// NewReader parses the pcap global header.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var gh [24]byte
	if _, err := io.ReadFull(br, gh[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	rd := &Reader{r: br}
	magicLE := binary.LittleEndian.Uint32(gh[0:4])
	magicBE := binary.BigEndian.Uint32(gh[0:4])
	switch {
	case magicLE == magicMicros:
		rd.order = binary.LittleEndian
	case magicLE == magicNanos:
		rd.order, rd.nanos = binary.LittleEndian, true
	case magicBE == magicMicros:
		rd.order = binary.BigEndian
	case magicBE == magicNanos:
		rd.order, rd.nanos = binary.BigEndian, true
	default:
		return nil, ErrBadMagic
	}
	if lt := rd.order.Uint32(gh[20:24]); lt != LinkTypeEthernet {
		return nil, fmt.Errorf("%w: %d", ErrBadLinkType, lt)
	}
	return rd, nil
}

// ReadPacket returns the next frame and its timestamp. The frame buffer is
// reused across calls. io.EOF signals a clean end of file.
func (r *Reader) ReadPacket() ([]byte, vtime.Time, error) {
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	sec := r.order.Uint32(r.hdr[0:4])
	sub := r.order.Uint32(r.hdr[4:8])
	capLen := r.order.Uint32(r.hdr[8:12])
	if capLen > 256*1024 {
		return nil, 0, fmt.Errorf("%w: %d", ErrImplausibleLength, capLen)
	}
	if cap(r.buf) < int(capLen) {
		r.buf = make([]byte, capLen)
	}
	r.buf = r.buf[:capLen]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	ts := vtime.Time(sec) * vtime.Second
	if r.nanos {
		ts += vtime.Time(sub)
	} else {
		ts += vtime.Time(sub) * vtime.Microsecond
	}
	return r.buf, ts, nil
}
