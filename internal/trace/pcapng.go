package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/vtime"
)

// pcapng (the pcap-NG capture file format, as written by modern
// tcpdump/wireshark): enough of the block structure to round-trip packet
// data — Section Header Block, Interface Description Block, Enhanced
// Packet Block, and tolerant skipping of everything else.

// pcapng block types.
const (
	blockSHB = 0x0A0D0D0A // section header
	blockIDB = 0x00000001 // interface description
	blockEPB = 0x00000006 // enhanced packet
)

const ngByteOrderMagic = 0x1A2B3C4D

// Errors returned by the pcapng reader.
var (
	ErrNotPcapng     = errors.New("trace: not a pcapng file")
	ErrBadBlock      = errors.New("trace: malformed pcapng block")
	ErrNoInterface   = errors.New("trace: pcapng packet references unknown interface")
	ErrBadResolution = errors.New("trace: unsupported pcapng timestamp resolution")
)

// NgWriter writes a pcapng file with one Ethernet interface and
// nanosecond timestamps.
type NgWriter struct {
	w     *bufio.Writer
	count uint64
	hdr   [28]byte // EPB header scratch, reused per packet
}

// NewNgWriter emits the section header and interface description and
// returns a writer. snaplen 0 means unlimited.
func NewNgWriter(w io.Writer, snaplen uint32) (*NgWriter, error) {
	bw := bufio.NewWriter(w)
	// Section Header Block: type, len, byte-order magic, version 1.0,
	// section length -1 (unknown), trailing len.
	shb := make([]byte, 28)
	binary.LittleEndian.PutUint32(shb[0:4], blockSHB)
	binary.LittleEndian.PutUint32(shb[4:8], 28)
	binary.LittleEndian.PutUint32(shb[8:12], ngByteOrderMagic)
	binary.LittleEndian.PutUint16(shb[12:14], 1)
	binary.LittleEndian.PutUint64(shb[16:24], ^uint64(0))
	binary.LittleEndian.PutUint32(shb[24:28], 28)
	if _, err := bw.Write(shb); err != nil {
		return nil, err
	}
	// Interface Description Block with an if_tsresol option (10^-9).
	// Options: code 9 (if_tsresol), len 1, value 9, pad 3; end-of-options.
	idb := make([]byte, 32)
	binary.LittleEndian.PutUint32(idb[0:4], blockIDB)
	binary.LittleEndian.PutUint32(idb[4:8], 32)
	binary.LittleEndian.PutUint16(idb[8:10], LinkTypeEthernet)
	binary.LittleEndian.PutUint32(idb[12:16], snaplen)
	binary.LittleEndian.PutUint16(idb[16:18], 9) // if_tsresol
	binary.LittleEndian.PutUint16(idb[18:20], 1)
	idb[20] = 9 // nanoseconds
	// 3 pad bytes, then opt_endofopt (0,0).
	binary.LittleEndian.PutUint32(idb[28:32], 32)
	if _, err := bw.Write(idb); err != nil {
		return nil, err
	}
	return &NgWriter{w: bw}, nil
}

// WritePacket appends one frame as an Enhanced Packet Block.
func (w *NgWriter) WritePacket(ts vtime.Time, frame []byte) error {
	pad := (4 - len(frame)%4) % 4
	total := 32 + len(frame) + pad
	hdr := w.hdr[:]
	binary.LittleEndian.PutUint32(hdr[0:4], blockEPB)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(total))
	binary.LittleEndian.PutUint32(hdr[8:12], 0) // interface 0
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(uint64(ts)>>32))
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(uint64(ts)))
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(len(frame)))
	binary.LittleEndian.PutUint32(hdr[24:28], uint32(len(frame)))
	if _, err := w.w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.w.Write(frame); err != nil {
		return err
	}
	var tail [8]byte
	binary.LittleEndian.PutUint32(tail[pad:pad+4], uint32(total))
	if _, err := w.w.Write(tail[:pad+4]); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns packets written.
func (w *NgWriter) Count() uint64 { return w.count }

// Flush flushes buffered output.
func (w *NgWriter) Flush() error { return w.w.Flush() }

// ngInterface describes one capture interface of a section.
type ngInterface struct {
	linkType uint16
	// tsDiv converts raw timestamps to nanoseconds: ns = raw * tsMul.
	tsMul vtime.Time
}

// NgReader reads pcapng files (little- or big-endian sections).
type NgReader struct {
	r      *bufio.Reader
	order  binary.ByteOrder
	ifaces []ngInterface
	buf    []byte
}

// NewNgReader checks the section header and returns a reader.
func NewNgReader(r io.Reader) (*NgReader, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(12)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotPcapng, err)
	}
	if binary.LittleEndian.Uint32(head[0:4]) != blockSHB {
		return nil, ErrNotPcapng
	}
	rd := &NgReader{r: br}
	switch {
	case binary.LittleEndian.Uint32(head[8:12]) == ngByteOrderMagic:
		rd.order = binary.LittleEndian
	case binary.BigEndian.Uint32(head[8:12]) == ngByteOrderMagic:
		rd.order = binary.BigEndian
	default:
		return nil, ErrNotPcapng
	}
	// Consume the SHB.
	if _, _, err := rd.readBlock(); err != nil {
		return nil, err
	}
	return rd, nil
}

// readBlock returns the next block's type and body (without the
// type/length framing).
func (r *NgReader) readBlock() (uint32, []byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: %v", ErrBadBlock, err)
	}
	typ := r.order.Uint32(hdr[0:4])
	total := r.order.Uint32(hdr[4:8])
	if total < 12 || total%4 != 0 || total > 1<<20 {
		return 0, nil, fmt.Errorf("%w: block length %d", ErrBadBlock, total)
	}
	body := int(total) - 12
	if cap(r.buf) < body {
		r.buf = make([]byte, body)
	}
	r.buf = r.buf[:body]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrBadBlock, err)
	}
	var tail [4]byte
	if _, err := io.ReadFull(r.r, tail[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrBadBlock, err)
	}
	if r.order.Uint32(tail[:]) != total {
		return 0, nil, fmt.Errorf("%w: trailing length mismatch", ErrBadBlock)
	}
	return typ, r.buf, nil
}

// addInterface parses an IDB body.
func (r *NgReader) addInterface(body []byte) error {
	if len(body) < 8 {
		return ErrBadBlock
	}
	iface := ngInterface{
		linkType: r.order.Uint16(body[0:2]),
		tsMul:    vtime.Microsecond, // pcapng default resolution is 10^-6
	}
	// Walk options for if_tsresol (code 9).
	opts := body[8:]
	for len(opts) >= 4 {
		code := r.order.Uint16(opts[0:2])
		olen := int(r.order.Uint16(opts[2:4]))
		if code == 0 {
			break
		}
		if 4+olen > len(opts) {
			return ErrBadBlock
		}
		if code == 9 && olen >= 1 {
			v := opts[4]
			if v&0x80 != 0 {
				return fmt.Errorf("%w: base-2 resolution", ErrBadResolution)
			}
			mul := vtime.Time(1)
			for i := v; i < 9; i++ {
				mul *= 10
			}
			if v > 9 {
				return fmt.Errorf("%w: finer than nanoseconds", ErrBadResolution)
			}
			iface.tsMul = mul
		}
		opts = opts[4+(olen+3)/4*4:]
	}
	r.ifaces = append(r.ifaces, iface)
	return nil
}

// ReadPacket returns the next Ethernet frame and its timestamp, skipping
// non-packet blocks and non-Ethernet interfaces. The frame buffer is
// valid until the next call. io.EOF signals a clean end.
func (r *NgReader) ReadPacket() ([]byte, vtime.Time, error) {
	for {
		typ, body, err := r.readBlock()
		if err != nil {
			return nil, 0, err
		}
		switch typ {
		case blockIDB:
			if err := r.addInterface(body); err != nil {
				return nil, 0, err
			}
		case blockEPB:
			if len(body) < 20 {
				return nil, 0, ErrBadBlock
			}
			ifID := int(r.order.Uint32(body[0:4]))
			if ifID >= len(r.ifaces) {
				return nil, 0, ErrNoInterface
			}
			iface := r.ifaces[ifID]
			if iface.linkType != LinkTypeEthernet {
				continue // skip packets from non-Ethernet interfaces
			}
			raw := uint64(r.order.Uint32(body[4:8]))<<32 | uint64(r.order.Uint32(body[8:12]))
			capLen := int(r.order.Uint32(body[12:16]))
			if 20+capLen > len(body) {
				return nil, 0, ErrBadBlock
			}
			return body[20 : 20+capLen], vtime.Time(raw) * iface.tsMul, nil
		case blockSHB:
			// A new section resets the interface list.
			r.ifaces = r.ifaces[:0]
		default:
			// Skip unknown and statistics blocks.
		}
	}
}

// NgSource adapts an NgReader into a Source.
type NgSource struct {
	r   *NgReader
	err error
}

// NewNgSource wraps a pcapng reader.
func NewNgSource(r *NgReader) *NgSource { return &NgSource{r: r} }

// Next implements Source.
func (s *NgSource) Next() ([]byte, vtime.Time, bool) {
	frame, ts, err := s.r.ReadPacket()
	if err != nil {
		if err != io.EOF {
			s.err = err
		}
		return nil, 0, false
	}
	return frame, ts, true
}

// Err returns the error that ended the stream, if any.
func (s *NgSource) Err() error { return s.err }
