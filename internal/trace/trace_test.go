package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"repro/internal/nic"
	"repro/internal/packet"
	"repro/internal/vtime"
)

func TestPcapRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := packet.NewBuilder()
	scratch := make([]byte, packet.MaxFrameLen)
	var frames [][]byte
	var stamps []vtime.Time
	r := vtime.NewRand(4)
	for i := 0; i < 100; i++ {
		flow := packet.FlowKey{
			Src: packet.IPv4FromUint32(r.Uint32()), Dst: packet.IPv4FromUint32(r.Uint32()),
			SrcPort: uint16(i + 1), DstPort: 53, Proto: packet.ProtoUDP,
		}
		frame := b.Build(scratch, flow, make([]byte, r.Intn(400)))
		ts := vtime.Time(i) * 123456 * vtime.Nanosecond
		if err := w.WritePacket(ts, frame); err != nil {
			t.Fatal(err)
		}
		frames = append(frames, append([]byte(nil), frame...))
		stamps = append(stamps, ts)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 100 {
		t.Fatalf("Count = %d", w.Count())
	}

	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		frame, ts, err := rd.ReadPacket()
		if err == io.EOF {
			if i != 100 {
				t.Fatalf("EOF after %d packets", i)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ts != stamps[i] || !bytes.Equal(frame, frames[i]) {
			t.Fatalf("packet %d mismatch (ts %v vs %v)", i, ts, stamps[i])
		}
	}
}

func TestPcapSnaplenTruncates(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 100)
	frame := make([]byte, 500)
	if err := w.WritePacket(0, frame); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := rd.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("read %d bytes, want 100", len(got))
	}
}

func TestPcapReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a pcap file at all........"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestPcapReaderMicrosecondBigEndian(t *testing.T) {
	// Hand-build a big-endian microsecond pcap with one 4-byte packet.
	var buf bytes.Buffer
	gh := make([]byte, 24)
	binary.BigEndian.PutUint32(gh[0:4], 0xa1b2c3d4)
	binary.BigEndian.PutUint16(gh[4:6], 2)
	binary.BigEndian.PutUint16(gh[6:8], 4)
	binary.BigEndian.PutUint32(gh[16:20], 65535)
	binary.BigEndian.PutUint32(gh[20:24], LinkTypeEthernet)
	buf.Write(gh)
	ph := make([]byte, 16)
	binary.BigEndian.PutUint32(ph[0:4], 3)   // 3 s
	binary.BigEndian.PutUint32(ph[4:8], 500) // 500 us
	binary.BigEndian.PutUint32(ph[8:12], 4)
	binary.BigEndian.PutUint32(ph[12:16], 4)
	buf.Write(ph)
	buf.Write([]byte{1, 2, 3, 4})

	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	frame, ts, err := rd.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	want := 3*vtime.Second + 500*vtime.Microsecond
	if ts != want || len(frame) != 4 {
		t.Fatalf("ts = %v (want %v), len %d", ts, want, len(frame))
	}
}

func TestPcapTruncatedPacket(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	w.WritePacket(0, make([]byte, 60))
	w.Flush()
	data := buf.Bytes()[:buf.Len()-10]
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rd.ReadPacket(); err == nil {
		t.Fatal("truncated packet read succeeded")
	}
}

// TestPcapTypedErrors pins the reader's error taxonomy: every malformed
// input maps to a typed sentinel callers can branch on with errors.Is,
// and the Source adapter surfaces it through Err() after Next() stops.
func TestPcapTypedErrors(t *testing.T) {
	// Header shorter than the pcap global header: ErrTruncated.
	if _, err := NewReader(bytes.NewReader(make([]byte, 10))); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short header: got %v, want ErrTruncated", err)
	}
	// Wrong magic: ErrBadMagic.
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("zero magic: got %v, want ErrBadMagic", err)
	}
	// Truncated record body: ErrTruncated.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	w.WritePacket(0, make([]byte, 60))
	w.Flush()
	rd, err := NewReader(bytes.NewReader(buf.Bytes()[:buf.Len()-10]))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rd.ReadPacket(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated record: got %v, want ErrTruncated", err)
	}
	// Record header claiming an absurd capture length: a typed error, not
	// a giant allocation — and the Source adapter reports it via Err().
	buf.Reset()
	w, _ = NewWriter(&buf, 0)
	w.WritePacket(0, make([]byte, 60))
	w.Flush()
	data := buf.Bytes()
	binary.LittleEndian.PutUint32(data[24+8:24+12], 1<<30) // record capLen field
	rd, err = NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	src := NewPcapSource(rd)
	if _, _, ok := src.Next(); ok {
		t.Fatal("implausible-length record was returned")
	}
	if err := src.Err(); !errors.Is(err, ErrImplausibleLength) {
		t.Fatalf("implausible length: got %v, want ErrImplausibleLength", err)
	}
}

func TestConstantRateTiming(t *testing.T) {
	src := NewConstantRate(ConstantRateConfig{Packets: 1000})
	var last vtime.Time = -1
	count := 0
	for {
		frame, ts, ok := src.Next()
		if !ok {
			break
		}
		if len(frame) != 60 {
			t.Fatalf("frame len %d", len(frame))
		}
		if ts <= last && count > 0 {
			t.Fatalf("timestamps not increasing at %d", count)
		}
		last = ts
		count++
	}
	if count != 1000 {
		t.Fatalf("emitted %d", count)
	}
	// 1000 packets at 67.2 ns spacing: last ts = 999 * 67.2ns ~= 67.1 us.
	rate := float64(count-1) / last.Seconds()
	if rate < 14.5e6 || rate > 15.2e6 {
		t.Fatalf("rate = %.0f p/s, want ~14.88M", rate)
	}
}

func TestConstantRateFramesDecodeAndMatchFilter(t *testing.T) {
	src := NewConstantRate(ConstantRateConfig{Packets: 50})
	var d packet.Decoded
	for {
		frame, _, ok := src.Next()
		if !ok {
			break
		}
		if err := packet.Decode(frame, &d); err != nil {
			t.Fatal(err)
		}
		// All constant-rate sources draw from 131.225.2.0/24.
		if d.Flow.Src[0] != 131 || d.Flow.Src[1] != 225 || d.Flow.Src[2] != 2 {
			t.Fatalf("src = %v", d.Flow.Src)
		}
	}
}

func TestConstantRateSpreadsAcrossQueues(t *testing.T) {
	const queues = 4
	src := NewConstantRate(ConstantRateConfig{Packets: 400, Queues: queues})
	counts := make([]int, queues)
	var d packet.Decoded
	for {
		frame, _, ok := src.Next()
		if !ok {
			break
		}
		if err := packet.Decode(frame, &d); err != nil {
			t.Fatal(err)
		}
		h := nic.RSSHash(nic.DefaultRSSKey[:], d.Flow)
		counts[int(h%nic.IndirectionEntries)%queues]++
	}
	for q, c := range counts {
		if c != 100 {
			t.Fatalf("queue %d got %d of 400 (want exactly even round-robin): %v", q, c, counts)
		}
	}
}

func TestBorderSourceShape(t *testing.T) {
	const scale = 0.05
	src := NewBorder(BorderConfig{Seed: 7, Scale: scale, Duration: 16 * vtime.Second})
	perQueue := make([]uint64, 6)
	hotLate, hotEarly := 0.0, 0.0
	var d packet.Decoded
	var last vtime.Time = -1
	var n uint64
	for {
		frame, ts, ok := src.Next()
		if !ok {
			break
		}
		if ts < last {
			t.Fatalf("timestamps regressed: %v after %v", ts, last)
		}
		last = ts
		if err := packet.Decode(frame, &d); err != nil {
			t.Fatal(err)
		}
		h := nic.RSSHash(nic.DefaultRSSKey[:], d.Flow)
		q := int(h%nic.IndirectionEntries) % 6
		perQueue[q]++
		if q == 0 {
			// The hot-queue ramp sits at 10/32 of the duration: 5 s here.
			if ts >= 5*vtime.Second {
				hotLate++
			} else {
				hotEarly++
			}
		}
		n++
	}
	if n != src.Emitted() {
		t.Fatalf("Emitted = %d, saw %d", src.Emitted(), n)
	}
	if n == 0 {
		t.Fatal("no packets emitted")
	}
	// Queue 0 must dominate queue 3, which must dominate background.
	if perQueue[0] <= perQueue[3] {
		t.Fatalf("hot queue not dominant: %v", perQueue)
	}
	if perQueue[3] <= perQueue[1] {
		t.Fatalf("warm queue not above background: %v", perQueue)
	}
	// The hot queue's late rate (per second) must far exceed its early rate.
	lateRate := hotLate / 11  // 5..16 s
	earlyRate := hotEarly / 5 // 0..5 s
	if lateRate < 3*earlyRate {
		t.Fatalf("hot queue ramp missing: early %.0f/s late %.0f/s", earlyRate, lateRate)
	}
}

func TestBorderSourceDeterministic(t *testing.T) {
	mk := func() []vtime.Time {
		src := NewBorder(BorderConfig{Seed: 11, Scale: 0.01, Duration: 2 * vtime.Second})
		var out []vtime.Time
		for {
			_, ts, ok := src.Next()
			if !ok {
				return out
			}
			out = append(out, ts)
		}
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("timestamp %d differs", i)
		}
	}
}

func TestDriveDeliversEverything(t *testing.T) {
	sched := vtime.NewScheduler()
	n := nic.New(sched, nic.Config{ID: 0, RxQueues: 1, RingSize: 1024, Promiscuous: true})
	ring := n.Rx(0)
	for i := 0; i < ring.Size(); i++ {
		ring.Refill(i, make([]byte, 2048))
	}
	// Instantly recycle descriptors so nothing drops.
	ring.OnRx(func(i int) { ring.Refill(i, ring.Desc(i).Buf) })

	src := NewConstantRate(ConstantRateConfig{Packets: 5000})
	done := false
	st := Drive(sched, n, src, func() { done = true })
	sched.Run()
	if !done {
		t.Fatal("onDone not called")
	}
	if st.Sent != 5000 {
		t.Fatalf("Sent = %d", st.Sent)
	}
	ns := n.Stats()
	if ns.TotalReceived() != 5000 || ns.TotalWireDrops() != 0 {
		t.Fatalf("nic received %d dropped %d", ns.TotalReceived(), ns.TotalWireDrops())
	}
}

func TestDriveEmptySource(t *testing.T) {
	sched := vtime.NewScheduler()
	n := nic.New(sched, nic.Config{ID: 0, RxQueues: 1, RingSize: 8, Promiscuous: true})
	done := false
	st := Drive(sched, n, NewConstantRate(ConstantRateConfig{Packets: 0}), func() { done = true })
	sched.Run()
	if !done || st.Sent != 0 {
		t.Fatalf("done=%v sent=%d", done, st.Sent)
	}
}

func TestFlowForQueueTargets(t *testing.T) {
	r := vtime.NewRand(3)
	for q := 0; q < 6; q++ {
		for i := 0; i < 20; i++ {
			f := FlowForQueue(r, 6, q, packet.ProtoUDP, FermilabSubnet2, 8)
			h := nic.RSSHash(nic.DefaultRSSKey[:], f)
			if got := int(h%nic.IndirectionEntries) % 6; got != q {
				t.Fatalf("flow for queue %d hashed to %d", q, got)
			}
			if f.Src[0] != 131 || f.Src[1] != 225 || f.Src[2] != 2 {
				t.Fatalf("src %v outside 131.225.2/24", f.Src)
			}
		}
	}
}

func TestPcapSourceAdapter(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	w.WritePacket(100, make([]byte, 60))
	w.WritePacket(200, make([]byte, 61))
	w.Flush()
	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	src := NewPcapSource(rd)
	_, ts1, ok := src.Next()
	if !ok || ts1 != 100 {
		t.Fatalf("first packet ts %v ok %v", ts1, ok)
	}
	frame2, ts2, ok := src.Next()
	if !ok || ts2 != 200 || len(frame2) != 61 {
		t.Fatalf("second packet")
	}
	if _, _, ok := src.Next(); ok {
		t.Fatal("source did not end")
	}
	if src.Err() != nil {
		t.Fatalf("Err = %v", src.Err())
	}
}

func TestBorderTCPSessionsHaveRealFlags(t *testing.T) {
	src := NewBorder(BorderConfig{Seed: 3, Scale: 0.05, Duration: 2 * vtime.Second})
	var syn, fin, data, udp int
	var d packet.Decoded
	seqs := map[packet.FlowKey]uint32{}
	for {
		frame, _, ok := src.Next()
		if !ok {
			break
		}
		if err := packet.Decode(frame, &d); err != nil {
			t.Fatal(err)
		}
		switch d.Flow.Proto {
		case packet.ProtoUDP:
			udp++
		case packet.ProtoTCP:
			switch {
			case d.TCPFlags&packet.TCPSyn != 0:
				syn++
				delete(seqs, d.Flow) // new session: sequence space rebased
			case d.TCPFlags&packet.TCPFin != 0:
				fin++
				delete(seqs, d.Flow)
			default:
				data++
				// Sequence numbers advance monotonically within a session.
				seq := binary.BigEndian.Uint32(frame[d.L4Offset+4 : d.L4Offset+8])
				if prev, ok := seqs[d.Flow]; ok && seq < prev && prev-seq < 1<<30 {
					t.Fatalf("sequence went backward for %v: %d after %d", d.Flow, seq, prev)
				}
				seqs[d.Flow] = seq
			}
		}
	}
	if syn == 0 || data == 0 || udp == 0 {
		t.Fatalf("traffic mix missing kinds: syn %d fin %d data %d udp %d", syn, fin, data, udp)
	}
	if fin == 0 {
		t.Log("no FIN observed (short trace); acceptable but unusual")
	}
	// Each flow opens with exactly one SYN per session: SYNs are roughly
	// bounded by sessions (flows + reopen events), far below data count.
	if syn > data/4+288 {
		t.Fatalf("too many SYNs: %d of %d data segments", syn, data)
	}
}
