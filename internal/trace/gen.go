package trace

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/nic"
	"repro/internal/packet"
	"repro/internal/vtime"
)

// FermilabNet is the 131.225.0.0/16 source network the paper's trace and
// BPF filter ("131.225.2 and udp") refer to.
const FermilabNet = 0x83E10000

// FermilabSubnet2 is 131.225.2.0/24, the exact prefix the paper's filter
// matches.
const FermilabSubnet2 = 0x83E10200

// ConstantRateConfig configures a fixed-rate generator, the paper's
// "traffic generator transmits P 64-Byte packets at the wire rate".
type ConstantRateConfig struct {
	// Packets is P, the number of frames to send.
	Packets uint64
	// FrameLen is the frame length excluding FCS; 60 here is what the
	// paper calls a "64-byte packet". Default 60.
	FrameLen int
	// LineRateBps sets the wire speed packets are paced at. Default 10G.
	LineRateBps float64
	// Queues spreads flows evenly over the receive queues of an n-queue
	// RSS NIC; 1 directs everything at queue 0. Default 1.
	Queues int
	// SingleQueue aims every flow at TargetQueue of a Queues-queue NIC
	// instead of spreading, to construct worst-case long-term imbalance
	// ("a single core flooded with all the network traffic").
	SingleQueue bool
	TargetQueue int
	// FlowsPerQueue is the number of distinct flows aimed at each queue.
	// Default 16.
	FlowsPerQueue int
	// Proto is the transport protocol. Default UDP.
	Proto uint8
	// Start is the virtual time of the first frame.
	Start vtime.Time
	// Seed seeds flow generation.
	Seed uint64
}

// ConstantRateSource emits back-to-back frames at wire speed.
type ConstantRateSource struct {
	frames   [][]byte
	interval vtime.Time
	next     vtime.Time
	sent     uint64
	total    uint64
	idx      int
}

// NewConstantRate builds the generator; frames are synthesized once and
// replayed round-robin over the flow set.
func NewConstantRate(cfg ConstantRateConfig) *ConstantRateSource {
	if cfg.FrameLen == 0 {
		cfg.FrameLen = 60
	}
	if cfg.FrameLen < packet.MinFrameLen || cfg.FrameLen > packet.MaxFrameLen {
		panic(fmt.Sprintf("trace: frame length %d out of range", cfg.FrameLen))
	}
	if cfg.LineRateBps == 0 {
		cfg.LineRateBps = nic.LineRate10G
	}
	if cfg.Queues <= 0 {
		cfg.Queues = 1
	}
	if cfg.FlowsPerQueue <= 0 {
		cfg.FlowsPerQueue = 16
	}
	if cfg.Proto == 0 {
		cfg.Proto = packet.ProtoUDP
	}
	r := vtime.NewRand(cfg.Seed + 1)
	b := packet.NewBuilder()
	payload := cfg.FrameLen - packet.EthernetHeaderLen - packet.IPv4HeaderLen - packet.UDPHeaderLen
	if cfg.Proto == packet.ProtoTCP {
		payload = cfg.FrameLen - packet.EthernetHeaderLen - packet.IPv4HeaderLen - packet.TCPHeaderLen
	}
	if payload < 0 {
		payload = 0
	}
	s := &ConstantRateSource{
		interval: nic.WireInterval(cfg.LineRateBps, cfg.FrameLen),
		next:     cfg.Start,
		total:    cfg.Packets,
	}
	// Interleave flows across queues (q0f0, q1f0, ..., q0f1, ...) so that
	// round-robin emission loads every queue evenly even when the packet
	// count is not a multiple of the flow count.
	for i := 0; i < cfg.FlowsPerQueue; i++ {
		for q := 0; q < cfg.Queues; q++ {
			target := q
			if cfg.SingleQueue {
				target = cfg.TargetQueue
			}
			flow := FlowForQueue(r, cfg.Queues, target, cfg.Proto, FermilabSubnet2, 8)
			buf := make([]byte, packet.MaxFrameLen)
			frame := b.Build(buf, flow, make([]byte, payload))
			if len(frame) != cfg.FrameLen {
				panic(fmt.Sprintf("trace: built %d-byte frame, want %d", len(frame), cfg.FrameLen))
			}
			s.frames = append(s.frames, frame)
		}
	}
	return s
}

// Next implements Source.
func (s *ConstantRateSource) Next() ([]byte, vtime.Time, bool) {
	if s.sent >= s.total {
		return nil, 0, false
	}
	frame := s.frames[s.idx]
	s.idx = (s.idx + 1) % len(s.frames)
	ts := s.next
	s.next += s.interval
	s.sent++
	return frame, ts, true
}

// BorderConfig configures the synthetic Fermilab border-router workload.
// The defaults reproduce the traffic shape of the paper's Figure 3: with
// six RSS queues, queue 0 sustains roughly 80 kp/s from t=10 s on (a
// long-term overload for a 38.8 kp/s processing thread), queue 3 carries
// roughly 20 kp/s with short-term bursts of hundreds of packets per 10 ms
// bin, and the remaining queues see light background traffic.
type BorderConfig struct {
	// Queues is the RSS queue count the load is shaped for. Default 6.
	Queues int
	// Duration of the trace. Default 32 s.
	Duration vtime.Time
	// Scale multiplies every packet rate; use < 1 for fast tests.
	// Default 1.0 (about 4.5 M packets).
	Scale float64
	// HotQueue is the long-term-overloaded queue (paper: queue 0).
	HotQueue int
	// WarmQueue is the bursty moderate queue (paper: queue 3). Set equal
	// to HotQueue to disable.
	WarmQueue int
	// Seed makes the workload reproducible.
	Seed uint64
}

func (c *BorderConfig) setDefaults() {
	if c.Queues <= 0 {
		c.Queues = 6
	}
	if c.Duration == 0 {
		c.Duration = 32 * vtime.Second
	}
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	if c.WarmQueue == 0 && c.HotQueue == 0 {
		c.WarmQueue = 3
	}
	if c.HotQueue >= c.Queues {
		c.HotQueue = 0
	}
	if c.WarmQueue >= c.Queues {
		c.WarmQueue = c.Queues - 1
	}
}

// binLen is the profiling bin the paper uses (10 ms).
const binLen = 10 * vtime.Millisecond

// borderFlow is one synthetic flow; TCP flows carry session state so the
// emitted segments have realistic flags and sequence numbers.
type borderFlow struct {
	flow packet.FlowKey
	seq  uint32
	open bool
}

// BorderSource generates the border-router workload bin by bin.
type BorderSource struct {
	cfg   BorderConfig
	r     *vtime.Rand
	b     *packet.Builder
	flows [][]borderFlow // per queue

	bin     int
	bins    int
	pending []pendingPkt
	pi      int
	scratch []byte
	zeros   []byte       // shared all-zero payload
	starts  []vtime.Time // per-bin cluster scratch, reused across bins
	emitted uint64
}

type pendingPkt struct {
	ts    vtime.Time
	queue int
	flow  int
	size  int
}

// NewBorder builds the workload generator.
func NewBorder(cfg BorderConfig) *BorderSource {
	cfg.setDefaults()
	s := &BorderSource{
		cfg:     cfg,
		r:       vtime.NewRand(cfg.Seed + 2),
		b:       packet.NewBuilder(),
		bins:    int(cfg.Duration / binLen),
		scratch: make([]byte, packet.MaxFrameLen),
		zeros:   make([]byte, packet.MaxFrameLen),
	}
	// Flow pools: a mix of TCP (dominant, as in the paper's observation
	// that TCP dominates) and UDP, with half the sources inside
	// 131.225.2.0/24 so the paper's filter has work to do.
	const flowsPerQueue = 48
	for q := 0; q < cfg.Queues; q++ {
		var pool []borderFlow
		for i := 0; i < flowsPerQueue; i++ {
			proto := packet.ProtoTCP
			if i%3 == 2 {
				proto = packet.ProtoUDP
			}
			srcNet := uint32(FermilabNet)
			hostBits := 16
			if i%2 == 0 {
				srcNet = FermilabSubnet2
				hostBits = 8
			}
			pool = append(pool, borderFlow{flow: FlowForQueue(s.r, cfg.Queues, q, proto, srcNet, hostBits)})
		}
		s.flows = append(s.flows, pool)
	}
	return s
}

// rateAt returns queue q's base rate in packets/second at time t,
// following the Figure 3 profile. The profile breakpoints (the hot
// queue's ramp at t=10 s of 32 s, the warm queue's start at t=1 s) scale
// with the configured duration, so a time-compressed trace keeps the
// paper's rates — and therefore its overload dynamics — intact.
func (s *BorderSource) rateAt(q int, t vtime.Time) float64 {
	hotRamp := s.cfg.Duration * 10 / 32
	warmStart := s.cfg.Duration * 1 / 32
	switch q {
	case s.cfg.HotQueue:
		if t >= hotRamp {
			return 80000
		}
		return 15000
	case s.cfg.WarmQueue:
		if t >= warmStart {
			return 20000
		}
		return 2000
	default:
		return 8000
	}
}

// poisson draws a Poisson variate with mean lambda (normal approximation
// for large means).
func poisson(r *vtime.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(lambda + math.Sqrt(lambda)*r.NormFloat64() + 0.5)
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// frameSize draws from a trimodal size mix (IMIX-like).
func (s *BorderSource) frameSize() int {
	switch s.r.Intn(4) {
	case 0, 1:
		return 60
	case 2:
		return 576
	default:
		return 1514
	}
}

// synthesize fills s.pending with the packets of bin b, time-sorted.
func (s *BorderSource) synthesize(b int) {
	s.pending = s.pending[:0]
	t0 := vtime.Time(b) * binLen
	for q := 0; q < s.cfg.Queues; q++ {
		lambda := s.rateAt(q, t0) * binLen.Seconds() * s.cfg.Scale
		count := poisson(s.r, lambda)
		// Short-term bursts: occasionally a queue takes a dense packet
		// train within one bin, as Figure 3's 2,000+ packet spikes show.
		burstProb, burstMin := 0.01, 300.0
		switch q {
		case s.cfg.WarmQueue:
			burstProb, burstMin = 0.06, 700.0
		case s.cfg.HotQueue:
			// Figure 3 shows the hot queue spiking past 2,000 packets per
			// bin on top of its sustained load.
			burstProb, burstMin = 0.08, 1000.0
		}
		if s.r.Float64() < burstProb {
			burst := int(s.r.Pareto(1.2, burstMin) * s.cfg.Scale)
			if max := int(2400 * s.cfg.Scale); burst > max {
				burst = max
			}
			count += burst
		}
		// Cluster the packets: pick a handful of cluster start times and
		// pack packets at near-wire spacing inside each cluster, which
		// gives the bursty sub-bin structure real traffic has.
		nClusters := 1 + count/64
		if cap(s.starts) < nClusters {
			s.starts = make([]vtime.Time, nClusters)
		}
		starts := s.starts[:nClusters]
		for c := range starts {
			starts[c] = t0 + vtime.Time(s.r.Intn(int(binLen)*9/10))
		}
		for i := 0; i < count; i++ {
			start := starts[s.r.Intn(nClusters)]
			off := vtime.Time(i%64) * 70 * vtime.Nanosecond
			ts := start + off
			if ts >= t0+binLen {
				ts = t0 + binLen - 1
			}
			s.pending = append(s.pending, pendingPkt{
				ts:    ts,
				queue: q,
				flow:  s.pickFlow(q),
				size:  s.frameSize(),
			})
		}
	}
	sort.Slice(s.pending, func(i, j int) bool { return s.pending[i].ts < s.pending[j].ts })
	s.pi = 0
}

// pickFlow skews selection toward the head of the pool (elephant flows).
func (s *BorderSource) pickFlow(q int) int {
	u := s.r.Float64()
	return int(u * u * float64(len(s.flows[q])))
}

// Next implements Source.
func (s *BorderSource) Next() ([]byte, vtime.Time, bool) {
	for s.pi >= len(s.pending) {
		if s.bin >= s.bins {
			return nil, 0, false
		}
		s.synthesize(s.bin)
		s.bin++
	}
	p := s.pending[s.pi]
	s.pi++
	fl := &s.flows[p.queue][p.flow]
	hdr := packet.EthernetHeaderLen + packet.IPv4HeaderLen + packet.UDPHeaderLen
	if fl.flow.Proto == packet.ProtoTCP {
		hdr = packet.EthernetHeaderLen + packet.IPv4HeaderLen + packet.TCPHeaderLen
	}
	payload := p.size - hdr
	if payload < 0 {
		payload = 0
	}
	var frame []byte
	if fl.flow.Proto == packet.ProtoTCP {
		// Stateful session: SYN on open, PSH|ACK data with advancing
		// sequence numbers, an occasional FIN closing the session (the
		// next packet of the flow reopens it with a fresh SYN).
		switch {
		case !fl.open:
			fl.open = true
			fl.seq = s.r.Uint32()
			frame = s.b.BuildTCPSeg(s.scratch, fl.flow, fl.seq, packet.TCPSyn, nil)
			fl.seq++
		case s.r.Intn(512) == 0:
			frame = s.b.BuildTCPSeg(s.scratch, fl.flow, fl.seq, packet.TCPFin|packet.TCPAck, nil)
			fl.open = false
		default:
			frame = s.b.BuildTCPSeg(s.scratch, fl.flow, fl.seq,
				packet.TCPPsh|packet.TCPAck, s.zeros[:payload])
			fl.seq += uint32(payload)
		}
	} else {
		frame = s.b.Build(s.scratch, fl.flow, s.zeros[:payload])
	}
	s.emitted++
	return frame, p.ts, true
}

// Emitted returns the number of packets generated so far.
func (s *BorderSource) Emitted() uint64 { return s.emitted }
