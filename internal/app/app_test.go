package app

import (
	"testing"

	"repro/internal/engines"
	"repro/internal/nic"
	"repro/internal/packet"
	"repro/internal/trace"
	"repro/internal/vtime"
)

func buildFrame(tb testing.TB, src packet.IPv4, proto uint8) []byte {
	tb.Helper()
	b := packet.NewBuilder()
	buf := make([]byte, packet.MaxFrameLen)
	frame := b.Build(buf, packet.FlowKey{
		Src: src, Dst: packet.IPv4{10, 0, 0, 1},
		SrcPort: 1000, DstPort: 2000, Proto: proto,
	}, nil)
	out := make([]byte, len(frame))
	copy(out, frame)
	return out
}

func TestPktHandlerCostScalesWithX(t *testing.T) {
	costs := engines.DefaultCosts()
	h0 := NewPktHandler(0, costs, 1)
	h300 := NewPktHandler(300, costs, 1)
	frame := buildFrame(t, packet.IPv4{131, 225, 2, 1}, packet.ProtoUDP)
	if h0.Cost(0, frame) >= h300.Cost(0, frame) {
		t.Fatal("x=0 cost not below x=300 cost")
	}
	rate := h300.Rate()
	if rate < 38000 || rate > 40000 {
		t.Fatalf("x=300 rate = %.0f", rate)
	}
}

func TestPktHandlerFilterCounts(t *testing.T) {
	h := NewPktHandler(0, engines.DefaultCosts(), 2)
	match := buildFrame(t, packet.IPv4{131, 225, 2, 1}, packet.ProtoUDP)
	miss := buildFrame(t, packet.IPv4{10, 1, 1, 1}, packet.ProtoUDP)
	tcp := buildFrame(t, packet.IPv4{131, 225, 2, 1}, packet.ProtoTCP)
	done := func() {}
	h.Handle(0, match, 0, done)
	h.Handle(1, miss, 0, done)
	h.Handle(0, tcp, 0, done)
	if h.Processed != 3 || h.Matched != 1 {
		t.Fatalf("processed %d matched %d", h.Processed, h.Matched)
	}
	if h.PerQueue[0] != 2 || h.PerQueue[1] != 1 {
		t.Fatalf("per-queue %v", h.PerQueue)
	}
}

func TestPktHandlerBadFilter(t *testing.T) {
	if _, err := NewPktHandlerFilter(0, engines.DefaultCosts(), 1, "no such primitive"); err == nil {
		t.Fatal("bad filter accepted")
	}
}

func TestPktHandlerForwarding(t *testing.T) {
	sched := vtime.NewScheduler()
	n := nic.New(sched, nic.Config{ID: 1, RxQueues: 1, RingSize: 64, TxQueues: 1, TxRingSize: 8, Promiscuous: true})
	h := NewPktHandler(0, engines.DefaultCosts(), 1)
	h.ForwardTx = func(q int) *nic.TxRing { return n.Tx(0) }
	frame := buildFrame(t, packet.IPv4{131, 225, 2, 1}, packet.ProtoUDP)
	released := 0
	for i := 0; i < 10; i++ {
		h.Handle(0, frame, 0, func() { released++ })
	}
	// 8 fit the TX ring (done deferred), 2 overflow (done immediate).
	if h.TxDropped != 2 || released != 2 {
		t.Fatalf("txDropped %d released %d", h.TxDropped, released)
	}
	sched.Run()
	if released != 10 {
		t.Fatalf("after drain released = %d", released)
	}
	if n.Tx(0).Stats().Sent != 8 {
		t.Fatalf("sent %d", n.Tx(0).Stats().Sent)
	}
}

func TestQueueProfilerBins(t *testing.T) {
	p := NewQueueProfiler(2)
	done := func() {}
	p.Handle(0, nil, 5*vtime.Millisecond, done)  // bin 0
	p.Handle(0, nil, 15*vtime.Millisecond, done) // bin 1
	p.Handle(0, nil, 16*vtime.Millisecond, done) // bin 1
	p.Handle(1, nil, 25*vtime.Millisecond, done) // bin 2
	if got := p.Series(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("series 0 = %v", got)
	}
	if p.Total(0) != 3 || p.Total(1) != 1 {
		t.Fatalf("totals %d %d", p.Total(0), p.Total(1))
	}
	if p.Peak(0) != 2 {
		t.Fatalf("peak = %d", p.Peak(0))
	}
}

func TestQueueProfilerObservesImbalance(t *testing.T) {
	// End-to-end: border traffic through DNA into the profiler shows the
	// hot queue dominating, as in Figure 3 / Experiment 1.
	sched := vtime.NewScheduler()
	n := nic.New(sched, nic.Config{ID: 0, RxQueues: 6, RingSize: 1024, Promiscuous: true})
	p := NewQueueProfiler(6)
	engines.NewDNA(sched, n, engines.DefaultCosts(), p)
	src := trace.NewBorder(trace.BorderConfig{Seed: 5, Scale: 0.02, Duration: 12 * vtime.Second})
	trace.Drive(sched, n, src, nil)
	sched.Run()
	if p.Total(0) <= p.Total(3) || p.Total(3) <= p.Total(1) {
		t.Fatalf("expected hot > warm > background: %d %d %d",
			p.Total(0), p.Total(3), p.Total(1))
	}
}
