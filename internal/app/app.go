// Package app implements the paper's experiment applications (§2.2) as
// engine-agnostic packet consumers: pkt_handler (capture, apply a BPF
// filter x times, optionally forward), queue_profiler (count packets per
// 10 ms bin per queue), and their multi-threaded composition. They plug
// into any capture engine through the engines.Handler interface.
package app

import (
	"fmt"

	"repro/internal/bpf"
	"repro/internal/engines"
	"repro/internal/nic"
	"repro/internal/stats"
	"repro/internal/vtime"
)

// PktHandler is the paper's pkt_handler: for every captured packet it
// applies a BPF filter X times before discarding (or forwarding) it. The
// filter really executes (once — the remaining X-1 applications are
// charged in virtual time, since they are pure repetition by
// construction).
type PktHandler struct {
	// X is the number of filter applications per packet; 0 models no
	// processing load, 300 models a heavy application like snort.
	X int
	// Costs prices the work.
	Costs engines.CostModel
	// ForwardTx, when non-nil, returns the transmit ring on which queue
	// q's processed packets are forwarded (the Figure 13 middlebox).
	ForwardTx func(q int) *nic.TxRing
	// Clock, when non-nil, enables delivery-latency accounting: the
	// difference between a packet's hardware arrival timestamp and the
	// moment the application processes it.
	Clock *vtime.Scheduler

	flt *bpf.FlatProgram

	// Counters.
	Processed uint64
	Matched   uint64
	Bytes     uint64
	TxDropped uint64 // forwarded packets rejected by a full TX ring
	PerQueue  []uint64
	// DelaySum accumulates capture-to-processing latency when Clock is
	// set; DelaySum / Processed is the mean delivery delay. DelayHist
	// holds the full distribution for percentile reporting.
	DelaySum  vtime.Time
	MaxDelay  vtime.Time
	DelayHist stats.Histogram

	// OnProcessed, when non-nil, observes the running Processed total
	// after every handled packet. Fleet runs use it to emit periodic
	// progress milestones onto the cross-domain aggregation bus; it must
	// be deterministic and cheap (it sits on the per-packet path).
	OnProcessed func(total uint64)
}

// NewPktHandler builds the handler with the paper's filter
// ("131.225.2 and udp") compiled for real; x is the per-packet filter
// application count.
func NewPktHandler(x int, costs engines.CostModel, queues int) *PktHandler {
	h, err := NewPktHandlerFilter(x, costs, queues, "131.225.2 and udp")
	if err != nil {
		panic(err) // the constant filter always compiles
	}
	return h
}

// NewPktHandlerFilter builds a pkt_handler with a custom filter
// expression.
func NewPktHandlerFilter(x int, costs engines.CostModel, queues int, filter string) (*PktHandler, error) {
	flt, err := bpf.CompileFlat(filter, 65535)
	if err != nil {
		return nil, fmt.Errorf("app: compiling filter %q: %w", filter, err)
	}
	return &PktHandler{X: x, Costs: costs, flt: flt, PerQueue: make([]uint64, queues)}, nil
}

// Cost implements engines.Handler.
func (h *PktHandler) Cost(q int, data []byte) vtime.Time {
	c := h.Costs.HandlerCost(h.X)
	if h.ForwardTx != nil {
		c += h.Costs.TxAttach
	}
	return c
}

// Handle implements engines.Handler.
func (h *PktHandler) Handle(q int, data []byte, ts vtime.Time, done func()) {
	h.Processed++
	h.Bytes += uint64(len(data))
	if h.Clock != nil {
		d := h.Clock.Now() - ts
		h.DelaySum += d
		if d > h.MaxDelay {
			h.MaxDelay = d
		}
		h.DelayHist.Record(int64(d))
	}
	if q >= 0 && q < len(h.PerQueue) {
		h.PerQueue[q]++
	}
	if h.flt.Match(data) {
		h.Matched++
	}
	if h.OnProcessed != nil {
		h.OnProcessed(h.Processed)
	}
	if h.ForwardTx != nil {
		tx := h.ForwardTx(q)
		if tx != nil && tx.Attach(nic.TxPacket{Data: data, Release: done}) {
			return // done runs when the packet leaves the wire
		}
		h.TxDropped++
	}
	done()
}

// Rate returns the handler's nominal processing rate in packets/second.
func (h *PktHandler) Rate() float64 {
	return 1 / h.Costs.HandlerCost(h.X).Seconds()
}

// QueueProfiler is the paper's queue_profiler: a per-queue time series of
// packet counts in 10 ms bins, used to visualize load imbalance
// (Figure 3). Profiling itself is modeled as free (the real tool does
// nothing but count).
type QueueProfiler struct {
	BinLen vtime.Time
	bins   [][]uint64 // [queue][bin]
}

// NewQueueProfiler profiles the given number of queues in 10 ms bins.
func NewQueueProfiler(queues int) *QueueProfiler {
	p := &QueueProfiler{BinLen: 10 * vtime.Millisecond}
	p.bins = make([][]uint64, queues)
	return p
}

// Cost implements engines.Handler.
func (p *QueueProfiler) Cost(int, []byte) vtime.Time { return vtime.Nanosecond }

// Handle implements engines.Handler.
func (p *QueueProfiler) Handle(q int, data []byte, ts vtime.Time, done func()) {
	bin := int(ts / p.BinLen)
	for len(p.bins[q]) <= bin {
		p.bins[q] = append(p.bins[q], 0)
	}
	p.bins[q][bin]++
	done()
}

// Series returns queue q's packets-per-bin time series.
func (p *QueueProfiler) Series(q int) []uint64 { return p.bins[q] }

// Total returns the packets counted on queue q.
func (p *QueueProfiler) Total(q int) uint64 {
	var n uint64
	for _, v := range p.bins[q] {
		n += v
	}
	return n
}

// Peak returns the largest bin observed on queue q.
func (p *QueueProfiler) Peak(q int) uint64 {
	var m uint64
	for _, v := range p.bins[q] {
		if v > m {
			m = v
		}
	}
	return m
}
