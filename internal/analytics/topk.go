package analytics

// SpaceSaving tracks the k heaviest keys with the Metwally-Agrawal-
// El Abbadi space-saving algorithm: a fixed slot array plus an index
// map. A new key arriving at a full table replaces the current minimum
// and inherits its count as the new entry's error bound, so a reported
// count overstates the truth by at most the entry's Err. Eviction
// scans the slot array (deterministic slot order, first minimum wins)
// — never the map, whose iteration order would leak into reports.
type SpaceSaving[K comparable] struct {
	idx          map[K]int32
	slots        []ssEntry[K]
	used         int
	replacements uint64
}

type ssEntry[K comparable] struct {
	key   K
	count uint64
	err   uint64
}

// NewSpaceSaving builds a tracker with capacity k (minimum 1).
func NewSpaceSaving[K comparable](k int) *SpaceSaving[K] {
	if k < 1 {
		k = 1
	}
	return &SpaceSaving[K]{idx: make(map[K]int32, k), slots: make([]ssEntry[K], k)}
}

// Add counts n occurrences of key. On steady state (key already
// tracked, or the table not yet full after warm-up) this allocates
// nothing; replacing a minimum reuses its slot and map bucket.
//
//wirecap:hotpath
func (s *SpaceSaving[K]) Add(key K, n uint64) {
	if i, ok := s.idx[key]; ok {
		s.slots[i].count += n
		return
	}
	if s.used < len(s.slots) {
		s.slots[s.used] = ssEntry[K]{key: key, count: n}
		s.idx[key] = int32(s.used)
		s.used++
		return
	}
	mi := 0
	for i := 1; i < len(s.slots); i++ {
		if s.slots[i].count < s.slots[mi].count {
			mi = i
		}
	}
	e := &s.slots[mi]
	delete(s.idx, e.key)
	e.err = e.count
	e.key = key
	e.count += n
	s.idx[key] = int32(mi)
	s.replacements++
}

// Len returns the number of tracked keys.
func (s *SpaceSaving[K]) Len() int { return s.used }

// Replacements returns how many minimum-evictions have occurred.
func (s *SpaceSaving[K]) Replacements() uint64 { return s.replacements }

// Each calls fn for every tracked entry in slot order (deterministic:
// insertion order until the table fills, stable thereafter).
func (s *SpaceSaving[K]) Each(fn func(key K, count, err uint64)) {
	for i := 0; i < s.used; i++ {
		fn(s.slots[i].key, s.slots[i].count, s.slots[i].err)
	}
}
