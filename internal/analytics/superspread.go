package analytics

import (
	"math"

	"repro/internal/packet"
)

// Superspreader detection: a source talking to many distinct
// destinations (scan, worm, or DDoS fan-out). SpreadTracker keeps a
// bounded set of candidate sources, each with a fixed linear-counting
// bitmap of destination hashes. The hot path only sets bits and bumps
// a popcount; the distinct-destination *estimate* (the standard linear
// counting formula -m·ln(z/m)) is computed at report time. When the
// table is full, the source with the fewest observed destination bits
// is replaced, slot-scan order, and the new tenant inherits the old
// popcount as its error bound — the space-saving discipline applied to
// distinct counting.
const (
	spreadWords = 8
	spreadBits  = spreadWords * 64 // linear-counting window per source
)

type spreadEntry struct {
	src  packet.IPv4
	bits [spreadWords]uint64
	set  uint32 // popcount cache, maintained on the hot path
	base uint32 // inherited bound from the slot's previous tenant
}

// SpreadTracker tracks candidate superspreaders.
type SpreadTracker struct {
	idx          map[packet.IPv4]int32
	slots        []spreadEntry
	used         int
	replacements uint64
}

// NewSpreadTracker builds a tracker for up to k candidate sources.
func NewSpreadTracker(k int) *SpreadTracker {
	if k < 1 {
		k = 1
	}
	return &SpreadTracker{idx: make(map[packet.IPv4]int32, k), slots: make([]spreadEntry, k)}
}

// Add records that src sent a packet to dst.
//
//wirecap:hotpath
func (t *SpreadTracker) Add(src, dst packet.IPv4) {
	i, ok := t.idx[src]
	if !ok {
		if t.used < len(t.slots) {
			i = int32(t.used)
			t.slots[i] = spreadEntry{src: src}
			t.idx[src] = i
			t.used++
		} else {
			mi := int32(0)
			for j := int32(1); j < int32(len(t.slots)); j++ {
				if t.slots[j].set < t.slots[mi].set {
					mi = j
				}
			}
			e := &t.slots[mi]
			delete(t.idx, e.src)
			inherited := e.set
			*e = spreadEntry{src: src, base: inherited}
			t.idx[src] = mi
			t.replacements++
			i = mi
		}
	}
	h := hashBytes4(fnvOffset, dst[0], dst[1], dst[2], dst[3])
	bit := uint32(h) % spreadBits
	e := &t.slots[i]
	w, m := bit>>6, uint64(1)<<(bit&63)
	if e.bits[w]&m == 0 {
		e.bits[w] |= m
		e.set++
	}
}

// Len returns the number of tracked sources.
func (t *SpreadTracker) Len() int { return t.used }

// Replacements returns how many slot evictions have occurred.
func (t *SpreadTracker) Replacements() uint64 { return t.replacements }

// linearCount converts a popcount over the spreadBits window into a
// distinct-count estimate: m·ln(m/z) with z empty bits. Saturates at
// the window size; IEEE 754 makes the rounding deterministic.
func linearCount(set uint32) uint32 {
	if set == 0 {
		return 0
	}
	if set >= spreadBits {
		return spreadBits
	}
	m := float64(spreadBits)
	return uint32(math.Round(-m * math.Log((m-float64(set))/m)))
}

// Each calls fn for every tracked source in slot order with its
// distinct-destination estimate and error bound.
func (t *SpreadTracker) Each(fn func(src packet.IPv4, estimate, bound uint32)) {
	for i := 0; i < t.used; i++ {
		e := &t.slots[i]
		fn(e.src, linearCount(e.set)+e.base, e.base)
	}
}
