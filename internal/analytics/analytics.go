// Package analytics is the streaming-analysis stage of the consumer
// path: sketch-based traffic summaries that hold line rate because
// every update is allocation-free and bounded-state. It implements the
// toolbox of "Algorithms and Data Structures to Accelerate Network
// Analysis" (PAPERS.md): a count-min sketch for per-flow frequency
// estimates, space-saving heavy hitters, superspreader (distinct
// destination) detection via per-source linear-counting bitmaps, and a
// bounded per-flow table with deterministic eviction.
//
// Determinism is load-bearing: reports feed bench RunReport digests
// that cmd/ci-gate compares exactly, so every structure evicts by slot
// scan (never map iteration) and every report is sorted by count and
// key. Identical update sequences produce byte-identical reports on
// any domain layout.
package analytics

// fnvOffset/fnvPrime are the FNV-1a constants used by the inline key
// hashes below (hash/fnv allocates a hasher; the hot path cannot).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// hashBytes4 is FNV-1a over 4 bytes with a seed, for address-level
// hashing (superspreader destination bits).
//
//wirecap:hotpath
func hashBytes4(seed uint64, b0, b1, b2, b3 byte) uint64 {
	h := seed
	h = (h ^ uint64(b0)) * fnvPrime
	h = (h ^ uint64(b1)) * fnvPrime
	h = (h ^ uint64(b2)) * fnvPrime
	h = (h ^ uint64(b3)) * fnvPrime
	return h
}
