package analytics

import (
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/vtime"
)

// Config sizes the stage. Zero values take the defaults below — a
// working set small enough to stay cache-resident at line rate.
type Config struct {
	// SketchWidth/SketchDepth size the count-min sketch (defaults
	// 2048x4: overestimates beyond 2N/2048 with probability <= 1/16).
	SketchWidth int
	SketchDepth int
	// TopK is the heavy-hitter table capacity (default 32).
	TopK int
	// Superspreaders is the candidate-source table capacity (default 32).
	Superspreaders int
	// FlowCapacity bounds the exact per-flow table (default 1024).
	FlowCapacity int
	// Engine labels the obs profiler spans (default "analytics").
	Engine string
	// UpdateCost is the virtual cost recorded per update span (default
	// 120ns — the modeled budget of four table probes; profiling only,
	// the caller's Cost() decides what the scheduler charges).
	UpdateCost vtime.Time
}

// DefaultUpdateCost is the per-packet span cost recorded when
// Config.UpdateCost is zero.
const DefaultUpdateCost = 120 * vtime.Nanosecond

// Stage is the streaming-analytics consumer stage: one Update per
// delivered packet feeds the sketch, the heavy-hitter and
// superspreader trackers, and the flow table. Steady-state updates
// allocate nothing (cmd/ci-gate pins this budget at 0). A Stage is
// single-consumer, like the engine queue that feeds it.
type Stage struct {
	cm     *CMSketch
	hh     *SpaceSaving[packet.FlowKey]
	spread *SpreadTracker
	flows  *FlowTable

	trace  *obs.Recorder
	engine string
	cost   vtime.Time

	updates     uint64
	undecodable uint64
	bytes       uint64
}

// New builds a Stage. reg (optional) gains analytics_* series sampled
// from the stage's own counters at snapshot time; rec (optional, nil =
// no-op) receives an "analytics" profiler span per update.
func New(cfg Config, reg *metrics.Registry, rec *obs.Recorder) *Stage {
	if cfg.SketchWidth == 0 {
		cfg.SketchWidth = 2048
	}
	if cfg.SketchDepth == 0 {
		cfg.SketchDepth = 4
	}
	if cfg.TopK == 0 {
		cfg.TopK = 32
	}
	if cfg.Superspreaders == 0 {
		cfg.Superspreaders = 32
	}
	if cfg.FlowCapacity == 0 {
		cfg.FlowCapacity = 1024
	}
	if cfg.Engine == "" {
		cfg.Engine = "analytics"
	}
	if cfg.UpdateCost == 0 {
		cfg.UpdateCost = DefaultUpdateCost
	}
	s := &Stage{
		cm:     NewCMSketch(cfg.SketchWidth, cfg.SketchDepth),
		hh:     NewSpaceSaving[packet.FlowKey](cfg.TopK),
		spread: NewSpreadTracker(cfg.Superspreaders),
		flows:  NewFlowTable(cfg.FlowCapacity),
		trace:  rec,
		engine: cfg.Engine,
		cost:   cfg.UpdateCost,
	}
	if reg != nil {
		reg.CounterFunc("analytics_updates_total", func() uint64 { return s.updates })
		reg.CounterFunc("analytics_bytes_total", func() uint64 { return s.bytes })
		reg.CounterFunc("analytics_undecodable_total", func() uint64 { return s.undecodable })
		reg.CounterFunc("analytics_flow_evictions_total", func() uint64 { return s.flows.Evictions() })
		reg.CounterFunc("analytics_hh_replacements_total", func() uint64 { return s.hh.Replacements() })
		reg.CounterFunc("analytics_spread_replacements_total", func() uint64 { return s.spread.Replacements() })
		reg.GaugeFunc("analytics_flows_resident", func() int64 { return int64(s.flows.Len()) })
	}
	return s
}

// Update feeds one decoded packet into every structure. queue tags the
// profiler span; ts is the packet's delivery time (virtual).
//
//wirecap:hotpath
func (s *Stage) Update(queue int, d *packet.Decoded, ts vtime.Time) {
	s.updates++
	size := len(d.Frame)
	s.bytes += uint64(size)
	flow := d.Flow
	h := flowHash(&flow)
	s.cm.Add(h, 1)
	s.hh.Add(flow, uint64(size))
	s.spread.Add(flow.Src, flow.Dst)
	s.flows.Update(flow, size, d.TCPFlags, ts)
	s.trace.StageCost(s.engine, queue, "analytics", s.cost)
}

// NoteUndecodable counts a delivered frame the decoder rejected; the
// stage sees no update for it.
//
//wirecap:hotpath
func (s *Stage) NoteUndecodable() { s.undecodable++ }

// Updates returns the number of packets fed into the stage.
func (s *Stage) Updates() uint64 { return s.updates }

// Sketch exposes the count-min sketch (read-mostly: reports, tests).
func (s *Stage) Sketch() *CMSketch { return s.cm }

// Flows exposes the bounded flow table.
func (s *Stage) Flows() *FlowTable { return s.flows }

// flowHash is FNV-1a over the 13 key bytes, inline (hash/fnv allocates
// a hasher; this must not).
//
//wirecap:hotpath
func flowHash(f *packet.FlowKey) uint64 {
	h := uint64(fnvOffset)
	h = (h ^ uint64(f.Src[0])) * fnvPrime
	h = (h ^ uint64(f.Src[1])) * fnvPrime
	h = (h ^ uint64(f.Src[2])) * fnvPrime
	h = (h ^ uint64(f.Src[3])) * fnvPrime
	h = (h ^ uint64(f.Dst[0])) * fnvPrime
	h = (h ^ uint64(f.Dst[1])) * fnvPrime
	h = (h ^ uint64(f.Dst[2])) * fnvPrime
	h = (h ^ uint64(f.Dst[3])) * fnvPrime
	h = (h ^ uint64(f.SrcPort>>8)) * fnvPrime
	h = (h ^ uint64(f.SrcPort&0xff)) * fnvPrime
	h = (h ^ uint64(f.DstPort>>8)) * fnvPrime
	h = (h ^ uint64(f.DstPort&0xff)) * fnvPrime
	h = (h ^ uint64(f.Proto)) * fnvPrime
	return h
}
