package analytics

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/vtime"
)

func flowN(i int) packet.FlowKey {
	return packet.FlowKey{
		Src:     packet.IPv4{10, 0, byte(i >> 8), byte(i)},
		Dst:     packet.IPv4{192, 168, 1, 1},
		SrcPort: uint16(1000 + i),
		DstPort: 53,
		Proto:   packet.ProtoUDP,
	}
}

// TestCMSketchNeverUndercounts pins the one-sided error guarantee over
// a skewed workload.
func TestCMSketchNeverUndercounts(t *testing.T) {
	cm := NewCMSketch(512, 4)
	r := vtime.NewRand(7)
	truth := map[int]uint64{}
	for i := 0; i < 20000; i++ {
		k := r.Intn(300)
		if r.Intn(4) == 0 {
			k = r.Intn(10) // heavy head
		}
		f := flowN(k)
		cm.Add(flowHash(&f), 1)
		truth[k]++
	}
	for k, want := range truth {
		f := flowN(k)
		if got := cm.Estimate(flowHash(&f)); got < want {
			t.Fatalf("flow %d: estimate %d < true count %d", k, got, want)
		}
	}
	if cm.Adds() != 20000 {
		t.Fatalf("Adds = %d", cm.Adds())
	}
}

// TestSpaceSavingBounds pins the space-saving invariants: a key's
// reported count overstates its true count by at most its error bound,
// and any key whose true count exceeds N/k is tracked.
func TestSpaceSavingBounds(t *testing.T) {
	const k = 16
	ss := NewSpaceSaving[int](k)
	r := vtime.NewRand(11)
	truth := map[int]uint64{}
	var n uint64
	for i := 0; i < 50000; i++ {
		key := r.Intn(500)
		if r.Intn(3) == 0 {
			key = r.Intn(4) // guaranteed heavy hitters
		}
		ss.Add(key, 1)
		truth[key]++
		n++
	}
	tracked := map[int]ssEntry[int]{}
	ss.Each(func(key int, count, errBound uint64) {
		tracked[key] = ssEntry[int]{key: key, count: count, err: errBound}
		if count < truth[key] {
			t.Fatalf("key %d: count %d < truth %d (space-saving never undercounts)", key, count, truth[key])
		}
		if count-errBound > truth[key] {
			t.Fatalf("key %d: count %d - err %d exceeds truth %d", key, count, errBound, truth[key])
		}
	})
	for key, want := range truth {
		if want > n/k {
			if _, ok := tracked[key]; !ok {
				t.Fatalf("heavy key %d (count %d > N/k %d) not tracked", key, want, n/k)
			}
		}
	}
}

// TestSpreadTrackerFindsScanners: a scanning source touching many
// distinct destinations must report a much larger estimate than
// ordinary sources.
func TestSpreadTrackerFindsScanners(t *testing.T) {
	tr := NewSpreadTracker(8)
	scanner := packet.IPv4{6, 6, 6, 6}
	for i := 0; i < 200; i++ {
		tr.Add(scanner, packet.IPv4{10, 0, byte(i >> 8), byte(i)})
	}
	for s := 0; s < 20; s++ {
		src := packet.IPv4{10, 1, 1, byte(s)}
		for i := 0; i < 3; i++ {
			tr.Add(src, packet.IPv4{192, 168, 0, byte(i)})
		}
	}
	var best string
	var bestEst uint32
	tr.Each(func(src packet.IPv4, est, bound uint32) {
		if est > bestEst {
			bestEst, best = est, src.String()
		}
	})
	if best != scanner.String() {
		t.Fatalf("top spreader = %s (est %d), want %s", best, bestEst, scanner)
	}
	if bestEst < 150 {
		t.Fatalf("scanner estimate %d too low for 200 distinct destinations", bestEst)
	}
}

// TestFlowTableEviction pins the eviction order: coldest flow first,
// oldest last-seen breaking ties.
func TestFlowTableEviction(t *testing.T) {
	ft := NewFlowTable(2)
	a, b, c := flowN(1), flowN(2), flowN(3)
	ft.Update(a, 100, 0, 10)
	ft.Update(a, 100, 0, 20)
	ft.Update(b, 100, 0, 30)
	// Table full: a has 2 packets, b has 1. c must evict b.
	ft.Update(c, 100, 0, 40)
	resident := map[string]bool{}
	ft.Each(func(fs *FlowStat) { resident[fs.Key.String()] = true })
	if !resident[a.String()] || !resident[c.String()] || resident[b.String()] {
		t.Fatalf("eviction picked wrong victim: %v", resident)
	}
	if ft.Evictions() != 1 {
		t.Fatalf("evictions = %d", ft.Evictions())
	}
}

// TestStageReportDeterminism: two stages fed the same sequence render
// byte-identical JSON; a one-packet difference changes it.
func TestStageReportDeterminism(t *testing.T) {
	feed := func(s *Stage, extra bool) {
		r := vtime.NewRand(99)
		var d packet.Decoded
		for i := 0; i < 5000; i++ {
			d.Flow = flowN(r.Intn(200))
			d.Frame = make([]byte, 60+r.Intn(1000))
			d.TCPFlags = uint8(r.Intn(256))
			s.Update(r.Intn(4), &d, vtime.Time(i)*vtime.Microsecond)
		}
		if extra {
			d.Flow = flowN(7)
			s.Update(0, &d, vtime.Second)
		}
	}
	render := func(extra bool) []byte {
		s := New(Config{}, nil, nil)
		feed(s, extra)
		b, err := json.Marshal(s.Report())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	r1, r2, r3 := render(false), render(false), render(true)
	if !bytes.Equal(r1, r2) {
		t.Fatalf("identical feeds render different reports:\n%s\n%s", r1, r2)
	}
	if bytes.Equal(r1, r3) {
		t.Fatal("one extra packet did not change the report")
	}
}

// TestStageMetricsWiring: the analytics_* series appear in a snapshot
// and track the stage's counters.
func TestStageMetricsWiring(t *testing.T) {
	reg := metrics.NewRegistry()
	s := New(Config{FlowCapacity: 4}, reg, nil)
	var d packet.Decoded
	for i := 0; i < 100; i++ {
		d.Flow = flowN(i % 8) // 8 flows through a 4-slot table: evictions
		d.Frame = make([]byte, 100)
		s.Update(0, &d, vtime.Time(i))
	}
	s.NoteUndecodable()
	snap := reg.Snapshot(vtime.Second)
	got := map[string]uint64{}
	for _, series := range snap.Series {
		if series.Kind == "counter" {
			got[series.Name] = series.Counter
		}
	}
	if got["analytics_updates_total"] != 100 {
		t.Fatalf("updates series = %d", got["analytics_updates_total"])
	}
	if got["analytics_undecodable_total"] != 1 {
		t.Fatalf("undecodable series = %d", got["analytics_undecodable_total"])
	}
	if got["analytics_flow_evictions_total"] == 0 {
		t.Fatal("no flow evictions recorded through 4-slot table")
	}
}

// TestStageSteadyStateAllocs pins the hot path at zero allocations
// once the working set is resident.
func TestStageSteadyStateAllocs(t *testing.T) {
	s := New(Config{FlowCapacity: 64, TopK: 16, Superspreaders: 16}, nil, nil)
	frame := make([]byte, 200)
	var d packet.Decoded
	d.Frame = frame
	// Warm up: make every structure's working set resident.
	for i := 0; i < 1000; i++ {
		d.Flow = flowN(i % 32)
		s.Update(0, &d, vtime.Time(i))
	}
	i := 0
	avg := testing.AllocsPerRun(2000, func() {
		d.Flow = flowN(i % 32)
		s.Update(0, &d, vtime.Time(i))
		i++
	})
	if avg != 0 {
		t.Fatalf("steady-state Update allocates %.2f/op, want 0", avg)
	}
}
