package analytics

import (
	"repro/internal/packet"
	"repro/internal/vtime"
)

// FlowTable is bounded per-flow state: a fixed slot array indexed by a
// map, tracking the current working set of flows exactly. When the
// table is full a new flow evicts the coldest resident — fewest
// packets, ties broken by oldest last-seen and then lowest slot index,
// a total order that never consults map iteration. Evicted state is
// dropped (the sketch still holds its frequency mass); the eviction
// counter makes the loss observable.
type FlowTable struct {
	idx       map[packet.FlowKey]int32
	slots     []FlowStat
	used      int
	evictions uint64
}

// FlowStat is one flow's exact state while resident.
type FlowStat struct {
	Key      packet.FlowKey
	Packets  uint64
	Bytes    uint64
	First    vtime.Time
	Last     vtime.Time
	TCPFlags uint8 // OR of all TCP flag octets seen
}

// NewFlowTable builds a table holding up to capacity flows.
func NewFlowTable(capacity int) *FlowTable {
	if capacity < 1 {
		capacity = 1
	}
	return &FlowTable{idx: make(map[packet.FlowKey]int32, capacity), slots: make([]FlowStat, capacity)}
}

// Update accounts one packet of the flow. Steady state (flow resident)
// allocates nothing.
//
//wirecap:hotpath
func (ft *FlowTable) Update(key packet.FlowKey, bytes int, flags uint8, ts vtime.Time) {
	if i, ok := ft.idx[key]; ok {
		s := &ft.slots[i]
		s.Packets++
		s.Bytes += uint64(bytes)
		s.Last = ts
		s.TCPFlags |= flags
		return
	}
	var i int32
	if ft.used < len(ft.slots) {
		i = int32(ft.used)
		ft.used++
	} else {
		i = 0
		for j := int32(1); j < int32(len(ft.slots)); j++ {
			s, m := &ft.slots[j], &ft.slots[i]
			if s.Packets < m.Packets || (s.Packets == m.Packets && s.Last < m.Last) {
				i = j
			}
		}
		delete(ft.idx, ft.slots[i].Key)
		ft.evictions++
	}
	ft.slots[i] = FlowStat{Key: key, Packets: 1, Bytes: uint64(bytes), First: ts, Last: ts, TCPFlags: flags}
	ft.idx[key] = i
}

// Len returns the number of resident flows.
func (ft *FlowTable) Len() int { return ft.used }

// Evictions returns how many flows have been displaced.
func (ft *FlowTable) Evictions() uint64 { return ft.evictions }

// Each calls fn for every resident flow in slot order.
func (ft *FlowTable) Each(fn func(s *FlowStat)) {
	for i := 0; i < ft.used; i++ {
		fn(&ft.slots[i])
	}
}
