package analytics

import (
	"sort"

	"repro/internal/packet"

	"repro/internal/vtime"
)

// Report is the stage's deterministic summary: integers and fixed
// strings only, every slice sorted by (count desc, key asc), so
// identical update sequences render byte-identical JSON. bench embeds
// it in RunReport, which puts every number under the ci-gate digest.
type Report struct {
	Updates     uint64 `json:"updates"`
	Bytes       uint64 `json:"bytes"`
	Undecodable uint64 `json:"undecodable,omitempty"`

	Sketch SketchSummary `json:"sketch"`
	Flows  FlowSummary   `json:"flows"`

	HeavyHitters   []HeavyHitter `json:"heavy_hitters,omitempty"`
	Superspreaders []Spreader    `json:"superspreaders,omitempty"`
}

// SketchSummary pins the sketch geometry and load.
type SketchSummary struct {
	Width int    `json:"width"`
	Depth int    `json:"depth"`
	Adds  uint64 `json:"adds"`
}

// FlowSummary pins the flow table's occupancy and a bounded list of
// its heaviest resident flows.
type FlowSummary struct {
	Resident  int          `json:"resident"`
	Evictions uint64       `json:"evictions,omitempty"`
	Top       []FlowReport `json:"top,omitempty"`
}

// FlowReport is one resident flow.
type FlowReport struct {
	Flow     string     `json:"flow"`
	Packets  uint64     `json:"packets"`
	Bytes    uint64     `json:"bytes"`
	First    vtime.Time `json:"first_ns"`
	Last     vtime.Time `json:"last_ns"`
	TCPFlags uint8      `json:"tcp_flags,omitempty"`
}

// HeavyHitter is one space-saving entry: Bytes overstates the flow's
// true byte count by at most Err; EstPackets is the count-min estimate
// for the same flow (an independent structure, cross-checkable).
type HeavyHitter struct {
	Flow       string `json:"flow"`
	Bytes      uint64 `json:"bytes"`
	Err        uint64 `json:"err,omitempty"`
	EstPackets uint64 `json:"est_packets"`
}

// Spreader is one candidate superspreader with its linear-counting
// distinct-destination estimate and inherited error bound.
type Spreader struct {
	Src      string `json:"src"`
	Estimate uint32 `json:"estimate"`
	Bound    uint32 `json:"bound,omitempty"`
}

// reportTopFlows bounds the per-flow section of the report.
const reportTopFlows = 10

// Report renders the stage. Sorting keys are totals-then-render-string,
// a total order independent of insertion history, so any two runs that
// fed the same multiset of packets in the same per-queue order report
// identically.
func (s *Stage) Report() *Report {
	r := &Report{
		Updates:     s.updates,
		Bytes:       s.bytes,
		Undecodable: s.undecodable,
		Sketch:      SketchSummary{Width: s.cm.Width(), Depth: s.cm.Depth(), Adds: s.cm.Adds()},
		Flows:       FlowSummary{Resident: s.flows.Len(), Evictions: s.flows.Evictions()},
	}

	hh := make([]HeavyHitter, 0, s.hh.Len())
	s.hh.Each(func(key packet.FlowKey, count, errBound uint64) {
		hh = append(hh, HeavyHitter{
			Flow:       key.String(),
			Bytes:      count,
			Err:        errBound,
			EstPackets: s.cm.Estimate(flowHash(&key)),
		})
	})
	sort.Slice(hh, func(i, j int) bool {
		if hh[i].Bytes != hh[j].Bytes {
			return hh[i].Bytes > hh[j].Bytes
		}
		return hh[i].Flow < hh[j].Flow
	})
	r.HeavyHitters = hh

	sp := make([]Spreader, 0, s.spread.Len())
	s.spread.Each(func(src packet.IPv4, estimate, bound uint32) {
		sp = append(sp, Spreader{Src: src.String(), Estimate: estimate, Bound: bound})
	})
	sort.Slice(sp, func(i, j int) bool {
		if sp[i].Estimate != sp[j].Estimate {
			return sp[i].Estimate > sp[j].Estimate
		}
		return sp[i].Src < sp[j].Src
	})
	r.Superspreaders = sp

	top := make([]FlowReport, 0, s.flows.Len())
	s.flows.Each(func(fs *FlowStat) {
		top = append(top, FlowReport{
			Flow:     fs.Key.String(),
			Packets:  fs.Packets,
			Bytes:    fs.Bytes,
			First:    fs.First,
			Last:     fs.Last,
			TCPFlags: fs.TCPFlags,
		})
	})
	sort.Slice(top, func(i, j int) bool {
		if top[i].Bytes != top[j].Bytes {
			return top[i].Bytes > top[j].Bytes
		}
		return top[i].Flow < top[j].Flow
	})
	if len(top) > reportTopFlows {
		top = top[:reportTopFlows]
	}
	r.Flows.Top = top
	return r
}
