package analytics

// CMSketch is a count-min sketch: depth rows of width counters, each
// update incrementing one counter per row, estimates taking the row
// minimum. With width w and depth d, an estimate overshoots the true
// count by more than 2N/w (N = total additions) with probability at
// most (1/2)^d — the classic Cormode-Muthukrishnan bound, quoted in
// DESIGN.md §12. Row indexes derive from one 64-bit key hash by
// Kirsch-Mitzenmacher double hashing (h1 + i*h2), so the hot path
// hashes once regardless of depth.
type CMSketch struct {
	width uint32 // power of two
	depth uint32
	rows  []uint64 // depth*width, row-major
	adds  uint64   // total additions (N in the error bound)
}

// NewCMSketch builds a sketch with width rounded up to a power of two
// (minimum 16) and depth clamped to [1, 8].
func NewCMSketch(width, depth int) *CMSketch {
	w := uint32(16)
	for int(w) < width {
		w <<= 1
	}
	if depth < 1 {
		depth = 1
	}
	if depth > 8 {
		depth = 8
	}
	return &CMSketch{width: w, depth: uint32(depth), rows: make([]uint64, int(w)*depth)}
}

// Add counts n occurrences of the key hashed to h.
//
//wirecap:hotpath
func (c *CMSketch) Add(h uint64, n uint64) {
	h1 := uint32(h)
	h2 := uint32(h>>32) | 1 // odd, so successive rows probe distinct slots
	mask := c.width - 1
	for d := uint32(0); d < c.depth; d++ {
		c.rows[d*c.width+(h1+d*h2)&mask] += n
	}
	c.adds += n
}

// Estimate returns the row-minimum count for the key hashed to h —
// never an undercount, overcounts bounded as documented on CMSketch.
//
//wirecap:hotpath
func (c *CMSketch) Estimate(h uint64) uint64 {
	h1 := uint32(h)
	h2 := uint32(h>>32) | 1
	mask := c.width - 1
	min := c.rows[(h1)&mask]
	for d := uint32(1); d < c.depth; d++ {
		if v := c.rows[d*c.width+(h1+d*h2)&mask]; v < min {
			min = v
		}
	}
	return min
}

// Adds returns the total count added (N in the error bound).
func (c *CMSketch) Adds() uint64 { return c.adds }

// Width returns the (rounded) row width.
func (c *CMSketch) Width() int { return int(c.width) }

// Depth returns the number of rows.
func (c *CMSketch) Depth() int { return int(c.depth) }
