package obs

import (
	"bytes"
	"testing"

	"repro/internal/metrics"
	"repro/internal/vtime"
)

// TestHealthSamplerBucketsDeltas drives a counter through three
// intervals with a gap and checks the sampler emits one delta per
// active interval, elides the empty one, and closes the final partial
// interval on Finish.
func TestHealthSamplerBucketsDeltas(t *testing.T) {
	reg := metrics.NewRegistry()
	c := reg.Counter("pkts_total")
	s := NewHealthSampler("host0", reg, 1000, 0)

	// Interval 0: [0, 1000). Observe-then-mutate, like the event hooks.
	s.Observe(100)
	c.Add(3)
	s.Observe(900)
	c.Add(2)
	// Interval 1 is silent. Interval 3: the Observe flushes 0..2 first.
	s.Observe(3100)
	c.Add(7)
	s.Finish(3500)

	series := s.Series()
	if series.Lane != "host0" || series.IntervalNs != 1000 {
		t.Fatalf("series header = %+v", series)
	}
	if len(series.Deltas) != 2 {
		t.Fatalf("deltas = %+v, want intervals 0 and 3 only", series.Deltas)
	}
	if d := series.Deltas[0]; d.Index != 0 || d.EndNs != 1000 || d.Value("pkts_total") != 5 {
		t.Fatalf("interval 0 delta = %+v, want pkts_total=5", d)
	}
	if d := series.Deltas[1]; d.Index != 3 || d.EndNs != 4000 || d.Value("pkts_total") != 7 {
		t.Fatalf("interval 3 delta = %+v, want pkts_total=7", d)
	}
	if series.DroppedIntervals != 0 {
		t.Fatalf("DroppedIntervals = %d, want 0", series.DroppedIntervals)
	}
}

// TestHealthSamplerRingEviction bounds the ring: a run with more active
// intervals than MaxIntervals keeps the newest and counts the evicted.
func TestHealthSamplerRingEviction(t *testing.T) {
	reg := metrics.NewRegistry()
	c := reg.Counter("pkts_total")
	s := NewHealthSampler("host0", reg, 1000, 3)
	for i := 0; i < 5; i++ {
		s.Observe(vtime.Time(i * 1000))
		c.Inc()
	}
	s.Finish(4999)
	series := s.Series()
	if len(series.Deltas) != 3 {
		t.Fatalf("deltas = %d, want the ring bound 3", len(series.Deltas))
	}
	if series.DroppedIntervals != 2 {
		t.Fatalf("DroppedIntervals = %d, want 2", series.DroppedIntervals)
	}
	if series.Deltas[0].Index != 2 || series.Deltas[2].Index != 4 {
		t.Fatalf("ring kept wrong intervals: %+v", series.Deltas)
	}
}

// TestHealthSamplerNilIsDisabled: the nil sampler is the disabled
// contract — every method a free no-op, like the nil *Recorder.
func TestHealthSamplerNilIsDisabled(t *testing.T) {
	var s *HealthSampler
	s.Observe(100)
	s.Finish(200)
	if got := s.Series(); got.Lane != "" || len(got.Deltas) != 0 {
		t.Fatalf("nil sampler produced a series: %+v", got)
	}
}

// TestMergeHealthSumsLanes: the fleet lane sums per-lane values at the
// same (interval, name) and carries each interval's end time through.
func TestMergeHealthSumsLanes(t *testing.T) {
	lanes := []HealthSeries{
		{Lane: "host0", IntervalNs: 1000, Deltas: []HealthDelta{
			{Index: 0, EndNs: 1000, Values: []HealthValue{{Name: "received", V: 4}}},
			{Index: 2, EndNs: 3000, Values: []HealthValue{{Name: "received", V: 1}}},
		}},
		{Lane: "host1", IntervalNs: 1000, DroppedIntervals: 1, Deltas: []HealthDelta{
			{Index: 0, EndNs: 1000, Values: []HealthValue{{Name: "received", V: 6}, {Name: "retries", V: 2}}},
		}},
	}
	m := MergeHealth("fleet", lanes)
	if m.Lane != "fleet" || m.IntervalNs != 1000 || m.DroppedIntervals != 1 {
		t.Fatalf("merged header = %+v", m)
	}
	if len(m.Deltas) != 2 {
		t.Fatalf("merged deltas = %+v", m.Deltas)
	}
	if d := m.Deltas[0]; d.Index != 0 || d.EndNs != 1000 || d.Value("received") != 10 || d.Value("retries") != 2 {
		t.Fatalf("merged interval 0 = %+v", d)
	}
	if d := m.Deltas[1]; d.Index != 2 || d.Value("received") != 1 {
		t.Fatalf("merged interval 2 = %+v", d)
	}

	var a, b bytes.Buffer
	if err := WriteHealth(&a, append(lanes, m)); err != nil {
		t.Fatal(err)
	}
	if err := WriteHealth(&b, append(lanes, m)); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("WriteHealth is not deterministic")
	}
}

// TestHealthSamplerLabeledSeries: labeled series render with canonical
// sorted labels so two lanes never collide on a bare name.
func TestHealthSamplerLabeledSeries(t *testing.T) {
	reg := metrics.NewRegistry()
	c := reg.Counter("drops_total", metrics.L("queue", "1"))
	s := NewHealthSampler("host0", reg, 1000, 0)
	s.Observe(0)
	c.Add(2)
	s.Finish(500)
	series := s.Series()
	if len(series.Deltas) != 1 {
		t.Fatalf("deltas = %+v", series.Deltas)
	}
	if got := series.Deltas[0].Value("drops_total{queue=1}"); got != 2 {
		t.Fatalf("labeled value = %d (delta %+v), want 2", got, series.Deltas[0])
	}
}
