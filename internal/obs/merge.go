package obs

import (
	"sort"

	"repro/internal/vtime"
)

// This file is the observability half of the parallel simulation
// (DESIGN.md §11): each time domain owns a private Recorder (recorders
// are single-threaded by design, like everything else inside a domain),
// and after the run the per-domain Records are merged into one
// fleet-wide Record in canonical order. The merge is pure data
// plumbing — sort keys only, no clocks, no maps iterated unsorted — so
// the merged export is byte-identical for any domain count, worker
// count, or machine.

// Tag labels the record and every sub-record in it with the time domain
// that produced it. Domain 0 marshals as absent (omitempty), so
// single-domain exports are byte-identical to pre-parallel ones.
func (rec *Record) Tag(domain int) {
	rec.Domain = domain
	for i := range rec.Packets {
		rec.Packets[i].Domain = domain
	}
	for i := range rec.Drops {
		rec.Drops[i].Domain = domain
	}
	for i := range rec.FaultWindows {
		rec.FaultWindows[i].Domain = domain
	}
	for i := range rec.Actions {
		rec.Actions[i].Domain = domain
	}
}

// MergeRecords merges per-domain records into one record in canonical
// order: every event slice sorts by (virtual time, domain, original
// position), packets by (first-stamp time, domain, id), the stage
// profile by summed bucket key, and drop totals by summed cause. Fault
// window ids stay per-domain scoped (a DropRecord's Fault refers to a
// window with the same Domain), exactly as queue numbers stay per-NIC
// scoped.
//
// Sorting is stable and every tiebreak ends in a key that is unique
// within its domain, so the result is a pure function of the inputs —
// independent of placement, worker count, and merge call order.
func MergeRecords(scenario string, end vtime.Time, recs []Record) Record {
	out := Record{
		Scenario:    scenario,
		End:         end,
		SampleEvery: 1,
		DropTotals:  map[string]uint64{},
	}
	for i := range recs {
		r := &recs[i]
		if r.SampleEvery > out.SampleEvery {
			out.SampleEvery = r.SampleEvery
		}
		out.Packets = append(out.Packets, r.Packets...)
		out.Drops = append(out.Drops, r.Drops...)
		out.FaultWindows = append(out.FaultWindows, r.FaultWindows...)
		out.Actions = append(out.Actions, r.Actions...)
		out.StageProfile = append(out.StageProfile, r.StageProfile...)
		out.TruncatedPackets += r.TruncatedPackets
		out.TruncatedDrops += r.TruncatedDrops
		out.Journeys = append(out.Journeys, r.Journeys...)
		out.FleetEvents = append(out.FleetEvents, r.FleetEvents...)
		out.TruncatedJourneys += r.TruncatedJourneys
		for k, v := range r.DropTotals {
			out.DropTotals[k] += v
		}
	}

	sort.SliceStable(out.Packets, func(i, j int) bool {
		a, b := &out.Packets[i], &out.Packets[j]
		at, bt := packetStart(a), packetStart(b)
		if at != bt {
			return at < bt
		}
		if a.Domain != b.Domain {
			return a.Domain < b.Domain
		}
		return a.ID < b.ID
	})
	sort.SliceStable(out.Drops, func(i, j int) bool {
		a, b := &out.Drops[i], &out.Drops[j]
		if a.At != b.At {
			return a.At < b.At
		}
		return a.Domain < b.Domain
	})
	sort.SliceStable(out.FaultWindows, func(i, j int) bool {
		a, b := &out.FaultWindows[i], &out.FaultWindows[j]
		if a.Open != b.Open {
			return a.Open < b.Open
		}
		if a.Domain != b.Domain {
			return a.Domain < b.Domain
		}
		return a.ID < b.ID
	})
	sort.SliceStable(out.Actions, func(i, j int) bool {
		a, b := &out.Actions[i], &out.Actions[j]
		if a.At != b.At {
			return a.At < b.At
		}
		return a.Domain < b.Domain
	})
	// Journeys sort by their steer time; (At, Host) is already unique
	// because a host processes one offer per virtual instant, Seq breaks
	// the (impossible in practice) remainder. FleetEvents are all
	// aggregator-side, where (At, Host, Seq) is unique.
	sort.SliceStable(out.Journeys, func(i, j int) bool {
		a, b := &out.Journeys[i], &out.Journeys[j]
		at, bt := journeyStart(a), journeyStart(b)
		if at != bt {
			return at < bt
		}
		if a.Host != b.Host {
			return a.Host < b.Host
		}
		return a.Seq < b.Seq
	})
	sort.SliceStable(out.FleetEvents, func(i, j int) bool {
		a, b := &out.FleetEvents[i], &out.FleetEvents[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Host != b.Host {
			return a.Host < b.Host
		}
		return a.Seq < b.Seq
	})

	// Sum stage-profile buckets across domains: the profile answers
	// "where does virtual time go per stage", which aggregates the same
	// way the metric counters do.
	type bucket struct {
		ns    vtime.Time
		count uint64
	}
	sums := map[profKey]*bucket{}
	for _, e := range out.StageProfile {
		k := profKey{engine: e.Engine, queue: e.Queue, stage: e.Stage}
		b := sums[k]
		if b == nil {
			b = &bucket{}
			sums[k] = b
		}
		b.ns += e.Ns
		b.count += e.Count
	}
	out.StageProfile = out.StageProfile[:0]
	for k, b := range sums {
		out.StageProfile = append(out.StageProfile, StageProfileEntry{
			Engine: k.engine, Queue: k.queue, Stage: k.stage, Ns: b.ns, Count: b.count,
		})
	}
	sort.Slice(out.StageProfile, func(i, j int) bool {
		a, b := out.StageProfile[i], out.StageProfile[j]
		if a.Engine != b.Engine {
			return a.Engine < b.Engine
		}
		if a.Queue != b.Queue {
			return a.Queue < b.Queue
		}
		return a.Stage < b.Stage
	})
	return out
}

// packetStart is a packet's wire-arrival time (its first stamp).
func packetStart(p *PacketTrace) vtime.Time {
	if len(p.Stamps) == 0 {
		return 0
	}
	return p.Stamps[0].At
}

// journeyStart is a journey's steer time (its first stamp).
func journeyStart(j *Journey) vtime.Time {
	if len(j.Stamps) == 0 {
		return 0
	}
	return j.Stamps[0].At
}
