// Package obs is the packet-lifecycle flight recorder: deterministic
// per-packet spans, a drop-forensics ledger, and a virtual-time stage
// profiler layered over the simulator's metrics aggregates.
//
// The recorder answers the questions the paper argues a capture engine
// must make answerable (§2.1, §3.2.1): where a given packet waited,
// which copies it paid for, and exactly why a drop happened —
// descriptor depletion at the NIC versus ring-buffer exhaustion in the
// engine versus reclamation under recovery. It records three things:
//
//   - Spans: virtual-clock-stamped stage transitions (wire → DMA write
//     → descriptor ready → copy → chunk handoff → deliver → processed
//     → recycle) for a deterministically sampled subset of packets.
//     Sampling is per-flow and Toeplitz-keyed: a flow is traced iff
//     FlowHash(flow) % SampleEvery == 0, so the same flows are traced
//     on every run of a seeded workload.
//   - Drop ledger: one typed record per drop event — every drop, not
//     just sampled ones — with queue/ring/time context and the id of
//     any overlapping fault window. Per-cause totals are always
//     complete even when the record list hits its cap, so the ledger
//     can be checked for conservation against the metrics counters.
//   - Stage profiler: accumulated virtual nanoseconds per
//     (engine, queue, stage), charged at the same sites the simulator
//     charges virtual cost.
//
// Determinism contract: the recorder is a pure observer. It registers
// no metric series, charges no virtual time, touches no RNG, and its
// hooks are called at points whose order is already fixed by the
// scheduler — so a run's RunReport digest is identical with tracing on
// or off, and two seeded runs export byte-identical traces.
//
// Disabled contract: a nil *Recorder is valid and every hook on it is
// a no-op that performs zero allocations. Hot paths therefore carry an
// always-present recorder field and call hooks unconditionally, the
// same pattern internal/faults uses for its query methods.
package obs

import (
	"encoding/json"
	"fmt"

	"repro/internal/packet"
	"repro/internal/vtime"
)

// Stage identifies a point in a packet's life. Stages appear in a
// trace in the order the packet actually reached them; engines without
// a stage (Type-II engines have no copy, non-WireCAP engines have no
// chunk handoff) simply never stamp it.
type Stage uint8

const (
	StageWire         Stage = iota // arrived at the NIC on the wire
	StageDMAWrite                  // NIC DMA'd the frame into a descriptor buffer
	StageDescReady                 // descriptor consumed by the capture layer (WireCAP: bound to a chunk cell)
	StageCopy                      // copied (kernel copy, user copy, or flush compaction)
	StageChunkHandoff              // chunk containing the packet handed to a consumer
	StageDeliver                   // delivered to the application handler
	StageProcessed                 // application handler finished with it
	StageRecycle                   // backing buffer recycled to the NIC / pool
	StageDrop                      // dropped (the trace's terminal stage)

	// Fleet journey stages (DESIGN.md §14): the cross-host life of a
	// packet in the aggregation plane, recorded by the journey hooks in
	// journey.go rather than the single-host packet hooks above.
	StageSteer       // steering owner charged the offered frame
	StageHostIngress // captured into the host's open aggregation batch
	StageAggEnqueue  // batch closed and queued on the aggregation link
	StageAggLink     // batch transferred onto the host->aggregator link
	StageMergeEmit   // emitted from the watermark merge into the global feed
	numStages
)

var stageNames = [numStages]string{
	"wire", "dma_write", "desc_ready", "copy", "chunk_handoff",
	"deliver", "processed", "recycle", "drop",
	"steer", "host_ingress", "agg_enqueue", "agg_link", "merge_emit",
}

// String returns the stage's snake_case name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// DropCause is the typed reason a packet (or a chunk of packets) was
// dropped. The causes partition the simulator's drop counters exactly:
//
//	CaptureDrops  = DescDepletion + Bus + QueueHang + DescStall
//	DeliveryDrops = DeliveryOverflow + QuarantineBacklog
//	CorruptDrops  = Corrupt
//	ReclaimDrops  = Reclaim
//	LinkDrops     = Link,  Filtered = Filtered
//
// The fleet causes partition the aggregation-plane books the same way
// (DESIGN.md §14):
//
//	FleetReceived − Aggregated = HostLostCrash + InFlightHeadDrop + StalenessReject
//	CaptureDropped             = HostBrownoutShed
type DropCause uint8

const (
	DropDescDepletion     DropCause = iota // no ready descriptor at DMA-write time (ring full)
	DropBus                                // PCIe bus had no bandwidth for the transfer
	DropQueueHang                          // queue hung by a fault window
	DropDescStall                          // descriptor feed stalled by a fault window
	DropLink                               // link down (flap window)
	DropFiltered                           // MAC filter, non-promiscuous mode
	DropDeliveryOverflow                   // engine's delivery ring/FIFO full (ring-buffer exhaustion)
	DropQuarantineBacklog                  // queued work discarded when its queue was quarantined
	DropCorrupt                            // frame-integrity validation tombstoned the cell
	DropReclaim                            // chunk reclaimed under memory pressure or quarantine

	// Fleet causes: the aggregation-plane loss points.
	DropHostLostCrash    // host crash lost the open batch / unsent link queue
	DropHostBrownoutShed // overloaded host shed at capture (backlog cap)
	DropInFlightHeadDrop // bounded link queue gave up on its head (retry exhaustion / hard cap)
	DropStalenessReject  // aggregator rejected a packet older than the emitted frontier
	numCauses
)

var causeNames = [numCauses]string{
	"desc_depletion", "bus", "queue_hang", "desc_stall", "link_down",
	"filtered", "delivery_overflow", "quarantine_backlog", "corrupt", "reclaim",
	"host_lost_crash", "host_lost_brownout_shed", "in_flight_link_headdrop", "staleness_reject",
}

// String returns the cause's snake_case name.
func (c DropCause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return "unknown"
}

// MarshalJSON renders the stage as its name, keeping exports readable.
func (s Stage) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON parses a stage name back (for ReadRecord round trips).
func (s *Stage) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for i, n := range stageNames {
		if n == name {
			*s = Stage(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown stage %q", name)
}

// CauseNames lists every drop-cause name in enum order.
func CauseNames() []string {
	out := make([]string, numCauses)
	copy(out, causeNames[:])
	return out
}

// StageStamp is one stage transition in a packet's trace.
type StageStamp struct {
	Stage Stage      `json:"stage"`
	At    vtime.Time `json:"at"`
}

// PacketTrace is the full recorded life of one sampled packet. ID is
// the packet's global arrival sequence number (counted over every
// decoded arrival, sampled or not), so ids are stable across runs and
// name the same wire packet in both.
type PacketTrace struct {
	ID     uint64         `json:"id"`
	Flow   packet.FlowKey `json:"-"`
	FlowS  string         `json:"flow"`
	Hash   uint32         `json:"hash"`
	NIC    int            `json:"nic"`
	Queue  int            `json:"queue"`
	Len    int            `json:"len"`
	Stamps []StageStamp   `json:"stamps"`
	// Drop is the drop cause name when the trace ended in a drop, "".
	Drop string `json:"drop,omitempty"`
	// Domain is the time domain that recorded the trace in a merged
	// fleet record; 0 (omitted) in single-domain runs.
	Domain int `json:"domain,omitempty"`
}

// DropRecord is one entry in the drop-forensics ledger.
type DropRecord struct {
	At    vtime.Time `json:"at"`
	Cause string     `json:"cause"`
	NIC   int        `json:"nic"`
	Queue int        `json:"queue"` // rx queue / ring, -1 when unknown (pre-steering)
	// Pkt is the traced packet's id when the dropped packet was sampled,
	// -1 otherwise.
	Pkt int64 `json:"pkt"`
	// Count is how many packets this record covers (chunk-level drops
	// cover every good packet left in the chunk).
	Count uint64 `json:"count"`
	// Fault is the id of the fault window open over this (nic, queue)
	// when the drop happened, -1 when none was. In a merged fleet
	// record it refers to the window with the same Domain.
	Fault int32 `json:"fault"`
	// Domain is the recording time domain (0 / omitted outside fleets).
	Domain int `json:"domain,omitempty"`
}

// FaultWindow is one fault activation interval.
type FaultWindow struct {
	ID    int32      `json:"id"`
	Kind  string     `json:"kind"`
	NIC   int        `json:"nic"`
	Queue int        `json:"queue"` // -1 for NIC-scoped faults
	Open  vtime.Time `json:"open"`
	Close vtime.Time `json:"close"` // -1 while/if never closed
	// Domain is the recording time domain (0 / omitted outside fleets).
	Domain int `json:"domain,omitempty"`
}

// ActionRecord is one annotated recovery or pool event (quarantine,
// re-steer, failover, reclamation, alloc retry, ...).
type ActionRecord struct {
	At    vtime.Time `json:"at"`
	Kind  string     `json:"kind"`
	NIC   int        `json:"nic"`
	Queue int        `json:"queue"`
	Arg   int64      `json:"arg"`
	// Domain is the recording time domain (0 / omitted outside fleets).
	Domain int `json:"domain,omitempty"`
}

// StageProfileEntry is accumulated virtual time for one
// (engine, queue, stage) bucket.
type StageProfileEntry struct {
	Engine string     `json:"engine"`
	Queue  int        `json:"queue"`
	Stage  string     `json:"stage"`
	Ns     vtime.Time `json:"ns"`
	Count  uint64     `json:"count"`
}

// Config parameterizes a Recorder.
type Config struct {
	// FlowHash keys the per-flow sampler; bench injects the NIC's
	// Toeplitz RSS hash so sampling follows the same function hardware
	// steers by. Required.
	FlowHash func(packet.FlowKey) uint32
	// SampleEvery traces flows whose hash ≡ 0 (mod SampleEvery).
	// Default 8. 1 traces every flow.
	SampleEvery uint32
	// MaxPackets caps how many packet traces are kept (default 4096);
	// arrivals past the cap are counted, not traced.
	MaxPackets int
	// MaxDrops caps the ledger's record list (default 65536). Per-cause
	// totals are always complete regardless.
	MaxDrops int
	// MaxJourneys caps how many fleet journeys are kept (default 4096);
	// sampled offers past the cap are counted, not traced.
	MaxJourneys int
}

type descKey struct{ nic, ring, desc int }
type fifoKey struct{ nic, ring, slot int }
type cellKey struct {
	nic   int
	chunk uint64
	cell  int
}
type chunkKey struct {
	nic   int
	chunk uint64
}
type procKey struct{ nic, queue int }
type profKey struct {
	engine string
	queue  int
	stage  string
}

type cellEntry struct {
	cell      int
	pkt       int32
	delivered bool
}

type profEntry struct {
	ns    vtime.Time
	count uint64
}

// Recorder is the flight recorder. The zero value is not usable; build
// one with New. A nil *Recorder is a valid disabled recorder: every
// method is a nil-safe no-op.
type Recorder struct {
	cfg Config

	seq     uint64 // global arrival counter (every decoded arrival)
	pkts    []PacketTrace
	truncPk uint64 // sampled arrivals not traced because MaxPackets was hit

	// pending is the index in pkts of the packet currently inside
	// NIC.Deliver (bound between PktArrive and PktDMA/PendingDrop),
	// -1 when none or not sampled. Deliver is synchronous, so a single
	// slot suffices.
	pending int32

	byDesc map[descKey]int32
	byFifo map[fifoKey]int32
	byCell map[cellKey]int32
	cells  map[chunkKey][]cellEntry
	proc   map[procKey][]int32

	drops      []DropRecord
	dropTotals [numCauses]uint64
	truncDrops uint64

	windows []FaultWindow
	actions []ActionRecord

	prof map[profKey]*profEntry

	// Fleet journey state (journey.go). jPending is the journey opened
	// by JourneySteer for the offer currently being processed (-1 when
	// none or unsampled); jBySeq maps a host capture sequence to its
	// journey while the packet is in the aggregation plane.
	journeys  []Journey
	jPending  int32
	jBySeq    map[uint64]int32
	fleetEvts []FleetEvent
	truncJ    uint64
}

// New builds an enabled recorder. cfg.FlowHash must be non-nil.
func New(cfg Config) *Recorder {
	if cfg.FlowHash == nil {
		panic("obs: Config.FlowHash is required")
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 8
	}
	if cfg.MaxPackets == 0 {
		cfg.MaxPackets = 4096
	}
	if cfg.MaxDrops == 0 {
		cfg.MaxDrops = 65536
	}
	if cfg.MaxJourneys == 0 {
		cfg.MaxJourneys = 4096
	}
	return &Recorder{
		cfg:      cfg,
		pending:  -1,
		jPending: -1,
		byDesc:   make(map[descKey]int32),
		byFifo:   make(map[fifoKey]int32),
		byCell:   make(map[cellKey]int32),
		cells:    make(map[chunkKey][]cellEntry),
		proc:     make(map[procKey][]int32),
		prof:     make(map[profKey]*profEntry),
		jBySeq:   make(map[uint64]int32),
	}
}

// Sampled reports whether the recorder traces the flow.
//
//wirecap:hotpath
func (r *Recorder) Sampled(flow packet.FlowKey) bool {
	if r == nil {
		return false
	}
	return r.cfg.FlowHash(flow)%r.cfg.SampleEvery == 0
}

// openFault returns the id of the first fault window open over
// (nic, queue), -1 when none. A NIC-scoped window (Queue == -1)
// matches every queue.
func (r *Recorder) openFault(nic, queue int) int32 {
	for i := range r.windows {
		w := &r.windows[i]
		if w.Close >= 0 || w.NIC != nic {
			continue
		}
		if w.Queue == -1 || w.Queue == queue {
			return w.ID
		}
	}
	return -1
}

//wirecap:hotpath
func (r *Recorder) ledger(cause DropCause, nic, queue int, pkt int64, count uint64, ts vtime.Time) {
	r.dropTotals[cause] += count
	if len(r.drops) >= r.cfg.MaxDrops {
		r.truncDrops++
		return
	}
	r.drops = append(r.drops, DropRecord{ //wirelint:allow hotpath drop ledger is bounded by MaxDrops; recorder is opt-in per run
		At: ts, Cause: cause.String(), NIC: nic, Queue: queue,
		Pkt: pkt, Count: count, Fault: r.openFault(nic, queue),
	})
}

// stamp appends a stage transition to trace pi.
//
//wirecap:hotpath
func (r *Recorder) stamp(pi int32, s Stage, ts vtime.Time) {
	p := &r.pkts[pi]
	p.Stamps = append(p.Stamps, StageStamp{Stage: s, At: ts}) //wirelint:allow hotpath stamps exist only for sampled packets on traced runs
}

// finish terminates trace pi with a drop stamp and cause.
//
//wirecap:hotpath
func (r *Recorder) finish(pi int32, cause DropCause, ts vtime.Time) {
	r.stamp(pi, StageDrop, ts)
	r.pkts[pi].Drop = cause.String()
}

// ---- NIC hooks ----------------------------------------------------

// PktArrive records a decoded arrival steered to queue. It assigns the
// packet its global sequence id and, when the flow is sampled, opens a
// trace and parks it in the pending slot for PktDMA / PendingDrop.
//
//wirecap:hotpath
func (r *Recorder) PktArrive(nic, queue int, flow packet.FlowKey, frameLen int, ts vtime.Time) {
	if r == nil {
		return
	}
	id := r.seq
	r.seq++
	r.pending = -1
	if r.cfg.FlowHash(flow)%r.cfg.SampleEvery != 0 {
		return
	}
	if len(r.pkts) >= r.cfg.MaxPackets {
		r.truncPk++
		return
	}
	r.pkts = append(r.pkts, PacketTrace{ //wirelint:allow hotpath trace store is bounded by MaxPackets; recorder is opt-in per run
		ID: id, Flow: flow, FlowS: flow.String(), Hash: r.cfg.FlowHash(flow), //wirelint:allow hotpathflow flow label formatted once per sampled packet on traced runs only
		NIC: nic, Queue: queue, Len: frameLen,
		Stamps: []StageStamp{{Stage: StageWire, At: ts}}, //wirelint:allow hotpath per sampled packet on traced runs only
	})
	r.pending = int32(len(r.pkts) - 1)
}

// PendingDrop drops the packet parked by PktArrive (or an unsampled
// one: the ledger entry is written either way).
//
//wirecap:hotpath
func (r *Recorder) PendingDrop(cause DropCause, nic, queue int, ts vtime.Time) {
	if r == nil {
		return
	}
	pkt := int64(-1)
	if r.pending >= 0 {
		pkt = int64(r.pkts[r.pending].ID)
		r.finish(r.pending, cause, ts)
		r.pending = -1
	}
	r.ledger(cause, nic, queue, pkt, 1, ts)
}

// DropN records n untraced packet drops (link down, MAC filter —
// causes that fire before the frame is decoded, so no trace exists).
//
//wirecap:hotpath
func (r *Recorder) DropN(cause DropCause, nic, queue int, n uint64, ts vtime.Time) {
	if r == nil || n == 0 {
		return
	}
	r.ledger(cause, nic, queue, -1, n, ts)
}

// PktDMA binds the pending arrival to ring descriptor desc and stamps
// the DMA write.
//
//wirecap:hotpath
func (r *Recorder) PktDMA(nic, ring, desc int, ts vtime.Time) {
	if r == nil || r.pending < 0 {
		return
	}
	r.stamp(r.pending, StageDMAWrite, ts)
	r.byDesc[descKey{nic, ring, desc}] = r.pending
	r.pending = -1
}

// ---- engine hooks -------------------------------------------------

// DescDrop drops the packet bound to a descriptor (delivery-FIFO
// overflow, corrupt tombstone) and writes the ledger entry.
//
//wirecap:hotpath
func (r *Recorder) DescDrop(cause DropCause, nic, ring, desc int, ts vtime.Time) {
	if r == nil {
		return
	}
	k := descKey{nic, ring, desc}
	pkt := int64(-1)
	if pi, ok := r.byDesc[k]; ok {
		pkt = int64(r.pkts[pi].ID)
		r.finish(pi, cause, ts)
		delete(r.byDesc, k)
	}
	r.ledger(cause, nic, ring, pkt, 1, ts)
}

// DescToFifo records the copy of a descriptor's frame into an
// engine-side slot (Type-I kernel copy, PSIOE user copy): the trace
// moves from descriptor to slot ownership and gains a copy stamp.
//
//wirecap:hotpath
func (r *Recorder) DescToFifo(nic, ring, desc, slot int, ts vtime.Time) {
	if r == nil {
		return
	}
	k := descKey{nic, ring, desc}
	pi, ok := r.byDesc[k]
	if !ok {
		return
	}
	delete(r.byDesc, k)
	r.stamp(pi, StageCopy, ts)
	r.byFifo[fifoKey{nic, ring, slot}] = pi
}

// FifoDeliver records delivery of an engine-slot packet to the handler
// and queues it for the matching Processed stamp.
//
//wirecap:hotpath
func (r *Recorder) FifoDeliver(nic, ring, slot int, ts vtime.Time) {
	if r == nil {
		return
	}
	k := fifoKey{nic, ring, slot}
	pi, ok := r.byFifo[k]
	if !ok {
		return
	}
	delete(r.byFifo, k)
	r.deliver(pi, nic, ring, ts)
}

// DescDeliver records zero-copy delivery straight from the descriptor
// (Type-II engines: the app reads the DMA buffer in place).
//
//wirecap:hotpath
func (r *Recorder) DescDeliver(nic, ring, desc int, ts vtime.Time) {
	if r == nil {
		return
	}
	k := descKey{nic, ring, desc}
	pi, ok := r.byDesc[k]
	if !ok {
		return
	}
	delete(r.byDesc, k)
	r.deliver(pi, nic, ring, ts)
}

//wirecap:hotpath
func (r *Recorder) deliver(pi int32, nic, queue int, ts vtime.Time) {
	r.stamp(pi, StageDeliver, ts)
	pk := procKey{nic, queue}
	r.proc[pk] = append(r.proc[pk], pi) //wirelint:allow hotpath per sampled packet on traced runs only
}

// DescClaim transfers descriptor ownership to a caller-held token
// (DPDK mbufs, whose staging queues reindex as they drain, so slot
// keys cannot name them). Returns the token: trace index + 1, 0 when
// the descriptor carries no trace. Stamps nothing.
//
//wirecap:hotpath
func (r *Recorder) DescClaim(nic, ring, desc int, ts vtime.Time) int32 {
	if r == nil {
		return 0
	}
	k := descKey{nic, ring, desc}
	pi, ok := r.byDesc[k]
	if !ok {
		return 0
	}
	delete(r.byDesc, k)
	return pi + 1
}

// IDDeliver stamps delivery for a DescClaim token.
//
//wirecap:hotpath
func (r *Recorder) IDDeliver(tid int32, ts vtime.Time) {
	if r == nil || tid == 0 {
		return
	}
	r.stamp(tid-1, StageDeliver, ts)
}

// IDProcessed stamps handler completion for a DescClaim token.
//
//wirecap:hotpath
func (r *Recorder) IDProcessed(tid int32, ts vtime.Time) {
	if r == nil || tid == 0 {
		return
	}
	r.stamp(tid-1, StageProcessed, ts)
}

// Processed stamps handler completion for the oldest delivered-but-
// unprocessed packet on (nic, queue). With one handler thread per
// queue (the configuration every CI scenario runs) delivery order is
// completion order, so the FIFO match is exact; with more threads it
// is an order approximation over the same set of packets.
//
//wirecap:hotpath
func (r *Recorder) Processed(nic, queue int, ts vtime.Time) {
	if r == nil {
		return
	}
	pk := procKey{nic, queue}
	q := r.proc[pk]
	if len(q) == 0 {
		return
	}
	pi := q[0]
	r.proc[pk] = q[1:]
	r.stamp(pi, StageProcessed, ts)
}

// ---- WireCAP chunk hooks ------------------------------------------
//
// Chunk identity: callers fold a mem.ChunkID into
// uint64(ring)<<32 | uint64(chunk) and pass the NIC separately, so obs
// needs no dependency on internal/mem.

// ChunkID folds a (ring, chunk) pair into the recorder's chunk key.
func ChunkID(ring, chunk int) uint64 {
	return uint64(uint32(ring))<<32 | uint64(uint32(chunk))
}

// DescToCell binds a descriptor's packet to a chunk cell (WireCAP's
// onRx: the descriptor's buffer IS the cell, so this is the
// "descriptor ready / consumed" transition, not a copy).
//
//wirecap:hotpath
func (r *Recorder) DescToCell(nic, ring, desc int, chunk uint64, cell int, ts vtime.Time) {
	if r == nil {
		return
	}
	k := descKey{nic, ring, desc}
	pi, ok := r.byDesc[k]
	if !ok {
		return
	}
	delete(r.byDesc, k)
	r.stamp(pi, StageDescReady, ts)
	r.byCell[cellKey{nic, chunk, cell}] = pi
	ck := chunkKey{nic, chunk}
	r.cells[ck] = append(r.cells[ck], cellEntry{cell: cell, pkt: pi}) //wirelint:allow hotpath per sampled packet on traced runs only
}

// CellMove records flush compaction: the packet in (fromChunk,
// fromCell) is copied into (toChunk, toCell) and gains a copy stamp.
//
//wirecap:hotpath
func (r *Recorder) CellMove(nic int, fromChunk uint64, fromCell int, toChunk uint64, toCell int, ts vtime.Time) {
	if r == nil {
		return
	}
	fk := cellKey{nic, fromChunk, fromCell}
	pi, ok := r.byCell[fk]
	if !ok {
		return
	}
	delete(r.byCell, fk)
	fck := chunkKey{nic, fromChunk}
	ents := r.cells[fck]
	for i := range ents {
		if ents[i].cell == fromCell {
			ents[i] = ents[len(ents)-1]
			r.cells[fck] = ents[:len(ents)-1]
			break
		}
	}
	if len(r.cells[fck]) == 0 {
		delete(r.cells, fck)
	}
	r.stamp(pi, StageCopy, ts)
	r.byCell[cellKey{nic, toChunk, toCell}] = pi
	tck := chunkKey{nic, toChunk}
	r.cells[tck] = append(r.cells[tck], cellEntry{cell: toCell, pkt: pi}) //wirelint:allow hotpath per sampled packet on traced runs only
}

// ChunkStage stamps a stage (typically StageChunkHandoff) on every
// undelivered packet still bound to the chunk.
//
//wirecap:hotpath
func (r *Recorder) ChunkStage(nic int, chunk uint64, s Stage, ts vtime.Time) {
	if r == nil {
		return
	}
	ents := r.cells[chunkKey{nic, chunk}]
	for i := range ents {
		if !ents[i].delivered {
			r.stamp(ents[i].pkt, s, ts)
		}
	}
}

// CellDeliver records delivery of one chunk cell to a handler thread
// on (procNIC, procQueue) and queues it for its Processed stamp.
//
//wirecap:hotpath
func (r *Recorder) CellDeliver(nic int, chunk uint64, cell int, procNIC, procQueue int, ts vtime.Time) {
	if r == nil {
		return
	}
	ck := chunkKey{nic, chunk}
	ents := r.cells[ck]
	for i := range ents {
		if ents[i].cell == cell {
			ents[i].delivered = true
			r.deliver(ents[i].pkt, procNIC, procQueue, ts)
			return
		}
	}
}

// ChunkDrop drops every undelivered packet still bound to the chunk
// (reclamation, quarantine backlog) and writes one ledger record
// covering count packets. count may exceed the traced cells — the
// ledger counts all packets, traces only sampled ones.
//
//wirecap:hotpath
func (r *Recorder) ChunkDrop(cause DropCause, nic, queue int, chunk uint64, count uint64, ts vtime.Time) {
	if r == nil {
		return
	}
	ck := chunkKey{nic, chunk}
	ents := r.cells[ck]
	kept := ents[:0]
	var pkt int64 = -1
	for i := range ents {
		e := ents[i]
		if e.delivered {
			kept = append(kept, e) //wirelint:allow hotpath compaction reuses the backing array via kept[:0]
			continue
		}
		if pkt == -1 {
			pkt = int64(r.pkts[e.pkt].ID)
		}
		r.finish(e.pkt, cause, ts)
		delete(r.byCell, cellKey{nic, chunk, e.cell})
	}
	if len(kept) == 0 {
		delete(r.cells, ck)
	} else {
		r.cells[ck] = kept
	}
	if count > 0 {
		r.ledger(cause, nic, queue, pkt, count, ts)
	}
}

// ChunkRecycle stamps recycle on every packet still bound to the chunk
// and forgets the chunk (end of those packets' traces).
//
//wirecap:hotpath
func (r *Recorder) ChunkRecycle(nic int, chunk uint64, ts vtime.Time) {
	if r == nil {
		return
	}
	ck := chunkKey{nic, chunk}
	ents := r.cells[ck]
	for i := range ents {
		r.stamp(ents[i].pkt, StageRecycle, ts)
		delete(r.byCell, cellKey{nic, chunk, ents[i].cell})
	}
	delete(r.cells, ck)
}

// AbandonQueue finalizes (with a drop stamp, but NO ledger entry —
// the metrics counters do not count these either) every trace still
// bound to a descriptor of (nic, ring). Quarantine invalidates the
// ring wholesale; packets DMA'd but never consumed simply cease to
// exist. Map iteration order is irrelevant: each trace is finalized
// independently and the export sorts by packet id.
func (r *Recorder) AbandonQueue(cause DropCause, nic, ring int, ts vtime.Time) {
	if r == nil {
		return
	}
	for k, pi := range r.byDesc {
		if k.nic != nic || k.ring != ring {
			continue
		}
		r.finish(pi, cause, ts)
		delete(r.byDesc, k)
	}
}

// ---- fault, action, and profiler hooks ----------------------------

// FaultOpen opens a fault window (queue == -1 for NIC-scoped faults)
// and returns its id.
func (r *Recorder) FaultOpen(kind string, nic, queue int, ts vtime.Time) int32 {
	if r == nil {
		return -1
	}
	id := int32(len(r.windows))
	r.windows = append(r.windows, FaultWindow{
		ID: id, Kind: kind, NIC: nic, Queue: queue, Open: ts, Close: -1,
	})
	return id
}

// FaultClose closes the oldest open window matching (kind, nic, queue).
func (r *Recorder) FaultClose(kind string, nic, queue int, ts vtime.Time) {
	if r == nil {
		return
	}
	for i := range r.windows {
		w := &r.windows[i]
		if w.Close < 0 && w.Kind == kind && w.NIC == nic && w.Queue == queue {
			w.Close = ts
			return
		}
	}
}

// Action records an annotated recovery/pool event. kind must be a
// constant string at the call site (no fmt on hot paths).
//
//wirecap:hotpath
func (r *Recorder) Action(kind string, nic, queue int, arg int64, ts vtime.Time) {
	if r == nil {
		return
	}
	r.actions = append(r.actions, ActionRecord{At: ts, Kind: kind, NIC: nic, Queue: queue, Arg: arg}) //wirelint:allow hotpath action journal grows amortized; recorder is opt-in per run
}

// StageCost charges d virtual nanoseconds to the (engine, queue,
// stage) profiler bucket. Call it where the simulator charges the
// matching virtual cost; engine and stage must be constant strings.
//
//wirecap:hotpath
func (r *Recorder) StageCost(engine string, queue int, stage string, d vtime.Time) {
	if r == nil {
		return
	}
	k := profKey{engine, queue, stage}
	e := r.prof[k]
	if e == nil {
		e = &profEntry{} //wirelint:allow hotpath one entry per (engine, queue, stage); reused thereafter
		r.prof[k] = e
	}
	e.ns += d
	e.count++
}

// DropTotal returns the complete per-cause drop count (maintained even
// when the ledger's record list is capped).
func (r *Recorder) DropTotal(c DropCause) uint64 {
	if r == nil {
		return 0
	}
	return r.dropTotals[c]
}
