package obs

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/packet"
	"repro/internal/vtime"
)

// TestJourneyLifecycleAndStitch walks one sampled packet through the
// full fleet path — steer, capture, batch close, link transfer on the
// host recorder; merge emission on the aggregator recorder — merges the
// two records and checks the stitcher joins them into one end-to-end
// journey with the merge stamp on the aggregator lane (Host -1).
func TestJourneyLifecycleAndStitch(t *testing.T) {
	hostRec := testRecorder(8)
	aggRec := testRecorder(8)
	f := flow(0) // SrcPort 1000 ≡ 0 (mod 8): sampled

	hostRec.JourneySteer(3, f, 1, 100)
	hostRec.JourneyCapture(41, 200)
	hostRec.JourneyEnqueue(41, 300)
	hostRec.JourneyLink(41, 400)
	aggRec.FleetEmit(3, 41, 500)

	hr := hostRec.Record("j", 1000)
	hr.Tag(4) // host 3 on lane 4
	ar := aggRec.Record("j", 1000)
	ar.Tag(0)
	rec := MergeRecords("j", 1000, []Record{ar, hr})
	rec.StitchJourneys()

	if len(rec.Journeys) != 1 {
		t.Fatalf("journeys = %d, want 1", len(rec.Journeys))
	}
	j := rec.Journeys[0]
	if j.Host != 3 || j.Seq != 41 || j.Drop != "" {
		t.Fatalf("journey = %+v, want host 3 seq 41 undropped", j)
	}
	wantStages := []Stage{StageSteer, StageHostIngress, StageAggEnqueue, StageAggLink, StageMergeEmit}
	if len(j.Stamps) != len(wantStages) {
		t.Fatalf("stamps = %d, want %d (%+v)", len(j.Stamps), len(wantStages), j.Stamps)
	}
	for i, s := range j.Stamps {
		if s.Stage != wantStages[i] {
			t.Fatalf("stamp %d stage = %s, want %s", i, s.Stage, wantStages[i])
		}
	}
	if j.Stamps[4].Host != -1 {
		t.Fatalf("merge stamp host = %d, want -1 (aggregator lane)", j.Stamps[4].Host)
	}
	for i := 1; i < len(j.Stamps); i++ {
		if j.Stamps[i].At < j.Stamps[i-1].At {
			t.Fatalf("stamps out of time order: %+v", j.Stamps)
		}
	}
}

// TestJourneySamplingAndTermination pins the edge rules: unsampled
// flows record nothing, a pre-capture drop terminates the pending
// journey, a host-side loss unbinds the sequence, and an aggregator
// reject sets the terminal cause through the stitcher.
func TestJourneySamplingAndTermination(t *testing.T) {
	r := testRecorder(8)

	r.JourneySteer(0, flow(1), 1, 100) // SrcPort 1001: unsampled
	r.JourneyCapture(7, 150)
	if got := len(r.journeys); got != 0 {
		t.Fatalf("unsampled flow recorded %d journeys", got)
	}

	r.JourneySteer(0, flow(0), 1, 200)
	r.JourneyDrop(DropHostBrownoutShed, 210)
	r.JourneySteer(0, flow(0), 2, 300)
	r.JourneyCapture(8, 310)
	r.JourneyLost(8, DropHostLostCrash, 320)
	r.JourneyEnqueue(8, 330) // after loss: must not stamp
	r.JourneySteer(0, flow(0), 3, 400)
	r.JourneyCapture(9, 410)
	r.JourneyEnqueue(9, 420)
	r.JourneyLink(9, 430)

	agg := testRecorder(8)
	agg.FleetReject(0, 9, 500)

	hr := r.Record("j", 1000)
	hr.Tag(1)
	ar := agg.Record("j", 1000)
	ar.Tag(0)
	rec := MergeRecords("j", 1000, []Record{ar, hr})
	rec.StitchJourneys()

	if len(rec.Journeys) != 3 {
		t.Fatalf("journeys = %d, want 3", len(rec.Journeys))
	}
	byDrop := map[string]int{}
	for _, j := range rec.Journeys {
		byDrop[j.Drop]++
	}
	for _, cause := range []DropCause{DropHostBrownoutShed, DropHostLostCrash, DropStalenessReject} {
		if byDrop[cause.String()] != 1 {
			t.Fatalf("drop causes = %v, want one %s", byDrop, cause)
		}
	}
	for _, j := range rec.Journeys {
		if j.Seq == 8 && len(j.Stamps) != 3 { // steer, ingress, drop — no post-loss enqueue
			t.Fatalf("lost journey stamped after termination: %+v", j.Stamps)
		}
	}
}

// TestJourneyTruncationBounded: the journey table is bounded by
// MaxJourneys; overflow counts into TruncatedJourneys instead of
// growing without limit.
func TestJourneyTruncationBounded(t *testing.T) {
	r := New(Config{
		FlowHash:    func(packet.FlowKey) uint32 { return 0 }, // every flow sampled
		SampleEvery: 1,
		MaxJourneys: 2,
	})
	for i := uint64(0); i < 5; i++ {
		r.JourneySteer(0, flow(0), i, vtime.Time(100*i+100))
	}
	rec := r.Record("j", 1000)
	if len(rec.Journeys) != 2 {
		t.Fatalf("journeys = %d, want the MaxJourneys bound 2", len(rec.Journeys))
	}
	if rec.TruncatedJourneys != 3 {
		t.Fatalf("TruncatedJourneys = %d, want 3", rec.TruncatedJourneys)
	}
}

// TestWriteJourneysDeterministicAndReSteerSection: the dump renders
// byte-identically on repeated calls, and a flow whose journeys ran on
// two hosts appears in the re-steer section.
func TestWriteJourneysDeterministicAndReSteerSection(t *testing.T) {
	h0 := testRecorder(8)
	h1 := testRecorder(8)
	f := flow(0)
	h0.JourneySteer(0, f, 1, 100)
	h0.JourneyCapture(1, 110)
	h1.JourneySteer(1, f, 2, 900)
	h1.JourneyCapture(1, 910)

	r0 := h0.Record("j", 2000)
	r0.Tag(1)
	r1 := h1.Record("j", 2000)
	r1.Tag(2)
	rec := MergeRecords("j", 2000, []Record{r0, r1})
	rec.StitchJourneys()

	fj := rec.FlowJourneys()
	if len(fj) != 1 || len(fj[0].Hosts) != 2 {
		t.Fatalf("FlowJourneys = %+v, want one flow on two hosts", fj)
	}
	var a, b bytes.Buffer
	if err := rec.WriteJourneys(&a); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteJourneys(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("WriteJourneys is not deterministic")
	}
	if !strings.Contains(a.String(), "-- flows crossing a re-steer --") {
		t.Fatalf("dump lacks the re-steer section:\n%s", a.String())
	}
	if !strings.Contains(a.String(), "hosts 0->1") {
		t.Fatalf("dump lacks the host path 0->1:\n%s", a.String())
	}
}

// TestFleetLedgerBucketsAndSums: DropN records bucket into
// host × cause × interval cells and SumCause re-derives per-host and
// fleet-wide totals exactly.
func TestFleetLedgerBucketsAndSums(t *testing.T) {
	r := testRecorder(8)
	iv := vtime.Time(1000)
	r.DropN(DropHostLostCrash, 2, -1, 10, 500)   // host 2, interval 0
	r.DropN(DropHostLostCrash, 2, -1, 4, 1500)   // host 2, interval 1
	r.DropN(DropInFlightHeadDrop, 3, -1, 7, 500) // host 3, interval 0
	r.DropN(DropStalenessReject, 2, -1, 1, 2500) // host 2, interval 2
	rec := r.Record("l", 3000)

	led := rec.FleetLedger(iv)
	if len(led) != 4 {
		t.Fatalf("ledger entries = %d, want 4: %+v", len(led), led)
	}
	if got := SumCause(led, DropHostLostCrash, 2); got != 14 {
		t.Fatalf("host 2 crash sum = %d, want 14", got)
	}
	if got := SumCause(led, DropHostLostCrash, -1); got != 14 {
		t.Fatalf("fleet crash sum = %d, want 14", got)
	}
	if got := SumCause(led, DropInFlightHeadDrop, 3); got != 7 {
		t.Fatalf("host 3 headdrop sum = %d, want 7", got)
	}
	if got := SumCause(led, DropStalenessReject, 3); got != 0 {
		t.Fatalf("host 3 stale sum = %d, want 0", got)
	}
	// Entries are sorted by (host, cause, interval) for stable rendering.
	for i := 1; i < len(led); i++ {
		a, b := led[i-1], led[i]
		if a.Host > b.Host || (a.Host == b.Host && a.Cause > b.Cause) ||
			(a.Host == b.Host && a.Cause == b.Cause && a.Interval >= b.Interval) {
			t.Fatalf("ledger not in canonical order: %+v", led)
		}
	}
}
