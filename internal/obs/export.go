package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/vtime"
)

// Record is the recorder's full state, frozen for export. Every slice
// is in a deterministic order (packets by arrival id, drops and
// actions in event order, the profile sorted by key), so marshaling a
// Record — and therefore the Chrome export built from it — is
// byte-identical across identical seeded runs.
type Record struct {
	Scenario    string     `json:"scenario"`
	End         vtime.Time `json:"end_ns"`
	SampleEvery uint32     `json:"sample_every"`
	// Domain is the time domain that produced this record, when it is a
	// per-domain slice of a fleet run (see Tag / MergeRecords). 0 — and
	// omitted from JSON — for ordinary single-domain records, keeping
	// their exports byte-identical.
	Domain int `json:"domain,omitempty"`

	Packets      []PacketTrace       `json:"packets"`
	Drops        []DropRecord        `json:"drops"`
	DropTotals   map[string]uint64   `json:"drop_totals"`
	StageProfile []StageProfileEntry `json:"stage_profile"`
	FaultWindows []FaultWindow       `json:"fault_windows"`
	Actions      []ActionRecord      `json:"actions"`

	// TruncatedPackets / TruncatedDrops count sampled packets and drop
	// records that were NOT kept because MaxPackets / MaxDrops was hit
	// (drop_totals stays complete regardless). Nonzero values mean the
	// packet list / drop list is a prefix, not the whole story.
	TruncatedPackets uint64 `json:"truncated_packets"`
	TruncatedDrops   uint64 `json:"truncated_drops"`

	// Fleet plane (all empty — and elided from JSON — outside fleet
	// runs, keeping single-host exports byte-identical to before).
	Journeys          []Journey      `json:"journeys,omitempty"`
	FleetEvents       []FleetEvent   `json:"fleet_events,omitempty"`
	TruncatedJourneys uint64         `json:"truncated_journeys,omitempty"`
	Health            []HealthSeries `json:"health,omitempty"`
}

// Record freezes the recorder's state. The recorder stays usable (the
// snapshot copies nothing it later mutates in place, except the stamp
// slices, which only grow).
func (r *Recorder) Record(scenario string, end vtime.Time) Record {
	rec := Record{
		Scenario:         scenario,
		End:              end,
		SampleEvery:      1,
		DropTotals:       map[string]uint64{},
		TruncatedPackets: 0,
		TruncatedDrops:   0,
	}
	if r == nil {
		return rec
	}
	rec.SampleEvery = r.cfg.SampleEvery
	rec.Packets = r.pkts
	rec.Drops = r.drops
	rec.TruncatedPackets = r.truncPk
	rec.TruncatedDrops = r.truncDrops
	for c := DropCause(0); c < numCauses; c++ {
		if r.dropTotals[c] > 0 {
			rec.DropTotals[c.String()] = r.dropTotals[c]
		}
	}
	for k, e := range r.prof {
		rec.StageProfile = append(rec.StageProfile, StageProfileEntry{
			Engine: k.engine, Queue: k.queue, Stage: k.stage, Ns: e.ns, Count: e.count,
		})
	}
	sort.Slice(rec.StageProfile, func(i, j int) bool {
		a, b := rec.StageProfile[i], rec.StageProfile[j]
		if a.Engine != b.Engine {
			return a.Engine < b.Engine
		}
		if a.Queue != b.Queue {
			return a.Queue < b.Queue
		}
		return a.Stage < b.Stage
	})
	rec.FaultWindows = r.windows
	rec.Actions = r.actions
	rec.Journeys = r.journeys
	rec.FleetEvents = r.fleetEvts
	rec.TruncatedJourneys = r.truncJ
	return rec
}

// chromeEvent is one Chrome trace-event (about:tracing / Perfetto
// "JSON Array with metadata" format).
type chromeEvent struct {
	Name string     `json:"name"`
	Ph   string     `json:"ph"`
	TS   float64    `json:"ts"` // microseconds
	Dur  float64    `json:"dur,omitempty"`
	PID  int        `json:"pid"` // NIC id
	TID  int        `json:"tid"` // queue / ring id
	S    string     `json:"s,omitempty"`
	Args chromeArgs `json:"args"`
}

type chromeArgs struct {
	Pkt   int64  `json:"pkt,omitempty"`
	Flow  string `json:"flow,omitempty"`
	Cause string `json:"cause,omitempty"`
	Count uint64 `json:"count,omitempty"`
	Arg   int64  `json:"arg,omitempty"`
}

type chromeFile struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
	OtherData       Record        `json:"otherData"`
}

func us(t vtime.Time) float64 { return float64(t) / 1e3 }

// chromeEvents flattens the record into trace events: one duration
// slice per stage transition of each sampled packet (named after the
// stage the packet reached, spanning the wait to reach it), one slice
// per fault window, and instants for drops and recovery actions.
func (rec *Record) chromeEvents() []chromeEvent {
	var evs []chromeEvent
	for i := range rec.Packets {
		p := &rec.Packets[i]
		for j := 1; j < len(p.Stamps); j++ {
			prev, cur := p.Stamps[j-1], p.Stamps[j]
			evs = append(evs, chromeEvent{
				Name: cur.Stage.String(), Ph: "X",
				TS: us(prev.At), Dur: us(cur.At - prev.At),
				PID: p.NIC, TID: p.Queue,
				Args: chromeArgs{Pkt: int64(p.ID), Flow: p.FlowS, Cause: p.Drop},
			})
		}
	}
	for _, w := range rec.FaultWindows {
		end := w.Close
		if end < 0 {
			end = rec.End
		}
		tid := w.Queue
		if tid < 0 {
			tid = 0
		}
		evs = append(evs, chromeEvent{
			Name: "fault:" + w.Kind, Ph: "X",
			TS: us(w.Open), Dur: us(end - w.Open),
			PID: w.NIC, TID: tid,
			Args: chromeArgs{Arg: int64(w.ID)},
		})
	}
	for _, d := range rec.Drops {
		tid := d.Queue
		if tid < 0 {
			tid = 0
		}
		evs = append(evs, chromeEvent{
			Name: "drop:" + d.Cause, Ph: "i", TS: us(d.At),
			PID: d.NIC, TID: tid, S: "t",
			Args: chromeArgs{Pkt: d.Pkt, Cause: d.Cause, Count: d.Count, Arg: int64(d.Fault)},
		})
	}
	for _, a := range rec.Actions {
		tid := a.Queue
		if tid < 0 {
			tid = 0
		}
		evs = append(evs, chromeEvent{
			Name: "action:" + a.Kind, Ph: "i", TS: us(a.At),
			PID: a.NIC, TID: tid, S: "t",
			Args: chromeArgs{Arg: a.Arg},
		})
	}
	// Fleet journeys: per-host tracks plus a fleet merge lane. Each
	// stamp-to-stamp hop is a duration slice on the track of the host
	// that owns the destination stamp; aggregation-side stamps
	// (Host == -1) land on the merge lane, so a stitched journey reads
	// as a slice chain hopping from its host's track to the fleet lane.
	for i := range rec.Journeys {
		j := &rec.Journeys[i]
		for k := 1; k < len(j.Stamps); k++ {
			prev, cur := j.Stamps[k-1], j.Stamps[k]
			pid := cur.Host
			if pid < 0 {
				pid = chromeMergeLane
			}
			evs = append(evs, chromeEvent{
				Name: cur.Stage.String(), Ph: "X",
				TS: us(prev.At), Dur: us(cur.At - prev.At),
				PID: pid, TID: 0,
				Args: chromeArgs{Flow: j.FlowS, Arg: int64(j.Seq), Cause: j.Drop},
			})
		}
	}
	return evs
}

// chromeMergeLane is the PID of the fleet merge lane — far above any
// host id, so aggregation-side journey slices get their own track.
const chromeMergeLane = 65536

// WriteChrome writes the record as Chrome trace-event JSON. The full
// Record rides along under "otherData", so one file feeds both the
// Chrome/Perfetto UI and cmd/wiretrace (via ReadRecord). Output is
// deterministic: struct-ordered fields, sorted map keys, and
// pre-sorted slices.
func (rec *Record) WriteChrome(w io.Writer) error {
	f := chromeFile{
		DisplayTimeUnit: "ns",
		TraceEvents:     rec.chromeEvents(),
		OtherData:       *rec,
	}
	b, err := json.MarshalIndent(&f, "", " ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadRecord parses a WriteChrome export back into its Record.
func ReadRecord(r io.Reader) (Record, error) {
	var f chromeFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return Record{}, fmt.Errorf("obs: parsing trace: %w", err)
	}
	return f.OtherData, nil
}

// WriteForensics writes the human-readable forensics report: drop
// totals with their typed causes, the ledger, fault windows, recovery
// actions, and the per-stage virtual-time profile.
func (rec *Record) WriteForensics(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.printf("== drop forensics: %s (end %dns) ==\n", rec.Scenario, rec.End)
	bw.printf("sampling: 1/%d flows traced, %d packet traces", rec.SampleEvery, len(rec.Packets))
	if rec.TruncatedPackets > 0 {
		bw.printf(" (+%d sampled past cap, untraced)", rec.TruncatedPackets)
	}
	bw.printf("\n\n-- drop totals by cause --\n")
	if len(rec.DropTotals) == 0 {
		bw.printf("(no drops)\n")
	}
	keys := make([]string, 0, len(rec.DropTotals))
	for k := range rec.DropTotals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		bw.printf("%-20s %d\n", k, rec.DropTotals[k])
	}

	bw.printf("\n-- drop ledger (%d records", len(rec.Drops))
	if rec.TruncatedDrops > 0 {
		bw.printf(", %d past cap uncounted here but in totals", rec.TruncatedDrops)
	}
	bw.printf(") --\n")
	for _, d := range rec.Drops {
		bw.printf("%12dns  %-20s nic=%d queue=%-2d count=%-5d", d.At, d.Cause, d.NIC, d.Queue, d.Count)
		if d.Pkt >= 0 {
			bw.printf(" pkt=%d", d.Pkt)
		}
		if d.Fault >= 0 {
			bw.printf(" fault=%d", d.Fault)
		}
		bw.printf("\n")
	}

	bw.printf("\n-- fault windows --\n")
	if len(rec.FaultWindows) == 0 {
		bw.printf("(none)\n")
	}
	for _, f := range rec.FaultWindows {
		bw.printf("#%-3d %-14s nic=%d queue=%-2d open=%dns", f.ID, f.Kind, f.NIC, f.Queue, f.Open)
		if f.Close >= 0 {
			bw.printf(" close=%dns", f.Close)
		} else {
			bw.printf(" close=(never)")
		}
		bw.printf("\n")
	}

	bw.printf("\n-- recovery / pool actions --\n")
	if len(rec.Actions) == 0 {
		bw.printf("(none)\n")
	}
	for _, a := range rec.Actions {
		bw.printf("%12dns  %-16s nic=%d queue=%-2d arg=%d\n", a.At, a.Kind, a.NIC, a.Queue, a.Arg)
	}

	bw.printf("\n-- stage profile (virtual ns by engine/queue/stage) --\n")
	for _, e := range rec.StageProfile {
		bw.printf("%-12s q%-2d %-14s %12dns  x%d\n", e.Engine, e.Queue, e.Stage, e.Ns, e.Count)
	}
	return bw.err
}

// WriteTimeline writes one packet's full stage timeline.
func (rec *Record) WriteTimeline(w io.Writer, p *PacketTrace) error {
	bw := &errWriter{w: w}
	bw.printf("packet %d: %s  nic=%d queue=%d len=%d hash=%08x\n",
		p.ID, p.FlowS, p.NIC, p.Queue, p.Len, p.Hash)
	var prev vtime.Time
	for i, s := range p.Stamps {
		if i == 0 {
			bw.printf("  %12dns  %-14s\n", s.At, s.Stage)
		} else {
			bw.printf("  %12dns  %-14s (+%dns)\n", s.At, s.Stage, s.At-prev)
		}
		prev = s.At
	}
	if p.Drop != "" {
		bw.printf("  dropped: %s\n", p.Drop)
	}
	return bw.err
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
