package obs

import (
	"io"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/vtime"
)

// This file is the deterministic health time-series (DESIGN.md §14): a
// virtual-clock interval sampler over a private metrics.Registry,
// producing a bounded ring of per-interval deltas via
// metrics.Snapshot/Sub.
//
// Determinism argument: the sampler schedules nothing. It is driven
// entirely by Observe(now) calls placed at the head of the events that
// mutate the sampled counters, and flushes every interval that ended
// strictly before now's interval — so by the time interval i is
// flushed, every mutation timestamped inside it has been applied and no
// later mutation has. Because each lane samples a registry owned by a
// single simulation actor (one host, or the aggregator), the counter
// values at each interval boundary are a pure function of that actor's
// event history, which the conservative executive fixes independent of
// domain placement — the series is byte-identical across -domains, and
// ci-gate gates it. A timer-driven sampler would instead extend the
// event queue and perturb run end times; this one cannot.

// HealthValue is one nonzero series delta inside an interval. Counter
// and histogram-count series carry the interval delta; gauges carry the
// value observed at the interval's flush.
type HealthValue struct {
	Name string `json:"name"`
	V    int64  `json:"v"`
}

// HealthDelta is one interval's observations. Intervals with no nonzero
// values are elided, so Index is explicit and may be sparse.
type HealthDelta struct {
	Index  int           `json:"interval"`
	EndNs  vtime.Time    `json:"end_ns"`
	Values []HealthValue `json:"values"`
}

// HealthSeries is one lane's full time-series: a host ("host3"), the
// aggregator ("agg"), or the fleet-wide sum ("fleet").
type HealthSeries struct {
	Lane       string        `json:"lane"`
	IntervalNs vtime.Time    `json:"interval_ns"`
	Deltas     []HealthDelta `json:"deltas"`
	// DroppedIntervals counts deltas evicted from the bounded ring
	// (oldest first) when a run outlives MaxIntervals.
	DroppedIntervals uint64 `json:"dropped_intervals,omitempty"`
}

// HealthSampler produces one lane's HealthSeries. A nil *HealthSampler
// is a valid disabled sampler: Observe and Finish are free no-ops, the
// same contract as a nil *Recorder.
type HealthSampler struct {
	lane     string
	reg      *metrics.Registry
	interval vtime.Time
	max      int

	prev    metrics.Snapshot
	cursor  int // next interval index to flush
	deltas  []HealthDelta
	dropped uint64
}

// NewHealthSampler builds a sampler over reg with the given interval
// (default 250µs) keeping at most maxIntervals deltas (default 4096).
func NewHealthSampler(lane string, reg *metrics.Registry, interval vtime.Time, maxIntervals int) *HealthSampler {
	if interval <= 0 {
		interval = 250 * vtime.Microsecond
	}
	if maxIntervals <= 0 {
		maxIntervals = 4096
	}
	return &HealthSampler{lane: lane, reg: reg, interval: interval, max: maxIntervals}
}

// Observe flushes every interval that ended at or before now's
// interval start. Call it at the head of every event that mutates the
// sampled counters; mutations the event applies afterward land in
// now's own (still-open) interval.
func (s *HealthSampler) Observe(now vtime.Time) {
	if s == nil {
		return
	}
	b := int(now / s.interval)
	for s.cursor < b {
		s.flush()
	}
}

// Finish flushes through the interval containing end (the run's global
// virtual end time), closing the final partial interval.
func (s *HealthSampler) Finish(end vtime.Time) {
	if s == nil {
		return
	}
	b := int(end/s.interval) + 1
	for s.cursor < b {
		s.flush()
	}
}

// flush closes interval s.cursor: snapshot, subtract the previous
// boundary snapshot, keep the nonzero values.
func (s *HealthSampler) flush() {
	end := vtime.Time(s.cursor+1) * s.interval
	cur := s.reg.Snapshot(end)
	d := cur.Sub(s.prev)
	s.prev = cur
	hd := HealthDelta{Index: s.cursor, EndNs: end}
	s.cursor++
	for _, sv := range d.Series {
		var v int64
		switch sv.Kind {
		case metrics.KindCounter.String():
			v = int64(sv.Counter)
		case metrics.KindGauge.String():
			v = sv.Gauge
		case metrics.KindHistogram.String():
			if sv.Hist != nil {
				v = int64(sv.Hist.Count)
			}
		}
		if v == 0 {
			continue
		}
		hd.Values = append(hd.Values, HealthValue{Name: sv.Name + healthLabels(sv.Labels), V: v})
	}
	if len(hd.Values) == 0 {
		return // elide empty intervals; Index keeps the axis honest
	}
	if len(s.deltas) >= s.max {
		s.deltas = s.deltas[1:]
		s.dropped++
	}
	s.deltas = append(s.deltas, hd)
}

// Series freezes the sampler's output.
func (s *HealthSampler) Series() HealthSeries {
	if s == nil {
		return HealthSeries{}
	}
	return HealthSeries{
		Lane: s.lane, IntervalNs: s.interval,
		Deltas: s.deltas, DroppedIntervals: s.dropped,
	}
}

// healthLabels renders a label map in canonical sorted {k=v,...} form.
func healthLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(labels[k])
	}
	sb.WriteByte('}')
	return sb.String()
}

// MergeHealth sums per-lane series into one lane (the fleet-wide view):
// values with the same (interval, name) add across lanes. Every input
// must share the interval length. Deterministic: sorted by
// (interval, name).
func MergeHealth(lane string, lanes []HealthSeries) HealthSeries {
	out := HealthSeries{Lane: lane}
	type key struct {
		interval int
		name     string
	}
	sums := make(map[key]int64)
	ends := make(map[int]vtime.Time)
	for _, l := range lanes {
		if out.IntervalNs == 0 {
			out.IntervalNs = l.IntervalNs
		}
		out.DroppedIntervals += l.DroppedIntervals
		for _, d := range l.Deltas {
			ends[d.Index] = d.EndNs
			for _, v := range d.Values {
				sums[key{d.Index, v.Name}] += v.V
			}
		}
	}
	keys := make([]key, 0, len(sums))
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].interval != keys[j].interval {
			return keys[i].interval < keys[j].interval
		}
		return keys[i].name < keys[j].name
	})
	for _, k := range keys {
		n := len(out.Deltas)
		if n == 0 || out.Deltas[n-1].Index != k.interval {
			out.Deltas = append(out.Deltas, HealthDelta{Index: k.interval, EndNs: ends[k.interval]})
			n++
		}
		out.Deltas[n-1].Values = append(out.Deltas[n-1].Values, HealthValue{Name: k.name, V: sums[k]})
	}
	return out
}

// Value fetches one named value from a delta, 0 when absent.
func (d *HealthDelta) Value(name string) int64 {
	for _, v := range d.Values {
		if v.Name == name {
			return v.V
		}
	}
	return 0
}

// WriteHealth renders every lane's time-series in a stable text form
// (ci-gate byte-compares it across -domains settings).
func WriteHealth(w io.Writer, lanes []HealthSeries) error {
	bw := &errWriter{w: w}
	for _, l := range lanes {
		bw.printf("== lane %s (interval %dns, %d intervals", l.Lane, l.IntervalNs, len(l.Deltas))
		if l.DroppedIntervals > 0 {
			bw.printf(", %d evicted", l.DroppedIntervals)
		}
		bw.printf(") ==\n")
		for _, d := range l.Deltas {
			bw.printf("[%d] %dns:", d.Index, d.EndNs)
			for _, v := range d.Values {
				bw.printf(" %s=%d", v.Name, v.V)
			}
			bw.printf("\n")
		}
	}
	return bw.err
}
