package obs

import (
	"io"
	"sort"

	"repro/internal/packet"
	"repro/internal/vtime"
)

// This file is the cross-host half of the flight recorder (DESIGN.md
// §14): per-packet journeys through the fleet aggregation plane. A
// journey is opened at steering time on the owning host's recorder,
// stamped through capture, batching, and link transfer there, and —
// after the per-domain records merge — stitched with the aggregator
// recorder's merge/reject events into one end-to-end span list:
//
//	steer → host_ingress → agg_enqueue → agg_link → merge_emit
//
// with drop (host_lost_crash, host_lost_brownout_shed,
// in_flight_link_headdrop, staleness_reject, link_down) as the terminal
// stage wherever the packet died instead. Sampling follows the same
// per-flow Toeplitz rule as packet traces — keyed by the steering hash,
// so a sampled flow stays sampled across a re-steer, which is what lets
// the stitcher show the same flow's journeys on two hosts.
//
// Every hook is nil-safe and free on a nil *Recorder, exactly like the
// single-host hooks (ci-gate's obs_disabled_fleet_hooks budget pins it).

// JourneyStamp is one stage transition in a journey. Host is the fleet
// host that recorded the stamp, -1 for aggregator-side stamps
// (merge_emit / staleness rejection), which is how a rendered journey
// shows the hop off the capture host.
type JourneyStamp struct {
	Stage Stage      `json:"stage"`
	At    vtime.Time `json:"at"`
	Host  int        `json:"host"`
}

// Journey is the recorded fleet life of one sampled packet. Seq is the
// owning host's capture sequence (unique per host, survives restarts);
// it stays 0 when the packet died before capture (wire drop, capture
// shed), in which case the steer stamp's time identifies the offer.
type Journey struct {
	Host    int            `json:"host"`
	Seq     uint64         `json:"seq"`
	Flow    packet.FlowKey `json:"-"`
	FlowS   string         `json:"flow"`
	FlowSeq uint64         `json:"flow_seq"`
	Stamps  []JourneyStamp `json:"stamps"`
	// Drop is the terminal drop cause name, "" when the journey reached
	// merge_emit (or the run ended with the packet still in flight).
	Drop string `json:"drop,omitempty"`
}

// FleetEvent is one aggregator-side journey event, keyed by the
// (host, capture sequence) identity the batches carry. The stitcher
// joins these with the host-side journeys after the record merge.
type FleetEvent struct {
	Host  int        `json:"host"`
	Seq   uint64     `json:"seq"`
	Stage Stage      `json:"stage"` // StageMergeEmit, or StageDrop for rejects
	Cause string     `json:"cause,omitempty"`
	At    vtime.Time `json:"at"`
}

// ---- host-side journey hooks --------------------------------------

// JourneySteer opens a journey for an offered frame on its steering
// owner. Unsampled flows clear the pending slot and record nothing.
func (r *Recorder) JourneySteer(host int, flow packet.FlowKey, flowSeq uint64, ts vtime.Time) {
	if r == nil {
		return
	}
	r.jPending = -1
	if r.cfg.FlowHash(flow)%r.cfg.SampleEvery != 0 {
		return
	}
	if len(r.journeys) >= r.cfg.MaxJourneys {
		r.truncJ++
		return
	}
	r.journeys = append(r.journeys, Journey{
		Host: host, Flow: flow, FlowS: flow.String(), FlowSeq: flowSeq,
		Stamps: []JourneyStamp{{Stage: StageSteer, At: ts, Host: host}},
	})
	r.jPending = int32(len(r.journeys) - 1)
}

// JourneyDrop terminates the pending journey before capture (wire drop
// of a dead host's frame, backlog shed). The ledger entry is the
// caller's job — DropN counts every packet, this traces sampled ones.
func (r *Recorder) JourneyDrop(cause DropCause, ts vtime.Time) {
	if r == nil || r.jPending < 0 {
		return
	}
	j := &r.journeys[r.jPending]
	j.Stamps = append(j.Stamps, JourneyStamp{Stage: StageDrop, At: ts, Host: j.Host})
	j.Drop = cause.String()
	r.jPending = -1
}

// JourneyCapture stamps host ingress on the pending journey and binds
// it to the host capture sequence for the aggregation-plane hooks.
func (r *Recorder) JourneyCapture(seq uint64, ts vtime.Time) {
	if r == nil || r.jPending < 0 {
		return
	}
	j := &r.journeys[r.jPending]
	j.Seq = seq
	j.Stamps = append(j.Stamps, JourneyStamp{Stage: StageHostIngress, At: ts, Host: j.Host})
	r.jBySeq[seq] = r.jPending
	r.jPending = -1
}

// jStamp appends a host-side stage to the journey bound to seq.
func (r *Recorder) jStamp(seq uint64, s Stage, ts vtime.Time) {
	ji, ok := r.jBySeq[seq]
	if !ok {
		return
	}
	j := &r.journeys[ji]
	j.Stamps = append(j.Stamps, JourneyStamp{Stage: s, At: ts, Host: j.Host})
}

// JourneyEnqueue stamps the batch close: the packet moved from the open
// batch onto the host's aggregation-link queue.
func (r *Recorder) JourneyEnqueue(seq uint64, ts vtime.Time) {
	if r == nil {
		return
	}
	r.jStamp(seq, StageAggEnqueue, ts)
}

// JourneyLink stamps a successful link transfer: the batch is on the
// wire to the aggregator and can no longer be lost host-side.
func (r *Recorder) JourneyLink(seq uint64, ts vtime.Time) {
	if r == nil {
		return
	}
	r.jStamp(seq, StageAggLink, ts)
}

// JourneyLost terminates a captured journey host-side: crash state loss
// or the bounded link queue giving up. The journey is unbound — nothing
// further can happen to the packet.
func (r *Recorder) JourneyLost(seq uint64, cause DropCause, ts vtime.Time) {
	if r == nil {
		return
	}
	ji, ok := r.jBySeq[seq]
	if !ok {
		return
	}
	delete(r.jBySeq, seq)
	j := &r.journeys[ji]
	j.Stamps = append(j.Stamps, JourneyStamp{Stage: StageDrop, At: ts, Host: j.Host})
	j.Drop = cause.String()
}

// ---- aggregator-side journey hooks --------------------------------

// FleetEmit records a merge emission for (host, seq) on the aggregator
// recorder. Emissions happen on the aggregator, which holds no journey
// state — the stitcher joins them after the record merge.
func (r *Recorder) FleetEmit(host int, seq uint64, ts vtime.Time) {
	if r == nil {
		return
	}
	r.fleetEvts = append(r.fleetEvts, FleetEvent{Host: host, Seq: seq, Stage: StageMergeEmit, At: ts})
}

// FleetReject records a staleness-gate rejection for (host, seq).
func (r *Recorder) FleetReject(host int, seq uint64, ts vtime.Time) {
	if r == nil {
		return
	}
	r.fleetEvts = append(r.fleetEvts, FleetEvent{
		Host: host, Seq: seq, Stage: StageDrop, Cause: DropStalenessReject.String(), At: ts,
	})
}

// ---- stitching and rendering --------------------------------------

// StitchJourneys joins the host-side journeys with the aggregator-side
// fleet events, in place: each (host, seq) match appends the merge or
// reject stamp (Host -1) and rejects set the terminal drop cause. Call
// it on the merged fleet record, after MergeRecords has put both halves
// in canonical order; the join is then a pure function of the record.
func (rec *Record) StitchJourneys() {
	type key struct {
		host int
		seq  uint64
	}
	idx := make(map[key]int, len(rec.Journeys))
	for i := range rec.Journeys {
		if rec.Journeys[i].Seq > 0 {
			idx[key{rec.Journeys[i].Host, rec.Journeys[i].Seq}] = i
		}
	}
	for _, ev := range rec.FleetEvents {
		i, ok := idx[key{ev.Host, ev.Seq}]
		if !ok {
			continue
		}
		j := &rec.Journeys[i]
		j.Stamps = append(j.Stamps, JourneyStamp{Stage: ev.Stage, At: ev.At, Host: -1})
		if ev.Cause != "" {
			j.Drop = ev.Cause
		}
	}
}

// FlowHosts summarizes which hosts each sampled flow's journeys ran on,
// in first-steer order — ≥2 hosts means the flow crossed a re-steer.
// Sorted by flow string; deterministic.
type FlowHosts struct {
	Flow     string
	Hosts    []int
	Journeys int
}

// FlowJourneys groups the record's journeys by flow.
func (rec *Record) FlowJourneys() []FlowHosts {
	byFlow := make(map[string]*FlowHosts)
	order := make([]string, 0)
	for i := range rec.Journeys {
		j := &rec.Journeys[i]
		f := byFlow[j.FlowS]
		if f == nil {
			f = &FlowHosts{Flow: j.FlowS}
			byFlow[j.FlowS] = f
			order = append(order, j.FlowS)
		}
		f.Journeys++
		seen := false
		for _, h := range f.Hosts {
			if h == j.Host {
				seen = true
				break
			}
		}
		if !seen {
			f.Hosts = append(f.Hosts, j.Host)
		}
	}
	sort.Strings(order)
	out := make([]FlowHosts, 0, len(order))
	for _, flow := range order {
		out = append(out, *byFlow[flow])
	}
	return out
}

// WriteJourneys renders the canonical journey dump: one line per
// journey in record order, then the flows that crossed a re-steer. The
// output is a pure function of the record — ci-gate byte-compares it
// across -domains settings.
func (rec *Record) WriteJourneys(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.printf("== journeys: %s (end %dns) ==\n", rec.Scenario, rec.End)
	bw.printf("sampling: 1/%d flows, %d journeys", rec.SampleEvery, len(rec.Journeys))
	if rec.TruncatedJourneys > 0 {
		bw.printf(" (+%d sampled past cap, untraced)", rec.TruncatedJourneys)
	}
	bw.printf("\n\n")
	for i := range rec.Journeys {
		j := &rec.Journeys[i]
		bw.printf("host %d seq %-6d %-42s", j.Host, j.Seq, j.FlowS)
		var prev vtime.Time
		for k, s := range j.Stamps {
			if k == 0 {
				bw.printf(" %s@%dns", s.Stage, s.At)
			} else {
				bw.printf(" %s@+%dns", s.Stage, s.At-prev)
			}
			prev = s.At
		}
		if j.Drop != "" {
			bw.printf("  [%s]", j.Drop)
		} else if len(j.Stamps) > 0 && j.Stamps[len(j.Stamps)-1].Stage == StageMergeEmit {
			bw.printf("  [ok]")
		} else {
			bw.printf("  [in-flight]")
		}
		bw.printf("\n")
	}
	bw.printf("\n-- flows crossing a re-steer --\n")
	crossed := 0
	for _, f := range rec.FlowJourneys() {
		if len(f.Hosts) < 2 {
			continue
		}
		crossed++
		bw.printf("%-42s hosts", f.Flow)
		for i, h := range f.Hosts {
			if i > 0 {
				bw.printf("->")
			} else {
				bw.printf(" ")
			}
			bw.printf("%d", h)
		}
		bw.printf("  (%d journeys)\n", f.Journeys)
	}
	if crossed == 0 {
		bw.printf("(none)\n")
	}
	return bw.err
}

// FleetLedgerEntry is one cell of the per-host × per-cause ×
// per-interval forensics ledger derived from the drop records.
type FleetLedgerEntry struct {
	Host     int    `json:"host"`
	Cause    string `json:"cause"`
	Interval int    `json:"interval"` // [Interval*Δ, (Interval+1)*Δ)
	Count    uint64 `json:"count"`
}

// FleetLedger buckets the record's drop ledger by (host, cause,
// interval of length interval ns). In a fleet record the drop NIC field
// is the host id, so the ledger re-derives the conservation equation
// per host, per cause, per time window — fleet.Run and cmd/ci-gate both
// check that the fleet-cause cells sum exactly to
// FleetReceived − Aggregated. Sorted by (host, cause, interval).
func (rec *Record) FleetLedger(interval vtime.Time) []FleetLedgerEntry {
	if interval <= 0 {
		interval = 250 * vtime.Microsecond
	}
	type key struct {
		host     int
		cause    string
		interval int
	}
	sums := make(map[key]uint64)
	for i := range rec.Drops {
		d := &rec.Drops[i]
		sums[key{d.NIC, d.Cause, int(d.At / interval)}] += d.Count
	}
	out := make([]FleetLedgerEntry, 0, len(sums))
	for k, n := range sums {
		out = append(out, FleetLedgerEntry{Host: k.host, Cause: k.cause, Interval: k.interval, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Host != b.Host {
			return a.Host < b.Host
		}
		if a.Cause != b.Cause {
			return a.Cause < b.Cause
		}
		return a.Interval < b.Interval
	})
	return out
}

// WriteFleetLedger renders the forensics ledger as a fixed-width table.
func (rec *Record) WriteFleetLedger(w io.Writer, interval vtime.Time) error {
	if interval <= 0 {
		interval = 250 * vtime.Microsecond
	}
	bw := &errWriter{w: w}
	bw.printf("== fleet forensics ledger: %s (interval %dns) ==\n", rec.Scenario, interval)
	bw.printf("%-5s %-24s %-9s %s\n", "host", "cause", "interval", "count")
	var total uint64
	for _, e := range rec.FleetLedger(interval) {
		bw.printf("%-5d %-24s %-9d %d\n", e.Host, e.Cause, e.Interval, e.Count)
		total += e.Count
	}
	bw.printf("total %d packets across all causes\n", total)
	return bw.err
}

// SumCause totals one cause across a slice of ledger entries, per host
// (host -1 sums every host).
func SumCause(led []FleetLedgerEntry, cause DropCause, host int) uint64 {
	name := cause.String()
	var n uint64
	for _, e := range led {
		if e.Cause == name && (host < 0 || e.Host == host) {
			n += e.Count
		}
	}
	return n
}
