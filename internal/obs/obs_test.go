package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/packet"
)

func flow(i uint32) packet.FlowKey {
	return packet.FlowKey{
		Src: packet.IPv4{10, 0, byte(i >> 8), byte(i)}, Dst: packet.IPv4{10, 1, 0, 1},
		SrcPort: uint16(1000 + i), DstPort: 80, Proto: packet.ProtoTCP,
	}
}

// identity hash: the flow's low 32 bits of SrcPort decide sampling, so
// tests choose sampled/unsampled flows directly.
func testRecorder(sampleEvery uint32) *Recorder {
	return New(Config{
		FlowHash:    func(f packet.FlowKey) uint32 { return uint32(f.SrcPort) },
		SampleEvery: sampleEvery,
	})
}

// TestSamplingDeterminism: the sampling rule is a pure function of the
// flow hash — the same flow gives the same decision on every call, and
// exactly the hash ≡ 0 (mod SampleEvery) flows are traced.
func TestSamplingDeterminism(t *testing.T) {
	r := testRecorder(8)
	for i := uint32(0); i < 64; i++ {
		f := flow(i)
		want := (1000+i)%8 == 0
		if got := r.Sampled(f); got != want {
			t.Fatalf("Sampled(flow %d) = %v, want %v", i, got, want)
		}
		if r.Sampled(f) != r.Sampled(f) {
			t.Fatalf("Sampled(flow %d) is not stable", i)
		}
	}
	var nilRec *Recorder
	if nilRec.Sampled(flow(0)) {
		t.Fatal("nil recorder samples")
	}
}

// TestPacketLifecycle walks one sampled packet through the WireCAP
// path (arrive → DMA → cell → handoff → deliver → processed → recycle)
// and checks the trace stamps every stage in order.
func TestPacketLifecycle(t *testing.T) {
	r := testRecorder(8) // SrcPort 1000 ≡ 0 (mod 8): flow(0) is sampled
	f := flow(0)
	chunk := ChunkID(2, 5)

	r.PktArrive(0, 2, f, 60, 100)
	r.PktDMA(0, 2, 7, 200)
	r.DescToCell(0, 2, 7, chunk, 3, 300)
	r.ChunkStage(0, chunk, StageChunkHandoff, 400)
	r.CellDeliver(0, chunk, 3, 0, 2, 500)
	r.Processed(0, 2, 600)
	r.ChunkRecycle(0, chunk, 700)

	rec := r.Record("t", 1000)
	if len(rec.Packets) != 1 {
		t.Fatalf("got %d traces, want 1", len(rec.Packets))
	}
	p := rec.Packets[0]
	want := []Stage{StageWire, StageDMAWrite, StageDescReady, StageChunkHandoff,
		StageDeliver, StageProcessed, StageRecycle}
	if len(p.Stamps) != len(want) {
		t.Fatalf("got %d stamps (%v), want %d", len(p.Stamps), p.Stamps, len(want))
	}
	for i, s := range want {
		if p.Stamps[i].Stage != s {
			t.Fatalf("stamp %d = %s, want %s", i, p.Stamps[i].Stage, s)
		}
		if i > 0 && p.Stamps[i].At < p.Stamps[i-1].At {
			t.Fatalf("stamps not monotonic: %v", p.Stamps)
		}
	}
	if p.Drop != "" {
		t.Fatalf("clean delivery marked dropped: %q", p.Drop)
	}
}

// TestIDsCountEveryArrival: packet ids are global arrival sequence
// numbers over sampled and unsampled packets alike, so an id names the
// same wire packet in any run of the workload.
func TestIDsCountEveryArrival(t *testing.T) {
	r := testRecorder(8)
	r.PktArrive(0, 0, flow(1), 60, 10) // 1001 % 8 != 0: unsampled
	r.PktArrive(0, 0, flow(2), 60, 20) // unsampled
	r.PktArrive(0, 0, flow(8), 60, 30) // 1008 % 8 == 0: sampled, id 2
	rec := r.Record("t", 100)
	if len(rec.Packets) != 1 || rec.Packets[0].ID != 2 {
		t.Fatalf("sampled packet id = %+v, want one trace with ID 2", rec.Packets)
	}
}

// TestDropLedger: drops are recorded for every packet (sampled or not),
// totals stay complete past the record cap, and a sampled packet's
// trace terminates with the drop stage and cause.
func TestDropLedger(t *testing.T) {
	r := New(Config{
		FlowHash:    func(f packet.FlowKey) uint32 { return uint32(f.SrcPort) },
		SampleEvery: 8, MaxDrops: 2,
	})
	r.PktArrive(0, 1, flow(0), 60, 10) // sampled
	r.PendingDrop(DropDescDepletion, 0, 1, 11)
	r.PktArrive(0, 1, flow(1), 60, 20) // unsampled
	r.PendingDrop(DropDescDepletion, 0, 1, 21)
	r.DropN(DropLink, 0, -1, 5, 30) // past MaxDrops: counted, not listed

	rec := r.Record("t", 100)
	if got := rec.DropTotals["desc_depletion"]; got != 2 {
		t.Fatalf("desc_depletion total = %d, want 2", got)
	}
	if got := rec.DropTotals["link_down"]; got != 5 {
		t.Fatalf("link_down total = %d, want 5", got)
	}
	if len(rec.Drops) != 2 || rec.TruncatedDrops != 1 {
		t.Fatalf("ledger has %d records, %d truncated; want 2 and 1",
			len(rec.Drops), rec.TruncatedDrops)
	}
	if rec.Drops[0].Pkt != 0 || rec.Drops[1].Pkt != -1 {
		t.Fatalf("ledger pkt ids = %d, %d; want 0 (sampled) and -1", rec.Drops[0].Pkt, rec.Drops[1].Pkt)
	}
	p := rec.Packets[0]
	if p.Drop != "desc_depletion" || p.Stamps[len(p.Stamps)-1].Stage != StageDrop {
		t.Fatalf("dropped trace not terminated: drop=%q stamps=%v", p.Drop, p.Stamps)
	}
	if r.DropTotal(DropDescDepletion) != 2 {
		t.Fatalf("DropTotal = %d, want 2", r.DropTotal(DropDescDepletion))
	}
}

// TestFaultAnnotation: a drop inside an open fault window carries the
// window's id; one outside carries -1.
func TestFaultAnnotation(t *testing.T) {
	r := testRecorder(8)
	id := r.FaultOpen("queue_hang", 0, 1, 50)
	r.DropN(DropQueueHang, 0, 1, 1, 60) // inside the window, same queue
	r.DropN(DropQueueHang, 0, 2, 1, 70) // other queue: not annotated
	r.FaultClose("queue_hang", 0, 1, 80)
	r.DropN(DropQueueHang, 0, 1, 1, 90) // window closed
	rec := r.Record("t", 100)
	if rec.Drops[0].Fault != id || rec.Drops[1].Fault != -1 || rec.Drops[2].Fault != -1 {
		t.Fatalf("fault annotations = %d,%d,%d; want %d,-1,-1",
			rec.Drops[0].Fault, rec.Drops[1].Fault, rec.Drops[2].Fault, id)
	}
	if w := rec.FaultWindows[0]; w.Open != 50 || w.Close != 80 {
		t.Fatalf("window = %+v, want open=50 close=80", w)
	}
}

// TestStageCostProfile: costs accumulate per (engine, queue, stage) and
// export sorted.
func TestStageCostProfile(t *testing.T) {
	r := testRecorder(8)
	r.StageCost("E", 1, "poll", 10)
	r.StageCost("E", 1, "poll", 5)
	r.StageCost("E", 0, "process", 7)
	rec := r.Record("t", 100)
	if len(rec.StageProfile) != 2 {
		t.Fatalf("profile has %d entries, want 2", len(rec.StageProfile))
	}
	if e := rec.StageProfile[0]; e.Queue != 0 || e.Stage != "process" || e.Ns != 7 || e.Count != 1 {
		t.Fatalf("profile[0] = %+v", e)
	}
	if e := rec.StageProfile[1]; e.Queue != 1 || e.Stage != "poll" || e.Ns != 15 || e.Count != 2 {
		t.Fatalf("profile[1] = %+v", e)
	}
}

// TestStageAndCauseJSONRoundTrip: names survive a marshal/unmarshal
// cycle, the property ReadRecord relies on.
func TestStageAndCauseJSONRoundTrip(t *testing.T) {
	for s := Stage(0); s < numStages; s++ {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back Stage
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != s {
			t.Fatalf("stage %s round-tripped to %s", s, back)
		}
	}
	var bad Stage
	if err := json.Unmarshal([]byte(`"no_such_stage"`), &bad); err == nil {
		t.Fatal("unknown stage name unmarshalled without error")
	}
	if len(CauseNames()) != int(numCauses) {
		t.Fatalf("CauseNames lists %d causes, want %d", len(CauseNames()), numCauses)
	}
}

// TestChromeExportRoundTrip: WriteChrome → ReadRecord returns the
// record, and two exports of the same recorder are byte-identical.
func TestChromeExportRoundTrip(t *testing.T) {
	r := testRecorder(8)
	r.PktArrive(0, 1, flow(0), 60, 10)
	r.PktDMA(0, 1, 3, 20)
	r.DescDeliver(0, 1, 3, 30)
	r.Processed(0, 1, 40)
	r.DropN(DropLink, 0, -1, 2, 50)
	r.Action("re_steer", 0, 1, 32, 60)
	rec := r.Record("round", 100)

	var a, b bytes.Buffer
	if err := rec.WriteChrome(&a); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of the same record differ")
	}
	back, err := ReadRecord(&a)
	if err != nil {
		t.Fatal(err)
	}
	if back.Scenario != "round" || back.End != 100 ||
		len(back.Packets) != 1 || len(back.Drops) != 1 || len(back.Actions) != 1 {
		t.Fatalf("round-tripped record lost data: %+v", back)
	}
	if back.Packets[0].Stamps[1].Stage != StageDMAWrite {
		t.Fatalf("stamps lost stage names: %+v", back.Packets[0].Stamps)
	}
}

// TestNilRecorderZeroAllocs is the disabled contract: a nil *Recorder
// must no-op every hook without allocating — the property that lets
// every hot path keep its hooks unconditionally.
func TestNilRecorderZeroAllocs(t *testing.T) {
	var r *Recorder
	f := flow(0)
	if a := testing.AllocsPerRun(1000, func() {
		r.PktArrive(0, 0, f, 60, 1)
		r.PendingDrop(DropDescDepletion, 0, 0, 1)
		r.DropN(DropLink, 0, -1, 3, 1)
		r.PktDMA(0, 0, 1, 1)
		r.DescDrop(DropDeliveryOverflow, 0, 0, 1, 1)
		r.DescToFifo(0, 0, 1, 2, 1)
		r.FifoDeliver(0, 0, 2, 1)
		r.DescDeliver(0, 0, 1, 1)
		_ = r.DescClaim(0, 0, 1, 1)
		r.IDDeliver(0, 1)
		r.IDProcessed(0, 1)
		r.Processed(0, 0, 1)
		r.DescToCell(0, 0, 1, 0, 0, 1)
		r.CellMove(0, 0, 0, 1, 1, 1)
		r.ChunkStage(0, 0, StageChunkHandoff, 1)
		r.CellDeliver(0, 0, 0, 0, 0, 1)
		r.ChunkDrop(DropReclaim, 0, 0, 0, 4, 1)
		r.ChunkRecycle(0, 0, 1)
		r.AbandonQueue(DropQuarantineBacklog, 0, 0, 1)
		_ = r.FaultOpen("k", 0, 0, 1)
		r.FaultClose("k", 0, 0, 1)
		r.Action("k", 0, 0, 1, 1)
		r.StageCost("e", 0, "s", 1)
		_ = r.DropTotal(DropLink)
		_ = r.Sampled(f)
	}); a > 0 {
		t.Errorf("nil-recorder hooks allocate %.2f/op, want 0", a)
	}
	// A nil recorder also exports a valid empty record.
	rec := r.Record("nil", 0)
	if rec.SampleEvery != 1 || len(rec.Packets) != 0 {
		t.Fatalf("nil Record = %+v", rec)
	}
}
