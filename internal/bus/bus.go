// Package bus models the host I/O path (PCIe plus memory controller) as a
// shared token-bucket bandwidth budget. The WireCAP paper's scalability
// experiment (Figure 14) shows both DNA and WireCAP dropping packets once
// two NICs of 64-byte line-rate traffic saturate the system bus, with
// WireCAP paying extra for its ring-buffer-pool metadata I/O; this package
// provides the mechanism that reproduces that behaviour.
package bus

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/vtime"
)

// Config describes a bus.
type Config struct {
	// BytesPerSec is the sustained transfer budget shared by every device
	// on the bus. Zero means unlimited (experiments that are not
	// bus-bound use an unlimited bus so results isolate the engines).
	BytesPerSec float64
	// BurstBytes is the token-bucket depth: how much transfer can happen
	// "at once" before the rate limit binds. Defaults to 64 KB.
	BurstBytes int
	// PerTransferOverhead is charged on every transfer in addition to its
	// payload: descriptor fetch, writeback, and doorbell traffic. Real
	// PCIe moves small packets with substantial per-TLP overhead, which
	// is why 64-byte line rate saturates a bus that 100-byte line rate
	// does not.
	PerTransferOverhead int
	// PagePenaltyBytes models the extra memory traffic per transfer
	// caused by TLB misses when a very large working set (big ring buffer
	// pools) defeats the page cache; see paper §4 "WireCAP-A-(256,500)
	// performs poorly @ queues/NIC=5 or 6". Engines set this based on
	// their memory footprint.
	PagePenaltyBytes int
}

// Bus is a shared bandwidth budget. It is driven in virtual time and is
// not safe for concurrent use (the simulation is single-threaded).
type Bus struct {
	cfg    Config
	tokens float64
	last   vtime.Time

	// Counters.
	transfers uint64
	bytes     uint64
	rejected  uint64
}

// Stats reports cumulative bus activity.
type Stats struct {
	Transfers uint64
	Bytes     uint64
	Rejected  uint64
}

// New returns a bus with the given configuration.
func New(cfg Config) *Bus {
	if cfg.BurstBytes <= 0 {
		cfg.BurstBytes = 64 * 1024
	}
	return &Bus{cfg: cfg, tokens: float64(cfg.BurstBytes)}
}

// Unlimited returns a bus that never rejects a transfer.
func Unlimited() *Bus { return New(Config{}) }

// Limited reports whether the bus enforces a bandwidth budget.
func (b *Bus) Limited() bool { return b.cfg.BytesPerSec > 0 }

// refill advances the token bucket to the current time.
func (b *Bus) refill(now vtime.Time) {
	if now <= b.last {
		return
	}
	dt := float64(now-b.last) / float64(vtime.Second)
	b.tokens += dt * b.cfg.BytesPerSec
	if maxTokens := float64(b.cfg.BurstBytes); b.tokens > maxTokens {
		b.tokens = maxTokens
	}
	b.last = now
}

// TryTransfer attempts to move payload bytes (plus configured overheads,
// plus extraOverhead charged by the caller for, e.g., chunk-metadata I/O)
// across the bus at the given virtual time. It returns false — and
// consumes nothing — when the budget is exhausted; the caller then drops
// the packet, exactly as a NIC whose DMA cannot complete in time does.
func (b *Bus) TryTransfer(now vtime.Time, payload, extraOverhead int) bool {
	if payload < 0 || extraOverhead < 0 {
		panic(fmt.Sprintf("bus: negative transfer %d+%d", payload, extraOverhead))
	}
	total := payload + b.cfg.PerTransferOverhead + b.cfg.PagePenaltyBytes + extraOverhead
	if !b.Limited() {
		b.transfers++
		b.bytes += uint64(total)
		return true
	}
	b.refill(now)
	if b.tokens < float64(total) {
		b.rejected++
		return false
	}
	b.tokens -= float64(total)
	b.transfers++
	b.bytes += uint64(total)
	return true
}

// SetPagePenalty updates the per-transfer paging penalty; engines call it
// once their total memory footprint is known.
func (b *Bus) SetPagePenalty(bytes int) {
	if bytes < 0 {
		bytes = 0
	}
	b.cfg.PagePenaltyBytes = bytes
}

// Stats returns cumulative counters.
func (b *Bus) Stats() Stats {
	return Stats{Transfers: b.transfers, Bytes: b.bytes, Rejected: b.rejected}
}

// Register exports the bus counters through the metrics registry —
// wirecap_bus_transfers_total, wirecap_bus_bytes_total, and
// wirecap_bus_rejected_total — so rejected transfers show up in
// snapshots and gate digests instead of only the Stats struct. All
// function-backed: sampled at snapshot time, zero hot-path cost. Labels
// disambiguate multiple buses sharing one registry (per-host
// aggregation links in fleet runs).
func (b *Bus) Register(reg *metrics.Registry, labels ...metrics.Label) {
	reg.CounterFunc("wirecap_bus_transfers_total",
		func() uint64 { return b.transfers }, labels...)
	reg.CounterFunc("wirecap_bus_bytes_total",
		func() uint64 { return b.bytes }, labels...)
	reg.CounterFunc("wirecap_bus_rejected_total",
		func() uint64 { return b.rejected }, labels...)
}
