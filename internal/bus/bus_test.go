package bus

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/vtime"
)

func TestUnlimitedNeverRejects(t *testing.T) {
	b := Unlimited()
	for i := 0; i < 1000; i++ {
		if !b.TryTransfer(0, 1<<20, 0) {
			t.Fatal("unlimited bus rejected a transfer")
		}
	}
	st := b.Stats()
	if st.Transfers != 1000 || st.Rejected != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRateEnforced(t *testing.T) {
	// 1000 bytes/s, 100-byte burst: at t=0 only the burst fits.
	b := New(Config{BytesPerSec: 1000, BurstBytes: 100})
	if !b.TryTransfer(0, 100, 0) {
		t.Fatal("burst transfer rejected")
	}
	if b.TryTransfer(0, 1, 0) {
		t.Fatal("transfer beyond burst accepted at t=0")
	}
	// After 50 ms, 50 bytes of budget have accrued.
	now := 50 * vtime.Millisecond
	if !b.TryTransfer(now, 50, 0) {
		t.Fatal("accrued budget rejected")
	}
	if b.TryTransfer(now, 1, 0) {
		t.Fatal("over-budget transfer accepted")
	}
	if got := b.Stats().Rejected; got != 2 {
		t.Fatalf("rejected = %d", got)
	}
}

func TestBurstCapped(t *testing.T) {
	b := New(Config{BytesPerSec: 1e6, BurstBytes: 500})
	// A long idle period must not accumulate more than the burst.
	if !b.TryTransfer(10*vtime.Second, 500, 0) {
		t.Fatal("full burst rejected after idle")
	}
	if b.TryTransfer(10*vtime.Second, 500, 0) {
		t.Fatal("double burst accepted after idle")
	}
}

func TestOverheadsCharged(t *testing.T) {
	b := New(Config{BytesPerSec: 1000, BurstBytes: 100, PerTransferOverhead: 30})
	// Payload 50 + overhead 30 = 80 <= 100.
	if !b.TryTransfer(0, 50, 0) {
		t.Fatal("transfer with overhead rejected")
	}
	// Remaining 20 tokens cannot carry payload 0 + overhead 30.
	if b.TryTransfer(0, 0, 0) {
		t.Fatal("overhead-only transfer accepted beyond budget")
	}
}

func TestExtraOverheadAndPagePenalty(t *testing.T) {
	b := New(Config{BytesPerSec: 1000, BurstBytes: 100})
	b.SetPagePenalty(40)
	if !b.TryTransfer(0, 30, 20) { // 30+40+20 = 90
		t.Fatal("rejected within budget")
	}
	if b.TryTransfer(0, 0, 0) { // 0+40 = 40 > 10 remaining
		t.Fatal("page penalty not charged")
	}
	b.SetPagePenalty(-5)
	if b.cfg.PagePenaltyBytes != 0 {
		t.Fatal("negative penalty not clamped")
	}
}

func TestThroughputConvergesToRate(t *testing.T) {
	// Offer 2x the configured rate and check accepted throughput ~= rate.
	const rate = 1e6 // bytes/s
	b := New(Config{BytesPerSec: rate, BurstBytes: 1000})
	const pkt = 100
	interval := vtime.PerSecond(2 * rate / pkt) // 2x offered load
	var accepted int
	var now vtime.Time
	const dur = vtime.Second
	for now = 0; now < dur; now += interval {
		if b.TryTransfer(now, pkt, 0) {
			accepted++
		}
	}
	got := float64(accepted*pkt) / dur.Seconds()
	if got < 0.95*rate || got > 1.05*rate {
		t.Fatalf("accepted throughput %.0f B/s, want ~%.0f", got, float64(rate))
	}
}

func TestRegisterExportsCountersWithConservation(t *testing.T) {
	// A saturating schedule: offer 3x the configured rate so a large
	// fraction of transfers is rejected, then check both the exported
	// series and the byte-accounting conservation law.
	const (
		rate     = 1e6 // bytes/s
		overhead = 90
		penalty  = 16
		pkt      = 100
	)
	b := New(Config{BytesPerSec: rate, BurstBytes: 1000, PerTransferOverhead: overhead})
	b.SetPagePenalty(penalty)
	reg := metrics.NewRegistry()
	b.Register(reg, metrics.L("link", "host0"))

	interval := vtime.PerSecond(3 * rate / pkt)
	var payload, extra uint64
	var now vtime.Time
	for now = 0; now < vtime.Second; now += interval {
		ex := int(now/interval) % 3 // vary the caller-charged overhead
		if b.TryTransfer(now, pkt, ex) {
			payload += pkt
			extra += uint64(ex)
		}
	}
	st := b.Stats()
	if st.Rejected == 0 {
		t.Fatal("saturating schedule rejected nothing")
	}
	if st.Transfers == 0 {
		t.Fatal("saturating schedule accepted nothing")
	}
	// Conservation: every accepted transfer's bytes decompose exactly
	// into payload + per-transfer overheads + caller extras. Rejected
	// transfers consume nothing.
	want := payload + st.Transfers*uint64(overhead+penalty) + extra
	if st.Bytes != want {
		t.Fatalf("Bytes = %d, want payload %d + transfers %d * %d + extra %d = %d",
			st.Bytes, payload, st.Transfers, overhead+penalty, extra, want)
	}

	snap := reg.Snapshot(now)
	link := metrics.L("link", "host0")
	for _, c := range []struct {
		name string
		want uint64
	}{
		{"wirecap_bus_transfers_total", st.Transfers},
		{"wirecap_bus_bytes_total", st.Bytes},
		{"wirecap_bus_rejected_total", st.Rejected},
	} {
		sv, ok := snap.Get(c.name, link)
		if !ok {
			t.Fatalf("series %s not exported", c.name)
		}
		if sv.Counter != c.want {
			t.Fatalf("%s = %d, want %d", c.name, sv.Counter, c.want)
		}
	}
}

func TestNegativeTransferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative transfer did not panic")
		}
	}()
	Unlimited().TryTransfer(0, -1, 0)
}
