package faults

import (
	"errors"
	"testing"

	"repro/internal/vtime"
)

// mustInstall installs a schedule that the test knows is valid.
func mustInstall(t *testing.T, inj *Injector, sch Schedule) {
	t.Helper()
	if err := inj.Install(sch); err != nil {
		t.Fatalf("Install: %v", err)
	}
}

func TestWindowsOpenAndClose(t *testing.T) {
	s := vtime.NewScheduler()
	inj := NewInjector(s, 1)
	mustInstall(t, inj, Schedule{
		{At: 10, Dur: 20, Kind: QueueHang, NIC: 0, Queue: 1},
		{At: 15, Dur: 10, Kind: LinkFlap, NIC: 0},
		{At: 40, Dur: 5, Kind: DescStall, NIC: 0, Queue: 0},
	})

	type probe struct {
		at               vtime.Time
		hung, down, stal bool
	}
	probes := []probe{
		{at: 5}, {at: 12, hung: true}, {at: 16, hung: true, down: true},
		{at: 26, hung: true}, {at: 31}, {at: 42, stal: true}, {at: 50},
	}
	for _, p := range probes {
		p := p
		s.At(p.at, func() {
			if got := inj.QueueHung(0, 1); got != p.hung {
				t.Errorf("t=%d QueueHung = %v, want %v", p.at, got, p.hung)
			}
			if got := !inj.LinkUp(0); got != p.down {
				t.Errorf("t=%d link down = %v, want %v", p.at, got, p.down)
			}
			if got := inj.DescStalled(0, 0); got != p.stal {
				t.Errorf("t=%d DescStalled = %v, want %v", p.at, got, p.stal)
			}
		})
	}
	s.Run()
	if !inj.Quiet() {
		t.Fatal("injector not Quiet after all windows closed")
	}
	if inj.Injected(QueueHang) != 1 || inj.Injected(LinkFlap) != 1 || inj.Injected(DescStall) != 1 {
		t.Fatalf("injected counters wrong: %v %v %v",
			inj.Injected(QueueHang), inj.Injected(LinkFlap), inj.Injected(DescStall))
	}
}

func TestOverlappingWindows(t *testing.T) {
	s := vtime.NewScheduler()
	inj := NewInjector(s, 1)
	mustInstall(t, inj, Schedule{
		{At: 10, Dur: 30, Kind: AllocFail, NIC: 2, Queue: 0},
		{At: 20, Dur: 10, Kind: AllocFail, NIC: 2, Queue: 0},
	})
	// The inner window closing at t=30 must not clear the outer one.
	s.At(35, func() {
		if !inj.AllocFails(2, 0) {
			t.Error("outer AllocFail window cleared by inner close")
		}
	})
	s.At(45, func() {
		if inj.AllocFails(2, 0) {
			t.Error("AllocFail still active after outer window closed")
		}
	})
	s.Run()
}

func TestPermanentFaultsSettleQuiet(t *testing.T) {
	s := vtime.NewScheduler()
	inj := NewInjector(s, 1)
	mustInstall(t, inj, Schedule{
		{At: 10, Kind: QueueHang, NIC: 0, Queue: 0}, // Dur 0 = permanent
		{At: 20, Kind: HandlerCrash, NIC: 0, Queue: 1, Dur: 99},
	})
	if inj.Quiet() {
		t.Fatal("Quiet before schedule ran")
	}
	s.Run()
	if !inj.Quiet() {
		t.Fatal("permanent faults should not keep the injector un-quiet")
	}
	if !inj.QueueHung(0, 0) {
		t.Fatal("permanent hang not sticky")
	}
	if !inj.HandlerCrashed(0, 1) {
		t.Fatal("crash not sticky (Dur must be ignored for crashes)")
	}
}

func TestHandlerStallNormalization(t *testing.T) {
	s := vtime.NewScheduler()
	inj := NewInjector(s, 1)
	mustInstall(t, inj, Schedule{
		{At: 5, Dur: 0, Kind: HandlerStall, NIC: 0, Queue: 0}, // => crash
		{At: 5, Dur: 20, Kind: HandlerStall, NIC: 0, Queue: 1},
	})
	s.At(10, func() {
		if !inj.HandlerCrashed(0, 0) {
			t.Error("zero-duration stall should normalize to crash")
		}
		until, ok := inj.HandlerStalled(0, 1)
		if !ok || until != 25 {
			t.Errorf("HandlerStalled = (%d, %v), want (25, true)", until, ok)
		}
	})
	s.At(30, func() {
		if _, ok := inj.HandlerStalled(0, 1); ok {
			t.Error("stall window should have expired")
		}
	})
	s.Run()
}

func TestCorruptFrameDeterministicAndWindowed(t *testing.T) {
	run := func() (hits int, mutated []byte) {
		s := vtime.NewScheduler()
		inj := NewInjector(s, 42)
		mustInstall(t, inj, Schedule{{At: 10, Dur: 100, Kind: DMACorrupt, NIC: 0, Queue: 0, Severity: 0.5}})
		frame := make([]byte, 64)
		s.At(5, func() {
			if inj.CorruptFrame(0, 0, frame) {
				t.Error("corruption outside window")
			}
		})
		s.At(50, func() {
			for i := 0; i < 100; i++ {
				if inj.CorruptFrame(0, 0, frame) {
					hits++
				}
			}
			mutated = append(mutated, frame...)
		})
		s.Run()
		return hits, mutated
	}
	h1, f1 := run()
	h2, f2 := run()
	if h1 == 0 || h1 == 100 {
		t.Fatalf("severity 0.5 should corrupt some but not all frames; got %d/100", h1)
	}
	if h1 != h2 || string(f1) != string(f2) {
		t.Fatalf("corruption not deterministic: %d vs %d hits", h1, h2)
	}
}

func TestNilInjectorIsNoFault(t *testing.T) {
	var inj *Injector
	if !inj.LinkUp(0) || inj.QueueHung(0, 0) || inj.DescStalled(0, 0) ||
		inj.AllocFails(0, 0) || inj.HandlerCrashed(0, 0) || !inj.Quiet() {
		t.Fatal("nil injector must report no faults")
	}
	if inj.CorruptFrame(0, 0, []byte{1}) {
		t.Fatal("nil injector corrupted a frame")
	}
	if got := inj.HandlerSlowdown(0, 0); got != 1 {
		t.Fatalf("nil HandlerSlowdown = %v, want 1", got)
	}
	if _, ok := inj.HandlerStalled(0, 0); ok {
		t.Fatal("nil injector reports a stall")
	}
}

func TestOnActivateFiresPerWindow(t *testing.T) {
	s := vtime.NewScheduler()
	inj := NewInjector(s, 1)
	n := 0
	inj.OnActivate(func() { n++ })
	mustInstall(t, inj, Schedule{
		{At: 1, Dur: 5, Kind: QueueHang},
		{At: 2, Dur: 5, Kind: LinkFlap},
		{At: 3, Kind: HandlerCrash},
	})
	s.Run()
	if n != 3 {
		t.Fatalf("OnActivate fired %d times, want 3", n)
	}
}

func TestScheduleValidate(t *testing.T) {
	cases := []struct {
		name    string
		sch     Schedule
		wantErr bool
	}{
		{"empty", Schedule{}, false},
		{"disjoint same target",
			Schedule{
				{At: 10, Dur: 10, Kind: DMACorrupt, NIC: 0, Queue: 0},
				{At: 20, Dur: 10, Kind: DMACorrupt, NIC: 0, Queue: 0},
			}, false},
		{"overlap corrupt same target",
			Schedule{
				{At: 10, Dur: 20, Kind: DMACorrupt, NIC: 0, Queue: 0},
				{At: 15, Dur: 10, Kind: DMACorrupt, NIC: 0, Queue: 0},
			}, true},
		{"overlap corrupt different queue",
			Schedule{
				{At: 10, Dur: 20, Kind: DMACorrupt, NIC: 0, Queue: 0},
				{At: 15, Dur: 10, Kind: DMACorrupt, NIC: 0, Queue: 1},
			}, false},
		{"overlap slow same target",
			Schedule{
				{At: 5, Dur: 50, Kind: HandlerSlow, NIC: 1, Queue: 2, Severity: 2},
				{At: 30, Dur: 50, Kind: HandlerSlow, NIC: 1, Queue: 2, Severity: 8},
			}, true},
		{"overlap brownout same host ignores queue",
			Schedule{
				{At: 5, Dur: 50, Kind: HostBrownout, NIC: 3, Queue: 0},
				{At: 30, Dur: 50, Kind: HostBrownout, NIC: 3, Queue: 7},
			}, true},
		{"overlap brownout different host",
			Schedule{
				{At: 5, Dur: 50, Kind: HostBrownout, NIC: 3},
				{At: 30, Dur: 50, Kind: HostBrownout, NIC: 4},
			}, false},
		{"permanent shadow-prone overlaps everything later",
			Schedule{
				{At: 10, Kind: HandlerSlow, NIC: 0, Queue: 0}, // Dur 0 = forever
				{At: 500, Dur: 5, Kind: HandlerSlow, NIC: 0, Queue: 0},
			}, true},
		{"count-based kinds may overlap",
			Schedule{
				{At: 10, Dur: 30, Kind: AllocFail, NIC: 0, Queue: 0},
				{At: 20, Dur: 30, Kind: AllocFail, NIC: 0, Queue: 0},
				{At: 10, Dur: 30, Kind: QueueHang, NIC: 0, Queue: 0},
				{At: 20, Dur: 30, Kind: QueueHang, NIC: 0, Queue: 0},
				{At: 10, Dur: 30, Kind: HostCrash, NIC: 0},
				{At: 20, Dur: 30, Kind: AggLinkDown, NIC: 0},
			}, false},
		{"touching windows do not overlap",
			Schedule{
				{At: 10, Dur: 10, Kind: HostBrownout, NIC: 0},
				{At: 20, Dur: 10, Kind: HostBrownout, NIC: 0},
			}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.sch.Validate()
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate() = %v, wantErr %v", err, tc.wantErr)
			}
			if err != nil {
				var oe *OverlapError
				if !errors.As(err, &oe) {
					t.Fatalf("error is %T, want *OverlapError", err)
				}
				if oe.Error() == "" {
					t.Fatal("empty error string")
				}
			}
			// Install must agree with Validate.
			s := vtime.NewScheduler()
			inj := NewInjector(s, 1)
			if ierr := inj.Install(tc.sch); (ierr != nil) != tc.wantErr {
				t.Fatalf("Install() = %v, wantErr %v", ierr, tc.wantErr)
			}
		})
	}
}

func TestHostFaultQueries(t *testing.T) {
	s := vtime.NewScheduler()
	inj := NewInjector(s, 1)
	var opens, closes []Kind
	inj.OnTransition(func(ev Event, open bool) {
		if open {
			opens = append(opens, ev.Kind)
		} else {
			closes = append(closes, ev.Kind)
		}
	})
	mustInstall(t, inj, Schedule{
		{At: 10, Dur: 20, Kind: HostCrash, NIC: 1},   // restart at 30
		{At: 10, Kind: HostCrash, NIC: 2},            // permanent kill
		{At: 15, Dur: 10, Kind: AggLinkDown, NIC: 0}, // partition
		{At: 15, Dur: 10, Kind: HostBrownout, NIC: 0, Severity: 3},
	})
	s.At(20, func() {
		if !inj.HostDown(1) || !inj.HostDown(2) || inj.HostDown(0) {
			t.Error("HostDown wrong inside windows")
		}
		// A crashed host takes its NIC link down (host id == NIC id).
		if inj.LinkUp(1) || inj.LinkUp(2) || !inj.LinkUp(0) {
			t.Error("LinkUp must reflect host crashes")
		}
		if inj.AggLinkUp(0) || !inj.AggLinkUp(1) {
			t.Error("AggLinkUp wrong inside partition window")
		}
		if got := inj.HostSlowdown(0); got != 3 {
			t.Errorf("HostSlowdown = %v, want 3", got)
		}
		if got := inj.HostSlowdown(1); got != 1 {
			t.Errorf("HostSlowdown(1) = %v, want 1", got)
		}
	})
	s.At(40, func() {
		if inj.HostDown(1) {
			t.Error("host 1 should have restarted at t=30")
		}
		if !inj.HostDown(2) {
			t.Error("permanent kill should be sticky")
		}
		if !inj.AggLinkUp(0) || inj.HostSlowdown(0) != 1 {
			t.Error("host 0 windows should have closed")
		}
	})
	s.Run()
	if !inj.Quiet() {
		t.Fatal("injector not Quiet after schedule drained")
	}
	if len(opens) != 4 {
		t.Fatalf("OnTransition opens = %d, want 4", len(opens))
	}
	// Only the three bounded windows close; the permanent kill never does.
	if len(closes) != 3 {
		t.Fatalf("OnTransition closes = %d, want 3", len(closes))
	}
	if inj.Injected(HostCrash) != 2 || inj.Injected(AggLinkDown) != 1 || inj.Injected(HostBrownout) != 1 {
		t.Fatal("host-kind injected counters wrong")
	}
}

func TestNilInjectorHostQueries(t *testing.T) {
	var inj *Injector
	if inj.HostDown(0) || !inj.AggLinkUp(0) || inj.HostSlowdown(0) != 1 {
		t.Fatal("nil injector must report no host faults")
	}
}

func TestRandomScheduleHostKindsValidate(t *testing.T) {
	cfg := RandomConfig{
		NICs: 4, Queues: 2, Events: 64,
		Kinds: []Kind{HostCrash, AggLinkDown, HostBrownout, DMACorrupt, HandlerSlow},
	}
	sch := RandomSchedule(7, cfg)
	if err := sch.Validate(); err != nil {
		t.Fatalf("RandomSchedule emitted an invalid schedule: %v", err)
	}
	if len(sch) == 0 {
		t.Fatal("empty schedule")
	}
}

func TestRandomScheduleDeterministic(t *testing.T) {
	cfg := RandomConfig{NICs: 2, Queues: 4, Events: 16}
	a := RandomSchedule(99, cfg)
	b := RandomSchedule(99, cfg)
	if len(a) != 16 {
		t.Fatalf("got %d events, want 16", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := RandomSchedule(100, cfg)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
	for _, ev := range a {
		if ev.At <= 0 || ev.Dur <= 0 || ev.NIC >= 2 || ev.Queue >= 4 {
			t.Fatalf("out-of-range event: %v", ev)
		}
	}
}
