// Package faults is a deterministic, virtual-clock-driven fault
// injector for the capture simulator. A Schedule of timed fault windows
// is installed into an Injector before the run starts; every activation
// and deactivation is an ordinary scheduler event, and every hot-path
// query is an O(1) map lookup against the currently active windows. The
// same seed and schedule therefore produce the same fault sequence, the
// same recovery actions, and the same RunReport digest — chaos runs are
// regression-gateable exactly like the steady-state ones.
//
// The taxonomy covers the three layers the WireCAP stack can lose
// packets in: the NIC (descriptor write-back stalls, DMA frame
// corruption, whole-queue hangs, link flaps), host memory (transient
// allocation failure; pool exhaustion emerges from the consumer
// faults), and the consumer (slow, stalled, or crashed packet-handler
// threads). Injection points live in internal/nic, internal/mem, and
// the engines; recovery lives in internal/core only — the baseline
// engines take the same faults with no recovery, which is the point of
// the comparison.
package faults

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/vtime"
)

// Kind identifies one fault mechanism.
type Kind uint8

// Fault kinds.
const (
	// DescStall models descriptor write-back stalls: the queue's DMA
	// engine cannot complete writes, so arriving frames drop before
	// host memory.
	DescStall Kind = iota
	// DMACorrupt flips bytes in the frame during the DMA write and
	// marks the descriptor's integrity error bit (a bad checksum).
	DMACorrupt
	// QueueHang freezes one receive queue entirely: nothing reaches its
	// ring while the window is open.
	QueueHang
	// LinkFlap takes the whole NIC's link down: every offered frame is
	// lost at the wire.
	LinkFlap
	// AllocFail makes the queue's ring-buffer-pool allocations fail
	// transiently (the kernel allocator under memory pressure).
	AllocFail
	// HandlerSlow multiplies the packet handler's per-packet cost.
	HandlerSlow
	// HandlerStall parks the packet handler: it processes nothing until
	// the window closes.
	HandlerStall
	// HandlerCrash kills the packet handler permanently: the in-flight
	// packet completes, no further packet is ever fetched.
	HandlerCrash

	// The host-level kinds target a whole capture host in a fleet run
	// (internal/fleet); the Event's NIC field names the host. They are
	// inert for components that never query them.

	// HostCrash takes the entire host down: the NIC link drops, the
	// consumer stops, and all host-buffered aggregation state (open
	// batches, unsent link queue) is lost. Dur == 0 is a permanent kill;
	// Dur > 0 models a restart with state loss when the window closes.
	HostCrash
	// AggLinkDown partitions the host's aggregation link to the
	// collector: sends fail and the host falls back to its bounded
	// retry/backoff schedule. Short repeated windows model link flaps.
	AggLinkDown
	// HostBrownout slows the whole host down (thermal throttling, a
	// noisy neighbor): Severity multiplies the host's per-packet
	// processing cost (default 4, minimum > 1).
	HostBrownout

	numKinds
)

func (k Kind) String() string {
	switch k {
	case DescStall:
		return "desc_stall"
	case DMACorrupt:
		return "dma_corrupt"
	case QueueHang:
		return "queue_hang"
	case LinkFlap:
		return "link_flap"
	case AllocFail:
		return "alloc_fail"
	case HandlerSlow:
		return "handler_slow"
	case HandlerStall:
		return "handler_stall"
	case HandlerCrash:
		return "handler_crash"
	case HostCrash:
		return "host_crash"
	case AggLinkDown:
		return "agg_link_down"
	case HostBrownout:
		return "host_brownout"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one fault window: Kind active on {NIC, Queue} from At for
// Dur. Dur == 0 means permanent (the window never closes); for
// HandlerStall a zero duration is normalized to HandlerCrash, since a
// stall that never ends is a crash. Queue is ignored for LinkFlap.
//
// Severity refines the fault where it makes sense: for DMACorrupt it is
// the per-frame corruption probability (default 1, clamped to (0, 1]);
// for HandlerSlow it is the cost multiplier (default 4, minimum > 1).
type Event struct {
	At       vtime.Time
	Dur      vtime.Time
	Kind     Kind
	NIC      int
	Queue    int
	Severity float64
}

func (ev Event) String() string {
	return fmt.Sprintf("%s@{nic %d, queue %d} at %v for %v", ev.Kind, ev.NIC, ev.Queue, ev.At, ev.Dur)
}

// Schedule is a set of fault windows. Order does not matter; Install
// sorts a copy so identical schedules written in any order inject
// identically.
type Schedule []Event

// sorted returns a stably ordered copy: by activation time, then kind,
// then NIC, then queue.
func (s Schedule) sorted() Schedule {
	out := make(Schedule, len(s))
	copy(out, s)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.NIC != b.NIC {
			return a.NIC < b.NIC
		}
		return a.Queue < b.Queue
	})
	return out
}

// qkey addresses per-queue fault state.
type qkey struct{ nic, queue int }

// window is the active-window state for kinds that carry a severity:
// count handles overlapping windows, sev is the most recent severity.
type window struct {
	count int
	sev   float64
}

// Injector holds the installed schedule's live state and answers the
// hot-path queries. All query methods are nil-receiver safe (a nil
// injector reports "no fault"), so call sites need no guards.
type Injector struct {
	sched *vtime.Scheduler
	rnd   *vtime.Rand

	linkDown map[int]int // nic -> open flap windows
	hung     map[qkey]int
	stalled  map[qkey]int
	allocf   map[qkey]int
	corrupt  map[qkey]window
	slow     map[qkey]window
	stallEnd map[qkey]vtime.Time // handler stalled until (max across windows)
	crashed  map[qkey]bool

	// Host-level fault state, keyed by host id (the Event's NIC field).
	hostDown map[int]int
	aggDown  map[int]int
	brown    map[int]window

	// pending counts scheduled activation/deactivation events that have
	// not fired yet; Quiet reports pending == 0. Permanent faults leave
	// state behind but do not keep the injector un-quiet, so watchdogs
	// built on Quiet cannot keep the event queue alive forever.
	pending int

	onActivate   func()
	onTransition func(ev Event, open bool)
	trace        *obs.Recorder

	injected  [numKinds]uint64
	corrupted uint64
}

// NewInjector builds an injector bound to the run's scheduler. The seed
// drives the probabilistic corruption decisions only; windows are exact.
func NewInjector(sched *vtime.Scheduler, seed uint64) *Injector {
	return &Injector{
		sched:    sched,
		rnd:      vtime.NewRand(seed ^ 0x9e3779b97f4a7c15),
		linkDown: make(map[int]int),
		hung:     make(map[qkey]int),
		stalled:  make(map[qkey]int),
		allocf:   make(map[qkey]int),
		corrupt:  make(map[qkey]window),
		slow:     make(map[qkey]window),
		stallEnd: make(map[qkey]vtime.Time),
		crashed:  make(map[qkey]bool),
		hostDown: make(map[int]int),
		aggDown:  make(map[int]int),
		brown:    make(map[int]window),
	}
}

// OnActivate registers a callback run whenever any fault window opens.
// The recovery watchdog in internal/core uses it to wake up when a
// fault lands while it is parked; activation is a scheduler event, so
// the wake-up is deterministic.
func (inj *Injector) OnActivate(fn func()) { inj.onActivate = fn }

// OnTransition registers a callback run after any fault window opens
// (open == true) or closes (open == false), with the injector's state
// already updated. Fleet hosts (internal/fleet) use it to run their
// crash/restart transitions inside the same deterministic event as the
// state change. Permanent windows never close.
func (inj *Injector) OnTransition(fn func(ev Event, open bool)) { inj.onTransition = fn }

// SetTrace attaches the run's flight recorder: every window open/close
// becomes a fault-window annotation on the trace, so drops and spans
// that overlap a window carry its id. nil (the default) records
// nothing.
func (inj *Injector) SetTrace(rec *obs.Recorder) { inj.trace = rec }

// traceQueue is the queue scope a fault window is recorded under:
// LinkFlap and the host-level kinds take more than one queue down, so
// they annotate every queue (-1).
func traceQueue(ev Event) int {
	if ev.Kind == LinkFlap || hostScoped(ev.Kind) {
		return -1
	}
	return ev.Queue
}

// hostScoped reports whether the kind targets a whole host (the Event's
// Queue field is ignored).
func hostScoped(k Kind) bool {
	return k == HostCrash || k == AggLinkDown || k == HostBrownout
}

// shadowProne reports whether overlapping same-target windows of the
// kind silently shadow each other: the kinds that carry one live
// severity per target, where a second window overwrites the first's
// severity and the first deactivation restores nothing.
func shadowProne(k Kind) bool {
	return k == DMACorrupt || k == HandlerSlow || k == HostBrownout
}

// OverlapError is the typed rejection Validate returns for two windows
// of a shadow-prone kind that overlap on the same target: the later
// window's severity would silently shadow the earlier one's for the
// rest of both windows, which is never what a schedule means.
type OverlapError struct {
	A, B Event
}

func (e *OverlapError) Error() string {
	return fmt.Sprintf("faults: overlapping %s windows on the same target shadow each other: [%s] overlaps [%s]",
		e.A.Kind, e.A, e.B)
}

// target is the validation scope of an event: queue-scoped kinds key on
// {NIC, Queue}; LinkFlap and the host-level kinds key on NIC alone.
func target(ev Event) qkey {
	if ev.Kind == LinkFlap || hostScoped(ev.Kind) {
		return qkey{nic: ev.NIC, queue: -1}
	}
	return qkey{nic: ev.NIC, queue: ev.Queue}
}

// overlaps reports whether the two windows share any instant; Dur == 0
// is an unbounded (permanent) window.
func overlaps(a, b Event) bool {
	if a.Dur > 0 && a.At+a.Dur <= b.At {
		return false
	}
	if b.Dur > 0 && b.At+b.Dur <= a.At {
		return false
	}
	return true
}

// Validate rejects schedules whose windows would silently shadow each
// other: two windows of the same shadow-prone kind (DMACorrupt,
// HandlerSlow, HostBrownout) overlapping on the same target. Count-based
// kinds compose across overlaps and pass. The returned error is always
// an *OverlapError naming both windows.
func (s Schedule) Validate() error {
	byTarget := make(map[qkey][]Event)
	for _, ev := range s.sorted() {
		ev = normalize(ev)
		if !shadowProne(ev.Kind) {
			continue
		}
		k := target(ev)
		for _, prev := range byTarget[k] {
			if prev.Kind == ev.Kind && overlaps(prev, ev) {
				return &OverlapError{A: prev, B: ev}
			}
		}
		byTarget[k] = append(byTarget[k], ev)
	}
	return nil
}

// Install validates sch and schedules every event. Call before the run
// starts (an event in the virtual past panics, as all scheduling does).
// The only error is Validate's *OverlapError.
func (inj *Injector) Install(sch Schedule) error {
	if err := sch.Validate(); err != nil {
		return err
	}
	for _, ev := range sch.sorted() {
		ev := normalize(ev)
		inj.pending++
		inj.sched.At(ev.At, func() { inj.activate(ev) })
	}
	return nil
}

func normalize(ev Event) Event {
	if ev.Kind == HandlerStall && ev.Dur <= 0 {
		ev.Kind = HandlerCrash
	}
	switch ev.Kind {
	case DMACorrupt:
		if ev.Severity <= 0 || ev.Severity > 1 {
			ev.Severity = 1
		}
	case HandlerSlow, HostBrownout:
		if ev.Severity <= 1 {
			ev.Severity = 4
		}
	}
	return ev
}

func (inj *Injector) activate(ev Event) {
	inj.injected[ev.Kind]++
	inj.trace.FaultOpen(ev.Kind.String(), ev.NIC, traceQueue(ev), ev.At)
	k := qkey{ev.NIC, ev.Queue}
	switch ev.Kind {
	case DescStall:
		inj.stalled[k]++
	case DMACorrupt:
		w := inj.corrupt[k]
		w.count++
		w.sev = ev.Severity
		inj.corrupt[k] = w
	case QueueHang:
		inj.hung[k]++
	case LinkFlap:
		inj.linkDown[ev.NIC]++
	case AllocFail:
		inj.allocf[k]++
	case HandlerSlow:
		w := inj.slow[k]
		w.count++
		w.sev = ev.Severity
		inj.slow[k] = w
	case HandlerStall:
		end := ev.At + ev.Dur
		if end > inj.stallEnd[k] {
			inj.stallEnd[k] = end
		}
	case HandlerCrash:
		inj.crashed[k] = true
	case HostCrash:
		inj.hostDown[ev.NIC]++
	case AggLinkDown:
		inj.aggDown[ev.NIC]++
	case HostBrownout:
		w := inj.brown[ev.NIC]
		w.count++
		w.sev = ev.Severity
		inj.brown[ev.NIC] = w
	}
	// A permanent window (and a crash) never deactivates: settle its
	// pending slot now so Quiet can become true once the schedule is
	// exhausted, leaving only steady state behind.
	if ev.Dur > 0 && ev.Kind != HandlerCrash {
		inj.sched.After(ev.Dur, func() { inj.deactivate(ev) })
	} else {
		inj.pending--
	}
	if inj.onActivate != nil {
		inj.onActivate()
	}
	if inj.onTransition != nil {
		inj.onTransition(ev, true)
	}
}

func (inj *Injector) deactivate(ev Event) {
	inj.pending--
	inj.trace.FaultClose(ev.Kind.String(), ev.NIC, traceQueue(ev), ev.At+ev.Dur)
	k := qkey{ev.NIC, ev.Queue}
	switch ev.Kind {
	case DescStall:
		if inj.stalled[k]--; inj.stalled[k] == 0 {
			delete(inj.stalled, k)
		}
	case DMACorrupt:
		w := inj.corrupt[k]
		if w.count--; w.count == 0 {
			delete(inj.corrupt, k)
		} else {
			inj.corrupt[k] = w
		}
	case QueueHang:
		if inj.hung[k]--; inj.hung[k] == 0 {
			delete(inj.hung, k)
		}
	case LinkFlap:
		if inj.linkDown[ev.NIC]--; inj.linkDown[ev.NIC] == 0 {
			delete(inj.linkDown, ev.NIC)
		}
	case AllocFail:
		if inj.allocf[k]--; inj.allocf[k] == 0 {
			delete(inj.allocf, k)
		}
	case HandlerSlow:
		w := inj.slow[k]
		if w.count--; w.count == 0 {
			delete(inj.slow, k)
		} else {
			inj.slow[k] = w
		}
	case HandlerStall:
		// stallEnd already encodes the window end; nothing to clear
		// (HandlerStalled compares against now).
	case HostCrash:
		if inj.hostDown[ev.NIC]--; inj.hostDown[ev.NIC] == 0 {
			delete(inj.hostDown, ev.NIC)
		}
	case AggLinkDown:
		if inj.aggDown[ev.NIC]--; inj.aggDown[ev.NIC] == 0 {
			delete(inj.aggDown, ev.NIC)
		}
	case HostBrownout:
		w := inj.brown[ev.NIC]
		if w.count--; w.count == 0 {
			delete(inj.brown, ev.NIC)
		} else {
			inj.brown[ev.NIC] = w
		}
	}
	if inj.onTransition != nil {
		inj.onTransition(ev, false)
	}
}

// LinkUp reports whether the NIC's link is up. A crashed host (fleet
// runs key hosts by NIC id) takes its NIC's link down too: frames
// offered to a dead host are lost at the wire.
func (inj *Injector) LinkUp(nicID int) bool {
	return inj == nil || (inj.linkDown[nicID] == 0 && inj.hostDown[nicID] == 0)
}

// HostDown reports whether the host is inside a crash window.
func (inj *Injector) HostDown(host int) bool {
	return inj != nil && inj.hostDown[host] > 0
}

// AggLinkUp reports whether the host's aggregation link to the
// collector is currently passing traffic.
func (inj *Injector) AggLinkUp(host int) bool {
	return inj == nil || inj.aggDown[host] == 0
}

// HostSlowdown returns the host-wide processing cost multiplier (1 when
// no brownout window is open).
func (inj *Injector) HostSlowdown(host int) float64 {
	if inj == nil {
		return 1
	}
	if w, ok := inj.brown[host]; ok {
		return w.sev
	}
	return 1
}

// QueueHung reports whether the queue is frozen.
func (inj *Injector) QueueHung(nicID, queue int) bool {
	return inj != nil && inj.hung[qkey{nicID, queue}] > 0
}

// DescStalled reports whether descriptor write-back is stalled.
func (inj *Injector) DescStalled(nicID, queue int) bool {
	return inj != nil && inj.stalled[qkey{nicID, queue}] > 0
}

// AllocFails reports whether a pool allocation on the queue should fail
// transiently right now.
func (inj *Injector) AllocFails(nicID, queue int) bool {
	return inj != nil && inj.allocf[qkey{nicID, queue}] > 0
}

// CorruptFrame possibly corrupts a frame mid-DMA: under an open
// corruption window it flips one byte (position drawn from the
// injector's seeded generator) with the window's probability and
// reports whether it did. The caller marks the descriptor's error bit.
func (inj *Injector) CorruptFrame(nicID, queue int, frame []byte) bool {
	if inj == nil || len(frame) == 0 {
		return false
	}
	w, ok := inj.corrupt[qkey{nicID, queue}]
	if !ok {
		return false
	}
	if w.sev < 1 && inj.rnd.Float64() >= w.sev {
		return false
	}
	frame[inj.rnd.Intn(len(frame))] ^= 0x5a
	inj.corrupted++
	return true
}

// HandlerSlowdown returns the handler cost multiplier (1 when no slow
// window is open).
func (inj *Injector) HandlerSlowdown(nicID, queue int) float64 {
	if inj == nil {
		return 1
	}
	if w, ok := inj.slow[qkey{nicID, queue}]; ok {
		return w.sev
	}
	return 1
}

// HandlerStalled reports whether the handler is inside a stall window,
// and until when.
func (inj *Injector) HandlerStalled(nicID, queue int) (until vtime.Time, stalled bool) {
	if inj == nil {
		return 0, false
	}
	end, ok := inj.stallEnd[qkey{nicID, queue}]
	if !ok || end <= inj.sched.Now() {
		return 0, false
	}
	return end, true
}

// HandlerCrashed reports whether the handler has crashed.
func (inj *Injector) HandlerCrashed(nicID, queue int) bool {
	return inj != nil && inj.crashed[qkey{nicID, queue}]
}

// Quiet reports that no schedule event (activation or window close) is
// outstanding: every remaining fault effect is steady state. Watchdogs
// use it to decide the injector cannot surprise them between now and
// the end of the run without OnActivate firing — which, after Quiet,
// it cannot.
func (inj *Injector) Quiet() bool { return inj == nil || inj.pending == 0 }

// Injected returns how many windows of kind k have activated.
func (inj *Injector) Injected(k Kind) uint64 {
	if inj == nil {
		return 0
	}
	return inj.injected[k]
}

// CorruptedFrames returns how many frames CorruptFrame actually
// corrupted.
func (inj *Injector) CorruptedFrames() uint64 {
	if inj == nil {
		return 0
	}
	return inj.corrupted
}

// Register exports the injector's counters: one faults_injected_total
// series per kind (labeled kind=...) plus faults_corrupted_frames_total.
// All function-backed — sampled at snapshot time only.
func (inj *Injector) Register(reg *metrics.Registry) {
	for k := Kind(0); k < numKinds; k++ {
		k := k
		reg.CounterFunc("faults_injected_total",
			func() uint64 { return inj.injected[k] },
			metrics.L("kind", k.String()))
	}
	reg.CounterFunc("faults_corrupted_frames_total",
		func() uint64 { return inj.corrupted })
}

// RandomConfig parameterizes RandomSchedule.
type RandomConfig struct {
	// NICs and Queues bound the fault targets. Defaults 1 and 1.
	NICs, Queues int
	// Events is the number of windows to draw. Default 8.
	Events int
	// Horizon is the time range windows start in. Default 100 ms.
	Horizon vtime.Time
	// MaxDur bounds each window's duration. Default Horizon / 4.
	MaxDur vtime.Time
	// Kinds restricts the drawn kinds; nil means every single-host kind
	// (the host-scoped fleet kinds are opted into explicitly).
	Kinds []Kind
}

// RandomSchedule draws a reproducible schedule from the seed — the
// property tests' fuzz surface. The same seed and config always produce
// the same schedule. Draws that would fail Validate (a shadow-prone
// window overlapping an earlier draw on the same target) are discarded
// deterministically, so the result always installs cleanly.
func RandomSchedule(seed uint64, cfg RandomConfig) Schedule {
	if cfg.NICs <= 0 {
		cfg.NICs = 1
	}
	if cfg.Queues <= 0 {
		cfg.Queues = 1
	}
	if cfg.Events <= 0 {
		cfg.Events = 8
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 100 * vtime.Millisecond
	}
	if cfg.MaxDur <= 0 {
		cfg.MaxDur = cfg.Horizon / 4
	}
	kinds := cfg.Kinds
	if kinds == nil {
		for k := Kind(0); k < HostCrash; k++ {
			kinds = append(kinds, k)
		}
	}
	r := vtime.NewRand(seed)
	sch := make(Schedule, 0, cfg.Events)
	for i := 0; i < cfg.Events; i++ {
		ev := Event{
			At:    vtime.Time(r.Intn(int(cfg.Horizon))) + 1,
			Dur:   vtime.Time(r.Intn(int(cfg.MaxDur))) + 1,
			Kind:  kinds[r.Intn(len(kinds))],
			NIC:   r.Intn(cfg.NICs),
			Queue: r.Intn(cfg.Queues),
		}
		switch ev.Kind {
		case DMACorrupt:
			ev.Severity = 0.25 + r.Float64()*0.75
		case HandlerSlow, HostBrownout:
			ev.Severity = 2 + r.Float64()*6
		}
		if shadowProne(ev.Kind) && Schedule(append(sch[:len(sch):len(sch)], ev)).Validate() != nil {
			continue
		}
		sch = append(sch, ev)
	}
	return sch
}
