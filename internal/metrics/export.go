package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/vtime"
)

// HistValue is a histogram rendered for export: the summary the
// experiment tables report, not the raw buckets.
type HistValue struct {
	Count uint64 `json:"count"`
	Sum   int64  `json:"sum"`
	Min   int64  `json:"min"`
	Max   int64  `json:"max"`
	P50   int64  `json:"p50"`
	P90   int64  `json:"p90"`
	P99   int64  `json:"p99"`
}

// SeriesValue is one series observed at snapshot time. Exactly one of
// Counter, Gauge, and Hist is meaningful, selected by Kind.
type SeriesValue struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Kind    string            `json:"kind"`
	Counter uint64            `json:"counter,omitempty"`
	Gauge   int64             `json:"gauge,omitempty"`
	Hist    *HistValue        `json:"histogram,omitempty"`

	sortKey string
}

// Snapshot is the registry's full state observed at one virtual-time
// instant, in deterministic (sorted) order. encoding/json renders label
// maps with sorted keys, so marshalling a Snapshot is byte-deterministic.
type Snapshot struct {
	At     vtime.Time    `json:"at_ns"`
	Series []SeriesValue `json:"series"`
}

// Snapshot observes every series at virtual time at. Function-backed
// series are sampled now; direct instruments are read. The result is
// sorted by name, then by canonical label encoding.
func (r *Registry) Snapshot(at vtime.Time) Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{At: at}
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := r.families[name]
		all := f.ordered
		if f.overflow != nil {
			all = append(append([]*series{}, f.ordered...), f.overflow)
		}
		for _, s := range all {
			sv := SeriesValue{Name: name, Kind: f.kind.String(), sortKey: s.key}
			if len(s.labels) > 0 {
				sv.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					sv.Labels[l.Key] = l.Value
				}
			}
			switch f.kind {
			case KindCounter:
				if s.cf != nil {
					sv.Counter = s.cf()
				} else {
					sv.Counter = s.c.Value()
				}
			case KindGauge:
				if s.gf != nil {
					sv.Gauge = s.gf()
				} else {
					sv.Gauge = s.g.Value()
				}
			case KindHistogram:
				h := &s.h.h
				sv.Hist = &HistValue{
					Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max(),
					P50: h.Percentile(0.50), P90: h.Percentile(0.90), P99: h.Percentile(0.99),
				}
			}
			snap.Series = append(snap.Series, sv)
		}
	}
	sort.SliceStable(snap.Series, func(i, j int) bool {
		if snap.Series[i].Name != snap.Series[j].Name {
			return snap.Series[i].Name < snap.Series[j].Name
		}
		return snap.Series[i].sortKey < snap.Series[j].sortKey
	})
	return snap
}

// Get returns the series with the given name and exact label set.
func (s Snapshot) Get(name string, labels ...Label) (SeriesValue, bool) {
	_, key := canonicalize(labels)
	for _, sv := range s.Series {
		if sv.Name == name && sv.sortKey == key {
			return sv, true
		}
	}
	return SeriesValue{}, false
}

// CounterTotal sums every series of a counter metric across its labels —
// the "whole NIC" or "whole engine" view of a per-queue counter.
func (s Snapshot) CounterTotal(name string) uint64 {
	var n uint64
	for _, sv := range s.Series {
		if sv.Name == name {
			n += sv.Counter
		}
	}
	return n
}

// Sub returns this snapshot minus prev: counters and histogram counts/sums
// become deltas, gauges and histogram shape statistics keep their current
// values. Series absent from prev pass through unchanged. The interval is
// keyed to the virtual clock via both endpoints' At values.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	idx := make(map[string]SeriesValue, len(prev.Series))
	for _, sv := range prev.Series {
		idx[sv.Name+"\x00"+sv.sortKey] = sv
	}
	out := Snapshot{At: s.At, Series: make([]SeriesValue, 0, len(s.Series))}
	for _, sv := range s.Series {
		if p, ok := idx[sv.Name+"\x00"+sv.sortKey]; ok {
			switch sv.Kind {
			case KindCounter.String():
				sv.Counter -= p.Counter
			case KindHistogram.String():
				if sv.Hist != nil && p.Hist != nil {
					h := *sv.Hist
					h.Count -= p.Hist.Count
					h.Sum -= p.Hist.Sum
					sv.Hist = &h
				}
			}
		}
		out.Series = append(out.Series, sv)
	}
	return out
}

// labelString renders labels in canonical {k="v",...} form.
func (sv SeriesValue) labelString() string {
	if len(sv.Labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(sv.Labels))
	for k := range sv.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", k, sv.Labels[k])
	}
	sb.WriteByte('}')
	return sb.String()
}

// WriteText renders the snapshot in a stable one-line-per-series text
// form suitable for diffing.
func (s Snapshot) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# snapshot at %v\n", s.At); err != nil {
		return err
	}
	for _, sv := range s.Series {
		var err error
		switch sv.Kind {
		case KindHistogram.String():
			h := sv.Hist
			_, err = fmt.Fprintf(w, "%s%s count=%d sum=%d min=%d max=%d p50=%d p90=%d p99=%d\n",
				sv.Name, sv.labelString(), h.Count, h.Sum, h.Min, h.Max, h.P50, h.P90, h.P99)
		case KindGauge.String():
			_, err = fmt.Fprintf(w, "%s%s %d\n", sv.Name, sv.labelString(), sv.Gauge)
		default:
			_, err = fmt.Fprintf(w, "%s%s %d\n", sv.Name, sv.labelString(), sv.Counter)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// MarshalJSON renders the snapshot deterministically (series pre-sorted,
// label maps sorted by encoding/json).
func (s Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot // avoid recursion
	return json.Marshal(alias(s))
}
