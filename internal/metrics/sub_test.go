package metrics

import "testing"

// TestSubSeriesAppearsMidInterval is the underflow regression guard for
// the health sampler: a series registered after the previous snapshot
// has no prev entry, so Sub must pass its full value through unchanged
// rather than subtracting garbage (a uint64 counter underflowing to
// ~2^64 would poison every health delta downstream).
func TestSubSeriesAppearsMidInterval(t *testing.T) {
	r := NewRegistry()
	old := r.Counter("old_total")
	old.Add(4)
	before := r.Snapshot(1000)

	// These series first exist in the interval (1000, 2000].
	fresh := r.Counter("fresh_total")
	fresh.Add(11)
	r.Gauge("fresh_depth").Set(-3)
	r.Histogram("fresh_lat").Record(100)
	old.Add(2)
	after := r.Snapshot(2000)

	d := after.Sub(before)
	if sv, ok := d.Get("fresh_total"); !ok || sv.Counter != 11 {
		t.Fatalf("new counter delta = %d (ok=%v), want full value 11", sv.Counter, ok)
	}
	if sv, ok := d.Get("fresh_depth"); !ok || sv.Gauge != -3 {
		t.Fatalf("new gauge in diff = %d (ok=%v), want current value -3", sv.Gauge, ok)
	}
	if sv, ok := d.Get("fresh_lat"); !ok || sv.Hist == nil || sv.Hist.Count != 1 {
		t.Fatalf("new histogram in diff = %+v (ok=%v), want count 1", sv.Hist, ok)
	}
	if sv, ok := d.Get("old_total"); !ok || sv.Counter != 2 {
		t.Fatalf("pre-existing counter delta = %d (ok=%v), want 2", sv.Counter, ok)
	}
}

// TestSubUnchangedAndVanishedSeries pins the other edges the sampler
// leans on: an untouched counter yields a zero delta (the sampler
// elides it), and a series present only in prev — possible when a
// bounded family evicts — is simply dropped, never negated.
func TestSubUnchangedAndVanishedSeries(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("stable_total").Add(9)
	r1.Counter("gone_total").Add(5)
	before := r1.Snapshot(1000)

	r2 := NewRegistry()
	r2.Counter("stable_total").Add(9)
	after := r2.Snapshot(2000)

	d := after.Sub(before)
	if sv, ok := d.Get("stable_total"); !ok || sv.Counter != 0 {
		t.Fatalf("unchanged counter delta = %d (ok=%v), want 0", sv.Counter, ok)
	}
	if _, ok := d.Get("gone_total"); ok {
		t.Fatal("series present only in prev leaked into the diff")
	}
	if len(d.Series) != 1 {
		t.Fatalf("diff has %d series, want 1", len(d.Series))
	}
}
