package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"repro/internal/vtime"
)

func TestSameNameAndLabelsShareInstance(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("pkts", L("queue", "0"), L("nic", "1"))
	b := r.Counter("pkts", L("nic", "1"), L("queue", "0")) // order-insensitive
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	a.Add(3)
	if b.Value() != 3 {
		t.Fatalf("shared counter value = %d, want 3", b.Value())
	}
	if c := r.Counter("pkts", L("queue", "1"), L("nic", "1")); c == a {
		t.Fatal("distinct labels returned the same counter")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("m")
}

func TestDuplicateLabelKeyPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate label key did not panic")
		}
	}()
	r.Counter("m", L("q", "0"), L("q", "1"))
}

func TestCardinalityBound(t *testing.T) {
	r := NewRegistry()
	r.SetMaxSeries(4)
	var within []*Counter
	for i := 0; i < 4; i++ {
		within = append(within, r.Counter("bounded", L("i", fmt.Sprint(i))))
	}
	over1 := r.Counter("bounded", L("i", "100"))
	over2 := r.Counter("bounded", L("i", "200"))
	if over1 != over2 {
		t.Fatal("past-the-bound registrations should share the overflow series")
	}
	for _, c := range within {
		if c == over1 {
			t.Fatal("in-bound counter aliases the overflow series")
		}
	}
	if d := r.Dropped("bounded"); d != 2 {
		t.Fatalf("Dropped = %d, want 2", d)
	}
	over1.Add(7)
	snap := r.Snapshot(0)
	sv, ok := snap.Get("bounded", L(OverflowLabel, "true"))
	if !ok {
		t.Fatal("overflow series missing from snapshot")
	}
	if sv.Counter != 7 {
		t.Fatalf("overflow counter = %d, want 7", sv.Counter)
	}
	if got := len(snap.Series); got != 6 { // 4 in-bound + overflow + labels_overflowed
		t.Fatalf("snapshot has %d series, want 6", got)
	}
}

// TestLabelsOverflowed: a cardinality spill must be observable from the
// snapshot itself, not only via the Dropped accessor — operators reading
// an export need to know which families hit the bound and by how much.
func TestLabelsOverflowed(t *testing.T) {
	r := NewRegistry()
	r.SetMaxSeries(2)
	if _, ok := r.Snapshot(0).Get(OverflowedMetric, L("metric", "hot")); ok {
		t.Fatal("labels_overflowed exists before any spill")
	}
	for i := 0; i < 5; i++ {
		r.Counter("hot", L("i", fmt.Sprint(i))).Inc()
	}
	snap := r.Snapshot(0)
	sv, ok := snap.Get(OverflowedMetric, L("metric", "hot"))
	if !ok {
		t.Fatal("labels_overflowed{metric=hot} missing after spill")
	}
	if sv.Counter != 3 { // 5 registered, bound 2
		t.Fatalf("labels_overflowed = %d, want 3", sv.Counter)
	}
	if d := r.Dropped("hot"); d != sv.Counter {
		t.Fatalf("Dropped (%d) disagrees with labels_overflowed (%d)", d, sv.Counter)
	}
	// Collapsed combinations are not remembered, so a repeat lookup of one
	// counts again — labels_overflowed tracks Dropped exactly, by design.
	r.Counter("hot", L("i", "3")).Inc()
	sv, _ = r.Snapshot(0).Get(OverflowedMetric, L("metric", "hot"))
	if d := r.Dropped("hot"); d != 4 || sv.Counter != d {
		t.Fatalf("after repeat lookup: Dropped = %d, labels_overflowed = %d, want both 4", d, sv.Counter)
	}
}

// TestLabelsOverflowedSelfBound: when labels_overflowed itself hits the
// cardinality bound, its spills collapse into its own overflow series
// without recursing.
func TestLabelsOverflowedSelfBound(t *testing.T) {
	r := NewRegistry()
	r.SetMaxSeries(1)
	// Each family needs two combinations to spill once; with bound 1 the
	// second registration overflows and mints one labels_overflowed series
	// per family name — the third family's spill overflows labels_overflowed.
	for f := 0; f < 3; f++ {
		name := fmt.Sprintf("fam%d", f)
		r.Counter(name, L("i", "0"))
		r.Counter(name, L("i", "1"))
	}
	if d := r.Dropped(OverflowedMetric); d != 2 {
		t.Fatalf("labels_overflowed Dropped = %d, want 2", d)
	}
	if _, ok := r.Snapshot(0).Get(OverflowedMetric, L(OverflowLabel, "true")); !ok {
		t.Fatal("labels_overflowed's own overflow series missing")
	}
}

// TestConcurrentRegistration exercises the registry's concurrency
// contract — registration is goroutine-safe, instrument updates belong to
// one goroutine each — the way the parallel experiment runner uses it.
// Run with -race to make it meaningful.
func TestConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				// Registrations of shared names race benignly by design.
				c := r.Counter("shared", L("series", fmt.Sprint(i%16)))
				_ = c == nil
				// Updates touch only this worker's own series.
				r.Gauge("gauge", L("worker", fmt.Sprint(g))).Set(int64(i))
				r.Histogram("hist", L("worker", fmt.Sprint(g))).Record(int64(i))
			}
		}(g)
	}
	wg.Wait()
	snap := r.Snapshot(vtime.Time(1))
	var sharedSeries int
	for _, sv := range snap.Series {
		if sv.Name == "shared" {
			sharedSeries++
		}
	}
	if sharedSeries != 16 {
		t.Fatalf("shared has %d series, want 16", sharedSeries)
	}
	for g := 0; g < 8; g++ {
		sv, ok := snap.Get("hist", L("worker", fmt.Sprint(g)))
		if !ok || sv.Hist.Count != 200 {
			t.Fatalf("worker %d histogram missing or short: %+v", g, sv)
		}
	}
}

func buildSample() *Registry {
	r := NewRegistry()
	for q := 0; q < 3; q++ {
		c := r.Counter("rx_pkts", L("queue", fmt.Sprint(q)))
		c.Add(uint64(100 * (q + 1)))
		r.Gauge("ring_ready", L("queue", fmt.Sprint(q))).Set(int64(64 - q))
		h := r.Histogram("delay_ns", L("queue", fmt.Sprint(q)))
		for i := 0; i < 100; i++ {
			h.Record(int64(i * (q + 1)))
		}
	}
	q0 := 0
	r.CounterFunc("sampled", func() uint64 { return uint64(q0 + 42) }, L("kind", "func"))
	r.GaugeFunc("sampled_gauge", func() int64 { return 7 })
	return r
}

// TestSnapshotDeterminism: two identically constructed registries must
// export byte-identical JSON and text at the same virtual instant.
func TestSnapshotDeterminism(t *testing.T) {
	a, err := json.Marshal(buildSample().Snapshot(12345))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(buildSample().Snapshot(12345))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("JSON snapshots diverge:\n%s\n%s", a, b)
	}
	var ta, tb bytes.Buffer
	if err := buildSample().Snapshot(12345).WriteText(&ta); err != nil {
		t.Fatal(err)
	}
	if err := buildSample().Snapshot(12345).WriteText(&tb); err != nil {
		t.Fatal(err)
	}
	if ta.String() != tb.String() {
		t.Fatalf("text snapshots diverge:\n%s\n%s", ta.String(), tb.String())
	}
}

func TestSnapshotSubAndTotals(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n", L("q", "0"))
	c2 := r.Counter("n", L("q", "1"))
	g := r.Gauge("depth")
	h := r.Histogram("lat")
	c.Add(10)
	c2.Add(5)
	g.Set(3)
	h.Record(100)
	before := r.Snapshot(1000)
	c.Add(7)
	g.Set(9)
	h.Record(200)
	after := r.Snapshot(2000)
	d := after.Sub(before)
	if d.At != 2000 {
		t.Fatalf("diff At = %v", d.At)
	}
	if sv, _ := d.Get("n", L("q", "0")); sv.Counter != 7 {
		t.Fatalf("counter delta = %d, want 7", sv.Counter)
	}
	if sv, _ := d.Get("depth"); sv.Gauge != 9 {
		t.Fatalf("gauge in diff = %d, want current value 9", sv.Gauge)
	}
	if sv, _ := d.Get("lat"); sv.Hist.Count != 1 {
		t.Fatalf("histogram count delta = %d, want 1", sv.Hist.Count)
	}
	if total := after.CounterTotal("n"); total != 22 {
		t.Fatalf("CounterTotal = %d, want 22", total)
	}
}

// TestHotPathAllocs is the regression guard for the tentpole property:
// counter, gauge, and histogram updates must not allocate.
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", L("q", "0"))
	g := r.Gauge("g", L("q", "0"))
	h := r.Histogram("h", L("q", "0"))
	if a := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(42)
		g.Add(-1)
		h.Record(12345)
	}); a > 0 {
		t.Errorf("hot-path updates allocate %.2f/op, want 0", a)
	}
}
