// Package metrics is the simulator's observability layer: a registry of
// named counters, gauges, and log-bucketed histograms with label support
// for per-NIC/per-queue/per-engine dimensions.
//
// The package is built for the simulator's constraints:
//
//   - The hot path allocates nothing. Registration (Counter, Gauge,
//     Histogram) happens at construction time and returns a pointer whose
//     update methods are plain field operations — no maps, no interface
//     boxing, no atomics (a simulation run is single-threaded by design;
//     see internal/vtime).
//   - Registration itself is safe for concurrent use, because the
//     experiment harness builds many independent simulations in parallel
//     worker goroutines and libraries may share a registry while setting
//     up.
//   - Observation is pull-based and deterministic: a Snapshot taken at a
//     virtual-time instant renders every series in sorted order, so two
//     identical runs produce byte-identical exports — the property the
//     CI regression gate (cmd/ci-gate) is built on.
//   - Series cardinality is bounded per metric name. Past the bound, new
//     label combinations collapse into a shared overflow series instead of
//     growing memory without limit.
//
// Components that already keep counters for simulation logic (the NIC's
// ring stats, WireCAP's chunk accounting) export them through CounterFunc
// and GaugeFunc, which sample the source only at snapshot time and cost
// the hot path nothing at all.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/stats"
)

// Kind discriminates the metric types a name can be registered as.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Label is one dimension of a series, e.g. {queue 3}.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing count. Updates are plain integer
// operations: the hot path performs no allocation and no synchronization.
type Counter struct {
	v uint64
}

// Inc adds one.
//
//wirecap:hotpath
func (c *Counter) Inc() { c.v++ }

// Add adds n.
//
//wirecap:hotpath
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is an instantaneous level that can move both ways.
type Gauge struct {
	v int64
}

// Set replaces the gauge value.
//
//wirecap:hotpath
func (g *Gauge) Set(v int64) { g.v = v }

// Add moves the gauge by d.
//
//wirecap:hotpath
func (g *Gauge) Add(d int64) { g.v += d }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v }

// Histogram is a log-bucketed distribution built on stats.Histogram:
// constant-time, allocation-free recording with ~3% relative error on
// percentile queries.
type Histogram struct {
	h stats.Histogram
}

// Record adds one sample.
//
//wirecap:hotpath
func (h *Histogram) Record(v int64) { h.h.Record(v) }

// Count returns the number of samples recorded.
func (h *Histogram) Count() uint64 { return h.h.Count() }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.h.Sum() }

// Percentile estimates the q-quantile.
func (h *Histogram) Percentile(q float64) int64 { return h.h.Percentile(q) }

// DefaultMaxSeries bounds the number of distinct label combinations per
// metric name; combinations past the bound share one overflow series.
const DefaultMaxSeries = 1024

// OverflowLabel marks the shared series that absorbs label combinations
// rejected by the cardinality bound.
const OverflowLabel = "overflow"

// OverflowedMetric is the counter family that makes cardinality spills
// observable: labels_overflowed{metric=<family>} counts every distinct
// label combination the bound collapsed into that family's overflow
// series. The series exists only once a spill has happened, so
// registries that never overflow export exactly what they did before.
const OverflowedMetric = "labels_overflowed"

// series is one (name, labels) combination and its instrument. Exactly
// one of the instrument fields is non-nil, matching the family's kind.
type series struct {
	labels []Label // sorted by key
	key    string  // canonical label encoding

	c  *Counter
	g  *Gauge
	h  *Histogram
	cf func() uint64
	gf func() int64
}

// family is every series registered under one metric name.
type family struct {
	name     string
	kind     Kind
	byKey    map[string]*series
	ordered  []*series
	overflow *series // shared past-the-bound series, created on demand
	dropped  uint64  // distinct combinations collapsed into overflow
}

// Registry holds metric families. The zero value is not ready; use
// NewRegistry. Registration and snapshotting are safe for concurrent use;
// updating a registered instrument is not (one simulation run is one
// goroutine — concurrent runs use separate registries).
type Registry struct {
	mu        sync.Mutex
	maxSeries int
	families  map[string]*family
}

// NewRegistry returns an empty registry with the default cardinality
// bound.
func NewRegistry() *Registry {
	return &Registry{maxSeries: DefaultMaxSeries, families: make(map[string]*family)}
}

// SetMaxSeries adjusts the per-name cardinality bound. It affects only
// registrations that happen after the call.
func (r *Registry) SetMaxSeries(n int) {
	if n < 1 {
		n = 1
	}
	r.mu.Lock()
	r.maxSeries = n
	r.mu.Unlock()
}

// canonicalize validates and sorts labels, returning the sorted copy and
// its canonical key encoding.
func canonicalize(labels []Label) ([]Label, string) {
	if len(labels) == 0 {
		return nil, ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	for i, l := range ls {
		if l.Key == "" {
			panic("metrics: empty label key")
		}
		if i > 0 && ls[i-1].Key == l.Key {
			panic(fmt.Sprintf("metrics: duplicate label key %q", l.Key))
		}
		sb.WriteString(l.Key)
		sb.WriteByte(1)
		sb.WriteString(l.Value)
		sb.WriteByte(2)
	}
	return ls, sb.String()
}

// lookup returns the series for (name, labels), creating it if absent.
// Creation past the cardinality bound returns the family's shared
// overflow series.
func (r *Registry) lookup(name string, kind Kind, labels []Label) *series {
	if name == "" {
		panic("metrics: empty metric name")
	}
	ls, key := canonicalize(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lookupLocked(name, kind, ls, key)
}

// lookupLocked is lookup's body, split out so the overflow branch can
// register the spill counter under the already-held lock.
func (r *Registry) lookupLocked(name string, kind Kind, ls []Label, key string) *series {
	f := r.families[name]
	if f == nil {
		f = &family{name: name, kind: kind, byKey: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %v, requested as %v", name, f.kind, kind))
	}
	if s, ok := f.byKey[key]; ok {
		return s
	}
	if len(f.ordered) >= r.maxSeries {
		f.dropped++
		if name != OverflowedMetric {
			// Make the spill observable. Guarded against recursing on
			// itself: if labels_overflowed ever hits the bound, its spills
			// land in its own overflow series without another hop.
			ols, okey := canonicalize([]Label{{Key: "metric", Value: name}})
			r.lookupLocked(OverflowedMetric, KindCounter, ols, okey).c.Inc()
		}
		if f.overflow == nil {
			ols, okey := canonicalize([]Label{{Key: OverflowLabel, Value: "true"}})
			f.overflow = newSeries(kind, ols)
			f.overflow.key = okey
		}
		return f.overflow
	}
	s := newSeries(kind, ls)
	s.key = key
	f.byKey[key] = s
	f.ordered = append(f.ordered, s)
	return s
}

func newSeries(kind Kind, labels []Label) *series {
	s := &series{labels: labels}
	switch kind {
	case KindCounter:
		s.c = &Counter{}
	case KindGauge:
		s.g = &Gauge{}
	case KindHistogram:
		s.h = &Histogram{}
	}
	return s
}

// Counter returns the counter for (name, labels), registering it on first
// use. The same name and labels always return the same instance.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.lookup(name, KindCounter, labels).c
}

// Gauge returns the gauge for (name, labels), registering it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.lookup(name, KindGauge, labels).g
}

// Histogram returns the histogram for (name, labels), registering it on
// first use.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	return r.lookup(name, KindHistogram, labels).h
}

// CounterFunc registers a counter series whose value is sampled from fn
// at snapshot time. It is the zero-hot-path-cost bridge for components
// that already maintain counters for simulation logic. Re-registering the
// same (name, labels) replaces the function.
func (r *Registry) CounterFunc(name string, fn func() uint64, labels ...Label) {
	if fn == nil {
		panic("metrics: nil CounterFunc")
	}
	s := r.lookup(name, KindCounter, labels)
	r.mu.Lock()
	s.cf = fn
	r.mu.Unlock()
}

// GaugeFunc registers a gauge series sampled from fn at snapshot time.
func (r *Registry) GaugeFunc(name string, fn func() int64, labels ...Label) {
	if fn == nil {
		panic("metrics: nil GaugeFunc")
	}
	s := r.lookup(name, KindGauge, labels)
	r.mu.Lock()
	s.gf = fn
	r.mu.Unlock()
}

// Dropped returns how many distinct label combinations of name were
// collapsed into the overflow series by the cardinality bound.
func (r *Registry) Dropped(name string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.families[name]; f != nil {
		return f.dropped
	}
	return 0
}
