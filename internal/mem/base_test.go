package mem

import (
	"errors"
	"testing"
)

func TestBaseMarksDeliveredPackets(t *testing.T) {
	p := newMappedPool(t, 8, 2)
	c, _ := p.AllocFree()
	for i := 0; i < 5; i++ {
		c.SetPacket(i, 10, 0)
	}
	if c.PendingCount() != 5 {
		t.Fatalf("pending = %d", c.PendingCount())
	}
	c.SetBase(5)
	if c.PendingCount() != 0 || c.Base() != 5 || c.Count() != 5 {
		t.Fatalf("after SetBase: base %d count %d pending %d", c.Base(), c.Count(), c.PendingCount())
	}
	// The chunk keeps filling after a flush.
	for i := 5; i < 8; i++ {
		c.SetPacket(i, 10, 0)
	}
	if c.PendingCount() != 3 || !c.Full() {
		t.Fatalf("pending %d full %v", c.PendingCount(), c.Full())
	}
	// Capture metadata reflects only undelivered packets.
	meta, err := p.Capture(c)
	if err != nil {
		t.Fatal(err)
	}
	if meta.PktCount != 3 {
		t.Fatalf("meta.PktCount = %d, want 3", meta.PktCount)
	}
	// Recycle validation uses count-base too, and resets base.
	if err := p.Recycle(meta); err != nil {
		t.Fatal(err)
	}
	c2, _ := p.AllocFree()
	if c2.Base() != 0 && c.Base() != 0 {
		t.Fatal("base not reset on recycle")
	}
}

func TestSetBaseBoundsPanics(t *testing.T) {
	p := NewPool(0, 0, 4, 1)
	c, _ := p.AllocFree()
	c.SetPacket(0, 1, 0)
	for _, k := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetBase(%d) did not panic", k)
				}
			}()
			c.SetBase(k)
		}()
	}
}

func TestRecycleCountValidatesPending(t *testing.T) {
	p := newMappedPool(t, 4, 1)
	c, _ := p.AllocFree()
	c.SetPacket(0, 1, 0)
	c.SetPacket(1, 1, 0)
	c.SetBase(1)
	meta, err := p.Capture(c)
	if err != nil {
		t.Fatal(err)
	}
	// Forged count equal to raw count (2) instead of pending (1).
	bad := meta
	bad.PktCount = 2
	if err := p.Recycle(bad); !errors.Is(err, ErrBadPktCount) {
		t.Fatalf("err = %v", err)
	}
	if err := p.Recycle(meta); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsCatchBadBase(t *testing.T) {
	p := newMappedPool(t, 4, 1)
	c, _ := p.AllocFree()
	c.SetPacket(0, 1, 0)
	c.base = 3 // corrupt directly, bypassing SetBase
	if err := p.CheckInvariants(); err == nil {
		t.Fatal("invariant check missed base > count")
	}
}
