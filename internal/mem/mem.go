// Package mem simulates the host-memory side of packet capture: fixed-size
// packet-buffer cells, chunks of cells occupying (simulated) physically
// contiguous memory, ring buffer pools with the free/attached/captured
// chunk life cycle from the WireCAP paper (§3.2.1), and the three address
// spaces — DMA, kernel, process — a chunk is visible in.
//
// "Zero-copy" in the simulation means a chunk changes hands by metadata
// only; the cell bytes stay put. The cost model in internal/core charges
// virtual time accordingly.
package mem

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/vtime"
)

// CellSize is the size of one packet-buffer cell. The paper's
// implementation uses 2 KB cells (§5a).
const CellSize = 2048

// ChunkState is the life-cycle state of a packet buffer chunk.
type ChunkState int

// Chunk states (paper §3.2.1).
const (
	// StateFree: maintained in the kernel, available for (re)use.
	StateFree ChunkState = iota
	// StateAttached: attached to a descriptor segment, receiving packets.
	StateAttached
	// StateCaptured: filled and handed to user space.
	StateCaptured
)

func (s ChunkState) String() string {
	switch s {
	case StateFree:
		return "free"
	case StateAttached:
		return "attached"
	case StateCaptured:
		return "captured"
	default:
		return fmt.Sprintf("ChunkState(%d)", int(s))
	}
}

// ChunkID globally identifies a packet buffer chunk as the paper's
// {nic_id, ring_id, chunk_id} tuple.
type ChunkID struct {
	NIC, Ring, Chunk int
}

func (id ChunkID) String() string {
	return fmt.Sprintf("{nic %d, ring %d, chunk %d}", id.NIC, id.Ring, id.Chunk)
}

// Addr is a simulated memory address. Distinct address spaces use distinct
// high bits so confusing them is detectable.
type Addr uint64

// Address-space tags.
const (
	dmaSpace    Addr = 0x1 << 60
	kernelSpace Addr = 0x2 << 60
	procSpace   Addr = 0x3 << 60
	spaceMask   Addr = 0xf << 60
)

// Space returns a human-readable name of the address's space.
func (a Addr) Space() string {
	switch a & spaceMask {
	case dmaSpace:
		return "dma"
	case kernelSpace:
		return "kernel"
	case procSpace:
		return "process"
	default:
		return "invalid"
	}
}

// Chunk is a group of M packet-buffer cells occupying simulated physically
// contiguous memory. A chunk is created by a Pool and never freed; only
// its state changes.
type Chunk struct {
	id    ChunkID
	state ChunkState
	pool  *Pool

	// cells[i] is the i-th packet buffer; lens[i] the valid bytes in it;
	// stamps[i] the packet's arrival (capture) timestamp.
	cells  [][]byte
	lens   []int
	stamps []vtime.Time

	// count is the number of cells filled so far; base is the index of
	// the first undelivered packet. Normally base is 0; a timeout flush
	// (which copies the partial contents out to a free chunk) advances
	// base so the already-delivered packets are not delivered twice when
	// the chunk eventually fills. The metadata pkt_count field is
	// count - base.
	count int
	base  int

	// refs counts outstanding zero-copy references (packets attached to a
	// transmit ring). A chunk with refs > 0 cannot be recycled yet.
	refs int

	memBase Addr // DMA base address; kernel/process addresses derive from it
}

// ID returns the chunk's global identity.
func (c *Chunk) ID() ChunkID { return c.id }

// State returns the chunk's current life-cycle state.
func (c *Chunk) State() ChunkState { return c.state }

// Cells returns the number of cells (M).
func (c *Chunk) Cells() int { return len(c.cells) }

// Count returns the number of cells filled in the chunk.
func (c *Chunk) Count() int { return c.count }

// Base returns the index of the first undelivered packet.
func (c *Chunk) Base() int { return c.base }

// SetBase marks packets before k as already delivered (by a timeout
// flush copy). k must not exceed the filled count.
func (c *Chunk) SetBase(k int) {
	if k < 0 || k > c.count {
		panic(fmt.Sprintf("mem: SetBase(%d) with count %d in %v", k, c.count, c.id))
	}
	c.base = k
}

// PendingCount returns the number of undelivered packets (count - base).
func (c *Chunk) PendingCount() int { return c.count - c.base }

// Cell returns the i-th cell's full buffer.
func (c *Chunk) Cell(i int) []byte { return c.cells[i] }

// Packet returns the valid bytes and timestamp of the i-th stored packet.
func (c *Chunk) Packet(i int) ([]byte, vtime.Time) {
	return c.cells[i][:c.lens[i]], c.stamps[i]
}

// SetPacket records that cell i now holds n valid bytes received at ts.
// The NIC's DMA engine calls it; the bytes themselves were written through
// the cell slice. Cells must be filled in order.
//
//wirecap:hotpath
func (c *Chunk) SetPacket(i, n int, ts vtime.Time) {
	if i != c.count {
		panic(fmt.Sprintf("mem: out-of-order cell fill %d (count %d) in %v", i, c.count, c.id))
	}
	c.lens[i] = n
	c.stamps[i] = ts
	c.count++
}

// MarkBad consumes cell i in fill order for a frame whose DMA write was
// detected as corrupt: the cell is occupied — the strict in-order fill
// invariant holds — but holds no deliverable packet. Tombstones count in
// the chunk's metadata pkt_count, so capture/recycle validation is
// unchanged; delivery paths skip them via Bad.
//
//wirecap:hotpath
func (c *Chunk) MarkBad(i int, ts vtime.Time) {
	if i != c.count {
		panic(fmt.Sprintf("mem: out-of-order cell fill %d (count %d) in %v", i, c.count, c.id))
	}
	c.lens[i] = -1
	c.stamps[i] = ts
	c.count++
}

// Bad reports whether filled cell i is a corrupt-frame tombstone.
func (c *Chunk) Bad(i int) bool { return c.lens[i] < 0 }

// GoodPending returns the number of undelivered packets that are
// deliverable, i.e. PendingCount minus tombstones.
func (c *Chunk) GoodPending() int {
	n := 0
	for i := c.base; i < c.count; i++ {
		if c.lens[i] >= 0 {
			n++
		}
	}
	return n
}

// Full reports whether every cell holds a packet.
func (c *Chunk) Full() bool { return c.count == len(c.cells) }

// Retain adds a zero-copy reference (a packet handed to a TX ring).
func (c *Chunk) Retain() { c.refs++ }

// Release drops a zero-copy reference and reports whether none remain.
func (c *Chunk) Release() bool {
	if c.refs <= 0 {
		panic(fmt.Sprintf("mem: Release of chunk %v with no references", c.id))
	}
	c.refs--
	return c.refs == 0
}

// Refs returns the outstanding zero-copy reference count.
func (c *Chunk) Refs() int { return c.refs }

// DMAAddr returns the address the NIC uses for cell i.
func (c *Chunk) DMAAddr(i int) Addr { return dmaSpace | (c.memBase + Addr(i*CellSize)) }

// KernelAddr returns the address the kernel driver uses for cell i.
func (c *Chunk) KernelAddr(i int) Addr { return kernelSpace | (c.memBase + Addr(i*CellSize)) }

// ProcAddr returns the address a user process sees for cell i. It is only
// valid while the owning pool is mapped.
func (c *Chunk) ProcAddr(i int) Addr { return procSpace | (c.memBase + Addr(i*CellSize)) }

// Meta is the metadata descriptor passed between kernel and user space for
// a captured chunk: {ChunkID, process address, packet count}. Passing Meta
// instead of bytes is what makes capture and recycle zero-copy.
type Meta struct {
	ID       ChunkID
	ProcAddr Addr
	PktCount int
}

// Recycle validation errors. The kernel strictly validates metadata coming
// back from user space (paper §3.2.2c); a misbehaving application must not
// corrupt kernel state.
var (
	ErrUnknownChunk  = errors.New("mem: recycle of unknown chunk")
	ErrNotCaptured   = errors.New("mem: recycle of chunk not in captured state")
	ErrBadProcAddr   = errors.New("mem: recycle metadata process address mismatch")
	ErrBadPktCount   = errors.New("mem: recycle metadata packet count mismatch")
	ErrStillRef      = errors.New("mem: recycle of chunk with outstanding references")
	ErrNotMapped     = errors.New("mem: pool not mapped into process space")
	ErrAlreadyMapped = errors.New("mem: pool already mapped")
	ErrNoFreeChunk   = errors.New("mem: no free chunk in pool")
	// ErrTransientAlloc is a fault-injected, retryable allocation failure:
	// the kernel allocator under momentary memory pressure, distinct from
	// genuine pool exhaustion (ErrNoFreeChunk).
	ErrTransientAlloc = errors.New("mem: transient allocation failure")
	// ErrBadReclaim rejects emergency reclamation of a chunk that is free
	// or still referenced.
	ErrBadReclaim = errors.New("mem: reclaim of free or referenced chunk")
)

// PoolStats counts pool-level events.
type PoolStats struct {
	Allocated          uint64 // free -> attached transitions
	Captured           uint64 // attached -> captured transitions
	Recycled           uint64 // captured -> free transitions
	RecycleRejected    uint64 // recycle attempts failing validation
	AllocFailures      uint64 // AllocFree calls that found the pool empty
	TransientAllocFail uint64 // AllocFree calls failed by fault injection
	Reclaimed          uint64 // chunks force-reclaimed by recovery
	LowWatermarkFree   int    // fewest simultaneously free chunks observed
}

// Pool is a ring buffer pool: R chunks of M cells each, allocated in the
// kernel for one receive ring and optionally mapped into one process's
// address space.
type Pool struct {
	nicID, ringID int
	m, r          int
	chunks        []*Chunk
	free          []*Chunk
	mapped        bool
	stats         PoolStats

	// allocFault, when set, fails AllocFree transiently (ErrTransientAlloc)
	// whenever it returns true. The fault injector installs it; keeping it
	// a plain func avoids coupling mem to the faults package.
	allocFault func() bool

	// trace (with its clock) annotates allocation failures and forced
	// reclamations on the run's flight recorder. nil records nothing.
	trace    *obs.Recorder
	traceNow func() vtime.Time
}

// nextBase allocates globally unique simulated physical addresses. It is
// atomic so independent simulations may be built from concurrent
// goroutines (the experiment harness runs scenarios in parallel).
var nextBase atomic.Uint64

// NewPool allocates a pool of r chunks with m cells each for the given
// receive ring.
func NewPool(nicID, ringID, m, r int) *Pool {
	if m <= 0 || r <= 0 {
		panic(fmt.Sprintf("mem: invalid pool geometry M=%d R=%d", m, r))
	}
	p := &Pool{nicID: nicID, ringID: ringID, m: m, r: r}
	p.chunks = make([]*Chunk, r)
	p.free = make([]*Chunk, 0, r)
	for i := 0; i < r; i++ {
		backing := make([]byte, m*CellSize)
		c := &Chunk{
			id:      ChunkID{NIC: nicID, Ring: ringID, Chunk: i},
			pool:    p,
			cells:   make([][]byte, m),
			lens:    make([]int, m),
			stamps:  make([]vtime.Time, m),
			memBase: Addr(nextBase.Add(uint64(m*CellSize))) - Addr(m*CellSize),
		}
		for j := 0; j < m; j++ {
			c.cells[j] = backing[j*CellSize : (j+1)*CellSize : (j+1)*CellSize]
		}
		p.chunks[i] = c
		p.free = append(p.free, c)
	}
	p.stats.LowWatermarkFree = r
	return p
}

// M returns the cells-per-chunk geometry parameter.
func (p *Pool) M() int { return p.m }

// R returns the chunks-per-pool geometry parameter.
func (p *Pool) R() int { return p.r }

// Capacity returns the total packet capacity R*M.
func (p *Pool) Capacity() int { return p.m * p.r }

// MemoryBytes returns the kernel memory the pool occupies (R*M*CellSize),
// the quantity the paper's §5a discusses.
func (p *Pool) MemoryBytes() int { return p.m * p.r * CellSize }

// FreeCount returns the number of chunks currently free.
func (p *Pool) FreeCount() int { return len(p.free) }

// Stats returns a copy of the pool's counters.
func (p *Pool) Stats() PoolStats { return p.stats }

// Map simulates mmap()ing the pool into an application's process space
// (the Open operation does this). Chunk process addresses are valid only
// while mapped.
func (p *Pool) Map() error {
	if p.mapped {
		return ErrAlreadyMapped
	}
	p.mapped = true
	return nil
}

// Unmap reverses Map (the Close operation).
func (p *Pool) Unmap() error {
	if !p.mapped {
		return ErrNotMapped
	}
	p.mapped = false
	return nil
}

// Mapped reports whether the pool is mapped into a process.
func (p *Pool) Mapped() bool { return p.mapped }

// SetAllocFault installs (or clears, with nil) the transient allocation
// fault hook consulted by AllocFree.
func (p *Pool) SetAllocFault(fn func() bool) { p.allocFault = fn }

// SetTrace attaches the run's flight recorder and its clock: allocation
// failures (transient faults and genuine exhaustion) and emergency
// reclamations become annotated events. The pool has no scheduler of
// its own, hence the injected clock.
func (p *Pool) SetTrace(rec *obs.Recorder, now func() vtime.Time) {
	p.trace = rec
	p.traceNow = now
}

// AllocFree takes a free chunk and attaches it (free -> attached). The
// caller ties its cells to a descriptor segment. A transient injected
// fault fails the call with ErrTransientAlloc before the free list is
// consulted — the chunk is there, the allocator just cannot produce it
// right now, so the caller should retry with backoff.
//
//wirecap:hotpath
func (p *Pool) AllocFree() (*Chunk, error) {
	if p.allocFault != nil && p.allocFault() {
		p.stats.TransientAllocFail++
		if p.trace != nil {
			p.trace.Action("alloc_fault", p.nicID, p.ringID, 0, p.traceNow())
		}
		return nil, ErrTransientAlloc
	}
	if len(p.free) == 0 {
		p.stats.AllocFailures++
		if p.trace != nil {
			p.trace.Action("pool_exhausted", p.nicID, p.ringID, 0, p.traceNow())
		}
		return nil, ErrNoFreeChunk
	}
	c := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	c.state = StateAttached
	c.count = 0
	c.base = 0
	p.stats.Allocated++
	if n := len(p.free); n < p.stats.LowWatermarkFree {
		p.stats.LowWatermarkFree = n
	}
	return c, nil
}

// Capture transitions an attached chunk to captured and returns the
// metadata handed to user space. It fails if the pool is not mapped: user
// space could not address the chunk.
//
//wirecap:hotpath
func (p *Pool) Capture(c *Chunk) (Meta, error) {
	if !p.mapped {
		return Meta{}, ErrNotMapped
	}
	if c.state != StateAttached {
		return Meta{}, fmt.Errorf("mem: capture of %v in state %v", c.id, c.state) //wirelint:allow hotpath rejection path is cold; runs once per invalid capture
	}
	c.state = StateCaptured
	p.stats.Captured++
	return Meta{ID: c.id, ProcAddr: c.ProcAddr(0), PktCount: c.count - c.base}, nil
}

// Recycle validates user-supplied metadata and returns the chunk to the
// free list (captured -> free). Validation is strict: unknown IDs, wrong
// state, forged addresses, wrong counts, and chunks with outstanding
// transmit references are all rejected without touching kernel state.
//
//wirecap:hotpath
func (p *Pool) Recycle(m Meta) error {
	if m.ID.NIC != p.nicID || m.ID.Ring != p.ringID ||
		m.ID.Chunk < 0 || m.ID.Chunk >= len(p.chunks) {
		p.stats.RecycleRejected++
		return fmt.Errorf("%w: %v", ErrUnknownChunk, m.ID) //wirelint:allow hotpath rejection path is cold; runs once per invalid recycle
	}
	c := p.chunks[m.ID.Chunk]
	if c.state != StateCaptured {
		p.stats.RecycleRejected++
		return fmt.Errorf("%w: %v is %v", ErrNotCaptured, m.ID, c.state) //wirelint:allow hotpath rejection path is cold; runs once per invalid recycle
	}
	if m.ProcAddr != c.ProcAddr(0) {
		p.stats.RecycleRejected++
		return fmt.Errorf("%w: %v", ErrBadProcAddr, m.ID) //wirelint:allow hotpath rejection path is cold; runs once per invalid recycle
	}
	if m.PktCount != c.count-c.base {
		p.stats.RecycleRejected++
		return fmt.Errorf("%w: %v: meta %d, chunk %d", ErrBadPktCount, m.ID, m.PktCount, c.count-c.base) //wirelint:allow hotpath rejection path is cold; runs once per invalid recycle
	}
	if c.refs > 0 {
		p.stats.RecycleRejected++
		return fmt.Errorf("%w: %v has %d refs", ErrStillRef, m.ID, c.refs) //wirelint:allow hotpath rejection path is cold; runs once per invalid recycle
	}
	c.state = StateFree
	c.count = 0
	c.base = 0
	p.free = append(p.free, c) //wirelint:allow hotpath free list capacity R is preallocated at pool construction
	p.stats.Recycled++
	return nil
}

// Reclaim force-returns an attached or captured chunk to the free list,
// discarding its contents — the kernel's emergency path when the pool is
// exhausted and user space is not recycling. The caller accounts the
// PendingCount packets it throws away as reclaim drops before calling.
// Chunks with outstanding transmit references cannot be reclaimed (the
// wire still reads their cells).
//
//wirecap:hotpath
func (p *Pool) Reclaim(c *Chunk) error {
	if c.pool != p || c.state == StateFree || c.refs > 0 {
		return fmt.Errorf("%w: %v state %v refs %d", ErrBadReclaim, c.id, c.state, c.refs) //wirelint:allow hotpath rejection path is cold; runs once per invalid reclaim
	}
	if p.trace != nil {
		p.trace.Action("pool_reclaim", p.nicID, p.ringID, int64(c.PendingCount()), p.traceNow())
	}
	c.state = StateFree
	c.count = 0
	c.base = 0
	p.free = append(p.free, c) //wirelint:allow hotpath free list capacity R is preallocated at pool construction
	p.stats.Reclaimed++
	return nil
}

// ForEachAttached calls fn for every chunk currently attached, in chunk
// index order (deterministic). Recovery sweeps use it to find the chunks
// a quarantined queue left tied to descriptors.
func (p *Pool) ForEachAttached(fn func(*Chunk)) {
	for _, c := range p.chunks {
		if c.state == StateAttached {
			fn(c)
		}
	}
}

// Lookup returns the chunk for an ID, for kernel-side use (the user-space
// side only ever sees Meta).
func (p *Pool) Lookup(id ChunkID) (*Chunk, bool) {
	if id.NIC != p.nicID || id.Ring != p.ringID || id.Chunk < 0 || id.Chunk >= len(p.chunks) {
		return nil, false
	}
	return p.chunks[id.Chunk], true
}

// CheckInvariants verifies the pool's conservation invariant: every chunk
// is in exactly one state, free chunks are exactly the free list, and no
// free or attached chunk holds references. Property tests call it after
// random operation sequences.
func (p *Pool) CheckInvariants() error {
	onFree := make(map[ChunkID]bool, len(p.free))
	for _, c := range p.free {
		if onFree[c.id] {
			return fmt.Errorf("mem: chunk %v on free list twice", c.id)
		}
		onFree[c.id] = true
	}
	freeCount := 0
	for _, c := range p.chunks {
		switch c.state {
		case StateFree:
			freeCount++
			if !onFree[c.id] {
				return fmt.Errorf("mem: free chunk %v not on free list", c.id)
			}
			if c.refs != 0 {
				return fmt.Errorf("mem: free chunk %v has %d refs", c.id, c.refs)
			}
		case StateAttached, StateCaptured:
			if onFree[c.id] {
				return fmt.Errorf("mem: %v chunk %v on free list", c.state, c.id)
			}
		default:
			return fmt.Errorf("mem: chunk %v in invalid state %d", c.id, c.state)
		}
		if c.count < 0 || c.count > p.m {
			return fmt.Errorf("mem: chunk %v count %d out of range", c.id, c.count)
		}
		if c.base < 0 || c.base > c.count {
			return fmt.Errorf("mem: chunk %v base %d out of range (count %d)", c.id, c.base, c.count)
		}
	}
	if freeCount != len(p.free) {
		return fmt.Errorf("mem: %d free chunks but free list has %d", freeCount, len(p.free))
	}
	return nil
}
