package mem

import (
	"errors"
	"testing"

	"repro/internal/vtime"
)

func newMappedPool(t *testing.T, m, r int) *Pool {
	t.Helper()
	p := NewPool(0, 0, m, r)
	if err := p.Map(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPoolGeometry(t *testing.T) {
	p := NewPool(1, 2, 256, 100)
	if p.M() != 256 || p.R() != 100 {
		t.Fatalf("geometry %d/%d", p.M(), p.R())
	}
	if p.Capacity() != 25600 {
		t.Fatalf("capacity %d", p.Capacity())
	}
	if p.MemoryBytes() != 256*100*CellSize {
		t.Fatalf("memory %d", p.MemoryBytes())
	}
	if p.FreeCount() != 100 {
		t.Fatalf("free %d", p.FreeCount())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestChunkLifeCycle(t *testing.T) {
	p := newMappedPool(t, 4, 2)
	c, err := p.AllocFree()
	if err != nil {
		t.Fatal(err)
	}
	if c.State() != StateAttached {
		t.Fatalf("state = %v", c.State())
	}
	// Fill all four cells through DMA writes.
	for i := 0; i < 4; i++ {
		copy(c.Cell(i), []byte{byte(i)})
		c.SetPacket(i, 1, vtime.Time(i*10))
	}
	if !c.Full() {
		t.Fatal("chunk not full after filling all cells")
	}
	meta, err := p.Capture(c)
	if err != nil {
		t.Fatal(err)
	}
	if meta.PktCount != 4 || meta.ID != c.ID() {
		t.Fatalf("meta = %+v", meta)
	}
	data, ts := c.Packet(2)
	if len(data) != 1 || data[0] != 2 || ts != 20 {
		t.Fatalf("packet 2 = %v @ %v", data, ts)
	}
	if err := p.Recycle(meta); err != nil {
		t.Fatal(err)
	}
	if c.State() != StateFree || c.Count() != 0 {
		t.Fatalf("after recycle: %v count %d", c.State(), c.Count())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPoolExhaustion(t *testing.T) {
	p := newMappedPool(t, 2, 3)
	for i := 0; i < 3; i++ {
		if _, err := p.AllocFree(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.AllocFree(); !errors.Is(err, ErrNoFreeChunk) {
		t.Fatalf("err = %v", err)
	}
	st := p.Stats()
	if st.Allocated != 3 || st.AllocFailures != 1 || st.LowWatermarkFree != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCaptureRequiresMapping(t *testing.T) {
	p := NewPool(0, 0, 2, 2)
	c, _ := p.AllocFree()
	if _, err := p.Capture(c); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("err = %v", err)
	}
}

func TestCaptureWrongState(t *testing.T) {
	p := newMappedPool(t, 2, 2)
	c, _ := p.AllocFree()
	if _, err := p.Capture(c); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Capture(c); err == nil {
		t.Fatal("double capture succeeded")
	}
}

func TestRecycleValidation(t *testing.T) {
	p := newMappedPool(t, 2, 2)
	c, _ := p.AllocFree()
	copy(c.Cell(0), []byte{1})
	c.SetPacket(0, 1, 0)
	meta, err := p.Capture(c)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		meta Meta
		want error
	}{
		{"wrong-nic", Meta{ID: ChunkID{NIC: 9}, ProcAddr: meta.ProcAddr, PktCount: meta.PktCount}, ErrUnknownChunk},
		{"bad-index", Meta{ID: ChunkID{Chunk: 99}, ProcAddr: meta.ProcAddr, PktCount: meta.PktCount}, ErrUnknownChunk},
		{"negative-index", Meta{ID: ChunkID{Chunk: -1}}, ErrUnknownChunk},
		{"forged-addr", Meta{ID: meta.ID, ProcAddr: meta.ProcAddr + 1, PktCount: meta.PktCount}, ErrBadProcAddr},
		{"wrong-count", Meta{ID: meta.ID, ProcAddr: meta.ProcAddr, PktCount: 2}, ErrBadPktCount},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := p.Recycle(tc.meta); !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
	if got := p.Stats().RecycleRejected; got != uint64(len(cases)) {
		t.Fatalf("RecycleRejected = %d, want %d", got, len(cases))
	}
	// The genuine metadata still works after all the forgeries.
	if err := p.Recycle(meta); err != nil {
		t.Fatal(err)
	}
	// And recycling twice fails: the chunk is now free.
	if err := p.Recycle(meta); !errors.Is(err, ErrNotCaptured) {
		t.Fatalf("double recycle err = %v", err)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRecycleWithOutstandingRefs(t *testing.T) {
	p := newMappedPool(t, 1, 1)
	c, _ := p.AllocFree()
	copy(c.Cell(0), []byte{1})
	c.SetPacket(0, 1, 0)
	meta, _ := p.Capture(c)
	c.Retain()
	if err := p.Recycle(meta); !errors.Is(err, ErrStillRef) {
		t.Fatalf("err = %v", err)
	}
	if !c.Release() {
		t.Fatal("Release did not report zero refs")
	}
	if err := p.Recycle(meta); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseUnderflowPanics(t *testing.T) {
	p := NewPool(0, 0, 1, 1)
	c, _ := p.AllocFree()
	defer func() {
		if recover() == nil {
			t.Fatal("Release with zero refs did not panic")
		}
	}()
	c.Release()
}

func TestSetPacketOutOfOrderPanics(t *testing.T) {
	p := NewPool(0, 0, 4, 1)
	c, _ := p.AllocFree()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order SetPacket did not panic")
		}
	}()
	c.SetPacket(2, 1, 0)
}

func TestAddressSpaces(t *testing.T) {
	p := NewPool(0, 0, 4, 2)
	c := p.chunks[0]
	if c.DMAAddr(0).Space() != "dma" || c.KernelAddr(0).Space() != "kernel" || c.ProcAddr(0).Space() != "process" {
		t.Fatal("address space tags wrong")
	}
	// Cells within a chunk are contiguous at CellSize stride.
	if c.DMAAddr(1)-c.DMAAddr(0) != CellSize {
		t.Fatalf("cell stride = %d", c.DMAAddr(1)-c.DMAAddr(0))
	}
	// Distinct chunks never overlap.
	c2 := p.chunks[1]
	if c.DMAAddr(0) == c2.DMAAddr(0) {
		t.Fatal("chunks share a DMA base")
	}
}

func TestCellsAreIsolated(t *testing.T) {
	p := NewPool(0, 0, 4, 1)
	c, _ := p.AllocFree()
	cell0 := c.Cell(0)
	// Appending beyond a cell must not bleed into the next cell thanks to
	// the three-index slice expression.
	_ = append(cell0[:CellSize], 0xEE)
	if c.Cell(1)[0] == 0xEE {
		t.Fatal("write past cell 0 corrupted cell 1")
	}
}

func TestMapUnmap(t *testing.T) {
	p := NewPool(0, 0, 2, 2)
	if err := p.Map(); err != nil {
		t.Fatal(err)
	}
	if err := p.Map(); !errors.Is(err, ErrAlreadyMapped) {
		t.Fatalf("double map err = %v", err)
	}
	if err := p.Unmap(); err != nil {
		t.Fatal(err)
	}
	if err := p.Unmap(); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("double unmap err = %v", err)
	}
}

func TestLookup(t *testing.T) {
	p := NewPool(3, 1, 2, 2)
	if _, ok := p.Lookup(ChunkID{NIC: 3, Ring: 1, Chunk: 1}); !ok {
		t.Fatal("Lookup of valid chunk failed")
	}
	for _, id := range []ChunkID{
		{NIC: 0, Ring: 1, Chunk: 1},
		{NIC: 3, Ring: 0, Chunk: 1},
		{NIC: 3, Ring: 1, Chunk: 2},
		{NIC: 3, Ring: 1, Chunk: -1},
	} {
		if _, ok := p.Lookup(id); ok {
			t.Errorf("Lookup(%v) succeeded", id)
		}
	}
}

// TestPoolPropertyRandomOps drives a random alloc/capture/recycle sequence
// and checks the conservation invariants hold at every step.
func TestPoolPropertyRandomOps(t *testing.T) {
	r := vtime.NewRand(42)
	p := newMappedPool(t, 8, 16)
	var attached, captured []*Chunk
	var metas []Meta
	for step := 0; step < 20000; step++ {
		switch r.Intn(3) {
		case 0: // alloc
			c, err := p.AllocFree()
			if err == nil {
				attached = append(attached, c)
			} else if p.FreeCount() != 0 {
				t.Fatalf("step %d: alloc failed with %d free", step, p.FreeCount())
			}
		case 1: // capture a random attached chunk
			if len(attached) == 0 {
				continue
			}
			i := r.Intn(len(attached))
			c := attached[i]
			// Fill a random number of remaining cells first.
			for c.Count() < c.Cells() && r.Intn(2) == 0 {
				c.SetPacket(c.Count(), 1, 0)
			}
			m, err := p.Capture(c)
			if err != nil {
				t.Fatalf("step %d: capture: %v", step, err)
			}
			attached[i] = attached[len(attached)-1]
			attached = attached[:len(attached)-1]
			captured = append(captured, c)
			metas = append(metas, m)
		case 2: // recycle a random captured chunk
			if len(metas) == 0 {
				continue
			}
			i := r.Intn(len(metas))
			if err := p.Recycle(metas[i]); err != nil {
				t.Fatalf("step %d: recycle: %v", step, err)
			}
			metas[i] = metas[len(metas)-1]
			metas = metas[:len(metas)-1]
			captured[i] = captured[len(captured)-1]
			captured = captured[:len(captured)-1]
		}
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if p.FreeCount()+len(attached)+len(captured) != p.R() {
			t.Fatalf("step %d: chunk conservation violated", step)
		}
	}
	st := p.Stats()
	if st.Allocated == 0 || st.Captured == 0 || st.Recycled == 0 {
		t.Fatalf("random walk did not exercise all transitions: %+v", st)
	}
}
