package packet

import (
	"strings"
	"testing"

	"repro/internal/vtime"
)

func TestFormatUDP(t *testing.T) {
	b := NewBuilder()
	buf := make([]byte, MaxFrameLen)
	frame := b.Build(buf, testFlow(), []byte("hello"))
	var d Decoded
	if err := Decode(frame, &d); err != nil {
		t.Fatal(err)
	}
	got := Format(3*vtime.Second+5, &d)
	want := "3.000000005 IP 131.225.2.10.4321 > 192.168.1.20.53: UDP, length 5"
	if got != want {
		t.Fatalf("Format = %q, want %q", got, want)
	}
	// Negative timestamp omits the time column.
	if got := Format(-1, &d); strings.HasPrefix(got, "3.") || !strings.HasPrefix(got, "IP ") {
		t.Fatalf("Format(-1) = %q", got)
	}
}

func TestFormatTCPFlags(t *testing.T) {
	b := NewBuilder()
	buf := make([]byte, MaxFrameLen)
	flow := testFlow()
	flow.Proto = ProtoTCP
	frame := b.Build(buf, flow, []byte("xyz"))
	var d Decoded
	if err := Decode(frame, &d); err != nil {
		t.Fatal(err)
	}
	got := Format(-1, &d)
	if !strings.Contains(got, "Flags [P.]") || !strings.Contains(got, "length 3") {
		t.Fatalf("Format = %q", got)
	}
	// SYN.
	frame[47] = 0x02
	Decode(frame, &d)
	if !strings.Contains(Format(-1, &d), "Flags [S]") {
		t.Fatalf("SYN = %q", Format(-1, &d))
	}
	// No flags.
	frame[47] = 0
	Decode(frame, &d)
	if !strings.Contains(Format(-1, &d), "Flags [none]") {
		t.Fatalf("none = %q", Format(-1, &d))
	}
}

func TestFormatNonIP(t *testing.T) {
	frame := make([]byte, 60)
	frame[12], frame[13] = 0x08, 0x06
	var d Decoded
	_ = Decode(frame, &d)
	got := Format(-1, &d)
	if !strings.Contains(got, "ethertype 0x0806") {
		t.Fatalf("Format = %q", got)
	}
}
