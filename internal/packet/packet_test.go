package packet

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

func testFlow() FlowKey {
	return FlowKey{
		Src:     IPv4{131, 225, 2, 10},
		Dst:     IPv4{192, 168, 1, 20},
		SrcPort: 4321,
		DstPort: 53,
		Proto:   ProtoUDP,
	}
}

func TestBuildDecodeUDPRoundTrip(t *testing.T) {
	b := NewBuilder()
	flow := testFlow()
	payload := []byte("hello wirecap")
	buf := make([]byte, MaxFrameLen)
	frame := b.Build(buf, flow, payload)

	var d Decoded
	if err := Decode(frame, &d); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if d.Flow != flow {
		t.Fatalf("flow = %v, want %v", d.Flow, flow)
	}
	if d.IPVersion != 4 {
		t.Fatalf("version = %d", d.IPVersion)
	}
	if !bytes.Equal(d.Payload()[:len(payload)], payload) {
		t.Fatalf("payload = %q", d.Payload())
	}
	if !VerifyIPv4Checksum(&d) {
		t.Fatal("IPv4 checksum invalid")
	}
}

func TestBuildDecodeTCPRoundTrip(t *testing.T) {
	b := NewBuilder()
	flow := testFlow()
	flow.Proto = ProtoTCP
	flow.DstPort = 443
	payload := bytes.Repeat([]byte{0xab}, 100)
	buf := make([]byte, MaxFrameLen)
	frame := b.Build(buf, flow, payload)

	var d Decoded
	if err := Decode(frame, &d); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if d.Flow != flow {
		t.Fatalf("flow = %v, want %v", d.Flow, flow)
	}
	if d.TCPFlags&0x10 == 0 {
		t.Fatal("ACK flag not set on generated TCP segment")
	}
	if !bytes.Equal(d.Payload(), payload) {
		t.Fatal("TCP payload mismatch")
	}
}

func TestBuildMinFramePadding(t *testing.T) {
	b := NewBuilder()
	buf := make([]byte, MaxFrameLen)
	frame := b.Build(buf, testFlow(), nil)
	if len(frame) != MinFrameLen {
		t.Fatalf("empty-payload frame len = %d, want %d", len(frame), MinFrameLen)
	}
	// The padding must not confuse the decoder: IP total length governs.
	var d Decoded
	if err := Decode(frame, &d); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if d.TotalLen != IPv4HeaderLen+UDPHeaderLen {
		t.Fatalf("TotalLen = %d", d.TotalLen)
	}
}

func TestFrameLenFor(t *testing.T) {
	cases := []struct {
		proto   uint8
		payload int
		want    int
	}{
		{ProtoUDP, 0, 60},
		{ProtoUDP, 18, 60},
		{ProtoUDP, 19, 61},
		{ProtoUDP, 1000, 14 + 20 + 8 + 1000},
		{ProtoTCP, 0, 60},
		{ProtoTCP, 7, 61},
	}
	for _, c := range cases {
		if got := FrameLenFor(c.proto, c.payload); got != c.want {
			t.Errorf("FrameLenFor(%d, %d) = %d, want %d", c.proto, c.payload, got, c.want)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	b := NewBuilder()
	buf := make([]byte, MaxFrameLen)
	frame := b.Build(buf, testFlow(), []byte("payload"))
	var d Decoded
	for _, n := range []int{0, 5, 13, 20, 33, 41} {
		if err := Decode(frame[:n], &d); err == nil {
			t.Errorf("Decode of %d-byte prefix succeeded", n)
		}
	}
}

func TestDecodeNonIP(t *testing.T) {
	frame := make([]byte, 60)
	frame[12], frame[13] = 0x08, 0x06 // ARP
	var d Decoded
	if err := Decode(frame, &d); err != ErrNotIP {
		t.Fatalf("err = %v, want ErrNotIP", err)
	}
	if d.EtherType != EtherTypeARP {
		t.Fatalf("EtherType = %#x", d.EtherType)
	}
}

func TestDecodeBadVersion(t *testing.T) {
	b := NewBuilder()
	buf := make([]byte, MaxFrameLen)
	frame := b.Build(buf, testFlow(), nil)
	frame[EthernetHeaderLen] = 0x65 // version 6 in an IPv4 ethertype frame
	var d Decoded
	if err := Decode(frame, &d); err != ErrBadVersion {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestDecodeBadIHL(t *testing.T) {
	b := NewBuilder()
	buf := make([]byte, MaxFrameLen)
	frame := b.Build(buf, testFlow(), nil)
	frame[EthernetHeaderLen] = 0x44 // IHL 4 (16 bytes) is illegal
	var d Decoded
	if err := Decode(frame, &d); err != ErrBadHdrLen {
		t.Fatalf("err = %v, want ErrBadHdrLen", err)
	}
}

func TestCorruptedChecksumDetected(t *testing.T) {
	b := NewBuilder()
	buf := make([]byte, MaxFrameLen)
	frame := b.Build(buf, testFlow(), nil)
	var d Decoded
	if err := Decode(frame, &d); err != nil {
		t.Fatal(err)
	}
	frame[EthernetHeaderLen+12] ^= 0xff // flip a source-address byte
	if err := Decode(frame, &d); err != nil {
		t.Fatal(err)
	}
	if VerifyIPv4Checksum(&d) {
		t.Fatal("corrupted header passed checksum")
	}
}

func TestChecksumKnownVectors(t *testing.T) {
	// RFC 1071 example: 0001 f203 f4f5 f6f7 folds to 0xddf2; the checksum
	// field carries its one's complement, 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != 0x220d {
		t.Fatalf("Checksum = %#04x, want 0x220d", got)
	}
	// Odd length.
	if got := Checksum([]byte{0xff}); got != 0x00ff {
		t.Fatalf("odd Checksum = %#04x, want 0x00ff", got)
	}
	if got := Checksum(nil); got != 0xffff {
		t.Fatalf("empty Checksum = %#04x, want 0xffff", got)
	}
}

func TestFlowKeyReverse(t *testing.T) {
	f := testFlow()
	r := f.Reverse()
	if r.Src != f.Dst || r.Dst != f.Src || r.SrcPort != f.DstPort || r.DstPort != f.SrcPort {
		t.Fatalf("Reverse = %v", r)
	}
	if r.Reverse() != f {
		t.Fatal("double Reverse not identity")
	}
}

func TestFlowKeyString(t *testing.T) {
	f := testFlow()
	want := "udp 131.225.2.10:4321 > 192.168.1.20:53"
	if got := f.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if got := m.String(); got != "de:ad:be:ef:00:01" {
		t.Fatalf("MAC.String = %q", got)
	}
}

func TestIPv4Uint32RoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		return IPv4FromUint32(v).Uint32() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBuildDecodePropertyRoundTrip(t *testing.T) {
	// Property: for arbitrary flows and payload sizes, Build produces a
	// frame that Decode parses back to the identical flow, with valid
	// checksums.
	b := NewBuilder()
	buf := make([]byte, 4096)
	f := func(srcIP, dstIP uint32, sp, dp uint16, isTCP bool, paylen uint16) bool {
		flow := FlowKey{
			Src:     IPv4FromUint32(srcIP),
			Dst:     IPv4FromUint32(dstIP),
			SrcPort: sp,
			DstPort: dp,
			Proto:   ProtoUDP,
		}
		if isTCP {
			flow.Proto = ProtoTCP
		}
		payload := make([]byte, int(paylen%1400))
		for i := range payload {
			payload[i] = byte(i)
		}
		frame := b.Build(buf, flow, payload)
		var d Decoded
		if err := Decode(frame, &d); err != nil {
			return false
		}
		return d.Flow == flow && VerifyIPv4Checksum(&d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeIPv6Minimal(t *testing.T) {
	// Hand-build a minimal IPv6+UDP frame.
	frame := make([]byte, EthernetHeaderLen+IPv6HeaderLen+UDPHeaderLen)
	frame[12], frame[13] = 0x86, 0xDD
	ip := frame[EthernetHeaderLen:]
	ip[0] = 0x60
	ip[4], ip[5] = 0, UDPHeaderLen
	ip[6] = ProtoUDP
	ip[7] = 64
	l4 := ip[IPv6HeaderLen:]
	l4[0], l4[1] = 0x12, 0x34
	l4[2], l4[3] = 0x00, 0x35
	var d Decoded
	if err := Decode(frame, &d); err != nil {
		t.Fatalf("Decode IPv6: %v", err)
	}
	if d.IPVersion != 6 || d.Flow.Proto != ProtoUDP || d.Flow.SrcPort != 0x1234 || d.Flow.DstPort != 53 {
		t.Fatalf("decoded = %+v", d)
	}
}

func BenchmarkDecode64B(b *testing.B) {
	bd := NewBuilder()
	buf := make([]byte, MaxFrameLen)
	frame := bd.Build(buf, testFlow(), nil)
	var d Decoded
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Decode(frame, &d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuild64B(b *testing.B) {
	bd := NewBuilder()
	buf := make([]byte, MaxFrameLen)
	flow := testFlow()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bd.Build(buf, flow, nil)
	}
}

func TestBuildTCPSeg(t *testing.T) {
	b := NewBuilder()
	buf := make([]byte, MaxFrameLen)
	flow := testFlow()
	flow.Proto = ProtoTCP
	frame := b.BuildTCPSeg(buf, flow, 0xdeadbeef, TCPSyn, nil)
	var d Decoded
	if err := Decode(frame, &d); err != nil {
		t.Fatal(err)
	}
	if d.TCPFlags != TCPSyn {
		t.Fatalf("flags = %#x", d.TCPFlags)
	}
	if got := binary.BigEndian.Uint32(frame[d.L4Offset+4 : d.L4Offset+8]); got != 0xdeadbeef {
		t.Fatalf("seq = %#x", got)
	}
	if !VerifyIPv4Checksum(&d) {
		t.Fatal("bad checksum")
	}
}

func TestBuildTCPSegRejectsUDP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BuildTCPSeg accepted a UDP flow")
		}
	}()
	b := NewBuilder()
	b.BuildTCPSeg(make([]byte, MaxFrameLen), testFlow(), 0, TCPSyn, nil)
}
