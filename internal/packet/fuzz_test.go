package packet

import "testing"

// FuzzDecode guards the wire-format decoder against panics on arbitrary
// frames. Every accepted frame must expose internally consistent offsets.
func FuzzDecode(f *testing.F) {
	b := NewBuilder()
	buf := make([]byte, MaxFrameLen)
	f.Add(append([]byte(nil), b.Build(buf, FlowKey{
		Src: IPv4{131, 225, 2, 1}, Dst: IPv4{10, 0, 0, 1},
		SrcPort: 1, DstPort: 2, Proto: ProtoUDP,
	}, []byte("x"))...))
	f.Add([]byte{})
	f.Add(make([]byte, 14))
	f.Fuzz(func(t *testing.T, frame []byte) {
		var d Decoded
		if err := Decode(frame, &d); err != nil {
			return
		}
		if d.L4Offset < EthernetHeaderLen || d.L4Offset > len(frame) {
			t.Fatalf("L4Offset %d out of range for %d-byte frame", d.L4Offset, len(frame))
		}
		if d.PayloadOffset < d.L4Offset {
			t.Fatalf("PayloadOffset %d before L4Offset %d", d.PayloadOffset, d.L4Offset)
		}
		_ = d.Payload() // must not panic
	})
}

// FuzzBuildDecode round-trips arbitrary flows and payload sizes.
func FuzzBuildDecode(f *testing.F) {
	f.Add(uint32(0x83E1020A), uint32(0xC0A80101), uint16(53), uint16(4321), true, 10)
	f.Fuzz(func(t *testing.T, src, dst uint32, sp, dp uint16, isTCP bool, payLen int) {
		if payLen < 0 || payLen > 1400 {
			return
		}
		flow := FlowKey{
			Src: IPv4FromUint32(src), Dst: IPv4FromUint32(dst),
			SrcPort: sp, DstPort: dp, Proto: ProtoUDP,
		}
		if isTCP {
			flow.Proto = ProtoTCP
		}
		b := NewBuilder()
		buf := make([]byte, MaxFrameLen)
		frame := b.Build(buf, flow, make([]byte, payLen))
		var d Decoded
		if err := Decode(frame, &d); err != nil {
			t.Fatalf("Decode of built frame: %v", err)
		}
		if d.Flow != flow {
			t.Fatalf("flow %v != %v", d.Flow, flow)
		}
		if !VerifyIPv4Checksum(&d) {
			t.Fatal("built frame has bad checksum")
		}
	})
}
