package packet

import "sync"

// Pools for the two scratch objects every per-packet path needs: a
// full-size frame buffer and a Decoded header view. Both are safe for
// concurrent use — benchmark sweeps run independent simulations on
// several goroutines — and hand back fully grown objects, so a steady
// state borrow/return cycle allocates nothing.

var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, MaxFrameLen)
		return &b
	},
}

// GetFrameBuf borrows a MaxFrameLen-capacity frame buffer. It hands out
// (and takes back) the *[]byte header rather than the slice so a borrow/
// return cycle does not allocate a fresh header for the pool.
func GetFrameBuf() *[]byte {
	b := framePool.Get().(*[]byte)
	*b = (*b)[:MaxFrameLen]
	return b
}

// PutFrameBuf returns a buffer obtained from GetFrameBuf. The caller must
// not retain any alias into it. Callers that re-sliced or grew the buffer
// should store the final slice back through the pointer first; undersized
// replacements are dropped rather than pooled.
func PutFrameBuf(b *[]byte) {
	if cap(*b) < MaxFrameLen {
		return // replaced by something smaller; let it be collected
	}
	*b = (*b)[:MaxFrameLen]
	framePool.Put(b)
}

var decodedPool = sync.Pool{
	New: func() any { return new(Decoded) },
}

// GetDecoded borrows a Decoded header scratch.
func GetDecoded() *Decoded { return decodedPool.Get().(*Decoded) }

// PutDecoded returns a Decoded to the pool. The slices inside alias
// whatever frame was last decoded into it, so return it only once that
// frame is no longer interesting.
func PutDecoded(d *Decoded) {
	*d = Decoded{}
	decodedPool.Put(d)
}
