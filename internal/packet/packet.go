// Package packet implements the wire formats the capture path sees:
// Ethernet II framing, IPv4/IPv6, UDP and TCP headers, Internet checksums,
// and 5-tuple flow keys. Encoding and decoding are allocation-conscious:
// decode parses in place over the frame bytes, and encode writes into a
// caller-provided buffer.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// EtherType values used by the simulator.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeIPv6 uint16 = 0x86DD
	EtherTypeARP  uint16 = 0x0806
)

// IP protocol numbers.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// Frame geometry constants.
const (
	EthernetHeaderLen = 14
	IPv4HeaderLen     = 20 // without options
	IPv6HeaderLen     = 40
	UDPHeaderLen      = 8
	TCPHeaderLen      = 20 // without options
	MinFrameLen       = 60 // minimum Ethernet payload-padded frame (without FCS)
	MaxFrameLen       = 1514
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// String formats the address in canonical colon-hex form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IPv4 is a 32-bit address in network byte order.
type IPv4 [4]byte

// String formats the address in dotted-quad form.
func (a IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// Uint32 returns the address as a big-endian integer.
func (a IPv4) Uint32() uint32 { return binary.BigEndian.Uint32(a[:]) }

// IPv4FromUint32 builds an address from a big-endian integer.
func IPv4FromUint32(v uint32) IPv4 {
	var a IPv4
	binary.BigEndian.PutUint32(a[:], v)
	return a
}

// FlowKey identifies an IP 5-tuple. It is comparable and therefore usable
// as a map key; it is also what RSS hashes to steer packets.
type FlowKey struct {
	Src, Dst         IPv4
	SrcPort, DstPort uint16
	Proto            uint8
}

// String renders the flow as "proto src:sport > dst:dport".
func (f FlowKey) String() string {
	var proto string
	switch f.Proto {
	case ProtoTCP:
		proto = "tcp"
	case ProtoUDP:
		proto = "udp"
	case ProtoICMP:
		proto = "icmp"
	default:
		proto = fmt.Sprintf("proto-%d", f.Proto)
	}
	return fmt.Sprintf("%s %s:%d > %s:%d", proto, f.Src, f.SrcPort, f.Dst, f.DstPort)
}

// Reverse returns the flow in the opposite direction.
func (f FlowKey) Reverse() FlowKey {
	return FlowKey{Src: f.Dst, Dst: f.Src, SrcPort: f.DstPort, DstPort: f.SrcPort, Proto: f.Proto}
}

// Decoding errors.
var (
	ErrTruncated   = errors.New("packet: truncated frame")
	ErrNotIP       = errors.New("packet: not an IPv4/IPv6 frame")
	ErrBadVersion  = errors.New("packet: bad IP version")
	ErrBadHdrLen   = errors.New("packet: bad IP header length")
	ErrBadChecksum = errors.New("packet: bad IPv4 header checksum")
)

// Decoded is the parsed view of a frame. Slices alias the original frame
// buffer; Decoded is only valid while that buffer is.
type Decoded struct {
	SrcMAC, DstMAC MAC
	EtherType      uint16
	Flow           FlowKey
	IPVersion      uint8
	TTL            uint8
	IPHeaderLen    int
	TotalLen       int // IP total length field
	L4Offset       int // offset of the transport header within the frame
	PayloadOffset  int // offset of the transport payload within the frame
	TCPFlags       uint8
	Frame          []byte // the whole frame
}

// Payload returns the transport-layer payload bytes, excluding any
// minimum-frame padding beyond the IP total length.
func (d *Decoded) Payload() []byte {
	end := len(d.Frame)
	if d.IPVersion == 4 || d.IPVersion == 6 {
		if ipEnd := EthernetHeaderLen + d.TotalLen; ipEnd < end {
			end = ipEnd
		}
	}
	if d.PayloadOffset >= end {
		return nil
	}
	return d.Frame[d.PayloadOffset:end]
}

// Decode parses an Ethernet frame through the transport header. It does
// not verify the IPv4 checksum (use VerifyIPv4Checksum); real NICs check
// it in hardware and capture engines never recompute it per packet.
func Decode(frame []byte, out *Decoded) error {
	if len(frame) < EthernetHeaderLen {
		return ErrTruncated
	}
	copy(out.DstMAC[:], frame[0:6])
	copy(out.SrcMAC[:], frame[6:12])
	out.EtherType = binary.BigEndian.Uint16(frame[12:14])
	out.Frame = frame
	out.Flow = FlowKey{}
	out.TCPFlags = 0
	switch out.EtherType {
	case EtherTypeIPv4:
		return decodeIPv4(frame, out)
	case EtherTypeIPv6:
		return decodeIPv6(frame, out)
	default:
		out.IPVersion = 0
		out.L4Offset = EthernetHeaderLen
		out.PayloadOffset = EthernetHeaderLen
		return ErrNotIP
	}
}

func decodeIPv4(frame []byte, out *Decoded) error {
	ip := frame[EthernetHeaderLen:]
	if len(ip) < IPv4HeaderLen {
		return ErrTruncated
	}
	if v := ip[0] >> 4; v != 4 {
		return ErrBadVersion
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || ihl > len(ip) {
		return ErrBadHdrLen
	}
	out.IPVersion = 4
	out.IPHeaderLen = ihl
	out.TotalLen = int(binary.BigEndian.Uint16(ip[2:4]))
	out.TTL = ip[8]
	out.Flow.Proto = ip[9]
	copy(out.Flow.Src[:], ip[12:16])
	copy(out.Flow.Dst[:], ip[16:20])
	out.L4Offset = EthernetHeaderLen + ihl
	return decodeL4(frame, out)
}

func decodeIPv6(frame []byte, out *Decoded) error {
	ip := frame[EthernetHeaderLen:]
	if len(ip) < IPv6HeaderLen {
		return ErrTruncated
	}
	if v := ip[0] >> 4; v != 6 {
		return ErrBadVersion
	}
	out.IPVersion = 6
	out.IPHeaderLen = IPv6HeaderLen
	out.TotalLen = IPv6HeaderLen + int(binary.BigEndian.Uint16(ip[4:6]))
	out.TTL = ip[7]
	out.Flow.Proto = ip[6] // next header; extension headers are not chased
	// For flow-keying purposes fold the 128-bit addresses into the 32-bit
	// key space; the simulator generates IPv4 traffic, and RSS over IPv6
	// uses its own full-width path in internal/nic.
	copy(out.Flow.Src[:], ip[20:24])
	copy(out.Flow.Dst[:], ip[36:40])
	out.L4Offset = EthernetHeaderLen + IPv6HeaderLen
	return decodeL4(frame, out)
}

func decodeL4(frame []byte, out *Decoded) error {
	l4 := frame[out.L4Offset:]
	switch out.Flow.Proto {
	case ProtoUDP:
		if len(l4) < UDPHeaderLen {
			return ErrTruncated
		}
		out.Flow.SrcPort = binary.BigEndian.Uint16(l4[0:2])
		out.Flow.DstPort = binary.BigEndian.Uint16(l4[2:4])
		out.PayloadOffset = out.L4Offset + UDPHeaderLen
	case ProtoTCP:
		if len(l4) < TCPHeaderLen {
			return ErrTruncated
		}
		out.Flow.SrcPort = binary.BigEndian.Uint16(l4[0:2])
		out.Flow.DstPort = binary.BigEndian.Uint16(l4[2:4])
		dataOff := int(l4[12]>>4) * 4
		if dataOff < TCPHeaderLen || dataOff > len(l4) {
			return ErrBadHdrLen
		}
		out.TCPFlags = l4[13]
		out.PayloadOffset = out.L4Offset + dataOff
	default:
		out.PayloadOffset = out.L4Offset
	}
	return nil
}

// Checksum computes the Internet checksum (RFC 1071) over b.
func Checksum(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(b[0])<<8 | uint32(b[1])
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// VerifyIPv4Checksum reports whether the IPv4 header checksum of a decoded
// frame is valid.
func VerifyIPv4Checksum(d *Decoded) bool {
	if d.IPVersion != 4 {
		return false
	}
	hdr := d.Frame[EthernetHeaderLen : EthernetHeaderLen+d.IPHeaderLen]
	return Checksum(hdr) == 0
}
