package packet

import (
	"fmt"
	"strings"

	"repro/internal/vtime"
)

// Format renders a decoded frame in tcpdump's one-line style:
//
//	1.002345678 IP 131.225.2.10.4321 > 192.168.1.20.53: UDP, length 13
//
// ts is the capture timestamp; pass a negative value to omit it.
func Format(ts vtime.Time, d *Decoded) string {
	var sb strings.Builder
	if ts >= 0 {
		fmt.Fprintf(&sb, "%d.%09d ", ts/vtime.Second, ts%vtime.Second)
	}
	switch d.IPVersion {
	case 4:
		sb.WriteString("IP ")
	case 6:
		sb.WriteString("IP6 ")
	default:
		fmt.Fprintf(&sb, "%s > %s, ethertype %#04x, length %d",
			d.SrcMAC, d.DstMAC, d.EtherType, len(d.Frame))
		return sb.String()
	}
	switch d.Flow.Proto {
	case ProtoTCP:
		fmt.Fprintf(&sb, "%s.%d > %s.%d: Flags [%s], length %d",
			d.Flow.Src, d.Flow.SrcPort, d.Flow.Dst, d.Flow.DstPort,
			tcpFlagString(d.TCPFlags), len(d.Payload()))
	case ProtoUDP:
		fmt.Fprintf(&sb, "%s.%d > %s.%d: UDP, length %d",
			d.Flow.Src, d.Flow.SrcPort, d.Flow.Dst, d.Flow.DstPort, len(d.Payload()))
	case ProtoICMP:
		fmt.Fprintf(&sb, "%s > %s: ICMP, length %d",
			d.Flow.Src, d.Flow.Dst, len(d.Payload()))
	default:
		fmt.Fprintf(&sb, "%s > %s: ip-proto-%d, length %d",
			d.Flow.Src, d.Flow.Dst, d.Flow.Proto, len(d.Payload()))
	}
	return sb.String()
}

// tcpFlagString renders TCP flags the way tcpdump does: S, ., P, F, R, U
// combinations.
func tcpFlagString(flags uint8) string {
	var sb strings.Builder
	if flags&0x02 != 0 {
		sb.WriteByte('S')
	}
	if flags&0x01 != 0 {
		sb.WriteByte('F')
	}
	if flags&0x04 != 0 {
		sb.WriteByte('R')
	}
	if flags&0x08 != 0 {
		sb.WriteByte('P')
	}
	if flags&0x20 != 0 {
		sb.WriteByte('U')
	}
	if flags&0x10 != 0 {
		sb.WriteByte('.')
	}
	if sb.Len() == 0 {
		return "none"
	}
	return sb.String()
}
