package packet

import (
	"encoding/binary"
	"fmt"
)

// Builder constructs valid Ethernet/IPv4/{UDP,TCP} frames. The traffic
// generators use it to synthesize wire-format packets; tests use it to
// produce known-good inputs for the decoder and the BPF machine.
type Builder struct {
	SrcMAC, DstMAC MAC
	TTL            uint8
}

// NewBuilder returns a builder with reasonable defaults (locally
// administered MACs, TTL 64).
func NewBuilder() *Builder {
	return &Builder{
		SrcMAC: MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01},
		DstMAC: MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x02},
		TTL:    64,
	}
}

// FrameLenFor returns the on-wire frame length (without FCS) for a packet
// of the given flow with payloadLen transport payload bytes, including
// minimum-frame padding.
func FrameLenFor(proto uint8, payloadLen int) int {
	l4 := UDPHeaderLen
	if proto == ProtoTCP {
		l4 = TCPHeaderLen
	}
	n := EthernetHeaderLen + IPv4HeaderLen + l4 + payloadLen
	if n < MinFrameLen {
		n = MinFrameLen
	}
	return n
}

// TCP flag bits.
const (
	TCPFin = 0x01
	TCPSyn = 0x02
	TCPRst = 0x04
	TCPPsh = 0x08
	TCPAck = 0x10
)

// Build writes a complete frame for the flow with the given payload into
// buf and returns the frame slice; TCP segments carry PSH|ACK and a zero
// sequence number (use BuildTCPSeg for stateful sessions). buf must have
// capacity for the frame (see FrameLenFor); Build panics otherwise, since
// generators size buffers up front. Checksums (IPv4 header, UDP, TCP) are
// filled in correctly.
func (b *Builder) Build(buf []byte, flow FlowKey, payload []byte) []byte {
	return b.build(buf, flow, payload, 0, TCPPsh|TCPAck)
}

// BuildTCPSeg writes a TCP segment with an explicit sequence number and
// flag byte, for generators that model real session life cycles
// (SYN, data, FIN).
func (b *Builder) BuildTCPSeg(buf []byte, flow FlowKey, seq uint32, flags uint8, payload []byte) []byte {
	if flow.Proto != ProtoTCP {
		panic("packet: BuildTCPSeg requires a TCP flow")
	}
	return b.build(buf, flow, payload, seq, flags)
}

func (b *Builder) build(buf []byte, flow FlowKey, payload []byte, seq uint32, tcpFlags uint8) []byte {
	switch flow.Proto {
	case ProtoUDP, ProtoTCP:
	default:
		panic(fmt.Sprintf("packet: Build supports TCP and UDP only, got proto %d", flow.Proto))
	}
	n := FrameLenFor(flow.Proto, len(payload))
	if cap(buf) < n {
		panic(fmt.Sprintf("packet: Build buffer cap %d < frame len %d", cap(buf), n))
	}
	frame := buf[:n]
	for i := range frame {
		frame[i] = 0
	}

	// Ethernet.
	copy(frame[0:6], b.DstMAC[:])
	copy(frame[6:12], b.SrcMAC[:])
	binary.BigEndian.PutUint16(frame[12:14], EtherTypeIPv4)

	// IPv4.
	l4len := UDPHeaderLen
	if flow.Proto == ProtoTCP {
		l4len = TCPHeaderLen
	}
	ip := frame[EthernetHeaderLen:]
	totalLen := IPv4HeaderLen + l4len + len(payload)
	ip[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(ip[2:4], uint16(totalLen))
	ip[8] = b.TTL
	ip[9] = flow.Proto
	copy(ip[12:16], flow.Src[:])
	copy(ip[16:20], flow.Dst[:])
	binary.BigEndian.PutUint16(ip[10:12], 0)
	csum := Checksum(ip[:IPv4HeaderLen])
	binary.BigEndian.PutUint16(ip[10:12], csum)

	// Transport.
	l4 := ip[IPv4HeaderLen:]
	switch flow.Proto {
	case ProtoUDP:
		binary.BigEndian.PutUint16(l4[0:2], flow.SrcPort)
		binary.BigEndian.PutUint16(l4[2:4], flow.DstPort)
		binary.BigEndian.PutUint16(l4[4:6], uint16(UDPHeaderLen+len(payload)))
		copy(l4[UDPHeaderLen:], payload)
		binary.BigEndian.PutUint16(l4[6:8], 0)
		udpCsum := l4Checksum(flow, l4[:UDPHeaderLen+len(payload)])
		if udpCsum == 0 {
			udpCsum = 0xffff // RFC 768: transmitted as all ones
		}
		binary.BigEndian.PutUint16(l4[6:8], udpCsum)
	case ProtoTCP:
		binary.BigEndian.PutUint16(l4[0:2], flow.SrcPort)
		binary.BigEndian.PutUint16(l4[2:4], flow.DstPort)
		binary.BigEndian.PutUint32(l4[4:8], seq)
		l4[12] = (TCPHeaderLen / 4) << 4
		l4[13] = tcpFlags
		binary.BigEndian.PutUint16(l4[14:16], 65535)
		copy(l4[TCPHeaderLen:], payload)
		binary.BigEndian.PutUint16(l4[16:18], 0)
		binary.BigEndian.PutUint16(l4[16:18], l4Checksum(flow, l4[:TCPHeaderLen+len(payload)]))
	}
	return frame
}

// l4Checksum computes the TCP/UDP checksum including the IPv4 pseudo-header.
func l4Checksum(flow FlowKey, seg []byte) uint16 {
	var sum uint32
	addHalf := func(v uint16) { sum += uint32(v) }
	addHalf(binary.BigEndian.Uint16(flow.Src[0:2]))
	addHalf(binary.BigEndian.Uint16(flow.Src[2:4]))
	addHalf(binary.BigEndian.Uint16(flow.Dst[0:2]))
	addHalf(binary.BigEndian.Uint16(flow.Dst[2:4]))
	addHalf(uint16(flow.Proto))
	addHalf(uint16(len(seg)))
	b := seg
	for len(b) >= 2 {
		sum += uint32(b[0])<<8 | uint32(b[1])
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}
