package packet

import "testing"

func TestFrameBufPoolRoundTrip(t *testing.T) {
	b := GetFrameBuf()
	if len(*b) != MaxFrameLen {
		t.Fatalf("len = %d, want %d", len(*b), MaxFrameLen)
	}
	(*b)[0] = 0xAB
	PutFrameBuf(b)
	// Undersized replacements are dropped, not pooled.
	small := make([]byte, 16)
	PutFrameBuf(&small)
}

func TestDecodedPoolResets(t *testing.T) {
	d := GetDecoded()
	frame := testUDPFrame(t)
	if err := Decode(frame, d); err != nil {
		t.Fatalf("decode: %v", err)
	}
	PutDecoded(d)
	d2 := GetDecoded()
	if d2.Frame != nil || d2.IPVersion != 0 {
		t.Fatal("pooled Decoded not reset")
	}
	PutDecoded(d2)
}

func testUDPFrame(t *testing.T) []byte {
	t.Helper()
	b := NewBuilder()
	buf := make([]byte, MaxFrameLen)
	return b.Build(buf, FlowKey{
		Src: IPv4FromUint32(0x83E10201), Dst: IPv4FromUint32(0xc0a80001),
		SrcPort: 1000, DstPort: 2000, Proto: ProtoUDP,
	}, make([]byte, 10))
}

func TestPoolSteadyStateAllocs(t *testing.T) {
	if n := testing.AllocsPerRun(100, func() {
		b := GetFrameBuf()
		(*b)[0] = 1
		PutFrameBuf(b)
		d := GetDecoded()
		PutDecoded(d)
	}); n > 0 {
		t.Errorf("pool round trip allocates %.1f/op, want 0", n)
	}
}
