// Package stats provides a small log-bucketed streaming histogram for
// latency accounting: constant memory, constant-time recording, and
// percentile queries with bounded relative error — the tool the
// experiment tables use for delivery-delay distributions.
package stats

import (
	"fmt"
	"math/bits"
	"strings"
)

// subBucketBits sets the resolution: each power-of-two range is split
// into 2^subBucketBits linear sub-buckets, bounding relative error to
// about 1/2^subBucketBits (~3% here).
const subBucketBits = 5

const subBuckets = 1 << subBucketBits

// Histogram records non-negative int64 samples (nanoseconds, bytes,
// counts — any unit). The zero value is ready to use.
type Histogram struct {
	buckets [64 * subBuckets]uint64
	count   uint64
	sum     int64
	min     int64
	max     int64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v < subBuckets {
		return int(v) // exact for small values
	}
	u := uint64(v)
	exp := 63 - bits.LeadingZeros64(u)
	// Linear position within the power-of-two range [2^exp, 2^(exp+1)).
	sub := int((u >> (uint(exp) - subBucketBits)) & (subBuckets - 1))
	return (exp-subBucketBits+1)*subBuckets + sub
}

// lowerBoundOf returns the smallest value mapping to bucket i.
func lowerBoundOf(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	exp := i/subBuckets + subBucketBits - 1
	sub := i % subBuckets
	return (1 << uint(exp)) | int64(sub)<<(uint(exp)-subBucketBits)
}

// Record adds one sample. Negative samples are clamped to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

// Count returns the number of samples recorded.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the average sample, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min and Max return the extreme samples (exact, not bucketed).
func (h *Histogram) Min() int64 { return h.min }

// Max returns the largest recorded sample.
func (h *Histogram) Max() int64 { return h.max }

// Percentile returns an estimate of the q-quantile (q in [0,1]), with
// relative error bounded by the sub-bucket resolution. With no samples it
// returns 0.
func (h *Histogram) Percentile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the desired sample (1-based), ceil(q * count).
	rank := uint64(q * float64(h.count))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var seen uint64
	for i := range h.buckets {
		seen += h.buckets[i]
		if seen >= rank {
			v := lowerBoundOf(i)
			if v > h.max {
				return h.max
			}
			if v < h.min {
				return h.min
			}
			return v
		}
	}
	return h.max
}

// Merge adds other's samples into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
}

// Reset clears the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// String summarizes the distribution.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "histogram{empty}"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "histogram{n=%d mean=%.1f p50=%d p99=%d max=%d}",
		h.count, h.Mean(), h.Percentile(0.5), h.Percentile(0.99), h.max)
	return sb.String()
}
