package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/vtime"
)

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(0.5) != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	if h.String() != "histogram{empty}" {
		t.Fatalf("String = %q", h.String())
	}
}

func TestExactSmallValues(t *testing.T) {
	// Values below subBuckets are recorded exactly.
	var h Histogram
	for v := int64(0); v < subBuckets; v++ {
		h.Record(v)
	}
	for q := 1; q <= subBuckets; q++ {
		want := int64(q - 1)
		got := h.Percentile(float64(q) / subBuckets)
		if got != want {
			t.Fatalf("P%.3f = %d, want %d", float64(q)/subBuckets, got, want)
		}
	}
}

func TestBucketRoundTripMonotone(t *testing.T) {
	// lowerBoundOf(bucketOf(v)) <= v and buckets are monotone.
	f := func(raw int64) bool {
		v := raw & math.MaxInt64
		b := bucketOf(v)
		lo := lowerBoundOf(b)
		if lo > v {
			return false
		}
		// v is within ~2x resolution of its bucket's lower bound.
		if v >= subBuckets && float64(v-lo) > float64(v)/subBuckets*2 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
	// Buckets up to exponent 62 are reachable from int64 samples; bucket
	// indices beyond that would need values over 2^63.
	maxReachable := bucketOf(math.MaxInt64)
	for i := 1; i <= maxReachable; i++ {
		if lowerBoundOf(i) < lowerBoundOf(i-1) {
			t.Fatalf("lower bounds not monotone at %d", i)
		}
	}
}

func TestPercentileAccuracy(t *testing.T) {
	// Against a sorted sample, percentile estimates are within the
	// documented ~2/subBuckets relative error.
	r := vtime.NewRand(42)
	var h Histogram
	var samples []int64
	for i := 0; i < 50000; i++ {
		v := int64(r.Pareto(1.3, 100))
		h.Record(v)
		samples = append(samples, v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 0.999} {
		idx := int(q*float64(len(samples))) - 1
		if idx < 0 {
			idx = 0
		}
		want := float64(samples[idx])
		got := float64(h.Percentile(q))
		if relErr := math.Abs(got-want) / want; relErr > 0.08 {
			t.Fatalf("P%v = %.0f, want %.0f (err %.3f)", q, got, want, relErr)
		}
	}
}

func TestMinMaxMeanExact(t *testing.T) {
	var h Histogram
	vals := []int64{5, 100, 3, 987654321, 42}
	var sum int64
	for _, v := range vals {
		h.Record(v)
		sum += v
	}
	if h.Min() != 3 || h.Max() != 987654321 {
		t.Fatalf("min %d max %d", h.Min(), h.Max())
	}
	if h.Mean() != float64(sum)/float64(len(vals)) {
		t.Fatalf("mean %v", h.Mean())
	}
	// Percentiles are clamped into [min, max].
	if h.Percentile(0) < h.Min() || h.Percentile(1) > h.Max() {
		t.Fatal("percentiles escape [min, max]")
	}
}

func TestNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Min() != 0 || h.Percentile(1) != 0 {
		t.Fatal("negative not clamped")
	}
}

func TestMerge(t *testing.T) {
	var a, b, all Histogram
	r := vtime.NewRand(7)
	for i := 0; i < 10000; i++ {
		v := int64(r.Intn(1_000_000))
		all.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() || a.Sum() != all.Sum() {
		t.Fatal("merge lost samples")
	}
	for _, q := range []float64{0.25, 0.5, 0.95} {
		if a.Percentile(q) != all.Percentile(q) {
			t.Fatalf("P%v differs after merge", q)
		}
	}
	// Merging an empty histogram is a no-op.
	var empty Histogram
	before := a.Count()
	a.Merge(&empty)
	if a.Count() != before {
		t.Fatal("merging empty changed count")
	}
}

func TestReset(t *testing.T) {
	var h Histogram
	h.Record(9)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset incomplete")
	}
}
