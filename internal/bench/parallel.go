package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// forEach runs n independent jobs on up to GOMAXPROCS workers and returns
// the first error. Every experiment run owns its scheduler, NIC, and
// engine, so cells of a result table can be computed concurrently; this
// is what makes the full-scale `-run all` pass tractable on a multicore
// host.
//
// After any job fails, the shared stop flag is checked between jobs, so
// already-running workers finish at their current job boundary instead of
// draining the remaining work.
func forEach(n int, job func(i int) error) error {
	return forEachWorkers(n, runtime.GOMAXPROCS(0), job)
}

func forEachWorkers(n, workers int, job func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		stop     atomic.Bool
		next     atomic.Int64
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		stop.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := job(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
