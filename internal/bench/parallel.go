package bench

import (
	"runtime"
	"sync"
)

// forEach runs n independent jobs on up to GOMAXPROCS workers and returns
// the first error. Every experiment run owns its scheduler, NIC, and
// engine, so cells of a result table can be computed concurrently; this
// is what makes the full-scale `-run all` pass tractable on a multicore
// host.
func forEach(n int, job func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	take := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := take()
				if !ok {
					return
				}
				if err := job(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
