package bench

import (
	"repro/internal/vtime/domain"
)

// forEach runs n independent jobs on up to GOMAXPROCS workers and returns
// the first error. Every experiment run owns its scheduler, NIC, and
// engine, so cells of a result table can be computed concurrently; this
// is what makes the full-scale `-run all` pass tractable on a multicore
// host.
//
// The fan-out draws workers from the process-wide budget in
// internal/vtime/domain — the same pool the parallel discrete-event
// executive uses for in-run domain windows — so nested parallelism
// (parallel runs of parallel simulations) shares one worker budget
// instead of oversubscribing cores: whichever layer grabs workers first
// parallelizes, and the other degrades to sequential execution.
//
// After any job fails, workers finish at their current job boundary
// instead of draining the remaining work.
func forEach(n int, job func(i int) error) error {
	return domain.ForEach(n, 0, job)
}

func forEachWorkers(n, workers int, job func(i int) error) error {
	return domain.ForEach(n, workers, job)
}
