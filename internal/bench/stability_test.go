package bench

import (
	"bytes"
	"testing"
)

// TestReportByteStability is the regression guard behind the KeyMetrics
// restructure: two identical seeded runs must export byte-identical JSON
// and equal key-metric maps. Any map-iteration order leaking into the
// report — the class of bug the wirelint maporder analyzer hunts — shows
// up here as a byte diff.
func TestReportByteStability(t *testing.T) {
	run := func(domains int) RunReport {
		res, err := RunConstant(ConstantRun{
			Spec: WireCAPB(64, 100), Packets: 20_000, X: 300, Seed: 11,
			Domains: domains,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Report("stability")
	}
	// One plain run, one through the parallel executive: byte stability
	// must hold across runs AND across execution substrates.
	a, b := run(0), run(3)

	aj, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("two identical runs exported different JSON bytes:\nrun1 digest %s\nrun2 digest %s", a.Digest(), b.Digest())
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("digests differ: %s vs %s", a.Digest(), b.Digest())
	}

	am, bm := a.KeyMetrics(), b.KeyMetrics()
	if len(am) != len(bm) {
		t.Fatalf("key metric sets differ: %d vs %d entries", len(am), len(bm))
	}
	for k, v := range am {
		if bv, ok := bm[k]; !ok || bv != v {
			t.Errorf("key metric %q: %v vs %v (present %v)", k, v, bm[k], ok)
		}
	}
}
