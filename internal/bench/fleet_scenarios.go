package bench

import (
	"fmt"
	"io"

	"repro/internal/engines"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/vtime"
)

// FleetDeliveryFloor is the resilience bar the chaos scenarios gate:
// even under the two-host-kill storm the fleet must aggregate at least
// this fraction of the offered stream. cmd/ci-gate re-checks the same
// floor from the outside, off the flattened RunReport.
const FleetDeliveryFloor = 0.95

// FleetRunReport executes a fleet scenario and flattens its Report into
// the bench RunReport shape cmd/ci-gate consumes: hosts map onto the
// per-queue axis (Received/CaptureDrops/DeliveryDrops/Delivered), and
// the fleet + per-host-bus counters ride in the metrics snapshot, so
// the digest covers the whole aggregation ledger.
func FleetRunReport(name string, cfg fleet.Config) (RunReport, error) {
	rep, _, err := fleetRunReport(name, cfg)
	return rep, err
}

// fleetRunReport is FleetRunReport plus the raw fleet Result, for the
// traced-record path (journey dumps, dashboards, Chrome export).
func fleetRunReport(name string, cfg fleet.Config) (RunReport, fleet.Result, error) {
	res, err := fleet.Run(name, cfg)
	if err != nil {
		return RunReport{}, fleet.Result{}, err
	}
	r := res.Report
	rep := RunReport{
		Scenario: name,
		Engine:   "fleet",
		Sent:     r.FleetSent,
		DropRate: 1 - r.Delivery,
		EndNs:    r.EndNs,
		Metrics:  r.Metrics,
	}
	for _, h := range r.PerHost {
		q := engines.QueueStats{
			Received:      h.Received,
			CaptureDrops:  h.WireDropped + h.CaptureDropped,
			DeliveryDrops: h.HostLost + h.InFlightDropped + h.StaleRejected,
			Delivered:     h.Aggregated,
		}
		rep.PerQueue = append(rep.PerQueue, q)
		rep.Totals.Received += q.Received
		rep.Totals.CaptureDrops += q.CaptureDrops
		rep.Totals.DeliveryDrops += q.DeliveryDrops
		rep.Totals.Delivered += q.Delivered
	}
	// The fleet books must survive the flattening: the RunReport states
	// the same conservation equation ci-gate re-checks from the outside.
	if rep.Totals.Delivered != r.Aggregated ||
		rep.Totals.Received != rep.Totals.Delivered+rep.Totals.DeliveryDrops {
		return RunReport{}, fleet.Result{}, fmt.Errorf("bench: %s: fleet books lost in RunReport flattening", name)
	}
	return rep, res, nil
}

// fleetScenario wires one fleet config into the Scenario triple. The
// fleet package manages its own recorders (one per host, merged), so
// RunTraced flips Config.Traced rather than threading the external
// recorder through; the recorder argument stays a pure observer either
// way and the report must not change — exactly what ci-gate asserts.
func fleetScenario(name, about string, cfg fleet.Config, minDelivery float64) Scenario {
	run := func(traced bool, domains int) (RunReport, fleet.Result, error) {
		c := cfg
		c.Traced = traced
		if domains > 0 {
			c.Domains = domains
			c.Workers = domains
		}
		rep, res, err := fleetRunReport(name, c)
		if err != nil {
			return RunReport{}, fleet.Result{}, err
		}
		if sent := rep.Sent; sent > 0 {
			if got := float64(rep.Totals.Delivered) / float64(sent); got < minDelivery {
				return RunReport{}, fleet.Result{}, fmt.Errorf(
					"bench: %s: fleet delivery %.4f below floor %.2f", name, got, minDelivery)
			}
		}
		if v := rep.Metrics.CounterTotal("wirecap_fleet_late_merges_total"); v != 0 {
			return RunReport{}, fleet.Result{}, fmt.Errorf("bench: %s: %d late merges (feed order violated)", name, v)
		}
		return rep, res, nil
	}
	return Scenario{Name: name, About: about,
		Run: func() (RunReport, error) {
			rep, _, err := run(false, 0)
			return rep, err
		},
		RunTraced: func(*obs.Recorder) (RunReport, error) {
			rep, _, err := run(true, 0)
			return rep, err
		},
		RunDomains: func(d int) (RunReport, error) {
			rep, _, err := run(false, d)
			return rep, err
		},
		TracedRecord: func(d int) (RunReport, obs.Record, error) {
			rep, res, err := run(true, d)
			return rep, res.Record, err
		},
	}
}

// fleetStormSchedule is the headline chaos storm: one permanent host
// kill, one crash-with-restart, and an aggregation-link flap on a
// survivor — all while the wire keeps offering at full rate.
func fleetStormSchedule() faults.Schedule {
	return faults.Schedule{
		{Kind: faults.HostCrash, NIC: 1, At: 5 * vtime.Millisecond},
		{Kind: faults.HostCrash, NIC: 4, At: 12 * vtime.Millisecond, Dur: 8 * vtime.Millisecond},
		{Kind: faults.AggLinkDown, NIC: 2, At: 8 * vtime.Millisecond, Dur: 600 * vtime.Microsecond},
	}
}

// FleetScenarios is the fleet-resilience slice of the regression gate:
// a steady-state control and three chaos runs, each re-checked for
// exact loss conservation (fleet.Run errors otherwise), zero late
// merges, and the delivery floor.
func FleetScenarios() []Scenario {
	storm := fleet.Config{
		Hosts:   6,
		Packets: 30_000,
		Flows:   256,
		Seed:    7,
		Faults:  fleetStormSchedule(),
	}
	steady := fleet.Config{
		Hosts:   4,
		Packets: 15_000,
		Flows:   256,
		Seed:    7,
	}
	flap := fleet.Config{
		Hosts:   4,
		Packets: 15_000,
		Flows:   256,
		Seed:    7,
		Faults: faults.Schedule{
			{Kind: faults.AggLinkDown, NIC: 0, At: 2 * vtime.Millisecond, Dur: 500 * vtime.Microsecond},
			{Kind: faults.AggLinkDown, NIC: 3, At: 4 * vtime.Millisecond, Dur: 500 * vtime.Microsecond},
			{Kind: faults.AggLinkDown, NIC: 0, At: 6 * vtime.Millisecond, Dur: 500 * vtime.Microsecond},
		},
	}
	brown := fleet.Config{
		Hosts:   4,
		Packets: 15_000,
		Flows:   256,
		Seed:    7,
		Faults: faults.Schedule{
			{Kind: faults.HostBrownout, NIC: 2, At: 3 * vtime.Millisecond,
				Dur: 6 * vtime.Millisecond, Severity: 24},
		},
	}
	return []Scenario{
		fleetScenario("fleet_chaos_steady",
			"fleet control: 4 hosts, no faults — delivery must be exactly 1",
			steady, 1.0),
		fleetScenario("fleet_chaos_host_kill",
			"two-host-kill storm: permanent kill + crash/restart + link flap, delivery >= 95%",
			storm, FleetDeliveryFloor),
		fleetScenario("fleet_chaos_link_flap",
			"aggregation-link flaps: retry/backoff absorbs partitions without losing capture",
			flap, FleetDeliveryFloor),
		fleetScenario("fleet_chaos_brownout",
			"slow-host brownout: capture-side shedding under a 24x cost multiplier",
			brown, FleetDeliveryFloor),
	}
}

// Fleet renders the fleet-resilience report: the chaos scenario summary
// (the same runs the gate replays) and the host-kill degradation table —
// a 6-host fleet with 0..3 staggered permanent kills, showing how
// delivery degrades as capacity is removed while the books stay exact.
func Fleet(opt Options, w io.Writer) error {
	sc := Table{
		ID:    "fleet",
		Title: "Fleet chaos scenarios: loss-accounted aggregation under host-level faults",
		Columns: []string{"scenario", "hosts", "sent", "delivered", "delivery",
			"capture_drops", "delivery_drops", "quarantines", "readmissions",
			"steer_moves", "retries", "digest"},
	}
	for _, s := range FleetScenarios() {
		rep, err := s.Report()
		if err != nil {
			return err
		}
		t := rep.Totals
		m := rep.Metrics
		sc.Rows = append(sc.Rows, []string{
			rep.Scenario, fmt.Sprint(len(rep.PerQueue)),
			fmt.Sprint(rep.Sent), fmt.Sprint(t.Delivered),
			fmt.Sprintf("%.4f", ratio(t.Delivered, rep.Sent)),
			fmt.Sprint(t.CaptureDrops), fmt.Sprint(t.DeliveryDrops),
			fmt.Sprint(m.CounterTotal("wirecap_fleet_quarantines_total")),
			fmt.Sprint(m.CounterTotal("wirecap_fleet_readmissions_total")),
			fmt.Sprint(m.CounterTotal("wirecap_fleet_steer_moves_total")),
			fmt.Sprint(m.CounterTotal("wirecap_fleet_retries_total")),
			rep.Digest(),
		})
	}
	if err := opt.render(sc, w); err != nil {
		return err
	}

	deg := Table{
		ID:    "fleet-degradation",
		Title: "Host-kill degradation: 6-host fleet, k staggered permanent kills, same offered stream",
		Columns: []string{"killed", "sent", "delivered", "delivery",
			"wire_dropped", "host_lost", "inflight_dropped", "resteers", "steer_moves"},
	}
	for killed := 0; killed <= 3; killed++ {
		var sch faults.Schedule
		for k := 0; k < killed; k++ {
			sch = append(sch, faults.Event{
				Kind: faults.HostCrash, NIC: 1 + 2*k,
				At: vtime.Time(4+6*k) * vtime.Millisecond,
			})
		}
		res, err := fleet.Run(fmt.Sprintf("fleet_kill_%d", killed), fleet.Config{
			Hosts: 6, Packets: 30_000, Flows: 256, Seed: 7, Faults: sch,
		})
		if err != nil {
			return err
		}
		r := res.Report
		deg.Rows = append(deg.Rows, []string{
			fmt.Sprint(killed), fmt.Sprint(r.FleetSent), fmt.Sprint(r.Aggregated),
			fmt.Sprintf("%.4f", r.Delivery),
			fmt.Sprint(r.WireDropped), fmt.Sprint(r.HostLost),
			fmt.Sprint(r.InFlightDropped), fmt.Sprint(r.ReSteers), fmt.Sprint(r.SteerMoves),
		})
	}
	return opt.render(deg, w)
}
