package bench

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/analytics"
	"repro/internal/engines"
	"repro/internal/metrics"
	"repro/internal/vtime"
)

// HandlerReport summarizes the pkt_handler side of a run: how many
// packets were processed and matched, and — when delivery-latency
// accounting was enabled — the capture-to-processing delay
// distribution.
type HandlerReport struct {
	Processed uint64   `json:"processed"`
	Matched   uint64   `json:"matched"`
	Bytes     uint64   `json:"bytes"`
	TxDropped uint64   `json:"tx_dropped"`
	PerQueue  []uint64 `json:"per_queue"`

	DelayCount uint64 `json:"delay_count,omitempty"`
	DelaySumNs int64  `json:"delay_sum_ns,omitempty"`
	DelayP50Ns int64  `json:"delay_p50_ns,omitempty"`
	DelayP99Ns int64  `json:"delay_p99_ns,omitempty"`
	DelayMaxNs int64  `json:"delay_max_ns,omitempty"`
}

// RunReport is the structured, deterministic record of one engine run:
// the paper-level outcome (sent/forwarded/drop rate), the per-queue
// fate accounting, the handler summary, and the full metrics snapshot
// taken at the virtual time the run drained. Identical seeds produce
// byte-identical reports, which is what cmd/ci-gate keys on.
type RunReport struct {
	Scenario  string               `json:"scenario"`
	Engine    string               `json:"engine"`
	Sent      uint64               `json:"sent"`
	Forwarded uint64               `json:"forwarded,omitempty"`
	DropRate  float64              `json:"drop_rate"`
	EndNs     vtime.Time           `json:"end_ns"`
	Totals    engines.QueueStats   `json:"totals"`
	PerQueue  []engines.QueueStats `json:"per_queue"`
	Handler   *HandlerReport       `json:"handler,omitempty"`
	Analytics *analytics.Report    `json:"analytics,omitempty"`
	Metrics   metrics.Snapshot     `json:"metrics"`
}

// Report assembles the RunReport for a completed run. The scenario name
// is caller-chosen (it keys the baseline entry in cmd/ci-gate).
func (r Result) Report(scenario string) RunReport {
	rep := RunReport{
		Scenario:  scenario,
		Engine:    r.Spec.Name(),
		Sent:      r.Sent,
		Forwarded: r.Forwarded,
		DropRate:  r.DropRate(),
		EndNs:     r.End,
		Totals:    r.Stats.Totals(),
		PerQueue:  r.Stats.PerQueue,
		Analytics: r.Analytics,
	}
	if h := r.Handler; h != nil {
		hr := &HandlerReport{
			Processed: h.Processed,
			Matched:   h.Matched,
			Bytes:     h.Bytes,
			TxDropped: h.TxDropped,
			PerQueue:  h.PerQueue,
		}
		if h.DelayHist.Count() > 0 {
			hr.DelayCount = h.DelayHist.Count()
			hr.DelaySumNs = h.DelayHist.Sum()
			hr.DelayP50Ns = h.DelayHist.Percentile(0.50)
			hr.DelayP99Ns = h.DelayHist.Percentile(0.99)
			hr.DelayMaxNs = h.DelayHist.Max()
		}
		rep.Handler = hr
	}
	if r.Metrics != nil {
		rep.Metrics = r.Metrics.Snapshot(r.End)
	}
	return rep
}

// JSON renders the report as indented, deterministic JSON (series
// sorted, map keys sorted by encoding/json).
func (rr RunReport) JSON() ([]byte, error) {
	return json.MarshalIndent(rr, "", "  ")
}

// Digest is a stable fingerprint of the full report: FNV-1a over the
// compact JSON encoding. Any observable divergence — a counter off by
// one, a latency bucket shifted — changes the digest.
func (rr RunReport) Digest() string {
	b, err := json.Marshal(rr)
	if err != nil {
		// The report is plain data; Marshal cannot fail in practice.
		panic(fmt.Sprintf("bench: marshaling RunReport: %v", err))
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// KeyMetrics flattens the headline numbers cmd/ci-gate compares against
// tolerance bands. Counter totals come from the metrics snapshot so the
// gate also covers the instrumentation wiring itself.
func (rr RunReport) KeyMetrics() map[string]float64 {
	m := map[string]float64{
		"sent":           float64(rr.Sent),
		"drop_rate":      rr.DropRate,
		"received":       float64(rr.Totals.Received),
		"capture_drops":  float64(rr.Totals.CaptureDrops),
		"delivery_drops": float64(rr.Totals.DeliveryDrops),
		"delivered":      float64(rr.Totals.Delivered),
		"end_ns":         float64(rr.EndNs),
	}
	if rr.Forwarded > 0 {
		m["forwarded"] = float64(rr.Forwarded)
	}
	if rr.Handler != nil {
		m["processed"] = float64(rr.Handler.Processed)
		m["matched"] = float64(rr.Handler.Matched)
	}
	if v := rr.Totals.CorruptDrops; v > 0 {
		m["corrupt_drops"] = float64(v)
	}
	if v := rr.Totals.ReclaimDrops; v > 0 {
		m["reclaim_drops"] = float64(v)
	}
	if a := rr.Analytics; a != nil {
		m["analytics_updates"] = float64(a.Updates)
		m["analytics_flows_resident"] = float64(a.Flows.Resident)
		m["analytics_flow_evictions"] = float64(a.Flows.Evictions)
	}
	// Probe the counter families in sorted name order, never map order:
	// the wirelint maporder analyzer flags the collect-loop below if the
	// sort goes missing, so the emission order stays deterministic by
	// construction.
	probes := map[string]string{
		"engine_copies_total":                "copies",
		"engine_syscalls_total":              "syscalls",
		"wirecap_chunks_captured_total":      "chunks_captured",
		"wirecap_chunks_offloaded_total":     "chunks_offloaded",
		"faults_injected_total":              "faults_injected",
		"faults_corrupted_frames_total":      "corrupted_frames",
		"wirecap_quarantines_total":          "quarantines",
		"wirecap_handler_failovers_total":    "handler_failovers",
		"wirecap_chunks_reclaimed_total":     "chunks_reclaimed",
		"wirecap_alloc_retries_total":        "alloc_retries",
		"wirecap_chunk_filtered_total":       "chunk_filtered",
		"wirecap_bus_rejected_total":         "bus_rejected",
		"wirecap_fleet_aggregated_total":     "fleet_aggregated",
		"wirecap_fleet_quarantines_total":    "fleet_quarantines",
		"wirecap_fleet_readmissions_total":   "fleet_readmissions",
		"wirecap_fleet_resteers_total":       "fleet_resteers",
		"wirecap_fleet_steer_moves_total":    "fleet_steer_moves",
		"wirecap_fleet_stale_rejected_total": "fleet_stale_rejected",
		"wirecap_fleet_retries_total":        "fleet_retries",
		"wirecap_fleet_analytics_shed_total": "fleet_analytics_shed",
		// The fleet conservation counters: with these probed, the gate's
		// metric bands state FleetReceived == Aggregated + HostLost +
		// InFlightDropped in baselines.json itself, and cmd/wiredump
		// -stats shows the whole equation for fleet reports.
		"wirecap_fleet_received_total":             "fleet_received",
		"wirecap_fleet_wire_dropped_total":         "fleet_wire_dropped",
		"wirecap_fleet_capture_dropped_total":      "fleet_capture_dropped",
		"wirecap_fleet_host_lost_total":            "fleet_host_lost",
		"wirecap_fleet_inflight_dropped_total":     "fleet_inflight_dropped",
		"wirecap_fleet_late_merges_total":          "fleet_late_merges",
		"wirecap_fleet_analytics_aggregated_total": "fleet_analytics_aggregated",
	}
	names := make([]string, 0, len(probes))
	for name := range probes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if v := rr.Metrics.CounterTotal(name); v > 0 {
			m[probes[name]] = float64(v)
		}
	}
	return m
}
