package bench

import (
	"fmt"

	"repro/internal/analytics"
	"repro/internal/app"
	"repro/internal/bus"
	"repro/internal/engines"
	"repro/internal/metrics"
	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/trace"
	"repro/internal/vtime"
	"repro/internal/vtime/domain"
)

// simFor builds the run's execution substrate from its Domains setting.
// Domains <= 1 returns a plain scheduler and no executive — the default
// path, bit-for-bit the pre-parallel event loop. Domains > 1 routes the
// run through the parallel discrete-event executive: the run's
// components all live in domain 0 (a single-host run is one structural
// unit and cannot be split), so the extra domains idle and the digest
// is provably identical for every Domains value — the equivalence
// property the golden tests and cmd/ci-gate's -domains check pin.
// Multi-host fleet runs (fleet.go) are where extra domains get work.
func simFor(domains, workers int) (*domain.Sim, *vtime.Scheduler) {
	if domains <= 1 {
		return nil, vtime.NewScheduler()
	}
	sim := domain.New(domain.Config{Domains: domains, Workers: workers})
	return sim, sim.Domain(0).Scheduler()
}

// runSim drains the run's event loop through whichever substrate simFor
// chose.
func runSim(sim *domain.Sim, sched *vtime.Scheduler) {
	if sim == nil {
		sched.Run()
		return
	}
	sim.Run()
}

// Result is the outcome of one engine run.
type Result struct {
	Spec      EngineSpec
	Sent      uint64
	Stats     engines.Stats
	Handler   *app.PktHandler
	Forwarded uint64 // packets that left the forwarding NIC (Fig 13/14)
	// Metrics is the run-wide registry every simulated component
	// (NIC, engine, WireCAP core) registered into; End is the virtual
	// time at which the event queue drained. Together they key a
	// Snapshot for RunReport.
	Metrics *metrics.Registry
	End     vtime.Time
	// Analytics is the streaming-analytics stage report for
	// RunAnalytics runs; nil elsewhere.
	Analytics *analytics.Report
}

// DropRate is total drops over offered packets — the paper's metric. For
// forwarding runs it is computed end to end (sender to receiver).
func (r Result) DropRate() float64 {
	if r.Sent == 0 {
		return 0
	}
	if r.Handler != nil && r.Handler.ForwardTx != nil {
		return 1 - float64(r.Forwarded)/float64(r.Sent)
	}
	return r.Stats.DropRate(r.Sent)
}

// CaptureDropRate and DeliveryDropRate split the two drop kinds for a
// single queue (Table 1).
func (r Result) CaptureDropRate(q int, offered uint64) float64 {
	if offered == 0 {
		return 0
	}
	return float64(r.Stats.PerQueue[q].CaptureDrops) / float64(offered)
}

// DeliveryDropRate returns queue q's delivery-drop fraction of offered.
func (r Result) DeliveryDropRate(q int, offered uint64) float64 {
	if offered == 0 {
		return 0
	}
	return float64(r.Stats.PerQueue[q].DeliveryDrops) / float64(offered)
}

// ConstantRun drives P fixed-size packets at a fixed rate into a
// single-queue NIC under the given engine and pkt_handler load x —
// the Figures 8-10 setup.
type ConstantRun struct {
	Spec    EngineSpec
	Packets uint64
	X       int
	// FrameLen (default 60) and PacketsPerSec (default wire rate).
	FrameLen      int
	PacketsPerSec float64
	Seed          uint64
	// Trace attaches a flight recorder to the run's NIC; nil runs
	// untraced (the hot-path hooks are nil-safe no-ops).
	Trace *obs.Recorder
	// Domains executes the run under the parallel discrete-event
	// executive with that many time domains (<= 1: plain scheduler, the
	// default). The report is byte-identical for every value; see simFor.
	Domains int
	// Workers bounds in-window parallelism (0: the shared budget).
	Workers int
}

// RunConstant executes the run to completion.
func RunConstant(cfg ConstantRun) (Result, error) {
	sim, sched := simFor(cfg.Domains, cfg.Workers)
	reg := metrics.NewRegistry()
	n := nic.New(sched, nic.Config{ID: 0, RxQueues: 1, RingSize: 1024, Promiscuous: true, Metrics: reg, Trace: cfg.Trace})
	costs := engines.DefaultCosts()
	h := app.NewPktHandler(cfg.X, costs, 1)
	eng, err := cfg.Spec.Build(sched, n, costs, h)
	if err != nil {
		return Result{}, err
	}
	frameLen := cfg.FrameLen
	if frameLen == 0 {
		frameLen = 60
	}
	rate := n.LineRateBps()
	if cfg.PacketsPerSec > 0 {
		rate = cfg.PacketsPerSec * float64(frameLen+24) * 8
	}
	src := trace.NewConstantRate(trace.ConstantRateConfig{
		Packets:     cfg.Packets,
		FrameLen:    frameLen,
		LineRateBps: rate,
		Seed:        cfg.Seed,
	})
	st := trace.Drive(sched, n, src, nil)
	runSim(sim, sched)
	return Result{
		Spec: cfg.Spec, Sent: st.Sent, Stats: eng.Stats(), Handler: h,
		Metrics: reg, End: sched.Now(),
	}, nil
}

// BorderRun replays the border-router workload into an n-queue NIC under
// the given engine with an x-loaded pkt_handler per queue — the
// Table 1 / Figures 11-13 setup.
type BorderRun struct {
	Spec   EngineSpec
	Queues int
	X      int
	// Scale compresses the trace duration (Scale 1.0 = the paper's 32 s)
	// while keeping the paper's packet rates, preserving the overload
	// dynamics at any scale.
	Scale float64
	Seed  uint64
	// Forward processes packets through a second NIC (Figure 13).
	Forward bool
	// Seconds overrides the duration directly.
	Seconds float64
	// Filter overrides the pkt_handler BPF filter (default:
	// "131.225.2 and udp", the paper's).
	Filter string
	// Trace attaches a flight recorder to the receive NIC.
	Trace *obs.Recorder
	// Domains / Workers: as in ConstantRun.
	Domains int
	Workers int
}

// RunBorder executes the run to completion. It also returns the per-queue
// offered packet counts (needed for Table 1's per-queue rates).
func RunBorder(cfg BorderRun) (Result, []uint64, error) {
	if cfg.Queues == 0 {
		cfg.Queues = 6
	}
	if cfg.Scale == 0 {
		cfg.Scale = 1.0
	}
	dur := vtime.Time(32 * cfg.Scale * float64(vtime.Second))
	if cfg.Seconds > 0 {
		dur = vtime.Time(cfg.Seconds * float64(vtime.Second))
	}
	sim, sched := simFor(cfg.Domains, cfg.Workers)
	reg := metrics.NewRegistry()
	n := nic.New(sched, nic.Config{ID: 0, RxQueues: cfg.Queues, RingSize: 1024, Promiscuous: true, Metrics: reg, Trace: cfg.Trace})
	costs := engines.DefaultCosts()
	var h *app.PktHandler
	if cfg.Filter != "" {
		var err error
		h, err = app.NewPktHandlerFilter(cfg.X, costs, cfg.Queues, cfg.Filter)
		if err != nil {
			return Result{}, nil, err
		}
	} else {
		h = app.NewPktHandler(cfg.X, costs, cfg.Queues)
	}

	var n2 *nic.NIC
	if cfg.Forward {
		n2 = nic.New(sched, nic.Config{
			ID: 1, RxQueues: 1, RingSize: 64,
			TxQueues: cfg.Queues, TxRingSize: 1024, Promiscuous: true,
			Metrics: reg,
		})
		h.ForwardTx = func(q int) *nic.TxRing { return n2.Tx(q) }
	}

	eng, err := cfg.Spec.Build(sched, n, costs, h)
	if err != nil {
		return Result{}, nil, err
	}
	src := trace.NewBorder(trace.BorderConfig{
		Queues: cfg.Queues, Duration: dur, Seed: cfg.Seed,
	})
	st := trace.Drive(sched, n, src, nil)

	// Count per-queue offered load with an independent RSS classifier so
	// Table 1 can report per-queue rates.
	offered := make([]uint64, cfg.Queues)
	countSrc := trace.NewBorder(trace.BorderConfig{
		Queues: cfg.Queues, Duration: dur, Seed: cfg.Seed,
	})
	countPerQueue(countSrc, cfg.Queues, offered)

	runSim(sim, sched)
	res := Result{
		Spec: cfg.Spec, Sent: st.Sent, Stats: eng.Stats(), Handler: h,
		Metrics: reg, End: sched.Now(),
	}
	if cfg.Forward {
		for q := 0; q < cfg.Queues; q++ {
			res.Forwarded += n2.Tx(q).Stats().Sent
		}
	}
	return res, offered, nil
}

// countPerQueue applies the NIC's default RSS classification to every
// frame of src, tallying per-queue offered load.
func countPerQueue(src trace.Source, queues int, out []uint64) {
	var dec packet.Decoded
	for {
		frame, _, ok := src.Next()
		if !ok {
			return
		}
		if err := packet.Decode(frame, &dec); err != nil {
			out[0]++
			continue
		}
		h := nic.RSSHash(nic.DefaultRSSKey[:], dec.Flow)
		out[int(h%nic.IndirectionEntries)%queues]++
	}
}

// ScalabilityRun is the Figure 14 setup: two NICs on one saturable bus,
// each receiving wire-rate traffic on q queues, each queue's handler
// forwarding out the other NIC.
type ScalabilityRun struct {
	Spec         EngineSpec
	QueuesPerNIC int
	FrameLen     int // 60 ("64-byte") or 96 ("100-byte")
	Packets      uint64
	Seed         uint64
	// Metrics, when non-nil, receives both NICs' series (disambiguated
	// by the nic label). Nil keeps the run unobserved.
	Metrics *metrics.Registry
}

// RunScalability executes the two-NIC forwarding run and returns the
// end-to-end drop rate.
func RunScalability(cfg ScalabilityRun) (float64, error) {
	sched := vtime.NewScheduler()
	costs := engines.DefaultCosts()
	// The shared host bus: sized so that 2 x 10 GbE of 64-byte line-rate
	// traffic (~29.8 Mp/s) exceeds it while 2 x 100-byte line rate
	// (~20.8 Mp/s) fits, reflecting PCIe's per-TLP overhead.
	shared := bus.New(bus.Config{
		// 4.2 GB/s with 90 B per-TLP overhead: 2 x 64-byte line rate
		// (29.8 Mp/s, 4.5+ GB/s with overhead) saturates it; 2 x 100-byte
		// line rate (20.8 Mp/s, 3.9 GB/s) fits — the Figure 14 regime.
		BytesPerSec:         4.2e9,
		BurstBytes:          256 * 1024,
		PerTransferOverhead: 90,
	})
	if cfg.Metrics != nil {
		shared.Register(cfg.Metrics)
	}
	mkNIC := func(id int) *nic.NIC {
		return nic.New(sched, nic.Config{
			ID: id, RxQueues: cfg.QueuesPerNIC, RingSize: 1024,
			TxQueues: cfg.QueuesPerNIC, TxRingSize: 1024,
			Promiscuous: true, Bus: shared, Metrics: cfg.Metrics,
		})
	}
	n1, n2 := mkNIC(0), mkNIC(1)

	h1 := app.NewPktHandler(0, costs, cfg.QueuesPerNIC)
	h1.ForwardTx = func(q int) *nic.TxRing { return n2.Tx(q) }
	h2 := app.NewPktHandler(0, costs, cfg.QueuesPerNIC)
	h2.ForwardTx = func(q int) *nic.TxRing { return n1.Tx(q) }

	if _, err := cfg.Spec.Build(sched, n1, costs, h1); err != nil {
		return 0, err
	}
	if _, err := cfg.Spec.Build(sched, n2, costs, h2); err != nil {
		return 0, err
	}

	mkSrc := func(seed uint64) *trace.ConstantRateSource {
		return trace.NewConstantRate(trace.ConstantRateConfig{
			Packets:  cfg.Packets,
			FrameLen: cfg.FrameLen,
			Queues:   cfg.QueuesPerNIC,
			Seed:     seed,
		})
	}
	st1 := trace.Drive(sched, n1, mkSrc(cfg.Seed), nil)
	st2 := trace.Drive(sched, n2, mkSrc(cfg.Seed+1000), nil)
	sched.Run()

	var forwarded uint64
	for q := 0; q < cfg.QueuesPerNIC; q++ {
		forwarded += n1.Tx(q).Stats().Sent + n2.Tx(q).Stats().Sent
	}
	sent := st1.Sent + st2.Sent
	if sent == 0 {
		return 0, fmt.Errorf("bench: no packets sent")
	}
	return 1 - float64(forwarded)/float64(sent), nil
}
