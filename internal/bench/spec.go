// Package bench is the experiment harness: for every table and figure in
// the WireCAP paper's evaluation (§2.2 and §4) it builds the workload,
// runs the engines on the simulated substrate, and renders the same rows
// or series the paper reports. The cmd/experiments binary and the
// repository-level benchmarks drive it.
package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engines"
	"repro/internal/nic"
	"repro/internal/vtime"
)

// EngineKind names a capture engine family.
type EngineKind int

// Engine families compared in the paper.
const (
	KindDNA EngineKind = iota
	KindNETMAP
	KindPFRing
	KindPSIOE
	KindRawSocket
	KindWireCAPBasic
	KindWireCAPAdvanced
)

// EngineSpec identifies one engine configuration, e.g.
// WireCAP-A-(256,100,60%).
type EngineSpec struct {
	Kind EngineKind
	M, R int // WireCAP geometry
	T    int // WireCAP advanced-mode threshold percent
}

// Shorthand constructors for the specs the paper's figures use.
var (
	DNA       = EngineSpec{Kind: KindDNA}
	NETMAP    = EngineSpec{Kind: KindNETMAP}
	PFRing    = EngineSpec{Kind: KindPFRing}
	PSIOE     = EngineSpec{Kind: KindPSIOE}
	RawSocket = EngineSpec{Kind: KindRawSocket}
)

// WireCAPB returns a basic-mode spec.
func WireCAPB(m, r int) EngineSpec { return EngineSpec{Kind: KindWireCAPBasic, M: m, R: r} }

// WireCAPA returns an advanced-mode spec.
func WireCAPA(m, r, t int) EngineSpec {
	return EngineSpec{Kind: KindWireCAPAdvanced, M: m, R: r, T: t}
}

// Name renders the paper's engine naming.
func (s EngineSpec) Name() string {
	switch s.Kind {
	case KindDNA:
		return "DNA"
	case KindNETMAP:
		return "NETMAP"
	case KindPFRing:
		return "PF_RING"
	case KindPSIOE:
		return "PSIOE"
	case KindRawSocket:
		return "PF_PACKET"
	case KindWireCAPBasic:
		return fmt.Sprintf("WireCAP-B-(%d,%d)", s.M, s.R)
	case KindWireCAPAdvanced:
		return fmt.Sprintf("WireCAP-A-(%d,%d,%d%%)", s.M, s.R, s.T)
	default:
		return fmt.Sprintf("engine-%d", int(s.Kind))
	}
}

// Build constructs the engine over NIC n delivering to h.
func (s EngineSpec) Build(sched *vtime.Scheduler, n *nic.NIC, costs engines.CostModel, h engines.Handler) (engines.Engine, error) {
	return s.BuildWith(sched, n, costs, h, nil)
}

// BuildWith constructs the engine like Build, letting mutate adjust the
// WireCAP core configuration first (it is ignored for non-WireCAP
// kinds, which have no config). Fleet runs use it to install the
// cross-domain recovery hook and the host's logical-domain label.
func (s EngineSpec) BuildWith(sched *vtime.Scheduler, n *nic.NIC, costs engines.CostModel, h engines.Handler, mutate func(*core.Config)) (engines.Engine, error) {
	build := func(cfg core.Config) (engines.Engine, error) {
		if mutate != nil {
			mutate(&cfg)
		}
		return core.New(sched, n, cfg, h)
	}
	switch s.Kind {
	case KindDNA:
		return engines.NewDNA(sched, n, costs, h), nil
	case KindNETMAP:
		return engines.NewNETMAP(sched, n, costs, h), nil
	case KindPFRing:
		return engines.NewPFRing(sched, n, costs, h, engines.PFRingBufferSlots), nil
	case KindPSIOE:
		return engines.NewPSIOE(sched, n, costs, h), nil
	case KindRawSocket:
		return engines.NewRawSocket(sched, n, costs, h), nil
	case KindWireCAPBasic:
		return build(core.Config{M: s.M, R: s.R, Costs: costs})
	case KindWireCAPAdvanced:
		return build(core.Config{
			M: s.M, R: s.R, Mode: core.Advanced, ThresholdPct: s.T, Costs: costs,
		})
	default:
		return nil, fmt.Errorf("bench: unknown engine kind %d", s.Kind)
	}
}

// SupportsForwarding reports whether the engine can run the Figure 13
// middlebox experiment. The paper could not make multi_pkt_handler
// forward under NETMAP (per-queue sync limitation), and PF_PACKET is
// hopeless, so those are excluded exactly as the paper excludes them.
func (s EngineSpec) SupportsForwarding() bool {
	return s.Kind != KindNETMAP && s.Kind != KindRawSocket
}
